#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "arch/architectures.hpp"
#include "ir/generators.hpp"
#include "ir/mapped_circuit.hpp"
#include "search/node_pool.hpp"
#include "search/search_context.hpp"

namespace toqm::search {
namespace {

struct Fixture
{
    ir::Circuit circuit;
    arch::CouplingGraph graph;
    ir::LatencyModel latency;
    SearchContext ctx;
    NodePool pool;

    Fixture()
        : circuit(makeCircuit()), graph(arch::lnn(3)),
          latency(ir::LatencyModel::qftPreset()),
          ctx(circuit, graph, latency), pool(ctx)
    {}

    static ir::Circuit
    makeCircuit()
    {
        ir::Circuit c(3);
        c.addCX(0, 1);
        c.addCX(1, 2);
        return c;
    }
};

TEST(NodePoolTest, RootInitializesMappingAndCounters)
{
    Fixture f;
    NodeRef root = f.pool.root(ir::identityLayout(3), false);
    ASSERT_TRUE(root);
    EXPECT_EQ(root->cycle, 0);
    EXPECT_EQ(root->scheduledGates, 0);
    EXPECT_EQ(root->parent(), nullptr);
    for (int q = 0; q < 3; ++q) {
        EXPECT_EQ(root->log2phys()[q], q);
        EXPECT_EQ(root->phys2log()[q], q);
        EXPECT_EQ(root->busyUntil()[q], 0);
        EXPECT_EQ(root->lastSwapPartner()[q], -1);
    }
    EXPECT_EQ(f.pool.liveNodes(), 1u);
}

TEST(NodePoolTest, NonInjectiveLayoutThrowsAndLeaksNothing)
{
    Fixture f;
    EXPECT_THROW(f.pool.root({0, 0, 1}, false), std::invalid_argument);
    EXPECT_THROW(f.pool.root({0, 1, 7}, false), std::invalid_argument);
    // The failed slots were recycled, not leaked.
    EXPECT_EQ(f.pool.liveNodes(), 0u);
    NodeRef ok = f.pool.root(ir::identityLayout(3), false);
    EXPECT_EQ(f.pool.liveNodes(), 1u);
    EXPECT_GE(f.pool.recycledAllocations(), 1u);
}

TEST(NodePoolTest, RefCountingTracksCopiesAndMoves)
{
    Fixture f;
    NodeRef root = f.pool.root(ir::identityLayout(3), false);
    {
        NodeRef copy = root;              // retain
        NodeRef moved = std::move(copy);  // steal, no net change
        EXPECT_TRUE(moved);
        EXPECT_FALSE(copy); // NOLINT(bugprone-use-after-move)
        EXPECT_EQ(f.pool.liveNodes(), 1u);
    }
    EXPECT_EQ(f.pool.liveNodes(), 1u); // root still referenced
}

TEST(NodePoolTest, ChildKeepsParentAliveUntilReleased)
{
    Fixture f;
    NodeRef leaf;
    {
        NodeRef root = f.pool.root(ir::identityLayout(3), false);
        NodeRef mid = f.pool.expand(root, 1, {Action{0, 0, 1}});
        leaf = f.pool.expand(mid, 2, {});
        EXPECT_EQ(f.pool.liveNodes(), 3u);
    }
    // Locals are gone but the whole chain is pinned through `leaf`.
    EXPECT_EQ(f.pool.liveNodes(), 3u);
    ASSERT_NE(leaf->parent(), nullptr);
    EXPECT_EQ(leaf->parent()->parent()->cycle, 0);

    leaf = NodeRef();
    // Releasing the leaf unwinds the entire parent chain iteratively.
    EXPECT_EQ(f.pool.liveNodes(), 0u);
}

TEST(NodePoolTest, ReleasedNodesAreRecycledNotReallocated)
{
    Fixture f;
    NodeRef root = f.pool.root(ir::identityLayout(3), false);
    const auto before = f.pool.totalAllocations();
    for (int i = 0; i < 100; ++i) {
        NodeRef child = f.pool.expand(root, 1, {Action{0, 0, 1}});
        EXPECT_EQ(child->scheduledGates, 1);
    }
    // One slot serviced all 100 generations after the first.
    EXPECT_EQ(f.pool.totalAllocations(), before + 100u);
    EXPECT_GE(f.pool.recycledAllocations(), 99u);
    EXPECT_EQ(f.pool.liveNodes(), 1u);
}

TEST(NodePoolTest, PeakStatsAreHighWaterMarks)
{
    Fixture f;
    {
        NodeRef root = f.pool.root(ir::identityLayout(3), false);
        std::vector<NodeRef> keep;
        for (int i = 0; i < 10; ++i)
            keep.push_back(f.pool.expand(root, 1, {Action{0, 0, 1}}));
        EXPECT_EQ(f.pool.liveNodes(), 11u);
    }
    EXPECT_EQ(f.pool.liveNodes(), 0u);
    EXPECT_GE(f.pool.peakLiveNodes(), 11u);
    EXPECT_GT(f.pool.peakBytes(), 0u);
}

TEST(NodePoolTest, SlabGrowthSurvivesThousandsOfLiveNodes)
{
    // More live nodes than one 256-node slab holds: exercises slab
    // chaining and the destructor's per-slab teardown.
    Fixture f;
    NodeRef root = f.pool.root(ir::identityLayout(3), false);
    std::vector<NodeRef> keep;
    for (int i = 0; i < 2000; ++i)
        keep.push_back(f.pool.expand(root, i + 1, {}));
    EXPECT_EQ(f.pool.liveNodes(), 2001u);
    EXPECT_EQ(keep.back()->cycle, 2000);
    keep.clear();
    EXPECT_EQ(f.pool.liveNodes(), 1u);
}

TEST(NodePoolTest, ExpandCopiesStateAndAppliesActions)
{
    Fixture f;
    NodeRef root = f.pool.root(ir::identityLayout(3), false);
    NodeRef swapped = f.pool.expand(root, 1, {Action{-1, 1, 2}});
    EXPECT_EQ(swapped->parent(), root.get());
    EXPECT_EQ(swapped->log2phys()[1], 2);
    EXPECT_EQ(swapped->phys2log()[2], 1);
    EXPECT_EQ(swapped->lastSwapPartner()[1], 2);
    // The parent's buffers are untouched (copy, not alias).
    EXPECT_EQ(root->log2phys()[1], 1);
    EXPECT_EQ(root->phys2log()[2], 2);
}

TEST(NodePoolTest, CloneSiblingSharesParentNotIdentity)
{
    Fixture f;
    NodeRef root = f.pool.root(ir::identityLayout(3), false);
    NodeRef child = f.pool.expand(root, 1, {Action{0, 0, 1}});
    NodeRef twin = f.pool.cloneSibling(child);
    EXPECT_NE(twin.get(), child.get());
    EXPECT_EQ(twin->parent(), child->parent());
    EXPECT_EQ(twin->cycle, child->cycle);
    EXPECT_EQ(twin->scheduledGates, child->scheduledGates);
    EXPECT_EQ(twin->mappingHash(), child->mappingHash());
    twin->dead = true;
    EXPECT_FALSE(child->dead);
}

TEST(NodePoolTest, MappingHashDistinguishesPhases)
{
    Fixture f;
    NodeRef placed = f.pool.root(ir::identityLayout(3), false);
    NodeRef searching = f.pool.root(ir::identityLayout(3), true);
    // Same occupancy, but the initial-phase salt keeps a committed
    // node from colliding with its uncommitted twin in the filter.
    EXPECT_NE(placed->mappingHash(), searching->mappingHash());
}

TEST(NodePoolTest, LazyHashMatchesEagerMaterialization)
{
    // Hashes are deltas recorded at expand() time but only folded in
    // on first read.  Reading NOTHING until the bottom of a swap
    // chain must produce the same value as reading at every level
    // (the replay walks the ancestor chain and re-derives each
    // node's pre-image from its own post-swap mapping).
    Fixture f;
    NodeRef root_a = f.pool.root(ir::identityLayout(3), false);
    NodeRef a1 = f.pool.expand(root_a, 1, {Action{-1, 0, 1}});
    NodeRef a2 = f.pool.expand(a1, 2, {Action{-1, 1, 2}});
    const std::uint64_t lazy = a2->mappingHash(); // first read ever

    NodeRef root_b = f.pool.root(ir::identityLayout(3), false);
    NodeRef b1 = f.pool.expand(root_b, 1, {Action{-1, 0, 1}});
    (void)b1->mappingHash(); // materialize eagerly at each level
    NodeRef b2 = f.pool.expand(b1, 2, {Action{-1, 1, 2}});
    EXPECT_EQ(lazy, b2->mappingHash());

    // And the intermediate levels agree too, read after the fact.
    EXPECT_EQ(a1->mappingHash(), b1->mappingHash());
    EXPECT_EQ(root_a->mappingHash(), root_b->mappingHash());
}

TEST(NodePoolTest, SwapBackRestoresMappingHash)
{
    // Zobrist deltas must cancel exactly: undoing a swap returns the
    // hash to its pre-swap value even though the path differs.
    Fixture f;
    NodeRef root = f.pool.root(ir::identityLayout(3), false);
    const std::uint64_t h0 = root->mappingHash();
    NodeRef swapped = f.pool.expand(root, 1, {Action{-1, 0, 1}});
    EXPECT_NE(swapped->mappingHash(), h0);
    NodeRef back = f.pool.expand(swapped, 2, {Action{-1, 0, 1}});
    EXPECT_EQ(back->mappingHash(), h0);
}

TEST(NodePoolTest, HashEqualityTracksMappingEquality)
{
    // Two different swap orders reaching the same permutation hash
    // equal; any mapping that differs in at least one assignment
    // hashes different (no seeded collisions on this tiny space).
    Fixture f;
    NodeRef root = f.pool.root(ir::identityLayout(3), false);
    // Braid identity on the LNN-3 edges: s01 s12 s01 == s12 s01 s12.
    NodeRef p1 = f.pool.expand(root, 1, {Action{-1, 0, 1}});
    NodeRef p2 = f.pool.expand(p1, 2, {Action{-1, 1, 2}});
    NodeRef p3 = f.pool.expand(p2, 3, {Action{-1, 0, 1}});
    NodeRef q1 = f.pool.expand(root, 1, {Action{-1, 1, 2}});
    NodeRef q2 = f.pool.expand(q1, 2, {Action{-1, 0, 1}});
    NodeRef q3 = f.pool.expand(q2, 3, {Action{-1, 1, 2}});
    ASSERT_EQ(std::memcmp(p3->log2phys(), q3->log2phys(),
                          3 * sizeof(*p3->log2phys())),
              0)
        << "test premise broken: paths reach different mappings";
    EXPECT_EQ(p3->mappingHash(), q3->mappingHash());
    EXPECT_NE(p1->mappingHash(), q1->mappingHash());
    EXPECT_NE(p2->mappingHash(), q2->mappingHash());
}

} // namespace
} // namespace toqm::search
