#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "search/search_stats.hpp"

namespace toqm::search {
namespace {

SearchStats
sampleStats()
{
    SearchStats stats;
    stats.expanded = 123;
    stats.generated = 456;
    stats.filtered = 7;
    stats.trims = 1;
    stats.rounds = 2;
    stats.maxQueueSize = 89;
    stats.peakPoolBytes = 1 << 20;
    stats.peakLiveNodes = 1000;
    stats.seconds = 0.125;
    return stats;
}

/** Parse one stats line, asserting it is a single JSON object. */
obs::json::ValuePtr
parseLine(const std::string &line)
{
    EXPECT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    return obs::json::parse(line);
}

/**
 * Every status variant must round-trip through the JSON parser with
 * the v1 keys, the v2 additions, and the status-specific detail
 * object intact.
 */
TEST(StatsJsonRoundTripTest, AllStatusVariantsParse)
{
    const std::vector<SearchStatus> statuses = {
        SearchStatus::Solved,          SearchStatus::BudgetExhausted,
        SearchStatus::Infeasible,      SearchStatus::DeadlineExceeded,
        SearchStatus::MemoryExhausted, SearchStatus::Cancelled,
    };
    StatsLineContext context;
    context.arch = "tokyo";
    context.lat1 = 1;
    context.lat2 = 2;
    context.latSwap = 6;
    context.nodeBudget = 5000;
    context.deadlineMs = 250;
    context.maxPoolBytes = 1 << 24;
    context.hasIncumbent = true;

    for (SearchStatus status : statuses) {
        const std::string line = statsJsonLine(
            sampleStats(), "optimal", status, 42, 7, context);
        const auto root = parseLine(line);
        ASSERT_TRUE(root && root->isObject()) << line;

        // v1 keys.
        EXPECT_EQ(root->get("mapper")->asString(), "optimal");
        EXPECT_EQ(root->get("status")->asString(), toString(status));
        EXPECT_EQ(root->get("cycles")->asNumber(), 42);
        EXPECT_EQ(root->get("swaps")->asNumber(), 7);
        EXPECT_EQ(root->get("expanded")->asNumber(), 123);
        EXPECT_EQ(root->get("generated")->asNumber(), 456);
        EXPECT_EQ(root->get("max_queue")->asNumber(), 89);

        // v2 keys.
        EXPECT_EQ(root->get("schemaVersion")->asNumber(),
                  kStatsLineSchemaVersion);
        EXPECT_EQ(root->get("arch")->asString(), "tokyo");
        const auto latency = root->get("latency");
        ASSERT_TRUE(latency && latency->isObject());
        EXPECT_EQ(latency->get("swap")->asNumber(), 6);

        // Status-specific detail.
        const auto detail = root->get("detail");
        ASSERT_TRUE(detail && detail->isObject()) << line;
        switch (status) {
          case SearchStatus::Solved:
            ASSERT_TRUE(detail->get("proven_optimal"));
            break;
          case SearchStatus::BudgetExhausted:
            EXPECT_EQ(detail->get("node_budget")->asNumber(), 5000);
            break;
          case SearchStatus::Infeasible:
            EXPECT_EQ(detail->get("reason")->asString(),
                      "search-space-exhausted");
            break;
          case SearchStatus::DeadlineExceeded:
            EXPECT_EQ(detail->get("deadline_ms")->asNumber(), 250);
            EXPECT_TRUE(detail->get("incumbent")->asBool());
            break;
          case SearchStatus::MemoryExhausted:
            EXPECT_EQ(detail->get("max_pool_bytes")->asNumber(),
                      double(1 << 24));
            EXPECT_TRUE(detail->get("incumbent")->asBool());
            break;
          case SearchStatus::Cancelled:
            EXPECT_TRUE(detail->get("incumbent")->asBool());
            break;
        }

        // No degradation block was requested.
        EXPECT_EQ(root->get("degradation"), nullptr) << line;
    }
}

TEST(StatsJsonRoundTripTest, IncumbentFlagReflectsContext)
{
    StatsLineContext context;
    context.deadlineMs = 100;
    context.hasIncumbent = false;
    const std::string line =
        statsJsonLine(sampleStats(), "optimal",
                      SearchStatus::DeadlineExceeded, -1, -1, context);
    const auto root = parseLine(line);
    EXPECT_FALSE(root->get("detail")->get("incumbent")->asBool());
}

TEST(StatsJsonRoundTripTest, DegradationBlockRoundTrips)
{
    StatsLineContext context;
    context.nodeBudget = 2000;
    context.hasIncumbent = true;
    context.degradationJson =
        "{\"requested\":\"optimal\",\"delivered\":\"incumbent\","
        "\"steps\":[{\"stage\":\"optimal\","
        "\"status\":\"budget-exhausted\"},"
        "{\"stage\":\"incumbent\",\"status\":\"delivered\"}]}";
    const std::string line =
        statsJsonLine(sampleStats(), "optimal",
                      SearchStatus::BudgetExhausted, 105, 49, context);
    const auto root = parseLine(line);
    const auto degradation = root->get("degradation");
    ASSERT_TRUE(degradation && degradation->isObject()) << line;
    EXPECT_EQ(degradation->get("requested")->asString(), "optimal");
    EXPECT_EQ(degradation->get("delivered")->asString(), "incumbent");
    const auto steps = degradation->get("steps");
    ASSERT_TRUE(steps && steps->isArray());
    ASSERT_EQ(steps->asArray().size(), 2u);
    EXPECT_EQ(steps->asArray()[0]->get("stage")->asString(), "optimal");
    EXPECT_EQ(steps->asArray()[1]->get("status")->asString(),
              "delivered");
}

/**
 * Guard-related context fields must not perturb the line when the
 * run finished normally: a Solved line with guard limits set parses
 * to the same keys as one without (the limits only surface in the
 * detail of guard-stop statuses).
 */
TEST(StatsJsonRoundTripTest, GuardContextInvisibleOnSolvedLines)
{
    StatsLineContext plain;
    plain.provenOptimal = true;
    StatsLineContext guarded = plain;
    guarded.deadlineMs = 10'000;
    guarded.maxPoolBytes = 1 << 30;
    const std::string a = statsJsonLine(sampleStats(), "optimal",
                                        SearchStatus::Solved, 4, 0,
                                        plain);
    const std::string b = statsJsonLine(sampleStats(), "optimal",
                                        SearchStatus::Solved, 4, 0,
                                        guarded);
    EXPECT_EQ(a, b);
}

TEST(StatsJsonRoundTripTest, StatusNamesAreStable)
{
    EXPECT_STREQ(toString(SearchStatus::Solved), "solved");
    EXPECT_STREQ(toString(SearchStatus::BudgetExhausted),
                 "budget-exhausted");
    EXPECT_STREQ(toString(SearchStatus::Infeasible), "infeasible");
    EXPECT_STREQ(toString(SearchStatus::DeadlineExceeded),
                 "deadline-exceeded");
    EXPECT_STREQ(toString(SearchStatus::MemoryExhausted),
                 "memory-exhausted");
    EXPECT_STREQ(toString(SearchStatus::Cancelled), "cancelled");
}

} // namespace
} // namespace toqm::search
