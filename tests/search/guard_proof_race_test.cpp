/**
 * @file
 * Regression tests for the proof-vs-stop race at the guard seam.
 *
 * A mapper can prove optimality inside the SAME poll window in which
 * a guard condition trips (deadline expires, a cancel token flips, a
 * portfolio race is stopped).  The contract — relied on by the exit
 * code table and by portfolio winner selection — is that a found
 * proof WINS: the terminal node is consulted before the guard, so
 * the run reports Solved / proven-optimal, never DeadlineExceeded or
 * Cancelled.
 *
 * The tests pin the race deterministically: the stop condition is
 * already true when the search starts (a pre-set cancel token — the
 * IncumbentChannel seam the portfolio uses), but the probe interval
 * is so large that the guard can never probe during a small search.
 * Any terminal-after-guard regression flips these runs to Cancelled.
 */

#include <atomic>

#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "ir/circuit.hpp"
#include "ir/generators.hpp"
#include "parallel/portfolio.hpp"
#include "search/incumbent_channel.hpp"
#include "search/resource_guard.hpp"
#include "toqm/ida_star.hpp"
#include "toqm/mapper.hpp"

namespace {

using namespace toqm;

/** Guard config with a stop condition that is ALREADY true but can
 *  never be observed: the proof must win the race. */
search::GuardConfig
pendingStopNeverProbed(const std::atomic<bool> &token)
{
    search::GuardConfig guard;
    guard.cancelToken = &token;
    guard.probeInterval = 1u << 30;
    return guard;
}

TEST(GuardProofRaceTest, AStarProofBeatsPendingCancel)
{
    const std::atomic<bool> stop{true};
    core::MapperConfig config;
    config.guard = pendingStopNeverProbed(stop);
    core::OptimalMapper mapper(arch::byName("ibmqx2"), config);
    const core::MapperResult res = mapper.map(ir::qftSkeleton(4));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.status, search::SearchStatus::Solved);
    EXPECT_FALSE(res.fromIncumbent);
}

TEST(GuardProofRaceTest, AStarObservedCancelStillUnwinds)
{
    // Sanity inverse: with the guard probing every expansion the
    // same pending token MUST stop the run — proving the race test
    // above passes because of terminal-before-guard ordering, not
    // because the token is ignored.
    const std::atomic<bool> stop{true};
    core::MapperConfig config;
    config.guard.cancelToken = &stop;
    config.guard.probeInterval = 1;
    core::OptimalMapper mapper(arch::byName("ibmqx2"), config);
    const core::MapperResult res = mapper.map(ir::qftSkeleton(4));
    EXPECT_EQ(res.status, search::SearchStatus::Cancelled);
}

TEST(GuardProofRaceTest, IdaProofBeatsPendingCancel)
{
    const std::atomic<bool> stop{true};
    const core::IdaResult res = core::idaStarMap(
        arch::byName("ibmqx2"), ir::qftSkeleton(4),
        ir::LatencyModel::qftPreset(), /*allow_mixing=*/true,
        /*max_expanded=*/50'000'000,
        pendingStopNeverProbed(stop));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.status, search::SearchStatus::Solved);
    EXPECT_FALSE(res.fromIncumbent);
}

TEST(GuardProofRaceTest, PortfolioProofBeatsPendingStop)
{
    // The same race at the portfolio seam: the merged per-entry
    // guards carry the external token alongside the channel's stop
    // token, and the winner rule must report the proof.
    const std::atomic<bool> stop{true};
    parallel::PortfolioConfig cfg = parallel::defaultPortfolio();
    cfg.guard = pendingStopNeverProbed(stop);
    const parallel::PortfolioResult res =
        parallel::PortfolioMapper(arch::byName("ibmqx2"), cfg)
            .map(ir::qftSkeleton(4));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.status, search::SearchStatus::Solved);
    EXPECT_TRUE(res.provenOptimal);
}

} // namespace
