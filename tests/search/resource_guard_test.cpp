#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "arch/architectures.hpp"
#include "ir/mapped_circuit.hpp"
#include "search/node_pool.hpp"
#include "search/resource_guard.hpp"
#include "search/search_context.hpp"

namespace toqm::search {
namespace {

/** Tiny circuit + pool for the memory-ceiling tests. */
struct PoolFixture
{
    ir::Circuit circuit;
    arch::CouplingGraph graph;
    ir::LatencyModel latency;
    SearchContext ctx;
    NodePool pool;

    PoolFixture()
        : circuit(makeCircuit()), graph(arch::lnn(3)),
          latency(ir::LatencyModel::qftPreset()),
          ctx(circuit, graph, latency), pool(ctx)
    {}

    static ir::Circuit
    makeCircuit()
    {
        ir::Circuit c(3);
        c.addCX(0, 1);
        c.addCX(1, 2);
        return c;
    }
};

TEST(ResourceGuardTest, DefaultConstructedGuardIsDisarmed)
{
    ResourceGuard guard;
    EXPECT_FALSE(guard.armed());
    for (int i = 0; i < 10'000; ++i)
        EXPECT_EQ(guard.poll(), StopReason::None);
    EXPECT_EQ(guard.stop(), StopReason::None);
    EXPECT_EQ(guard.probes(), 0u);
}

TEST(ResourceGuardTest, AllDefaultConfigIsDisabled)
{
    GuardConfig config;
    EXPECT_FALSE(config.enabled());
    ResourceGuard guard(config, nullptr);
    EXPECT_FALSE(guard.armed());
}

TEST(ResourceGuardTest, ExpiredDeadlineTripsWithinOneProbeInterval)
{
    GuardConfig config;
    config.deadlineMs = 1;
    config.probeInterval = 8;
    ResourceGuard guard(config, nullptr);
    ASSERT_TRUE(guard.armed());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    // The deadline has passed; the trip must land on the first probe,
    // i.e. within probeInterval polls.
    StopReason seen = StopReason::None;
    for (std::uint32_t i = 0; i < config.probeInterval; ++i)
        seen = guard.poll();
    EXPECT_EQ(seen, StopReason::Deadline);
    EXPECT_EQ(guard.stop(), StopReason::Deadline);
    EXPECT_EQ(guard.probes(), 1u);
}

TEST(ResourceGuardTest, StopIsSticky)
{
    GuardConfig config;
    config.deadlineMs = 1;
    config.probeInterval = 1;
    ResourceGuard guard(config, nullptr);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(guard.poll(), StopReason::Deadline);
    const std::uint64_t probes_at_trip = guard.probes();
    // Once tripped, no further cold probes run and the reason stays.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(guard.poll(), StopReason::Deadline);
    EXPECT_EQ(guard.probes(), probes_at_trip);
}

TEST(ResourceGuardTest, GenerousDeadlineDoesNotTrip)
{
    GuardConfig config;
    config.deadlineMs = 60'000;
    config.probeInterval = 1;
    ResourceGuard guard(config, nullptr);
    for (int i = 0; i < 1'000; ++i)
        EXPECT_EQ(guard.poll(), StopReason::None);
    EXPECT_GE(guard.probes(), 1'000u);
}

TEST(ResourceGuardTest, MemoryCeilingTripsOncePoolOutgrowsIt)
{
    PoolFixture f;
    NodeRef root = f.pool.root({0, 1, 2}, false);
    ASSERT_TRUE(root);
    GuardConfig config;
    config.maxPoolBytes = 1; // any slab exceeds this
    config.probeInterval = 1;
    ResourceGuard guard(config, &f.pool);
    ASSERT_TRUE(guard.armed());
    EXPECT_GT(f.pool.peakBytes(), config.maxPoolBytes);
    EXPECT_EQ(guard.poll(), StopReason::Memory);
    EXPECT_EQ(statusFor(guard.stop()), SearchStatus::MemoryExhausted);
}

TEST(ResourceGuardTest, MemoryCeilingWithoutPoolIsIgnored)
{
    GuardConfig config;
    config.maxPoolBytes = 1;
    config.probeInterval = 1;
    ResourceGuard guard(config, nullptr);
    ASSERT_TRUE(guard.armed());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(guard.poll(), StopReason::None);
}

TEST(ResourceGuardTest, CancellationHonoredOnlyWhenOptedIn)
{
    clearCancellation();
    EXPECT_FALSE(cancellationRequested());
    requestCancellation();
    EXPECT_TRUE(cancellationRequested());

    GuardConfig deaf;
    deaf.deadlineMs = 60'000; // armed, but not honoring cancellation
    deaf.probeInterval = 1;
    ResourceGuard deaf_guard(deaf, nullptr);
    EXPECT_EQ(deaf_guard.poll(), StopReason::None);

    GuardConfig config;
    config.honorCancellation = true;
    config.probeInterval = 1;
    ResourceGuard guard(config, nullptr);
    EXPECT_EQ(guard.poll(), StopReason::Cancelled);
    EXPECT_EQ(statusFor(guard.stop()), SearchStatus::Cancelled);

    clearCancellation();
    EXPECT_FALSE(cancellationRequested());
}

TEST(ResourceGuardTest, CancellationBeatsDeadline)
{
    clearCancellation();
    requestCancellation();
    GuardConfig config;
    config.deadlineMs = 1;
    config.honorCancellation = true;
    config.probeInterval = 1;
    ResourceGuard guard(config, nullptr);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    // Both conditions hold; cancellation ranks first.
    EXPECT_EQ(guard.poll(), StopReason::Cancelled);
    clearCancellation();
}

TEST(ResourceGuardTest, ZeroProbeIntervalIsClampedToOne)
{
    GuardConfig config;
    config.deadlineMs = 1;
    config.probeInterval = 0;
    ResourceGuard guard(config, nullptr);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(guard.poll(), StopReason::Deadline);
}

TEST(ResourceGuardTest, StopReasonNames)
{
    EXPECT_STREQ(toString(StopReason::None), "none");
    EXPECT_STREQ(toString(StopReason::Deadline), "deadline");
    EXPECT_STREQ(toString(StopReason::Memory), "memory");
    EXPECT_STREQ(toString(StopReason::Cancelled), "cancelled");
}

TEST(ResourceGuardTest, StatusMapping)
{
    EXPECT_EQ(statusFor(StopReason::None), SearchStatus::Solved);
    EXPECT_EQ(statusFor(StopReason::Deadline),
              SearchStatus::DeadlineExceeded);
    EXPECT_EQ(statusFor(StopReason::Memory),
              SearchStatus::MemoryExhausted);
    EXPECT_EQ(statusFor(StopReason::Cancelled), SearchStatus::Cancelled);
}

} // namespace
} // namespace toqm::search
