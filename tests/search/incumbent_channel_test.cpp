#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "search/incumbent_channel.hpp"
#include "search/search_stats.hpp"

namespace toqm::search {
namespace {

TEST(IncumbentChannelTest, StartsWithNoBoundAndNoStop)
{
    IncumbentChannel channel;
    EXPECT_EQ(channel.bound(), IncumbentChannel::kNoBound);
    EXPECT_FALSE(channel.stopRequested());
}

TEST(IncumbentChannelTest, OfferIsMonotoneDecreasing)
{
    IncumbentChannel channel;
    EXPECT_TRUE(channel.offer(40));
    EXPECT_EQ(channel.bound(), 40);
    EXPECT_FALSE(channel.offer(50)); // worse: rejected
    EXPECT_EQ(channel.bound(), 40);
    EXPECT_FALSE(channel.offer(40)); // equal: no improvement
    EXPECT_TRUE(channel.offer(30));
    EXPECT_EQ(channel.bound(), 30);
}

TEST(IncumbentChannelTest, StopIsSticky)
{
    IncumbentChannel channel;
    channel.requestStop();
    EXPECT_TRUE(channel.stopRequested());
    channel.requestStop();
    EXPECT_TRUE(channel.stopRequested());
    ASSERT_NE(channel.stopToken(), nullptr);
    EXPECT_TRUE(channel.stopToken()->load());
}

TEST(IncumbentChannelTest, ConcurrentOffersKeepTheMinimum)
{
    IncumbentChannel channel;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&channel, t] {
            for (int i = 200; i > 0; --i)
                channel.offer(i * 4 + t);
        });
    }
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(channel.bound(), 4); // min over i*4+t = 1*4+0
}

TEST(StatsAccumulatorTest, StartsEmpty)
{
    StatsAccumulator acc;
    EXPECT_EQ(acc.runs(), 0u);
    EXPECT_EQ(acc.total().expanded, 0u);
}

TEST(StatsAccumulatorTest, FoldsSumsAndPeaks)
{
    SearchStats a;
    a.expanded = 10;
    a.generated = 20;
    a.seconds = 0.5;
    a.peakPoolBytes = 1000;
    SearchStats b;
    b.expanded = 5;
    b.generated = 7;
    b.seconds = 0.25;
    b.peakPoolBytes = 4000;

    StatsAccumulator acc;
    acc.add(a);
    acc.add(b);
    const SearchStats total = acc.total();
    EXPECT_EQ(acc.runs(), 2u);
    EXPECT_EQ(total.expanded, 15u);
    EXPECT_EQ(total.generated, 27u);
    EXPECT_DOUBLE_EQ(total.seconds, 0.75);
    EXPECT_EQ(total.peakPoolBytes, 4000u); // max, not sum
}

TEST(StatsAccumulatorTest, ConcurrentAddsAllLand)
{
    StatsAccumulator acc;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&acc] {
            for (int i = 0; i < 250; ++i) {
                SearchStats s;
                s.expanded = 1;
                acc.add(s);
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    EXPECT_EQ(acc.runs(), 1000u);
    EXPECT_EQ(acc.total().expanded, 1000u);
}

} // namespace
} // namespace toqm::search
