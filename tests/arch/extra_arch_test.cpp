#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "sim/verifier.hpp"

namespace toqm::arch {
namespace {

TEST(RingTest, ShapeAndDistances)
{
    const CouplingGraph g = ring(8);
    EXPECT_EQ(g.numQubits(), 8);
    EXPECT_EQ(g.numEdges(), 8);
    EXPECT_TRUE(g.adjacent(7, 0)); // wrap edge
    EXPECT_EQ(g.distance(0, 4), 4);
    EXPECT_EQ(g.distance(0, 6), 2); // the short way around
    EXPECT_EQ(g.diameter(), 4);
}

TEST(StarTest, CenterReachesEverything)
{
    const CouplingGraph g = star(6);
    EXPECT_EQ(g.numEdges(), 5);
    for (int i = 1; i < 6; ++i)
        EXPECT_EQ(g.distance(0, i), 1);
    EXPECT_EQ(g.distance(1, 5), 2);
    EXPECT_EQ(g.diameter(), 2);
}

TEST(FullyConnectedTest, EverythingAdjacent)
{
    const CouplingGraph g = fullyConnected(5);
    EXPECT_EQ(g.numEdges(), 10);
    EXPECT_EQ(g.diameter(), 1);
}

TEST(FullyConnectedTest, MapperNeedsNoSwaps)
{
    // On the ideal architecture, any circuit maps at its ideal
    // depth with zero swaps — the definition of the paper's "ideal
    // cycle" column.
    const CouplingGraph g = fullyConnected(6);
    const ir::Circuit c = ir::qftSkeleton(6);
    heuristic::HeuristicMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.mapped.physical.numSwaps(), 0);
}

TEST(HeavyHexTest, DegreeBoundedByThree)
{
    const CouplingGraph g = heavyHexRow(3);
    EXPECT_TRUE(g.connected());
    for (int p = 0; p < g.numQubits(); ++p)
        EXPECT_LE(static_cast<int>(g.neighbors(p).size()), 3)
            << "qubit " << p;
}

TEST(HeavyHexTest, SizesGrowLinearly)
{
    // 2*(2c+1) + (c+1) qubits per c-cell strip.
    EXPECT_EQ(heavyHexRow(1).numQubits(), 8);
    EXPECT_EQ(heavyHexRow(2).numQubits(), 13);
    EXPECT_EQ(heavyHexRow(3).numQubits(), 18);
}

TEST(HeavyHexTest, MapperRoutesAcrossCells)
{
    const CouplingGraph g = heavyHexRow(2);
    const ir::Circuit c = ir::benchmarkStandIn("hex_probe", 8, 200);
    heuristic::HeuristicMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(sim::verifyMapping(c, res.mapped, g).ok);
    EXPECT_GT(res.mapped.physical.numSwaps(), 0); // sparse: must route
}

TEST(ByNameTest, ResolvesNewFamilies)
{
    EXPECT_EQ(byName("ring8").numQubits(), 8);
    EXPECT_EQ(byName("star5").numQubits(), 5);
    EXPECT_EQ(byName("full4").numQubits(), 4);
    EXPECT_EQ(byName("heavyhex2").numQubits(), 13);
}

TEST(ByNameTest, AllKnownArchitecturesStillResolve)
{
    for (const auto &name : knownArchitectures()) {
        const CouplingGraph g = byName(name);
        EXPECT_TRUE(g.connected()) << name;
    }
}

} // namespace
} // namespace toqm::arch
