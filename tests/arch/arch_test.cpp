#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "arch/coupling_graph.hpp"

namespace toqm::arch {
namespace {

TEST(CouplingGraphTest, BasicAdjacency)
{
    const CouplingGraph g(3, {{0, 1}, {1, 2}});
    EXPECT_TRUE(g.adjacent(0, 1));
    EXPECT_TRUE(g.adjacent(1, 0));
    EXPECT_FALSE(g.adjacent(0, 2));
    EXPECT_EQ(g.numEdges(), 2);
}

TEST(CouplingGraphTest, DuplicateAndReversedEdgesIgnored)
{
    const CouplingGraph g(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
    EXPECT_EQ(g.numEdges(), 2);
}

TEST(CouplingGraphTest, RejectsSelfLoopAndRange)
{
    EXPECT_THROW(CouplingGraph(2, {{0, 0}}), std::invalid_argument);
    EXPECT_THROW(CouplingGraph(2, {{0, 2}}), std::out_of_range);
}

TEST(CouplingGraphTest, Distances)
{
    const CouplingGraph g = lnn(5);
    EXPECT_EQ(g.distance(0, 0), 0);
    EXPECT_EQ(g.distance(0, 1), 1);
    EXPECT_EQ(g.distance(0, 4), 4);
    EXPECT_EQ(g.distance(4, 0), 4);
}

TEST(CouplingGraphTest, Connectivity)
{
    EXPECT_TRUE(lnn(6).connected());
    const CouplingGraph disconnected(4, {{0, 1}, {2, 3}});
    EXPECT_FALSE(disconnected.connected());
}

TEST(CouplingGraphTest, Diameter)
{
    EXPECT_EQ(lnn(6).diameter(), 5);
    EXPECT_EQ(grid(2, 3).diameter(), 3);
}

TEST(CouplingGraphTest, LongestSimplePathOnChain)
{
    EXPECT_EQ(lnn(6).longestSimplePath(), 5);
}

TEST(CouplingGraphTest, LongestSimplePathOnGrid)
{
    // A 2x3 grid has a Hamiltonian path: 5 edges.
    EXPECT_EQ(grid(2, 3).longestSimplePath(), 5);
    EXPECT_EQ(grid(2, 4).longestSimplePath(), 7);
}

TEST(CouplingGraphTest, NeighborsSorted)
{
    const CouplingGraph g = grid(2, 2);
    EXPECT_EQ(g.neighbors(0), (std::vector<int>{1, 2}));
}

TEST(ArchitecturesTest, LnnShape)
{
    const CouplingGraph g = lnn(7);
    EXPECT_EQ(g.numQubits(), 7);
    EXPECT_EQ(g.numEdges(), 6);
}

TEST(ArchitecturesTest, GridShape)
{
    const CouplingGraph g = grid(3, 4);
    EXPECT_EQ(g.numQubits(), 12);
    // 3*3 horizontal + 2*4 vertical.
    EXPECT_EQ(g.numEdges(), 17);
    EXPECT_TRUE(g.adjacent(0, 1));
    EXPECT_TRUE(g.adjacent(0, 4));
    EXPECT_FALSE(g.adjacent(3, 4)); // row wrap must not couple
}

TEST(ArchitecturesTest, QX2Bowtie)
{
    const CouplingGraph g = ibmQX2();
    EXPECT_EQ(g.numQubits(), 5);
    EXPECT_EQ(g.numEdges(), 6);
    EXPECT_TRUE(g.adjacent(0, 2));
    EXPECT_TRUE(g.adjacent(2, 4));
    EXPECT_FALSE(g.adjacent(0, 3));
}

TEST(ArchitecturesTest, TokyoShape)
{
    const CouplingGraph g = ibmQ20Tokyo();
    EXPECT_EQ(g.numQubits(), 20);
    // 4x5 grid: 16 horizontal + 15 vertical, + 12 diagonals.
    EXPECT_EQ(g.numEdges(), 43);
    EXPECT_TRUE(g.adjacent(1, 7));
    EXPECT_TRUE(g.adjacent(2, 6));
    EXPECT_TRUE(g.connected());
    EXPECT_LE(g.diameter(), 5);
}

TEST(ArchitecturesTest, Aspen4Shape)
{
    const CouplingGraph g = aspen4();
    EXPECT_EQ(g.numQubits(), 16);
    EXPECT_EQ(g.numEdges(), 18); // two octagons + two bridges
    EXPECT_TRUE(g.connected());
}

TEST(ArchitecturesTest, MelbourneLadder)
{
    const CouplingGraph g = ibmMelbourne();
    EXPECT_EQ(g.numQubits(), 14);
    EXPECT_TRUE(g.connected());
    EXPECT_EQ(g.name(), "melbourne");
}

TEST(ArchitecturesTest, ByNameResolvesTableNames)
{
    EXPECT_EQ(byName("ibmqx2").numQubits(), 5);
    EXPECT_EQ(byName("grid2by3").numQubits(), 6);
    EXPECT_EQ(byName("grid2by4").numQubits(), 8);
    EXPECT_EQ(byName("grid2x4").numQubits(), 8);
    EXPECT_EQ(byName("aspen-4").numQubits(), 16);
    EXPECT_EQ(byName("tokyo").numQubits(), 20);
    EXPECT_EQ(byName("lnn9").numQubits(), 9);
    EXPECT_THROW(byName("nonexistent"), std::invalid_argument);
}

TEST(ArchitecturesTest, KnownArchitecturesAllResolve)
{
    for (const auto &name : knownArchitectures())
        EXPECT_NO_THROW(byName(name)) << name;
}

} // namespace
} // namespace toqm::arch
