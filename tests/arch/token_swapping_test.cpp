#include <gtest/gtest.h>

#include <numeric>

#include "arch/architectures.hpp"
#include "arch/token_swapping.hpp"

namespace toqm::arch {
namespace {

/** Apply @p swaps to the identity content map and return content[]. */
std::vector<int>
applySwaps(int n, const std::vector<std::pair<int, int>> &swaps)
{
    std::vector<int> content(static_cast<size_t>(n));
    std::iota(content.begin(), content.end(), 0);
    for (const auto &[a, b] : swaps)
        std::swap(content[static_cast<size_t>(a)],
                  content[static_cast<size_t>(b)]);
    return content;
}

void
expectRealizes(const CouplingGraph &g, const std::vector<int> &target)
{
    const auto swaps = routePermutation(g, target);
    for (const auto &[a, b] : swaps)
        EXPECT_TRUE(g.adjacent(a, b))
            << "swap on non-edge " << a << "," << b;
    const auto content = applySwaps(g.numQubits(), swaps);
    for (int p = 0; p < g.numQubits(); ++p) {
        if (target[static_cast<size_t>(p)] >= 0) {
            EXPECT_EQ(content[static_cast<size_t>(p)],
                      target[static_cast<size_t>(p)])
                << "position " << p;
        }
    }
}

TEST(TokenSwappingTest, IdentityNeedsNoSwaps)
{
    const auto g = lnn(5);
    std::vector<int> target(5);
    std::iota(target.begin(), target.end(), 0);
    EXPECT_TRUE(routePermutation(g, target).empty());
}

TEST(TokenSwappingTest, AdjacentTransposition)
{
    const auto g = lnn(3);
    expectRealizes(g, {1, 0, 2});
}

TEST(TokenSwappingTest, FullReversalOnChain)
{
    const auto g = lnn(6);
    expectRealizes(g, {5, 4, 3, 2, 1, 0});
}

TEST(TokenSwappingTest, CycleOnGrid)
{
    const auto g = grid(2, 3);
    expectRealizes(g, {1, 2, 0, 4, 5, 3});
}

TEST(TokenSwappingTest, DontCarePositions)
{
    const auto g = lnn(5);
    // Only constrain two positions; the rest may hold anything.
    std::vector<int> target{4, -1, -1, -1, 0};
    const auto swaps = routePermutation(g, target);
    const auto content = applySwaps(5, swaps);
    EXPECT_EQ(content[0], 4);
    EXPECT_EQ(content[4], 0);
}

TEST(TokenSwappingTest, RandomPermutationsAcrossArchitectures)
{
    std::uint64_t state = 12345;
    const auto next = [&state]() {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    };
    for (const char *name : {"lnn7", "grid2by4", "ibmqx2", "tokyo",
                             "ring8", "heavyhex2", "aspen-4"}) {
        const auto g = byName(name);
        for (int trial = 0; trial < 5; ++trial) {
            std::vector<int> target(
                static_cast<size_t>(g.numQubits()));
            std::iota(target.begin(), target.end(), 0);
            for (int i = g.numQubits() - 1; i > 0; --i) {
                std::swap(
                    target[static_cast<size_t>(i)],
                    target[static_cast<size_t>(next() %
                                                static_cast<std::uint64_t>(
                                                    i + 1))]);
            }
            expectRealizes(g, target);
        }
    }
}

TEST(TokenSwappingTest, SwapCountIsQuadraticallyBounded)
{
    const auto g = lnn(8);
    std::vector<int> target{7, 6, 5, 4, 3, 2, 1, 0};
    const auto swaps = routePermutation(g, target);
    EXPECT_LE(static_cast<int>(swaps.size()), 8 * 8);
}

TEST(TokenSwappingTest, RejectsNonInjectiveTarget)
{
    const auto g = lnn(3);
    EXPECT_THROW(routePermutation(g, {0, 0, -1}),
                 std::invalid_argument);
}

TEST(TokenSwappingTest, RouteBackToInitial)
{
    const auto g = grid(2, 3);
    // Logical qubits started at {0, 1, 2} and ended at {4, 0, 2}.
    const std::vector<int> initial{0, 1, 2};
    const std::vector<int> final_layout{4, 0, 2};
    const auto swaps = routeBackToInitial(g, initial, final_layout);
    auto content = applySwaps(g.numQubits(), swaps);
    // The content that finished at final_layout[l] is back home.
    for (size_t l = 0; l < initial.size(); ++l) {
        EXPECT_EQ(content[static_cast<size_t>(initial[l])],
                  final_layout[l]);
    }
}

} // namespace
} // namespace toqm::arch
