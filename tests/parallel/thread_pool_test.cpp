#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/batch.hpp"
#include "parallel/thread_pool.hpp"

namespace toqm::parallel {
namespace {

TEST(ThreadPoolTest, ConstructsAndJoinsWithNoTasks)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.workerCount(), 3u);
}

TEST(ThreadPoolTest, ZeroWorkersMeansAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.workerCount(), 1u);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitCoversTasksSubmittedByTasks)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&pool, &count] {
            // Worker-side submit: lands on this worker's own deque.
            pool.submit([&count] { ++count; });
            ++count;
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, PoolIsReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, CurrentWorkerIndexIsMinusOneOffPool)
{
    EXPECT_EQ(ThreadPool::currentWorkerIndex(), -1);
}

TEST(ThreadPoolTest, CurrentWorkerIndexIsDenseOnPool)
{
    ThreadPool pool(3);
    std::mutex mutex;
    std::vector<int> seen;
    for (int i = 0; i < 64; ++i) {
        pool.submit([&mutex, &seen] {
            const int index = ThreadPool::currentWorkerIndex();
            const std::lock_guard<std::mutex> lock(mutex);
            seen.push_back(index);
        });
    }
    pool.wait();
    ASSERT_EQ(seen.size(), 64u);
    for (const int index : seen) {
        EXPECT_GE(index, 0);
        EXPECT_LT(index, 3);
    }
}

TEST(ThreadPoolTest, IdleWorkerStealsFromBusyWorkersDeque)
{
    // One worker spawns a subtask onto its OWN deque (LIFO slot),
    // then blocks until somebody runs it.  The owner is blocked, so
    // only a steal by the other worker can make progress.
    ThreadPool pool(2);
    std::mutex mutex;
    std::condition_variable cv;
    bool subtask_ran = false;
    int subtask_worker = -1;

    pool.submit([&] {
        pool.submit([&] {
            const std::lock_guard<std::mutex> lock(mutex);
            subtask_ran = true;
            subtask_worker = ThreadPool::currentWorkerIndex();
            cv.notify_all();
        });
        std::unique_lock<std::mutex> lock(mutex);
        const bool ok = cv.wait_for(
            lock, std::chrono::seconds(30),
            [&subtask_ran] { return subtask_ran; });
        EXPECT_TRUE(ok) << "subtask was never stolen";
    });
    pool.wait();

    EXPECT_TRUE(subtask_ran);
    EXPECT_GE(subtask_worker, 0);
    EXPECT_GE(pool.steals(), 1u);
}

TEST(WorkerLocalTest, OffPoolThreadUsesSlotZero)
{
    ThreadPool pool(2);
    WorkerLocal<int> slots(pool);
    ASSERT_EQ(slots.slots().size(), 3u);
    slots.local() = 42;
    EXPECT_EQ(slots.slots()[0], 42);
}

TEST(WorkerLocalTest, PerWorkerAccumulationMergesExactly)
{
    ThreadPool pool(4);
    WorkerLocal<long> partial(pool);
    for (int i = 1; i <= 1000; ++i)
        pool.submit([&partial, i] { partial.local() += i; });
    pool.wait();
    long total = 0;
    for (const long p : partial.slots())
        total += p;
    EXPECT_EQ(total, 1000L * 1001L / 2);
}

TEST(BatchTest, CodesComeBackInInputOrder)
{
    ThreadPool pool(4);
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 20; ++i)
        jobs.push_back([i] { return i % 5; });
    const std::vector<int> codes = runBatch(pool, jobs);
    ASSERT_EQ(codes.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(codes[static_cast<std::size_t>(i)], i % 5);
}

TEST(BatchTest, WorstExitCodeIsNumericMax)
{
    EXPECT_EQ(worstExitCode({}), 0);
    EXPECT_EQ(worstExitCode({0, 0, 0}), 0);
    EXPECT_EQ(worstExitCode({0, 6, 4}), 6);
    EXPECT_EQ(worstExitCode({3, 0, 8, 1}), 8);
}

TEST(BatchTest, MoreWorkersThanJobsStillRunsEverything)
{
    ThreadPool pool(8);
    std::vector<std::function<int()>> jobs;
    for (int i = 0; i < 3; ++i)
        jobs.push_back([] { return 0; });
    const std::vector<int> codes = runBatch(pool, jobs);
    EXPECT_EQ(codes, (std::vector<int>{0, 0, 0}));
}

} // namespace
} // namespace toqm::parallel
