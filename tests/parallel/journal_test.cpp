/**
 * @file
 * Crash-safe batch journal: append durability, resume lookup,
 * torn-tail tolerance, and refusal of corrupt journals.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "parallel/journal.hpp"

namespace toqm::parallel {
namespace {

/** A fresh journal path under the test's scratch dir. */
class JournalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _path = (std::filesystem::temp_directory_path() /
                 ("toqm_journal_test_" +
                  std::to_string(::getpid()) + "_" +
                  ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name() +
                  ".jsonl"))
                    .string();
        std::filesystem::remove(_path);
    }

    void TearDown() override { std::filesystem::remove(_path); }

    std::string _path;
};

JournalRecord
record(const std::string &input, const std::string &dest, int code,
       const std::string &body)
{
    JournalRecord rec;
    rec.input = input;
    rec.dest = dest;
    rec.code = code;
    rec.bytes = body.size();
    rec.hash = fnv1aHash(body.data(), body.size());
    return rec;
}

TEST_F(JournalTest, LineShapeIsStable)
{
    const std::string line =
        journalLine(record("in.qasm", "out.qasm", 0, "body"));
    EXPECT_EQ(line.substr(0, 14), "{\"journal\":1,\"");
    EXPECT_NE(line.find("\"input\":\"in.qasm\""), std::string::npos);
    EXPECT_NE(line.find("\"dest\":\"out.qasm\""), std::string::npos);
    EXPECT_NE(line.find("\"code\":0"), std::string::npos);
    EXPECT_NE(line.find("\"bytes\":4"), std::string::npos);
    EXPECT_EQ(line.back(), '\n');
}

TEST_F(JournalTest, AppendThenReopenResumes)
{
    {
        Journal j;
        std::string error;
        ASSERT_TRUE(j.open(_path, error)) << error;
        EXPECT_TRUE(j.records().empty());
        j.append(record("a.qasm", "a.out", 0, "AAAA"));
        j.append(record("b.qasm", "b.out", 6, "BB"));
    }
    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(_path, error)) << error;
    ASSERT_EQ(j.records().size(), 2u);
    const JournalRecord *a = j.find("a.out");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->input, "a.qasm");
    EXPECT_EQ(a->code, 0);
    EXPECT_EQ(a->bytes, 4u);
    EXPECT_EQ(a->hash, fnv1aHash("AAAA", 4));
    const JournalRecord *b = j.find("b.out");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->code, 6);
    EXPECT_EQ(j.find("missing.out"), nullptr);
}

TEST_F(JournalTest, LatestRecordWinsForRedoneJob)
{
    {
        Journal j;
        std::string error;
        ASSERT_TRUE(j.open(_path, error)) << error;
        j.append(record("a.qasm", "a.out", 7, "old"));
        j.append(record("a.qasm", "a.out", 0, "fresh"));
    }
    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(_path, error)) << error;
    const JournalRecord *a = j.find("a.out");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->code, 0);
    EXPECT_EQ(a->bytes, 5u);
}

TEST_F(JournalTest, ToleratesTornFinalLine)
{
    {
        std::ofstream f(_path, std::ios::binary);
        f << journalLine(record("a.qasm", "a.out", 0, "AAAA"));
        f << "{\"journal\":1,\"input\":\"b.qa"; // crash mid-append
    }
    Journal j;
    std::string error;
    ASSERT_TRUE(j.open(_path, error)) << error;
    ASSERT_EQ(j.records().size(), 1u);
    EXPECT_NE(j.find("a.out"), nullptr);
    // ... and appending after the torn tail still yields loadable
    // records (the torn line is ignored again on the next open).
    j.append(record("c.qasm", "c.out", 0, "CC"));
    Journal k;
    ASSERT_TRUE(k.open(_path, error)) << error;
    EXPECT_NE(k.find("c.out"), nullptr);
}

TEST_F(JournalTest, RefusesGarbageInTheMiddle)
{
    {
        std::ofstream f(_path, std::ios::binary);
        f << "this is not a journal\n";
        f << journalLine(record("a.qasm", "a.out", 0, "AAAA"));
    }
    Journal j;
    std::string error;
    EXPECT_FALSE(j.open(_path, error));
    EXPECT_NE(error.find("malformed journal record"),
              std::string::npos);
}

} // namespace
} // namespace toqm::parallel
