/**
 * @file
 * Hardened manifest parser: well-formed manifests parse as before,
 * malformed ones are rejected with positioned errors instead of
 * silently shrinking the batch.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/manifest.hpp"

namespace toqm::parallel {
namespace {

std::vector<std::string>
parse(const std::string &text, const ManifestLimits &limits = {})
{
    std::istringstream in(text);
    return parseManifest(in, "<test>", limits);
}

TEST(ManifestTest, ParsesPathsSkippingBlanksAndComments)
{
    const auto entries = parse("a.qasm\n"
                               "\n"
                               "# a comment\n"
                               "  b.qasm  \n"
                               "\tc.qasm\r\n");
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0], "a.qasm");
    EXPECT_EQ(entries[1], "b.qasm");
    EXPECT_EQ(entries[2], "c.qasm");
}

TEST(ManifestTest, EmptyManifestIsEmptyNotAnError)
{
    EXPECT_TRUE(parse("").empty());
    EXPECT_TRUE(parse("# only comments\n\n").empty());
}

TEST(ManifestTest, RejectsNulByteWithPosition)
{
    try {
        parse(std::string("ok.qasm\nbad\0name.qasm\n", 22));
        FAIL() << "expected ManifestError";
    } catch (const ManifestError &e) {
        EXPECT_EQ(e.line(), 2u);
        EXPECT_EQ(e.column(), 4u);
        EXPECT_NE(std::string(e.what()).find("<test>:2:4"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("NUL"),
                  std::string::npos);
    }
}

TEST(ManifestTest, RejectsControlCharactersButAllowsTab)
{
    EXPECT_THROW(parse("a\x01.qasm\n"), ManifestError);
    EXPECT_THROW(parse("\x1b[31mred.qasm\n"), ManifestError);
    EXPECT_NO_THROW(parse("\ta.qasm\t\n")); // tab is whitespace
}

TEST(ManifestTest, RejectsOverlongLines)
{
    ManifestLimits limits;
    limits.maxLineLength = 16;
    EXPECT_NO_THROW(parse(std::string(16, 'a') + "\n", limits));
    try {
        parse(std::string(17, 'a') + "\n", limits);
        FAIL() << "expected ManifestError";
    } catch (const ManifestError &e) {
        EXPECT_EQ(e.line(), 1u);
        EXPECT_EQ(e.column(), 17u);
    }
}

TEST(ManifestTest, CapsEntryCount)
{
    ManifestLimits limits;
    limits.maxEntries = 3;
    EXPECT_NO_THROW(parse("a\nb\nc\n", limits));
    try {
        parse("a\nb\nc\nd\n", limits);
        FAIL() << "expected ManifestError";
    } catch (const ManifestError &e) {
        EXPECT_EQ(e.line(), 4u);
    }
}

TEST(ManifestTest, MissingFileThrows)
{
    EXPECT_THROW(parseManifestFile("/nonexistent/manifest.txt"),
                 std::runtime_error);
}

} // namespace
} // namespace toqm::parallel
