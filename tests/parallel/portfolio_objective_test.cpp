#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "arch/architectures.hpp"
#include "ir/circuit.hpp"
#include "ir/generators.hpp"
#include "objective/objective.hpp"
#include "parallel/portfolio.hpp"
#include "qasm/writer.hpp"
#include "search/cost_table.hpp"
#include "search/incumbent_channel.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

namespace toqm::parallel {
namespace {

// Heterogeneous-objective portfolio races: entry 0's objective is the
// race's, off-objective entries run channel-less, and the winner rule
// must never return a circuit strictly dominated by a loser's.

core::MapperConfig
qftBase()
{
    core::MapperConfig base;
    base.latency = ir::LatencyModel::qftPreset();
    return base;
}

/** Everything one fidelity race needs, with the table kept alive. */
struct FidelityRig
{
    arch::CouplingGraph graph = arch::lnn(4);
    ir::Circuit logical = ir::qftSkeleton(4);
    objective::Objective objective = objective::Objective::fidelity(
        objective::CalibrationData::synthesize(arch::lnn(4)));
    std::unique_ptr<search::CostTable> table =
        objective.makeTable(logical, graph);

    PortfolioEntry
    fidelityExact(const std::string &name) const
    {
        PortfolioEntry e;
        e.name = name;
        e.kind = PortfolioEntry::Kind::Exact;
        e.exact = qftBase();
        e.costTable = table.get();
        e.objectiveId = objective.objectiveId();
        e.objectiveName = objective.name();
        return e;
    }

    PortfolioEntry
    cyclesHeuristic(const std::string &name) const
    {
        PortfolioEntry e;
        e.name = name;
        e.kind = PortfolioEntry::Kind::Heuristic;
        e.heuristic.latency = ir::LatencyModel::qftPreset();
        return e;
    }
};

TEST(PortfolioObjectiveTest, HomogeneousFidelityRaceProvesTheSoloKey)
{
    const FidelityRig rig;
    PortfolioConfig config;
    config.entries.push_back(rig.fidelityExact("fid-astar"));
    config.entries.push_back(rig.fidelityExact("fid-astar-nofilter"));
    config.entries[1].exact.useFilter = false;

    core::MapperConfig solo_cfg = qftBase();
    solo_cfg.costTable = rig.table.get();
    const auto solo =
        core::OptimalMapper(rig.graph, solo_cfg).map(rig.logical);
    ASSERT_TRUE(solo.success);

    PortfolioMapper mapper(rig.graph, config);
    const PortfolioResult res = mapper.map(rig.logical);
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(res.provenOptimal);
    EXPECT_EQ(res.costKey, solo.costKey);
    EXPECT_TRUE(
        sim::verifyMapping(rig.logical, res.mapped, rig.graph).ok);
}

TEST(PortfolioObjectiveTest, MixedRaceSerialIsDeterministic)
{
    const FidelityRig rig;
    PortfolioConfig config;
    config.entries.push_back(rig.fidelityExact("fid-astar"));
    config.entries.push_back(rig.cyclesHeuristic("cyc-heuristic"));
    config.workers = 1;
    PortfolioMapper mapper(rig.graph, config);

    const PortfolioResult a = mapper.map(rig.logical);
    const PortfolioResult b = mapper.map(rig.logical);
    ASSERT_TRUE(a.success);
    ASSERT_TRUE(b.success);
    EXPECT_EQ(a.winner, b.winner);
    EXPECT_EQ(a.costKey, b.costKey);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(qasm::writeMappedCircuit(a.mapped),
              qasm::writeMappedCircuit(b.mapped));
    ASSERT_EQ(a.pareto.size(), b.pareto.size());
    for (std::size_t i = 0; i < a.pareto.size(); ++i) {
        EXPECT_EQ(a.pareto[i].entry, b.pareto[i].entry);
        EXPECT_EQ(a.pareto[i].cycles, b.pareto[i].cycles);
        EXPECT_EQ(a.pareto[i].costKey, b.pareto[i].costKey);
    }
}

TEST(PortfolioObjectiveTest, MixedRaceWinnerIsNeverDominated)
{
    const FidelityRig rig;
    PortfolioConfig config;
    config.entries.push_back(rig.fidelityExact("fid-astar"));
    config.entries.push_back(rig.cyclesHeuristic("cyc-heuristic"));
    PortfolioMapper mapper(rig.graph, config);
    const PortfolioResult res = mapper.map(rig.logical);
    ASSERT_TRUE(res.success);

    // The race's objective is entry 0's (fidelity), so res.costKey is
    // the winner's fidelity key.  No returned circuit may beat the
    // winner on BOTH axes — the pareto front holds every returned
    // non-dominated circuit, so checking against it covers all.
    ASSERT_FALSE(res.pareto.empty());
    for (const ParetoPoint &p : res.pareto) {
        EXPECT_FALSE(p.cycles < res.cycles &&
                     p.costKey < res.costKey)
            << p.name << " dominates the winner";
        EXPECT_TRUE(
            sim::verifyMapping(rig.logical, p.mapped, rig.graph).ok);
    }
    // And the front itself is mutually non-dominated and sorted.
    for (std::size_t i = 0; i < res.pareto.size(); ++i) {
        for (std::size_t j = 0; j < res.pareto.size(); ++j) {
            if (i == j)
                continue;
            EXPECT_FALSE(res.pareto[i].cycles <= res.pareto[j].cycles &&
                         res.pareto[i].costKey <=
                             res.pareto[j].costKey &&
                         (res.pareto[i].cycles < res.pareto[j].cycles ||
                          res.pareto[i].costKey <
                              res.pareto[j].costKey));
        }
        if (i > 0) {
            EXPECT_LE(res.pareto[i - 1].cycles, res.pareto[i].cycles);
        }
    }
}

TEST(PortfolioObjectiveTest, AllCyclesRaceJsonIsUnchanged)
{
    // A race with no objective annotations must keep the exact legacy
    // JSON shape: no "objective", no "cost", no "pareto" keys.
    PortfolioConfig config = defaultPortfolio(qftBase());
    config.workers = 1;
    PortfolioMapper mapper(arch::lnn(4), config);
    const PortfolioResult res = mapper.map(ir::qftSkeleton(4));
    ASSERT_TRUE(res.success);
    const std::string json = res.portfolioJson();
    EXPECT_EQ(json.find("\"objective\""), std::string::npos);
    EXPECT_EQ(json.find("\"pareto\""), std::string::npos);
    EXPECT_TRUE(res.pareto.empty());
}

TEST(PortfolioObjectiveTest, MixedRaceJsonCarriesObjectiveAndFront)
{
    const FidelityRig rig;
    PortfolioConfig config;
    config.entries.push_back(rig.fidelityExact("fid-astar"));
    config.entries.push_back(rig.cyclesHeuristic("cyc-heuristic"));
    PortfolioMapper mapper(rig.graph, config);
    const PortfolioResult res = mapper.map(rig.logical);
    ASSERT_TRUE(res.success);
    const std::string json = res.portfolioJson();
    EXPECT_NE(json.find("\"objective\":\"fidelity\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"cost\":"), std::string::npos) << json;
    EXPECT_NE(json.find("\"pareto\":["), std::string::npos) << json;
}

TEST(PortfolioObjectiveTest, ForeignKeyNeverPrunesTheFidelityOptimum)
{
    // Publishing the EXACT optimal fidelity key as a foreign
    // incumbent must not break the proof: strictly-greater pruning
    // keeps equal-key nodes, so the search still solves and proves.
    const FidelityRig rig;
    core::MapperConfig cfg = qftBase();
    cfg.costTable = rig.table.get();
    const auto solo =
        core::OptimalMapper(rig.graph, cfg).map(rig.logical);
    ASSERT_TRUE(solo.success);
    ASSERT_GE(solo.costKey, 0);

    search::IncumbentChannel channel;
    channel.offer(solo.costKey);
    cfg.channel = &channel;
    const auto res =
        core::OptimalMapper(rig.graph, cfg).map(rig.logical);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.status, search::SearchStatus::Solved);
    EXPECT_EQ(res.costKey, solo.costKey);
    EXPECT_FALSE(res.fromIncumbent);
}

TEST(PortfolioObjectiveTest, UnreachableForeignKeyIsNotInfeasible)
{
    // A key no schedule can reach (1) prunes the whole frontier; the
    // mapper must report the race cancelled and fall back to its own
    // incumbent instead of claiming the instance unsolvable.
    const FidelityRig rig;
    search::IncumbentChannel channel;
    channel.offer(1);
    core::MapperConfig cfg = qftBase();
    cfg.costTable = rig.table.get();
    cfg.channel = &channel;
    const auto res =
        core::OptimalMapper(rig.graph, cfg).map(rig.logical);
    EXPECT_EQ(res.status, search::SearchStatus::Cancelled);
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(res.fromIncumbent);
    EXPECT_GT(res.costKey, 1);
    EXPECT_TRUE(
        sim::verifyMapping(rig.logical, res.mapped, rig.graph).ok);
}

} // namespace
} // namespace toqm::parallel
