#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "arch/architectures.hpp"
#include "ir/circuit.hpp"
#include "ir/gate.hpp"
#include "ir/generators.hpp"
#include "ir/mapped_circuit.hpp"
#include "parallel/portfolio.hpp"
#include "qasm/writer.hpp"
#include "search/incumbent_channel.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

namespace toqm::parallel {
namespace {

core::MapperConfig
qftBase()
{
    core::MapperConfig base;
    base.latency = ir::LatencyModel::qftPreset();
    return base;
}

TEST(DefaultPortfolioTest, FourEntriesInPriorityOrder)
{
    const PortfolioConfig config = defaultPortfolio();
    ASSERT_EQ(config.entries.size(), 4u);
    EXPECT_EQ(config.entries[0].name, "astar");
    EXPECT_EQ(config.entries[1].name, "astar-nofilter");
    EXPECT_FALSE(config.entries[1].exact.useFilter);
    EXPECT_EQ(config.entries[2].name, "ida");
    EXPECT_EQ(config.entries[2].kind, PortfolioEntry::Kind::Ida);
    EXPECT_EQ(config.entries[3].name, "heuristic");
    EXPECT_EQ(config.entries[3].kind,
              PortfolioEntry::Kind::Heuristic);
}

TEST(DefaultPortfolioTest, CapTruncatesInPriorityOrder)
{
    const PortfolioConfig two = defaultPortfolio({}, 2);
    ASSERT_EQ(two.entries.size(), 2u);
    EXPECT_EQ(two.entries[0].name, "astar");
    EXPECT_EQ(two.entries[1].name, "astar-nofilter");
    EXPECT_EQ(defaultPortfolio({}, 1).entries.size(), 1u);
    // A nonsensical cap still yields a usable portfolio.
    EXPECT_EQ(defaultPortfolio({}, 0).entries.size(), 1u);
}

TEST(DefaultPortfolioTest, BasePropagatesToEveryEntry)
{
    core::MapperConfig base = qftBase();
    base.searchInitialMapping = true;
    const PortfolioConfig config = defaultPortfolio(base);
    for (const PortfolioEntry &entry : config.entries) {
        if (entry.kind == PortfolioEntry::Kind::Heuristic) {
            EXPECT_EQ(entry.heuristic.latency.swapLatency(),
                      base.latency.swapLatency());
        } else {
            EXPECT_EQ(entry.exact.latency.swapLatency(),
                      base.latency.swapLatency());
            EXPECT_TRUE(entry.exact.searchInitialMapping);
        }
    }
}

TEST(PortfolioMapperTest, EmptyPortfolioReportsFailure)
{
    PortfolioMapper mapper(arch::lnn(3), PortfolioConfig{});
    const PortfolioResult res = mapper.map(ir::ghz(3));
    EXPECT_FALSE(res.success);
    EXPECT_EQ(res.winner, -1);
}

TEST(PortfolioMapperTest, RaceSolvesAndVerifies)
{
    const auto graph = arch::lnn(5);
    const ir::Circuit logical = ir::qftSkeleton(5);
    PortfolioMapper mapper(graph, defaultPortfolio(qftBase()));
    const PortfolioResult res = mapper.map(logical);

    ASSERT_TRUE(res.success);
    ASSERT_GE(res.winner, 0);
    ASSERT_EQ(res.outcomes.size(), 4u);
    EXPECT_TRUE(res.provenOptimal);
    // QFT-5 on LNN-5 under the qft preset is 13 cycles (the exact
    // mapper's own regression value).
    EXPECT_EQ(res.cycles, 13);
    EXPECT_TRUE(sim::verifyMapping(logical, res.mapped, graph).ok);

    // Folded stats cover every entry that did work.
    EXPECT_GE(res.stats.expanded,
              res.outcomes[static_cast<std::size_t>(res.winner)]
                  .stats.expanded);
}

TEST(PortfolioMapperTest, SerialRaceIsFullyDeterministic)
{
    // With one pool worker the race is a deterministic sequence:
    // entry 0 proves first and stops the rest, so winner, outcomes
    // AND the emitted circuit must be byte-identical across runs.
    const auto graph = arch::lnn(5);
    const ir::Circuit logical = ir::qftSkeleton(5);
    PortfolioConfig config = defaultPortfolio(qftBase());
    config.workers = 1;
    PortfolioMapper mapper(graph, config);

    const PortfolioResult a = mapper.map(logical);
    const PortfolioResult b = mapper.map(logical);
    ASSERT_TRUE(a.success);
    ASSERT_TRUE(b.success);
    EXPECT_EQ(a.winner, b.winner);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(qasm::writeMappedCircuit(a.mapped),
              qasm::writeMappedCircuit(b.mapped));
}

TEST(PortfolioMapperTest, SameWinnerConfigMeansIdenticalCircuit)
{
    // The full concurrent race: whichever entry wins, a re-run where
    // the SAME entry wins must reproduce its circuit bit for bit
    // (each entry's search is internally deterministic).
    const auto graph = arch::lnn(4);
    const ir::Circuit logical = ir::qftSkeleton(4);
    PortfolioMapper mapper(graph, defaultPortfolio(qftBase()));

    const PortfolioResult first = mapper.map(logical);
    ASSERT_TRUE(first.success);
    for (int round = 0; round < 3; ++round) {
        const PortfolioResult again = mapper.map(logical);
        ASSERT_TRUE(again.success);
        EXPECT_EQ(again.cycles, first.cycles);
        if (again.winner == first.winner) {
            EXPECT_EQ(qasm::writeMappedCircuit(again.mapped),
                      qasm::writeMappedCircuit(first.mapped));
        }
    }
}

TEST(PortfolioMapperTest, PortfolioJsonNamesTheWinner)
{
    const auto graph = arch::lnn(4);
    PortfolioConfig config = defaultPortfolio(qftBase());
    config.workers = 1;
    PortfolioMapper mapper(graph, config);
    const PortfolioResult res = mapper.map(ir::qftSkeleton(4));
    ASSERT_TRUE(res.success);
    const std::string json = res.portfolioJson();
    EXPECT_NE(json.find("\"entries\":4"), std::string::npos);
    EXPECT_NE(json.find("\"winner\":\""), std::string::npos);
    EXPECT_NE(json.find("\"winner_index\":"), std::string::npos);
    EXPECT_NE(json.find("\"proven_optimal\":true"),
              std::string::npos);
}

TEST(PortfolioMapperTest, PortfolioJsonNullWinnerWhenNobodyFinished)
{
    PortfolioResult res;
    res.outcomes.push_back({});
    EXPECT_NE(res.portfolioJson().find("\"winner\":null"),
              std::string::npos);
    EXPECT_NE(res.portfolioJson().find("\"winner_index\":-1"),
              std::string::npos);
}

TEST(PortfolioCancellationTest, PresetStopCancelsBeforeAnyWork)
{
    // The loser's view of a settled race: its channel already says
    // stop, so the guard trips at its first probe and the search
    // unwinds as Cancelled after a handful of expansions.
    search::IncumbentChannel channel;
    channel.requestStop();

    core::MapperConfig cfg = qftBase();
    cfg.channel = &channel;
    core::OptimalMapper mapper(arch::ibmQ20Tokyo(), cfg);
    const auto res = mapper.map(ir::qftSkeleton(8));
    EXPECT_FALSE(res.success);
    EXPECT_EQ(res.status, search::SearchStatus::Cancelled);
}

TEST(PortfolioCancellationTest, CrossThreadStopUnwindsPromptly)
{
    // QFT-8 on Tokyo with a fixed layout runs for minutes when left
    // alone; a stop raised from another thread must end it in well
    // under that.  Generous ceiling so a loaded CI host still passes.
    search::IncumbentChannel channel;
    core::MapperConfig cfg = qftBase();
    cfg.channel = &channel;
    core::OptimalMapper mapper(arch::ibmQ20Tokyo(), cfg);

    std::thread stopper([&channel] {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        channel.requestStop();
    });
    const auto start = std::chrono::steady_clock::now();
    const auto res = mapper.map(ir::qftSkeleton(8));
    const auto elapsed =
        std::chrono::steady_clock::now() - start;
    stopper.join();

    EXPECT_EQ(res.status, search::SearchStatus::Cancelled);
    EXPECT_LT(elapsed, std::chrono::seconds(60));
}

TEST(PortfolioCancellationTest, ForeignBoundNeverPrunesTheOptimum)
{
    // Publishing the EXACT optimal makespan as a foreign incumbent
    // must not break the proof: equal-f nodes are kept, so the
    // search still finds and proves a 13-cycle result.
    search::IncumbentChannel channel;
    channel.offer(13);

    core::MapperConfig cfg = qftBase();
    cfg.channel = &channel;
    core::OptimalMapper mapper(arch::lnn(5), cfg);
    const auto res = mapper.map(ir::qftSkeleton(5));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.status, search::SearchStatus::Solved);
    EXPECT_EQ(res.cycles, 13);
    EXPECT_FALSE(res.fromIncumbent);
}

TEST(PortfolioCancellationTest, ForeignBoundExhaustionIsNotInfeasible)
{
    // A channel bound from another layout space can sit below
    // everything this fixed-layout search can reach.  Exhausting the
    // pruned frontier then proves nothing: the mapper must report the
    // run as cancelled by the race and deliver its local (beam-probe)
    // incumbent, never claim the instance "genuinely unsolvable".
    search::IncumbentChannel channel;
    channel.offer(1); // below any real schedule's makespan

    const auto graph = arch::lnn(5);
    const ir::Circuit logical = ir::qftSkeleton(5);
    core::MapperConfig cfg = qftBase();
    cfg.channel = &channel;
    core::OptimalMapper mapper(graph, cfg);
    const auto res = mapper.map(logical);
    EXPECT_EQ(res.status, search::SearchStatus::Cancelled);
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(res.fromIncumbent);
    EXPECT_GT(res.cycles, 1);
    EXPECT_TRUE(sim::verifyMapping(logical, res.mapped, graph).ok);
}

TEST(PortfolioLayoutSpaceTest, FixedRaceSeedsHeuristicIntoSameSpace)
{
    // cx(q0,q2) on LNN-3: on-the-fly placement puts the pair adjacent
    // (a schedule strictly shorter than any identity-layout one), so
    // a free-layout heuristic bound would prune the fixed-identity
    // exact entries into exhaustion and a bogus Infeasible.  In a
    // fixed-layout race the heuristic must therefore be pinned to the
    // race's seed: every entry answers the identity-layout question
    // and the exact optimum survives as a proof.
    const auto graph = arch::lnn(3);
    ir::Circuit logical(3, "cx02");
    logical.add(ir::Gate(ir::GateKind::CX, 0, 2));

    core::MapperConfig base = qftBase(); // searchInitialMapping=false
    const auto solo = core::OptimalMapper(graph, base).map(logical);
    ASSERT_TRUE(solo.success);

    PortfolioMapper mapper(graph, defaultPortfolio(base));
    const PortfolioResult res = mapper.map(logical);
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(res.provenOptimal);
    EXPECT_EQ(res.cycles, solo.cycles);
    EXPECT_EQ(res.mapped.initialLayout, ir::identityLayout(3));
    for (const EntryOutcome &o : res.outcomes) {
        // No entry may undercut the fixed-space optimum — that would
        // mean it searched a different (free) layout space.
        if (o.success) {
            EXPECT_GE(o.cycles, solo.cycles) << o.name;
        }
        // And none may call the instance unsolvable: it isn't.
        EXPECT_NE(o.status, search::SearchStatus::Infeasible)
            << o.name;
    }
}

TEST(PortfolioLayoutSpaceTest, WinnerNeverWorseThanAnyEntry)
{
    // The winner rule prefers fewer cycles before the proven label,
    // so even a race with mixed layout spaces (free entry 0, fixed
    // IDA*) returns the best circuit any entry produced.
    core::MapperConfig base = qftBase();
    base.searchInitialMapping = true;
    const auto graph = arch::lnn(4);
    PortfolioMapper mapper(graph, defaultPortfolio(base));
    const PortfolioResult res = mapper.map(ir::qftSkeleton(4));
    ASSERT_TRUE(res.success);
    for (const EntryOutcome &o : res.outcomes) {
        if (o.success) {
            EXPECT_LE(res.cycles, o.cycles) << o.name;
        }
    }
}

TEST(PortfolioCancellationTest, SolverPublishesItsIncumbents)
{
    search::IncumbentChannel channel;
    core::MapperConfig cfg = qftBase();
    cfg.channel = &channel;
    core::OptimalMapper mapper(arch::lnn(5), cfg);
    const auto res = mapper.map(ir::qftSkeleton(5));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(channel.bound(), res.cycles);
}

} // namespace
} // namespace toqm::parallel
