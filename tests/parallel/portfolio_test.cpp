#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "arch/architectures.hpp"
#include "ir/generators.hpp"
#include "parallel/portfolio.hpp"
#include "qasm/writer.hpp"
#include "search/incumbent_channel.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

namespace toqm::parallel {
namespace {

core::MapperConfig
qftBase()
{
    core::MapperConfig base;
    base.latency = ir::LatencyModel::qftPreset();
    return base;
}

TEST(DefaultPortfolioTest, FourEntriesInPriorityOrder)
{
    const PortfolioConfig config = defaultPortfolio();
    ASSERT_EQ(config.entries.size(), 4u);
    EXPECT_EQ(config.entries[0].name, "astar");
    EXPECT_EQ(config.entries[1].name, "astar-nofilter");
    EXPECT_FALSE(config.entries[1].exact.useFilter);
    EXPECT_EQ(config.entries[2].name, "ida");
    EXPECT_EQ(config.entries[2].kind, PortfolioEntry::Kind::Ida);
    EXPECT_EQ(config.entries[3].name, "heuristic");
    EXPECT_EQ(config.entries[3].kind,
              PortfolioEntry::Kind::Heuristic);
}

TEST(DefaultPortfolioTest, CapTruncatesInPriorityOrder)
{
    const PortfolioConfig two = defaultPortfolio({}, 2);
    ASSERT_EQ(two.entries.size(), 2u);
    EXPECT_EQ(two.entries[0].name, "astar");
    EXPECT_EQ(two.entries[1].name, "astar-nofilter");
    EXPECT_EQ(defaultPortfolio({}, 1).entries.size(), 1u);
    // A nonsensical cap still yields a usable portfolio.
    EXPECT_EQ(defaultPortfolio({}, 0).entries.size(), 1u);
}

TEST(DefaultPortfolioTest, BasePropagatesToEveryEntry)
{
    core::MapperConfig base = qftBase();
    base.searchInitialMapping = true;
    const PortfolioConfig config = defaultPortfolio(base);
    for (const PortfolioEntry &entry : config.entries) {
        if (entry.kind == PortfolioEntry::Kind::Heuristic) {
            EXPECT_EQ(entry.heuristic.latency.swapLatency(),
                      base.latency.swapLatency());
        } else {
            EXPECT_EQ(entry.exact.latency.swapLatency(),
                      base.latency.swapLatency());
            EXPECT_TRUE(entry.exact.searchInitialMapping);
        }
    }
}

TEST(PortfolioMapperTest, EmptyPortfolioReportsFailure)
{
    PortfolioMapper mapper(arch::lnn(3), PortfolioConfig{});
    const PortfolioResult res = mapper.map(ir::ghz(3));
    EXPECT_FALSE(res.success);
    EXPECT_EQ(res.winner, -1);
}

TEST(PortfolioMapperTest, RaceSolvesAndVerifies)
{
    const auto graph = arch::lnn(5);
    const ir::Circuit logical = ir::qftSkeleton(5);
    PortfolioMapper mapper(graph, defaultPortfolio(qftBase()));
    const PortfolioResult res = mapper.map(logical);

    ASSERT_TRUE(res.success);
    ASSERT_GE(res.winner, 0);
    ASSERT_EQ(res.outcomes.size(), 4u);
    EXPECT_TRUE(res.provenOptimal);
    // QFT-5 on LNN-5 under the qft preset is 13 cycles (the exact
    // mapper's own regression value).
    EXPECT_EQ(res.cycles, 13);
    EXPECT_TRUE(sim::verifyMapping(logical, res.mapped, graph).ok);

    // Folded stats cover every entry that did work.
    EXPECT_GE(res.stats.expanded,
              res.outcomes[static_cast<std::size_t>(res.winner)]
                  .stats.expanded);
}

TEST(PortfolioMapperTest, SerialRaceIsFullyDeterministic)
{
    // With one pool worker the race is a deterministic sequence:
    // entry 0 proves first and stops the rest, so winner, outcomes
    // AND the emitted circuit must be byte-identical across runs.
    const auto graph = arch::lnn(5);
    const ir::Circuit logical = ir::qftSkeleton(5);
    PortfolioConfig config = defaultPortfolio(qftBase());
    config.workers = 1;
    PortfolioMapper mapper(graph, config);

    const PortfolioResult a = mapper.map(logical);
    const PortfolioResult b = mapper.map(logical);
    ASSERT_TRUE(a.success);
    ASSERT_TRUE(b.success);
    EXPECT_EQ(a.winner, b.winner);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(qasm::writeMappedCircuit(a.mapped),
              qasm::writeMappedCircuit(b.mapped));
}

TEST(PortfolioMapperTest, SameWinnerConfigMeansIdenticalCircuit)
{
    // The full concurrent race: whichever entry wins, a re-run where
    // the SAME entry wins must reproduce its circuit bit for bit
    // (each entry's search is internally deterministic).
    const auto graph = arch::lnn(4);
    const ir::Circuit logical = ir::qftSkeleton(4);
    PortfolioMapper mapper(graph, defaultPortfolio(qftBase()));

    const PortfolioResult first = mapper.map(logical);
    ASSERT_TRUE(first.success);
    for (int round = 0; round < 3; ++round) {
        const PortfolioResult again = mapper.map(logical);
        ASSERT_TRUE(again.success);
        EXPECT_EQ(again.cycles, first.cycles);
        if (again.winner == first.winner) {
            EXPECT_EQ(qasm::writeMappedCircuit(again.mapped),
                      qasm::writeMappedCircuit(first.mapped));
        }
    }
}

TEST(PortfolioMapperTest, PortfolioJsonNamesTheWinner)
{
    const auto graph = arch::lnn(4);
    PortfolioConfig config = defaultPortfolio(qftBase());
    config.workers = 1;
    PortfolioMapper mapper(graph, config);
    const PortfolioResult res = mapper.map(ir::qftSkeleton(4));
    ASSERT_TRUE(res.success);
    const std::string json = res.portfolioJson();
    EXPECT_NE(json.find("\"entries\":4"), std::string::npos);
    EXPECT_NE(json.find("\"winner\":\""), std::string::npos);
    EXPECT_NE(json.find("\"winner_index\":"), std::string::npos);
    EXPECT_NE(json.find("\"proven_optimal\":true"),
              std::string::npos);
}

TEST(PortfolioMapperTest, PortfolioJsonNullWinnerWhenNobodyFinished)
{
    PortfolioResult res;
    res.outcomes.push_back({});
    EXPECT_NE(res.portfolioJson().find("\"winner\":null"),
              std::string::npos);
    EXPECT_NE(res.portfolioJson().find("\"winner_index\":-1"),
              std::string::npos);
}

TEST(PortfolioCancellationTest, PresetStopCancelsBeforeAnyWork)
{
    // The loser's view of a settled race: its channel already says
    // stop, so the guard trips at its first probe and the search
    // unwinds as Cancelled after a handful of expansions.
    search::IncumbentChannel channel;
    channel.requestStop();

    core::MapperConfig cfg = qftBase();
    cfg.channel = &channel;
    core::OptimalMapper mapper(arch::ibmQ20Tokyo(), cfg);
    const auto res = mapper.map(ir::qftSkeleton(8));
    EXPECT_FALSE(res.success);
    EXPECT_EQ(res.status, search::SearchStatus::Cancelled);
}

TEST(PortfolioCancellationTest, CrossThreadStopUnwindsPromptly)
{
    // QFT-8 on Tokyo with a fixed layout runs for minutes when left
    // alone; a stop raised from another thread must end it in well
    // under that.  Generous ceiling so a loaded CI host still passes.
    search::IncumbentChannel channel;
    core::MapperConfig cfg = qftBase();
    cfg.channel = &channel;
    core::OptimalMapper mapper(arch::ibmQ20Tokyo(), cfg);

    std::thread stopper([&channel] {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        channel.requestStop();
    });
    const auto start = std::chrono::steady_clock::now();
    const auto res = mapper.map(ir::qftSkeleton(8));
    const auto elapsed =
        std::chrono::steady_clock::now() - start;
    stopper.join();

    EXPECT_EQ(res.status, search::SearchStatus::Cancelled);
    EXPECT_LT(elapsed, std::chrono::seconds(60));
}

TEST(PortfolioCancellationTest, ForeignBoundNeverPrunesTheOptimum)
{
    // Publishing the EXACT optimal makespan as a foreign incumbent
    // must not break the proof: equal-f nodes are kept, so the
    // search still finds and proves a 13-cycle result.
    search::IncumbentChannel channel;
    channel.offer(13);

    core::MapperConfig cfg = qftBase();
    cfg.channel = &channel;
    core::OptimalMapper mapper(arch::lnn(5), cfg);
    const auto res = mapper.map(ir::qftSkeleton(5));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.status, search::SearchStatus::Solved);
    EXPECT_EQ(res.cycles, 13);
    EXPECT_FALSE(res.fromIncumbent);
}

TEST(PortfolioCancellationTest, SolverPublishesItsIncumbents)
{
    search::IncumbentChannel channel;
    core::MapperConfig cfg = qftBase();
    cfg.channel = &channel;
    core::OptimalMapper mapper(arch::lnn(5), cfg);
    const auto res = mapper.map(ir::qftSkeleton(5));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(channel.bound(), res.cycles);
}

} // namespace
} // namespace toqm::parallel
