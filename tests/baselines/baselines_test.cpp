#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "baselines/exhaustive.hpp"
#include "baselines/sabre.hpp"
#include "baselines/zulehner.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"
#include "sim/statevector.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

namespace toqm::baselines {
namespace {

TEST(SabreTest, ValidMappingOnTokyo)
{
    ir::Circuit c = ir::benchmarkStandIn("sabre_unit", 9, 300);
    const auto g = arch::ibmQ20Tokyo();
    SabreMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    const auto verdict = sim::verifyMapping(c, res.mapped, g);
    EXPECT_TRUE(verdict.ok) << verdict.message;
    EXPECT_EQ(res.swapCount, res.mapped.physical.numSwaps());
}

TEST(SabreTest, SemanticEquivalenceOnSmallCircuit)
{
    ir::Circuit c = ir::randomCircuit(5, 80, 0.5, 17);
    const auto g = arch::ibmQX2();
    SabreMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(sim::semanticallyEquivalent(c, res.mapped));
}

TEST(SabreTest, NoSwapsWhenAlreadyCompliant)
{
    ir::Circuit c = ir::ghz(4);
    const auto g = arch::lnn(4);
    SabreMapper mapper(g);
    const auto res = mapper.map(c, ir::identityLayout(4));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.swapCount, 0);
}

TEST(SabreTest, DeterministicGivenSeed)
{
    ir::Circuit c = ir::benchmarkStandIn("sabre_det", 8, 200);
    const auto g = arch::ibmQ20Tokyo();
    SabreMapper mapper(g);
    const auto a = mapper.map(c);
    const auto b = mapper.map(c);
    EXPECT_EQ(a.mapped.physical, b.mapped.physical);
    EXPECT_EQ(a.mapped.initialLayout, b.mapped.initialLayout);
}

TEST(SabreTest, QftRequiresManySwapsOnChain)
{
    ir::Circuit c = ir::qftSkeleton(6);
    const auto g = arch::lnn(6);
    SabreMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_GT(res.swapCount, 4);
    EXPECT_TRUE(sim::verifyMapping(c, res.mapped, g).ok);
}

TEST(ZulehnerTest, ValidMappingOnTokyo)
{
    ir::Circuit c = ir::benchmarkStandIn("zul_unit", 9, 300);
    const auto g = arch::ibmQ20Tokyo();
    ZulehnerMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    const auto verdict = sim::verifyMapping(c, res.mapped, g);
    EXPECT_TRUE(verdict.ok) << verdict.message;
}

TEST(ZulehnerTest, SemanticEquivalenceOnSmallCircuit)
{
    ir::Circuit c = ir::randomCircuit(5, 80, 0.5, 23);
    const auto g = arch::ibmQX2();
    ZulehnerMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(sim::semanticallyEquivalent(c, res.mapped));
}

TEST(ZulehnerTest, LayerRoutingMinimizesSwapsForSingleGate)
{
    ir::Circuit c(3);
    c.addCX(0, 2);
    const auto g = arch::lnn(3);
    ZulehnerMapper mapper(g);
    const auto res = mapper.map(c, ir::identityLayout(3));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.swapCount, 1);
}

TEST(ZulehnerTest, NoSwapsWhenAlreadyCompliant)
{
    ir::Circuit c = ir::ghz(5);
    const auto g = arch::lnn(5);
    ZulehnerMapper mapper(g);
    const auto res = mapper.map(c, ir::identityLayout(5));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.swapCount, 0);
}

TEST(ExhaustiveTest, MatchesPrunedOptimalSearch)
{
    // The de-optimized reference must certify the same optimum as
    // the full framework (the Table 2 methodology).
    ir::Circuit c = ir::qftSkeleton(4);
    const auto g = arch::lnn(4);
    const ir::LatencyModel lat = ir::LatencyModel::qftPreset();

    core::MapperConfig cfg;
    cfg.latency = lat;
    core::OptimalMapper fast(g, cfg);
    const auto fast_res = fast.map(c);
    ASSERT_TRUE(fast_res.success);

    const auto slow_res = exhaustiveReference(g, c, lat);
    ASSERT_TRUE(slow_res.success);
    EXPECT_EQ(slow_res.cycles, fast_res.cycles);
    // And it must have worked harder for it.
    EXPECT_GE(slow_res.stats.expanded, fast_res.stats.expanded);
}

TEST(BaselineComparisonTest, TimeOptimalBeatsBaselinesOnAverage)
{
    // The Table 3 shape on a small scale: our heuristic's cycles
    // must not lose to SABRE or Zulehner by more than 5% on any of
    // these seeds (it usually wins outright).
    const auto g = arch::ibmQ20Tokyo();
    const auto lat = ir::LatencyModel::ibmPreset();
    double ours_total = 0.0, sabre_total = 0.0, zul_total = 0.0;
    for (std::uint64_t seed : {11u, 22u, 33u}) {
        ir::Circuit c = ir::randomCircuit(9, 400, 0.45, seed);
        heuristic::HeuristicMapper ours(g);
        SabreMapper sabre(g);
        ZulehnerMapper zul(g);
        const auto ro = ours.map(c);
        const auto rs = sabre.map(c);
        const auto rz = zul.map(c);
        ASSERT_TRUE(ro.success && rs.success && rz.success);
        ours_total += ro.cycles;
        sabre_total +=
            ir::scheduleAsap(rs.mapped.physical, lat).makespan;
        zul_total +=
            ir::scheduleAsap(rz.mapped.physical, lat).makespan;
    }
    EXPECT_LT(ours_total, 1.05 * sabre_total);
    EXPECT_LT(ours_total, 1.05 * zul_total);
}

} // namespace
} // namespace toqm::baselines
