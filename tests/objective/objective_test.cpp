#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "arch/architectures.hpp"
#include "ir/circuit.hpp"
#include "ir/gate.hpp"
#include "ir/generators.hpp"
#include "ir/latency.hpp"
#include "objective/objective.hpp"
#include "search/cost_table.hpp"

namespace toqm::objective {
namespace {

TEST(ObjectiveKindTest, NamesRoundTrip)
{
    ObjectiveKind kind = ObjectiveKind::Pareto;
    EXPECT_TRUE(objectiveKindFromString("cycles", kind));
    EXPECT_EQ(kind, ObjectiveKind::Cycles);
    EXPECT_TRUE(objectiveKindFromString("fidelity", kind));
    EXPECT_EQ(kind, ObjectiveKind::Fidelity);
    EXPECT_TRUE(objectiveKindFromString("pareto", kind));
    EXPECT_EQ(kind, ObjectiveKind::Pareto);
    EXPECT_FALSE(objectiveKindFromString("bogus", kind));
    EXPECT_STREQ(toString(ObjectiveKind::Fidelity), "fidelity");
}

TEST(ObjectiveTest, CyclesIsTheNullTable)
{
    const Objective obj = Objective::cycles();
    EXPECT_EQ(obj.kind(), ObjectiveKind::Cycles);
    EXPECT_STREQ(obj.name(), "cycles");
    EXPECT_EQ(obj.objectiveId(), 0u);
    EXPECT_EQ(obj.makeTable(ir::qftSkeleton(4), arch::lnn(4)),
              nullptr);
    EXPECT_DOUBLE_EQ(obj.decodeCost(42), 42.0);
}

TEST(ObjectiveTest, FidelityTableIsAdmissible)
{
    const auto graph = arch::lnn(4);
    const ir::Circuit logical = ir::qftSkeleton(4);
    const Objective obj =
        Objective::fidelity(CalibrationData::synthesize(graph));
    const std::unique_ptr<search::CostTable> table =
        obj.makeTable(logical, graph);
    ASSERT_NE(table, nullptr);
    EXPECT_GE(table->cycleWeight, 1);
    EXPECT_EQ(table->numPhysical, 4);

    // gateMin must lower-bound EVERY legal placement of each gate —
    // that is exactly what keeps the search heuristic admissible.
    const ir::Circuit searched = logical.withoutSwapsAndBarriers();
    ASSERT_EQ(table->gateMin.size(),
              static_cast<std::size_t>(searched.size()));
    std::int64_t sum = 0;
    for (int i = 0; i < searched.size(); ++i) {
        const ir::Gate &g = searched.gate(i);
        const std::int64_t lo =
            table->gateMin[static_cast<std::size_t>(i)];
        sum += lo;
        if (g.numQubits() == 2) {
            for (const std::pair<int, int> &edge : graph.edges()) {
                EXPECT_LE(lo, table->gateWeight(g, edge.first,
                                                edge.second));
                EXPECT_LE(lo, table->gateWeight(g, edge.second,
                                                edge.first));
            }
        } else {
            for (int p = 0; p < graph.numQubits(); ++p)
                EXPECT_LE(lo, table->gateWeight(g, p, -1));
        }
    }
    EXPECT_EQ(table->totalMin, sum);

    // Swaps are never cheaper than the CX on the same edge (a swap
    // is three of them), so inserting one can never pay for itself.
    for (const std::pair<int, int> &edge : graph.edges()) {
        EXPECT_GE(table->swapWeight(edge.first, edge.second),
                  table->twoQubitWeight(edge.first, edge.second));
    }
}

TEST(ObjectiveTest, FidelityEncodingMatchesTheNoiseSimulator)
{
    // The encoded key is a fixed-point -ln(success probability):
    // decoding the evaluateCircuit total must agree with the
    // sim-layer ground truth to the documented 1e-7-per-action
    // resolution.
    const auto graph = arch::lnn(2);
    const Objective obj =
        Objective::fidelity(CalibrationData::synthesize(graph));
    ir::Circuit phys(2, "bell_phys");
    phys.add(ir::Gate(ir::GateKind::H, 0));
    phys.add(ir::Gate(ir::GateKind::CX, 0, 1));
    const ir::LatencyModel latency = ir::LatencyModel::qftPreset();

    const std::unique_ptr<search::CostTable> table =
        obj.makeTable(phys, graph);
    ASSERT_NE(table, nullptr);
    const double decoded =
        obj.decodeCost(table->evaluateCircuit(phys, latency));
    const double truth =
        -std::log(obj.successProbability(phys, latency, 2));
    EXPECT_NEAR(decoded, truth, 1e-4);
    EXPECT_GT(obj.successProbability(phys, latency, 2), 0.0);
    EXPECT_LE(obj.successProbability(phys, latency, 2), 1.0);
}

TEST(ObjectiveTest, ParetoOrdersCyclesFirst)
{
    const auto graph = arch::lnn(4);
    const Objective obj =
        Objective::pareto(CalibrationData::synthesize(graph));
    const std::unique_ptr<search::CostTable> table =
        obj.makeTable(ir::qftSkeleton(4), graph);
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table->cycleWeight, std::int64_t{1} << 32);
    // Every per-action weight fits under one cycle digit, so one
    // cycle saved always beats any realistic error trade.
    for (const std::pair<int, int> &edge : graph.edges()) {
        EXPECT_LT(table->swapWeight(edge.first, edge.second),
                  table->cycleWeight);
    }
    // Decoding strips the cycles digit: only the error axis remains.
    const std::int64_t key = 7 * table->cycleWeight + 12345;
    EXPECT_DOUBLE_EQ(obj.decodeCost(key), 12345.0 / 1e7);
}

TEST(ObjectiveTest, ObjectiveIdsSeparateKindsAndCalibrations)
{
    const auto graph = arch::lnn(4);
    const CalibrationData a = CalibrationData::synthesize(graph);
    const CalibrationData b = CalibrationData::synthesize(graph, 7);
    const std::uint64_t fid_a = Objective::fidelity(a).objectiveId();
    EXPECT_NE(fid_a, 0u);
    EXPECT_EQ(fid_a, Objective::fidelity(a).objectiveId());
    EXPECT_NE(fid_a, Objective::fidelity(b).objectiveId());
    EXPECT_NE(fid_a, Objective::pareto(a).objectiveId());
}

TEST(ObjectiveTest, TableRejectsUndersizedCalibration)
{
    const CalibrationData small =
        CalibrationData::synthesize(arch::lnn(3));
    EXPECT_THROW((void)Objective::fidelity(small).makeTable(
                     ir::qftSkeleton(4), arch::lnn(4)),
                 CalibrationError);
}

} // namespace
} // namespace toqm::objective
