#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "arch/architectures.hpp"
#include "objective/calibration.hpp"

namespace toqm::objective {
namespace {

std::string
errorOf(const std::string &text)
{
    try {
        (void)CalibrationData::parse(text);
    } catch (const CalibrationError &e) {
        return e.what();
    }
    return "";
}

TEST(CalibrationParseTest, MinimalDocumentUsesDefaults)
{
    const CalibrationData cal = CalibrationData::parse(
        R"({"schemaVersion": 1, "qubits": 3})");
    EXPECT_EQ(cal.numQubits, 3);
    EXPECT_EQ(cal.device, "");
    EXPECT_DOUBLE_EQ(cal.t2Cycles, 5000.0);
    EXPECT_DOUBLE_EQ(cal.oneQubit(0), 1e-4);
    EXPECT_DOUBLE_EQ(cal.twoQubit(0, 1), 1e-3);
    // Unlisted swap derives from the edge error: three CXs.
    const double e2 = cal.twoQubit(0, 1);
    EXPECT_DOUBLE_EQ(cal.swap(0, 1),
                     1.0 - (1.0 - e2) * (1.0 - e2) * (1.0 - e2));
}

TEST(CalibrationParseTest, OverridesResolveUndirected)
{
    const CalibrationData cal = CalibrationData::parse(R"({
        "schemaVersion": 1, "qubits": 2,
        "oneQubitError": [1e-4, 2e-4],
        "twoQubitError": [{"edge": [1, 0], "error": 0.005}],
        "swapError": [{"edge": [0, 1], "error": 0.02}]
    })");
    EXPECT_DOUBLE_EQ(cal.oneQubit(1), 2e-4);
    EXPECT_DOUBLE_EQ(cal.twoQubit(0, 1), 0.005);
    EXPECT_DOUBLE_EQ(cal.twoQubit(1, 0), 0.005);
    EXPECT_DOUBLE_EQ(cal.swap(1, 0), 0.02);
}

TEST(CalibrationParseTest, RoundTripResolvesIdentically)
{
    const CalibrationData a =
        CalibrationData::synthesize(arch::ibmQ20Tokyo());
    const CalibrationData b = CalibrationData::parse(a.toJson());
    ASSERT_EQ(b.numQubits, a.numQubits);
    EXPECT_EQ(b.device, a.device);
    EXPECT_DOUBLE_EQ(b.t2Cycles, a.t2Cycles);
    for (int q = 0; q < a.numQubits; ++q)
        EXPECT_DOUBLE_EQ(b.oneQubit(q), a.oneQubit(q)) << q;
    for (int q0 = 0; q0 < a.numQubits; ++q0) {
        for (int q1 = q0 + 1; q1 < a.numQubits; ++q1) {
            EXPECT_DOUBLE_EQ(b.twoQubit(q0, q1), a.twoQubit(q0, q1));
            EXPECT_DOUBLE_EQ(b.swap(q0, q1), a.swap(q0, q1));
        }
    }
}

TEST(CalibrationParseTest, ShippedExamplesLoad)
{
    const CalibrationData tokyo = CalibrationData::load(
        std::string(TOQM_CALIBRATION_DIR) + "/tokyo.json");
    EXPECT_EQ(tokyo.device, "tokyo");
    EXPECT_EQ(tokyo.numQubits, 20);
    EXPECT_EQ(tokyo.oneQubitError.size(), 20u);
    EXPECT_EQ(tokyo.twoQubitError.size(), 43u);

    const CalibrationData uniform = CalibrationData::load(
        std::string(TOQM_CALIBRATION_DIR) + "/q20_uniform.json");
    EXPECT_EQ(uniform.numQubits, 20);
    EXPECT_TRUE(uniform.oneQubitError.empty());
    EXPECT_DOUBLE_EQ(uniform.twoQubit(0, 1), 1e-3);
}

TEST(CalibrationParseTest, SyntaxErrorsCarryByteOffset)
{
    const std::string what =
        errorOf(R"({"schemaVersion": 1, "qubits": })");
    EXPECT_NE(what.find("calibration:"), std::string::npos) << what;
    // obs::json reports the byte offset of the failure; the loader
    // keeps it verbatim.
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
}

TEST(CalibrationParseTest, SemanticErrorsNameTheKeyPath)
{
    EXPECT_NE(errorOf(R"({"qubits": 2})").find("schemaVersion"),
              std::string::npos);
    EXPECT_NE(errorOf(R"({"schemaVersion": 2, "qubits": 2})")
                  .find("unsupported version"),
              std::string::npos);
    EXPECT_NE(errorOf(R"({"schemaVersion": 1, "qubits": -3})")
                  .find("qubits: must be a positive integer"),
              std::string::npos);
    EXPECT_NE(errorOf(R"({"schemaVersion": 1, "qubits": 2,
                          "oneQubitError": [1e-4]})")
                  .find("oneQubitError: expected exactly 2"),
              std::string::npos);
    EXPECT_NE(errorOf(R"({"schemaVersion": 1, "qubits": 2,
                          "oneQubitError": [1e-4, 1.5]})")
                  .find("oneQubitError[1]: error rate must be in"),
              std::string::npos);
    EXPECT_NE(errorOf(R"({"schemaVersion": 1, "qubits": 2,
                          "twoQubitError":
                          [{"edge": [0, 7], "error": 1e-3}]})")
                  .find("twoQubitError[0].edge[1]"),
              std::string::npos);
    EXPECT_NE(errorOf(R"({"schemaVersion": 1, "qubits": 2,
                          "twoQubitError":
                          [{"edge": [1, 1], "error": 1e-3}]})")
                  .find("self-loop"),
              std::string::npos);
    EXPECT_NE(errorOf(R"({"schemaVersion": 1, "qubits": 2,
                          "t2Cycles": 0})")
                  .find("t2Cycles: must be positive"),
              std::string::npos);
}

TEST(CalibrationLoadTest, FileErrorsNameThePath)
{
    try {
        (void)CalibrationData::load("/nonexistent/cal.json");
        FAIL() << "load() of a missing file must throw";
    } catch (const CalibrationError &e) {
        EXPECT_NE(std::string(e.what()).find("/nonexistent/cal.json"),
                  std::string::npos);
    }
}

TEST(CalibrationSynthesizeTest, DeterministicAndInRealisticRanges)
{
    const auto graph = arch::ibmQ20Tokyo();
    const CalibrationData a = CalibrationData::synthesize(graph);
    const CalibrationData b = CalibrationData::synthesize(graph);
    EXPECT_EQ(a.toJson(), b.toJson());
    // A different seed gives a different (but equally valid) device.
    const CalibrationData c = CalibrationData::synthesize(graph, 7);
    EXPECT_NE(a.toJson(), c.toJson());

    ASSERT_EQ(a.numQubits, graph.numQubits());
    ASSERT_EQ(a.oneQubitError.size(),
              static_cast<std::size_t>(graph.numQubits()));
    ASSERT_EQ(a.twoQubitError.size(), graph.edges().size());
    for (const double e1 : a.oneQubitError) {
        EXPECT_GE(e1, 5e-5);
        EXPECT_LT(e1, 2e-4);
    }
    for (const CalibrationData::EdgeError &e : a.twoQubitError) {
        EXPECT_GE(e.error, 5e-4);
        EXPECT_LT(e.error, 2e-3);
        // Derived swap error stays consistent with the edge error.
        EXPECT_GT(a.swap(e.q0, e.q1), e.error);
        EXPECT_LT(a.swap(e.q0, e.q1), 3.0 * e.error + 1e-9);
    }
}

} // namespace
} // namespace toqm::objective
