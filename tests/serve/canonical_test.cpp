/**
 * @file
 * Soundness tests for the serve layer's canonical circuit form: the
 * two equivalences the cache must identify (qubit relabeling and
 * commuting reorder) collide on the canonical key, and near-miss
 * variants (different gate kind, different parameter) do not.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "ir/circuit.hpp"
#include "ir/generators.hpp"
#include "serve/canonical.hpp"

namespace toqm::serve {
namespace {

/** A small asymmetric circuit exercising 1q, 2q and parametrized gates. */
ir::Circuit
sampleCircuit()
{
    ir::Circuit c(5, "sample");
    c.addH(0);
    c.addCX(0, 1);
    c.addCP(1, 2, 0.785398);
    c.addCX(2, 3);
    c.addH(4);
    c.addCX(3, 4);
    return c;
}

TEST(ServeCanonical, RelabelingCollides)
{
    const ir::Circuit original = sampleCircuit();
    // remapped(): new_q = map[old_q]; any permutation of the labels
    // describes the same mapping problem.
    const std::vector<int> perm{3, 0, 4, 1, 2};
    const ir::Circuit relabeled = original.remapped(perm);

    const CanonicalForm a = canonicalizeCircuit(original);
    const CanonicalForm b = canonicalizeCircuit(relabeled);
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(hashText(a.text), hashText(b.text));
    // The exact fingerprint MUST tell them apart: only the canonical
    // key may unify relabelings.
    EXPECT_NE(exactCircuitText(original), exactCircuitText(relabeled));
}

TEST(ServeCanonical, CommutingReorderCollides)
{
    // Three gates on pairwise-disjoint qubits: any interleaving is a
    // topological order of the same DAG.
    ir::Circuit a(6);
    a.addCX(0, 1);
    a.addCX(2, 3);
    a.addH(4);
    a.addCX(4, 5);

    ir::Circuit b(6);
    b.addH(4);
    b.addCX(2, 3);
    b.addCX(4, 5);
    b.addCX(0, 1);

    EXPECT_EQ(canonicalizeCircuit(a).text, canonicalizeCircuit(b).text);
    EXPECT_NE(exactCircuitText(a), exactCircuitText(b));
}

TEST(ServeCanonical, RelabelPlusReorderCollides)
{
    const ir::Circuit original = sampleCircuit();
    const std::vector<int> perm{4, 2, 0, 3, 1};
    ir::Circuit variant(5, "variant");
    // Rebuild the relabeled circuit in a different (still valid)
    // topological order: the trailing independent H(perm[4]) first.
    variant.addH(perm[4]);
    variant.addH(perm[0]);
    variant.addCX(perm[0], perm[1]);
    variant.addCP(perm[1], perm[2], 0.785398);
    variant.addCX(perm[2], perm[3]);
    variant.addCX(perm[3], perm[4]);

    EXPECT_EQ(canonicalizeCircuit(original).text,
              canonicalizeCircuit(variant).text);
}

TEST(ServeCanonical, DifferentGateKindDiffers)
{
    ir::Circuit a(2);
    a.addCX(0, 1);
    ir::Circuit b(2);
    b.addCZ(0, 1);
    EXPECT_NE(canonicalizeCircuit(a).text, canonicalizeCircuit(b).text);
}

TEST(ServeCanonical, DifferentParameterDiffers)
{
    ir::Circuit a(2);
    a.addCP(0, 1, 0.5);
    ir::Circuit b(2);
    b.addCP(0, 1, 0.25);
    EXPECT_NE(canonicalizeCircuit(a).text, canonicalizeCircuit(b).text);
}

TEST(ServeCanonical, ExtraGateDiffers)
{
    ir::Circuit a = sampleCircuit();
    ir::Circuit b = sampleCircuit();
    b.addH(0);
    EXPECT_NE(canonicalizeCircuit(a).text, canonicalizeCircuit(b).text);
}

TEST(ServeCanonical, QubitCountDiffers)
{
    // Same gates over a wider register is a DIFFERENT mapping problem
    // (more placement freedom), so the canonical text must differ.
    ir::Circuit a(2);
    a.addCX(0, 1);
    ir::Circuit b(3);
    b.addCX(0, 1);
    EXPECT_NE(canonicalizeCircuit(a).text, canonicalizeCircuit(b).text);
}

TEST(ServeCanonical, LabelMapIsConsistent)
{
    const ir::Circuit circuit = sampleCircuit();
    const CanonicalForm form = canonicalizeCircuit(circuit);

    ASSERT_EQ(static_cast<int>(form.toCanonical.size()),
              circuit.numQubits());
    // Touched qubits get distinct canonical labels in [0, n).
    std::vector<int> seen;
    for (int q = 0; q < circuit.numQubits(); ++q) {
        const int c = form.toCanonical[static_cast<size_t>(q)];
        if (c < 0)
            continue;
        EXPECT_LT(c, circuit.numQubits());
        seen.push_back(c);
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) ==
                seen.end());

    // gateOrder is a permutation of the gate indices.
    std::vector<int> order = form.gateOrder;
    ASSERT_EQ(static_cast<int>(order.size()), circuit.size());
    std::sort(order.begin(), order.end());
    for (int i = 0; i < circuit.size(); ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);

    // Relabeling the circuit through its own canonical map must be a
    // fixpoint of canonicalization.
    std::vector<int> map = form.toCanonical;
    for (auto &m : map)
        if (m < 0)
            m = 0; // unreachable here: every qubit is touched
    EXPECT_EQ(canonicalizeCircuit(circuit.remapped(map)).text, form.text);
}

TEST(ServeCanonical, QftSkeletonRelabelingCollides)
{
    // The structured tier depends on exactly this property.
    const ir::Circuit skel = ir::qftSkeleton(6);
    std::vector<int> perm{5, 3, 1, 0, 2, 4};
    EXPECT_EQ(canonicalizeCircuit(skel).text,
              canonicalizeCircuit(skel.remapped(perm)).text);
}

TEST(ServeCanonical, HashTextIs128BitAndStable)
{
    const CanonicalKey a = hashText("n=2;cx 0 1;");
    const CanonicalKey b = hashText("n=2;cx 0 1;");
    const CanonicalKey c = hashText("n=2;cz 0 1;");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a.hex().size(), 32u);
}

} // namespace
} // namespace toqm::serve
