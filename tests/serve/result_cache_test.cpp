/**
 * @file
 * ResultCache tests: exact-vs-canonical hit classification, the byte
 * budget, and — the property the daemon lifecycle leans on —
 * DETERMINISTIC strict-LRU eviction given an access sequence.
 */

#include <gtest/gtest.h>

#include <string>

#include "serve/result_cache.hpp"

namespace toqm::serve {
namespace {

CanonicalKey
key(std::uint64_t hi, std::uint64_t lo)
{
    CanonicalKey k;
    k.hi = hi;
    k.lo = lo;
    return k;
}

CacheEntry
entry(const CanonicalKey &exact, std::size_t payload)
{
    CacheEntry e;
    e.exactKey = exact;
    e.output = std::string(payload, 'x');
    e.mapper = "heuristic";
    e.cycles = 7;
    return e;
}

TEST(ResultCache, MissThenExactHit)
{
    ResultCache cache(1 << 20, 1);
    const CanonicalKey canon = key(1, 2);
    const CanonicalKey exact = key(3, 4);

    EXPECT_FALSE(cache.find(canon, exact).hit);
    cache.insert(canon, entry(exact, 100));

    const ResultCache::Lookup hit = cache.find(canon, exact);
    ASSERT_TRUE(hit.hit);
    EXPECT_TRUE(hit.exact);
    ASSERT_NE(hit.entry, nullptr);
    EXPECT_EQ(hit.entry->output, std::string(100, 'x'));

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.exactHits, 1u);
    EXPECT_EQ(stats.canonicalHits, 0u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_GT(stats.bytes, 100u);
}

TEST(ResultCache, CanonicalHitClassifiedByExactFingerprint)
{
    ResultCache cache(1 << 20, 1);
    const CanonicalKey canon = key(1, 2);
    cache.insert(canon, entry(key(3, 4), 10));

    // Same canonical key, different exact fingerprint: a relabeled or
    // reordered equivalent.  Hit, but NOT exact.
    const ResultCache::Lookup hit = cache.find(canon, key(5, 6));
    ASSERT_TRUE(hit.hit);
    EXPECT_FALSE(hit.exact);

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.canonicalHits, 1u);
    EXPECT_EQ(stats.exactHits, 0u);
}

TEST(ResultCache, DeterministicLruEviction)
{
    // Size the budget for exactly two resident entries of this shape.
    const std::size_t unit = cacheEntryBytes(entry(key(0, 0), 64));
    ResultCache cache(2 * unit, 1);

    const CanonicalKey a = key(10, 0), b = key(11, 0), c = key(12, 0);
    cache.insert(a, entry(a, 64));
    cache.insert(b, entry(b, 64));
    EXPECT_EQ(cache.stats().entries, 2u);

    // Touch A so B becomes the least-recently-used entry...
    EXPECT_TRUE(cache.find(a, a).hit);
    // ...then inserting C must evict exactly B.
    cache.insert(c, entry(c, 64));

    EXPECT_TRUE(cache.find(a, a).hit);
    EXPECT_TRUE(cache.find(c, c).hit);
    EXPECT_FALSE(cache.find(b, b).hit);

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_LE(stats.bytes, 2 * unit);

    // The mirrored sequence with the roles of A and B swapped evicts
    // A instead — eviction follows recency, not insertion order.
    ResultCache mirror(2 * unit, 1);
    mirror.insert(a, entry(a, 64));
    mirror.insert(b, entry(b, 64));
    EXPECT_TRUE(mirror.find(b, b).hit);
    mirror.insert(c, entry(c, 64));
    EXPECT_FALSE(mirror.find(a, a).hit);
    EXPECT_TRUE(mirror.find(b, b).hit);
    EXPECT_TRUE(mirror.find(c, c).hit);
}

TEST(ResultCache, OversizedEntryRejected)
{
    const std::size_t unit = cacheEntryBytes(entry(key(0, 0), 64));
    ResultCache cache(unit, 1);
    // An entry larger than the whole shard budget must be rejected,
    // not admitted by evicting everything.
    cache.insert(key(1, 0), entry(key(1, 0), 1 << 20));

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.bytes, 0u);
    EXPECT_FALSE(cache.find(key(1, 0), key(1, 0)).hit);
}

TEST(ResultCache, ReinsertReplacesWithoutGrowth)
{
    ResultCache cache(1 << 20, 1);
    const CanonicalKey canon = key(1, 2);
    cache.insert(canon, entry(key(3, 4), 100));
    const std::size_t bytes_first = cache.stats().bytes;

    CacheEntry replacement = entry(key(5, 6), 100);
    replacement.output = std::string(100, 'y');
    cache.insert(canon, replacement);

    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.bytes, bytes_first);
    EXPECT_EQ(stats.insertions, 2u);

    const ResultCache::Lookup hit = cache.find(canon, key(5, 6));
    ASSERT_TRUE(hit.hit);
    EXPECT_TRUE(hit.exact);
    EXPECT_EQ(hit.entry->output, std::string(100, 'y'));
}

TEST(ResultCache, ShardsIsolateBudgets)
{
    const std::size_t unit = cacheEntryBytes(entry(key(0, 0), 64));
    // Two shards, each with budget for one entry.  Keys with even hi
    // land in shard 0, odd hi in shard 1.
    ResultCache cache(2 * unit, 2);
    EXPECT_EQ(cache.shardCount(), 2);

    cache.insert(key(2, 0), entry(key(2, 0), 64));
    cache.insert(key(3, 0), entry(key(3, 0), 64));
    // Both fit: they're in different shards.
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // A second even-hi key evicts within shard 0 only.
    cache.insert(key(4, 0), entry(key(4, 0), 64));
    EXPECT_FALSE(cache.find(key(2, 0), key(2, 0)).hit);
    EXPECT_TRUE(cache.find(key(3, 0), key(3, 0)).hit);
    EXPECT_TRUE(cache.find(key(4, 0), key(4, 0)).hit);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, ZeroBudgetAdmitsNothing)
{
    ResultCache cache(0, 4);
    cache.insert(key(1, 0), entry(key(1, 0), 8));
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_FALSE(cache.find(key(1, 0), key(1, 0)).hit);
}

} // namespace
} // namespace toqm::serve
