/**
 * @file
 * MapService tier tests: cache hits are byte-identical to a fresh
 * search, canonical hits translate + re-verify, the structured tier
 * answers QFT skeletons without caching them, and handleBatch
 * preserves request order on the warm pool.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ir/circuit.hpp"
#include "ir/generators.hpp"
#include "serve/service.hpp"
#include "serve/warm.hpp"

namespace toqm::serve {
namespace {

MapRequest
smallRequest(const std::string &id = "r")
{
    MapRequest request;
    request.id = id;
    request.circuit = ir::qftConcrete(5);
    request.arch = "tokyo";
    request.mapper = "heuristic";
    return request;
}

TEST(MapService, SearchThenExactCacheHitIsByteIdentical)
{
    MapService service({.cacheBytes = 8u << 20});
    const MapRequest request = smallRequest();

    const MapResponse first = service.handle(request);
    ASSERT_EQ(first.code, 0) << first.error;
    EXPECT_EQ(first.tier, "search");
    EXPECT_FALSE(first.output.empty());

    const MapResponse second = service.handle(request);
    ASSERT_EQ(second.code, 0) << second.error;
    EXPECT_EQ(second.tier, "cache");
    // The contract: a cache hit replays the stored bytes verbatim.
    EXPECT_EQ(second.output, first.output);
    EXPECT_EQ(second.cycles, first.cycles);
    EXPECT_EQ(second.swaps, first.swaps);
    EXPECT_EQ(second.mapper, first.mapper);

    const TierCounters tiers = service.tierCounters();
    EXPECT_EQ(tiers.requests, 2u);
    EXPECT_EQ(tiers.searches, 1u);
    EXPECT_EQ(tiers.cacheHits, 1u);
    EXPECT_EQ(tiers.verifyRejected, 0u);
}

TEST(MapService, CacheHitMatchesFreshColdService)
{
    // The same request against an independent cache-less service must
    // produce the same bytes the cache replays — i.e. the cache never
    // changes WHAT is answered, only how fast.
    MapService warm({.cacheBytes = 8u << 20});
    MapService cold({.cacheBytes = 0});
    const MapRequest request = smallRequest();

    warm.handle(request);
    const MapResponse hit = warm.handle(request);
    const MapResponse fresh = cold.handle(request);
    ASSERT_EQ(hit.code, 0);
    ASSERT_EQ(fresh.code, 0);
    EXPECT_EQ(hit.tier, "cache");
    EXPECT_EQ(fresh.tier, "search");
    EXPECT_EQ(hit.output, fresh.output);
}

TEST(MapService, RelabeledRequestTakesCanonicalHit)
{
    MapService service({.cacheBytes = 8u << 20});
    MapRequest request = smallRequest();
    ASSERT_EQ(service.handle(request).code, 0);

    MapRequest relabeled = request;
    relabeled.circuit = request.circuit.remapped({4, 2, 0, 3, 1});
    const MapResponse response = service.handle(relabeled);
    ASSERT_EQ(response.code, 0) << response.error;
    // Canonical hits are translated and re-verified, never replayed
    // verbatim — code 0 means the verifier accepted the translation.
    EXPECT_EQ(response.tier, "cache-canonical");
    EXPECT_FALSE(response.output.empty());

    const TierCounters tiers = service.tierCounters();
    EXPECT_EQ(tiers.cacheCanonicalHits, 1u);
    EXPECT_EQ(tiers.verifyRejected, 0u);
}

TEST(MapService, NonCacheableRequestSkipsTheCache)
{
    MapService service({.cacheBytes = 8u << 20});
    MapRequest request = smallRequest();
    request.cacheable = false;

    ASSERT_EQ(service.handle(request).code, 0);
    const MapResponse second = service.handle(request);
    ASSERT_EQ(second.code, 0);
    EXPECT_EQ(second.tier, "search");
    EXPECT_EQ(service.cache().stats().entries, 0u);
}

TEST(MapService, CacheDisabledAlwaysSearches)
{
    MapService service({.cacheBytes = 0});
    const MapRequest request = smallRequest();
    EXPECT_EQ(service.handle(request).tier, "search");
    EXPECT_EQ(service.handle(request).tier, "search");
    EXPECT_EQ(service.tierCounters().searches, 2u);
}

TEST(MapService, StructuredTierAnswersQftSkeleton)
{
    MapService service({.cacheBytes = 8u << 20, .structuredTier = true});
    MapRequest request;
    request.id = "qft";
    request.circuit = ir::qftSkeleton(6);
    request.arch = "lnn6";
    request.mapper = "heuristic";
    // The closed-form depth analysis assumes the uniform latency
    // preset; any other model must fall through to search.
    request.lat1 = request.lat2 = request.lats = 1;

    const MapResponse response = service.handle(request);
    ASSERT_EQ(response.code, 0) << response.error;
    EXPECT_EQ(response.tier, "structured");
    EXPECT_EQ(response.mapper, "qft-lnn-butterfly");
    EXPECT_FALSE(response.output.empty());

    // Structured answers are NOT cached (the lookup is already
    // cheaper than a cache probe + verify): a repeat hits the
    // structured tier again and the cache stays empty.
    const MapResponse repeat = service.handle(request);
    EXPECT_EQ(repeat.tier, "structured");
    EXPECT_EQ(repeat.output, response.output);
    EXPECT_EQ(service.cache().stats().entries, 0u);
    EXPECT_EQ(service.tierCounters().structuredHits, 2u);
}

TEST(MapService, StructuredTierRequiresUniformLatency)
{
    MapService service({.cacheBytes = 0, .structuredTier = true});
    MapRequest request;
    request.circuit = ir::qftSkeleton(6);
    request.arch = "lnn6";
    request.mapper = "heuristic";
    // Default (1,2,6) latency: the closed-form schedule's depth claim
    // doesn't hold, so the request must be searched.
    const MapResponse response = service.handle(request);
    ASSERT_EQ(response.code, 0) << response.error;
    EXPECT_EQ(response.tier, "search");
}

TEST(MapService, HandleBatchPreservesRequestOrder)
{
    MapService service({.cacheBytes = 8u << 20, .workers = 4});
    std::vector<MapRequest> requests;
    for (int n = 3; n <= 6; ++n) {
        MapRequest request;
        request.id = "job-" + std::to_string(n);
        request.circuit = ir::qftConcrete(n);
        request.arch = "tokyo";
        request.mapper = "heuristic";
        requests.push_back(request);
    }

    const std::vector<MapResponse> responses =
        service.handleBatch(requests);
    ASSERT_EQ(responses.size(), requests.size());
    for (std::size_t i = 0; i < responses.size(); ++i) {
        EXPECT_EQ(responses[i].id, requests[i].id);
        EXPECT_EQ(responses[i].code, 0) << responses[i].error;
        // Each batch response matches what a serial handle() yields.
        MapService fresh({.cacheBytes = 0});
        EXPECT_EQ(fresh.handle(requests[i]).output, responses[i].output);
    }
}

TEST(MapService, UnknownArchitectureIsAnError)
{
    MapService service({.cacheBytes = 0});
    MapRequest request = smallRequest();
    request.arch = "no-such-device";
    const MapResponse response = service.handle(request);
    EXPECT_NE(response.code, 0);
    EXPECT_FALSE(response.error.empty());
    EXPECT_EQ(service.tierCounters().errors, 1u);
}

TEST(ArchCacheTest, LookupMemoizesByName)
{
    ArchCache &cache = ArchCache::global();
    cache.clear();
    const ArchCache::Stats before = cache.stats();

    const auto first = cache.lookup("tokyo");
    const auto again = cache.lookup("tokyo");
    ASSERT_NE(first, nullptr);
    // Same immutable graph object is shared, not rebuilt.
    EXPECT_EQ(first.get(), again.get());

    const ArchCache::Stats after = cache.stats();
    EXPECT_EQ(after.misses, before.misses + 1);
    EXPECT_EQ(after.hits, before.hits + 1);
    EXPECT_EQ(after.entries, 1u);

    EXPECT_THROW(cache.lookup("no-such-device"), std::invalid_argument);
    // A throwing name caches nothing.
    EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(MapService, StatsJsonCarriesCacheCounters)
{
    MapService service({.cacheBytes = 8u << 20});
    const MapRequest request = smallRequest();
    service.handle(request);
    service.handle(request);

    const std::string json = service.statsJson();
    EXPECT_NE(json.find("\"requests\":2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"cache\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"hits\":1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"misses\":1"), std::string::npos) << json;
}

} // namespace
} // namespace toqm::serve
