#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "ir/direction.hpp"
#include "ir/generators.hpp"
#include "sim/statevector.hpp"
#include "toqm/mapper.hpp"

namespace toqm::ir {
namespace {

TEST(DirectionTest, NativeDirectionUntouched)
{
    Circuit c(5);
    c.addCX(1, 0); // native on QX2
    const auto result = enforceCxDirections(c, ibmQX2Directions());
    EXPECT_EQ(result.reversedCx, 0);
    EXPECT_EQ(result.circuit.size(), 1);
}

TEST(DirectionTest, WrongWayCxGetsHConjugated)
{
    Circuit c(5);
    c.addCX(0, 1); // only 1->0 is native
    const auto result = enforceCxDirections(c, ibmQX2Directions());
    EXPECT_EQ(result.reversedCx, 1);
    ASSERT_EQ(result.circuit.size(), 5);
    EXPECT_EQ(result.circuit.gate(2).kind(), GateKind::CX);
    EXPECT_EQ(result.circuit.gate(2).qubit(0), 1);
    EXPECT_EQ(result.circuit.gate(2).qubit(1), 0);
}

TEST(DirectionTest, ReversalPreservesSemantics)
{
    Circuit c(5);
    c.addH(0);
    c.addCX(0, 1);
    c.addCX(2, 3);
    c.add(Gate(GateKind::T, 1));
    c.addCX(0, 2);
    const auto result = enforceCxDirections(c, ibmQX2Directions());
    EXPECT_GT(result.reversedCx, 0);

    sim::StateVector a(5), b(5);
    for (int q = 0; q < 5; ++q) {
        for (auto *sv : {&a, &b}) {
            sv->apply(Gate(GateKind::H, q));
            sv->apply(Gate(GateKind::T, q));
        }
    }
    a.run(c);
    b.run(result.circuit);
    EXPECT_GT(a.overlap(b), 1.0 - 1e-9);
}

TEST(DirectionTest, EveryCxCompliantAfterPass)
{
    const auto dirs = ibmQX2Directions();
    // Map something onto QX2, then enforce directions.  (A small
    // circuit: this test is about the pass, not the mapper.)
    const Circuit logical = randomCircuit(5, 24, 0.5, 42, 0.7);
    core::OptimalMapper mapper(arch::ibmQX2());
    const auto mapped = mapper.map(logical);
    ASSERT_TRUE(mapped.success);
    const auto result =
        enforceCxDirections(mapped.mapped.physical, dirs);
    for (const Gate &g : result.circuit.gates()) {
        if (g.kind() == GateKind::CX)
            EXPECT_TRUE(dirs.allowed(g.qubit(0), g.qubit(1)))
                << g.str();
    }
}

TEST(DirectionTest, UncoupledCxThrows)
{
    Circuit c(5);
    c.addCX(0, 3); // 0-3 is not a QX2 link at all
    EXPECT_THROW(enforceCxDirections(c, ibmQX2Directions()),
                 std::invalid_argument);
}

TEST(DirectionTest, BidirectionalSetIsNoOp)
{
    const auto g = arch::ibmQX2();
    const auto dirs = DirectionSet::bidirectional(g.edges());
    Circuit c(5);
    c.addCX(0, 1);
    c.addCX(1, 0);
    const auto result = enforceCxDirections(c, dirs);
    EXPECT_EQ(result.reversedCx, 0);
    EXPECT_EQ(result.circuit.size(), 2);
}

TEST(DirectionTest, SwapsPassThrough)
{
    Circuit c(5);
    c.addSwap(0, 1);
    const auto result = enforceCxDirections(c, ibmQX2Directions());
    EXPECT_EQ(result.circuit.size(), 1);
    EXPECT_TRUE(result.circuit.gate(0).isSwap());
}

} // namespace
} // namespace toqm::ir
