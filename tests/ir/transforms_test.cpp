#include <gtest/gtest.h>

#include "ir/generators.hpp"
#include "ir/schedule.hpp"
#include "ir/transforms.hpp"
#include "sim/statevector.hpp"

namespace toqm::ir {
namespace {

/** Semantic-equality oracle for rewrites. */
bool
equivalent(const Circuit &a, const Circuit &b)
{
    sim::StateVector sa(a.numQubits());
    sim::StateVector sb(b.numQubits());
    // A non-trivial input state to catch phase errors.
    for (int q = 0; q < a.numQubits(); ++q) {
        sa.apply(Gate(GateKind::H, q));
        sb.apply(Gate(GateKind::H, q));
        sa.apply(Gate(GateKind::T, q));
        sb.apply(Gate(GateKind::T, q));
    }
    sa.run(a);
    sb.run(b);
    return sa.overlap(sb) > 1.0 - 1e-9;
}

TEST(CancelRedundantTest, AdjacentHPairCancels)
{
    Circuit c(1);
    c.addH(0);
    c.addH(0);
    const Circuit out = cancelRedundantGates(c);
    EXPECT_EQ(out.size(), 0);
}

TEST(CancelRedundantTest, CxPairCancels)
{
    Circuit c(2);
    c.addCX(0, 1);
    c.addCX(0, 1);
    EXPECT_EQ(cancelRedundantGates(c).size(), 0);
}

TEST(CancelRedundantTest, FlippedCxDoesNotCancel)
{
    Circuit c(2);
    c.addCX(0, 1);
    c.addCX(1, 0);
    EXPECT_EQ(cancelRedundantGates(c).size(), 2);
}

TEST(CancelRedundantTest, FlippedSwapDoesCancel)
{
    Circuit c(2);
    c.addSwap(0, 1);
    c.addSwap(1, 0);
    EXPECT_EQ(cancelRedundantGates(c).size(), 0);
}

TEST(CancelRedundantTest, InterposedGateBlocksCancellation)
{
    Circuit c(2);
    c.addSwap(0, 1);
    c.addH(0);
    c.addSwap(0, 1);
    EXPECT_EQ(cancelRedundantGates(c).size(), 3);
}

TEST(CancelRedundantTest, UnrelatedGateDoesNotBlock)
{
    Circuit c(3);
    c.addSwap(0, 1);
    c.addH(2); // touches neither swap qubit
    c.addSwap(0, 1);
    const Circuit out = cancelRedundantGates(c);
    ASSERT_EQ(out.size(), 1);
    EXPECT_EQ(out.gate(0).kind(), GateKind::H);
}

TEST(CancelRedundantTest, CascadesToFixedPoint)
{
    // h x x h on one qubit: inner pair cancels, then the outer pair.
    Circuit c(1);
    c.addH(0);
    c.addX(0);
    c.addX(0);
    c.addH(0);
    EXPECT_EQ(cancelRedundantGates(c).size(), 0);
}

TEST(CancelRedundantTest, NonSelfInverseGatesKept)
{
    Circuit c(1);
    c.add(Gate(GateKind::T, 0));
    c.add(Gate(GateKind::T, 0));
    EXPECT_EQ(cancelRedundantGates(c).size(), 2);
}

TEST(CancelRedundantTest, PreservesSemantics)
{
    Circuit c(3);
    c.addH(0);
    c.addCX(0, 1);
    c.addCX(0, 1);
    c.addSwap(1, 2);
    c.addSwap(2, 1);
    c.addCX(0, 2);
    const Circuit out = cancelRedundantGates(c);
    EXPECT_LT(out.size(), c.size());
    EXPECT_TRUE(equivalent(c, out));
}

TEST(NormalizeSwapGateTest, SwapThenGateBecomesGateThenSwap)
{
    Circuit c(2);
    c.addSwap(0, 1);
    c.addCX(0, 1);
    const Circuit out = normalizeSwapGateOrder(c, /*gate_first=*/true);
    ASSERT_EQ(out.size(), 2);
    EXPECT_EQ(out.gate(0).kind(), GateKind::CX);
    // The gate crosses the swap with reversed operands.
    EXPECT_EQ(out.gate(0).qubit(0), 1);
    EXPECT_EQ(out.gate(0).qubit(1), 0);
    EXPECT_TRUE(out.gate(1).isSwap());
    EXPECT_TRUE(equivalent(c, out));
}

TEST(NormalizeSwapGateTest, GateThenSwapBecomesSwapThenGate)
{
    Circuit c(2);
    c.addCX(1, 0);
    c.addSwap(0, 1);
    const Circuit out =
        normalizeSwapGateOrder(c, /*gate_first=*/false);
    ASSERT_EQ(out.size(), 2);
    EXPECT_TRUE(out.gate(0).isSwap());
    EXPECT_EQ(out.gate(1).qubit(0), 0);
    EXPECT_TRUE(equivalent(c, out));
}

TEST(NormalizeSwapGateTest, AlreadyNormalizedIsUntouched)
{
    Circuit c(2);
    c.addCX(0, 1);
    c.addSwap(0, 1);
    const Circuit out = normalizeSwapGateOrder(c, /*gate_first=*/true);
    EXPECT_EQ(out, c);
}

TEST(NormalizeSwapGateTest, DifferentPairsAreUntouched)
{
    Circuit c(3);
    c.addSwap(0, 1);
    c.addCX(1, 2); // shares only one qubit with the swap
    const Circuit out = normalizeSwapGateOrder(c, true);
    EXPECT_EQ(out, c);
}

TEST(NormalizeSwapGateTest, PreservesSemanticsOnQftButterfly)
{
    // The GT/SWAP alternation of the butterfly (here with CZ as the
    // concrete symmetric gate) survives both normalizations.
    Circuit c(4);
    c.addCZ(0, 1);
    c.addSwap(0, 1);
    c.addCZ(1, 2);
    c.addSwap(1, 2);
    c.addCZ(2, 3);
    const Circuit fwd = normalizeSwapGateOrder(c, true);
    const Circuit bwd = normalizeSwapGateOrder(c, false);
    EXPECT_TRUE(equivalent(c, fwd));
    EXPECT_TRUE(equivalent(c, bwd));
}

TEST(LayerSignatureTest, GroupsByStartCycle)
{
    Circuit c(4);
    c.addCX(0, 1);
    c.addCX(2, 3);
    c.addH(0);
    const auto sig = layerSignature(c, LatencyModel::ibmPreset());
    ASSERT_EQ(sig.size(), 3u); // cx(2 cycles) then h
    EXPECT_EQ(sig[0], "cx@0,1;cx@2,3");
    EXPECT_EQ(sig[1], "");
    EXPECT_EQ(sig[2], "h@0");
}

TEST(RecurrenceTest, DetectsAlternatingPattern)
{
    // GT layer / SWAP layer alternation -> period 2.
    Circuit c(2);
    for (int i = 0; i < 4; ++i) {
        c.addGT(0, 1);
        c.addSwap(0, 1);
    }
    const auto sig = layerSignature(c, LatencyModel::qftPreset());
    EXPECT_EQ(detectRecurrence(sig), 2);
}

TEST(RecurrenceTest, NoFalsePeriodOnRandomCircuit)
{
    const Circuit c = ir::randomCircuit(5, 60, 0.5, 99);
    const auto sig = layerSignature(c, LatencyModel::ibmPreset());
    // Mostly-random layer shapes should not alias to period <= 2.
    EXPECT_NE(detectRecurrence(sig, 0, 2), 1);
}

TEST(RecurrenceTest, QftButterflyHasPeriodTwo)
{
    // The real thing: the generalized LNN butterfly's layer shapes
    // alternate GT / SWAP with period 2 after the prologue.
    Circuit c(6, "butterfly");
    // Reconstruct the physical circuit of the n=6 butterfly.
    // (GT layers and swap layers strictly alternate.)
    c.addGT(0, 1);
    c.addSwap(0, 1);
    c.addGT(1, 2);
    c.addSwap(1, 2);
    c.addGT(0, 1);
    c.addGT(2, 3);
    c.addSwap(0, 1);
    c.addSwap(2, 3);
    const auto sig = layerSignature(c, LatencyModel::qftPreset());
    EXPECT_EQ(detectRecurrence(sig, 0, 4) % 2, 0);
}

TEST(NormalizedDepthTest, CancellationShortensDepth)
{
    Circuit c(2);
    c.addCX(0, 1);
    c.addSwap(0, 1);
    c.addSwap(0, 1);
    c.addCX(1, 0); // flipped: survives cancellation
    const LatencyModel lat = LatencyModel::ibmPreset();
    EXPECT_EQ(scheduleAsap(c, lat).makespan, 16);
    EXPECT_EQ(normalizedDepth(c, lat), 4); // the swaps cancel
}

} // namespace
} // namespace toqm::ir
