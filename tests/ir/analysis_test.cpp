#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "baselines/sabre.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/analysis.hpp"
#include "ir/generators.hpp"

namespace toqm::ir {
namespace {

TEST(AnalysisTest, SwapFreeMappingHasNoOverhead)
{
    Circuit logical(2);
    logical.addCX(0, 1);
    Circuit phys(2);
    phys.addCX(0, 1);
    MappedCircuit mapped(std::move(phys), {0, 1}, {0, 1});
    const auto report =
        analyzeRouting(logical, mapped, LatencyModel::ibmPreset());
    EXPECT_EQ(report.idealCycles, 2);
    EXPECT_EQ(report.mappedCycles, 2);
    EXPECT_DOUBLE_EQ(report.depthOverhead, 1.0);
    EXPECT_DOUBLE_EQ(report.swapOverhead, 0.0);
    EXPECT_DOUBLE_EQ(report.swapHiding, 1.0);
}

TEST(AnalysisTest, FullyExposedSwap)
{
    // One swap fully on the critical path: hiding = 0.
    Circuit logical(3);
    logical.addCX(0, 2);
    Circuit phys(3);
    phys.addSwap(1, 2);
    phys.addCX(0, 1);
    MappedCircuit mapped(std::move(phys), {0, 1, 2}, {0, 2, 1});
    const auto report =
        analyzeRouting(logical, mapped, LatencyModel::ibmPreset());
    EXPECT_EQ(report.mappedCycles, 8);
    EXPECT_EQ(report.idealCycles, 2);
    EXPECT_DOUBLE_EQ(report.swapHiding, 0.0);
    EXPECT_DOUBLE_EQ(report.swapOverhead, 1.0);
}

TEST(AnalysisTest, HiddenSwapDoesNotExtendCriticalPath)
{
    // A swap on idle qubits in parallel with a long 1q chain.
    Circuit logical(4);
    for (int i = 0; i < 8; ++i)
        logical.addH(0);
    logical.addCX(2, 3);
    Circuit phys(4);
    for (int i = 0; i < 8; ++i)
        phys.addH(0);
    phys.addSwap(2, 3); // pointless but fully hidden
    phys.addCX(3, 2);
    MappedCircuit mapped(std::move(phys), {0, 1, 2, 3},
                         {0, 1, 3, 2});
    const auto report =
        analyzeRouting(logical, mapped, LatencyModel::ibmPreset());
    EXPECT_EQ(report.mappedCycles, report.idealCycles);
    EXPECT_DOUBLE_EQ(report.swapHiding, 1.0);
}

TEST(AnalysisTest, UtilizationBounded)
{
    const auto g = arch::ibmQ20Tokyo();
    const Circuit c = ir::benchmarkStandIn("analysis", 10, 500);
    heuristic::HeuristicMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    const auto report =
        analyzeRouting(c, res.mapped, LatencyModel::ibmPreset());
    EXPECT_GT(report.utilization, 0.0);
    EXPECT_LE(report.utilization, 1.0);
    EXPECT_GE(report.depthOverhead, 1.0);
}

TEST(AnalysisTest, TimeAwareMapperHidesMoreSwapWorkThanSabre)
{
    // The mechanism behind Table 3: our mapper's advantage is swap
    // HIDING, not swap count.
    const auto g = arch::ibmQ20Tokyo();
    const auto lat = LatencyModel::ibmPreset();
    double ours_hiding = 0.0, sabre_hiding = 0.0;
    for (std::uint64_t seed : {5u, 6u, 7u}) {
        const Circuit c = randomCircuit(10, 400, 0.45, seed, 0.5);
        heuristic::HeuristicMapper ours(g);
        baselines::SabreMapper sabre(g);
        const auto ro = ours.map(c);
        const auto rs = sabre.map(c);
        ASSERT_TRUE(ro.success && rs.success);
        ours_hiding += analyzeRouting(c, ro.mapped, lat).swapHiding;
        sabre_hiding += analyzeRouting(c, rs.mapped, lat).swapHiding;
    }
    EXPECT_GT(ours_hiding, sabre_hiding);
}

TEST(AnalysisTest, StrMentionsKeyNumbers)
{
    Circuit logical(2);
    logical.addCX(0, 1);
    Circuit phys(2);
    phys.addCX(0, 1);
    MappedCircuit mapped(std::move(phys), {0, 1}, {0, 1});
    const auto report =
        analyzeRouting(logical, mapped, LatencyModel::ibmPreset());
    EXPECT_NE(report.str().find("cycles 2"), std::string::npos);
    EXPECT_NE(report.str().find("swaps 0"), std::string::npos);
}

} // namespace
} // namespace toqm::ir
