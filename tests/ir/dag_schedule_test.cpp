#include <gtest/gtest.h>

#include "ir/dag.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"

namespace toqm::ir {
namespace {

Circuit
chainCircuit()
{
    // q0: h ─ cx(0,1) ─ cx(0,2)
    Circuit c(3);
    c.addH(0);
    c.addCX(0, 1);
    c.addCX(0, 2);
    return c;
}

TEST(DagTest, PredsAndSuccs)
{
    Circuit c = chainCircuit();
    DependencyDag dag(c);
    EXPECT_TRUE(dag.preds(0).empty());
    ASSERT_EQ(dag.preds(1).size(), 1u);
    EXPECT_EQ(dag.preds(1)[0], 0);
    ASSERT_EQ(dag.preds(2).size(), 1u);
    EXPECT_EQ(dag.preds(2)[0], 1);
    ASSERT_EQ(dag.succs(0).size(), 1u);
    EXPECT_EQ(dag.succs(0)[0], 1);
}

TEST(DagTest, RootsAreGatesWithoutPredecessors)
{
    Circuit c(4);
    c.addCX(0, 1);
    c.addCX(2, 3);
    c.addCX(1, 2);
    DependencyDag dag(c);
    ASSERT_EQ(dag.roots().size(), 2u);
    EXPECT_EQ(dag.roots()[0], 0);
    EXPECT_EQ(dag.roots()[1], 1);
}

TEST(DagTest, PredsAreDeduplicated)
{
    // Two gates sharing BOTH qubits: one pred edge, not two.
    Circuit c(2);
    c.addCX(0, 1);
    c.addCX(1, 0);
    DependencyDag dag(c);
    EXPECT_EQ(dag.preds(1).size(), 1u);
}

TEST(DagTest, PrevOnQubit)
{
    Circuit c = chainCircuit();
    DependencyDag dag(c);
    EXPECT_EQ(dag.prevOnQubit(1, 0), 0);
    EXPECT_EQ(dag.prevOnQubit(1, 1), -1);
    EXPECT_EQ(dag.prevOnQubit(2, 0), 1);
    EXPECT_THROW(dag.prevOnQubit(2, 1), std::invalid_argument);
}

TEST(DagTest, FirstOnQubit)
{
    Circuit c = chainCircuit();
    DependencyDag dag(c);
    EXPECT_EQ(dag.firstOnQubit(0), 0);
    EXPECT_EQ(dag.firstOnQubit(1), 1);
    EXPECT_EQ(dag.firstOnQubit(2), 2);
}

TEST(DagTest, CriticalPathWithUniformLatency)
{
    Circuit c = chainCircuit();
    const LatencyModel lat(1, 1, 3);
    EXPECT_EQ(DependencyDag(c).criticalPath(lat), 3);
}

TEST(DagTest, CriticalPathWithIbmLatency)
{
    Circuit c = chainCircuit();
    // h(1) + cx(2) + cx(2) chained on q0 = 5 cycles.
    EXPECT_EQ(DependencyDag(c).criticalPath(LatencyModel::ibmPreset()),
              5);
}

TEST(ScheduleTest, AsapStartCycles)
{
    Circuit c = chainCircuit();
    const Schedule s = scheduleAsap(c, LatencyModel::ibmPreset());
    EXPECT_EQ(s.startCycle[0], 1);
    EXPECT_EQ(s.startCycle[1], 2);
    EXPECT_EQ(s.startCycle[2], 4);
    EXPECT_EQ(s.makespan, 5);
}

TEST(ScheduleTest, ParallelGatesOverlap)
{
    Circuit c(4);
    c.addCX(0, 1);
    c.addCX(2, 3);
    const Schedule s = scheduleAsap(c, LatencyModel::ibmPreset());
    EXPECT_EQ(s.startCycle[0], 1);
    EXPECT_EQ(s.startCycle[1], 1);
    EXPECT_EQ(s.makespan, 2);
}

TEST(ScheduleTest, BarrierSynchronizesOperands)
{
    Circuit c(2);
    c.addH(0);
    c.add(Gate("barrier", {0, 1}));
    c.addH(1);
    const Schedule s = scheduleAsap(c, LatencyModel::ibmPreset());
    // h(q1) must wait for the barrier, which waits for h(q0).
    EXPECT_EQ(s.startCycle[2], 2);
}

TEST(ScheduleTest, IdealCyclesIgnoresSwaps)
{
    Circuit c(2);
    c.addCX(0, 1);
    c.addSwap(0, 1);
    c.addCX(0, 1);
    const LatencyModel lat = LatencyModel::ibmPreset();
    // Without swaps: two chained CX = 4 cycles.
    EXPECT_EQ(idealCycles(c, lat), 4);
    // With the swap: 2 + 6 + 2.
    EXPECT_EQ(scheduleAsap(c, lat).makespan, 10);
}

TEST(ScheduleTest, QftSkeletonIdealDepthIsLinear)
{
    const LatencyModel lat = LatencyModel::qftPreset();
    for (int n : {4, 6, 8, 12}) {
        // Fig 10: 2n-3 parallel layers of unit-latency GT gates.
        EXPECT_EQ(idealCycles(qftSkeleton(n), lat), 2 * n - 3)
            << "n=" << n;
    }
}

TEST(ScheduleTest, RenderTimelineMentionsCycles)
{
    Circuit c(2);
    c.addCX(0, 1);
    const std::string timeline =
        renderTimeline(c, LatencyModel::ibmPreset());
    EXPECT_NE(timeline.find("cycles: 2"), std::string::npos);
}

} // namespace
} // namespace toqm::ir
