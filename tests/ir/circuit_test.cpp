#include <gtest/gtest.h>

#include "ir/circuit.hpp"

namespace toqm::ir {
namespace {

TEST(CircuitTest, EmptyCircuit)
{
    Circuit c(4, "empty");
    EXPECT_EQ(c.numQubits(), 4);
    EXPECT_EQ(c.size(), 0);
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.name(), "empty");
}

TEST(CircuitTest, AddAndAccess)
{
    Circuit c(3);
    c.addH(0);
    c.addCX(0, 1);
    c.addCP(1, 2, 0.5);
    ASSERT_EQ(c.size(), 3);
    EXPECT_EQ(c.gate(0).kind(), GateKind::H);
    EXPECT_EQ(c.gate(1).kind(), GateKind::CX);
    EXPECT_EQ(c.gate(2).kind(), GateKind::CP);
    EXPECT_DOUBLE_EQ(c.gate(2).params()[0], 0.5);
}

TEST(CircuitTest, RejectsOutOfRangeOperand)
{
    Circuit c(2);
    EXPECT_THROW(c.addH(2), std::out_of_range);
    EXPECT_THROW(c.addCX(0, 5), std::out_of_range);
}

TEST(CircuitTest, GateCounters)
{
    Circuit c(4);
    c.addH(0);
    c.addCX(0, 1);
    c.addSwap(2, 3);
    c.add(Gate("barrier", {0, 1, 2, 3}));
    c.add(Gate("measure", {0}));
    EXPECT_EQ(c.numTwoQubitGates(), 2); // cx + swap
    EXPECT_EQ(c.numSwaps(), 1);
    EXPECT_EQ(c.numComputeGates(), 3); // h, cx, swap
}

TEST(CircuitTest, RemappedPermutesOperands)
{
    Circuit c(3);
    c.addCX(0, 2);
    c.addH(1);
    Circuit r = c.remapped({2, 0, 1});
    EXPECT_EQ(r.gate(0).qubit(0), 2);
    EXPECT_EQ(r.gate(0).qubit(1), 1);
    EXPECT_EQ(r.gate(1).qubit(0), 0);
}

TEST(CircuitTest, RemappedRejectsBadMapSize)
{
    Circuit c(3);
    EXPECT_THROW(c.remapped({0, 1}), std::invalid_argument);
}

TEST(CircuitTest, WithoutSwapsAndBarriers)
{
    Circuit c(3);
    c.addH(0);
    c.addSwap(0, 1);
    c.add(Gate("barrier", {0, 1}));
    c.addCX(1, 2);
    Circuit clean = c.withoutSwapsAndBarriers();
    ASSERT_EQ(clean.size(), 2);
    EXPECT_EQ(clean.gate(0).kind(), GateKind::H);
    EXPECT_EQ(clean.gate(1).kind(), GateKind::CX);
}

TEST(CircuitTest, EqualityIgnoresName)
{
    Circuit a(2, "a");
    Circuit b(2, "b");
    a.addCX(0, 1);
    b.addCX(0, 1);
    EXPECT_EQ(a, b);
    b.addH(0);
    EXPECT_FALSE(a == b);
}

TEST(CircuitTest, StrContainsGates)
{
    Circuit c(2);
    c.addCX(0, 1);
    EXPECT_NE(c.str().find("cx q[0], q[1];"), std::string::npos);
}

} // namespace
} // namespace toqm::ir
