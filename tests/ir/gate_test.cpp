#include <gtest/gtest.h>

#include "ir/gate.hpp"

namespace toqm::ir {
namespace {

TEST(GateTest, OneQubitConstruction)
{
    Gate g(GateKind::H, 3);
    EXPECT_EQ(g.kind(), GateKind::H);
    EXPECT_EQ(g.numQubits(), 1);
    EXPECT_EQ(g.qubit(0), 3);
    EXPECT_EQ(g.name(), "h");
    EXPECT_FALSE(g.isTwoQubit());
}

TEST(GateTest, TwoQubitConstruction)
{
    Gate g(GateKind::CX, 1, 4);
    EXPECT_EQ(g.numQubits(), 2);
    EXPECT_EQ(g.qubit(0), 1);
    EXPECT_EQ(g.qubit(1), 4);
    EXPECT_TRUE(g.isTwoQubit());
    EXPECT_FALSE(g.isSwap());
}

TEST(GateTest, SwapIsRecognized)
{
    Gate g(GateKind::Swap, 0, 1);
    EXPECT_TRUE(g.isSwap());
}

TEST(GateTest, ParamsArePreserved)
{
    Gate g(GateKind::RZ, 2, std::vector<double>{1.5});
    ASSERT_EQ(g.params().size(), 1u);
    EXPECT_DOUBLE_EQ(g.params()[0], 1.5);
}

TEST(GateTest, RejectsTwoQubitKindWithOneOperand)
{
    EXPECT_THROW(Gate(GateKind::CX, 0), std::invalid_argument);
}

TEST(GateTest, RejectsOneQubitKindWithTwoOperands)
{
    EXPECT_THROW(Gate(GateKind::H, 0, 1), std::invalid_argument);
}

TEST(GateTest, RejectsIdenticalOperands)
{
    EXPECT_THROW(Gate(GateKind::CX, 2, 2), std::invalid_argument);
}

TEST(GateTest, NamedOpaqueGate)
{
    Gate g("mygate", {0, 1}, {0.25});
    EXPECT_EQ(g.kind(), GateKind::Other);
    EXPECT_EQ(g.name(), "mygate");
    EXPECT_EQ(g.numQubits(), 2);
}

TEST(GateTest, NamedBuiltinResolvesKind)
{
    Gate g("cx", {0, 1});
    EXPECT_EQ(g.kind(), GateKind::CX);
}

TEST(GateTest, SharesQubitWith)
{
    Gate a(GateKind::CX, 0, 1);
    Gate b(GateKind::CX, 1, 2);
    Gate c(GateKind::CX, 2, 3);
    EXPECT_TRUE(a.sharesQubitWith(b));
    EXPECT_FALSE(a.sharesQubitWith(c));
}

TEST(GateTest, ActsOn)
{
    Gate g(GateKind::CX, 5, 7);
    EXPECT_TRUE(g.actsOn(5));
    EXPECT_TRUE(g.actsOn(7));
    EXPECT_FALSE(g.actsOn(6));
}

TEST(GateTest, SetQubitsRemaps)
{
    Gate g(GateKind::CX, 0, 1);
    g.setQubits({4, 9});
    EXPECT_EQ(g.qubit(0), 4);
    EXPECT_EQ(g.qubit(1), 9);
}

TEST(GateTest, SetQubitsRejectsArityChange)
{
    Gate g(GateKind::CX, 0, 1);
    EXPECT_THROW(g.setQubits({4}), std::invalid_argument);
}

TEST(GateTest, EqualityComparesEverything)
{
    Gate a(GateKind::RZ, 1, std::vector<double>{0.5});
    Gate b(GateKind::RZ, 1, std::vector<double>{0.5});
    Gate c(GateKind::RZ, 1, std::vector<double>{0.75});
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
}

TEST(GateTest, KindNameRoundTrip)
{
    for (GateKind k : {GateKind::H, GateKind::X, GateKind::CX,
                       GateKind::Swap, GateKind::GT, GateKind::CP}) {
        EXPECT_EQ(gateKindFromName(gateKindName(k)), k);
    }
}

TEST(GateTest, StrRendersOperands)
{
    Gate g(GateKind::CX, 0, 3);
    EXPECT_EQ(g.str(), "cx q[0], q[3]");
}

TEST(GateTest, TwoQubitKindPredicate)
{
    EXPECT_TRUE(isTwoQubitKind(GateKind::CX));
    EXPECT_TRUE(isTwoQubitKind(GateKind::Swap));
    EXPECT_TRUE(isTwoQubitKind(GateKind::GT));
    EXPECT_FALSE(isTwoQubitKind(GateKind::H));
    EXPECT_FALSE(isTwoQubitKind(GateKind::Barrier));
}

} // namespace
} // namespace toqm::ir
