#include <gtest/gtest.h>

#include <set>

#include "arch/architectures.hpp"
#include "ir/generators.hpp"
#include "ir/queko.hpp"
#include "ir/schedule.hpp"

namespace toqm::ir {
namespace {

TEST(GeneratorsTest, QftSkeletonGateCount)
{
    for (int n : {2, 3, 4, 6, 8, 16}) {
        const Circuit c = qftSkeleton(n);
        EXPECT_EQ(c.size(), n * (n - 1) / 2) << "n=" << n;
    }
}

TEST(GeneratorsTest, QftSkeletonCoversAllPairsOnce)
{
    const int n = 7;
    const Circuit c = qftSkeleton(n);
    std::set<std::pair<int, int>> seen;
    for (const Gate &g : c.gates()) {
        ASSERT_EQ(g.kind(), GateKind::GT);
        int a = g.qubit(0), b = g.qubit(1);
        if (a > b)
            std::swap(a, b);
        EXPECT_TRUE(seen.emplace(a, b).second)
            << "duplicate pair " << a << "," << b;
    }
    EXPECT_EQ(static_cast<int>(seen.size()), n * (n - 1) / 2);
}

TEST(GeneratorsTest, QftConcreteStructure)
{
    const Circuit c = qftConcrete(4);
    // n H gates + n(n-1)/2 controlled-phase gates.
    int h = 0, cp = 0;
    for (const Gate &g : c.gates()) {
        h += g.kind() == GateKind::H;
        cp += g.kind() == GateKind::CP;
    }
    EXPECT_EQ(h, 4);
    EXPECT_EQ(cp, 6);
}

TEST(GeneratorsTest, RandomCircuitIsDeterministic)
{
    const Circuit a = randomCircuit(5, 100, 0.5, 42);
    const Circuit b = randomCircuit(5, 100, 0.5, 42);
    const Circuit c = randomCircuit(5, 100, 0.5, 43);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
}

TEST(GeneratorsTest, RandomCircuitRespectsSize)
{
    const Circuit c = randomCircuit(6, 250, 0.4, 1);
    EXPECT_EQ(c.size(), 250);
    EXPECT_EQ(c.numQubits(), 6);
}

TEST(GeneratorsTest, RandomCircuitCxFractionApproximate)
{
    const Circuit c = randomCircuit(8, 4000, 0.45, 9);
    const double frac =
        static_cast<double>(c.numTwoQubitGates()) / c.size();
    EXPECT_NEAR(frac, 0.45, 0.03);
}

TEST(GeneratorsTest, BenchmarkStandInStableAcrossCalls)
{
    const Circuit a = benchmarkStandIn("rd53_251", 8, 1291);
    const Circuit b = benchmarkStandIn("rd53_251", 8, 1291);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.name(), "rd53_251");
    EXPECT_EQ(a.size(), 1291);
}

TEST(GeneratorsTest, GhzShape)
{
    const Circuit c = ghz(5);
    EXPECT_EQ(c.size(), 5); // 1 H + 4 CX
    EXPECT_EQ(c.gate(0).kind(), GateKind::H);
    EXPECT_EQ(c.numTwoQubitGates(), 4);
}

TEST(GeneratorsTest, BernsteinVaziraniCxPerSecretBit)
{
    const Circuit c = bernsteinVazirani(6, 0b101101);
    EXPECT_EQ(c.numQubits(), 7);
    EXPECT_EQ(c.numTwoQubitGates(), 4); // popcount(0b101101)
}

TEST(GeneratorsTest, RippleCarryAdderUsesOnlySmallGates)
{
    const Circuit c = rippleCarryAdder(3);
    EXPECT_EQ(c.numQubits(), 8);
    for (const Gate &g : c.gates())
        EXPECT_LE(g.numQubits(), 2);
    EXPECT_GT(c.numTwoQubitGates(), 10);
}

TEST(QuekoTest, OptimalDepthByConstruction)
{
    const auto g = arch::ibmQ20Tokyo();
    const auto bench =
        quekoCircuit(g.numQubits(), g.edges(), 15, 0.4, 0.2, 77);
    EXPECT_EQ(bench.optimalDepth, 15);

    // (a) The dependency critical path equals the target depth
    //     under unit latencies.
    const LatencyModel unit(1, 1, 1);
    EXPECT_EQ(idealCycles(bench.circuit, unit), 15);

    // (b) The hidden layout executes the circuit with zero swaps:
    //     every 2q gate is coupled under it.
    for (const Gate &gate : bench.circuit.gates()) {
        if (gate.numQubits() != 2)
            continue;
        const int p0 = bench.hiddenLayout[static_cast<size_t>(
            gate.qubit(0))];
        const int p1 = bench.hiddenLayout[static_cast<size_t>(
            gate.qubit(1))];
        EXPECT_TRUE(g.adjacent(p0, p1));
    }
}

TEST(QuekoTest, Deterministic)
{
    const auto g = arch::aspen4();
    const auto a =
        quekoCircuit(g.numQubits(), g.edges(), 10, 0.3, 0.1, 5);
    const auto b =
        quekoCircuit(g.numQubits(), g.edges(), 10, 0.3, 0.1, 5);
    EXPECT_EQ(a.circuit, b.circuit);
    EXPECT_EQ(a.hiddenLayout, b.hiddenLayout);
}

TEST(QuekoTest, DepthSweep)
{
    const auto g = arch::grid(2, 4);
    const LatencyModel unit(1, 1, 1);
    for (int depth : {1, 5, 10, 25}) {
        const auto bench =
            quekoCircuit(g.numQubits(), g.edges(), depth, 0.5, 0.2,
                         static_cast<std::uint64_t>(depth));
        EXPECT_EQ(idealCycles(bench.circuit, unit), depth);
    }
}

} // namespace
} // namespace toqm::ir
