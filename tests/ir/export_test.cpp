#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "ir/export.hpp"
#include "ir/generators.hpp"

namespace toqm::ir {
namespace {

TEST(ExportTest, DotContainsAllNodesAndEdges)
{
    const auto g = arch::grid(2, 2);
    const std::string dot = toDot(g);
    EXPECT_NE(dot.find("graph \"grid2by2\""), std::string::npos);
    for (int p = 0; p < 4; ++p) {
        EXPECT_NE(dot.find("Q" + std::to_string(p) + " [label"),
                  std::string::npos);
    }
    EXPECT_NE(dot.find("Q0 -- Q1;"), std::string::npos);
    EXPECT_NE(dot.find("Q0 -- Q2;"), std::string::npos);
}

TEST(ExportTest, DotAnnotatesLayout)
{
    const auto g = arch::lnn(3);
    const std::string dot = toDot(g, {2, 0});
    EXPECT_NE(dot.find("Q2\\nq0"), std::string::npos);
    EXPECT_NE(dot.find("Q0\\nq1"), std::string::npos);
}

TEST(ExportTest, ScheduleJsonHasStartAndDuration)
{
    Circuit c(2);
    c.addH(0);
    c.addCX(0, 1);
    const std::string json =
        scheduleToJson(c, LatencyModel::ibmPreset());
    EXPECT_NE(json.find("\"makespan\": 3"), std::string::npos);
    EXPECT_NE(json.find("{\"name\": \"h\", \"qubits\": [0], "
                        "\"start\": 1, \"duration\": 1}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"name\": \"cx\", \"qubits\": [0, 1], "
                        "\"start\": 2, \"duration\": 2}"),
              std::string::npos);
}

TEST(ExportTest, MappingJsonHasLayouts)
{
    Circuit phys(3);
    phys.addSwap(0, 1);
    MappedCircuit mapped(std::move(phys), {0, 1}, {1, 0});
    const std::string json =
        mappingToJson(mapped, LatencyModel::ibmPreset());
    EXPECT_NE(json.find("\"initialLayout\": [0, 1]"),
              std::string::npos);
    EXPECT_NE(json.find("\"finalLayout\": [1, 0]"),
              std::string::npos);
    EXPECT_NE(json.find("\"swaps\": 1"), std::string::npos);
}

TEST(ExportTest, JsonIsWellFormedBraces)
{
    const std::string json = scheduleToJson(
        randomCircuit(4, 30, 0.5, 7), LatencyModel::ibmPreset());
    int depth = 0;
    for (char ch : json) {
        depth += ch == '{' || ch == '[';
        depth -= ch == '}' || ch == ']';
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

} // namespace
} // namespace toqm::ir
