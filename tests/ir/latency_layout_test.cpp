#include <gtest/gtest.h>

#include "ir/latency.hpp"
#include "ir/mapped_circuit.hpp"

namespace toqm::ir {
namespace {

TEST(LatencyTest, Presets)
{
    const LatencyModel ibm = LatencyModel::ibmPreset();
    EXPECT_EQ(ibm.latency(Gate(GateKind::H, 0)), 1);
    EXPECT_EQ(ibm.latency(Gate(GateKind::CX, 0, 1)), 2);
    EXPECT_EQ(ibm.latency(Gate(GateKind::Swap, 0, 1)), 6);

    const LatencyModel olsq = LatencyModel::olsqPreset();
    EXPECT_EQ(olsq.latency(Gate(GateKind::CX, 0, 1)), 1);
    EXPECT_EQ(olsq.latency(Gate(GateKind::Swap, 0, 1)), 3);

    const LatencyModel qft = LatencyModel::qftPreset();
    EXPECT_EQ(qft.latency(Gate(GateKind::GT, 0, 1)), 1);
    EXPECT_EQ(qft.latency(Gate(GateKind::Swap, 0, 1)), 1);
}

TEST(LatencyTest, BarrierIsFree)
{
    const LatencyModel lat = LatencyModel::ibmPreset();
    EXPECT_EQ(lat.latency(Gate("barrier", {0, 1})), 0);
}

TEST(LatencyTest, KindOverride)
{
    LatencyModel lat = LatencyModel::ibmPreset();
    lat.setKindLatency(GateKind::CZ, 4);
    EXPECT_EQ(lat.latency(Gate(GateKind::CZ, 0, 1)), 4);
    EXPECT_EQ(lat.latency(Gate(GateKind::CX, 0, 1)), 2);
}

TEST(LatencyTest, RejectsNonPositiveLatency)
{
    EXPECT_THROW(LatencyModel(0, 1, 1), std::invalid_argument);
    LatencyModel lat = LatencyModel::ibmPreset();
    EXPECT_THROW(lat.setKindLatency(GateKind::H, 0),
                 std::invalid_argument);
}

TEST(LayoutTest, IdentityLayout)
{
    const auto layout = identityLayout(4);
    EXPECT_EQ(layout, (std::vector<int>{0, 1, 2, 3}));
}

TEST(LayoutTest, InvertLayoutWithSpareQubits)
{
    const std::vector<int> layout{3, 0}; // 2 logical on 4 physical
    const auto inv = invertLayout(layout, 4);
    EXPECT_EQ(inv, (std::vector<int>{1, -1, -1, 0}));
}

TEST(LayoutTest, InvertLayoutRejectsCollision)
{
    EXPECT_THROW(invertLayout({1, 1}, 3), std::invalid_argument);
    EXPECT_THROW(invertLayout({5}, 3), std::invalid_argument);
}

TEST(LayoutTest, IsInjectiveLayout)
{
    EXPECT_TRUE(isInjectiveLayout({2, 0}, 3));
    EXPECT_FALSE(isInjectiveLayout({2, 2}, 3));
    EXPECT_FALSE(isInjectiveLayout({3}, 3));
}

TEST(LayoutTest, PropagateLayoutThroughSwaps)
{
    Circuit phys(3);
    phys.addSwap(0, 1);
    phys.addSwap(1, 2);
    // Logical 0 starts at physical 0: swap(0,1) moves it to 1,
    // swap(1,2) moves it to 2.
    const auto final_layout = propagateLayout(phys, {0, 1});
    EXPECT_EQ(final_layout[0], 2);
    EXPECT_EQ(final_layout[1], 0);
}

TEST(LayoutTest, PropagateLayoutIgnoresNonSwaps)
{
    Circuit phys(2);
    phys.addCX(0, 1);
    const auto final_layout = propagateLayout(phys, {0, 1});
    EXPECT_EQ(final_layout, (std::vector<int>{0, 1}));
}

} // namespace
} // namespace toqm::ir
