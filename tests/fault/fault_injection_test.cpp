/**
 * @file
 * End-to-end hook coverage: faults injected through the REAL
 * TOQM_FAULT_POINT call sites must be contained at the documented
 * boundaries — a poisoned pool worker keeps serving, a faulted
 * portfolio entry loses the race instead of killing it, a NodePool
 * allocation fault leaves the pool consistent.
 *
 * Compiled only when the tree is configured with
 * -DTOQM_ENABLE_FAULT_INJECTION=ON (the fault-sweep CI job); in a
 * default build the hooks are `((void)0)` and there is nothing to
 * exercise.
 */

#include "fault/fault.hpp"

#if TOQM_ENABLE_FAULT_INJECTION

#include <atomic>
#include <cstddef>
#include <functional>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "ir/circuit.hpp"
#include "ir/generators.hpp"
#include "ir/mapped_circuit.hpp"
#include "parallel/batch.hpp"
#include "parallel/portfolio.hpp"
#include "parallel/thread_pool.hpp"
#include "search/node_pool.hpp"
#include "search/search_context.hpp"

namespace {

using namespace toqm;

/** Arm `spec` for the test body, disarm on scope exit (so a failing
 *  assertion cannot leak an armed plan into later tests). */
struct ScopedPlan
{
    explicit ScopedPlan(const std::string &spec)
    {
        fault::Injector::global().arm(fault::FaultPlan::parse(spec));
    }

    ~ScopedPlan() { fault::Injector::global().disarm(); }
};

TEST(FaultInjectionTest, NodePoolAllocationFaultLeavesPoolConsistent)
{
    ScopedPlan plan("pool_alloc@3:bad_alloc");
    ir::Circuit circuit(3);
    circuit.addCX(0, 1);
    const arch::CouplingGraph graph = arch::lnn(3);
    const ir::LatencyModel latency = ir::LatencyModel::qftPreset();
    const search::SearchContext ctx(circuit, graph, latency);
    search::NodePool pool(ctx);
    const search::NodeRef a =
        pool.root(ir::identityLayout(3), false);
    const search::NodeRef b =
        pool.root(ir::identityLayout(3), false);
    EXPECT_THROW(pool.root(ir::identityLayout(3), false),
                 std::bad_alloc);
    // The fault fired BEFORE any bookkeeping moved: the pool still
    // hands out nodes and its counters add up.
    fault::Injector::global().disarm();
    const search::NodeRef c =
        pool.root(ir::identityLayout(3), false);
    EXPECT_TRUE(c);
    EXPECT_EQ(pool.liveNodes(), 3u);
}

TEST(FaultInjectionTest, WorkerFaultIsContainedAndPoolKeepsServing)
{
    ScopedPlan plan("worker_start@1:error");
    parallel::ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait(); // must not deadlock on the faulted task
    // Exactly one task was killed by the injected fault (its hook
    // runs before the task body), and the pool counted it.
    EXPECT_EQ(ran.load(), 7);
    EXPECT_EQ(pool.taskExceptions(), 1u);
    // The worker that took the fault is still alive and serving.
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 8);
}

TEST(FaultInjectionTest, BatchJobLostToWorkerFaultIsResubmitted)
{
    // A worker dying at the task boundary kills the job WRAPPER
    // before the job body runs.  runBatch must notice the never-ran
    // job and resubmit it — a silent exit-0 with empty output would
    // be a dropped circuit.
    ScopedPlan plan("worker_start@1:error");
    parallel::ThreadPool pool(2);
    std::vector<std::function<int()>> jobs;
    std::atomic<int> runs{0};
    for (int i = 0; i < 4; ++i)
        jobs.push_back([i, &runs] {
            runs.fetch_add(1);
            return i;
        });
    const std::vector<int> codes = parallel::runBatch(pool, jobs);
    ASSERT_EQ(codes.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(codes[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(runs.load(), 4);
    EXPECT_EQ(pool.taskExceptions(), 1u);
}

TEST(FaultInjectionTest, FaultedPortfolioEntryLosesRaceNotBatch)
{
    ScopedPlan plan("portfolio_launch@1:error");
    const auto device = arch::byName("ibmqx2");
    parallel::PortfolioConfig cfg = parallel::defaultPortfolio();
    const parallel::PortfolioResult res =
        parallel::PortfolioMapper(device, cfg)
            .map(ir::qftSkeleton(4));
    // The race delivered despite the dead entry...
    EXPECT_TRUE(res.success);
    ASSERT_GE(res.winner, 0);
    // ...and exactly one outcome carries the contained fault.
    int faulted = 0;
    for (const parallel::EntryOutcome &o : res.outcomes) {
        if (!o.error.empty()) {
            ++faulted;
            EXPECT_FALSE(o.success);
            EXPECT_NE(o.error.find("portfolio_launch"),
                      std::string::npos);
        }
    }
    EXPECT_EQ(faulted, 1);
    EXPECT_TRUE(res.outcomes[static_cast<std::size_t>(res.winner)]
                    .error.empty());
}

TEST(FaultInjectionTest, DisarmedHooksAreInert)
{
    // No plan armed: the real call sites must neither throw nor
    // advance the hit counters (the fast path is one relaxed load).
    const std::uint64_t hits_before =
        fault::Injector::global().hits(fault::Site::PoolAlloc);
    ir::Circuit circuit(3);
    circuit.addCX(0, 1);
    const arch::CouplingGraph graph = arch::lnn(3);
    const ir::LatencyModel latency = ir::LatencyModel::qftPreset();
    const search::SearchContext ctx(circuit, graph, latency);
    search::NodePool pool(ctx);
    for (int i = 0; i < 100; ++i) {
        const search::NodeRef n =
            pool.root(ir::identityLayout(3), false);
        EXPECT_TRUE(n);
    }
    EXPECT_EQ(fault::Injector::global().hits(fault::Site::PoolAlloc),
              hits_before);
}

} // namespace

#endif // TOQM_ENABLE_FAULT_INJECTION
