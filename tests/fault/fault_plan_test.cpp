/**
 * @file
 * FaultPlan grammar + Injector semantics.  These tests run in EVERY
 * build: the plan parser and the injector object are plain library
 * code; only the TOQM_FAULT_POINT hooks depend on the
 * TOQM_ENABLE_FAULT_INJECTION configuration (covered by
 * fault_injection_test.cpp).
 */

#include <algorithm>
#include <cstdint>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.hpp"

namespace {

using namespace toqm;

TEST(FaultPlanTest, ParsesDeterministicEntry)
{
    const fault::FaultPlan plan =
        fault::FaultPlan::parse("pool_alloc@3:bad_alloc");
    ASSERT_EQ(plan.specs().size(), 1u);
    const fault::FaultSpec &fs = plan.specs()[0];
    EXPECT_EQ(fs.site, fault::Site::PoolAlloc);
    EXPECT_EQ(fs.action, fault::Action::BadAlloc);
    EXPECT_EQ(fs.nthHit, 3u);
}

TEST(FaultPlanTest, ParsesProbabilisticEntry)
{
    const fault::FaultPlan plan =
        fault::FaultPlan::parse("qasm_io@p0.25/42:io_error");
    ASSERT_EQ(plan.specs().size(), 1u);
    const fault::FaultSpec &fs = plan.specs()[0];
    EXPECT_EQ(fs.site, fault::Site::QasmIo);
    EXPECT_EQ(fs.action, fault::Action::IoError);
    EXPECT_EQ(fs.nthHit, 0u);
    EXPECT_DOUBLE_EQ(fs.probability, 0.25);
    EXPECT_EQ(fs.seed, 42u);
}

TEST(FaultPlanTest, ParsesMultipleEntries)
{
    const fault::FaultPlan plan = fault::FaultPlan::parse(
        "worker_start@1:error,incumbent_publish@2:io_error");
    ASSERT_EQ(plan.specs().size(), 2u);
    EXPECT_EQ(plan.specs()[0].site, fault::Site::WorkerStart);
    EXPECT_EQ(plan.specs()[1].site, fault::Site::IncumbentPublish);
}

TEST(FaultPlanTest, RejectsMalformedSpecsWithPositions)
{
    EXPECT_THROW(fault::FaultPlan::parse(""), fault::FaultPlanError);
    EXPECT_THROW(fault::FaultPlan::parse("pool_alloc"),
                 fault::FaultPlanError);
    EXPECT_THROW(fault::FaultPlan::parse("pool_alloc@1"),
                 fault::FaultPlanError);
    EXPECT_THROW(fault::FaultPlan::parse("nope@1:error"),
                 fault::FaultPlanError);
    EXPECT_THROW(fault::FaultPlan::parse("pool_alloc@1:nope"),
                 fault::FaultPlanError);
    EXPECT_THROW(fault::FaultPlan::parse("pool_alloc@0:error"),
                 fault::FaultPlanError);
    EXPECT_THROW(fault::FaultPlan::parse("pool_alloc@p2/1:error"),
                 fault::FaultPlanError);
    EXPECT_THROW(fault::FaultPlan::parse("pool_alloc@p0.5:error"),
                 fault::FaultPlanError);
    EXPECT_THROW(fault::FaultPlan::parse("pool_alloc@1:error,"),
                 fault::FaultPlanError);

    // The error is positioned at the offending entry, not offset 0.
    try {
        fault::FaultPlan::parse("pool_alloc@1:error,nope@1:error");
        FAIL() << "expected FaultPlanError";
    } catch (const fault::FaultPlanError &e) {
        EXPECT_EQ(e.offset(), 19u);
    }
}

TEST(FaultPlanTest, SiteRegistryRoundTrips)
{
    const std::vector<std::string> &sites = fault::knownSites();
    ASSERT_EQ(sites.size(),
              static_cast<std::size_t>(fault::kNumSites));
    for (const std::string &name : sites) {
        fault::Site site;
        ASSERT_TRUE(fault::siteFromString(name, site)) << name;
        EXPECT_EQ(fault::siteName(site), name);
    }
    fault::Site site;
    EXPECT_FALSE(fault::siteFromString("bogus", site));
}

TEST(FaultInjectorTest, FiresOnExactNthHitThenNeverAgain)
{
    fault::Injector &inj = fault::Injector::global();
    inj.arm(fault::FaultPlan::parse("guard_poll@3:error"));
    EXPECT_NO_THROW(inj.maybeInject(fault::Site::GuardPoll));
    EXPECT_NO_THROW(inj.maybeInject(fault::Site::GuardPoll));
    EXPECT_THROW(inj.maybeInject(fault::Site::GuardPoll),
                 fault::InjectedFault);
    EXPECT_NO_THROW(inj.maybeInject(fault::Site::GuardPoll));
    EXPECT_EQ(inj.hits(fault::Site::GuardPoll), 4u);
    // Other sites are untouched.
    EXPECT_NO_THROW(inj.maybeInject(fault::Site::QasmIo));
    inj.disarm();
    EXPECT_FALSE(inj.armed());
}

TEST(FaultInjectorTest, ActionsMapToDocumentedExceptionClasses)
{
    fault::Injector &inj = fault::Injector::global();

    inj.arm(fault::FaultPlan::parse("pool_alloc@1:bad_alloc"));
    EXPECT_THROW(inj.maybeInject(fault::Site::PoolAlloc),
                 std::bad_alloc);

    inj.arm(fault::FaultPlan::parse("qasm_io@1:io_error"));
    try {
        inj.maybeInject(fault::Site::QasmIo);
        FAIL() << "expected InjectedFault";
    } catch (const fault::InjectedFault &e) {
        EXPECT_TRUE(e.transient());
        EXPECT_EQ(e.site(), fault::Site::QasmIo);
    }

    inj.arm(fault::FaultPlan::parse("manifest_io@1:error"));
    try {
        inj.maybeInject(fault::Site::ManifestIo);
        FAIL() << "expected InjectedFault";
    } catch (const fault::InjectedFault &e) {
        EXPECT_FALSE(e.transient());
    }
    inj.disarm();
}

TEST(FaultInjectorTest, ProbabilisticStreamIsSeedDeterministic)
{
    fault::Injector &inj = fault::Injector::global();
    const auto firingPattern = [&](std::uint64_t seed) {
        inj.arm(fault::FaultPlan::parse(
            "guard_poll@p0.3/" + std::to_string(seed) + ":error"));
        std::vector<bool> fired;
        for (int i = 0; i < 64; ++i) {
            try {
                inj.maybeInject(fault::Site::GuardPoll);
                fired.push_back(false);
            } catch (const fault::InjectedFault &) {
                fired.push_back(true);
            }
        }
        return fired;
    };
    const std::vector<bool> a = firingPattern(7);
    const std::vector<bool> b = firingPattern(7);
    EXPECT_EQ(a, b); // re-arming with the same seed reproduces
    // ... and it fires SOMETIMES, not always / never.
    EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
    EXPECT_NE(std::count(a.begin(), a.end(), true), 64);
    inj.disarm();
}

} // namespace
