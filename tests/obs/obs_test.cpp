/**
 * Unit tests for the toqm_obs building blocks: the metrics registry,
 * the ring-buffered event sink, heartbeat throttling, the minimal
 * JSON parser, the v2 stats line, and the search probe's sampling
 * cadence.  The full pipeline trace is covered separately in
 * trace_pipeline_test.cpp.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event_sink.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/progress.hpp"
#include "obs/search_probe.hpp"
#include "search/search_stats.hpp"

namespace toqm {
namespace {

/** Restores the global observer to its disabled state on scope exit,
 *  so obs tests cannot leak configuration into other tests. */
struct ObserverResetGuard
{
    ObserverResetGuard() { obs::Observer::global().reset(); }

    ~ObserverResetGuard() { obs::Observer::global().reset(); }
};

// ---------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, CountersAreExact)
{
    obs::MetricsRegistry m;
    EXPECT_EQ(m.counter("search.expanded"), 0u);

    m.increment("search.expanded");
    m.increment("search.expanded");
    m.add("search.expanded", 40);
    m.add("qasm.gates", 17);

    EXPECT_EQ(m.counter("search.expanded"), 42u);
    EXPECT_EQ(m.counter("qasm.gates"), 17u);
    EXPECT_EQ(m.counter("never.touched"), 0u);
}

TEST(MetricsRegistryTest, GaugesKeepTheLatestValue)
{
    obs::MetricsRegistry m;
    EXPECT_EQ(m.gauge("search.seconds"), 0.0);
    m.setGauge("search.seconds", 1.5);
    m.setGauge("search.seconds", 0.25);
    EXPECT_EQ(m.gauge("search.seconds"), 0.25);
}

TEST(MetricsRegistryTest, SnapshotIsVersionedSortedAndParseable)
{
    obs::MetricsRegistry m;
    m.add("b.counter", 2);
    m.add("a.counter", 1);
    m.setGauge("z.gauge", 3.5);

    const std::string snap = m.snapshotJson();
    // Sorted keys make identical runs byte-identical.
    EXPECT_LT(snap.find("a.counter"), snap.find("b.counter"));

    const auto root = obs::json::parse(snap);
    EXPECT_EQ(root->get("schemaVersion")->asNumber(),
              obs::MetricsRegistry::kSchemaVersion);
    EXPECT_EQ(root->get("generator")->asString(), "toqm_obs");
    EXPECT_EQ(root->get("counters")->get("a.counter")->asNumber(), 1.0);
    EXPECT_EQ(root->get("counters")->get("b.counter")->asNumber(), 2.0);
    EXPECT_EQ(root->get("gauges")->get("z.gauge")->asNumber(), 3.5);
}

TEST(MetricsRegistryTest, ClearEmptiesEverything)
{
    obs::MetricsRegistry m;
    m.increment("x");
    m.setGauge("y", 1.0);
    EXPECT_FALSE(m.empty());
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.counter("x"), 0u);
}

// ---------------------------------------------------------------
// EventSink

obs::TraceEvent
instantAt(std::uint64_t ts)
{
    return {obs::TraceEvent::Kind::Instant, "ev", ts, 0.0};
}

TEST(EventSinkTest, HoldsEventsUpToCapacity)
{
    obs::EventSink sink(4);
    EXPECT_EQ(sink.capacity(), 4u);
    for (std::uint64_t i = 0; i < 3; ++i)
        sink.record(instantAt(i));
    EXPECT_EQ(sink.size(), 3u);
    EXPECT_EQ(sink.dropped(), 0u);

    std::vector<std::uint64_t> seen;
    sink.forEach(
        [&](const obs::TraceEvent &e) { seen.push_back(e.ts); });
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(EventSinkTest, WrapOverwritesOldestAndCountsDrops)
{
    obs::EventSink sink(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        sink.record(instantAt(i));

    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);
    EXPECT_EQ(sink.totalRecorded(), 10u);

    // The ring keeps the most recent window, oldest -> newest.
    std::vector<std::uint64_t> seen;
    sink.forEach(
        [&](const obs::TraceEvent &e) { seen.push_back(e.ts); });
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST(EventSinkTest, ClearForgetsHistory)
{
    obs::EventSink sink(2);
    sink.record(instantAt(1));
    sink.record(instantAt(2));
    sink.record(instantAt(3));
    sink.clear();
    EXPECT_EQ(sink.size(), 0u);
    EXPECT_EQ(sink.dropped(), 0u);
    std::size_t visits = 0;
    sink.forEach([&](const obs::TraceEvent &) { ++visits; });
    EXPECT_EQ(visits, 0u);
}

// ---------------------------------------------------------------
// Heartbeat throttling (pure timestamp logic, synthetic clock)

TEST(HeartbeatTest, DefaultConstructedIsDisabled)
{
    obs::Heartbeat hb;
    EXPECT_FALSE(hb.enabled());
    EXPECT_FALSE(hb.due(0));
    EXPECT_FALSE(hb.due(1'000'000'000));
}

TEST(HeartbeatTest, FirstBeatComesOneIntervalAfterStart)
{
    obs::Heartbeat hb(2.0, nullptr); // 2s interval
    EXPECT_TRUE(hb.enabled());
    EXPECT_EQ(hb.intervalMicros(), 2'000'000u);

    EXPECT_FALSE(hb.due(0));
    EXPECT_FALSE(hb.due(1'999'999));
    EXPECT_TRUE(hb.due(2'000'000));
}

TEST(HeartbeatTest, ThrottlesToAtMostOnePerInterval)
{
    obs::Heartbeat hb(1.0, nullptr);
    int beats = 0;
    // Poll every 100ms of synthetic time for 10 seconds.
    for (std::uint64_t now = 0; now <= 10'000'000; now += 100'000)
        beats += hb.due(now);
    EXPECT_EQ(beats, 10);
}

TEST(HeartbeatTest, ReArmsRelativeToTheBeatJustPrinted)
{
    obs::Heartbeat hb(1.0, nullptr);
    // A long stall: the next beat is one interval after the late
    // poll, not a burst of make-up beats.
    EXPECT_TRUE(hb.due(5'000'000));
    EXPECT_FALSE(hb.due(5'500'000));
    EXPECT_FALSE(hb.due(5'999'999));
    EXPECT_TRUE(hb.due(6'000'000));
}

TEST(HeartbeatTest, EmitCountsBeats)
{
    obs::Heartbeat hb(1.0, nullptr);
    EXPECT_EQ(hb.beats(), 0u);
    // nullptr stream: emit is a no-op and must not count or crash.
    hb.emit("expanded=%d", 1);
    EXPECT_EQ(hb.beats(), 0u);
}

// ---------------------------------------------------------------
// Minimal JSON parser

TEST(ObsJsonTest, ParsesScalarsAndStructures)
{
    const auto root = obs::json::parse(
        R"({"a":1,"b":-2.5e2,"c":"x\"y\\z","d":[true,false,null],)"
        R"("e":{"nested":[1,2,3]}})");
    EXPECT_EQ(root->get("a")->asNumber(), 1.0);
    EXPECT_EQ(root->get("b")->asNumber(), -250.0);
    EXPECT_EQ(root->get("c")->asString(), "x\"y\\z");
    const auto &d = root->get("d")->asArray();
    ASSERT_EQ(d.size(), 3u);
    EXPECT_TRUE(d[0]->asBool());
    EXPECT_FALSE(d[1]->asBool());
    EXPECT_TRUE(d[2]->isNull());
    EXPECT_EQ(root->get("e")->get("nested")->asArray().size(), 3u);
}

TEST(ObsJsonTest, HasAndGetOnObjects)
{
    const auto root = obs::json::parse(R"({"k":1})");
    EXPECT_TRUE(root->has("k"));
    EXPECT_FALSE(root->has("missing"));
    EXPECT_EQ(root->get("missing"), nullptr);
    // get() on a non-object is nullptr, not a throw.
    EXPECT_EQ(root->get("k")->get("deeper"), nullptr);
}

TEST(ObsJsonTest, RejectsMalformedDocuments)
{
    EXPECT_THROW(obs::json::parse(""), std::runtime_error);
    EXPECT_THROW(obs::json::parse("{"), std::runtime_error);
    EXPECT_THROW(obs::json::parse("{\"a\":}"), std::runtime_error);
    EXPECT_THROW(obs::json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(obs::json::parse("tru"), std::runtime_error);
    // Trailing garbage after a valid document is an error.
    EXPECT_THROW(obs::json::parse("{} x"), std::runtime_error);
}

TEST(ObsJsonTest, TypedAccessorsThrowOnMismatch)
{
    const auto root = obs::json::parse(R"({"n":1})");
    EXPECT_THROW(root->asArray(), std::runtime_error);
    EXPECT_THROW(root->get("n")->asString(), std::runtime_error);
}

// ---------------------------------------------------------------
// Stats line schema v2

search::SearchStats
someStats()
{
    search::SearchStats s;
    s.expanded = 100;
    s.generated = 250;
    s.filtered = 30;
    s.trims = 2;
    s.rounds = 1;
    s.maxQueueSize = 64;
    s.peakPoolBytes = 4096;
    s.peakLiveNodes = 50;
    s.seconds = 0.125;
    return s;
}

TEST(StatsJsonLineTest, V1KeysSurviveWithExactValues)
{
    search::StatsLineContext ctx;
    ctx.arch = "tokyo";
    ctx.lat1 = 1;
    ctx.lat2 = 2;
    ctx.latSwap = 6;
    ctx.provenOptimal = true;
    const std::string line =
        search::statsJsonLine(someStats(), "optimal",
                              search::SearchStatus::Solved, 17, 3, ctx);
    ASSERT_EQ(line.back(), '\n');
    const auto root = obs::json::parse(line.substr(0, line.size() - 1));

    // Every v1 key a scraper may be keyed on, with exact values.
    EXPECT_EQ(root->get("mapper")->asString(), "optimal");
    EXPECT_EQ(root->get("status")->asString(), "solved");
    EXPECT_EQ(root->get("cycles")->asNumber(), 17.0);
    EXPECT_EQ(root->get("swaps")->asNumber(), 3.0);
    EXPECT_EQ(root->get("expanded")->asNumber(), 100.0);
    EXPECT_EQ(root->get("generated")->asNumber(), 250.0);
    EXPECT_EQ(root->get("filtered")->asNumber(), 30.0);
    EXPECT_EQ(root->get("trims")->asNumber(), 2.0);
    EXPECT_EQ(root->get("rounds")->asNumber(), 1.0);
    EXPECT_EQ(root->get("max_queue")->asNumber(), 64.0);
    EXPECT_EQ(root->get("peak_pool_bytes")->asNumber(), 4096.0);
    EXPECT_EQ(root->get("peak_live_nodes")->asNumber(), 50.0);
    EXPECT_EQ(root->get("seconds")->asNumber(), 0.125);
}

TEST(StatsJsonLineTest, V2AddsVersionArchLatencyAndDetail)
{
    search::StatsLineContext ctx;
    ctx.arch = "ibmqx2";
    ctx.lat1 = 1;
    ctx.lat2 = 2;
    ctx.latSwap = 6;
    ctx.provenOptimal = true;
    const std::string line =
        search::statsJsonLine(someStats(), "optimal",
                              search::SearchStatus::Solved, 17, 3, ctx);
    const auto root = obs::json::parse(line.substr(0, line.size() - 1));

    EXPECT_EQ(root->get("schemaVersion")->asNumber(),
              search::kStatsLineSchemaVersion);
    EXPECT_EQ(root->get("arch")->asString(), "ibmqx2");
    EXPECT_EQ(root->get("latency")->get("l1")->asNumber(), 1.0);
    EXPECT_EQ(root->get("latency")->get("l2")->asNumber(), 2.0);
    EXPECT_EQ(root->get("latency")->get("swap")->asNumber(), 6.0);
    EXPECT_TRUE(root->get("detail")->get("proven_optimal")->asBool());
}

TEST(StatsJsonLineTest, DetailMatchesTheStatus)
{
    search::StatsLineContext ctx;
    ctx.nodeBudget = 5000;

    const std::string budget = search::statsJsonLine(
        someStats(), "optimal", search::SearchStatus::BudgetExhausted,
        -1, -1, ctx);
    auto root = obs::json::parse(budget.substr(0, budget.size() - 1));
    EXPECT_EQ(root->get("detail")->get("node_budget")->asNumber(),
              5000.0);

    const std::string infeasible = search::statsJsonLine(
        someStats(), "optimal", search::SearchStatus::Infeasible, -1,
        -1, ctx);
    root = obs::json::parse(
        infeasible.substr(0, infeasible.size() - 1));
    EXPECT_EQ(root->get("detail")->get("reason")->asString(),
              "search-space-exhausted");
}

TEST(StatsJsonLineTest, BackCompatOverloadStillParses)
{
    const std::string line = search::statsJsonLine(
        someStats(), "heuristic", search::SearchStatus::Solved, 9, 2);
    const auto root = obs::json::parse(line.substr(0, line.size() - 1));
    EXPECT_EQ(root->get("mapper")->asString(), "heuristic");
    EXPECT_EQ(root->get("arch")->asString(), "");
    EXPECT_FALSE(
        root->get("detail")->get("proven_optimal")->asBool());
}

// ---------------------------------------------------------------
// SearchProbe cadence

TEST(SearchProbeTest, InertWithoutAnObserverFacility)
{
    const ObserverResetGuard guard;
    obs::SearchProbe probe("test");
    EXPECT_FALSE(probe.active());
    // No facility enabled: the hot path must be a no-op.
    probe.onExpansion(1, 0.0, 1, 1, 64);
    probe.finishRun(1, 1, 0, 1, 64, 0.0);
    EXPECT_EQ(obs::Observer::global().sink().totalRecorded(), 0u);
    EXPECT_TRUE(obs::Observer::global().metrics().empty());
}

TEST(SearchProbeTest, SamplesFirstExpansionThenEveryInterval)
{
    const ObserverResetGuard guard;
    obs::Observer &o = obs::Observer::global();
    o.enableTrace(1024);
    o.setSampleInterval(4);

    obs::SearchProbe probe("test");
    ASSERT_TRUE(probe.active());
    for (std::uint64_t i = 1; i <= 10; ++i)
        probe.onExpansion(i, 1.0, 2, 3, 64);

    // Samples land on expansions 1, 5 and 9.
    std::vector<double> expanded_samples;
    o.sink().forEach([&](const obs::TraceEvent &e) {
        if (e.kind == obs::TraceEvent::Kind::Gauge &&
            std::string(e.name) == "search.expanded") {
            expanded_samples.push_back(e.value);
        }
    });
    EXPECT_EQ(expanded_samples, (std::vector<double>{1, 5, 9}));
}

TEST(SearchProbeTest, FinishRunFlushesMapperScopedMetrics)
{
    const ObserverResetGuard guard;
    obs::Observer &o = obs::Observer::global();
    o.enableMetrics();

    obs::SearchProbe probe("test");
    ASSERT_TRUE(probe.active());
    probe.finishRun(/*expanded=*/100, /*generated=*/250,
                    /*filtered=*/30, /*max_queue=*/64,
                    /*peak_pool_bytes=*/4096, /*seconds=*/0.5);

    const obs::MetricsRegistry &m = o.metrics();
    EXPECT_EQ(m.counter("search.test.runs"), 1u);
    EXPECT_EQ(m.counter("search.test.expanded"), 100u);
    EXPECT_EQ(m.counter("search.test.generated"), 250u);
    EXPECT_EQ(m.counter("search.test.filtered"), 30u);
    EXPECT_EQ(m.gauge("search.test.max_queue"), 64.0);
    EXPECT_EQ(m.gauge("search.test.peak_pool_bytes"), 4096.0);
    EXPECT_EQ(m.gauge("search.test.seconds"), 0.5);
}

TEST(ObserverTest, PhaseScopeFeedsTraceAndMetrics)
{
    const ObserverResetGuard guard;
    obs::Observer &o = obs::Observer::global();
    o.enableTrace(64);
    o.enableMetrics();

    {
        const obs::PhaseScope scope("unit");
    }

    int begins = 0;
    int ends = 0;
    o.sink().forEach([&](const obs::TraceEvent &e) {
        begins += e.kind == obs::TraceEvent::Kind::Begin;
        ends += e.kind == obs::TraceEvent::Kind::End;
    });
    EXPECT_EQ(begins, 1);
    EXPECT_EQ(ends, 1);
    EXPECT_EQ(o.metrics().counter("phase.unit.count"), 1u);
}

TEST(ObserverTest, TraceJsonIsValidChromeTraceShape)
{
    const ObserverResetGuard guard;
    obs::Observer &o = obs::Observer::global();
    o.enableTrace(64);

    o.beginSpan("p", o.now());
    o.gauge("g", 1.5, o.now());
    o.instant("mark");
    o.endSpan("p", 0);

    const auto root = obs::json::parse(o.traceJson());
    EXPECT_EQ(root->get("displayTimeUnit")->asString(), "ms");
    EXPECT_EQ(root->get("otherData")->get("generator")->asString(),
              "toqm_obs");
    EXPECT_EQ(
        root->get("otherData")->get("droppedEvents")->asNumber(), 0.0);

    const auto &events = root->get("traceEvents")->asArray();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0]->get("ph")->asString(), "B");
    EXPECT_EQ(events[1]->get("ph")->asString(), "C");
    EXPECT_EQ(events[1]->get("args")->get("value")->asNumber(), 1.5);
    EXPECT_EQ(events[2]->get("ph")->asString(), "i");
    EXPECT_EQ(events[3]->get("ph")->asString(), "E");
}

} // namespace
} // namespace toqm
