/**
 * End-to-end observability tests: run the real mapping pipeline
 * (parse -> schedule -> layout -> search -> verify) with tracing
 * enabled and validate the Chrome trace that comes out — and prove
 * that turning observability on does not change mapper results by a
 * single bit.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arch/architectures.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/latency.hpp"
#include "ir/schedule.hpp"
#include "obs/json.hpp"
#include "obs/observer.hpp"
#include "qasm/importer.hpp"
#include "sim/verifier.hpp"
#include "toqm/initial_layout.hpp"
#include "toqm/mapper.hpp"

namespace toqm {
namespace {

struct ObserverResetGuard
{
    ObserverResetGuard() { obs::Observer::global().reset(); }

    ~ObserverResetGuard() { obs::Observer::global().reset(); }
};

std::string
qft8Path()
{
    return std::string(TOQM_BENCHMARK_DIR) + "/qft8.qasm";
}

int
countSwaps(const ir::MappedCircuit &mapped)
{
    int swaps = 0;
    for (const ir::Gate &g : mapped.physical.gates())
        swaps += g.isSwap();
    return swaps;
}

/** One validated pass over a parsed Chrome trace document. */
struct TraceSummary
{
    /** Completed span names -> count. */
    std::map<std::string, int> spans;
    /** Gauge series name -> sample count. */
    std::map<std::string, int> gauges;
    std::size_t events = 0;
};

TraceSummary
validateTrace(const std::string &trace_json)
{
    const auto root = obs::json::parse(trace_json);
    EXPECT_EQ(root->get("displayTimeUnit")->asString(), "ms");
    EXPECT_TRUE(root->get("otherData")->has("droppedEvents"));

    TraceSummary summary;
    double last_ts = -1.0;
    std::vector<std::string> open;
    for (const auto &ev : root->get("traceEvents")->asArray()) {
        ++summary.events;
        const std::string name = ev->get("name")->asString();
        const std::string ph = ev->get("ph")->asString();
        const double ts = ev->get("ts")->asNumber();

        // Timestamps are recorded in order on one clock: they must
        // never go backwards.
        EXPECT_GE(ts, last_ts) << "at event " << name;
        last_ts = ts;

        if (ph == "B") {
            open.push_back(name);
        } else if (ph == "E") {
            // Spans close LIFO: RAII scopes nest properly.
            EXPECT_FALSE(open.empty()) << "stray E for " << name;
            if (!open.empty()) {
                EXPECT_EQ(open.back(), name);
                open.pop_back();
            }
            ++summary.spans[name];
        } else if (ph == "C") {
            EXPECT_TRUE(
                ev->get("args")->get("value")->isNumber());
            ++summary.gauges[name];
        }
    }
    EXPECT_TRUE(open.empty())
        << open.size() << " span(s) never closed";
    return summary;
}

TEST(TracePipelineTest, FullPipelineProducesACompleteTrace)
{
    const ObserverResetGuard guard;
    obs::Observer &o = obs::Observer::global();
    o.enableTrace();
    o.enableMetrics();
    o.setSampleInterval(8);

    // The whole pipeline, each stage instrumented: parse ->
    // schedule -> layout -> search -> verify.
    const auto imported = qasm::importFile(qft8Path());
    ASSERT_EQ(imported.circuit.numQubits(), 8);
    const auto ideal = ir::scheduleAsap(imported.circuit,
                                        ir::LatencyModel::ibmPreset());
    EXPECT_GT(ideal.makespan, 0);

    const auto graph = arch::ibmQ20Tokyo();
    const auto layout = core::greedyLayout(imported.circuit, graph);

    heuristic::HeuristicMapper mapper(graph);
    const auto res = mapper.map(imported.circuit, layout);
    ASSERT_TRUE(res.success);

    ASSERT_TRUE(
        sim::verifyMapping(imported.circuit, res.mapped, graph).ok);

    TraceSummary summary = validateTrace(o.traceJson());

    // Every pipeline phase appears as a balanced span.
    for (const char *phase :
         {"parse", "schedule", "layout", "search", "verify"}) {
        EXPECT_GE(summary.spans.count(phase), 1u)
            << "missing phase span: " << phase;
    }

    // The search probe contributed at least one sampled gauge
    // series (the first expansion always samples).
    EXPECT_GE(summary.gauges["search.expanded"], 1);
    EXPECT_GE(summary.gauges["search.frontier"], 1);
    EXPECT_GE(summary.gauges["search.best_f"], 1);

    // And the metrics registry saw the same run.
    EXPECT_EQ(o.metrics().counter("qasm.imports"), 1u);
    EXPECT_EQ(o.metrics().counter("qasm.qubits"), 8u);
    EXPECT_EQ(o.metrics().counter("phase.search.count"), 1u);
    EXPECT_EQ(o.metrics().counter("search.heuristic.runs"), 1u);
    EXPECT_EQ(o.metrics().counter("search.heuristic.expanded"),
              res.stats.expanded);
}

TEST(TracePipelineTest, TraceSurvivesTheRingWrapping)
{
    const ObserverResetGuard guard;
    obs::Observer &o = obs::Observer::global();
    // A tiny ring with per-expansion sampling forces wraparound.
    o.enableTrace(32);
    o.setSampleInterval(1);

    const auto imported = qasm::importFile(qft8Path());
    const auto graph = arch::ibmQ20Tokyo();
    heuristic::HeuristicMapper mapper(graph);
    ASSERT_TRUE(mapper.map(imported.circuit).success);

    EXPECT_GT(o.sink().dropped(), 0u);
    // The exported window must still be valid Chrome trace JSON with
    // monotonic timestamps (open-ended spans are allowed to have
    // lost their B side; the validator tolerates only stray-E-free
    // windows, so check the basics directly).
    const auto root = obs::json::parse(o.traceJson());
    EXPECT_EQ(
        root->get("otherData")->get("droppedEvents")->asNumber(),
        static_cast<double>(o.sink().dropped()));
    double last_ts = -1.0;
    for (const auto &ev : root->get("traceEvents")->asArray()) {
        EXPECT_GE(ev->get("ts")->asNumber(), last_ts);
        last_ts = ev->get("ts")->asNumber();
    }
}

TEST(TracePipelineTest, ObservationNeverChangesMapperResults)
{
    const auto imported = qasm::importFile(qft8Path());
    const auto graph = arch::ibmQX2();

    // The exact mapper gets the 4-qubit instance (qft8 exceeds
    // ibmqx2); the heuristic run below covers qft8 on tokyo.
    const auto small = qasm::importFile(
        std::string(TOQM_BENCHMARK_DIR) + "/qft4.qasm");

    core::MapperConfig cfg;
    cfg.searchInitialMapping = true;

    // Baseline: observability fully disabled.
    obs::Observer::global().reset();
    const core::OptimalMapper base_mapper(graph, cfg);
    const auto baseline = base_mapper.map(small.circuit);
    ASSERT_TRUE(baseline.success);

    // Same run with every facility on (heartbeat to a null stream).
    {
        const ObserverResetGuard guard;
        obs::Observer &o = obs::Observer::global();
        o.enableTrace();
        o.enableMetrics();
        o.enableProgress(1e-6, nullptr);
        o.setSampleInterval(1);

        const core::OptimalMapper obs_mapper(graph, cfg);
        const auto observed = obs_mapper.map(small.circuit);
        ASSERT_TRUE(observed.success);

        // Bit-identical outcome: same optimum, same swaps, same
        // search trajectory.
        EXPECT_EQ(observed.cycles, baseline.cycles);
        EXPECT_EQ(countSwaps(observed.mapped),
                  countSwaps(baseline.mapped));
        EXPECT_EQ(observed.stats.expanded, baseline.stats.expanded);
        EXPECT_EQ(observed.stats.generated, baseline.stats.generated);
        EXPECT_EQ(observed.stats.filtered, baseline.stats.filtered);
        EXPECT_EQ(observed.stats.maxQueueSize,
                  baseline.stats.maxQueueSize);
    }

    // And the heuristic mapper on tokyo, full qft8.
    obs::Observer::global().reset();
    heuristic::HeuristicMapper heur(arch::ibmQ20Tokyo());
    const auto h_base = heur.map(imported.circuit);
    ASSERT_TRUE(h_base.success);
    {
        const ObserverResetGuard guard;
        obs::Observer &o = obs::Observer::global();
        o.enableTrace();
        o.enableMetrics();
        o.setSampleInterval(1);
        const auto h_obs = heur.map(imported.circuit);
        ASSERT_TRUE(h_obs.success);
        EXPECT_EQ(h_obs.cycles, h_base.cycles);
        EXPECT_EQ(countSwaps(h_obs.mapped),
                  countSwaps(h_base.mapped));
        EXPECT_EQ(h_obs.stats.expanded, h_base.stats.expanded);
    }
}

} // namespace
} // namespace toqm
