#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "baselines/sabre.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"
#include "sim/noise.hpp"

namespace toqm::sim {
namespace {

TEST(NoiseTest, EmptyCircuitIsPerfect)
{
    ir::Circuit c(3);
    const auto f =
        estimateFidelity(c, ir::LatencyModel::ibmPreset());
    EXPECT_DOUBLE_EQ(f.total(), 1.0);
}

TEST(NoiseTest, GateErrorsMultiply)
{
    ir::Circuit c(2);
    c.addH(0);
    c.addCX(0, 1);
    c.addSwap(0, 1);
    NoiseModel noise;
    noise.t2Cycles = 1e12; // decoherence off
    const auto f =
        estimateFidelity(c, ir::LatencyModel::ibmPreset(), noise);
    const double want = (1.0 - noise.oneQubitError) *
                        (1.0 - noise.twoQubitError) *
                        (1.0 - noise.swapError);
    EXPECT_NEAR(f.gateFidelity, want, 1e-12);
    EXPECT_NEAR(f.decoherenceFidelity, 1.0, 1e-6);
}

TEST(NoiseTest, LongerCircuitsDecohereMore)
{
    ir::Circuit fast(1);
    fast.addH(0);
    ir::Circuit slow(1);
    for (int i = 0; i < 40; ++i)
        slow.addH(0);
    // Same gate error budget? No — isolate decoherence.
    NoiseModel noise;
    noise.oneQubitError = 0.0;
    const auto lat = ir::LatencyModel::ibmPreset();
    const auto f_fast = estimateFidelity(fast, lat, noise);
    const auto f_slow = estimateFidelity(slow, lat, noise);
    EXPECT_GT(f_fast.total(), f_slow.total());
}

TEST(NoiseTest, IdleQubitsDoNotDecohere)
{
    // Unused qubits must not contribute.
    ir::Circuit narrow(1);
    narrow.addH(0);
    ir::Circuit wide(8);
    wide.addH(0);
    const auto lat = ir::LatencyModel::ibmPreset();
    EXPECT_DOUBLE_EQ(estimateFidelity(narrow, lat).total(),
                     estimateFidelity(wide, lat).total());
}

TEST(NoiseTest, BarriersAndMeasuresAreFree)
{
    ir::Circuit c(2);
    c.addCX(0, 1);
    ir::Circuit c2 = c;
    c2.add(ir::Gate("barrier", {0, 1}));
    c2.add(ir::Gate("measure", {0}));
    const auto lat = ir::LatencyModel::ibmPreset();
    EXPECT_DOUBLE_EQ(estimateFidelity(c, lat).gateFidelity,
                     estimateFidelity(c2, lat).gateFidelity);
}

TEST(NoiseTest, TimeOptimalMappingBeatsSwapOptimalOnDecoherence)
{
    // The paper's Section 1 claim, end to end, in the regime it is
    // about: when DECOHERENCE dominates (gate errors zeroed out),
    // the time-aware mapper's shorter circuit is more reliable than
    // SABRE's swap-count-optimized one.  (With gate errors dominant
    // the ranking can flip — that trade-off is exactly what the
    // fidelity_analysis example explores.)
    const auto device = arch::ibmQ20Tokyo();
    const auto lat = ir::LatencyModel::ibmPreset();
    const ir::Circuit c = ir::benchmarkStandIn("noise_probe", 10, 800);

    heuristic::HeuristicMapper ours(device);
    const auto ro = ours.map(c);
    baselines::SabreMapper sabre(device);
    const auto rs = sabre.map(c);
    ASSERT_TRUE(ro.success && rs.success);

    NoiseModel noise;
    noise.oneQubitError = 0.0;
    noise.twoQubitError = 0.0;
    noise.swapError = 0.0;
    noise.t2Cycles = 1000.0;
    // Score with the LOGICAL payload width: the algorithm owns 10
    // qubits regardless of how many device locations routing visits.
    const double f_ours =
        estimateFidelity(ro.mapped.physical, lat, noise,
                         c.numQubits())
            .total();
    const double f_sabre =
        estimateFidelity(rs.mapped.physical, lat, noise,
                         c.numQubits())
            .total();
    EXPECT_GT(f_ours, f_sabre);
}

} // namespace
} // namespace toqm::sim
