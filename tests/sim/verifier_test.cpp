#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "ir/generators.hpp"
#include "sim/verifier.hpp"

namespace toqm::sim {
namespace {

ir::MappedCircuit
validGhzMapping()
{
    // GHZ-3 on LNN-3 with one swap.
    ir::Circuit phys(3);
    phys.addH(0);
    phys.addCX(0, 1);
    phys.addSwap(1, 2);
    phys.addCX(2, 1); // logical q1 now at 2, q2 at 1
    return ir::MappedCircuit(std::move(phys), {0, 1, 2}, {0, 2, 1});
}

TEST(VerifierTest, AcceptsValidMapping)
{
    const auto result = verifyMapping(ir::ghz(3), validGhzMapping(),
                                      arch::lnn(3));
    EXPECT_TRUE(result.ok) << result.message;
}

TEST(VerifierTest, RejectsUncoupledGate)
{
    ir::Circuit phys(3);
    phys.addH(0);
    phys.addCX(0, 1);
    phys.addCX(1, 2);
    // Device where 1-2 are NOT coupled.
    const arch::CouplingGraph g(3, {{0, 1}, {0, 2}});
    ir::MappedCircuit mapped(std::move(phys), {0, 1, 2}, {0, 1, 2});
    const auto result = verifyMapping(ir::ghz(3), mapped, g);
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message.find("uncoupled"), std::string::npos);
}

TEST(VerifierTest, RejectsUncoupledSwap)
{
    ir::Circuit logical(3);
    logical.addCX(0, 1);
    ir::Circuit phys(3);
    phys.addSwap(0, 2); // not an edge on LNN-3
    phys.addCX(2, 1);
    ir::MappedCircuit mapped(std::move(phys), {0, 1, 2}, {2, 1, 0});
    EXPECT_FALSE(verifyMapping(logical, mapped, arch::lnn(3)).ok);
}

TEST(VerifierTest, RejectsReorderedGatesOnAQubit)
{
    ir::Circuit logical(2);
    logical.addH(0);
    logical.addX(0);
    ir::Circuit phys(2);
    phys.addX(0);
    phys.addH(0); // order flipped
    ir::MappedCircuit mapped(std::move(phys), {0, 1}, {0, 1});
    EXPECT_FALSE(verifyMapping(logical, mapped, arch::lnn(2)).ok);
}

TEST(VerifierTest, RejectsMissingGate)
{
    ir::Circuit logical = ir::ghz(3);
    ir::Circuit phys(3);
    phys.addH(0);
    phys.addCX(0, 1); // final CX missing
    ir::MappedCircuit mapped(std::move(phys), {0, 1, 2}, {0, 1, 2});
    const auto result = verifyMapping(logical, mapped, arch::lnn(3));
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message.find("unexecuted"), std::string::npos);
}

TEST(VerifierTest, RejectsExtraGate)
{
    ir::Circuit logical(2);
    logical.addCX(0, 1);
    ir::Circuit phys(2);
    phys.addCX(0, 1);
    phys.addCX(0, 1);
    ir::MappedCircuit mapped(std::move(phys), {0, 1}, {0, 1});
    EXPECT_FALSE(verifyMapping(logical, mapped, arch::lnn(2)).ok);
}

TEST(VerifierTest, RejectsFlippedCxDirection)
{
    ir::Circuit logical(2);
    logical.addCX(0, 1);
    ir::Circuit phys(2);
    phys.addCX(1, 0); // control/target flipped
    ir::MappedCircuit mapped(std::move(phys), {0, 1}, {0, 1});
    EXPECT_FALSE(verifyMapping(logical, mapped, arch::lnn(2)).ok);
}

TEST(VerifierTest, RejectsWrongDeclaredFinalLayout)
{
    auto mapped = validGhzMapping();
    mapped.finalLayout = {0, 1, 2}; // ignores the swap
    const auto result =
        verifyMapping(ir::ghz(3), mapped, arch::lnn(3));
    EXPECT_FALSE(result.ok);
    EXPECT_NE(result.message.find("final layout"), std::string::npos);
}

TEST(VerifierTest, RejectsNonInjectiveInitialLayout)
{
    ir::Circuit logical(2);
    logical.addCX(0, 1);
    ir::Circuit phys(2);
    phys.addCX(0, 1);
    ir::MappedCircuit mapped(std::move(phys), {0, 0}, {0, 0});
    EXPECT_FALSE(verifyMapping(logical, mapped, arch::lnn(2)).ok);
}

TEST(VerifierTest, RejectsDeviceSizeMismatch)
{
    ir::Circuit logical(2);
    logical.addCX(0, 1);
    ir::Circuit phys(3);
    phys.addCX(0, 1);
    ir::MappedCircuit mapped(std::move(phys), {0, 1}, {0, 1});
    EXPECT_FALSE(verifyMapping(logical, mapped, arch::lnn(2)).ok);
}

TEST(VerifierTest, RejectsParameterMismatch)
{
    ir::Circuit logical(1);
    logical.add(ir::Gate(ir::GateKind::RZ, 0,
                         std::vector<double>{0.5}));
    ir::Circuit phys(1);
    phys.add(ir::Gate(ir::GateKind::RZ, 0, std::vector<double>{0.7}));
    ir::MappedCircuit mapped(std::move(phys), {0}, {0});
    EXPECT_FALSE(verifyMapping(logical, mapped, arch::lnn(1)).ok);
}

TEST(VerifierTest, SpareDeviceQubitsAllowed)
{
    // 2-qubit circuit on a 5-qubit device.
    ir::Circuit logical(2);
    logical.addCX(0, 1);
    ir::Circuit phys(5);
    phys.addCX(2, 3);
    ir::MappedCircuit mapped(std::move(phys), {2, 3}, {2, 3});
    EXPECT_TRUE(verifyMapping(logical, mapped, arch::ibmQX2()).ok);
}

} // namespace
} // namespace toqm::sim
