#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "baselines/sabre.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "sim/stabilizer.hpp"
#include "sim/statevector.hpp"
#include "sim/verifier.hpp"

namespace toqm::sim {
namespace {

TEST(StabilizerTest, InitialStateStabilizedByZ)
{
    StabilizerState s(3);
    const auto gens = s.canonicalStabilizers();
    ASSERT_EQ(gens.size(), 3u);
    EXPECT_EQ(gens[0], "+ZII");
    EXPECT_EQ(gens[1], "+IZI");
    EXPECT_EQ(gens[2], "+IIZ");
}

TEST(StabilizerTest, HadamardMakesPlusState)
{
    StabilizerState s(2);
    s.applyH(0);
    const auto gens = s.canonicalStabilizers();
    EXPECT_EQ(gens[0], "+XI");
    EXPECT_EQ(gens[1], "+IZ");
}

TEST(StabilizerTest, XFlipsSign)
{
    StabilizerState s(1);
    s.apply(ir::Gate(ir::GateKind::X, 0));
    EXPECT_EQ(s.canonicalStabilizers()[0], "-Z");
}

TEST(StabilizerTest, BellStateStabilizers)
{
    StabilizerState s(2);
    s.applyH(0);
    s.applyCX(0, 1);
    const auto gens = s.canonicalStabilizers();
    EXPECT_EQ(gens[0], "+XX");
    EXPECT_EQ(gens[1], "+ZZ");
}

TEST(StabilizerTest, SSquaredIsZ)
{
    StabilizerState a(1), b(1);
    a.applyH(0); // |+>
    b.applyH(0);
    a.applyS(0);
    a.applyS(0);
    b.apply(ir::Gate(ir::GateKind::Z, 0));
    EXPECT_TRUE(a == b);
}

TEST(StabilizerTest, SwapEqualsThreeCx)
{
    StabilizerState a(3), b(3);
    for (StabilizerState *s : {&a, &b}) {
        s->applyH(0);
        s->applyCX(0, 2);
        s->applyS(1);
    }
    a.apply(ir::Gate(ir::GateKind::Swap, 0, 1));
    b.applyCX(0, 1);
    b.applyCX(1, 0);
    b.applyCX(0, 1);
    EXPECT_TRUE(a == b);
}

TEST(StabilizerTest, RejectsNonClifford)
{
    StabilizerState s(1);
    EXPECT_THROW(s.apply(ir::Gate(ir::GateKind::T, 0)),
                 std::invalid_argument);
    EXPECT_FALSE(StabilizerState::isClifford(
        ir::Gate(ir::GateKind::T, 0)));
    EXPECT_TRUE(StabilizerState::isClifford(
        ir::Gate(ir::GateKind::CZ, 0, 1)));
}

TEST(StabilizerTest, AgreesWithStateVectorOnRandomCliffords)
{
    // Cross-oracle check: for random Clifford circuits, the tableau
    // states of two DIFFERENT gate-level realizations agree exactly
    // when the dense simulator says the states match.
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        const ir::Circuit c = randomCliffordCircuit(5, 120, 0.4, seed);
        const ir::Circuit d =
            randomCliffordCircuit(5, 120, 0.4, seed + 100);

        StabilizerState sc(5), sd(5);
        sc.run(c);
        sd.run(d);

        StateVector vc(5), vd(5);
        vc.run(c);
        vd.run(d);
        const bool dense_equal = vc.overlap(vd) > 1.0 - 1e-9;
        EXPECT_EQ(sc == sd, dense_equal) << "seed " << seed;

        // And a state always equals itself through a different
        // route: append Z Z (identity).
        StabilizerState sc2(5);
        sc2.run(c);
        sc2.apply(ir::Gate(ir::GateKind::Z, 0));
        sc2.apply(ir::Gate(ir::GateKind::Z, 0));
        EXPECT_TRUE(sc == sc2);
    }
}

TEST(StabilizerTest, CanonicalFormIsRepresentationInvariant)
{
    // Generate the same state with re-ordered commuting gates.
    StabilizerState a(4), b(4);
    a.applyH(0);
    a.applyH(2);
    a.applyCX(0, 1);
    a.applyCX(2, 3);
    b.applyH(2);
    b.applyCX(2, 3);
    b.applyH(0);
    b.applyCX(0, 1);
    EXPECT_TRUE(a == b);
}

TEST(CliffordEquivalentTest, AcceptsValidMapping)
{
    ir::Circuit logical = ir::ghz(3);
    ir::Circuit phys(3);
    phys.addH(0);
    phys.addCX(0, 1);
    phys.addSwap(1, 2);
    phys.addCX(2, 1);
    ir::MappedCircuit mapped(std::move(phys), {0, 1, 2}, {0, 2, 1});
    EXPECT_TRUE(cliffordEquivalent(logical, mapped));
}

TEST(CliffordEquivalentTest, RejectsWrongMapping)
{
    ir::Circuit logical = ir::ghz(3);
    ir::Circuit phys(3);
    phys.addH(0);
    phys.addCX(0, 1);
    phys.addCX(1, 2); // wrong: logical expects CX(1,2) via q1...
    // make it definitely wrong: an extra X.
    phys.addX(0);
    ir::MappedCircuit mapped(std::move(phys), {0, 1, 2}, {0, 1, 2});
    EXPECT_FALSE(cliffordEquivalent(logical, mapped));
}

TEST(CliffordEquivalentTest, LargeMappedCircuitOnTokyo)
{
    // The capability the statevector oracle cannot provide: a
    // 2000-gate Clifford workload on the full 20-qubit device,
    // mapped by the heuristic, verified semantically in milliseconds.
    const auto device = arch::ibmQ20Tokyo();
    const ir::Circuit c =
        randomCliffordCircuit(16, 2000, 0.45, 7, 0.5);
    heuristic::HeuristicMapper mapper(device);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    ASSERT_TRUE(sim::verifyMapping(c, res.mapped, device).ok);
    EXPECT_TRUE(cliffordEquivalent(c, res.mapped));
}

TEST(CliffordEquivalentTest, SabreLargeMappedCircuit)
{
    const auto device = arch::ibmQ20Tokyo();
    const ir::Circuit c =
        randomCliffordCircuit(12, 1500, 0.5, 13, 0.4);
    baselines::SabreMapper mapper(device);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(cliffordEquivalent(c, res.mapped));
}

TEST(CliffordEquivalentTest, DetectsSingleDroppedGate)
{
    const auto device = arch::ibmQ20Tokyo();
    const ir::Circuit c = randomCliffordCircuit(10, 400, 0.45, 21);
    heuristic::HeuristicMapper mapper(device);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);

    // Drop one compute gate from the physical circuit.
    ir::Circuit damaged(res.mapped.physical.numQubits(),
                        "damaged");
    bool dropped = false;
    for (const ir::Gate &g : res.mapped.physical.gates()) {
        if (!dropped && !g.isSwap() && g.numQubits() == 2) {
            dropped = true;
            continue;
        }
        damaged.add(g);
    }
    ASSERT_TRUE(dropped);
    ir::MappedCircuit bad(std::move(damaged),
                          res.mapped.initialLayout,
                          res.mapped.finalLayout);
    EXPECT_FALSE(cliffordEquivalent(c, bad));
}

TEST(RandomCliffordTest, OnlyCliffordGates)
{
    const ir::Circuit c = randomCliffordCircuit(6, 300, 0.5, 3);
    for (const ir::Gate &g : c.gates())
        EXPECT_TRUE(StabilizerState::isClifford(g)) << g.str();
}

} // namespace
} // namespace toqm::sim
