#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "ir/generators.hpp"
#include "sim/statevector.hpp"

namespace toqm::sim {
namespace {

constexpr double eps = 1e-12;

TEST(StateVectorTest, InitialBasisState)
{
    StateVector sv(3, 0b101);
    EXPECT_NEAR(std::abs(sv.amplitude(0b101)), 1.0, eps);
    EXPECT_NEAR(sv.norm(), 1.0, eps);
}

TEST(StateVectorTest, HadamardSuperposition)
{
    StateVector sv(1);
    sv.apply(ir::Gate(ir::GateKind::H, 0));
    const double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(sv.amplitude(0).real(), r, eps);
    EXPECT_NEAR(sv.amplitude(1).real(), r, eps);
}

TEST(StateVectorTest, XFlipsBit)
{
    StateVector sv(2);
    sv.apply(ir::Gate(ir::GateKind::X, 1));
    EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 1.0, eps);
}

TEST(StateVectorTest, CxEntangles)
{
    StateVector sv(2);
    sv.apply(ir::Gate(ir::GateKind::H, 0));
    sv.apply(ir::Gate(ir::GateKind::CX, 0, 1));
    const double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(sv.amplitude(0b00)), r, eps);
    EXPECT_NEAR(std::abs(sv.amplitude(0b11)), r, eps);
    EXPECT_NEAR(std::abs(sv.amplitude(0b01)), 0.0, eps);
}

TEST(StateVectorTest, SwapExchangesQubits)
{
    StateVector sv(2, 0b01);
    sv.apply(ir::Gate(ir::GateKind::Swap, 0, 1));
    EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 1.0, eps);
}

TEST(StateVectorTest, SwapEqualsThreeCx)
{
    StateVector a(2), b(2);
    // Prepare an arbitrary state on both.
    for (StateVector *sv : {&a, &b}) {
        sv->apply(ir::Gate(ir::GateKind::H, 0));
        sv->apply(ir::Gate(ir::GateKind::T, 0));
        sv->apply(ir::Gate(ir::GateKind::RY, 1,
                           std::vector<double>{0.7}));
    }
    a.apply(ir::Gate(ir::GateKind::Swap, 0, 1));
    b.apply(ir::Gate(ir::GateKind::CX, 0, 1));
    b.apply(ir::Gate(ir::GateKind::CX, 1, 0));
    b.apply(ir::Gate(ir::GateKind::CX, 0, 1));
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-9);
}

TEST(StateVectorTest, CzSymmetricPhase)
{
    StateVector sv(2, 0b11);
    sv.apply(ir::Gate(ir::GateKind::CZ, 0, 1));
    EXPECT_NEAR(sv.amplitude(0b11).real(), -1.0, eps);
}

TEST(StateVectorTest, CpAppliesPhaseOnlyOn11)
{
    const double theta = 0.37;
    StateVector sv(2);
    sv.apply(ir::Gate(ir::GateKind::H, 0));
    sv.apply(ir::Gate(ir::GateKind::H, 1));
    sv.apply(ir::Gate(ir::GateKind::CP, 0, 1,
                      std::vector<double>{theta}));
    const auto expected = std::polar(0.5, theta);
    EXPECT_NEAR(sv.amplitude(0b11).real(), expected.real(), eps);
    EXPECT_NEAR(sv.amplitude(0b11).imag(), expected.imag(), eps);
    EXPECT_NEAR(sv.amplitude(0b01).real(), 0.5, eps);
}

TEST(StateVectorTest, HSquaredIsIdentity)
{
    StateVector sv(1);
    sv.apply(ir::Gate(ir::GateKind::H, 0));
    sv.apply(ir::Gate(ir::GateKind::H, 0));
    EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, eps);
}

TEST(StateVectorTest, TIsFourthRootOfZ)
{
    StateVector a(1, 1), b(1, 1);
    for (int i = 0; i < 4; ++i)
        a.apply(ir::Gate(ir::GateKind::T, 0));
    b.apply(ir::Gate(ir::GateKind::Z, 0));
    EXPECT_NEAR(a.overlap(b), 1.0, eps);
}

TEST(StateVectorTest, U3Decomposition)
{
    // u2(phi, lambda) == u3(pi/2, phi, lambda).
    StateVector a(1), b(1);
    a.apply(ir::Gate(ir::GateKind::U2, 0,
                     std::vector<double>{0.3, 0.9}));
    b.apply(ir::Gate(ir::GateKind::U3, 0,
                     std::vector<double>{std::numbers::pi / 2, 0.3,
                                         0.9}));
    EXPECT_NEAR(a.overlap(b), 1.0, eps);
}

TEST(StateVectorTest, NormPreservedByRandomCircuit)
{
    StateVector sv(5);
    sv.run(ir::randomCircuit(5, 200, 0.4, 99));
    EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
}

TEST(StateVectorTest, QftOnBasisStateGivesUniformMagnitudes)
{
    const int n = 4;
    StateVector sv(n, 5);
    sv.run(ir::qftConcrete(n));
    const double want = 1.0 / std::sqrt(16.0);
    for (std::uint64_t b = 0; b < 16; ++b)
        EXPECT_NEAR(std::abs(sv.amplitude(b)), want, 1e-9);
}

TEST(StateVectorTest, GtGateRejected)
{
    StateVector sv(2);
    EXPECT_THROW(sv.apply(ir::Gate(ir::GateKind::GT, 0, 1)),
                 std::invalid_argument);
}

TEST(StateVectorTest, WidthLimits)
{
    EXPECT_THROW(StateVector(0), std::invalid_argument);
    EXPECT_THROW(StateVector(27), std::invalid_argument);
}

TEST(SemanticEquivalenceTest, AcceptsCorrectMapping)
{
    // GHZ circuit mapped with an explicit swap.
    ir::Circuit logical = ir::ghz(3);
    ir::Circuit phys(3);
    phys.addH(0);
    phys.addCX(0, 1);
    phys.addSwap(0, 1); // shuffle, then continue on moved qubits
    phys.addCX(0, 2);   // logical q1 now at physical 0
    ir::MappedCircuit mapped(std::move(phys), {0, 1, 2}, {1, 0, 2});
    EXPECT_TRUE(semanticallyEquivalent(logical, mapped));
}

TEST(SemanticEquivalenceTest, RejectsWrongGate)
{
    ir::Circuit logical = ir::ghz(3);
    ir::Circuit phys(3);
    phys.addH(0);
    phys.addCX(0, 1);
    phys.addCX(2, 1); // wrong direction / wrong logical pair
    ir::MappedCircuit mapped(std::move(phys), {0, 1, 2}, {0, 1, 2});
    EXPECT_FALSE(semanticallyEquivalent(logical, mapped));
}

TEST(SemanticEquivalenceTest, RejectsWrongFinalLayout)
{
    ir::Circuit logical = ir::ghz(2);
    ir::Circuit phys(2);
    phys.addH(0);
    phys.addCX(0, 1);
    // Claimed final layout swaps qubits although no swap happened.
    ir::MappedCircuit mapped(std::move(phys), {0, 1}, {1, 0});
    EXPECT_FALSE(semanticallyEquivalent(logical, mapped));
}

} // namespace
} // namespace toqm::sim
