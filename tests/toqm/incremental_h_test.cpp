/**
 * @file
 * Property tests for the incremental h(v) path.
 *
 * estimate() (firstUnscheduled scan start + closed-form swap split)
 * and estimateReference() (full rescan + explicit enumeration) are
 * independent implementations of the same bound; these tests pin
 * their equality across real search frontiers (QFT on LNN/Tokyo,
 * QUEKO on a grid), across the large-distance regime where the
 * closed form actually engages (k >= 8), and prove the debug audit
 * fires when the two diverge.
 */

#include <gtest/gtest.h>

#include <deque>
#include <stdexcept>
#include <vector>

#include "arch/architectures.hpp"

#include "ir/generators.hpp"
#include "ir/mapped_circuit.hpp"
#include "ir/queko.hpp"
#include "toqm/cost_estimator.hpp"
#include "toqm/expander.hpp"
#include "toqm/search_types.hpp"

namespace toqm::core {
namespace {

/**
 * BFS the real search space from @p root and require
 * estimate == estimateReference on every visited node.  Audits are
 * disabled so a mismatch surfaces as a test failure with the node's
 * depth, not a thrown logic_error.
 */
void
expectFastMatchesReference(const SearchContext &ctx, NodePool &pool,
                           NodeRef root, int max_nodes)
{
    CostEstimator est(ctx);
    est.setAuditInterval(0);
    Expander expander(ctx, pool);
    std::deque<NodeRef> frontier{root};
    int visited = 0;
    while (!frontier.empty() && visited < max_nodes) {
        NodeRef node = frontier.front();
        frontier.pop_front();
        ++visited;
        ASSERT_EQ(est.estimate(*node), est.estimateReference(*node))
            << "node at cycle " << node->cycle << ", "
            << node->scheduledGates << " gates scheduled, "
            << "firstUnscheduled=" << node->firstUnscheduled;
        if (node->allScheduled(ctx))
            continue;
        auto expansion = expander.expand(node);
        for (auto &child : expansion.children)
            frontier.push_back(std::move(child));
    }
    EXPECT_GT(visited, 1) << "fixture produced no frontier";
}

TEST(IncrementalHTest, QftOnLnnFrontierMatchesReference)
{
    ir::Circuit c = ir::qftSkeleton(5);
    const auto g = arch::lnn(5);
    const ir::LatencyModel lat = ir::LatencyModel::qftPreset();
    SearchContext ctx(c, g, lat);
    NodePool pool(ctx);
    expectFastMatchesReference(
        ctx, pool, pool.root(ir::identityLayout(5), false), 400);
}

TEST(IncrementalHTest, QftOnTokyoFrontierMatchesReference)
{
    ir::Circuit c = ir::qftSkeleton(6);
    const auto g = arch::ibmQ20Tokyo();
    const ir::LatencyModel lat = ir::LatencyModel::ibmPreset();
    SearchContext ctx(c, g, lat);
    NodePool pool(ctx);
    expectFastMatchesReference(
        ctx, pool, pool.root(ir::identityLayout(6), false), 400);
}

TEST(IncrementalHTest, QuekoOnGridFrontierMatchesReference)
{
    const auto g = arch::grid(2, 4);
    const auto bench = ir::quekoCircuit(g.numQubits(), g.edges(),
                                        /*depth=*/6, 0.4, 0.2,
                                        /*seed=*/42);
    const ir::LatencyModel lat = ir::LatencyModel::olsqPreset();
    SearchContext ctx(bench.circuit, g, lat);
    NodePool pool(ctx);
    expectFastMatchesReference(
        ctx, pool,
        pool.root(ir::identityLayout(g.numQubits()), false), 400);
}

TEST(IncrementalHTest, DeepPathAdvancesFirstUnscheduled)
{
    // Greedy descent: the scheduled prefix grows, so the production
    // scan's firstUnscheduled start point does real work here.
    ir::Circuit c = ir::qftSkeleton(6);
    const auto g = arch::lnn(6);
    const ir::LatencyModel lat = ir::LatencyModel::qftPreset();
    SearchContext ctx(c, g, lat);
    CostEstimator est(ctx);
    est.setAuditInterval(0);
    NodePool pool(ctx);
    Expander expander(ctx, pool);
    NodeRef node = pool.root(ir::identityLayout(6), false);
    int max_first = 0;
    for (int depth = 0; depth < 15 && !node->allScheduled(ctx);
         ++depth) {
        auto expansion = expander.expand(node);
        ASSERT_FALSE(expansion.children.empty());
        NodeRef best = expansion.children.front();
        for (auto &child : expansion.children) {
            if (child->scheduledGates > best->scheduledGates)
                best = child;
        }
        node = best;
        max_first = std::max(max_first, node->firstUnscheduled);
        ASSERT_EQ(est.estimate(*node), est.estimateReference(*node))
            << "depth " << depth;
    }
    EXPECT_GT(max_first, 0)
        << "scheduled prefix never advanced; the incremental path "
           "was not exercised";
}

TEST(IncrementalHTest, ClosedFormMatchesLoopAtLargeDistance)
{
    // The closed-form swap split only engages at k = d - 1 >= 8; on
    // LNN-14 a CX(0, b) puts the operands exactly b apart, so b
    // sweeps the loop/closed-form boundary (b = 8 is the last loop
    // case, b = 9 the first closed-form case).  Prefix T-gate chains
    // of unequal length create the asymmetric slack that makes the
    // split nontrivial (the Fig 9 regime), and the swap latency L
    // moves every kink of the delay function.
    for (int b = 7; b <= 13; ++b) {
        for (int pre_a = 0; pre_a <= 5; ++pre_a) {
            for (int pre_b = 0; pre_b <= 5; pre_b += 5) {
                for (int L : {1, 2, 3, 5}) {
                    ir::Circuit c(14);
                    for (int i = 0; i < pre_a; ++i)
                        c.add(ir::Gate(ir::GateKind::T, 0));
                    for (int i = 0; i < pre_b; ++i)
                        c.add(ir::Gate(ir::GateKind::T, b));
                    c.addCX(0, b);
                    const auto g = arch::lnn(14);
                    const ir::LatencyModel lat(1, 2, L);
                    SearchContext ctx(c, g, lat);
                    CostEstimator est(ctx);
                    est.setAuditInterval(0);
                    NodePool pool(ctx);
                    auto root =
                        pool.root(ir::identityLayout(14), false);
                    ASSERT_EQ(est.estimate(*root),
                              est.estimateReference(*root))
                        << "d=" << b << " pre_a=" << pre_a
                        << " pre_b=" << pre_b << " L=" << L;
                }
            }
        }
    }
}

TEST(IncrementalHTest, AuditDisabledToleratesInjectedSkew)
{
    ir::Circuit c(2);
    c.addCX(0, 1);
    const auto g = arch::lnn(2);
    const ir::LatencyModel lat = ir::LatencyModel::ibmPreset();
    SearchContext ctx(c, g, lat);
    CostEstimator est(ctx);
    NodePool pool(ctx);
    auto root = pool.root(ir::identityLayout(2), false);
    est.setAuditInterval(0);
    est.setTestSkew(1);
    // Skew shifts the fast path but nothing checks it.
    EXPECT_EQ(est.estimate(*root),
              est.estimateReference(*root) + 1);
}

TEST(IncrementalHTest, AuditFiresOnInjectedSkew)
{
    // The negative control for the whole audit mechanism: force a
    // fast/reference divergence and prove the cross-check actually
    // throws — otherwise the debug audit could rot into a no-op.
    ir::Circuit c(2);
    c.addCX(0, 1);
    const auto g = arch::lnn(2);
    const ir::LatencyModel lat = ir::LatencyModel::ibmPreset();
    SearchContext ctx(c, g, lat);
    CostEstimator est(ctx);
    NodePool pool(ctx);
    auto root = pool.root(ir::identityLayout(2), false);
    est.setAuditInterval(1); // audit every call
    est.setTestSkew(1);
    EXPECT_THROW(est.estimate(*root), std::logic_error);
    // Removing the skew heals the estimator: the very next audited
    // call passes again.
    est.setTestSkew(0);
    EXPECT_NO_THROW(est.estimate(*root));
}

} // namespace
} // namespace toqm::core
