#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"
#include "sim/verifier.hpp"
#include "toqm/ida_star.hpp"
#include "toqm/mapper.hpp"

namespace toqm::core {
namespace {

TEST(IdaStarTest, AdjacentCircuitNoSwaps)
{
    ir::Circuit c = ir::ghz(4);
    const auto g = arch::lnn(4);
    const auto res =
        idaStarMap(g, c, ir::LatencyModel::ibmPreset());
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.mapped.physical.numSwaps(), 0);
    EXPECT_EQ(res.cycles,
              ir::idealCycles(c, ir::LatencyModel::ibmPreset()));
    EXPECT_EQ(res.stats.rounds, 1); // h(root) is exact here
}

TEST(IdaStarTest, MatchesAStarOnSmallInstances)
{
    const ir::LatencyModel lat = ir::LatencyModel::qftPreset();
    struct Case
    {
        ir::Circuit circuit;
        arch::CouplingGraph graph;
    };
    std::vector<Case> cases;
    cases.push_back({ir::qftSkeleton(4), arch::lnn(4)});
    cases.push_back({ir::qftSkeleton(4), arch::grid(2, 2)});
    cases.push_back({ir::randomCircuit(4, 20, 0.5, 3, 0.6),
                     arch::lnn(4)});

    for (auto &[circuit, graph] : cases) {
        MapperConfig cfg;
        cfg.latency = lat;
        OptimalMapper astar(graph, cfg);
        const auto a = astar.map(circuit);
        ASSERT_TRUE(a.success);

        const auto ida = idaStarMap(graph, circuit, lat);
        ASSERT_TRUE(ida.success);
        EXPECT_EQ(ida.cycles, a.cycles) << circuit.name();
        EXPECT_TRUE(
            sim::verifyMapping(circuit, ida.mapped, graph).ok);
    }
}

TEST(IdaStarTest, DeepeningRoundsGrowTheBound)
{
    // A distant CX forces at least one deepening round past h(root)
    // ... unless h is already exact; either way rounds >= 1 and the
    // result is optimal.
    ir::Circuit c(4);
    c.addCX(0, 3);
    const auto g = arch::lnn(4);
    const auto res =
        idaStarMap(g, c, ir::LatencyModel(1, 2, 6));
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.cycles, 8); // one swap round (6) + CX (2)
    EXPECT_GE(res.stats.rounds, 1);
}

TEST(IdaStarTest, ConstrainedModeMatchesAStar)
{
    ir::Circuit c = ir::qftSkeleton(4);
    const auto g = arch::grid(2, 2);
    MapperConfig cfg;
    cfg.latency = ir::LatencyModel::qftPreset();
    cfg.allowConcurrentSwapAndGate = false;
    OptimalMapper astar(g, cfg);
    const auto a = astar.map(c);
    ASSERT_TRUE(a.success);

    const auto ida = idaStarMap(g, c, cfg.latency,
                                /*allow_mixing=*/false);
    ASSERT_TRUE(ida.success);
    EXPECT_EQ(ida.cycles, a.cycles);
}

TEST(IdaStarTest, BudgetExhaustionReportsFailure)
{
    ir::Circuit c = ir::qftSkeleton(5);
    const auto g = arch::lnn(5);
    const auto res = idaStarMap(g, c, ir::LatencyModel::qftPreset(),
                                true, /*max_expanded=*/50);
    EXPECT_FALSE(res.success);
    EXPECT_EQ(res.status, SearchStatus::BudgetExhausted);
    EXPECT_LE(res.stats.expanded, 60u);
}

} // namespace
} // namespace toqm::core
