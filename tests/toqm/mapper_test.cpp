#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"
#include "sim/statevector.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"
#include "toqm/static_mapping.hpp"

namespace toqm::core {
namespace {

MapperConfig
qftConfig()
{
    MapperConfig cfg;
    cfg.latency = ir::LatencyModel::qftPreset();
    return cfg;
}

TEST(OptimalMapperTest, AdjacentCircuitNeedsNoSwaps)
{
    ir::Circuit c = ir::ghz(4);
    const auto g = arch::lnn(4);
    OptimalMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.mapped.physical.numSwaps(), 0);
    EXPECT_EQ(res.cycles,
              ir::idealCycles(c, ir::LatencyModel::ibmPreset()));
    EXPECT_TRUE(sim::verifyMapping(c, res.mapped, g).ok);
}

TEST(OptimalMapperTest, SingleDistantCxOnChain)
{
    ir::Circuit c(3);
    c.addCX(0, 2);
    const auto g = arch::lnn(3);
    MapperConfig cfg; // ibm preset: cx 2, swap 6
    OptimalMapper mapper(g, cfg);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.cycles, 8); // one swap (6) + cx (2)
    EXPECT_EQ(res.mapped.physical.numSwaps(), 1);
    EXPECT_TRUE(sim::verifyMapping(c, res.mapped, g).ok);
    EXPECT_TRUE(sim::semanticallyEquivalent(c, res.mapped));
}

TEST(OptimalMapperTest, Qft6OnLnnIsSeventeenCycles)
{
    // The paper's headline result (Fig 2 / Fig 11): optimal QFT-6
    // on LNN takes 17 cycles under the uniform latency model.
    ir::Circuit c = ir::qftSkeleton(6);
    const auto g = arch::lnn(6);
    OptimalMapper mapper(g, qftConfig());
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.cycles, 17);
    EXPECT_TRUE(sim::verifyMapping(c, res.mapped, g).ok);
    // The reported cycle count must agree with an independent ASAP
    // re-schedule of the emitted circuit.
    EXPECT_EQ(ir::scheduleAsap(res.mapped.physical,
                               ir::LatencyModel::qftPreset())
                  .makespan,
              17);
}

TEST(OptimalMapperTest, Qft6OnGrid2x3Mixed)
{
    ir::Circuit c = ir::qftSkeleton(6);
    const auto g = arch::grid(2, 3);
    std::vector<int> layout(6);
    for (int col = 0; col < 3; ++col)
        for (int row = 0; row < 2; ++row)
            layout[static_cast<size_t>(2 * col + row)] =
                row * 3 + col;
    OptimalMapper mapper(g, qftConfig());
    const auto res = mapper.map(c, layout);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.cycles, 11);
    EXPECT_TRUE(sim::verifyMapping(c, res.mapped, g).ok);
}

TEST(OptimalMapperTest, ConstrainedModeMatchesFig14Shape)
{
    // Without GT/swap mixing the optimum can only get worse, and for
    // QFT-6 on 2x3 it is 13 (3n-5, the Fig 14 family).
    ir::Circuit c = ir::qftSkeleton(6);
    const auto g = arch::grid(2, 3);
    std::vector<int> layout(6);
    for (int col = 0; col < 3; ++col)
        for (int row = 0; row < 2; ++row)
            layout[static_cast<size_t>(2 * col + row)] =
                row * 3 + col;
    MapperConfig cfg = qftConfig();
    cfg.allowConcurrentSwapAndGate = false;
    OptimalMapper mapper(g, cfg);
    const auto res = mapper.map(c, layout);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.cycles, 13);
    // No swap may overlap a GT in time.
    const auto sched = ir::scheduleAsap(res.mapped.physical,
                                        ir::LatencyModel::qftPreset());
    for (int i = 0; i < res.mapped.physical.size(); ++i) {
        for (int j = 0; j < res.mapped.physical.size(); ++j) {
            if (res.mapped.physical.gate(i).isSwap() ==
                res.mapped.physical.gate(j).isSwap()) {
                continue;
            }
            EXPECT_FALSE(sched.startCycle[static_cast<size_t>(i)] ==
                         sched.startCycle[static_cast<size_t>(j)])
                << "swap and gate share a cycle";
        }
    }
}

TEST(OptimalMapperTest, SearchedInitialMappingBeatsBadSeed)
{
    // CX(0,2) with freedom over the initial mapping costs just the
    // CX: place the qubits adjacent.
    ir::Circuit c(3);
    c.addCX(0, 2);
    const auto g = arch::lnn(3);
    MapperConfig cfg;
    cfg.searchInitialMapping = true;
    OptimalMapper mapper(g, cfg);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.cycles, 2);
    EXPECT_EQ(res.mapped.physical.numSwaps(), 0);
    EXPECT_TRUE(sim::verifyMapping(c, res.mapped, g).ok);
}

TEST(OptimalMapperTest, FindAllOptimalEnumeratesSolutions)
{
    ir::Circuit c(3);
    c.addCX(0, 2); // one swap needed; several optimal insertions
    const auto g = arch::lnn(3);
    MapperConfig cfg;
    cfg.findAllOptimal = true;
    OptimalMapper mapper(g, cfg);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_GE(res.allOptimal.size(), 2u);
    const auto lat = ir::LatencyModel::ibmPreset();
    for (const auto &sol : res.allOptimal) {
        EXPECT_TRUE(sim::verifyMapping(c, sol, g).ok);
        EXPECT_EQ(ir::scheduleAsap(sol.physical, lat).makespan,
                  res.cycles);
    }
}

TEST(OptimalMapperTest, NodeBudgetReportsFailure)
{
    ir::Circuit c = ir::qftSkeleton(6);
    const auto g = arch::lnn(6);
    MapperConfig cfg = qftConfig();
    cfg.maxExpandedNodes = 5;
    cfg.useUpperBoundPruning = false;
    OptimalMapper mapper(g, cfg);
    const auto res = mapper.map(c);
    EXPECT_FALSE(res.success);
}

TEST(OptimalMapperTest, AblationsPreserveOptimality)
{
    // Disabling each pruning technique must not change the optimum.
    ir::Circuit c = ir::qftSkeleton(4);
    const auto g = arch::lnn(4);
    MapperConfig base = qftConfig();
    OptimalMapper reference(g, base);
    const int optimal = reference.map(c).cycles;
    ASSERT_GT(optimal, 0);

    {
        MapperConfig cfg = base;
        cfg.useFilter = false;
        EXPECT_EQ(OptimalMapper(g, cfg).map(c).cycles, optimal);
    }
    {
        MapperConfig cfg = base;
        cfg.useRedundancyElimination = false;
        EXPECT_EQ(OptimalMapper(g, cfg).map(c).cycles, optimal);
    }
    {
        MapperConfig cfg = base;
        cfg.useCyclicSwapElimination = false;
        EXPECT_EQ(OptimalMapper(g, cfg).map(c).cycles, optimal);
    }
    {
        MapperConfig cfg = base;
        cfg.useUpperBoundPruning = false;
        EXPECT_EQ(OptimalMapper(g, cfg).map(c).cycles, optimal);
    }
}

TEST(OptimalMapperTest, SwapLatencyChangesTradeoffs)
{
    ir::Circuit c(3);
    c.addCX(0, 2);
    const auto g = arch::lnn(3);
    for (int swap_lat : {1, 3, 6}) {
        MapperConfig cfg;
        cfg.latency = ir::LatencyModel(1, 2, swap_lat);
        OptimalMapper mapper(g, cfg);
        const auto res = mapper.map(c);
        ASSERT_TRUE(res.success);
        EXPECT_EQ(res.cycles, swap_lat + 2);
    }
}

TEST(OptimalMapperTest, MeasuresAreScheduledLikeGates)
{
    ir::Circuit c(2);
    c.addCX(0, 1);
    c.add(ir::Gate("measure", {0}));
    c.add(ir::Gate("measure", {1}));
    const auto g = arch::lnn(2);
    OptimalMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.cycles, 3);
    EXPECT_TRUE(sim::verifyMapping(c, res.mapped, g).ok);
}

TEST(OptimalMapperTest, RejectsTooWideCircuit)
{
    ir::Circuit c(6);
    c.addCX(0, 5);
    const auto g = arch::lnn(3);
    OptimalMapper mapper(g);
    EXPECT_THROW(mapper.map(c), std::invalid_argument);
}

TEST(StaticMappingTest, FindsEmbeddingWhenOneExists)
{
    // GHZ interacts along a chain: embeddable into any chain.
    ir::Circuit c = ir::ghz(4);
    const auto g = arch::grid(2, 2);
    const auto layout = findStaticMapping(c, g);
    ASSERT_TRUE(layout.has_value());
    for (const ir::Gate &gate : c.gates()) {
        if (gate.numQubits() != 2)
            continue;
        EXPECT_TRUE(g.adjacent(
            (*layout)[static_cast<size_t>(gate.qubit(0))],
            (*layout)[static_cast<size_t>(gate.qubit(1))]));
    }
}

TEST(StaticMappingTest, ReportsImpossibleEmbedding)
{
    // QFT needs all-to-all interaction: no embedding into a chain.
    ir::Circuit c = ir::qftSkeleton(4);
    EXPECT_FALSE(findStaticMapping(c, arch::lnn(4)).has_value());
}

TEST(StaticMappingTest, StarCircuitNeedsHighDegreeNode)
{
    // q0 interacts with 4 partners: needs a degree-4 vertex.
    ir::Circuit c(5);
    for (int i = 1; i < 5; ++i)
        c.addCX(0, i);
    EXPECT_FALSE(findStaticMapping(c, arch::lnn(5)).has_value());
    ASSERT_TRUE(findStaticMapping(c, arch::grid(3, 3)).has_value());
}

} // namespace
} // namespace toqm::core
