#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <vector>

#include "arch/architectures.hpp"

#include "ir/mapped_circuit.hpp"
#include "ir/generators.hpp"
#include "toqm/expander.hpp"
#include "toqm/filter.hpp"
#include "toqm/search_types.hpp"

namespace toqm::core {
namespace {

struct Fixture
{
    ir::Circuit circuit;
    arch::CouplingGraph graph;
    ir::LatencyModel latency;
    SearchContext ctx;
    NodePool pool;

    Fixture(ir::Circuit c, arch::CouplingGraph g, ir::LatencyModel lat)
        : circuit(std::move(c)), graph(std::move(g)),
          latency(lat), ctx(circuit, graph, latency), pool(ctx)
    {}
};

Fixture
cxChainFixture()
{
    ir::Circuit c(3);
    c.addCX(0, 1);
    c.addCX(1, 2);
    return Fixture(std::move(c), arch::lnn(3),
                   ir::LatencyModel::qftPreset());
}

TEST(ExpanderTest, ReadyGatesRespectCouplingAndDeps)
{
    Fixture f = cxChainFixture();
    Expander expander(f.ctx, f.pool);
    auto root = f.pool.root(ir::identityLayout(3), false);
    const auto ready = expander.readyGates(*root);
    // Only CX(0,1) is dependence-ready; CX(1,2) shares q1.
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0].gateIndex, 0);
    EXPECT_EQ(ready[0].p0, 0);
    EXPECT_EQ(ready[0].p1, 1);
}

TEST(ExpanderTest, NonAdjacentGateNotReady)
{
    ir::Circuit c(3);
    c.addCX(0, 2);
    Fixture f(std::move(c), arch::lnn(3),
              ir::LatencyModel::qftPreset());
    Expander expander(f.ctx, f.pool);
    auto root = f.pool.root(ir::identityLayout(3), false);
    EXPECT_TRUE(expander.readyGates(*root).empty());
}

TEST(ExpanderTest, CandidateSwapsAreIdleEdges)
{
    ir::Circuit c(3);
    c.addCX(0, 1);
    c.addCX(1, 2);
    ir::LatencyModel slow(1, 5, 3);
    arch::CouplingGraph g = arch::lnn(3);
    SearchContext ctx(c, g, slow);
    NodePool pool(ctx);
    Expander expander(ctx, pool);
    auto root = pool.root(ir::identityLayout(3), false);
    EXPECT_EQ(expander.candidateSwaps(*root).size(), 2u);

    // CX(0,1) occupies qubits 0 and 1 through cycle 5: every edge
    // touches a busy qubit on this 3-qubit chain.
    auto child = pool.expand(root, 1, {Action{0, 0, 1}});
    EXPECT_TRUE(expander.candidateSwaps(*child).empty());
}

TEST(ExpanderTest, CyclicSwapEliminated)
{
    Fixture f = cxChainFixture();
    Expander expander(f.ctx, f.pool);
    auto root = f.pool.root(ir::identityLayout(3), false);
    // swap(0,1) runs during cycle 1 (swap latency is 1 here); at
    // cycle 2 the identical swap must not be offered again.
    auto child =
        f.pool.expand(root, 1, {Action{-1, 0, 1}});
    const auto swaps = expander.candidateSwaps(*child);
    EXPECT_TRUE(std::none_of(swaps.begin(), swaps.end(),
                             [](const Action &a) {
                                 return a.p0 == 0 && a.p1 == 1;
                             }));
    // A different swap is still allowed.
    EXPECT_TRUE(std::any_of(swaps.begin(), swaps.end(),
                            [](const Action &a) {
                                return a.p0 == 1 && a.p1 == 2;
                            }));
}

TEST(ExpanderTest, SubsetsAreQubitDisjoint)
{
    ir::Circuit c(4);
    c.addCX(0, 1);
    c.addCX(2, 3);
    Fixture f(std::move(c), arch::lnn(4),
              ir::LatencyModel::qftPreset());
    Expander expander(f.ctx, f.pool);
    auto root = f.pool.root(ir::identityLayout(4), false);
    const auto expansion = expander.expand(root);
    for (const auto &child : expansion.children) {
        std::vector<int> used;
        for (const Action &a : child->actions) {
            used.push_back(a.p0);
            if (a.p1 >= 0)
                used.push_back(a.p1);
        }
        std::sort(used.begin(), used.end());
        EXPECT_TRUE(std::adjacent_find(used.begin(), used.end()) ==
                    used.end());
    }
}

TEST(ExpanderTest, WaitChildJumpsToNextCompletion)
{
    Fixture f = cxChainFixture();
    ir::LatencyModel slow(1, 5, 6);
    SearchContext ctx(f.circuit, f.graph, slow);
    NodePool pool(ctx);
    Expander expander(ctx, pool);
    auto root = pool.root(ir::identityLayout(3), false);
    auto child = pool.expand(root, 1, {Action{0, 0, 1}});
    const auto expansion = expander.expand(child);
    ASSERT_TRUE(expansion.waitChild);
    EXPECT_EQ(expansion.waitChild->cycle, 5); // gate busy through 5
    EXPECT_TRUE(expansion.waitChild->actions.empty());
}

TEST(ExpanderTest, ConstrainedModeNeverMixes)
{
    Fixture f = cxChainFixture();
    ExpanderConfig cfg;
    cfg.allowConcurrentSwapAndGate = false;
    Expander expander(f.ctx, f.pool, cfg);
    auto root = f.pool.root(ir::identityLayout(3), false);
    const auto expansion = expander.expand(root);
    for (const auto &child : expansion.children) {
        bool has_gate = false, has_swap = false;
        for (const Action &a : child->actions) {
            has_gate |= !a.isSwap();
            has_swap |= a.isSwap();
        }
        EXPECT_FALSE(has_gate && has_swap);
    }
}

TEST(ExpanderTest, RedundantDelayedStartPruned)
{
    // CX(0,1) was startable at cycle 1 alongside swap(2,3); a child
    // of the swap-only node that starts ONLY the delayed CX at cycle
    // 2 is redundant (an earlier sibling covers it) and pruned.
    ir::Circuit c(4);
    c.addCX(0, 1);
    Fixture f(std::move(c), arch::lnn(4),
              ir::LatencyModel::qftPreset());
    Expander expander(f.ctx, f.pool);
    auto root = f.pool.root(ir::identityLayout(4), false);
    auto swap_only =
        f.pool.expand(root, 1, {Action{-1, 2, 3}});
    const auto expansion = expander.expand(swap_only);
    for (const auto &child : expansion.children) {
        bool only_the_gate =
            child->actions.size() == 1 &&
            !child->actions[0].isSwap() && child->actions[0].p0 == 0;
        EXPECT_FALSE(only_the_gate)
            << "redundant delayed gate start kept";
    }

    // With redundancy elimination disabled (ablation), it IS kept.
    ExpanderConfig cfg;
    cfg.useRedundancyElimination = false;
    Expander no_prune(f.ctx, f.pool, cfg);
    const auto raw = no_prune.expand(swap_only);
    bool found = false;
    for (const auto &child : raw.children) {
        found |= child->actions.size() == 1 &&
                 !child->actions[0].isSwap() &&
                 child->actions[0].p0 == 0;
    }
    EXPECT_TRUE(found);
}

TEST(FilterTest, DropsExactDuplicates)
{
    Fixture f = cxChainFixture();
    auto root = f.pool.root(ir::identityLayout(3), false);
    auto a = f.pool.expand(root, 1, {Action{0, 0, 1}});
    auto b = f.pool.expand(root, 1, {Action{0, 0, 1}});
    Filter filter;
    EXPECT_TRUE(filter.admit(a));
    EXPECT_FALSE(filter.admit(b));
    EXPECT_EQ(filter.dropped(), 1u);
}

TEST(FilterTest, KeepsDifferentMappings)
{
    Fixture f = cxChainFixture();
    auto root = f.pool.root(ir::identityLayout(3), false);
    auto a = f.pool.expand(root, 1, {Action{-1, 0, 1}});
    auto b = f.pool.expand(root, 1, {Action{-1, 1, 2}});
    Filter filter;
    EXPECT_TRUE(filter.admit(a));
    EXPECT_TRUE(filter.admit(b));
}

TEST(FilterTest, DominatedNodeDropped)
{
    // Same mapping, same progress, but B is one cycle later.
    Fixture f = cxChainFixture();
    auto root = f.pool.root(ir::identityLayout(3), false);
    auto a = f.pool.expand(root, 1, {Action{0, 0, 1}});
    auto wait = f.pool.expand(root, 1, {});
    auto b = f.pool.expand(wait, 2, {Action{0, 0, 1}});
    Filter filter;
    EXPECT_TRUE(filter.admit(a));
    EXPECT_FALSE(filter.admit(b));
}

TEST(FilterTest, NewcomerKillsDominatedEntry)
{
    Fixture f = cxChainFixture();
    auto root = f.pool.root(ir::identityLayout(3), false);
    auto wait = f.pool.expand(root, 1, {});
    auto late = f.pool.expand(wait, 2, {Action{0, 0, 1}});
    auto early = f.pool.expand(root, 1, {Action{0, 0, 1}});
    Filter filter;
    EXPECT_TRUE(filter.admit(late));
    EXPECT_TRUE(filter.admit(early));
    EXPECT_TRUE(late->dead);
    EXPECT_EQ(filter.killed(), 1u);
}

TEST(FilterTest, ExemptNodesAreRecordedButNeverDropped)
{
    Fixture f = cxChainFixture();
    auto root = f.pool.root(ir::identityLayout(3), false);
    auto a = f.pool.expand(root, 1, {Action{0, 0, 1}});
    auto wait_b = f.pool.expand(a, 2, {});
    Filter filter;
    EXPECT_TRUE(filter.admit(a));
    // wait_b equals a except for its cycle: dominated, but exempt.
    EXPECT_TRUE(filter.admit(wait_b, /*exempt=*/true));
}

TEST(FilterTest, KilledEntryReleasedEagerly)
{
    // A killed entry must release its NodeRef the moment the
    // dominating newcomer lands, not at the next rehash/clear —
    // that's what lets the pool recycle dominated chains while the
    // search is still running (peak_pool_bytes drops).
    Fixture f = cxChainFixture();
    auto root = f.pool.root(ir::identityLayout(3), false);
    Filter filter;
    const auto live_before = f.pool.liveNodes();
    {
        auto wait = f.pool.expand(root, 1, {});
        auto late = f.pool.expand(wait, 2, {Action{0, 0, 1}});
        EXPECT_TRUE(filter.admit(late));
        EXPECT_EQ(filter.size(), 1u);
    }
    // The filter now holds the only reference to the late chain.
    const auto live_with_late = f.pool.liveNodes();
    EXPECT_GT(live_with_late, live_before);

    auto early = f.pool.expand(root, 1, {Action{0, 0, 1}});
    EXPECT_TRUE(filter.admit(early));
    EXPECT_EQ(filter.killed(), 1u);
    EXPECT_EQ(filter.size(), 1u); // late erased, early stored
    // The dominated chain (late + its wait parent) was recycled
    // immediately, with the filter still alive and populated.
    EXPECT_LT(f.pool.liveNodes(), live_with_late);
}

TEST(FilterTest, TableGrowsAndKeepsEveryEntry)
{
    // Push the table through several grow() rehashes and verify no
    // entry is lost or spuriously dropped: distinct mappings stay
    // admitted, and re-admitting any of them is caught as a
    // duplicate afterwards.
    ir::Circuit c = ir::qftSkeleton(6);
    Fixture f(std::move(c), arch::lnn(6),
              ir::LatencyModel::qftPreset());
    Expander expander(f.ctx, f.pool);
    Filter filter;
    std::vector<NodeRef> nodes;
    std::deque<NodeRef> frontier{
        f.pool.root(ir::identityLayout(6), false)};
    while (!frontier.empty() && nodes.size() < 300) {
        NodeRef node = frontier.front();
        frontier.pop_front();
        if (filter.admit(node))
            nodes.push_back(node);
        auto expansion = expander.expand(node);
        for (auto &child : expansion.children)
            frontier.push_back(std::move(child));
    }
    ASSERT_GE(nodes.size(), 300u);
    // Every successful admit stored one entry; kills erased some
    // again (each kill is an erase paired with the killer's store).
    EXPECT_EQ(filter.size() + filter.killed(), nodes.size());
    // Capacity is a power of two and the load factor stays <= 3/4.
    EXPECT_EQ(filter.capacity() & (filter.capacity() - 1), 0u);
    EXPECT_LE(filter.size() * 4, filter.capacity() * 3);
    // Every stored node is findable after all those rehashes: a
    // second admit of the identical node must be dominated-dropped.
    const auto dropped_before = filter.dropped();
    for (const auto &n : nodes)
        EXPECT_FALSE(filter.admit(n));
    EXPECT_EQ(filter.dropped(), dropped_before + nodes.size());
}

TEST(FilterTest, ClearResetsTable)
{
    Fixture f = cxChainFixture();
    auto root = f.pool.root(ir::identityLayout(3), false);
    auto a = f.pool.expand(root, 1, {Action{0, 0, 1}});
    auto b = f.pool.expand(root, 1, {Action{0, 0, 1}});
    Filter filter;
    EXPECT_TRUE(filter.admit(a));
    filter.clear();
    EXPECT_TRUE(filter.admit(b));
}

TEST(SearchNodeTest, ExpandTracksState)
{
    Fixture f = cxChainFixture();
    auto root = f.pool.root(ir::identityLayout(3), false);

    auto gate_child =
        f.pool.expand(root, 1, {Action{0, 0, 1}});
    EXPECT_EQ(gate_child->scheduledGates, 1);
    EXPECT_EQ(gate_child->head()[0], 1);
    EXPECT_EQ(gate_child->head()[1], 1);
    EXPECT_EQ(gate_child->busyUntil()[0], 1);
    EXPECT_EQ(gate_child->costG, 1);

    auto swap_child =
        f.pool.expand(root, 1, {Action{-1, 1, 2}});
    // Post-swap mapping applied immediately.
    EXPECT_EQ(swap_child->log2phys()[1], 2);
    EXPECT_EQ(swap_child->log2phys()[2], 1);
    EXPECT_EQ(swap_child->phys2log()[1], 2);
    EXPECT_EQ(swap_child->lastSwapPartner()[1], 2);
    EXPECT_EQ(swap_child->busyUntil()[1], 1); // swap latency 1 here
}

TEST(SearchNodeTest, MakespanIsMaxBusy)
{
    Fixture f = cxChainFixture();
    ir::LatencyModel lat(1, 4, 6);
    SearchContext ctx(f.circuit, f.graph, lat);
    NodePool pool(ctx);
    auto root = pool.root(ir::identityLayout(3), false);
    auto child = pool.expand(root, 1, {Action{0, 0, 1}});
    EXPECT_EQ(child->makespan(), 4);
}

} // namespace
} // namespace toqm::core
