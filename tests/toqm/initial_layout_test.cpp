#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "ir/mapped_circuit.hpp"
#include "toqm/initial_layout.hpp"

namespace toqm::core {
namespace {

TEST(InteractionWeightsTest, CountsPairsSymmetrically)
{
    ir::Circuit c(3);
    c.addCX(0, 1);
    c.addCX(0, 1);
    c.addCX(1, 2);
    const auto w = interactionWeights(c, /*decay=*/1.0);
    EXPECT_DOUBLE_EQ(w[0][1], 2.0);
    EXPECT_DOUBLE_EQ(w[1][0], 2.0);
    EXPECT_DOUBLE_EQ(w[1][2], 1.0);
    EXPECT_DOUBLE_EQ(w[0][2], 0.0);
}

TEST(InteractionWeightsTest, DecayFavorsEarlyGates)
{
    ir::Circuit c(3);
    c.addCX(0, 1); // first
    c.addCX(1, 2); // later
    const auto w = interactionWeights(c, 0.5);
    EXPECT_GT(w[0][1], w[1][2]);
}

TEST(LayoutCostTest, AdjacencyIsCheapest)
{
    ir::Circuit c(2);
    c.addCX(0, 1);
    const auto w = interactionWeights(c, 1.0);
    const auto g = arch::lnn(4);
    EXPECT_LT(layoutCost(w, g, {0, 1}), layoutCost(w, g, {0, 3}));
}

TEST(GreedyLayoutTest, ProducesInjectiveLayout)
{
    const ir::Circuit c = ir::benchmarkStandIn("greedy", 10, 300);
    const auto g = arch::ibmQ20Tokyo();
    const auto layout = greedyLayout(c, g);
    EXPECT_TRUE(ir::isInjectiveLayout(layout, g.numQubits()));
}

TEST(GreedyLayoutTest, PairCircuitPlacesPartnersAdjacent)
{
    ir::Circuit c(4);
    c.addCX(0, 1);
    c.addCX(2, 3);
    const auto g = arch::ibmQ20Tokyo();
    const auto layout = greedyLayout(c, g);
    EXPECT_EQ(g.distance(layout[0], layout[1]), 1);
    EXPECT_EQ(g.distance(layout[2], layout[3]), 1);
}

TEST(AnnealedLayoutTest, NeverWorseThanGreedySeed)
{
    const ir::Circuit c = ir::benchmarkStandIn("anneal", 12, 600);
    const auto g = arch::ibmQ20Tokyo();
    const auto w = interactionWeights(c);
    const double greedy_cost = layoutCost(w, g, greedyLayout(c, g));
    AnnealConfig cfg;
    cfg.iterations = 5000;
    const double annealed_cost =
        layoutCost(w, g, annealedLayout(c, g, cfg));
    EXPECT_LE(annealed_cost, greedy_cost + 1e-9);
}

TEST(AnnealedLayoutTest, DeterministicGivenSeed)
{
    const ir::Circuit c = ir::benchmarkStandIn("anneal_det", 8, 200);
    const auto g = arch::ibmQ20Tokyo();
    AnnealConfig cfg;
    cfg.iterations = 2000;
    EXPECT_EQ(annealedLayout(c, g, cfg), annealedLayout(c, g, cfg));
}

TEST(AnnealedLayoutTest, InjectiveOnTightDevice)
{
    // As many logical as physical qubits.
    const ir::Circuit c = ir::qftSkeleton(6);
    const auto g = arch::grid(2, 3);
    const auto layout = annealedLayout(c, g);
    EXPECT_TRUE(ir::isInjectiveLayout(layout, g.numQubits()));
}

TEST(AnnealedLayoutTest, SeedImprovesHeuristicMapperOnAverage)
{
    // Using the annealed layout as the heuristic mapper's seed must
    // not lose badly to on-the-fly placement across seeds (it
    // usually wins; allow slack for the odd case).
    const auto g = arch::ibmQ20Tokyo();
    long on_the_fly = 0, seeded = 0;
    for (std::uint64_t s : {1u, 2u, 3u}) {
        const ir::Circuit c = ir::randomCircuit(10, 400, 0.45, s, 0.5);
        heuristic::HeuristicMapper mapper(g);
        const auto plain = mapper.map(c);
        const auto with_seed = mapper.map(c, annealedLayout(c, g));
        ASSERT_TRUE(plain.success && with_seed.success);
        on_the_fly += plain.cycles;
        seeded += with_seed.cycles;
    }
    EXPECT_LT(seeded, static_cast<long>(1.15 * on_the_fly));
}

} // namespace
} // namespace toqm::core
