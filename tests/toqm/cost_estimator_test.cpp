#include <gtest/gtest.h>

#include "arch/architectures.hpp"

#include "ir/mapped_circuit.hpp"
#include "ir/generators.hpp"
#include "toqm/cost_estimator.hpp"
#include "toqm/expander.hpp"
#include "toqm/search_types.hpp"

namespace toqm::core {
namespace {

TEST(CostEstimatorTest, EmptyCircuitCostsNothing)
{
    ir::Circuit c(2, "empty");
    const auto g = arch::lnn(2);
    const ir::LatencyModel lat = ir::LatencyModel::qftPreset();
    SearchContext ctx(c, g, lat);
    CostEstimator est(ctx);
    NodePool pool(ctx);
    auto root = pool.root(ir::identityLayout(2), false);
    EXPECT_EQ(est.estimate(*root), 0);
}

TEST(CostEstimatorTest, AdjacentGateCostsItsLatency)
{
    ir::Circuit c(2);
    c.addCX(0, 1);
    const auto g = arch::lnn(2);
    const ir::LatencyModel lat = ir::LatencyModel::ibmPreset();
    SearchContext ctx(c, g, lat);
    CostEstimator est(ctx);
    NodePool pool(ctx);
    auto root = pool.root(ir::identityLayout(2), false);
    EXPECT_EQ(est.estimate(*root), 2);
}

TEST(CostEstimatorTest, DistantGateChargedForSwaps)
{
    // d = 3 on LNN-4: at least 2 swaps with no slack anywhere, split
    // (1,1) -> delay = 1 * swapLatency.
    ir::Circuit c(4);
    c.addCX(0, 3);
    const auto g = arch::lnn(4);
    const ir::LatencyModel lat(1, 2, 6);
    SearchContext ctx(c, g, lat);
    CostEstimator est(ctx);
    NodePool pool(ctx);
    auto root = pool.root(ir::identityLayout(4), false);
    EXPECT_EQ(est.estimate(*root), 6 + 2);
}

/**
 * The Fig 8 example, transcribed to 0-based qubits on LNN-5:
 * paper q_i == our q_{i-1}, paper Q_i == our Q_{i-1}.
 *
 * Circuit: g1 = 1q(q0); g2 = 1q(q0); -- wait, see body; gates below
 * follow the dependency structure of Fig 7/8: g3, g4 on (q1, q2);
 * g5 on (q1, q4); g6 on (q0, q1).  Node F has executed g1 (1 cycle)
 * and started swap(Q3, Q4) at cycle 1.  Expected f(F) = 8.
 */
TEST(CostEstimatorTest, PaperFig8NodeFCostsEight)
{
    ir::Circuit c(5);
    c.add(ir::Gate(ir::GateKind::H, 0)); // g1
    c.add(ir::Gate(ir::GateKind::T, 0)); // g2
    c.addCX(1, 2);                       // g3
    c.addCX(1, 2);                       // g4
    c.addCX(1, 4);                       // g5
    c.addCX(0, 1);                       // g6
    const auto g = arch::lnn(5);
    ir::LatencyModel lat(1, 1, 3); // originals 1 cycle, swap 3
    SearchContext ctx(c, g, lat);
    CostEstimator est(ctx);
    NodePool pool(ctx);
    Expander expander(ctx, pool);

    auto root = pool.root(ir::identityLayout(5), false);
    // Schedule g1 (gate 0) and swap(Q3, Q4) at cycle 1.
    std::vector<Action> actions;
    actions.push_back({0, 0, -1});
    actions.push_back({-1, 3, 4});
    auto node_f = pool.expand(root, 1, actions);

    EXPECT_EQ(node_f->cycle, 1);
    const int h = est.estimate(*node_f);
    EXPECT_EQ(h, 7);                    // t_min(g6)=6, len 1
    EXPECT_EQ(node_f->costG + h, 8);    // the paper's f(F)
}

/**
 * The Fig 9 "common fallacy": two qubits at distance 5, the first
 * with 4 cycles of preceding work.  Splitting the 4 required swaps
 * (1, 3) exploits the slack and yields a 6-cycle start for the gate;
 * the midpoint split (2, 2) would give 8.  h must find 6 + 1.
 */
TEST(CostEstimatorTest, PaperFig9SlackAwareSplit)
{
    ir::Circuit c(6);
    for (int i = 0; i < 4; ++i)
        c.add(ir::Gate(ir::GateKind::T, 0));
    c.addCX(0, 5);
    const auto g = arch::lnn(6);
    ir::LatencyModel lat(1, 1, 2); // swap = 2 cycles as in Fig 9
    SearchContext ctx(c, g, lat);
    CostEstimator est(ctx);
    NodePool pool(ctx);
    auto root = pool.root(ir::identityLayout(6), false);
    EXPECT_EQ(est.estimate(*root), 7);
}

TEST(CostEstimatorTest, ActiveGatesContributeRemainingTime)
{
    ir::Circuit c(2);
    c.addCX(0, 1);
    const auto g = arch::lnn(2);
    const ir::LatencyModel lat(1, 4, 6);
    SearchContext ctx(c, g, lat);
    CostEstimator est(ctx);
    NodePool pool(ctx);
    auto root = pool.root(ir::identityLayout(2), false);
    std::vector<Action> actions{{0, 0, 1}};
    auto node = pool.expand(root, 1, actions);
    // Gate runs cycles 1..4; at node cycle 1, 3 cycles remain.
    node->costH = est.estimate(*node);
    EXPECT_EQ(node->costH, 3);
    EXPECT_EQ(node->f(), 4);
}

TEST(CostEstimatorTest, NeverOverestimatesOnLowerBoundCheck)
{
    // h(root) must never exceed a known ACHIEVABLE makespan (the
    // optimum for n=4 and n=6, measured by the optimal mapper; the
    // 4n-7 butterfly depth for n=5).
    struct Case
    {
        int n;
        int optimal;
    };
    const Case cases[] = {{4, 8}, {5, 13}, {6, 17}};
    for (const Case &k : cases) {
        ir::Circuit c = ir::qftSkeleton(k.n);
        const auto g = arch::lnn(k.n);
        const ir::LatencyModel lat = ir::LatencyModel::qftPreset();
        SearchContext ctx(c, g, lat);
        CostEstimator est(ctx);
        NodePool pool(ctx);
        auto root = pool.root(ir::identityLayout(k.n), false);
        EXPECT_LE(est.estimate(*root), k.optimal) << "n=" << k.n;
        EXPECT_GE(est.estimate(*root), 2 * k.n - 3) << "n=" << k.n;
    }
}

TEST(CostEstimatorTest, HorizonBoundStaysAdmissible)
{
    ir::Circuit c = ir::qftSkeleton(6);
    const auto g = arch::lnn(6);
    const ir::LatencyModel lat = ir::LatencyModel::qftPreset();
    SearchContext ctx(c, g, lat);
    CostEstimator full(ctx, -1);
    CostEstimator windowed(ctx, 3);
    NodePool pool(ctx);
    auto root = pool.root(ir::identityLayout(6), false);
    EXPECT_LE(windowed.estimate(*root), full.estimate(*root));
}

TEST(CostEstimatorTest, UnmappedQubitsAreOptimistic)
{
    ir::Circuit c(3);
    c.addCX(0, 2);
    const auto g = arch::lnn(3);
    const ir::LatencyModel lat = ir::LatencyModel::ibmPreset();
    SearchContext ctx(c, g, lat);
    CostEstimator est(ctx);
    NodePool pool(ctx);
    // No layout at all: distance treated as 1 (admissible).
    auto root = pool.root({}, false);
    EXPECT_EQ(est.estimate(*root), 2);
}

} // namespace
} // namespace toqm::core
