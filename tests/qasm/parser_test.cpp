#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "qasm/parser.hpp"

namespace toqm::qasm {
namespace {

constexpr const char *header = "OPENQASM 2.0;\n";

TEST(ParserTest, HeaderAndRegisters)
{
    const Program p =
        parseString(std::string(header) + "qreg q[3]; creg c[3];");
    EXPECT_EQ(p.version, "2.0");
    ASSERT_EQ(p.qregs.size(), 1u);
    EXPECT_EQ(p.qregs[0].name, "q");
    EXPECT_EQ(p.qregs[0].size, 3);
    ASSERT_EQ(p.cregs.size(), 1u);
    EXPECT_EQ(p.totalQubits(), 3);
}

TEST(ParserTest, MissingHeaderThrows)
{
    EXPECT_THROW(parseString("qreg q[1];"), ParseError);
}

TEST(ParserTest, MultipleQregsFlatten)
{
    const Program p =
        parseString(std::string(header) + "qreg a[2]; qreg b[3];");
    EXPECT_EQ(p.totalQubits(), 5);
    EXPECT_EQ(p.qubitOffset("a", 1), 1);
    EXPECT_EQ(p.qubitOffset("b", 0), 2);
    EXPECT_THROW(p.qubitOffset("b", 3), std::out_of_range);
    EXPECT_THROW(p.qubitOffset("z", 0), std::out_of_range);
}

TEST(ParserTest, BuiltinUAndCx)
{
    const Program p = parseString(
        std::string(header) +
        "qreg q[2]; U(pi/2, 0, pi) q[0]; CX q[0], q[1];");
    ASSERT_EQ(p.statements.size(), 2u);
    EXPECT_EQ(p.statements[0].name, "U");
    ASSERT_EQ(p.statements[0].params.size(), 3u);
    EXPECT_NEAR(p.statements[0].params[0]->eval({}),
                std::numbers::pi / 2, 1e-12);
    EXPECT_EQ(p.statements[1].name, "CX");
}

TEST(ParserTest, GateDeclarationAndUse)
{
    const Program p = parseString(
        std::string(header) +
        "gate mygate(theta) a, b { U(theta,0,0) a; CX a, b; }\n"
        "qreg q[2]; mygate(0.5) q[0], q[1];");
    ASSERT_EQ(p.gates.count("mygate"), 1u);
    const GateDecl &decl = p.gates.at("mygate");
    EXPECT_EQ(decl.params, (std::vector<std::string>{"theta"}));
    EXPECT_EQ(decl.qargs, (std::vector<std::string>{"a", "b"}));
    ASSERT_EQ(decl.body.size(), 2u);
    EXPECT_EQ(decl.body[0].name, "U");
    EXPECT_EQ(decl.body[1].name, "CX");
}

TEST(ParserTest, UndeclaredGateThrows)
{
    EXPECT_THROW(parseString(std::string(header) +
                             "qreg q[1]; notagate q[0];"),
                 ParseError);
}

TEST(ParserTest, ArityMismatchThrows)
{
    const std::string decl =
        std::string(header) + "gate g2 a, b { CX a, b; }\nqreg q[2];\n";
    EXPECT_THROW(parseString(decl + "g2 q[0];"), ParseError);
    EXPECT_THROW(parseString(decl + "g2(1.0) q[0], q[1];"), ParseError);
}

TEST(ParserTest, GateBodyUnknownQubitThrows)
{
    EXPECT_THROW(parseString(std::string(header) +
                             "gate g a { U(0,0,0) b; }"),
                 ParseError);
}

TEST(ParserTest, IncludeQelibProvidesStandardGates)
{
    const Program p = parseString(std::string(header) +
                                  "include \"qelib1.inc\";\n"
                                  "qreg q[3]; h q[0]; ccx q[0], "
                                  "q[1], q[2];");
    EXPECT_GT(p.gates.size(), 20u);
    EXPECT_EQ(p.statements.back().name, "ccx");
}

TEST(ParserTest, MeasureAndReset)
{
    const Program p = parseString(std::string(header) +
                                  "qreg q[2]; creg c[2];\n"
                                  "measure q[0] -> c[1]; reset q[1];");
    EXPECT_EQ(p.statements[0].kind, StmtKind::Measure);
    EXPECT_EQ(p.statements[0].measureTarget.reg, "c");
    EXPECT_EQ(p.statements[0].measureTarget.index, 1);
    EXPECT_EQ(p.statements[1].kind, StmtKind::Reset);
}

TEST(ParserTest, BarrierStatement)
{
    const Program p = parseString(std::string(header) +
                                  "qreg q[3]; barrier q[0], q[2];");
    EXPECT_EQ(p.statements[0].kind, StmtKind::Barrier);
    EXPECT_EQ(p.statements[0].args.size(), 2u);
}

TEST(ParserTest, ConditionalStatement)
{
    const Program p = parseString(std::string(header) +
                                  "include \"qelib1.inc\";\n"
                                  "qreg q[1]; creg c[1];\n"
                                  "if (c == 1) x q[0];");
    EXPECT_TRUE(p.statements[0].conditional);
    EXPECT_EQ(p.statements[0].condReg, "c");
    EXPECT_EQ(p.statements[0].condValue, 1);
}

TEST(ParserTest, ExpressionPrecedence)
{
    const Program p = parseString(
        std::string(header) +
        "qreg q[1]; U(1 + 2 * 3, 2 ^ 3 ^ 2, -(4 - 1) / 3) q[0];");
    const auto &params = p.statements[0].params;
    EXPECT_DOUBLE_EQ(params[0]->eval({}), 7.0);
    EXPECT_DOUBLE_EQ(params[1]->eval({}), 512.0); // right assoc
    EXPECT_DOUBLE_EQ(params[2]->eval({}), -1.0);
}

TEST(ParserTest, ExpressionFunctions)
{
    const Program p = parseString(
        std::string(header) +
        "qreg q[1]; U(sin(pi/2), cos(0), sqrt(16)) q[0];");
    const auto &params = p.statements[0].params;
    EXPECT_NEAR(params[0]->eval({}), 1.0, 1e-12);
    EXPECT_NEAR(params[1]->eval({}), 1.0, 1e-12);
    EXPECT_NEAR(params[2]->eval({}), 4.0, 1e-12);
}

TEST(ParserTest, OpaqueDeclaration)
{
    const Program p = parseString(std::string(header) +
                                  "opaque blackbox(alpha) a, b;\n"
                                  "qreg q[2]; blackbox(1.0) q[0], "
                                  "q[1];");
    EXPECT_TRUE(p.gates.at("blackbox").opaque);
}

TEST(ParserTest, WholeRegisterArgument)
{
    const Program p = parseString(std::string(header) +
                                  "include \"qelib1.inc\";\n"
                                  "qreg q[4]; h q;");
    EXPECT_EQ(p.statements[0].args[0].index, -1);
}

TEST(ParserTest, ErrorPositionsAreReported)
{
    try {
        parseString(std::string(header) + "qreg q[;");
        FAIL() << "expected ParseError";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.line(), 2);
        EXPECT_NE(std::string(e.what()).find("qasm:2:"),
                  std::string::npos);
    }
}

} // namespace
} // namespace toqm::qasm
