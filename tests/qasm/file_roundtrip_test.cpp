#include <gtest/gtest.h>

#include <string>

#include "arch/architectures.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "qasm/importer.hpp"
#include "qasm/writer.hpp"
#include "sim/statevector.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

namespace toqm::qasm {
namespace {

/** Directory injected by CMake (TOQM_BENCHMARK_DIR). */
std::string
benchmarkDir()
{
#ifdef TOQM_BENCHMARK_DIR
    return TOQM_BENCHMARK_DIR;
#else
    return "benchmarks/qasm";
#endif
}

class QasmFile : public ::testing::TestWithParam<const char *>
{
};

TEST_P(QasmFile, ParsesLowersAndRoundTrips)
{
    const std::string path =
        benchmarkDir() + "/" + GetParam() + ".qasm";
    const auto imported = importFile(path);
    EXPECT_GT(imported.circuit.size(), 0);

    // Writer output must re-import to the same gate sequence
    // (measures are re-emitted against a canonical creg).
    const auto reparsed = importString(writeCircuit(imported.circuit));
    EXPECT_EQ(reparsed.circuit.numComputeGates(),
              imported.circuit.numComputeGates());
}

TEST_P(QasmFile, MapsOntoTokyoAndVerifies)
{
    const std::string path =
        benchmarkDir() + "/" + GetParam() + ".qasm";
    const auto imported = importFile(path);
    const auto device = arch::ibmQ20Tokyo();
    heuristic::HeuristicMapper mapper(device);
    const auto res = mapper.map(imported.circuit);
    ASSERT_TRUE(res.success);
    const auto verdict =
        sim::verifyMapping(imported.circuit, res.mapped, device);
    EXPECT_TRUE(verdict.ok) << verdict.message;
}

INSTANTIATE_TEST_SUITE_P(Files, QasmFile,
                         ::testing::Values("bell", "qft4",
                                           "toffoli_chain", "adder2",
                                           "ghz5_with_gate"));

TEST(QasmFileTest, Qft4FileMatchesGeneratedQft)
{
    const auto imported =
        importFile(benchmarkDir() + "/qft4.qasm");
    sim::StateVector from_file(4, 5);
    from_file.run(imported.circuit);
    sim::StateVector generated(4, 5);
    generated.run(ir::qftConcrete(4));
    EXPECT_GT(from_file.overlap(generated), 1.0 - 1e-9);
}

TEST(QasmFileTest, MissingFileThrows)
{
    EXPECT_THROW(importFile(benchmarkDir() + "/nonexistent.qasm"),
                 std::runtime_error);
}

TEST(QasmFileTest, Adder2ComputesCorrectSums)
{
    // The adder file computes b += a (2-bit) on basis states.
    const auto imported =
        importFile(benchmarkDir() + "/adder2.qasm");
    ASSERT_EQ(imported.circuit.numQubits(), 6);
    // Layout: a[0] a[1] b[0] b[1] cin cout (flattened order).
    for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
            const std::uint64_t basis =
                static_cast<std::uint64_t>(a) |
                (static_cast<std::uint64_t>(b) << 2);
            sim::StateVector sv(6, basis);
            sv.run(imported.circuit);
            const int sum = a + b;
            const std::uint64_t want =
                static_cast<std::uint64_t>(a) |
                (static_cast<std::uint64_t>(sum & 3) << 2) |
                (static_cast<std::uint64_t>(sum >> 2) << 5);
            EXPECT_NEAR(std::abs(sv.amplitude(want)), 1.0, 1e-9)
                << "a=" << a << " b=" << b;
        }
    }
}

} // namespace
} // namespace toqm::qasm
