#include <gtest/gtest.h>

#include "qasm/lexer.hpp"

namespace toqm::qasm {
namespace {

std::vector<TokenKind>
kinds(const std::string &src)
{
    std::vector<TokenKind> out;
    for (const Token &t : Lexer::tokenize(src))
        out.push_back(t.kind);
    return out;
}

TEST(LexerTest, Keywords)
{
    const auto k = kinds("OPENQASM qreg creg gate opaque barrier "
                         "measure reset if pi U CX include");
    const std::vector<TokenKind> want{
        TokenKind::KwOpenqasm, TokenKind::KwQreg, TokenKind::KwCreg,
        TokenKind::KwGate, TokenKind::KwOpaque, TokenKind::KwBarrier,
        TokenKind::KwMeasure, TokenKind::KwReset, TokenKind::KwIf,
        TokenKind::KwPi, TokenKind::KwU, TokenKind::KwCX,
        TokenKind::KwInclude, TokenKind::EndOfFile};
    EXPECT_EQ(k, want);
}

TEST(LexerTest, NumbersIntegerVsReal)
{
    const auto toks = Lexer::tokenize("42 3.14 1e-3 2.5E+2 7.");
    EXPECT_EQ(toks[0].kind, TokenKind::Integer);
    EXPECT_EQ(toks[0].text, "42");
    EXPECT_EQ(toks[1].kind, TokenKind::Real);
    EXPECT_EQ(toks[2].kind, TokenKind::Real);
    EXPECT_EQ(toks[3].kind, TokenKind::Real);
    EXPECT_EQ(toks[4].kind, TokenKind::Real);
}

TEST(LexerTest, MalformedExponentThrows)
{
    EXPECT_THROW(Lexer::tokenize("1e"), ParseError);
    EXPECT_THROW(Lexer::tokenize("1e+"), ParseError);
}

TEST(LexerTest, IdentifiersWithUnderscores)
{
    const auto toks = Lexer::tokenize("rd53_251 _x q0");
    EXPECT_EQ(toks[0].kind, TokenKind::Identifier);
    EXPECT_EQ(toks[0].text, "rd53_251");
    EXPECT_EQ(toks[1].text, "_x");
    EXPECT_EQ(toks[2].text, "q0");
}

TEST(LexerTest, PunctuationAndOperators)
{
    const auto k = kinds("( ) { } [ ] ; , -> == + - * / ^");
    const std::vector<TokenKind> want{
        TokenKind::LParen, TokenKind::RParen, TokenKind::LBrace,
        TokenKind::RBrace, TokenKind::LBracket, TokenKind::RBracket,
        TokenKind::Semicolon, TokenKind::Comma, TokenKind::Arrow,
        TokenKind::Equals, TokenKind::Plus, TokenKind::Minus,
        TokenKind::Star, TokenKind::Slash, TokenKind::Caret,
        TokenKind::EndOfFile};
    EXPECT_EQ(k, want);
}

TEST(LexerTest, CommentsAreSkipped)
{
    const auto toks = Lexer::tokenize("qreg // a comment\nq[2];");
    EXPECT_EQ(toks[0].kind, TokenKind::KwQreg);
    EXPECT_EQ(toks[1].kind, TokenKind::Identifier);
}

TEST(LexerTest, StringLiteral)
{
    const auto toks = Lexer::tokenize("include \"qelib1.inc\";");
    EXPECT_EQ(toks[1].kind, TokenKind::String);
    EXPECT_EQ(toks[1].text, "qelib1.inc");
}

TEST(LexerTest, UnterminatedStringThrows)
{
    EXPECT_THROW(Lexer::tokenize("\"oops"), ParseError);
}

TEST(LexerTest, LineAndColumnTracking)
{
    const auto toks = Lexer::tokenize("qreg\n  q;");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[0].column, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[1].column, 3);
}

TEST(LexerTest, UnexpectedCharacterThrows)
{
    EXPECT_THROW(Lexer::tokenize("qreg @"), ParseError);
    EXPECT_THROW(Lexer::tokenize("a = b"), ParseError); // single '='
}

} // namespace
} // namespace toqm::qasm
