#include <gtest/gtest.h>

#include "ir/generators.hpp"
#include "qasm/importer.hpp"
#include "qasm/writer.hpp"
#include "sim/statevector.hpp"

namespace toqm::qasm {
namespace {

constexpr const char *header =
    "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

TEST(ImporterTest, NativeGatesImportDirectly)
{
    const auto r = importString(std::string(header) +
                                "qreg q[2]; h q[0]; cx q[0], q[1]; "
                                "rz(0.5) q[1];");
    ASSERT_EQ(r.circuit.size(), 3);
    EXPECT_EQ(r.circuit.gate(0).kind(), ir::GateKind::H);
    EXPECT_EQ(r.circuit.gate(1).kind(), ir::GateKind::CX);
    EXPECT_EQ(r.circuit.gate(2).kind(), ir::GateKind::RZ);
    EXPECT_DOUBLE_EQ(r.circuit.gate(2).params()[0], 0.5);
}

TEST(ImporterTest, CcxExpandsToOneAndTwoQubitGates)
{
    const auto r = importString(std::string(header) +
                                "qreg q[3]; ccx q[0], q[1], q[2];");
    EXPECT_GT(r.circuit.size(), 10);
    for (const ir::Gate &g : r.circuit.gates())
        EXPECT_LE(g.numQubits(), 2);
}

TEST(ImporterTest, UserGateMacroExpansion)
{
    const auto r = importString(
        std::string(header) +
        "gate bell a, b { h a; cx a, b; }\n"
        "qreg q[4]; bell q[2], q[3];");
    ASSERT_EQ(r.circuit.size(), 2);
    EXPECT_EQ(r.circuit.gate(0).qubit(0), 2);
    EXPECT_EQ(r.circuit.gate(1).qubit(0), 2);
    EXPECT_EQ(r.circuit.gate(1).qubit(1), 3);
}

TEST(ImporterTest, ParameterSubstitutionInMacros)
{
    const auto r = importString(
        std::string(header) +
        "gate twist(t) a { rz(t * 2) a; }\n"
        "qreg q[1]; twist(0.25) q[0];");
    ASSERT_EQ(r.circuit.size(), 1);
    EXPECT_DOUBLE_EQ(r.circuit.gate(0).params()[0], 0.5);
}

TEST(ImporterTest, BroadcastOverRegister)
{
    const auto r =
        importString(std::string(header) + "qreg q[3]; h q;");
    EXPECT_EQ(r.circuit.size(), 3);
}

TEST(ImporterTest, BroadcastCxElementwise)
{
    const auto r = importString(std::string(header) +
                                "qreg a[2]; qreg b[2]; cx a, b;");
    ASSERT_EQ(r.circuit.size(), 2);
    EXPECT_EQ(r.circuit.gate(0).qubit(0), 0);
    EXPECT_EQ(r.circuit.gate(0).qubit(1), 2);
    EXPECT_EQ(r.circuit.gate(1).qubit(0), 1);
    EXPECT_EQ(r.circuit.gate(1).qubit(1), 3);
}

TEST(ImporterTest, BroadcastSizeMismatchThrows)
{
    EXPECT_THROW(importString(std::string(header) +
                              "qreg a[2]; qreg b[3]; cx a, b;"),
                 std::runtime_error);
}

TEST(ImporterTest, MeasureTargetsRecorded)
{
    const auto r = importString(std::string(header) +
                                "qreg q[2]; creg c[2];\n"
                                "measure q -> c;");
    ASSERT_EQ(r.measures.size(), 2u);
    EXPECT_EQ(r.measures[0].creg, "c");
    EXPECT_EQ(r.circuit.gate(r.measures[0].gateIndex).kind(),
              ir::GateKind::Measure);
}

TEST(ImporterTest, ConditionalRejectedByDefault)
{
    const std::string src = std::string(header) +
                            "qreg q[1]; creg c[1]; if (c==1) x q[0];";
    EXPECT_THROW(importString(src), std::runtime_error);
    ImportOptions opts;
    opts.allowConditionals = true;
    EXPECT_NO_THROW(importString(src, opts));
}

TEST(ImporterTest, QubitNamesTrackRegisters)
{
    const auto r =
        importString(std::string(header) + "qreg a[1]; qreg b[2];");
    ASSERT_EQ(r.qubitNames.size(), 3u);
    EXPECT_EQ(r.qubitNames[0], "a[0]");
    EXPECT_EQ(r.qubitNames[2], "b[1]");
}

TEST(WriterTest, RoundTripPreservesCircuit)
{
    ir::Circuit c = ir::qftConcrete(4);
    const std::string text = writeCircuit(c);
    const auto r = importString(text);
    ASSERT_EQ(r.circuit.size(), c.size());
    for (int i = 0; i < c.size(); ++i) {
        EXPECT_EQ(r.circuit.gate(i).kind(), c.gate(i).kind());
        EXPECT_EQ(r.circuit.gate(i).qubits(), c.gate(i).qubits());
    }
}

TEST(WriterTest, RoundTripIsSemanticallyExact)
{
    ir::Circuit c = ir::qftConcrete(3);
    const auto r = importString(writeCircuit(c));
    sim::StateVector a(3), b(3);
    a.run(c);
    b.run(r.circuit);
    EXPECT_NEAR(a.overlap(b), 1.0, 1e-9);
}

TEST(WriterTest, MappedCircuitRecordsLayouts)
{
    ir::Circuit phys(3);
    phys.addSwap(0, 1);
    ir::MappedCircuit mapped(std::move(phys), {0, 1, 2},
                             {1, 0, 2});
    const std::string text = writeMappedCircuit(mapped);
    EXPECT_NE(text.find("initial layout"), std::string::npos);
    EXPECT_NE(text.find("q0->Q0"), std::string::npos);
    EXPECT_NE(text.find("final layout"), std::string::npos);
    EXPECT_NE(text.find("q0->Q1"), std::string::npos);
}

TEST(WriterTest, GtEmittedAsCz)
{
    ir::Circuit c(2);
    c.addGT(0, 1);
    const std::string text = writeCircuit(c);
    EXPECT_NE(text.find("cz q[0],q[1];"), std::string::npos);
    // And the output must re-parse.
    EXPECT_NO_THROW(importString(text));
}

} // namespace
} // namespace toqm::qasm
