#include <gtest/gtest.h>

#include <string>

#include "qasm/importer.hpp"
#include "sim/statevector.hpp"

namespace toqm::qasm {
namespace {

/**
 * Validate the built-in qelib1.inc DEFINITIONS against the native
 * gate unitaries: each parameter pairs a qelib gate's defining body
 * (wrapped in a user gate, exercising the macro-expansion and
 * parameter-substitution path) with the native gate it must equal,
 * on a non-trivial product state, up to global phase.
 */
class QelibSemantics
    : public ::testing::TestWithParam<std::pair<const char *,
                                                const char *>>
{
};

TEST_P(QelibSemantics, ExpansionMatchesNativeGate)
{
    const auto [body, native] = GetParam();
    const std::string header =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n";
    const std::string wrapped_src =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"
        "gate wrapped a, b { " + std::string(body) + " }\n"
        "qreg q[2];\nwrapped q[0], q[1];\n";
    const std::string native_src =
        header + std::string(native) + "\n";

    const auto wrapped = importString(wrapped_src);
    const auto direct = importString(native_src);

    sim::StateVector sa(2), sb(2);
    for (int q = 0; q < 2; ++q) {
        for (auto *sv : {&sa, &sb}) {
            sv->apply(ir::Gate(ir::GateKind::H, q));
            sv->apply(ir::Gate(ir::GateKind::T, q));
        }
    }
    sa.run(wrapped.circuit);
    sb.run(direct.circuit);
    EXPECT_GT(sa.overlap(sb), 1.0 - 1e-9)
        << "body: " << body << " vs native: " << native;
}

INSTANTIATE_TEST_SUITE_P(
    Gates, QelibSemantics,
    ::testing::Values(
        // 1-qubit gates: the qelib defining body vs the native kind.
        std::pair("u3(pi,0,pi) a;", "x q[0];"),
        std::pair("u3(pi,pi/2,pi/2) a;", "y q[0];"),
        std::pair("u1(pi) a;", "z q[0];"),
        std::pair("u2(0,pi) a;", "h q[0];"),
        std::pair("u1(pi/2) a;", "s q[0];"),
        std::pair("u1(-pi/2) a;", "sdg q[0];"),
        std::pair("u1(pi/4) a;", "t q[0];"),
        std::pair("u1(-pi/4) a;", "tdg q[0];"),
        std::pair("sdg a; h a; sdg a;", "sx q[0];"),
        std::pair("u3(0.7,-pi/2,pi/2) a;", "rx(0.7) q[0];"),
        std::pair("u3(0.7,0,0) a;", "ry(0.7) q[0];"),
        std::pair("u1(0.7) a;", "rz(0.7) q[0];"),
        // 2-qubit gates: decomposition vs native.
        std::pair("h b; cx a, b; h b;", "cz q[0], q[1];"),
        std::pair("cx a, b; cx b, a; cx a, b;", "swap q[0], q[1];"),
        std::pair("u1(0.35) a; cx a, b; u1(-0.35) b; cx a, b; "
                  "u1(0.35) b;",
                  "cp(0.7) q[0], q[1];"),
        std::pair("cx a, b; u1(0.7) b; cx a, b;",
                  "rzz(0.7) q[0], q[1];")));

/**
 * qelib macros without a native kind: check against their defining
 * identity instead.
 */
TEST(QelibSemanticsTest, CcxIsToffoliOnBasisStates)
{
    const std::string src =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n"
        "ccx q[0], q[1], q[2];\n";
    const auto imported = importString(src);
    for (std::uint64_t basis = 0; basis < 8; ++basis) {
        sim::StateVector sv(3, basis);
        sv.run(imported.circuit);
        const std::uint64_t want =
            (basis & 3) == 3 ? (basis ^ 4) : basis;
        EXPECT_NEAR(std::abs(sv.amplitude(want)), 1.0, 1e-9)
            << "basis " << basis;
    }
}

TEST(QelibSemanticsTest, CswapIsFredkin)
{
    const std::string src =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n"
        "cswap q[0], q[1], q[2];\n";
    const auto imported = importString(src);
    for (std::uint64_t basis = 0; basis < 8; ++basis) {
        sim::StateVector sv(3, basis);
        sv.run(imported.circuit);
        std::uint64_t want = basis;
        if (basis & 1) {
            const std::uint64_t b1 = (basis >> 1) & 1;
            const std::uint64_t b2 = (basis >> 2) & 1;
            want = (basis & 1) | (b2 << 1) | (b1 << 2);
        }
        EXPECT_NEAR(std::abs(sv.amplitude(want)), 1.0, 1e-9)
            << "basis " << basis;
    }
}

TEST(QelibSemanticsTest, ChIsControlledHadamard)
{
    const std::string src =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n"
        "ch q[0], q[1];\n";
    const auto imported = importString(src);
    // Control off: identity.
    {
        sim::StateVector sv(2, 0b00);
        sv.run(imported.circuit);
        EXPECT_NEAR(std::abs(sv.amplitude(0b00)), 1.0, 1e-9);
    }
    // Control on: H on the target.
    {
        sim::StateVector sv(2, 0b01);
        sv.run(imported.circuit);
        EXPECT_NEAR(std::abs(sv.amplitude(0b01)), 1.0 / std::sqrt(2.0),
                    1e-9);
        EXPECT_NEAR(std::abs(sv.amplitude(0b11)), 1.0 / std::sqrt(2.0),
                    1e-9);
    }
}

TEST(QelibSemanticsTest, CrzPhasesOnlyWithControlOn)
{
    const std::string src =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n"
        "crz(1.1) q[0], q[1];\n";
    const auto imported = importString(src);
    sim::StateVector off(2, 0b10); // target 1, control 0
    off.run(imported.circuit);
    EXPECT_NEAR(off.amplitude(0b10).real(), 1.0, 1e-9);

    sim::StateVector on(2, 0b11);
    on.run(imported.circuit);
    EXPECT_NEAR(std::abs(on.amplitude(0b11)), 1.0, 1e-9);
    EXPECT_NEAR(std::arg(on.amplitude(0b11)), 1.1 / 2.0, 1e-9);
}

} // namespace
} // namespace toqm::qasm
