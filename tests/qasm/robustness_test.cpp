#include <gtest/gtest.h>

#include <string>

#include "qasm/importer.hpp"
#include "qasm/lexer.hpp"
#include "qasm/parser.hpp"

namespace toqm::qasm {
namespace {

/**
 * Robustness sweep: every malformed input must be rejected with a
 * typed exception (ParseError or runtime_error), never a crash,
 * hang, or silent acceptance.
 */
class Malformed : public ::testing::TestWithParam<const char *>
{
};

TEST_P(Malformed, RejectedWithException)
{
    // Every malformed input must raise a typed standard exception
    // (ParseError, runtime_error, out_of_range, invalid_argument...)
    // — never crash, hang or silently import.
    const std::string src = GetParam();
    EXPECT_THROW(importString(src), std::exception);
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, Malformed,
    ::testing::Values(
        // Header problems.
        "",
        "qreg q[2];",
        "OPENQASM;",
        "OPENQASM 2.0",
        // Register declarations.
        "OPENQASM 2.0; qreg q[0];",
        "OPENQASM 2.0; qreg q[];",
        "OPENQASM 2.0; qreg [2];",
        "OPENQASM 2.0; qreg q[2",
        // Gate applications.
        "OPENQASM 2.0; qreg q[2]; notagate q[0];",
        "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[2]; h q[5];",
        "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[2]; cx q[0];",
        "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[2]; "
        "cx q[0], q[0];",
        "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[2]; "
        "rx() q[0];",
        "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[2]; "
        "rx(1, 2) q[0];",
        "OPENQASM 2.0; qreg q[1]; U(1,2) q[0];",
        "OPENQASM 2.0; qreg q[2]; CX q[0] q[1];",
        // Expressions.
        "OPENQASM 2.0; qreg q[1]; U(1/0, 0, 0) q[0];",
        "OPENQASM 2.0; qreg q[1]; U(unknown_id, 0, 0) q[0];",
        "OPENQASM 2.0; qreg q[1]; U(1 +, 0, 0) q[0];",
        "OPENQASM 2.0; qreg q[1]; U(sin(), 0, 0) q[0];",
        // Gate declarations.
        "OPENQASM 2.0; gate g a { U(0,0,0) b; }",
        "OPENQASM 2.0; gate g a { CX a, a; } qreg q[2]; g q[0];",
        "OPENQASM 2.0; gate g(t a { U(t,0,0) a; }",
        // Includes and strings.
        "OPENQASM 2.0; include \"missing_file.inc\";",
        "OPENQASM 2.0; include \"unterminated;",
        // Measure and conditionals.
        "OPENQASM 2.0; qreg q[1]; creg c[1]; measure q[0] - c[0];",
        "OPENQASM 2.0; qreg q[1]; creg c[1]; if (c = 1) U(0,0,0) "
        "q[0];",
        // Stray characters.
        "OPENQASM 2.0; qreg q[1]; @",
        "OPENQASM 2.0; qreg q[1]; U(0,0,0) q[0]"));

TEST(RobustnessTest, RecursiveGateDefinitionRejected)
{
    // Self-recursive macro must hit the expansion-depth guard, not
    // recurse forever.
    const std::string src =
        "OPENQASM 2.0;\n"
        "gate loop a { loop a; }\n"
        "qreg q[1];\nloop q[0];\n";
    EXPECT_THROW(importString(src), std::runtime_error);
}

TEST(RobustnessTest, MutuallyRecursiveGatesRejected)
{
    // Forward references are illegal in OpenQASM 2.0: 'b' is not
    // declared when 'a' is parsed... but both get declared before
    // use; expansion must still terminate via the depth guard.
    const std::string src =
        "OPENQASM 2.0;\n"
        "gate a x { a x; }\n"
        "gate b x { a x; }\n"
        "qreg q[1];\nb q[0];\n";
    EXPECT_THROW(importString(src), std::runtime_error);
}

TEST(RobustnessTest, DeeplyNestedParenthesesParse)
{
    std::string expr = "0";
    for (int i = 0; i < 40; ++i)
        expr = "(" + expr + " + 0)";
    const std::string src = "OPENQASM 2.0; qreg q[1]; U(" + expr +
                            ", 0, 0) q[0];";
    EXPECT_NO_THROW(importString(src));
}

TEST(RobustnessTest, LongCommentOnlyFileIsEmptyProgram)
{
    std::string src = "OPENQASM 2.0;\n";
    for (int i = 0; i < 1000; ++i)
        src += "// filler comment line\n";
    const auto r = importString(src);
    EXPECT_EQ(r.circuit.size(), 0);
}

TEST(RobustnessTest, HugeFlatCircuitParses)
{
    std::string src =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\n";
    for (int i = 0; i < 20000; ++i)
        src += "cx q[0], q[1];\n";
    const auto r = importString(src);
    EXPECT_EQ(r.circuit.size(), 20000);
}

} // namespace
} // namespace toqm::qasm
