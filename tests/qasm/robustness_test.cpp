#include <gtest/gtest.h>

#include <string>

#include "qasm/importer.hpp"
#include "qasm/lexer.hpp"
#include "qasm/parser.hpp"

namespace toqm::qasm {
namespace {

/**
 * Robustness sweep: every malformed input must be rejected with a
 * typed exception (ParseError or runtime_error), never a crash,
 * hang, or silent acceptance.
 */
class Malformed : public ::testing::TestWithParam<const char *>
{
};

TEST_P(Malformed, RejectedWithException)
{
    // Every malformed input must raise a typed standard exception
    // (ParseError, runtime_error, out_of_range, invalid_argument...)
    // — never crash, hang or silently import.
    const std::string src = GetParam();
    EXPECT_THROW(importString(src), std::exception);
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, Malformed,
    ::testing::Values(
        // Header problems.
        "",
        "qreg q[2];",
        "OPENQASM;",
        "OPENQASM 2.0",
        // Register declarations.
        "OPENQASM 2.0; qreg q[0];",
        "OPENQASM 2.0; qreg q[];",
        "OPENQASM 2.0; qreg [2];",
        "OPENQASM 2.0; qreg q[2",
        // Gate applications.
        "OPENQASM 2.0; qreg q[2]; notagate q[0];",
        "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[2]; h q[5];",
        "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[2]; cx q[0];",
        "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[2]; "
        "cx q[0], q[0];",
        "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[2]; "
        "rx() q[0];",
        "OPENQASM 2.0; include \"qelib1.inc\"; qreg q[2]; "
        "rx(1, 2) q[0];",
        "OPENQASM 2.0; qreg q[1]; U(1,2) q[0];",
        "OPENQASM 2.0; qreg q[2]; CX q[0] q[1];",
        // Expressions.
        "OPENQASM 2.0; qreg q[1]; U(1/0, 0, 0) q[0];",
        "OPENQASM 2.0; qreg q[1]; U(unknown_id, 0, 0) q[0];",
        "OPENQASM 2.0; qreg q[1]; U(1 +, 0, 0) q[0];",
        "OPENQASM 2.0; qreg q[1]; U(sin(), 0, 0) q[0];",
        // Gate declarations.
        "OPENQASM 2.0; gate g a { U(0,0,0) b; }",
        "OPENQASM 2.0; gate g a { CX a, a; } qreg q[2]; g q[0];",
        "OPENQASM 2.0; gate g(t a { U(t,0,0) a; }",
        // Includes and strings.
        "OPENQASM 2.0; include \"missing_file.inc\";",
        "OPENQASM 2.0; include \"unterminated;",
        // Measure and conditionals.
        "OPENQASM 2.0; qreg q[1]; creg c[1]; measure q[0] - c[0];",
        "OPENQASM 2.0; qreg q[1]; creg c[1]; if (c = 1) U(0,0,0) "
        "q[0];",
        // Stray characters.
        "OPENQASM 2.0; qreg q[1]; @",
        "OPENQASM 2.0; qreg q[1]; U(0,0,0) q[0]"));

TEST(RobustnessTest, RecursiveGateDefinitionRejected)
{
    // Self-recursive macro must hit the expansion-depth guard, not
    // recurse forever.
    const std::string src =
        "OPENQASM 2.0;\n"
        "gate loop a { loop a; }\n"
        "qreg q[1];\nloop q[0];\n";
    EXPECT_THROW(importString(src), std::runtime_error);
}

TEST(RobustnessTest, MutuallyRecursiveGatesRejected)
{
    // Forward references are illegal in OpenQASM 2.0: 'b' is not
    // declared when 'a' is parsed... but both get declared before
    // use; expansion must still terminate via the depth guard.
    const std::string src =
        "OPENQASM 2.0;\n"
        "gate a x { a x; }\n"
        "gate b x { a x; }\n"
        "qreg q[1];\nb q[0];\n";
    EXPECT_THROW(importString(src), std::runtime_error);
}

TEST(RobustnessTest, DeeplyNestedParenthesesParse)
{
    std::string expr = "0";
    for (int i = 0; i < 40; ++i)
        expr = "(" + expr + " + 0)";
    const std::string src = "OPENQASM 2.0; qreg q[1]; U(" + expr +
                            ", 0, 0) q[0];";
    EXPECT_NO_THROW(importString(src));
}

TEST(RobustnessTest, LongCommentOnlyFileIsEmptyProgram)
{
    std::string src = "OPENQASM 2.0;\n";
    for (int i = 0; i < 1000; ++i)
        src += "// filler comment line\n";
    const auto r = importString(src);
    EXPECT_EQ(r.circuit.size(), 0);
}

TEST(RobustnessTest, HugeFlatCircuitParses)
{
    std::string src =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\n";
    for (int i = 0; i < 20000; ++i)
        src += "cx q[0], q[1];\n";
    const auto r = importString(src);
    EXPECT_EQ(r.circuit.size(), 20000);
}

// ---- Numeric-overflow hardening (constant-expression evaluator and
// ---- integer literals) -------------------------------------------

TEST(RobustnessTest, RegisterSizeOverflowIsParseErrorWithPosition)
{
    // A literal too big for long must surface as a positioned
    // ParseError, not a bare std::out_of_range from std::stol.
    const std::string src =
        "OPENQASM 2.0;\nqreg q[99999999999999999999];\n";
    try {
        parseString(src);
        FAIL() << "expected ParseError";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.line(), 2);
        EXPECT_GT(e.column(), 1);
        EXPECT_NE(std::string(e.what()).find("register size"),
                  std::string::npos);
    }
}

TEST(RobustnessTest, RegisterSizeAboveCapRejected)
{
    // Fits in an int but exceeds the per-register sanity cap.
    EXPECT_THROW(parseString("OPENQASM 2.0;\nqreg q[2000000];\n"),
                 ParseError);
}

TEST(RobustnessTest, TotalQubitCapRejectsManyLargeRegisters)
{
    // Each register is under the per-register cap; together they
    // exceed the importer's total-qubit limit.
    const std::string src =
        "OPENQASM 2.0;\nqreg a[900000];\nqreg b[900000];\n";
    EXPECT_THROW(importString(src), std::runtime_error);
}

TEST(RobustnessTest, QubitIndexOverflowIsParseError)
{
    const std::string src =
        "OPENQASM 2.0;\nqreg q[1];\nU(0,0,0) q[99999999999999999999];\n";
    EXPECT_THROW(parseString(src), ParseError);
}

TEST(RobustnessTest, IfConditionOverflowIsParseError)
{
    const std::string src =
        "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\n"
        "if (c==99999999999999999999) U(0,0,0) q[0];\n";
    EXPECT_THROW(parseString(src), ParseError);
}

TEST(RobustnessTest, HugeRealLiteralIsParseError)
{
    // 1e999 overflows double; must be a positioned ParseError rather
    // than std::out_of_range escaping from std::stod.
    try {
        parseString("OPENQASM 2.0;\nqreg q[1];\nU(1e999,0,0) q[0];\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError &e) {
        EXPECT_EQ(e.line(), 3);
    }
}

TEST(RobustnessTest, NonFiniteExpressionResultRejected)
{
    // 10^4096 overflows to inf during evaluation, not parsing.
    const std::string src =
        "OPENQASM 2.0;\nqreg q[1];\nU(10^4096,0,0) q[0];\n";
    EXPECT_THROW(importString(src), std::runtime_error);
}

// ---- Bounded macro expansion -------------------------------------

TEST(RobustnessTest, DoublingGateBombHitsExpansionCap)
{
    // g_{k+1} applies g_k twice: 32 levels expand to 2^32 U gates.
    // The expansion-size cap must stop the import long before that.
    std::string src = "OPENQASM 2.0;\ngate g0 a { U(0,0,0) a; }\n";
    for (int k = 1; k <= 32; ++k) {
        src += "gate g" + std::to_string(k) + " a { g" +
               std::to_string(k - 1) + " a; g" +
               std::to_string(k - 1) + " a; }\n";
    }
    src += "qreg q[1];\ng32 q[0];\n";
    ImportOptions options;
    options.maxExpandedGates = 10'000;
    EXPECT_THROW(importString(src, options), std::runtime_error);
}

TEST(RobustnessTest, ExpansionDepthLimitIsConfigurable)
{
    // A linear 8-level nesting chain: fine by default, rejected when
    // the caller tightens maxExpansionDepth below the chain length.
    std::string src = "OPENQASM 2.0;\ngate g0 a { U(0,0,0) a; }\n";
    for (int k = 1; k <= 8; ++k) {
        src += "gate g" + std::to_string(k) + " a { g" +
               std::to_string(k - 1) + " a; }\n";
    }
    src += "qreg q[1];\ng8 q[0];\n";
    EXPECT_NO_THROW(importString(src));
    ImportOptions tight;
    tight.maxExpansionDepth = 4;
    EXPECT_THROW(importString(src, tight), std::runtime_error);
}

} // namespace
} // namespace toqm::qasm
