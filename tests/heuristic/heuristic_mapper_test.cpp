#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"
#include "sim/statevector.hpp"
#include "sim/verifier.hpp"

namespace toqm::heuristic {
namespace {

TEST(HeuristicMapperTest, TrivialCircuitMapsWithoutSwaps)
{
    ir::Circuit c = ir::ghz(4);
    const auto g = arch::ibmQ20Tokyo();
    HeuristicMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.mapped.physical.numSwaps(), 0);
    EXPECT_TRUE(sim::verifyMapping(c, res.mapped, g).ok);
}

TEST(HeuristicMapperTest, ProducesValidMappingOnTokyo)
{
    ir::Circuit c = ir::benchmarkStandIn("unit_test", 9, 400);
    const auto g = arch::ibmQ20Tokyo();
    HeuristicMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    const auto verdict = sim::verifyMapping(c, res.mapped, g);
    EXPECT_TRUE(verdict.ok) << verdict.message;
    // Reported cycles must agree with an independent re-schedule.
    EXPECT_EQ(ir::scheduleAsap(res.mapped.physical,
                               ir::LatencyModel::ibmPreset())
                  .makespan,
              res.cycles);
}

TEST(HeuristicMapperTest, SemanticEquivalenceOnSmallCircuit)
{
    ir::Circuit c = ir::randomCircuit(5, 60, 0.5, 321);
    const auto g = arch::ibmQX2();
    HeuristicMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(sim::semanticallyEquivalent(c, res.mapped));
}

TEST(HeuristicMapperTest, RespectsGivenInitialLayout)
{
    ir::Circuit c(3);
    c.addCX(0, 1);
    const auto g = arch::lnn(4);
    HeuristicMapper mapper(g);
    const std::vector<int> layout{3, 2, 0};
    const auto res = mapper.map(c, layout);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.mapped.initialLayout[0], 3);
    EXPECT_EQ(res.mapped.initialLayout[1], 2);
    EXPECT_TRUE(sim::verifyMapping(c, res.mapped, g).ok);
}

TEST(HeuristicMapperTest, OnTheFlyPlacementPutsPartnersTogether)
{
    // Two CX pairs that never interact: each pair should be placed
    // adjacent, requiring zero swaps.
    ir::Circuit c(4);
    c.addCX(0, 1);
    c.addCX(2, 3);
    c.addCX(0, 1);
    c.addCX(2, 3);
    const auto g = arch::ibmQ20Tokyo();
    HeuristicMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.mapped.physical.numSwaps(), 0);
}

TEST(HeuristicMapperTest, QubitNeverInCxStillPlaced)
{
    ir::Circuit c(3);
    c.addCX(0, 1);
    c.addH(2); // q2 only has a 1-qubit gate
    const auto g = arch::ibmQX2();
    HeuristicMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(sim::verifyMapping(c, res.mapped, g).ok);
    EXPECT_GE(res.mapped.initialLayout[2], 0);
}

TEST(HeuristicMapperTest, AllSearchModesProduceValidResults)
{
    ir::Circuit c = ir::benchmarkStandIn("modes", 8, 200);
    const auto g = arch::ibmQ20Tokyo();
    for (SearchMode mode : {SearchMode::Beam,
                            SearchMode::RecedingHorizon,
                            SearchMode::GlobalQueue}) {
        HeuristicConfig cfg;
        cfg.mode = mode;
        HeuristicMapper mapper(g, cfg);
        const auto res = mapper.map(c);
        ASSERT_TRUE(res.success)
            << "mode " << static_cast<int>(mode);
        EXPECT_TRUE(sim::verifyMapping(c, res.mapped, g).ok);
    }
}

TEST(HeuristicMapperTest, NeverWorseThanIdealLowerBound)
{
    const auto g = arch::ibmQ20Tokyo();
    const auto lat = ir::LatencyModel::ibmPreset();
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        ir::Circuit c = ir::randomCircuit(10, 300, 0.5, seed);
        HeuristicMapper mapper(g);
        const auto res = mapper.map(c);
        ASSERT_TRUE(res.success);
        EXPECT_GE(res.cycles, ir::idealCycles(c, lat));
    }
}

TEST(HeuristicMapperTest, QftSkeletonOnLnnStaysNearOptimal)
{
    // The heuristic is not optimal, but on QFT-6/LNN it must stay
    // within 2.5x of the known optimum (17).
    ir::Circuit c = ir::qftSkeleton(6);
    const auto g = arch::lnn(6);
    HeuristicConfig cfg;
    cfg.latency = ir::LatencyModel::qftPreset();
    HeuristicMapper mapper(g, cfg);
    const auto res = mapper.map(c, ir::identityLayout(6));
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(sim::verifyMapping(c, res.mapped, g).ok);
    EXPECT_LE(res.cycles, 42);
}

TEST(HeuristicMapperTest, LargerBeamNeverFails)
{
    ir::Circuit c = ir::benchmarkStandIn("beam", 10, 500);
    const auto g = arch::ibmQ20Tokyo();
    for (int width : {1, 4, 16}) {
        HeuristicConfig cfg;
        cfg.beamWidth = width;
        HeuristicMapper mapper(g, cfg);
        const auto res = mapper.map(c);
        ASSERT_TRUE(res.success) << "beamWidth=" << width;
        EXPECT_TRUE(sim::verifyMapping(c, res.mapped, g).ok);
    }
}

} // namespace
} // namespace toqm::heuristic
