#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"
#include "qftopt/qft_patterns.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

namespace toqm::qftopt {
namespace {

/** Parameterized validity sweep over n for all three patterns. */
class PatternSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(PatternSweep, LnnButterflyIsValidAndLinearDepth)
{
    const int n = GetParam();
    const auto sol = qftLnnButterfly(n);
    const auto check = validateQftSolution(sol, n);
    EXPECT_TRUE(check.ok) << check.message;
    EXPECT_EQ(sol.depth(), 4 * n - 7);
}

TEST_P(PatternSweep, GridMixedIsValidAnd3nDepth)
{
    const int n = GetParam();
    if (n % 2 != 0)
        GTEST_SKIP() << "2xN patterns need even n";
    const auto sol = qftGrid2xnMixed(n);
    const auto check = validateQftSolution(sol, n);
    EXPECT_TRUE(check.ok) << check.message;
    EXPECT_EQ(sol.depth(), 3 * n - 7);
}

TEST_P(PatternSweep, GridUnmixedIsValidAndNeverMixes)
{
    const int n = GetParam();
    if (n % 2 != 0)
        GTEST_SKIP() << "2xN patterns need even n";
    const auto sol = qftGrid2xnUnmixed(n);
    const auto check =
        validateQftSolution(sol, n, /*forbid_mixing=*/true);
    EXPECT_TRUE(check.ok) << check.message;
    EXPECT_EQ(sol.depth(), 3 * n - 5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PatternSweep,
                         ::testing::Values(4, 5, 6, 7, 8, 9, 10, 12,
                                           16, 24, 32, 48, 64));

TEST(QftPatternsTest, LnnButterflyMatchesOptimalSearch)
{
    // For n = 5, 6 the generated depth equals the A*-certified
    // optimum (paper Section 6.1.1).  n = 4 is a small-size
    // exception our exact search discovered: an 8-cycle schedule
    // exists, one cycle below the 4n-7 butterfly — the generalized
    // pattern is optimal only from n >= 5 (documented in
    // EXPERIMENTS.md).
    const ir::LatencyModel lat = ir::LatencyModel::qftPreset();
    for (int n : {4, 5, 6}) {
        core::MapperConfig cfg;
        cfg.latency = lat;
        core::OptimalMapper mapper(arch::lnn(n), cfg);
        const auto res = mapper.map(ir::qftSkeleton(n));
        ASSERT_TRUE(res.success);
        if (n == 4) {
            EXPECT_EQ(res.cycles, 8);
            EXPECT_EQ(qftLnnButterfly(n).depth(), 9);
        } else {
            EXPECT_EQ(qftLnnButterfly(n).depth(), res.cycles)
                << "n=" << n;
        }
    }
}

TEST(QftPatternsTest, GridMixedMatchesOptimalSearchForN6)
{
    core::MapperConfig cfg;
    cfg.latency = ir::LatencyModel::qftPreset();
    core::OptimalMapper mapper(arch::grid(2, 3), cfg);
    const auto sol = qftGrid2xnMixed(6);
    const auto res =
        mapper.map(ir::qftSkeleton(6), sol.initialLayout);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(sol.depth(), res.cycles);
}

TEST(QftPatternsTest, GridUnmixedMatchesConstrainedOptimalForN6)
{
    core::MapperConfig cfg;
    cfg.latency = ir::LatencyModel::qftPreset();
    cfg.allowConcurrentSwapAndGate = false;
    core::OptimalMapper mapper(arch::grid(2, 3), cfg);
    const auto sol = qftGrid2xnUnmixed(6);
    const auto res =
        mapper.map(ir::qftSkeleton(6), sol.initialLayout);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(sol.depth(), res.cycles);
}

TEST(QftPatternsTest, MappedCircuitPassesStructuralVerifier)
{
    const int n = 8;
    const auto sol = qftGrid2xnMixed(n);
    const auto mapped = sol.toMappedCircuit();
    const auto verdict =
        sim::verifyMapping(ir::qftSkeleton(n), mapped, sol.graph);
    EXPECT_TRUE(verdict.ok) << verdict.message;
}

TEST(QftPatternsTest, LayeredDepthEqualsScheduledDepth)
{
    // Each layer really fits in one cycle: the ASAP schedule of the
    // flattened circuit must not beat the layer count, nor exceed it.
    const ir::LatencyModel lat = ir::LatencyModel::qftPreset();
    for (int n : {6, 8, 12}) {
        const auto sol = qftGrid2xnMixed(n);
        const auto mapped = sol.toMappedCircuit();
        EXPECT_EQ(ir::scheduleAsap(mapped.physical, lat).makespan,
                  sol.depth())
            << "n=" << n;
    }
}

TEST(QftPatternsTest, PaperHeadlineNumbersForQft8)
{
    // Fig 12: 17 cycles mixed; Fig 14: 19 cycles unmixed.
    EXPECT_EQ(qftGrid2xnMixed(8).depth(), 17);
    EXPECT_EQ(qftGrid2xnUnmixed(8).depth(), 19);
    // Fig 11: QFT-6 on LNN in 17 cycles.
    EXPECT_EQ(qftLnnButterfly(6).depth(), 17);
}

TEST(QftPatternsTest, DepthIsThreeNPlusConstant)
{
    // Maslov's lower bound for 2xN is 3n + O(1); our solutions match
    // asymptotically (Section 6.1.1).
    for (int n : {16, 32, 64}) {
        EXPECT_EQ(qftGrid2xnMixed(n).depth(), 3 * n - 7);
        EXPECT_EQ(qftGrid2xnUnmixed(n).depth(), 3 * n - 5);
    }
}

TEST(QftPatternsTest, RenderStepsShowsButterfly)
{
    const auto sol = qftLnnButterfly(4);
    const std::string steps = sol.renderSteps();
    EXPECT_NE(steps.find("step(0): q0 q1 q2 q3"), std::string::npos);
    EXPECT_NE(steps.find("GT"), std::string::npos);
    EXPECT_NE(steps.find("SWAP"), std::string::npos);
}

TEST(QftPatternsTest, RejectsBadSizes)
{
    EXPECT_THROW(qftLnnButterfly(1), std::invalid_argument);
    EXPECT_THROW(qftGrid2xnMixed(7), std::invalid_argument);
    EXPECT_THROW(qftGrid2xnUnmixed(2), std::invalid_argument);
}

} // namespace
} // namespace toqm::qftopt
