/**
 * Resource-guard degradation contracts across the mapper stack:
 *
 *  1. Disarmed and armed-but-unreachable guards produce bit-identical
 *     mapper output (the guard must be a pure observer until it
 *     trips) — this is the regression fence for "no new flags, no
 *     behavior change".
 *  2. Anytime delivery: a budget- or guard-stopped exact search that
 *     found a complete schedule returns it flagged fromIncumbent,
 *     and the mapping passes structural verification.
 *  3. Pre-set cancellation stops every mapper deterministically with
 *     status Cancelled; Zulehner still returns a complete (greedy-
 *     degraded) mapping because its incumbent is always complete.
 */

#include <gtest/gtest.h>

#include <string>

#include "arch/architectures.hpp"
#include "baselines/zulehner.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "qasm/writer.hpp"
#include "sim/verifier.hpp"
#include "toqm/ida_star.hpp"
#include "toqm/mapper.hpp"

namespace toqm {
namespace {

/** A guard that is armed but can never trip within a test run. */
search::GuardConfig
unreachableGuard()
{
    search::GuardConfig guard;
    guard.deadlineMs = 3'600'000; // one hour
    guard.maxPoolBytes = 1ull << 40;
    guard.probeInterval = 1; // probe on every expansion
    return guard;
}

TEST(DegradationTest, ArmedButUnreachableGuardIsBitIdenticalOptimal)
{
    const ir::Circuit circuit = ir::qftConcrete(5);
    const arch::CouplingGraph graph = arch::lnn(5);

    core::MapperConfig plain;
    core::MapperConfig guarded = plain;
    guarded.guard = unreachableGuard();

    const auto a = core::OptimalMapper(graph, plain).map(circuit);
    const auto b = core::OptimalMapper(graph, guarded).map(circuit);
    ASSERT_TRUE(a.success);
    ASSERT_TRUE(b.success);
    EXPECT_EQ(a.status, core::SearchStatus::Solved);
    EXPECT_EQ(b.status, core::SearchStatus::Solved);
    EXPECT_FALSE(b.fromIncumbent);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(qasm::writeMappedCircuit(a.mapped),
              qasm::writeMappedCircuit(b.mapped));
    EXPECT_EQ(a.stats.expanded, b.stats.expanded);
    EXPECT_EQ(a.stats.generated, b.stats.generated);
    // The armed guard probed; the disarmed one never did.
    EXPECT_EQ(a.stats.guardProbes, 0u);
    EXPECT_GT(b.stats.guardProbes, 0u);
}

TEST(DegradationTest, ArmedButUnreachableGuardIsBitIdenticalHeuristic)
{
    const ir::Circuit circuit = ir::qftConcrete(8);
    const arch::CouplingGraph graph = arch::ibmQ20Tokyo();

    heuristic::HeuristicConfig plain;
    heuristic::HeuristicConfig guarded = plain;
    guarded.guard = unreachableGuard();

    const auto a =
        heuristic::HeuristicMapper(graph, plain).map(circuit);
    const auto b =
        heuristic::HeuristicMapper(graph, guarded).map(circuit);
    ASSERT_TRUE(a.success);
    ASSERT_TRUE(b.success);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(qasm::writeMappedCircuit(a.mapped),
              qasm::writeMappedCircuit(b.mapped));
    EXPECT_EQ(a.stats.expanded, b.stats.expanded);
}

TEST(DegradationTest, ArmedButUnreachableGuardIsBitIdenticalZulehner)
{
    const ir::Circuit circuit = ir::qftConcrete(8);
    const arch::CouplingGraph graph = arch::ibmQ20Tokyo();

    baselines::ZulehnerConfig plain;
    baselines::ZulehnerConfig guarded = plain;
    guarded.guard = unreachableGuard();

    const auto a =
        baselines::ZulehnerMapper(graph, plain).map(circuit);
    const auto b =
        baselines::ZulehnerMapper(graph, guarded).map(circuit);
    ASSERT_TRUE(a.success && b.success);
    EXPECT_EQ(a.status, core::SearchStatus::Solved);
    EXPECT_EQ(b.status, core::SearchStatus::Solved);
    EXPECT_EQ(a.swapCount, b.swapCount);
    EXPECT_EQ(qasm::writeMappedCircuit(a.mapped),
              qasm::writeMappedCircuit(b.mapped));
}

TEST(DegradationTest, BudgetStopDeliversVerifiedIncumbent)
{
    // The beam probe completes a schedule before A* starts, so a
    // budget too small to prove optimality still yields an incumbent.
    const ir::Circuit circuit = ir::qftConcrete(5);
    const arch::CouplingGraph graph = arch::lnn(5);

    core::MapperConfig cfg;
    cfg.maxExpandedNodes = 50; // far too few to prove optimality
    ASSERT_TRUE(cfg.useUpperBoundPruning);
    const auto res = core::OptimalMapper(graph, cfg).map(circuit);
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(res.fromIncumbent);
    EXPECT_EQ(res.status, core::SearchStatus::BudgetExhausted);
    EXPECT_GT(res.cycles, 0);
    EXPECT_TRUE(sim::verifyMapping(circuit, res.mapped, graph).ok);

    // The incumbent is an upper bound: a full run must not beat it by
    // being worse (sanity: optimal <= incumbent).
    const auto full = core::OptimalMapper(graph, {}).map(circuit);
    ASSERT_TRUE(full.success);
    EXPECT_LE(full.cycles, res.cycles);
}

TEST(DegradationTest, CancellationStopsOptimalMapper)
{
    search::clearCancellation();
    search::requestCancellation();
    core::MapperConfig cfg;
    cfg.guard.honorCancellation = true;
    cfg.guard.probeInterval = 1;
    const auto res = core::OptimalMapper(arch::lnn(5), cfg)
                         .map(ir::qftConcrete(5));
    search::clearCancellation();
    EXPECT_EQ(res.status, core::SearchStatus::Cancelled);
    // Delivery only with a complete incumbent; the flags must agree.
    EXPECT_EQ(res.success, res.fromIncumbent);
}

TEST(DegradationTest, CancellationStopsIdaStar)
{
    search::clearCancellation();
    search::requestCancellation();
    search::GuardConfig guard;
    guard.honorCancellation = true;
    guard.probeInterval = 1;
    const auto res = core::idaStarMap(
        arch::lnn(5), ir::qftConcrete(5),
        ir::LatencyModel::qftPreset(), true, 50'000'000, guard);
    search::clearCancellation();
    EXPECT_EQ(res.status, core::SearchStatus::Cancelled);
    EXPECT_EQ(res.success, res.fromIncumbent);
    if (res.success) {
        EXPECT_TRUE(sim::verifyMapping(ir::qftConcrete(5), res.mapped,
                                       arch::lnn(5))
                        .ok);
    }
}

TEST(DegradationTest, CancellationStopsHeuristicMapper)
{
    search::clearCancellation();
    search::requestCancellation();
    heuristic::HeuristicConfig cfg;
    cfg.guard.honorCancellation = true;
    cfg.guard.probeInterval = 1;
    const auto res = heuristic::HeuristicMapper(arch::ibmQ20Tokyo(), cfg)
                         .map(ir::qftConcrete(8));
    search::clearCancellation();
    EXPECT_EQ(res.status, core::SearchStatus::Cancelled);
}

TEST(DegradationTest, CancelledZulehnerDegradesToCompleteGreedyMapping)
{
    search::clearCancellation();
    search::requestCancellation();
    baselines::ZulehnerConfig cfg;
    cfg.guard.honorCancellation = true;
    cfg.guard.probeInterval = 1;
    const ir::Circuit circuit = ir::qftConcrete(8);
    const arch::CouplingGraph graph = arch::ibmQ20Tokyo();
    const auto res = baselines::ZulehnerMapper(graph, cfg).map(circuit);
    search::clearCancellation();
    // The layered scheme's incumbent is always complete: every layer
    // after the stop is routed greedily, so the result still maps the
    // whole circuit and must verify.
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.status, core::SearchStatus::Cancelled);
    EXPECT_GT(res.greedyFallbacks, 0);
    EXPECT_TRUE(
        sim::verifyMapping(circuit.withoutSwapsAndBarriers(), res.mapped,
                           graph)
            .ok);
}

TEST(DegradationTest, ExpiredDeadlineStopsOptimalMapper)
{
    core::MapperConfig cfg;
    cfg.guard.deadlineMs = 1;
    cfg.guard.probeInterval = 1;
    // qft5 on LNN(5) needs well over 1 ms; the guard must stop it.
    const auto res = core::OptimalMapper(arch::lnn(5), cfg)
                         .map(ir::qftConcrete(5));
    EXPECT_EQ(res.status, core::SearchStatus::DeadlineExceeded);
    EXPECT_EQ(res.success, res.fromIncumbent);
}

} // namespace
} // namespace toqm
