#include <gtest/gtest.h>

#include <tuple>

#include "arch/architectures.hpp"
#include "baselines/sabre.hpp"
#include "baselines/zulehner.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "ir/queko.hpp"
#include "ir/schedule.hpp"
#include "sim/statevector.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

namespace toqm {
namespace {

/**
 * Property sweep: for random circuits over (seed, arch), EVERY
 * mapper in the repository must produce a structurally valid and
 * semantically equivalent transformed circuit whose reported cycle
 * count matches an independent re-schedule and is bounded below by
 * the ideal (all-to-all) cycle count.
 */
class MapperProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 const char *>>
{
  protected:
    ir::Circuit
    circuit() const
    {
        const auto seed = std::get<0>(GetParam());
        // Moderate locality keeps the exact search tractable while
        // still forcing several swaps on every architecture.
        return ir::randomCircuit(5, 30, 0.5, seed, 0.6);
    }

    arch::CouplingGraph
    graph() const
    {
        return arch::byName(std::get<1>(GetParam()));
    }

    void
    checkMapped(const ir::Circuit &logical,
                const ir::MappedCircuit &mapped,
                const arch::CouplingGraph &g, int reported_cycles)
    {
        const auto verdict = sim::verifyMapping(logical, mapped, g);
        ASSERT_TRUE(verdict.ok) << verdict.message;
        ASSERT_TRUE(sim::semanticallyEquivalent(logical, mapped));
        const auto lat = ir::LatencyModel::ibmPreset();
        const int rescheduled =
            ir::scheduleAsap(mapped.physical, lat).makespan;
        if (reported_cycles >= 0) {
            EXPECT_EQ(rescheduled, reported_cycles);
        }
        EXPECT_GE(rescheduled, ir::idealCycles(logical, lat));
    }
};

TEST_P(MapperProperty, OptimalMapper)
{
    const ir::Circuit c = circuit();
    const auto g = graph();
    // Identity seed: the initial-mapping search mode has dedicated
    // coverage in mapper_test and is too slow for a 15-case sweep.
    // Sparse devices with several spare qubits (heavy-hex) can blow
    // past any reasonable exact-search budget: skip, don't hang.
    core::MapperConfig cfg;
    cfg.maxExpandedNodes = 1'500'000;
    core::OptimalMapper mapper(g, cfg);
    const auto res = mapper.map(c);
    if (!res.success)
        GTEST_SKIP() << "exact search budget exceeded on "
                     << g.name();
    checkMapped(c, res.mapped, g, res.cycles);
}

TEST_P(MapperProperty, HeuristicMapper)
{
    const ir::Circuit c = circuit();
    const auto g = graph();
    heuristic::HeuristicMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    checkMapped(c, res.mapped, g, res.cycles);
}

TEST_P(MapperProperty, SabreBaseline)
{
    const ir::Circuit c = circuit();
    const auto g = graph();
    baselines::SabreMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    checkMapped(c, res.mapped, g, -1);
}

TEST_P(MapperProperty, ZulehnerBaseline)
{
    const ir::Circuit c = circuit();
    const auto g = graph();
    baselines::ZulehnerMapper mapper(g);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    checkMapped(c, res.mapped, g, -1);
}

TEST_P(MapperProperty, HeuristicNeverBeatsOptimal)
{
    const ir::Circuit c = circuit();
    const auto g = graph();
    core::MapperConfig cfg;
    cfg.maxExpandedNodes = 1'500'000;
    core::OptimalMapper optimal(g, cfg);
    heuristic::HeuristicMapper heur(g);
    const auto o = optimal.map(c);
    if (!o.success)
        GTEST_SKIP() << "exact search budget exceeded on "
                     << g.name();
    // Compare against the heuristic run from the same fixed seed
    // layout so the bound o <= h is exact.
    const auto h = heur.map(c, ir::identityLayout(c.numQubits()));
    ASSERT_TRUE(h.success);
    EXPECT_LE(o.cycles, h.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MapperProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values("ibmqx2", "grid2by3",
                                         "lnn6", "ring6")));

/** Optimality cross-check: the A* optimum equals a brute-force
 *  enumeration over swap placements for tiny single-CX problems. */
class TinyOptimality : public ::testing::TestWithParam<int>
{
};

TEST_P(TinyOptimality, DistantCxPaysExactlyMinimalSwaps)
{
    const int n = GetParam();
    ir::Circuit c(n);
    c.addCX(0, n - 1);
    const auto g = arch::lnn(n);
    core::MapperConfig cfg;
    cfg.latency = ir::LatencyModel(1, 2, 6);
    core::OptimalMapper mapper(g, cfg);
    const auto res = mapper.map(c);
    ASSERT_TRUE(res.success);
    // d-1 swaps are necessary; splitting them across the two ends
    // lets them run concurrently: ceil((d-1)/2) sequential swap
    // rounds, then the CX.
    const int d = n - 1;
    const int rounds = (d - 1 + 1) / 2;
    EXPECT_EQ(res.cycles, rounds * 6 + 2);
    EXPECT_EQ(res.mapped.physical.numSwaps(), d - 1);
}

INSTANTIATE_TEST_SUITE_P(Chains, TinyOptimality,
                         ::testing::Values(2, 3, 4, 5, 6));

/** QUEKO sanity: the optimal mapper certifies the constructed
 *  optimum on small instances. */
TEST(QuekoOptimalityTest, OptimalMapperFindsConstructedDepth)
{
    const auto g = arch::grid(2, 3);
    const ir::LatencyModel unit(1, 1, 3);
    const auto bench =
        ir::quekoCircuit(g.numQubits(), g.edges(), 6, 0.5, 0.2, 3);
    core::MapperConfig cfg;
    cfg.latency = unit;
    core::MapperConfig seeded = cfg;
    core::OptimalMapper mapper(g, seeded);
    // Map with the hidden layout: must need zero swaps and exactly
    // the constructed depth.
    const auto res = mapper.map(bench.circuit, bench.hiddenLayout);
    ASSERT_TRUE(res.success);
    EXPECT_EQ(res.cycles, bench.optimalDepth);
    EXPECT_EQ(res.mapped.physical.numSwaps(), 0);
}

} // namespace
} // namespace toqm
