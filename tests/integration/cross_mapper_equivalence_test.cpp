/**
 * Cross-mapper equivalence: A*, IDA*, and the heuristic mapper all
 * run over the SAME pooled search kernel now, so this suite pins the
 * contract that matters — on seeded random circuits every mapper
 * produces a structurally valid, semantically equivalent mapping;
 * both exact mappers agree on the optimal cycle count; and the
 * heuristic never beats it (it would be a soundness bug if it did).
 */

#include <gtest/gtest.h>

#include <vector>

#include "arch/architectures.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "sim/statevector.hpp"
#include "sim/verifier.hpp"
#include "toqm/ida_star.hpp"
#include "toqm/mapper.hpp"

namespace toqm {
namespace {

struct Case
{
    ir::Circuit circuit;
    arch::CouplingGraph graph;
    const char *label;
};

std::vector<Case>
seededCases()
{
    std::vector<Case> cases;
    // LNN(5): the paper's linear topology; distance forces swaps.
    for (std::uint64_t seed : {7u, 21u, 42u}) {
        cases.push_back({ir::randomCircuit(4, 14, 0.5, seed, 0.5),
                         arch::lnn(5), "lnn5"});
    }
    // IBM QX2: the 5-qubit bowtie used in Table 1.
    for (std::uint64_t seed : {5u, 99u}) {
        cases.push_back({ir::randomCircuit(5, 12, 0.45, seed, 0.0),
                         arch::ibmQX2(), "qx2"});
    }
    return cases;
}

TEST(CrossMapperEquivalenceTest, AllMappersValidAndExactOnesAgree)
{
    const ir::LatencyModel lat = ir::LatencyModel::qftPreset();
    for (const Case &k : seededCases()) {
        SCOPED_TRACE(std::string(k.label) + "/" + k.circuit.name());

        core::MapperConfig cfg;
        cfg.latency = lat;
        core::OptimalMapper astar(k.graph, cfg);
        const auto a = astar.map(k.circuit);
        ASSERT_TRUE(a.success);
        ASSERT_EQ(a.status, core::SearchStatus::Solved);
        EXPECT_TRUE(sim::verifyMapping(k.circuit, a.mapped, k.graph).ok);
        EXPECT_TRUE(sim::semanticallyEquivalent(k.circuit, a.mapped));

        const auto ida = core::idaStarMap(k.graph, k.circuit, lat);
        ASSERT_TRUE(ida.success);
        ASSERT_EQ(ida.status, core::SearchStatus::Solved);
        EXPECT_TRUE(
            sim::verifyMapping(k.circuit, ida.mapped, k.graph).ok);
        EXPECT_TRUE(sim::semanticallyEquivalent(k.circuit, ida.mapped));
        // Both searches are admissible: the optima must coincide even
        // though the mapped circuits themselves may differ.
        EXPECT_EQ(ida.cycles, a.cycles);

        heuristic::HeuristicConfig hcfg;
        hcfg.latency = lat;
        heuristic::HeuristicMapper heur(k.graph, hcfg);
        const auto h = heur.map(k.circuit);
        ASSERT_TRUE(h.success);
        ASSERT_EQ(h.status, core::SearchStatus::Solved);
        EXPECT_TRUE(sim::verifyMapping(k.circuit, h.mapped, k.graph).ok);
        EXPECT_TRUE(sim::semanticallyEquivalent(k.circuit, h.mapped));
        // The approximate mapper may lose cycles but never gains any.
        EXPECT_GE(h.cycles, a.cycles);
    }
}

TEST(CrossMapperEquivalenceTest, StatsReportsAreCoherent)
{
    // The unified SearchStats contract: expansions happened, time was
    // measured, and the pool's high-water marks are populated.
    const ir::LatencyModel lat = ir::LatencyModel::qftPreset();
    const ir::Circuit c = ir::randomCircuit(4, 14, 0.5, 7, 0.5);
    const auto g = arch::lnn(5);

    core::MapperConfig cfg;
    cfg.latency = lat;
    const auto a = core::OptimalMapper(g, cfg).map(c);
    ASSERT_TRUE(a.success);
    EXPECT_GT(a.stats.expanded, 0u);
    EXPECT_GT(a.stats.generated, a.stats.expanded);
    EXPECT_GT(a.stats.maxQueueSize, 0u);
    EXPECT_GT(a.stats.peakPoolBytes, 0u);
    EXPECT_GT(a.stats.peakLiveNodes, 0u);
    EXPECT_GE(a.stats.seconds, 0.0);

    const auto ida = core::idaStarMap(g, c, lat);
    ASSERT_TRUE(ida.success);
    EXPECT_GT(ida.stats.expanded, 0u);
    EXPECT_GE(ida.stats.rounds, 1);
    EXPECT_GT(ida.stats.peakPoolBytes, 0u);

    heuristic::HeuristicConfig hcfg;
    hcfg.latency = lat;
    const auto h = heuristic::HeuristicMapper(g, hcfg).map(c);
    ASSERT_TRUE(h.success);
    EXPECT_GT(h.stats.expanded, 0u);
    EXPECT_GT(h.stats.peakPoolBytes, 0u);
}

} // namespace
} // namespace toqm
