#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "arch/token_swapping.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "ir/transforms.hpp"
#include "sim/stabilizer.hpp"
#include "sim/statevector.hpp"

namespace toqm {
namespace {

/**
 * Property sweep: both Appendix-B rewrites preserve circuit
 * semantics on random circuits (statevector oracle).
 */
class TransformProperty : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    static bool
    equivalent(const ir::Circuit &a, const ir::Circuit &b)
    {
        sim::StateVector sa(a.numQubits()), sb(b.numQubits());
        for (int q = 0; q < a.numQubits(); ++q) {
            for (auto *sv : {&sa, &sb}) {
                sv->apply(ir::Gate(ir::GateKind::H, q));
                sv->apply(ir::Gate(ir::GateKind::T, q));
            }
        }
        sa.run(a);
        sb.run(b);
        return sa.overlap(sb) > 1.0 - 1e-9;
    }

    /** A random circuit with swaps mixed in (rewrite fodder). */
    static ir::Circuit
    swappyCircuit(std::uint64_t seed)
    {
        ir::Circuit base = ir::randomCircuit(5, 40, 0.5, seed);
        ir::Circuit out(5, base.name());
        std::uint64_t state = seed * 31 + 7;
        const auto next = [&state]() {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            return state >> 33;
        };
        for (const ir::Gate &g : base.gates()) {
            out.add(g);
            if (next() % 4 == 0) {
                const int a = static_cast<int>(next() % 5);
                const int b = (a + 1 + static_cast<int>(next() % 4)) % 5;
                if (a != b)
                    out.addSwap(a, b);
            }
        }
        return out;
    }
};

TEST_P(TransformProperty, CancelRedundantPreservesSemantics)
{
    const ir::Circuit c = swappyCircuit(GetParam());
    const ir::Circuit out = ir::cancelRedundantGates(c);
    EXPECT_LE(out.size(), c.size());
    EXPECT_TRUE(equivalent(c, out));
}

TEST_P(TransformProperty, NormalizeGateFirstPreservesSemantics)
{
    const ir::Circuit c = swappyCircuit(GetParam());
    EXPECT_TRUE(equivalent(c, ir::normalizeSwapGateOrder(c, true)));
}

TEST_P(TransformProperty, NormalizeSwapFirstPreservesSemantics)
{
    const ir::Circuit c = swappyCircuit(GetParam());
    EXPECT_TRUE(equivalent(c, ir::normalizeSwapGateOrder(c, false)));
}

TEST_P(TransformProperty, NormalizationIsIdempotent)
{
    const ir::Circuit c = swappyCircuit(GetParam());
    const ir::Circuit once = ir::normalizeSwapGateOrder(c, true);
    const ir::Circuit twice = ir::normalizeSwapGateOrder(once, true);
    EXPECT_EQ(once, twice);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

/**
 * End-to-end iterative-workload scenario: map a Clifford circuit,
 * then return every qubit home with token swapping so the circuit
 * can be iterated — the whole composition verified with the
 * stabilizer oracle (identity permutation at the end).
 */
TEST(RestoreLayoutTest, MappedPlusRestoreActsAtHomePositions)
{
    const auto device = arch::ibmQ20Tokyo();
    const ir::Circuit c =
        sim::randomCliffordCircuit(10, 400, 0.45, 5, 0.5);
    heuristic::HeuristicMapper mapper(device);
    auto res = mapper.map(c);
    ASSERT_TRUE(res.success);

    const auto swaps = arch::routeBackToInitial(
        device, res.mapped.initialLayout, res.mapped.finalLayout);
    for (const auto &[a, b] : swaps)
        res.mapped.physical.addSwap(a, b);
    res.mapped.finalLayout = ir::propagateLayout(
        res.mapped.physical, res.mapped.initialLayout);

    // After restoration the final layout IS the initial layout...
    EXPECT_EQ(res.mapped.finalLayout, res.mapped.initialLayout);
    // ...and the combined circuit is still equivalent.
    EXPECT_TRUE(sim::cliffordEquivalent(c, res.mapped));
}

} // namespace
} // namespace toqm
