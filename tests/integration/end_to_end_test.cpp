#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/schedule.hpp"
#include "qasm/importer.hpp"
#include "qasm/writer.hpp"
#include "sim/statevector.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

namespace toqm {
namespace {

constexpr const char *toffoli_qasm = R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
h q[1];
ccx q[0], q[1], q[2];
h q[2];
cx q[2], q[0];
)";

TEST(EndToEndTest, QasmToOptimalMappingToQasm)
{
    // Parse -> lower -> map optimally -> verify -> write -> reparse.
    const auto imported = qasm::importString(toffoli_qasm);
    const ir::Circuit &logical = imported.circuit;
    const auto graph = arch::ibmQX2();

    core::MapperConfig cfg;
    cfg.searchInitialMapping = true;
    core::OptimalMapper mapper(graph, cfg);
    const auto res = mapper.map(logical);
    ASSERT_TRUE(res.success);

    const auto verdict = sim::verifyMapping(logical, res.mapped, graph);
    ASSERT_TRUE(verdict.ok) << verdict.message;
    EXPECT_TRUE(sim::semanticallyEquivalent(logical, res.mapped));

    const std::string out = qasm::writeMappedCircuit(res.mapped);
    const auto reparsed = qasm::importString(out);
    EXPECT_EQ(reparsed.circuit.numComputeGates(),
              res.mapped.physical.numComputeGates());
}

TEST(EndToEndTest, QasmToHeuristicMappingOnTokyo)
{
    const auto imported = qasm::importString(toffoli_qasm);
    const auto graph = arch::ibmQ20Tokyo();
    heuristic::HeuristicMapper mapper(graph);
    const auto res = mapper.map(imported.circuit);
    ASSERT_TRUE(res.success);
    EXPECT_TRUE(
        sim::verifyMapping(imported.circuit, res.mapped, graph).ok);
    EXPECT_TRUE(sim::semanticallyEquivalent(imported.circuit,
                                            res.mapped));
}

TEST(EndToEndTest, OptimalNeverWorseThanHeuristic)
{
    const auto imported = qasm::importString(toffoli_qasm);
    const auto graph = arch::ibmQX2();

    core::MapperConfig ocfg;
    ocfg.searchInitialMapping = true;
    core::OptimalMapper optimal(graph, ocfg);
    const auto opt = optimal.map(imported.circuit);
    ASSERT_TRUE(opt.success);

    heuristic::HeuristicMapper heur(graph);
    const auto h = heur.map(imported.circuit);
    ASSERT_TRUE(h.success);

    EXPECT_LE(opt.cycles, h.cycles);
}

TEST(EndToEndTest, MeasurementsSurviveTheFullPipeline)
{
    const auto imported = qasm::importString(toffoli_qasm);
    ASSERT_EQ(imported.measures.size(), 0u);

    const std::string with_measure =
        std::string(toffoli_qasm) + "measure q -> c;\n";
    const auto measured = qasm::importString(with_measure);
    ASSERT_EQ(measured.measures.size(), 3u);

    const auto graph = arch::ibmQX2();
    core::OptimalMapper mapper(graph);
    const auto res = mapper.map(measured.circuit);
    ASSERT_TRUE(res.success);
    int measure_count = 0;
    for (const ir::Gate &g : res.mapped.physical.gates())
        measure_count += g.isMeasure();
    EXPECT_EQ(measure_count, 3);
}

} // namespace
} // namespace toqm
