#include "fault.hpp"

#include <cstdlib>
#include <new>

namespace toqm::fault {

namespace {

constexpr const char *kSiteNames[kNumSites] = {
    "pool_alloc",       "guard_poll",   "qasm_io",
    "calibration_io",   "manifest_io",  "worker_start",
    "incumbent_publish", "portfolio_launch",
};

/** splitmix64: the tree's standard seeded stream (same generator the
 *  calibration synthesizer uses), here advanced through an atomic so
 *  concurrent hits draw distinct values. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

const char *
siteName(Site site)
{
    const int i = static_cast<int>(site);
    if (i < 0 || i >= kNumSites)
        return "unknown";
    return kSiteNames[i];
}

const std::vector<std::string> &
knownSites()
{
    static const std::vector<std::string> names(kSiteNames,
                                                kSiteNames +
                                                    kNumSites);
    return names;
}

bool
siteFromString(const std::string &name, Site &out)
{
    for (int i = 0; i < kNumSites; ++i) {
        if (name == kSiteNames[i]) {
            out = static_cast<Site>(i);
            return true;
        }
    }
    return false;
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::size_t pos = 0;
    const std::size_t n = spec.size();
    if (n == 0)
        throw FaultPlanError(0, "empty spec");
    while (pos < n) {
        const std::size_t entry_start = pos;
        std::size_t entry_end = spec.find(',', pos);
        if (entry_end == std::string::npos)
            entry_end = n;
        const std::string entry =
            spec.substr(entry_start, entry_end - entry_start);

        const std::size_t at = entry.find('@');
        if (at == std::string::npos)
            throw FaultPlanError(entry_start,
                                 "expected site@trigger:action in '" +
                                     entry + "'");
        const std::size_t colon = entry.find(':', at + 1);
        if (colon == std::string::npos)
            throw FaultPlanError(entry_start + at,
                                 "missing ':action' in '" + entry +
                                     "'");

        FaultSpec fs;
        const std::string site_name = entry.substr(0, at);
        if (!siteFromString(site_name, fs.site))
            throw FaultPlanError(entry_start,
                                 "unknown site '" + site_name + "'");

        const std::string trigger =
            entry.substr(at + 1, colon - at - 1);
        if (trigger.empty())
            throw FaultPlanError(entry_start + at + 1,
                                 "empty trigger");
        if (trigger[0] == 'p') {
            const std::size_t slash = trigger.find('/');
            if (slash == std::string::npos)
                throw FaultPlanError(
                    entry_start + at + 1,
                    "probabilistic trigger needs 'pPROB/SEED'");
            char *end = nullptr;
            const std::string prob_str =
                trigger.substr(1, slash - 1);
            fs.probability =
                std::strtod(prob_str.c_str(), &end);
            if (end == prob_str.c_str() || *end != '\0' ||
                fs.probability <= 0.0 || fs.probability > 1.0)
                throw FaultPlanError(entry_start + at + 2,
                                     "probability must be in (0,1]");
            const std::string seed_str = trigger.substr(slash + 1);
            fs.seed = std::strtoull(seed_str.c_str(), &end, 10);
            if (seed_str.empty() || *end != '\0')
                throw FaultPlanError(entry_start + at + 1 + slash + 1,
                                     "malformed seed");
            fs.nthHit = 0;
        } else {
            char *end = nullptr;
            fs.nthHit = std::strtoull(trigger.c_str(), &end, 10);
            if (end == trigger.c_str() || *end != '\0' ||
                fs.nthHit == 0)
                throw FaultPlanError(
                    entry_start + at + 1,
                    "trigger must be a positive hit count or "
                    "'pPROB/SEED'");
        }

        const std::string action = entry.substr(colon + 1);
        if (action == "bad_alloc")
            fs.action = Action::BadAlloc;
        else if (action == "io_error")
            fs.action = Action::IoError;
        else if (action == "error")
            fs.action = Action::Error;
        else
            throw FaultPlanError(entry_start + colon + 1,
                                 "unknown action '" + action + "'");

        plan._specs.push_back(fs);
        pos = entry_end + (entry_end < n ? 1 : 0);
        if (entry_end < n && entry_end + 1 == n)
            throw FaultPlanError(n, "trailing comma");
    }
    return plan;
}

Injector &
Injector::global()
{
    static Injector instance;
    return instance;
}

void
Injector::arm(const FaultPlan &plan)
{
    _armed.store(false, std::memory_order_relaxed);
    _specs = plan.specs();
    _rng.clear();
    _rng.reserve(_specs.size());
    for (const FaultSpec &fs : _specs) {
        _rng.push_back(
            std::make_unique<std::atomic<std::uint64_t>>(fs.seed));
    }
    for (auto &h : _hits)
        h.store(0, std::memory_order_relaxed);
    if (!_specs.empty())
        _armed.store(true, std::memory_order_relaxed);
}

void
Injector::disarm()
{
    _armed.store(false, std::memory_order_relaxed);
    _specs.clear();
    _rng.clear();
}

std::uint64_t
Injector::hits(Site site) const
{
    return _hits[static_cast<int>(site)].load(
        std::memory_order_relaxed);
}

void
Injector::maybeInject(Site site)
{
    const std::uint64_t hit =
        _hits[static_cast<int>(site)].fetch_add(
            1, std::memory_order_relaxed) +
        1;
    for (std::size_t i = 0; i < _specs.size(); ++i) {
        const FaultSpec &fs = _specs[i];
        if (fs.site != site)
            continue;
        bool fire = false;
        if (fs.nthHit != 0) {
            fire = hit == fs.nthHit;
        } else {
            // Probabilistic mode: advance the per-entry seeded stream
            // one step per hit; the draw maps to [0,1).
            const std::uint64_t state = _rng[i]->fetch_add(
                1, std::memory_order_relaxed);
            const std::uint64_t draw = splitmix64(state);
            const double u =
                static_cast<double>(draw >> 11) * 0x1.0p-53;
            fire = u < fs.probability;
        }
        if (!fire)
            continue;
        switch (fs.action) {
          case Action::BadAlloc:
            throw std::bad_alloc();
          case Action::IoError:
            throw InjectedFault(site, /*transient=*/true);
          case Action::Error:
            throw InjectedFault(site, /*transient=*/false);
        }
    }
}

} // namespace toqm::fault
