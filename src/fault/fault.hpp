/**
 * @file
 * Deterministic fault injection for the mapping stack.
 *
 * A production mapping service (ROADMAP: toqm_serve) must survive
 * allocation failure, IO errors, worker death and mid-flight
 * cancellation without leaking, deadlocking or emitting an unverified
 * circuit.  Proving that needs a way to MAKE those failures happen,
 * deterministically, at the exact seams where they occur in the wild.
 *
 * This library provides:
 *
 *  - `Site`: the registry of fault points threaded through the tree
 *    (NodePool allocation, guard probes, QASM/calibration/manifest
 *    IO, ThreadPool worker start, IncumbentChannel publish, portfolio
 *    entry launch);
 *  - `FaultPlan`: a parsed `--fault-plan` / `TOQM_FAULT` spec — a
 *    comma-separated list of `site@N:action` entries (fire on the
 *    N-th hit of the site, 1-based) or `site@pP/SEED:action` entries
 *    (fire each hit with probability P under a splitmix64 stream
 *    seeded with SEED — seeded, so a failing sweep reproduces);
 *  - the process-global `Injector` the `TOQM_FAULT_POINT(site)` hook
 *    macro consults.
 *
 * Actions model the failure classes the recovery layer distinguishes:
 *   bad_alloc  -> throws std::bad_alloc        (memory exhaustion)
 *   io_error   -> throws InjectedFault(transient=true)
 *   error      -> throws InjectedFault(transient=false)
 *
 * The hook macro compiles to `((void)0)` unless the tree is built
 * with -DTOQM_ENABLE_FAULT_INJECTION (CMake option
 * TOQM_ENABLE_FAULT_INJECTION=ON), so default builds carry zero
 * instructions at the fault points and stay byte-identical.  With
 * injection compiled in but no plan armed, each hook costs one
 * relaxed atomic load and a branch (benchmarked in bench/).
 */

#ifndef TOQM_FAULT_FAULT_HPP
#define TOQM_FAULT_FAULT_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace toqm::fault {

/** Registered fault points.  Order is the registry order reported by
 *  `knownSites()` and `toqm_map --list-fault-sites`. */
enum class Site : int {
    PoolAlloc = 0,    ///< NodePool::allocate (search node memory)
    GuardPoll,        ///< ResourceGuard::probe (cold path)
    QasmIo,           ///< qasm::importFile / importString
    CalibrationIo,    ///< objective::CalibrationData::load
    ManifestIo,       ///< parallel::parseManifest
    WorkerStart,      ///< ThreadPool worker picking up a task
    IncumbentPublish, ///< IncumbentChannel::offer
    PortfolioLaunch,  ///< portfolio entry launch (runEntry)
};

inline constexpr int kNumSites = 8;

/** Spec/report name of @p site (e.g. "pool_alloc"). */
const char *siteName(Site site);

/** All registered site names, in registry order. */
const std::vector<std::string> &knownSites();

/** Parse a site name; returns false for unknown names. */
bool siteFromString(const std::string &name, Site &out);

/**
 * The exception an armed `io_error` / `error` action throws.
 * `transient()` separates the failure classes the retry layer
 * distinguishes: transient faults (IO hiccups) are retried, permanent
 * ones are not.
 */
class InjectedFault : public std::runtime_error
{
  public:
    InjectedFault(Site site, bool transient)
        : std::runtime_error(std::string("injected fault at ") +
                             siteName(site) +
                             (transient ? " (transient)" : "")),
          _site(site), _transient(transient)
    {}

    Site site() const { return _site; }

    bool transient() const { return _transient; }

  private:
    Site _site;
    bool _transient;
};

/** What an armed entry does when it fires. */
enum class Action {
    BadAlloc, ///< throw std::bad_alloc
    IoError,  ///< throw InjectedFault(transient=true)
    Error,    ///< throw InjectedFault(transient=false)
};

/** One parsed `site@trigger:action` entry. */
struct FaultSpec
{
    Site site = Site::PoolAlloc;
    Action action = Action::Error;
    /** Deterministic mode: fire on exactly the nth hit (1-based).
     *  0 = probabilistic mode (see below). */
    std::uint64_t nthHit = 0;
    /** Probabilistic mode: fire each hit with this probability. */
    double probability = 0.0;
    /** Seed of the per-entry splitmix64 stream. */
    std::uint64_t seed = 0;
};

/** Error thrown by FaultPlan::parse, positioned by byte offset into
 *  the spec string. */
class FaultPlanError : public std::runtime_error
{
  public:
    FaultPlanError(std::size_t offset, const std::string &message)
        : std::runtime_error("fault-plan: offset " +
                             std::to_string(offset) + ": " + message),
          _offset(offset)
    {}

    std::size_t offset() const { return _offset; }

  private:
    std::size_t _offset;
};

/**
 * A parsed fault plan.
 *
 * Grammar (whitespace not allowed):
 *   plan    := entry (',' entry)*
 *   entry   := site '@' trigger ':' action
 *   trigger := N            -- fire on the N-th hit (1-based)
 *            | 'p' P '/' S  -- fire each hit with probability P
 *                              (0 < P <= 1), seeded with S
 *   site    := pool_alloc | guard_poll | qasm_io | calibration_io |
 *              manifest_io | worker_start | incumbent_publish |
 *              portfolio_launch
 *   action  := bad_alloc | io_error | error
 */
class FaultPlan
{
  public:
    /** Parse @p spec; throws FaultPlanError on malformed input. */
    static FaultPlan parse(const std::string &spec);

    const std::vector<FaultSpec> &specs() const { return _specs; }

    bool empty() const { return _specs.empty(); }

  private:
    std::vector<FaultSpec> _specs;
};

/**
 * The process-global injector `TOQM_FAULT_POINT` consults.  Disarmed
 * (the default), `maybeInject` is one relaxed load and a not-taken
 * branch.  Arming swaps in a plan; hit counters restart from zero.
 *
 * Thread safety: `maybeInject` may be called from any thread
 * (per-site hit counters are atomic; the probabilistic stream state
 * is atomic too, so concurrent hits draw distinct values).  `arm` /
 * `disarm` must not race with in-flight hooks — the CLI arms once
 * before any work starts.
 */
class Injector
{
  public:
    static Injector &global();

    /** Install @p plan and start counting hits from zero. */
    void arm(const FaultPlan &plan);

    /** Remove the plan (tests); hooks go back to the fast path. */
    void disarm();

    bool armed() const
    {
        return _armed.load(std::memory_order_relaxed);
    }

    /** Hits recorded at @p site since the last arm(). */
    std::uint64_t hits(Site site) const;

    /** The hook body: count the hit and fire any matching entry. */
    void maybeInject(Site site);

  private:
    std::atomic<bool> _armed{false};
    std::vector<FaultSpec> _specs;
    /** Per-entry probabilistic stream cursors (parallel to _specs;
     *  heap-allocated because atomics are pinned in place). */
    std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> _rng;
    std::atomic<std::uint64_t> _hits[kNumSites] = {};
};

/** Hook entry point (kept out-of-line so the macro stays tiny). */
inline void
faultPoint(Site site)
{
    Injector &inj = Injector::global();
    if (inj.armed())
        inj.maybeInject(site);
}

} // namespace toqm::fault

/**
 * The fault hook.  Compiled out entirely (zero instructions, zero
 * includes needed at call sites beyond this header) unless the tree
 * is configured with TOQM_ENABLE_FAULT_INJECTION=ON.
 */
#if TOQM_ENABLE_FAULT_INJECTION
#define TOQM_FAULT_POINT(site) \
    ::toqm::fault::faultPoint(::toqm::fault::Site::site)
#else
#define TOQM_FAULT_POINT(site) ((void)0)
#endif

#endif // TOQM_FAULT_FAULT_HPP
