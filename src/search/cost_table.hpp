/**
 * @file
 * Search-layer cost table: the encoded, totally-ordered cost model a
 * mapping search minimises when the objective is not plain cycles.
 *
 * Every objective this stack supports is lowered to one monotone
 * int64 key of the shape
 *
 *     key = cycleWeight * cycles + sum of per-action weights
 *
 * where the per-action weights are non-negative integers attached to
 * gate placements (per physical operand) and swap insertions (per
 * physical edge).  Minimising the key under A-star or IDA stays
 * exact because the key is additive along a path and the heuristic
 * bound (see CostEstimator) remains admissible: every unscheduled gate
 * still must pay at least its layout-independent minimum weight
 * (`gateMin`), and every remaining cycle costs at least
 * `cycleWeight`.
 *
 * A null `CostTable *` everywhere means "plain cycles": the encoded
 * key degenerates to the makespan and every code path reduces to the
 * original scalar-cycle arithmetic, bit for bit.  Higher layers
 * (src/objective) build tables from calibration data; this type is
 * deliberately dumb so the search core does not depend on them.
 */

#ifndef TOQM_SEARCH_COST_TABLE_HPP
#define TOQM_SEARCH_COST_TABLE_HPP

#include <cstdint>
#include <vector>

#include "ir/circuit.hpp"
#include "ir/latency.hpp"

namespace toqm::search {

/** Encoded additive cost model for one (circuit, device) instance. */
struct CostTable
{
    /** Weight charged per elapsed cycle (>= 1 keeps keys ordered by
     *  makespan when action weights tie). */
    std::int64_t cycleWeight = 1;

    /** Per-physical-qubit weight of placing a one-qubit gate there
     *  (size numPhysical). */
    std::vector<std::int64_t> oneQubit;

    /** Per-physical-pair weight of a two-qubit gate on (p0, p1),
     *  indexed p0 * numPhysical + p1 (size numPhysical^2; symmetric). */
    std::vector<std::int64_t> twoQubit;

    /** Per-physical-pair weight of inserting a swap on (p0, p1),
     *  same indexing as twoQubit. */
    std::vector<std::int64_t> swap;

    /**
     * Layout-independent minimum placement weight of each logical
     * gate (size = logical circuit size, pseudo ops 0).  Used by the
     * admissible heuristic: any completion pays at least
     * sum(gateMin over unscheduled gates).
     */
    std::vector<std::int64_t> gateMin;

    /** Sum of gateMin over the whole circuit. */
    std::int64_t totalMin = 0;

    int numPhysical = 0;

    std::int64_t oneQubitWeight(int p) const
    {
        return oneQubit[static_cast<std::size_t>(p)];
    }

    std::int64_t twoQubitWeight(int p0, int p1) const
    {
        return twoQubit[static_cast<std::size_t>(p0) *
                            static_cast<std::size_t>(numPhysical) +
                        static_cast<std::size_t>(p1)];
    }

    std::int64_t swapWeight(int p0, int p1) const
    {
        return swap[static_cast<std::size_t>(p0) *
                        static_cast<std::size_t>(numPhysical) +
                    static_cast<std::size_t>(p1)];
    }

    /**
     * Placement weight of logical gate @p gate executed on physical
     * operands @p p0 / @p p1 (p1 < 0 for one-qubit gates).  Barriers
     * and measures are free, matching sim::estimateFidelity.
     */
    std::int64_t gateWeight(const ir::Gate &gate, int p0, int p1) const;

    /**
     * Exact encoded cost of a fully mapped physical circuit:
     * cycleWeight * ASAP makespan + the placement weight of every
     * gate and swap in it.  This is the same total a search terminal
     * reports via SearchNode::fKey(), so results from different
     * algorithms (or different objectives racing in a portfolio) can
     * be compared under one objective.
     */
    std::int64_t evaluateCircuit(const ir::Circuit &physical,
                                 const ir::LatencyModel &latency) const;
};

} // namespace toqm::search

#endif // TOQM_SEARCH_COST_TABLE_HPP
