/**
 * @file
 * `IncumbentChannel` — the lock-free exchange racing searches use to
 * share what they have learned about one mapping instance.
 *
 * A portfolio run (src/parallel/portfolio.hpp) races K independently
 * configured searches over the SAME circuit/device/latency triple.
 * Two facts transfer between them safely:
 *
 *  - an achievable cost (any complete schedule's encoded cost key —
 *    the plain makespan under the cycles objective — is a valid
 *    upper bound for every other search minimising the SAME
 *    objective on the instance), published with `offer()` and read
 *    as the pruning watermark `bound()`;
 *  - a stop request (`requestStop()`), raised when one search PROVES
 *    optimality so the others stop burning cores on a settled
 *    question.
 *
 * Both sides are single relaxed atomics: the watermark read sits on
 * the expansion hot path of the exact A* search (one load per
 * generated child), and the stop token is polled by each worker's
 * `ResourceGuard` at its normal probe cadence.  Relaxed ordering is
 * sufficient because the channel transfers VALUES, not data
 * structures: a stale bound only delays pruning (never unsoundly
 * prunes, since bounds only decrease), and a stale stop flag only
 * delays the stop by one probe interval.
 *
 * The channel carries no node or circuit data — winners hand their
 * mapping to the portfolio driver through ordinary (mutex-guarded)
 * result slots, not through here.
 */

#ifndef TOQM_SEARCH_INCUMBENT_CHANNEL_HPP
#define TOQM_SEARCH_INCUMBENT_CHANNEL_HPP

#include <atomic>
#include <cstdint>
#include <limits>

#include "fault/fault.hpp"

namespace toqm::search {

class IncumbentChannel
{
  public:
    /** The watermark value meaning "no incumbent anywhere yet". */
    static constexpr std::int64_t kNoBound =
        std::numeric_limits<std::int64_t>::max();

    /**
     * Best encoded cost key achieved by ANY search on the instance
     * (the makespan itself under the cycles objective).  Searches
     * prune strictly-greater keys only, so a foreign bound can never
     * cut an equal-cost optimum.
     */
    std::int64_t
    bound() const
    {
        return _best.load(std::memory_order_relaxed);
    }

    /**
     * Publish an achieved encoded cost key.  Monotone: the watermark
     * only ever decreases.  Returns true when @p cost improved it.
     */
    bool
    offer(std::int64_t cost)
    {
        // Fault site: an entry dying while publishing its incumbent
        // must neither corrupt the watermark nor stall the race (the
        // CAS below never ran, so the channel state is untouched).
        TOQM_FAULT_POINT(IncumbentPublish);
        std::int64_t current = _best.load(std::memory_order_relaxed);
        while (cost < current) {
            if (_best.compare_exchange_weak(current, cost,
                                            std::memory_order_relaxed))
                return true;
        }
        return false;
    }

    /** Ask every search wired to this channel to stop (sticky). */
    void
    requestStop()
    {
        _stop.store(true, std::memory_order_relaxed);
    }

    bool
    stopRequested() const
    {
        return _stop.load(std::memory_order_relaxed);
    }

    /**
     * The token to plant in a worker's `GuardConfig::cancelToken`;
     * the guard reports `StopReason::Cancelled` once it trips.
     */
    const std::atomic<bool> *stopToken() const { return &_stop; }

  private:
    std::atomic<std::int64_t> _best{kNoBound};
    std::atomic<bool> _stop{false};
};

} // namespace toqm::search

#endif // TOQM_SEARCH_INCUMBENT_CHANNEL_HPP
