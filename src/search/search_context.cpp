#include "search_context.hpp"

#include <stdexcept>

namespace toqm::search {

SearchContext::SearchContext(const ir::Circuit &circuit,
                             const arch::CouplingGraph &graph,
                             const ir::LatencyModel &latency)
    : _circuit(&circuit), _graph(&graph), _latency(&latency),
      _swapLatency(latency.swapLatency())
{
    if (circuit.numQubits() > graph.numQubits()) {
        throw std::invalid_argument(
            "circuit has more qubits (" +
            std::to_string(circuit.numQubits()) + ") than device (" +
            std::to_string(graph.numQubits()) + ")");
    }
    if (!graph.connected())
        throw std::invalid_argument("coupling graph is not connected");

    _qubitGates.resize(static_cast<size_t>(circuit.numQubits()));
    _posOnQubit.resize(static_cast<size_t>(circuit.size()));
    _gateLatency.reserve(static_cast<size_t>(circuit.size()));
    for (int i = 0; i < circuit.size(); ++i) {
        const ir::Gate &g = circuit.gate(i);
        if (g.isBarrier())
            throw std::invalid_argument(
                "mapper input must not contain barriers; lower them "
                "first (Circuit::withoutSwapsAndBarriers)");
        if (g.isSwap())
            throw std::invalid_argument(
                "mapper input must not already contain swaps");
        for (int q : g.qubits()) {
            _posOnQubit[static_cast<size_t>(i)].push_back(
                static_cast<int>(_qubitGates[static_cast<size_t>(q)]
                                     .size()));
            _qubitGates[static_cast<size_t>(q)].push_back(i);
        }
        _gateLatency.push_back(latency.latency(g));
    }
}

int
SearchContext::posOnQubit(int i, int q) const
{
    const ir::Gate &g = _circuit->gate(i);
    for (size_t k = 0; k < g.qubits().size(); ++k) {
        if (g.qubits()[k] == q)
            return _posOnQubit[static_cast<size_t>(i)][k];
    }
    throw std::invalid_argument("posOnQubit: gate does not act on qubit");
}

} // namespace toqm::search
