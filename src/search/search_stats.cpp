#include "search_stats.hpp"

#include <algorithm>
#include <cstdio>

namespace toqm::search {

void
SearchStats::merge(const SearchStats &other)
{
    expanded += other.expanded;
    generated += other.generated;
    filtered += other.filtered;
    trims += other.trims;
    rounds += other.rounds;
    maxQueueSize = std::max(maxQueueSize, other.maxQueueSize);
    peakPoolBytes = std::max(peakPoolBytes, other.peakPoolBytes);
    peakLiveNodes = std::max(peakLiveNodes, other.peakLiveNodes);
    seconds += other.seconds;
    guardProbes += other.guardProbes;
}

const char *
toString(SearchStatus status)
{
    switch (status) {
      case SearchStatus::Solved:
        return "solved";
      case SearchStatus::BudgetExhausted:
        return "budget-exhausted";
      case SearchStatus::Infeasible:
        return "infeasible";
      case SearchStatus::DeadlineExceeded:
        return "deadline-exceeded";
      case SearchStatus::MemoryExhausted:
        return "memory-exhausted";
      case SearchStatus::Cancelled:
        return "cancelled";
    }
    return "unknown";
}

std::string
statsJsonLine(const SearchStats &stats, std::string_view mapper,
              SearchStatus status, int cycles, int swaps,
              const StatsLineContext &context)
{
    char buf[1024];
    int n = std::snprintf(
        buf, sizeof(buf),
        "{\"mapper\":\"%.*s\",\"status\":\"%s\",\"cycles\":%d,"
        "\"swaps\":%d,\"expanded\":%llu,\"generated\":%llu,"
        "\"filtered\":%llu,\"trims\":%llu,\"rounds\":%d,"
        "\"max_queue\":%llu,\"peak_pool_bytes\":%llu,"
        "\"peak_live_nodes\":%llu,\"seconds\":%.6f,"
        "\"schemaVersion\":%d,\"arch\":\"%.*s\","
        "\"latency\":{\"l1\":%d,\"l2\":%d,\"swap\":%d},"
        "\"detail\":",
        static_cast<int>(mapper.size()), mapper.data(),
        toString(status), cycles, swaps,
        static_cast<unsigned long long>(stats.expanded),
        static_cast<unsigned long long>(stats.generated),
        static_cast<unsigned long long>(stats.filtered),
        static_cast<unsigned long long>(stats.trims), stats.rounds,
        static_cast<unsigned long long>(stats.maxQueueSize),
        static_cast<unsigned long long>(stats.peakPoolBytes),
        static_cast<unsigned long long>(stats.peakLiveNodes),
        stats.seconds, kStatsLineSchemaVersion,
        static_cast<int>(context.arch.size()), context.arch.data(),
        context.lat1, context.lat2, context.latSwap);

    const auto remaining = [&] { return sizeof(buf) - static_cast<size_t>(n); };
    const char *incumbent = context.hasIncumbent ? "true" : "false";
    switch (status) {
      case SearchStatus::Solved:
        n += std::snprintf(buf + n, remaining(),
                           "{\"proven_optimal\":%s}",
                           context.provenOptimal ? "true" : "false");
        break;
      case SearchStatus::BudgetExhausted:
        n += std::snprintf(
            buf + n, remaining(), "{\"node_budget\":%llu}",
            static_cast<unsigned long long>(context.nodeBudget));
        break;
      case SearchStatus::Infeasible:
        n += std::snprintf(
            buf + n, remaining(),
            "{\"reason\":\"search-space-exhausted\"}");
        break;
      case SearchStatus::DeadlineExceeded:
        n += std::snprintf(
            buf + n, remaining(),
            "{\"deadline_ms\":%llu,\"incumbent\":%s}",
            static_cast<unsigned long long>(context.deadlineMs),
            incumbent);
        break;
      case SearchStatus::MemoryExhausted:
        n += std::snprintf(
            buf + n, remaining(),
            "{\"max_pool_bytes\":%llu,\"incumbent\":%s}",
            static_cast<unsigned long long>(context.maxPoolBytes),
            incumbent);
        break;
      case SearchStatus::Cancelled:
        n += std::snprintf(buf + n, remaining(),
                           "{\"incumbent\":%s}", incumbent);
        break;
    }

    // Objective annotations live INSIDE the detail object: re-open
    // it, append the additive keys, re-close.  Skipped entirely for
    // plain-cycles runs (empty objectiveName), which keeps the
    // default line byte-identical to the pre-objective shape.
    if (!context.objectiveName.empty() && n > 0 &&
        n < static_cast<int>(sizeof(buf)) && buf[n - 1] == '}') {
        --n;
        n += std::snprintf(
            buf + n, remaining(), ",\"objective\":\"%.*s\"",
            static_cast<int>(context.objectiveName.size()),
            context.objectiveName.data());
        if (context.hasCost)
            n += std::snprintf(buf + n, remaining(),
                               ",\"cost\":%.9g", context.cost);
        if (context.hasFidelity)
            n += std::snprintf(buf + n, remaining(),
                               ",\"fidelity\":%.9g",
                               context.fidelity);
        n += std::snprintf(buf + n, remaining(), "}");
    }

    // The degradation/portfolio blocks are caller-rendered and
    // unbounded, so the tail is assembled as a string rather than
    // into the fixed buf.
    std::string line(buf, static_cast<size_t>(n));
    if (!context.degradationJson.empty()) {
        line += ",\"degradation\":";
        line += context.degradationJson;
    }
    if (!context.input.empty()) {
        line += ",\"input\":\"";
        // Input paths are caller-controlled: escape the two JSON
        // string metacharacters so the line stays parseable.
        for (const char c : context.input) {
            if (c == '"' || c == '\\')
                line += '\\';
            line += c;
        }
        line += '"';
    }
    if (!context.portfolioJson.empty()) {
        line += ",\"portfolio\":";
        line += context.portfolioJson;
    }
    if (!context.faultJson.empty()) {
        line += ",\"fault\":";
        line += context.faultJson;
    }
    if (!context.serveJson.empty()) {
        line += ",\"serve\":";
        line += context.serveJson;
    }
    line += "}\n";
    return line;
}

std::string
statsJsonLine(const SearchStats &stats, std::string_view mapper,
              SearchStatus status, int cycles, int swaps)
{
    return statsJsonLine(stats, mapper, status, cycles, swaps,
                         StatsLineContext{});
}

} // namespace toqm::search
