#include "search_stats.hpp"

#include <cstdio>

namespace toqm::search {

const char *
toString(SearchStatus status)
{
    switch (status) {
      case SearchStatus::Solved:
        return "solved";
      case SearchStatus::BudgetExhausted:
        return "budget-exhausted";
      case SearchStatus::Infeasible:
        return "infeasible";
    }
    return "unknown";
}

std::string
statsJsonLine(const SearchStats &stats, std::string_view mapper,
              SearchStatus status, int cycles, int swaps)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"mapper\":\"%.*s\",\"status\":\"%s\",\"cycles\":%d,"
        "\"swaps\":%d,\"expanded\":%llu,\"generated\":%llu,"
        "\"filtered\":%llu,\"trims\":%llu,\"rounds\":%d,"
        "\"max_queue\":%llu,\"peak_pool_bytes\":%llu,"
        "\"peak_live_nodes\":%llu,\"seconds\":%.6f}\n",
        static_cast<int>(mapper.size()), mapper.data(),
        toString(status), cycles, swaps,
        static_cast<unsigned long long>(stats.expanded),
        static_cast<unsigned long long>(stats.generated),
        static_cast<unsigned long long>(stats.filtered),
        static_cast<unsigned long long>(stats.trims), stats.rounds,
        static_cast<unsigned long long>(stats.maxQueueSize),
        static_cast<unsigned long long>(stats.peakPoolBytes),
        static_cast<unsigned long long>(stats.peakLiveNodes),
        stats.seconds);
    return buf;
}

} // namespace toqm::search
