#include "node_pool.hpp"

#include <algorithm>
#include <cstring>
#include <new>
#include <stdexcept>

#include "fault/fault.hpp"

namespace toqm::search {

namespace {

constexpr size_t kNodesPerSlab = 256;

size_t
roundUp(size_t n, size_t align)
{
    return (n + align - 1) / align * align;
}

} // namespace

int
SearchNode::makespan() const
{
    int last = cycle;
    const int *busy = busyUntil();
    for (int p = 0; p < _np; ++p)
        last = std::max(last, busy[p]);
    return last;
}

std::uint64_t
SearchNode::mappingHash() const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    const int *l2p = log2phys();
    for (int l = 0; l < _nl; ++l) {
        h ^= static_cast<std::uint64_t>(l2p[l] + 2);
        h *= 0x100000001b3ull;
    }
    // Initial-phase nodes must not collide with in-flight ones.
    h ^= initialPhase ? 0x9e3779b97f4a7c15ull : 0;
    return h;
}

NodePool::NodePool(const SearchContext &ctx)
    : _ctx(&ctx), _nl(ctx.numLogical()), _np(ctx.numPhysical()),
      _bufInts(static_cast<size_t>(2 * _nl + 3 * _np)),
      _stride(roundUp(sizeof(SearchNode) + _bufInts * sizeof(int),
                      alignof(std::max_align_t))),
      _nodesPerSlab(kNodesPerSlab),
      _slabBytes(_stride * kNodesPerSlab),
      // Start past the (empty) last slab so the first allocate()
      // grabs a slab.
      _cursor(kNodesPerSlab)
{}

NodePool::~NodePool()
{
    // Every slot below the cursor holds a constructed node (live or
    // free-listed); destroy them so `actions` releases its storage.
    for (size_t s = 0; s < _slabs.size(); ++s) {
        const size_t constructed =
            s + 1 < _slabs.size() ? _nodesPerSlab : _cursor;
        std::byte *base = _slabs[s].get();
        for (size_t i = 0; i < constructed; ++i) {
            auto *node =
                std::launder(reinterpret_cast<SearchNode *>(
                    base + i * _stride));
            node->~SearchNode();
        }
    }
}

SearchNode *
NodePool::allocate()
{
    // Fault site: node memory is the search's dominant allocation, so
    // an injected bad_alloc here models slab exhaustion.  The hook
    // fires BEFORE any counter moves, so a thrown fault leaves the
    // pool's bookkeeping consistent (no phantom live node).
    TOQM_FAULT_POINT(PoolAlloc);
    ++_totalAllocations;
    ++_live;
    _peakLive = std::max(_peakLive, _live);
    if (!_free.empty()) {
        ++_recycled;
        SearchNode *node = _free.back();
        _free.pop_back();
        return node;
    }
    if (_cursor == _nodesPerSlab) {
        _slabs.push_back(std::make_unique<std::byte[]>(_slabBytes));
        _cursor = 0;
    }
    std::byte *slot = _slabs.back().get() + _cursor * _stride;
    ++_cursor;
    int *buf = reinterpret_cast<int *>(slot + sizeof(SearchNode));
    return new (slot) SearchNode(this, _nl, _np, buf);
}

void
NodePool::recycle(SearchNode *node)
{
    // Keep the node constructed so its actions vector's capacity is
    // reused by the next allocation; just drop stale links.
    node->_parent = nullptr;
    node->actions.clear();
    --_live;
    _free.push_back(node);
}

void
NodePool::release(SearchNode *node)
{
    while (node != nullptr) {
        if (--node->_refs != 0)
            return;
        SearchNode *parent = node->_parent;
        node->_pool->recycle(node);
        node = parent;
    }
}

void
NodePool::setParent(SearchNode *node, SearchNode *parent)
{
    node->_parent = parent;
    if (parent != nullptr)
        ++parent->_refs;
}

SearchNode *
NodePool::acquireCopy(const SearchNode &src)
{
    SearchNode *node = allocate();
    node->cycle = src.cycle;
    node->costG = src.costG;
    node->costH = src.costH;
    node->objG = src.objG;
    node->objH = src.objH;
    node->objSlack = src.objSlack;
    node->routeScore = src.routeScore;
    node->actions = src.actions;
    node->scheduledGates = src.scheduledGates;
    node->busySum = src.busySum;
    node->activeSwapUntil = src.activeSwapUntil;
    node->activeGateUntil = src.activeGateUntil;
    node->initialSwaps = src.initialSwaps;
    node->initialPhase = src.initialPhase;
    node->dead = false;
    std::memcpy(node->_buf, src._buf, _bufInts * sizeof(int));
    return node;
}

NodeRef
NodePool::root(const std::vector<int> &initial_layout,
               bool initial_phase)
{
    const int nl = _nl;
    const int np = _np;
    SearchNode *node = allocate();
    // A recycled slot carries the previous occupant's state; reset
    // every scalar, not just the ones root() sets.
    node->cycle = 0;
    node->costG = 0;
    node->costH = 0;
    node->objG = 0;
    node->objH = 0;
    node->objSlack = 0;
    node->routeScore = 0;
    node->actions.clear();
    node->scheduledGates = 0;
    node->busySum = 0;
    node->activeSwapUntil = 0;
    node->activeGateUntil = 0;
    node->initialSwaps = 0;
    node->initialPhase = initial_phase;
    node->dead = false;

    int *l2p = node->log2phys();
    int *p2l = node->phys2log();
    std::fill(p2l, p2l + np, -1);
    for (int l = 0; l < nl; ++l) {
        const int p = l < static_cast<int>(initial_layout.size())
                          ? initial_layout[static_cast<size_t>(l)]
                          : -1;
        l2p[l] = p;
        if (p < 0)
            continue;
        if (p >= np || p2l[p] != -1) {
            // Give the slot back before throwing; no NodeRef owns it
            // yet.
            ++node->_refs;
            NodeRef guard(node);
            throw std::invalid_argument(
                "initial layout is not injective into the device");
        }
        p2l[p] = l;
    }
    std::fill(node->head(), node->head() + nl, 0);
    std::fill(node->busyUntil(), node->busyUntil() + np, 0);
    std::fill(node->lastSwapPartner(),
              node->lastSwapPartner() + np, -1);
    ++node->_refs;
    return NodeRef(node);
}

NodeRef
NodePool::expand(const NodeRef &parent, int start_cycle,
                 const std::vector<Action> &actions)
{
    const SearchContext &ctx = *_ctx;
    SearchNode *node = acquireCopy(*parent);
    setParent(node, parent.get());
    node->initialPhase = false;
    node->cycle = start_cycle;
    node->costG = parent->costG + (start_cycle - parent->cycle);
    node->actions = actions;
    const CostTable *table = ctx.costTable();
    node->objG =
        parent->objG + (table != nullptr ? table->cycleWeight : 1) *
                           static_cast<std::int64_t>(
                               start_cycle - parent->cycle);

    int *busy = node->busyUntil();
    int *l2p = node->log2phys();
    int *p2l = node->phys2log();
    int *partner = node->lastSwapPartner();

    for (const Action &a : actions) {
        if (a.isSwap()) {
            const int finish = start_cycle + ctx.swapLatency() - 1;
            node->busySum += (finish - busy[a.p0]) + (finish - busy[a.p1]);
            busy[a.p0] = finish;
            busy[a.p1] = finish;
            node->activeSwapUntil =
                std::max(node->activeSwapUntil, finish);
            // Post-swap mapping convention: apply immediately.
            const int l0 = p2l[a.p0];
            const int l1 = p2l[a.p1];
            p2l[a.p0] = l1;
            p2l[a.p1] = l0;
            if (l0 >= 0)
                l2p[l0] = a.p1;
            if (l1 >= 0)
                l2p[l1] = a.p0;
            partner[a.p0] = a.p1;
            partner[a.p1] = a.p0;
            if (table != nullptr) {
                // A swap is pure overhead under any objective: it
                // contributes its full weight to the slack.
                const std::int64_t w = table->swapWeight(a.p0, a.p1);
                node->objG += w;
                node->objSlack += w;
            }
        } else {
            const int finish =
                start_cycle + ctx.gateLatency(a.gateIndex) - 1;
            const ir::Gate &g = ctx.circuit().gate(a.gateIndex);
            node->busySum += finish - busy[a.p0];
            busy[a.p0] = finish;
            partner[a.p0] = -1;
            if (a.p1 >= 0) {
                node->busySum += finish - busy[a.p1];
                busy[a.p1] = finish;
                partner[a.p1] = -1;
            }
            node->activeGateUntil =
                std::max(node->activeGateUntil, finish);
            int *head = node->head();
            for (int q : g.qubits())
                ++head[q];
            ++node->scheduledGates;
            if (table != nullptr) {
                const std::int64_t w = table->gateWeight(g, a.p0, a.p1);
                node->objG += w;
                node->objSlack +=
                    w - table->gateMin[static_cast<std::size_t>(
                            a.gateIndex)];
            }
        }
    }
    ++node->_refs;
    return NodeRef(node);
}

NodeRef
NodePool::initialSwapChild(const NodeRef &parent, int p0, int p1)
{
    SearchNode *node = acquireCopy(*parent);
    setParent(node, parent.get());
    node->actions.clear();
    ++node->initialSwaps;
    int *l2p = node->log2phys();
    int *p2l = node->phys2log();
    const int l0 = p2l[p0];
    const int l1 = p2l[p1];
    p2l[p0] = l1;
    p2l[p1] = l0;
    if (l0 >= 0)
        l2p[l0] = p1;
    if (l1 >= 0)
        l2p[l1] = p0;
    ++node->_refs;
    return NodeRef(node);
}

NodeRef
NodePool::commitInitialMapping(const NodeRef &parent)
{
    SearchNode *node = acquireCopy(*parent);
    setParent(node, parent.get());
    node->actions.clear();
    node->initialPhase = false;
    ++node->_refs;
    return NodeRef(node);
}

NodeRef
NodePool::cloneSibling(const NodeRef &node)
{
    SearchNode *copy = acquireCopy(*node);
    setParent(copy, node->_parent);
    ++copy->_refs;
    return NodeRef(copy);
}

} // namespace toqm::search
