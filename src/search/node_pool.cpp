#include "node_pool.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>
#include <new>
#include <stdexcept>

#include "fault/fault.hpp"

namespace toqm::search {

namespace {

constexpr std::size_t kNodesPerSlab = 256;

/**
 * Initial-phase nodes must not collide with in-flight ones: the salt
 * is XORed into the cached hash while initialPhase is set and XORed
 * back out when the mapping is committed.
 */
constexpr std::uint64_t kPhaseSalt = 0x9e3779b97f4a7c15ull;

std::size_t
roundUp(std::size_t n, std::size_t align)
{
    return (n + align - 1) / align * align;
}

/** 64-bit words needed to hold @p bytes. */
std::size_t
wordsFor(std::size_t bytes)
{
    return (bytes + 7) / 8;
}

/**
 * Per-field clone copy: every per-node slice is padded to whole
 * words, so cloning moves aligned 64-bit words in a short inlined
 * loop (a handful of words per field) instead of a libc memcpy call
 * per field.
 */
inline void
copyWords(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = src[i];
}

/** splitmix64 — deterministic, well-mixed Zobrist key stream. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t
SearchNode::materializeHash() const
{
    // Walk up to the nearest ancestor with a materialized hash (the
    // root always has one), then replay each descendant's swaps
    // downward, caching as we go.  Swaps within one action set are
    // qubit-disjoint (the expander enumerates disjoint subsets), so
    // a node's own post-swap phys2log identifies exactly which
    // logical each swap moved: the occupant of p0 arrived from p1
    // and vice versa.
    thread_local std::vector<const SearchNode *> chain;
    chain.clear();
    const SearchNode *cur = this;
    while (!cur->_hashValid) {
        chain.push_back(cur);
        cur = cur->_parent;
        assert(cur != nullptr &&
               "search node chain has no materialized hash");
    }
    std::uint64_t h = cur->_mapHash;
    bool phase = cur->initialPhase;
    const NodePool &pool = *_pool;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        const SearchNode *c = *it;
        if (c->initialPhase != phase) {
            h ^= kPhaseSalt;
            phase = c->initialPhase;
        }
        const QIndex *p2l = c->phys2log();
        for (const Action &a : c->actions) {
            if (!a.isSwap())
                continue;
            const int l0 = p2l[a.p0]; // arrived from p1
            const int l1 = p2l[a.p1]; // arrived from p0
            if (l0 >= 0)
                h ^= pool.zobrist(l0, a.p1) ^ pool.zobrist(l0, a.p0);
            if (l1 >= 0)
                h ^= pool.zobrist(l1, a.p0) ^ pool.zobrist(l1, a.p1);
        }
        c->_mapHash = h;
        c->_hashValid = true;
    }
    return h;
}

int
SearchNode::makespan() const
{
    int last = cycle;
    const int *busy = busyUntil();
    for (int p = 0; p < _np; ++p)
        last = std::max(last, busy[p]);
    return last;
}

NodePool::NodePool(const SearchContext &ctx)
    : _ctx(&ctx), _nl(ctx.numLogical()), _np(ctx.numPhysical()),
      _wL2p(wordsFor(static_cast<std::size_t>(_nl) * sizeof(QIndex))),
      _wHead(wordsFor(static_cast<std::size_t>(_nl) * sizeof(int))),
      _wP2l(wordsFor(static_cast<std::size_t>(_np) * sizeof(QIndex))),
      _wBusy(wordsFor(static_cast<std::size_t>(_np) * sizeof(int))),
      _wPartner(
          wordsFor(static_cast<std::size_t>(_np) * sizeof(QIndex))),
      _occWords(std::max<std::size_t>(
          1, (static_cast<std::size_t>(_np) + 63) / 64)),
      _offHead(kNodesPerSlab * _wL2p),
      _offP2l(_offHead + kNodesPerSlab * _wHead),
      _offBusy(_offP2l + kNodesPerSlab * _wP2l),
      _offPartner(_offBusy + kNodesPerSlab * _wBusy),
      _offOcc(_offPartner + kNodesPerSlab * _wPartner),
      _slabWords(_offOcc + kNodesPerSlab * _occWords),
      _nodeStride(roundUp(sizeof(SearchNode), alignof(SearchNode))),
      _nodesPerSlab(kNodesPerSlab),
      _slabBytes(kNodesPerSlab * _nodeStride +
                 _slabWords * sizeof(std::uint64_t)),
      // Start past the (empty) last slab so the first allocate()
      // grabs a slab.
      _cursor(kNodesPerSlab),
      _zobrist(static_cast<std::size_t>(_nl) *
               static_cast<std::size_t>(_np))
{
    if (_np > std::numeric_limits<QIndex>::max() ||
        _nl > std::numeric_limits<QIndex>::max()) {
        throw std::invalid_argument(
            "device/circuit too large for 16-bit qubit indices");
    }
    // Deterministic per-(logical, physical) placement keys; the
    // stream constant is fixed so hashes are reproducible across
    // runs and pools.
    for (std::size_t i = 0; i < _zobrist.size(); ++i)
        _zobrist[i] = splitmix64(0x51ab7e5u + i);
}

NodePool::~NodePool()
{
    // Every slot below the cursor holds a constructed node (live or
    // free-listed); destroy them so `actions` releases its storage.
    SlabCache &slabCache = SlabCache::global();
    const bool donate = slabCache.armed();
    for (std::size_t s = 0; s < _slabs.size(); ++s) {
        const std::size_t constructed =
            s + 1 < _slabs.size() ? _nodesPerSlab : _cursor;
        std::byte *base = _slabs[s].nodes.get();
        for (std::size_t i = 0; i < constructed; ++i) {
            auto *node = std::launder(
                reinterpret_cast<SearchNode *>(base + i * _nodeStride));
            node->~SearchNode();
        }
        if (donate) {
            SlabCache::Buffers buffers;
            buffers.nodes = std::move(_slabs[s].nodes);
            buffers.data = std::move(_slabs[s].data);
            slabCache.release(_nodesPerSlab * _nodeStride, _slabWords,
                              std::move(buffers));
        }
    }
}

void
NodePool::addSlab()
{
    Slab slab;
    SlabCache::Buffers recycled;
    if (SlabCache::global().acquire(_nodesPerSlab * _nodeStride,
                                    _slabWords, recycled)) {
        slab.nodes = std::move(recycled.nodes);
        slab.data = std::move(recycled.data);
    } else {
        slab.nodes =
            std::make_unique<std::byte[]>(_nodesPerSlab * _nodeStride);
        // Value-initialized: the padding tail of every slice starts
        // (and stays, since clones copy whole slices)
        // deterministically zero.  Adopted arenas are re-zeroed by
        // SlabCache::acquire to keep the same invariant.
        slab.data = std::make_unique<std::uint64_t[]>(_slabWords);
    }
    _slabs.push_back(std::move(slab));
    _cursor = 0;
}

SlabCache &
SlabCache::global()
{
    static SlabCache instance;
    return instance;
}

void
SlabCache::arm(std::size_t max_bytes)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _maxBytes = max_bytes;
    _armed.store(true, std::memory_order_relaxed);
}

void
SlabCache::disarm()
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _armed.store(false, std::memory_order_relaxed);
    _idle.clear();
    _idleBytes = 0;
}

bool
SlabCache::acquire(std::size_t node_bytes, std::size_t data_words,
                   Buffers &out)
{
    if (!armed())
        return false;
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        auto it = _idle.find({node_bytes, data_words});
        if (it == _idle.end() || it->second.empty()) {
            ++_declines;
            return false;
        }
        out = std::move(it->second.back());
        it->second.pop_back();
        _idleBytes -= node_bytes + data_words * sizeof(std::uint64_t);
        ++_reuses;
    }
    // Restore the "arena starts zero" invariant outside the lock.
    std::fill_n(out.data.get(), data_words, std::uint64_t{0});
    return true;
}

void
SlabCache::release(std::size_t node_bytes, std::size_t data_words,
                   Buffers buffers)
{
    if (!buffers.nodes || !buffers.data)
        return;
    const std::size_t bytes =
        node_bytes + data_words * sizeof(std::uint64_t);
    const std::lock_guard<std::mutex> lock(_mutex);
    if (!_armed.load(std::memory_order_relaxed) ||
        _idleBytes + bytes > _maxBytes) {
        ++_dropped;
        return; // buffers free on scope exit
    }
    _idle[{node_bytes, data_words}].push_back(std::move(buffers));
    _idleBytes += bytes;
    ++_donations;
}

SlabCache::Stats
SlabCache::stats() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    Stats s;
    s.reuses = _reuses;
    s.declines = _declines;
    s.donations = _donations;
    s.dropped = _dropped;
    s.idleBytes = _idleBytes;
    for (const auto &[key, buffers] : _idle)
        s.idleSlabs += buffers.size();
    return s;
}

SearchNode *
NodePool::allocate()
{
    // Fault site: node memory is the search's dominant allocation, so
    // an injected bad_alloc here models slab exhaustion.  The hook
    // fires BEFORE any counter moves, so a thrown fault leaves the
    // pool's bookkeeping consistent (no phantom live node).
    TOQM_FAULT_POINT(PoolAlloc);
    ++_totalAllocations;
    ++_live;
    _peakLive = std::max(_peakLive, _live);
    if (!_free.empty()) {
        ++_recycled;
        SearchNode *node = _free.back();
        _free.pop_back();
        return node;
    }
    if (_cursor == _nodesPerSlab)
        addSlab();
    Slab &slab = _slabs.back();
    const std::size_t i = _cursor++;
    std::uint64_t *w = slab.data.get();
    auto *l2p = reinterpret_cast<QIndex *>(w + i * _wL2p);
    auto *head = reinterpret_cast<int *>(w + _offHead + i * _wHead);
    auto *p2l = reinterpret_cast<QIndex *>(w + _offP2l + i * _wP2l);
    auto *busy = reinterpret_cast<int *>(w + _offBusy + i * _wBusy);
    auto *partner =
        reinterpret_cast<QIndex *>(w + _offPartner + i * _wPartner);
    std::uint64_t *occ = w + _offOcc + i * _occWords;
    std::byte *slot = slab.nodes.get() + i * _nodeStride;
    return new (slot)
        SearchNode(this, _nl, _np, l2p, head, p2l, busy, partner, occ);
}

void
NodePool::recycle(SearchNode *node)
{
    // Keep the node constructed so its actions vector's capacity is
    // reused by the next allocation; just drop stale links.
    node->_parent = nullptr;
    node->actions.clear();
    --_live;
    _free.push_back(node);
}

void
NodePool::release(SearchNode *node)
{
    while (node != nullptr) {
        if (--node->_refs != 0)
            return;
        SearchNode *parent = node->_parent;
        node->_pool->recycle(node);
        node = parent;
    }
}

void
NodePool::setParent(SearchNode *node, SearchNode *parent)
{
    node->_parent = parent;
    if (parent != nullptr)
        ++parent->_refs;
}

SearchNode *
NodePool::acquireCopy(const SearchNode &src)
{
    // `actions` is deliberately NOT copied: allocate() hands out
    // nodes with an empty vector (fresh or recycled), every child
    // constructor overwrites or wants it empty, and only
    // cloneSibling() needs the source's actions (it copies them
    // itself).  Skipping the copy keeps the per-child cost to the
    // scalar block plus the per-qubit word slices.
    SearchNode *node = allocate();
    node->cycle = src.cycle;
    node->costG = src.costG;
    node->costH = src.costH;
    node->objG = src.objG;
    node->objH = src.objH;
    node->objSlack = src.objSlack;
    node->routeScore = src.routeScore;
    node->scheduledGates = src.scheduledGates;
    node->firstUnscheduled = src.firstUnscheduled;
    node->busySum = src.busySum;
    node->activeSwapUntil = src.activeSwapUntil;
    node->activeGateUntil = src.activeGateUntil;
    node->initialSwaps = src.initialSwaps;
    node->initialPhase = src.initialPhase;
    node->dead = false;
    node->_mapHash = src._mapHash;
    node->_hashValid = src._hashValid;
    copyWords(reinterpret_cast<std::uint64_t *>(node->_l2p),
              reinterpret_cast<const std::uint64_t *>(src._l2p),
              _wL2p);
    copyWords(reinterpret_cast<std::uint64_t *>(node->_head),
              reinterpret_cast<const std::uint64_t *>(src._head),
              _wHead);
    copyWords(reinterpret_cast<std::uint64_t *>(node->_p2l),
              reinterpret_cast<const std::uint64_t *>(src._p2l),
              _wP2l);
    copyWords(reinterpret_cast<std::uint64_t *>(node->_busy),
              reinterpret_cast<const std::uint64_t *>(src._busy),
              _wBusy);
    copyWords(reinterpret_cast<std::uint64_t *>(node->_partner),
              reinterpret_cast<const std::uint64_t *>(src._partner),
              _wPartner);
    copyWords(node->_occ, src._occ, _occWords);
    return node;
}

std::uint64_t
NodePool::referenceMappingHash(const SearchNode &node) const
{
    std::uint64_t h = node.initialPhase ? kPhaseSalt : 0;
    const QIndex *l2p = node.log2phys();
    for (int l = 0; l < _nl; ++l) {
        if (l2p[l] >= 0)
            h ^= zobrist(l, l2p[l]);
    }
    return h;
}

void
NodePool::advanceFirstUnscheduled(SearchNode *node) const
{
    const SearchContext &ctx = *_ctx;
    const int total = ctx.numGates();
    const int *head = node->head();
    int i = node->firstUnscheduled;
    // Same "already scheduled" predicate the cost estimator uses:
    // a gate is scheduled iff its position on its first operand's
    // gate sequence is below that qubit's head.
    while (i < total) {
        const int q0 = ctx.circuit().gate(i).qubit(0);
        if (ctx.posOnQubit(i, q0) >= head[q0])
            break;
        ++i;
    }
    node->firstUnscheduled = i;
}

NodeRef
NodePool::root(const std::vector<int> &initial_layout,
               bool initial_phase)
{
    const int nl = _nl;
    const int np = _np;
    SearchNode *node = allocate();
    // A recycled slot carries the previous occupant's state; reset
    // every scalar, not just the ones root() sets.
    node->cycle = 0;
    node->costG = 0;
    node->costH = 0;
    node->objG = 0;
    node->objH = 0;
    node->objSlack = 0;
    node->routeScore = 0;
    node->actions.clear();
    node->scheduledGates = 0;
    node->firstUnscheduled = 0;
    node->busySum = 0;
    node->activeSwapUntil = 0;
    node->activeGateUntil = 0;
    node->initialSwaps = 0;
    node->initialPhase = initial_phase;
    node->dead = false;

    QIndex *l2p = node->log2phys();
    QIndex *p2l = node->phys2log();
    std::fill(p2l, p2l + np, QIndex{-1});
    std::fill(node->_occ, node->_occ + _occWords, 0);
    std::uint64_t hash = initial_phase ? kPhaseSalt : 0;
    for (int l = 0; l < nl; ++l) {
        const int p = l < static_cast<int>(initial_layout.size())
                          ? initial_layout[static_cast<size_t>(l)]
                          : -1;
        l2p[l] = static_cast<QIndex>(p);
        if (p < 0)
            continue;
        if (p >= np || p2l[p] != -1) {
            // Give the slot back before throwing; no NodeRef owns it
            // yet.
            ++node->_refs;
            NodeRef guard(node);
            throw std::invalid_argument(
                "initial layout is not injective into the device");
        }
        p2l[p] = static_cast<QIndex>(l);
        node->_occ[static_cast<std::size_t>(p) >> 6] |=
            std::uint64_t{1} << (static_cast<std::size_t>(p) & 63);
        hash ^= zobrist(l, p);
    }
    node->_mapHash = hash;
    node->_hashValid = true;
    std::fill(node->head(), node->head() + nl, 0);
    std::fill(node->busyUntil(), node->busyUntil() + np, 0);
    std::fill(node->lastSwapPartner(),
              node->lastSwapPartner() + np, QIndex{-1});
    ++node->_refs;
    return NodeRef(node);
}

NodeRef
NodePool::expand(const NodeRef &parent, int start_cycle,
                 const std::vector<Action> &actions)
{
    const SearchContext &ctx = *_ctx;
    SearchNode *node = acquireCopy(*parent);
    setParent(node, parent.get());
    if (node->initialPhase) {
        node->initialPhase = false;
        if (node->_hashValid)
            node->_mapHash ^= kPhaseSalt;
    }
    node->cycle = start_cycle;
    node->costG = parent->costG + (start_cycle - parent->cycle);
    node->actions = actions;
    const CostTable *table = ctx.costTable();
    node->objG =
        parent->objG + (table != nullptr ? table->cycleWeight : 1) *
                           static_cast<std::int64_t>(
                               start_cycle - parent->cycle);

    int *busy = node->busyUntil();
    QIndex *l2p = node->log2phys();
    QIndex *p2l = node->phys2log();
    QIndex *partner = node->lastSwapPartner();

    bool scheduled_any = false;
    for (const Action &a : actions) {
        if (a.isSwap()) {
            const int finish = start_cycle + ctx.swapLatency() - 1;
            node->busySum += (finish - busy[a.p0]) + (finish - busy[a.p1]);
            busy[a.p0] = finish;
            busy[a.p1] = finish;
            node->activeSwapUntil =
                std::max(node->activeSwapUntil, finish);
            // Post-swap mapping convention: apply immediately.
            const int l0 = p2l[a.p0];
            const int l1 = p2l[a.p1];
            p2l[a.p0] = static_cast<QIndex>(l1);
            p2l[a.p1] = static_cast<QIndex>(l0);
            if (l0 >= 0)
                l2p[l0] = static_cast<QIndex>(a.p1);
            if (l1 >= 0)
                l2p[l1] = static_cast<QIndex>(a.p0);
            // The hash is NOT updated here: materializeHash() can
            // replay this swap from `actions` on first read, so
            // children pruned before the filter never pay for it.
            node->_hashValid = false;
            // Occupancy toggles only when an occupant moved next to
            // a hole (both-occupied / both-empty leave bits alone);
            // branchless so the mispredict-prone compare is an XOR.
            const std::uint64_t moved =
                static_cast<std::uint64_t>((l0 >= 0) != (l1 >= 0));
            node->_occ[static_cast<std::size_t>(a.p0) >> 6] ^=
                moved << (static_cast<std::size_t>(a.p0) & 63);
            node->_occ[static_cast<std::size_t>(a.p1) >> 6] ^=
                moved << (static_cast<std::size_t>(a.p1) & 63);
            partner[a.p0] = static_cast<QIndex>(a.p1);
            partner[a.p1] = static_cast<QIndex>(a.p0);
            if (table != nullptr) {
                // A swap is pure overhead under any objective: it
                // contributes its full weight to the slack.
                const std::int64_t w = table->swapWeight(a.p0, a.p1);
                node->objG += w;
                node->objSlack += w;
            }
        } else {
            const int finish =
                start_cycle + ctx.gateLatency(a.gateIndex) - 1;
            const ir::Gate &g = ctx.circuit().gate(a.gateIndex);
            node->busySum += finish - busy[a.p0];
            busy[a.p0] = finish;
            partner[a.p0] = -1;
            if (a.p1 >= 0) {
                node->busySum += finish - busy[a.p1];
                busy[a.p1] = finish;
                partner[a.p1] = -1;
            }
            node->activeGateUntil =
                std::max(node->activeGateUntil, finish);
            int *head = node->head();
            for (int q : g.qubits())
                ++head[q];
            ++node->scheduledGates;
            scheduled_any = true;
            if (table != nullptr) {
                const std::int64_t w = table->gateWeight(g, a.p0, a.p1);
                node->objG += w;
                node->objSlack +=
                    w - table->gateMin[static_cast<std::size_t>(
                            a.gateIndex)];
            }
        }
    }
    if (scheduled_any)
        advanceFirstUnscheduled(node);
    ++node->_refs;
    return NodeRef(node);
}

NodeRef
NodePool::initialSwapChild(const NodeRef &parent, int p0, int p1)
{
    // Initial-phase swaps are not recorded in `actions`, so lazy
    // replay cannot reconstruct them: materialize the parent's hash
    // and update the child's eagerly (the initial-placement phase is
    // a vanishing fraction of search work).
    parent->mappingHash();
    SearchNode *node = acquireCopy(*parent);
    setParent(node, parent.get());
    ++node->initialSwaps;
    QIndex *l2p = node->log2phys();
    QIndex *p2l = node->phys2log();
    const int l0 = p2l[p0];
    const int l1 = p2l[p1];
    p2l[p0] = static_cast<QIndex>(l1);
    p2l[p1] = static_cast<QIndex>(l0);
    if (l0 >= 0) {
        l2p[l0] = static_cast<QIndex>(p1);
        node->_mapHash ^= zobrist(l0, p0) ^ zobrist(l0, p1);
    }
    if (l1 >= 0) {
        l2p[l1] = static_cast<QIndex>(p0);
        node->_mapHash ^= zobrist(l1, p1) ^ zobrist(l1, p0);
    }
    if ((l0 >= 0) != (l1 >= 0)) {
        node->_occ[static_cast<std::size_t>(p0) >> 6] ^=
            std::uint64_t{1} << (static_cast<std::size_t>(p0) & 63);
        node->_occ[static_cast<std::size_t>(p1) >> 6] ^=
            std::uint64_t{1} << (static_cast<std::size_t>(p1) & 63);
    }
    ++node->_refs;
    return NodeRef(node);
}

NodeRef
NodePool::commitInitialMapping(const NodeRef &parent)
{
    parent->mappingHash(); // materialize before the phase-salt flip
    SearchNode *node = acquireCopy(*parent);
    setParent(node, parent.get());
    if (node->initialPhase) {
        node->initialPhase = false;
        node->_mapHash ^= kPhaseSalt;
    }
    ++node->_refs;
    return NodeRef(node);
}

NodeRef
NodePool::cloneSibling(const NodeRef &node)
{
    SearchNode *copy = acquireCopy(*node);
    copy->actions = node->actions;
    setParent(copy, node->_parent);
    ++copy->_refs;
    return NodeRef(copy);
}

void
NodePool::placeLogical(SearchNode &node, int l, int p)
{
    assert(node.log2phys()[l] < 0 && "qubit already placed");
    assert(node.phys2log()[p] < 0 && "position already occupied");
    // A placement is not an action either; materialize the inherited
    // hash first (while the arrays still match the action history),
    // then fold the new placement in.
    node.mappingHash();
    node.log2phys()[l] = static_cast<QIndex>(p);
    node.phys2log()[p] = static_cast<QIndex>(l);
    node._occ[static_cast<std::size_t>(p) >> 6] |=
        std::uint64_t{1} << (static_cast<std::size_t>(p) & 63);
    node._mapHash ^= zobrist(l, p);
}

} // namespace toqm::search
