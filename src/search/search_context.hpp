/**
 * @file
 * Immutable per-search data shared by every node: the logical
 * circuit, its per-qubit gate sequences, the coupling graph and the
 * latency model.  Precomputed once so nodes stay O(num_qubits).
 */

#ifndef TOQM_SEARCH_SEARCH_CONTEXT_HPP
#define TOQM_SEARCH_SEARCH_CONTEXT_HPP

#include <vector>

#include "arch/coupling_graph.hpp"
#include "ir/circuit.hpp"
#include "ir/latency.hpp"
#include "search/cost_table.hpp"

namespace toqm::search {

/** Precomputed circuit/device structures for one mapping search. */
class SearchContext
{
  public:
    SearchContext(const ir::Circuit &circuit,
                  const arch::CouplingGraph &graph,
                  const ir::LatencyModel &latency);

    const ir::Circuit &circuit() const { return *_circuit; }

    const arch::CouplingGraph &graph() const { return *_graph; }

    const ir::LatencyModel &latency() const { return *_latency; }

    int numLogical() const { return _circuit->numQubits(); }

    int numPhysical() const { return _graph->numQubits(); }

    /** Ordered gate indices acting on logical qubit @p q. */
    const std::vector<int> &qubitGates(int q) const
    {
        return _qubitGates[static_cast<size_t>(q)];
    }

    /**
     * Position of gate @p i within qubitGates(q) for operand qubit
     * @p q (gate must act on q).
     */
    int posOnQubit(int i, int q) const;

    /** Cached latency of gate @p i. */
    int gateLatency(int i) const
    {
        return _gateLatency[static_cast<size_t>(i)];
    }

    int swapLatency() const { return _swapLatency; }

    /** Total number of gates in the logical circuit. */
    int numGates() const { return _circuit->size(); }

    /**
     * Optional encoded cost model the search minimises instead of
     * plain cycles; null (the default) selects the exact legacy
     * scalar-cycle path.  The table must outlive the context.
     */
    const CostTable *costTable() const { return _costTable; }

    void setCostTable(const CostTable *table) { _costTable = table; }

  private:
    const ir::Circuit *_circuit;
    const arch::CouplingGraph *_graph;
    const ir::LatencyModel *_latency;
    std::vector<std::vector<int>> _qubitGates;
    /** Parallel to each gate's operand list. */
    std::vector<std::vector<int>> _posOnQubit;
    std::vector<int> _gateLatency;
    int _swapLatency;
    const CostTable *_costTable = nullptr;
};

} // namespace toqm::search

#endif // TOQM_SEARCH_SEARCH_CONTEXT_HPP
