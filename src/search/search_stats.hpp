/**
 * @file
 * The unified run report of the search kernel.
 *
 * Every mapper driver (exact A*, IDA*, the practical heuristic) and
 * the baselines that borrow the kernel's frontier fill one
 * `SearchStats`, so tools/ and bench/ consume a single shape
 * regardless of which search produced it.
 */

#ifndef TOQM_SEARCH_SEARCH_STATS_HPP
#define TOQM_SEARCH_SEARCH_STATS_HPP

#include <cstdint>
#include <string>
#include <string_view>

namespace toqm::search {

/** Terminal status of a search run. */
enum class SearchStatus {
    /** A terminal node was found (optimal, for the exact searches). */
    Solved,
    /** The node budget ran out before an answer was proven; the
     *  instance may well be solvable with a larger budget. */
    BudgetExhausted,
    /** The search space was exhausted without a terminal: the
     *  instance is genuinely unsolvable under the given constraints. */
    Infeasible,
};

const char *toString(SearchStatus status);

/** Search statistics and resource peaks of one mapping run. */
struct SearchStats
{
    /** Nodes popped and expanded. */
    std::uint64_t expanded = 0;
    /** Child nodes generated (including ones pruned before pushing). */
    std::uint64_t generated = 0;
    /** Nodes dropped by the dominance filter. */
    std::uint64_t filtered = 0;
    /** Frontier trim events (global-queue trims / beam levels). */
    std::uint64_t trims = 0;
    /** Deepening rounds (IDA*); single-shot searches leave it 0. */
    int rounds = 0;
    /** Peak frontier size. */
    std::uint64_t maxQueueSize = 0;
    /** Peak bytes held in node-pool slabs. */
    std::uint64_t peakPoolBytes = 0;
    /** Peak simultaneously-live node count. */
    std::uint64_t peakLiveNodes = 0;
    double seconds = 0.0;
};

/**
 * Optional run context for the stats line: where the run happened
 * (device, latency model) and what bounded it.  All fields have
 * inert defaults so callers without the information can pass `{}`.
 */
struct StatsLineContext
{
    /** Device name as given to `--arch` ("" = unknown). */
    std::string_view arch;
    /** Latency model (1q, 2q, swap cycles); 0 = unknown. */
    int lat1 = 0;
    int lat2 = 0;
    int latSwap = 0;
    /** Node budget the run was subject to (0 = none/unlimited). */
    std::uint64_t nodeBudget = 0;
    /** True when a Solved status proves optimality (exact searches). */
    bool provenOptimal = false;
};

/** Version of the stats-line JSON shape (see statsJsonLine). */
inline constexpr int kStatsLineSchemaVersion = 2;

/**
 * Render a run report as one line of JSON (newline-terminated), the
 * format `toqm_map --stats-json` emits and bench/CI scrapers parse.
 *
 * Schema v2: v1's keys, in v1's order (mapper, status, cycles,
 * swaps, expanded, generated, filtered, trims, rounds, max_queue,
 * peak_pool_bytes, peak_live_nodes, seconds), then the additive v2
 * keys: `schemaVersion`, `arch`, `latency` {"l1","l2","swap"}, and a
 * status-specific `detail` object —
 *   solved:            {"proven_optimal":bool}
 *   budget-exhausted:  {"node_budget":N}
 *   infeasible:        {"reason":"search-space-exhausted"}
 * Scrapers keyed on the v1 fields keep working unchanged.
 */
std::string statsJsonLine(const SearchStats &stats,
                          std::string_view mapper, SearchStatus status,
                          int cycles, int swaps,
                          const StatsLineContext &context);

/** Back-compat overload: no run context (arch/latency unknown). */
std::string statsJsonLine(const SearchStats &stats,
                          std::string_view mapper, SearchStatus status,
                          int cycles, int swaps);

} // namespace toqm::search

#endif // TOQM_SEARCH_SEARCH_STATS_HPP
