/**
 * @file
 * The unified run report of the search kernel.
 *
 * Every mapper driver (exact A*, IDA*, the practical heuristic) and
 * the baselines that borrow the kernel's frontier fill one
 * `SearchStats`, so tools/ and bench/ consume a single shape
 * regardless of which search produced it.
 */

#ifndef TOQM_SEARCH_SEARCH_STATS_HPP
#define TOQM_SEARCH_SEARCH_STATS_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace toqm::search {

/** Terminal status of a search run. */
enum class SearchStatus {
    /** A terminal node was found (optimal, for the exact searches). */
    Solved,
    /** The node budget ran out before an answer was proven; the
     *  instance may well be solvable with a larger budget. */
    BudgetExhausted,
    /** The search space was exhausted without a terminal: the
     *  instance is genuinely unsolvable under the given constraints. */
    Infeasible,
    /** The wall-clock deadline passed before optimality was proven
     *  (ResourceGuard).  An incumbent may still have been returned. */
    DeadlineExceeded,
    /** The node pool hit its memory ceiling (ResourceGuard). */
    MemoryExhausted,
    /** The run was cancelled cooperatively (SIGINT/SIGTERM or an
     *  embedding service calling requestCancellation()). */
    Cancelled,
};

const char *toString(SearchStatus status);

/** Search statistics and resource peaks of one mapping run. */
struct SearchStats
{
    /** Nodes popped and expanded. */
    std::uint64_t expanded = 0;
    /** Child nodes generated (including ones pruned before pushing). */
    std::uint64_t generated = 0;
    /** Nodes dropped by the dominance filter. */
    std::uint64_t filtered = 0;
    /** Frontier trim events (global-queue trims / beam levels). */
    std::uint64_t trims = 0;
    /** Deepening rounds (IDA*); single-shot searches leave it 0. */
    int rounds = 0;
    /** Peak frontier size. */
    std::uint64_t maxQueueSize = 0;
    /** Peak bytes held in node-pool slabs. */
    std::uint64_t peakPoolBytes = 0;
    /** Peak simultaneously-live node count. */
    std::uint64_t peakLiveNodes = 0;
    double seconds = 0.0;
    /** Cold probes taken by the ResourceGuard (0 when disarmed).
     *  Diagnostic only: not part of the stats-line JSON, so default
     *  runs stay byte-identical to pre-guard output. */
    std::uint64_t guardProbes = 0;

    /**
     * Fold @p other into this report: work counters (expanded,
     * generated, filtered, trims, rounds, guardProbes) and seconds
     * add (seconds therefore become CPU-seconds across concurrent
     * runs, not wall time); resource peaks (maxQueueSize,
     * peakPoolBytes, peakLiveNodes) take the max, since every run
     * owns its own frontier and NodePool.
     */
    void merge(const SearchStats &other);
};

/**
 * Thread-safe `SearchStats` aggregation for the parallel drivers
 * (portfolio races, batch mapping): workers finish at arbitrary
 * times on arbitrary threads and fold their per-run report in under
 * one mutex.  Aggregation is commutative (sums and maxes), so the
 * totals are deterministic regardless of completion order.
 */
class StatsAccumulator
{
  public:
    void
    add(const SearchStats &stats)
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        _total.merge(stats);
        ++_runs;
    }

    /** Snapshot of the folded totals. */
    SearchStats
    total() const
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        return _total;
    }

    std::uint64_t
    runs() const
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        return _runs;
    }

  private:
    mutable std::mutex _mutex;
    SearchStats _total;
    std::uint64_t _runs = 0;
};

/**
 * Optional run context for the stats line: where the run happened
 * (device, latency model) and what bounded it.  All fields have
 * inert defaults so callers without the information can pass `{}`.
 */
struct StatsLineContext
{
    /** Device name as given to `--arch` ("" = unknown). */
    std::string_view arch;
    /** Latency model (1q, 2q, swap cycles); 0 = unknown. */
    int lat1 = 0;
    int lat2 = 0;
    int latSwap = 0;
    /** Node budget the run was subject to (0 = none/unlimited). */
    std::uint64_t nodeBudget = 0;
    /** True when a Solved status proves optimality (exact searches). */
    bool provenOptimal = false;
    /** Wall-clock deadline the run was subject to (0 = none). */
    std::uint64_t deadlineMs = 0;
    /** Pool-byte ceiling the run was subject to (0 = none). */
    std::uint64_t maxPoolBytes = 0;
    /** True when a guard-stopped run still returned a complete
     *  (non-optimal) incumbent mapping. */
    bool hasIncumbent = false;
    /**
     * Pre-rendered JSON object describing the degradation chain the
     * driver walked (see toqm_map); appended verbatim as a trailing
     * `"degradation":{...}` key when non-empty.  Empty (the default)
     * keeps the line byte-identical to the pre-guard shape.
     */
    std::string_view degradationJson;
    /**
     * Input file the run mapped (batch mode); appended as an
     * additive `"input":"..."` key when non-empty so scrapers can
     * join a batch's stats lines back to its inputs.  Single-job
     * runs leave it empty and the line shape is unchanged.
     */
    std::string_view input;
    /**
     * Pre-rendered JSON object describing a portfolio race (entries
     * raced, winner, per-entry outcomes); appended verbatim as a
     * trailing `"portfolio":{...}` key when non-empty.
     */
    std::string_view portfolioJson;
    /**
     * Pre-rendered JSON object describing contained faults and the
     * recovery path walked (attempt count, failure class, action —
     * see toqm_map's retry layer); appended verbatim as a trailing
     * `"fault":{...}` key when non-empty.  Empty (the default) keeps
     * fault-free lines byte-identical.
     */
    std::string_view faultJson;
    /**
     * Pre-rendered JSON object describing how the serve layer
     * answered the request (tier taken, cache hit/miss/eviction
     * counters — see serve::MapService); appended verbatim as a
     * trailing `"serve":{...}` key when non-empty.  Empty (the
     * default) keeps cache-free runs byte-identical.
     */
    std::string_view serveJson;
    /**
     * Objective the run minimised.  When non-empty, the additive
     * `"objective":"<name>"` key (plus `"cost"` / `"fidelity"` when
     * their has* flags are set) is appended INSIDE the `detail`
     * object.  Empty (the default) keeps every existing line byte
     * identical — plain-cycles runs emit no objective keys at all.
     */
    std::string_view objectiveName;
    /** Decoded objective cost of the returned circuit (cycles for
     *  the cycles objective, -ln F for fidelity). */
    bool hasCost = false;
    double cost = 0.0;
    /** Ground-truth success probability of the returned circuit
     *  under the run's calibration (sim-layer noise model). */
    bool hasFidelity = false;
    double fidelity = 0.0;
};

/** Version of the stats-line JSON shape (see statsJsonLine). */
inline constexpr int kStatsLineSchemaVersion = 2;

/**
 * Render a run report as one line of JSON (newline-terminated), the
 * format `toqm_map --stats-json` emits and bench/CI scrapers parse.
 *
 * Schema v2: v1's keys, in v1's order (mapper, status, cycles,
 * swaps, expanded, generated, filtered, trims, rounds, max_queue,
 * peak_pool_bytes, peak_live_nodes, seconds), then the additive v2
 * keys: `schemaVersion`, `arch`, `latency` {"l1","l2","swap"}, and a
 * status-specific `detail` object —
 *   solved:            {"proven_optimal":bool}
 *   budget-exhausted:  {"node_budget":N}
 *   infeasible:        {"reason":"search-space-exhausted"}
 *   deadline-exceeded: {"deadline_ms":N,"incumbent":bool}
 *   memory-exhausted:  {"max_pool_bytes":N,"incumbent":bool}
 *   cancelled:         {"incumbent":bool}
 * When `context.objectiveName` is non-empty the detail object
 * additionally carries `"objective":"<name>"` and, when their flags
 * are set, `"cost":<decoded objective cost>` and
 * `"fidelity":<success probability>` — additive and absent for
 * plain-cycles runs, so default lines stay byte-identical.
 * When `context.degradationJson` is non-empty it is appended as a
 * final `"degradation":{...}` key (additive; absent by default),
 * followed — when set — by the additive `"input":"..."` (batch
 * mode), `"portfolio":{...}` (portfolio race), `"fault":{...}`
 * (contained-fault recovery) and `"serve":{...}` (serve-layer tier
 * and cache counters) keys.  Scrapers keyed on the v1 fields keep
 * working unchanged.
 */
std::string statsJsonLine(const SearchStats &stats,
                          std::string_view mapper, SearchStatus status,
                          int cycles, int swaps,
                          const StatsLineContext &context);

/** Back-compat overload: no run context (arch/latency unknown). */
std::string statsJsonLine(const SearchStats &stats,
                          std::string_view mapper, SearchStatus status,
                          int cycles, int swaps);

} // namespace toqm::search

#endif // TOQM_SEARCH_SEARCH_STATS_HPP
