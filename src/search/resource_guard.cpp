#include "resource_guard.hpp"

#include <atomic>

#include "fault/fault.hpp"
#include "node_pool.hpp"
#include "obs/observer.hpp"

namespace toqm::search {

namespace {

/** Process-wide cancellation latch.  Lock-free on every platform we
 *  target, which makes the store below async-signal-safe. */
std::atomic<bool> g_cancel_requested{false};

/** Cold-path bookkeeping when a guard trips: one trace instant and
 *  one metrics counter per stop, both keyed by static literals (the
 *  trace sink keeps name pointers). */
void
noteGuardStop(StopReason reason)
{
    obs::Observer &o = obs::Observer::global();
    if (!o.active())
        return;
    const char *instant_name = "guard.stop";
    const char *counter_name = "guard.stop";
    switch (reason) {
      case StopReason::Deadline:
        instant_name = "guard.stop.deadline";
        counter_name = "guard.stop.deadline";
        break;
      case StopReason::Memory:
        instant_name = "guard.stop.memory";
        counter_name = "guard.stop.memory";
        break;
      case StopReason::Cancelled:
        instant_name = "guard.stop.cancelled";
        counter_name = "guard.stop.cancelled";
        break;
      case StopReason::None:
        return;
    }
    if (o.traceEnabled())
        o.instant(instant_name);
    if (o.metricsEnabled())
        o.metrics().increment(counter_name);
}

} // namespace

const char *
toString(StopReason reason)
{
    switch (reason) {
      case StopReason::None:
        return "none";
      case StopReason::Deadline:
        return "deadline";
      case StopReason::Memory:
        return "memory";
      case StopReason::Cancelled:
        return "cancelled";
    }
    return "unknown";
}

SearchStatus
statusFor(StopReason reason)
{
    switch (reason) {
      case StopReason::Deadline:
        return SearchStatus::DeadlineExceeded;
      case StopReason::Memory:
        return SearchStatus::MemoryExhausted;
      case StopReason::Cancelled:
        return SearchStatus::Cancelled;
      case StopReason::None:
        break;
    }
    return SearchStatus::Solved;
}

void
requestCancellation() noexcept
{
    g_cancel_requested.store(true, std::memory_order_relaxed);
}

void
clearCancellation() noexcept
{
    g_cancel_requested.store(false, std::memory_order_relaxed);
}

bool
cancellationRequested() noexcept
{
    return g_cancel_requested.load(std::memory_order_relaxed);
}

ResourceGuard::ResourceGuard(const GuardConfig &config,
                             const NodePool *pool)
    : _armed(config.enabled()),
      _interval(config.probeInterval == 0 ? 1 : config.probeInterval),
      _countdown(_interval), _maxPoolBytes(config.maxPoolBytes),
      _honorCancellation(config.honorCancellation),
      _cancelToken(config.cancelToken),
      _hasDeadline(config.deadlineMs != 0), _pool(pool)
{
    if (_hasDeadline) {
        _deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(config.deadlineMs);
    }
}

void
ResourceGuard::probe()
{
    // Fault site: the cold probe path only — the hot poll() countdown
    // stays hook-free so disarmed overhead is confined to the probe
    // cadence (once per probeInterval expansions).
    TOQM_FAULT_POINT(GuardPoll);
    ++_probes;
    // Precedence: cancellation (external, most urgent) beats the
    // deadline beats the memory ceiling.  The per-run token (a
    // portfolio race stopping its losers) and the process-wide latch
    // (SIGINT/SIGTERM) both land on Cancelled.
    if (_cancelToken != nullptr &&
        _cancelToken->load(std::memory_order_relaxed))
        _stop = StopReason::Cancelled;
    else if (_honorCancellation && cancellationRequested())
        _stop = StopReason::Cancelled;
    else if (_hasDeadline &&
             std::chrono::steady_clock::now() >= _deadline)
        _stop = StopReason::Deadline;
    else if (_maxPoolBytes != 0 && _pool != nullptr &&
             _pool->peakBytes() > _maxPoolBytes)
        _stop = StopReason::Memory;
    if (_stop != StopReason::None)
        noteGuardStop(_stop);
}

} // namespace toqm::search
