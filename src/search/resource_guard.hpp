/**
 * @file
 * Resource guard for the search kernel: wall-clock deadlines, memory
 * ceilings and cooperative cancellation.
 *
 * Exact mapping is worst-case exponential (paper §5), so a
 * production pipeline must be able to stop a search for reasons
 * other than "the node budget ran out": a request deadline passed,
 * the node pool grew past its memory ceiling, or an operator sent
 * SIGINT/SIGTERM.  `ResourceGuard` watches all three with one
 * countdown branch on the expansion hot path; the actual clock read,
 * pool-byte read and cancellation-flag load happen only once every
 * `probeInterval` expansions (the same coarse-clock pattern the obs
 * `SearchProbe` uses).  Once a stop condition trips the guard stays
 * tripped — drivers observe it via `stop()` and unwind, returning
 * their best incumbent if they tracked one.
 *
 * Stop-condition precedence (checked in this order at each probe):
 * Cancelled > Deadline > Memory.  The driver-level node budget is
 * outside the guard and ranks last.
 */

#ifndef TOQM_SEARCH_RESOURCE_GUARD_HPP
#define TOQM_SEARCH_RESOURCE_GUARD_HPP

#include <atomic>
#include <chrono>
#include <cstdint>

#include "search_stats.hpp"

namespace toqm::search {

class NodePool;

/** Why a guard stopped a run (None = still running / never tripped). */
enum class StopReason {
    None,
    Deadline,
    Memory,
    Cancelled,
};

const char *toString(StopReason reason);

/** Map a tripped guard to the SearchStatus a driver should report.
 *  `StopReason::None` maps to Solved (i.e. "not the guard's call"). */
SearchStatus statusFor(StopReason reason);

/**
 * Request cooperative cancellation of every armed guard in the
 * process.  Async-signal-safe (a single lock-free atomic store):
 * `toqm_map` calls this from its SIGINT/SIGTERM handler.  Guards
 * only honor it when `GuardConfig::honorCancellation` is set, so
 * library users are unaffected unless they opt in.
 */
void requestCancellation() noexcept;

/** Clear a pending cancellation request (tests, REPL-style reuse). */
void clearCancellation() noexcept;

/** True when a cancellation request is pending. */
bool cancellationRequested() noexcept;

/** Resource limits for one search run.  All-defaults = disabled. */
struct GuardConfig
{
    /** Wall-clock deadline in milliseconds (0 = none). */
    std::uint64_t deadlineMs = 0;
    /** Ceiling on NodePool slab bytes (0 = none). */
    std::uint64_t maxPoolBytes = 0;
    /** Expansions between probes (clock/pool/flag reads). */
    std::uint32_t probeInterval = 256;
    /** Honor process-wide requestCancellation() (CLI opt-in). */
    bool honorCancellation = false;
    /**
     * Per-run cancellation token (e.g. an IncumbentChannel's stop
     * token): a portfolio race cancels ONE worker group without
     * touching the process-wide latch.  The pointee must outlive the
     * guard; nullptr (the default) means no token is watched.
     */
    const std::atomic<bool> *cancelToken = nullptr;

    /** True when any stop condition is being watched. */
    bool
    enabled() const
    {
        return deadlineMs != 0 || maxPoolBytes != 0 ||
               honorCancellation || cancelToken != nullptr;
    }
};

/**
 * The per-run watcher.  Default-constructed guards are disarmed:
 * `poll()` is a single always-false branch, so engines can embed one
 * unconditionally (the contract mirrors the obs probe's disabled
 * path — see BM_GuardPoll* in bench/).  Armed guards count down to
 * a probe; `probe()` is the cold path.
 */
class ResourceGuard
{
  public:
    /** Disarmed guard: poll() never trips. */
    ResourceGuard() = default;

    /**
     * Arm a guard over @p config.  @p pool supplies the slab-byte
     * reading for the memory ceiling; pass nullptr for searches that
     * do not use the pool (the memory check is then skipped).
     */
    ResourceGuard(const GuardConfig &config, const NodePool *pool);

    /**
     * Hot-path check: returns the sticky stop reason, probing the
     * expensive conditions every `probeInterval` calls.  Disarmed
     * guards return `StopReason::None` after one branch.
     */
    StopReason
    poll()
    {
        if (!_armed)
            return StopReason::None;
        if (_stop == StopReason::None && --_countdown == 0) {
            _countdown = _interval;
            probe();
        }
        return _stop;
    }

    /** The sticky stop reason without probing. */
    StopReason stop() const { return _stop; }

    bool armed() const { return _armed; }

    /** Number of cold probes taken (reported in SearchStats). */
    std::uint64_t probes() const { return _probes; }

  private:
    /** Cold path: read the clock, pool bytes and cancel flag. */
    void probe();

    bool _armed = false;
    StopReason _stop = StopReason::None;
    std::uint32_t _interval = 256;
    std::uint32_t _countdown = 256;
    std::uint64_t _probes = 0;
    std::uint64_t _maxPoolBytes = 0;
    bool _honorCancellation = false;
    const std::atomic<bool> *_cancelToken = nullptr;
    bool _hasDeadline = false;
    std::chrono::steady_clock::time_point _deadline{};
    const NodePool *_pool = nullptr;
};

} // namespace toqm::search

#endif // TOQM_SEARCH_RESOURCE_GUARD_HPP
