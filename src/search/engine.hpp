/**
 * @file
 * `SearchEngine` ties one NodePool, one frontier policy and one
 * SearchStats record together for the duration of a mapping run.
 * The mappers (OptimalMapper, idaStarMap, HeuristicMapper) are thin
 * drivers over an engine: they decide WHAT to expand and WHEN to
 * stop; the engine owns node lifetime, pop/push bookkeeping and the
 * uniform run report.
 */

#ifndef TOQM_SEARCH_ENGINE_HPP
#define TOQM_SEARCH_ENGINE_HPP

#include <algorithm>
#include <chrono>
#include <utility>

#include "frontier.hpp"
#include "node_pool.hpp"
#include "obs/search_probe.hpp"
#include "resource_guard.hpp"
#include "search_stats.hpp"

namespace toqm::search {

/** Monotonic wall-clock timer started at construction. */
class Stopwatch
{
  public:
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - _t0)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point _t0 =
        std::chrono::steady_clock::now();
};

template <typename Frontier>
class SearchEngine
{
  public:
    explicit SearchEngine(NodePool &pool, Frontier frontier = {})
        : _pool(&pool), _frontier(std::move(frontier))
    {}

    NodePool &pool() { return *_pool; }

    Frontier &frontier() { return _frontier; }

    SearchStats &stats() { return _stats; }

    const SearchStats &stats() const { return _stats; }

    /**
     * Bind the observability probe for this run.  @p mapper (a
     * string literal) labels heartbeat lines and metric keys.  A
     * no-op when observability is globally disabled.
     */
    void bindProbe(const char *mapper)
    {
        _probe = obs::SearchProbe(mapper);
    }

    /**
     * Arm the resource guard (deadline / memory ceiling /
     * cancellation) for this run.  With an all-defaults config this
     * is a no-op and the guard stays disarmed: `noteExpansion` then
     * pays one always-false branch, keeping default runs
     * byte-identical to pre-guard behavior.
     */
    void
    armGuard(const GuardConfig &config)
    {
        if (config.enabled())
            _guard = ResourceGuard(config, _pool);
    }

    /**
     * The guard's sticky stop reason; drivers check this alongside
     * their node-budget test and unwind (returning an incumbent if
     * they tracked one) when it is not `StopReason::None`.
     */
    StopReason guardStop() const { return _guard.stop(); }

    /** The run's guard, for driver phases that expand nodes outside
     *  `noteExpansion` (e.g. the A* upper-bound beam probe) and must
     *  poll the same deadline. */
    ResourceGuard &guard() { return _guard; }

    /**
     * Count one node expansion, poll the resource guard and feed the
     * sampled gauge series (frontier size, live nodes, pool bytes,
     * best f).  Replaces bare `++stats().expanded` in the drivers;
     * costs two branches when observability and the guard are off.
     */
    void
    noteExpansion(double best_f)
    {
        ++_stats.expanded;
        _guard.poll();
        _probe.onExpansion(_stats.expanded, best_f, _frontier.size(),
                           _pool->liveNodes(), _pool->peakBytes());
    }

    /** Push one open node, tracking the peak frontier size. */
    void
    push(NodeRef node)
    {
        _frontier.push(std::move(node));
        _stats.maxQueueSize =
            std::max(_stats.maxQueueSize,
                     static_cast<std::uint64_t>(_frontier.size()));
    }

    /**
     * Pop until a live node appears; dominance-killed (`dead`) nodes
     * are discarded for free.  Returns an empty ref when the
     * frontier is exhausted.
     */
    NodeRef
    popLive()
    {
        while (!_frontier.empty()) {
            NodeRef node = _frontier.pop();
            if (!node->dead)
                return node;
        }
        return NodeRef();
    }

    double elapsed() const { return _stopwatch.seconds(); }

    /** Stamp the end-of-run fields (time, pool peaks) into stats
     *  and flush the run's aggregate observability metrics. */
    void
    finish()
    {
        _stats.seconds = _stopwatch.seconds();
        _stats.peakPoolBytes = _pool->peakBytes();
        _stats.peakLiveNodes = _pool->peakLiveNodes();
        _stats.guardProbes = _guard.probes();
        if (_probe.active()) {
            _probe.finishRun(_stats.expanded, _stats.generated,
                             _stats.filtered, _stats.maxQueueSize,
                             _stats.peakPoolBytes, _stats.seconds);
        }
    }

  private:
    NodePool *_pool;
    Frontier _frontier;
    SearchStats _stats;
    Stopwatch _stopwatch;
    obs::SearchProbe _probe;
    ResourceGuard _guard;
};

} // namespace toqm::search

#endif // TOQM_SEARCH_ENGINE_HPP
