#include "search/cost_table.hpp"

#include "ir/schedule.hpp"

namespace toqm::search {

std::int64_t
CostTable::gateWeight(const ir::Gate &gate, int p0, int p1) const
{
    if (gate.isBarrier() || gate.isMeasure())
        return 0;
    if (gate.isSwap())
        return swapWeight(p0, p1);
    if (gate.isTwoQubit())
        return twoQubitWeight(p0, p1);
    return oneQubitWeight(p0);
}

std::int64_t
CostTable::evaluateCircuit(const ir::Circuit &physical,
                           const ir::LatencyModel &latency) const
{
    std::int64_t total =
        cycleWeight *
        static_cast<std::int64_t>(
            ir::scheduleAsap(physical, latency).makespan);
    for (const ir::Gate &g : physical.gates()) {
        const int p0 = g.numQubits() > 0 ? g.qubit(0) : -1;
        const int p1 = g.numQubits() > 1 ? g.qubit(1) : -1;
        if (p0 >= 0)
            total += gateWeight(g, p0, p1);
    }
    return total;
}

} // namespace toqm::search
