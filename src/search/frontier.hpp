/**
 * @file
 * Pluggable frontier policies for the search kernel.  A frontier
 * owns the set of open nodes and decides which one the engine pops
 * next; the three policies here back the repo's three mappers:
 *
 *  - `BestFirstFrontier`  — binary heap; A* (OptimalMapper) and the
 *    heuristic mapper's global/receding-horizon queues;
 *  - `DepthFirstFrontier` — LIFO stack; the bounded DFS inside each
 *    IDA* round (children pushed in reverse order reproduce the
 *    recursive visit order exactly);
 *  - `BeamFrontier`       — level-synchronous top-k; the heuristic
 *    beam mode and the optimal mapper's upper-bound probe.
 *
 * All policies store `NodeRef`s, so a node stays alive exactly as
 * long as some frontier (or the filter, or a driver local) can still
 * reach it.
 */

#ifndef TOQM_SEARCH_FRONTIER_HPP
#define TOQM_SEARCH_FRONTIER_HPP

#include <algorithm>
#include <cstddef>
#include <queue>
#include <utility>
#include <vector>

#include "node_pool.hpp"

namespace toqm::search {

/**
 * Binary-heap best-first frontier.  @p T is the open-node handle
 * (`NodeRef` for the kernel's mappers; baselines may use their own
 * node type) and @p Order is a strict weak ordering with
 * priority_queue semantics (returns true when @p a is WORSE than
 * @p b).
 */
template <typename T, typename Order>
class BestFirstFrontier
{
  public:
    BestFirstFrontier() = default;

    explicit BestFirstFrontier(Order order)
        : _queue(std::move(order))
    {}

    void push(T node) { _queue.push(std::move(node)); }

    /** Pop the best node (frontier must be non-empty). */
    T
    pop()
    {
        T node = _queue.top();
        _queue.pop();
        return node;
    }

    bool empty() const { return _queue.empty(); }

    size_t size() const { return _queue.size(); }

    void
    clear()
    {
        while (!_queue.empty())
            _queue.pop();
    }

    /** Drain every live (non-dead) node, emptying the frontier. */
    std::vector<T>
    drainLive()
    {
        std::vector<T> nodes;
        nodes.reserve(_queue.size());
        while (!_queue.empty()) {
            if (!_queue.top()->dead)
                nodes.push_back(_queue.top());
            _queue.pop();
        }
        return nodes;
    }

    void
    refill(std::vector<T> nodes)
    {
        for (T &n : nodes)
            _queue.push(std::move(n));
    }

  private:
    std::priority_queue<T, std::vector<T>, Order> _queue;
};

/**
 * LIFO frontier for bounded depth-first search.  Pushing an
 * expansion's children in REVERSE sorted order makes the pop order
 * identical to recursing over them in sorted order.
 */
class DepthFirstFrontier
{
  public:
    void push(NodeRef node) { _stack.push_back(std::move(node)); }

    NodeRef
    pop()
    {
        NodeRef node = std::move(_stack.back());
        _stack.pop_back();
        return node;
    }

    bool empty() const { return _stack.empty(); }

    size_t size() const { return _stack.size(); }

    void clear() { _stack.clear(); }

  private:
    std::vector<NodeRef> _stack;
};

/**
 * Level-synchronous beam.  Candidates for the next level accumulate
 * via push(); advance() ranks them with @p Less (ascending, best
 * first), filters through the caller's admit predicate and keeps the
 * top @p width as the new level.
 */
class BeamFrontier
{
  public:
    /** Start (or restart) the beam from exactly these nodes. */
    void
    assign(std::vector<NodeRef> level)
    {
        _level = std::move(level);
        _next.clear();
    }

    const std::vector<NodeRef> &level() const { return _level; }

    /** Queue a candidate (child or carried terminal) for the next
     *  level. */
    void push(NodeRef node) { _next.push_back(std::move(node)); }

    bool nextEmpty() const { return _next.empty(); }

    size_t size() const { return _level.size() + _next.size(); }

    /**
     * Rank the accumulated candidates and make the admitted top
     * @p width the current level.  @p less orders candidates best
     * first; @p admit may veto (e.g. dominance filter) and is called
     * in rank order until the level is full.
     */
    template <typename Less, typename Admit>
    void
    advance(int width, Less less, Admit admit)
    {
        std::sort(_next.begin(), _next.end(), less);
        _level.clear();
        for (NodeRef &cand : _next) {
            if (static_cast<int>(_level.size()) >= width)
                break;
            if (admit(cand))
                _level.push_back(std::move(cand));
        }
        _next.clear();
    }

  private:
    std::vector<NodeRef> _level;
    std::vector<NodeRef> _next;
};

} // namespace toqm::search

#endif // TOQM_SEARCH_FRONTIER_HPP
