/**
 * @file
 * Search node (one state of the circuit at one cycle, Section 4.1)
 * and the slab-allocating `NodePool` that owns every node's lifetime.
 *
 * A node fixes every scheduling decision for start times <= cycle.
 * Gates occupy their qubits for [start, start + latency - 1]; the
 * qubit mapping stored here is the one with all STARTED swaps applied
 * (the paper's convention for hashing and for the heuristic cost),
 * which is safe because a swap's qubits stay busy until it finishes.
 *
 * The search generates millions of nodes and both node cloning and
 * the filter's dominance comparisons are memory-bound, so the layout
 * is data-oriented (structure-of-arrays at slab granularity):
 *
 *  - node OBJECTS (the hot scalars: cycle, costs, refcount) live in
 *    one contiguous block per slab, while each per-qubit FIELD
 *    (log2phys, head, phys2log, busyUntil, lastSwapPartner) lives in
 *    its own contiguous region of the slab's int arena — the filter's
 *    mapping memcmp and the estimator's per-qubit sweeps each stream
 *    one dense array instead of strided per-node blobs;
 *  - a packed per-node occupancy bitset (one bit per physical qubit,
 *    set iff some logical qubit sits there) replaces phys2log reads
 *    on the expander's "swap of two empty positions" test;
 *  - the post-swap mapping hash is a Zobrist XOR over (logical,
 *    physical) placement keys, maintained INCREMENTALLY on every
 *    swap (O(1) per swap instead of O(num_logical) per filter
 *    admit);
 *  - lifetime is an intrusive, non-atomic reference count — safe
 *    because a pool and all its nodes belong to exactly ONE search
 *    (parallel drivers give every worker its own NodePool; nodes
 *    never cross pools or threads): a `NodeRef` holds one reference,
 *    a child holds one reference on its parent;
 *  - releasing the last reference walks the parent chain iteratively
 *    (never recursively — chains are search-depth long) and recycles
 *    each orphaned node into a free list that keeps nodes
 *    constructed, so the `actions` vector's capacity is reused.
 *
 * Node-lifetime rules: a node stays live while any NodeRef (frontier
 * entry, filter record, driver local) refers to it or while any live
 * descendant exists; a parent chain may be released only when the
 * last NodeRef to its subtree dies.  The pool must outlive every
 * NodeRef it handed out — declare the pool before frontiers, filters
 * and node locals.
 *
 * Invariant: the cached mapping hash and occupancy bits must match
 * the log2phys/phys2log arrays at all times.  All mapping writes go
 * through the pool (expand, initialSwapChild, placeLogical); never
 * write the arrays directly through the mutable accessors.
 */

#ifndef TOQM_SEARCH_NODE_POOL_HPP
#define TOQM_SEARCH_NODE_POOL_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "search_context.hpp"

namespace toqm::search {

class NodePool;
class NodeRef;

/**
 * Process-global recycler of raw slab buffers, keyed by buffer
 * geometry (node-block bytes, data-arena words).
 *
 * A NodePool is bound to one circuit-specific SearchContext, so the
 * POOL cannot outlive a request — but its slabs are just raw byte /
 * word arrays whose size depends only on (num logical, num physical)
 * qubits.  A warm server mapping a stream of same-device requests
 * re-allocates the same multi-megabyte slabs over and over; with the
 * cache ARMED, dying pools donate their buffers and newborn pools
 * adopt them instead of hitting the allocator.
 *
 * DEFAULT-OFF: unarmed (the default, and the state every existing
 * tool runs in), acquire() declines immediately and release() frees,
 * so batch/CLI behavior is byte-identical to a build without this
 * class.  Adopted data arenas are re-zeroed on acquire, preserving
 * NodePool's "arena starts deterministically zero" invariant.
 */
class SlabCache
{
  public:
    static SlabCache &global();

    /** Raw slab storage, exactly NodePool::Slab's two buffers. */
    struct Buffers
    {
        std::unique_ptr<std::byte[]> nodes;
        std::unique_ptr<std::uint64_t[]> data;
    };

    /** Enable recycling, holding at most @p max_bytes of idle slabs. */
    void arm(std::size_t max_bytes);

    /** Disable recycling and free every idle slab. */
    void disarm();

    bool armed() const
    {
        return _armed.load(std::memory_order_relaxed);
    }

    /**
     * Adopt an idle slab of the given geometry.  @return true and
     * fill @p out (data arena re-zeroed) on success; false when
     * unarmed or nothing matching is idle.
     */
    bool acquire(std::size_t node_bytes, std::size_t data_words,
                 Buffers &out);

    /**
     * Donate a dead pool's slab.  Freed immediately when unarmed or
     * when the idle budget is full (counted in stats().dropped).
     */
    void release(std::size_t node_bytes, std::size_t data_words,
                 Buffers buffers);

    struct Stats
    {
        std::uint64_t reuses = 0;   ///< acquires served from idle slabs
        std::uint64_t declines = 0; ///< acquires that missed
        std::uint64_t donations = 0;
        std::uint64_t dropped = 0;  ///< donations freed (budget/unarmed)
        std::size_t idleBytes = 0;
        std::size_t idleSlabs = 0;
    };

    Stats stats() const;

  private:
    using Key = std::pair<std::size_t, std::size_t>;

    std::atomic<bool> _armed{false};
    mutable std::mutex _mutex;
    std::map<Key, std::vector<Buffers>> _idle;
    std::size_t _maxBytes = 0;
    std::size_t _idleBytes = 0;
    std::uint64_t _reuses = 0;
    std::uint64_t _declines = 0;
    std::uint64_t _donations = 0;
    std::uint64_t _dropped = 0;
};

/**
 * Packed qubit index: device positions and logical qubits are both
 * far below 2^15, so the mapping arrays (log2phys, phys2log,
 * lastSwapPartner) store 16-bit indices — halving the bytes every
 * node clone copies and every filter mapping-compare reads.  -1
 * still means "unmapped"/"none".  head and busyUntil stay 32-bit
 * (gate counts and cycle numbers are unbounded by the device size).
 */
using QIndex = std::int16_t;

/** An action started at a node's cycle. */
struct Action
{
    /** Logical gate index, or -1 for an inserted swap. */
    int gateIndex = -1;
    /** Physical operands (p1 == -1 for 1-qubit gates). */
    int p0 = -1;
    int p1 = -1;

    bool isSwap() const { return gateIndex < 0; }
};

/**
 * One state of the search graph.  Pool-allocated only; drivers hold
 * it through `NodeRef` and create children through `NodePool`.
 */
class SearchNode
{
  public:
    SearchNode(const SearchNode &) = delete;
    SearchNode &operator=(const SearchNode &) = delete;

    /** Cycle this node's actions start at (root: 0, no actions). */
    int cycle = 0;
    /** Counted path cost (== cycle; kept separate for clarity). */
    int costG = 0;
    /** Cached admissible heuristic (set by the cost estimator). */
    int costH = 0;
    /**
     * Encoded path cost under the context's CostTable:
     * cycleWeight * costG + total placement weight of the scheduled
     * actions.  Equal to costG when no table is active, so fKey()
     * degenerates to f().
     */
    std::int64_t objG = 0;
    /** Encoded admissible heuristic (set alongside costH). */
    std::int64_t objH = 0;
    /**
     * Placement weight paid beyond the layout-independent minimum of
     * the scheduled gates (swaps count in full).  Tracked so the
     * dominance filter stays exact under weighted objectives: a node
     * with less slack can always be completed at least as cheaply.
     * Zero when no table is active.
     */
    std::int64_t objSlack = 0;
    /**
     * Secondary ranking score used by the practical mapper (sum of
     * frontier/lookahead distances); not part of the admissible cost.
     */
    int routeScore = 0;
    /** Actions started at `cycle` by this node. */
    std::vector<Action> actions;

    /** Number of logical gates scheduled so far. */
    int scheduledGates = 0;
    /**
     * Index of the first gate (in program order) not yet scheduled;
     * every gate below it is scheduled.  Maintained incrementally on
     * expansion so the cost estimator's remaining-circuit sweep
     * starts here instead of re-skipping the scheduled prefix.
     */
    int firstUnscheduled = 0;
    /** Sum of busyUntil over physical qubits (filter quick reject). */
    long busySum = 0;
    /** Latest finish cycle among started swaps / original gates. */
    int activeSwapUntil = 0;
    int activeGateUntil = 0;
    /** Zero-cost swaps consumed in the initial-mapping phase. */
    int initialSwaps = 0;
    /** True while the node is still choosing the initial mapping. */
    bool initialPhase = false;
    /** Set by the filter when a dominating node exists. */
    bool dead = false;

    /** Parent in the search tree (owned via one reference). */
    const SearchNode *parent() const { return _parent; }

    /** Per-qubit state arrays (each contiguous per slab, SoA). @{ */
    /** log2phys()[l] = physical position of logical l (-1 unmapped). */
    QIndex *log2phys() { return _l2p; }
    const QIndex *log2phys() const { return _l2p; }
    /** head()[l] = #gates already scheduled on logical qubit l. */
    int *head() { return _head; }
    const int *head() const { return _head; }
    /** phys2log()[p] = logical occupant of p (-1 empty). */
    QIndex *phys2log() { return _p2l; }
    const QIndex *phys2log() const { return _p2l; }
    /** busyUntil()[p] = last busy cycle of physical p (0 = never). */
    int *busyUntil() { return _busy; }
    const int *busyUntil() const { return _busy; }
    /**
     * lastSwapPartner()[p] = q if the most recent action on physical
     * p was swap(p, q); -1 otherwise (cyclic-swap pruning).
     */
    QIndex *lastSwapPartner() { return _partner; }
    const QIndex *lastSwapPartner() const { return _partner; }
    /**
     * Packed qubit occupancy: bit p of occupancy()[p / 64] is set
     * iff phys2log()[p] >= 0.  Maintained by the pool alongside the
     * mapping arrays.
     */
    const std::uint64_t *occupancy() const { return _occ; }
    /** @} */

    /** True iff physical position @p p holds a logical qubit. */
    bool
    occupied(int p) const
    {
        return (_occ[static_cast<std::size_t>(p) >> 6] >>
                (static_cast<std::size_t>(p) & 63)) &
               1u;
    }

    int numLogical() const { return _nl; }

    int numPhysical() const { return _np; }

    /** Priority for the A* queue. */
    int f() const { return costG + costH; }

    /**
     * Encoded priority under the active objective.  With no cost
     * table this equals f(); at an allScheduled node it is the exact
     * encoded total cost of the completed schedule (cycleWeight *
     * makespan + path placement weight).
     */
    std::int64_t fKey() const { return objG + objH; }

    /** All logical gates scheduled? */
    bool allScheduled(const SearchContext &ctx) const
    {
        return scheduledGates == ctx.numGates();
    }

    /** Finish cycle of the whole schedule (valid once allScheduled). */
    int makespan() const;

    /**
     * Hash of the post-swap mapping (filter bucket key): a Zobrist
     * XOR over (logical, physical) placements, maintained as a delta
     * over the qubits the node's swaps moved.  Materialized LAZILY:
     * expansion only marks the inherited hash stale, and the first
     * read replays swap deltas down from the nearest materialized
     * ancestor — so children pruned before reaching the filter never
     * pay for hashing at all.  `NodePool::referenceMappingHash`
     * recomputes from scratch for audits.
     */
    std::uint64_t
    mappingHash() const
    {
        return _hashValid ? _mapHash : materializeHash();
    }

  private:
    friend class NodePool;
    friend class NodeRef;

    SearchNode(NodePool *pool, int nl, int np, QIndex *l2p,
               int *head, QIndex *p2l, int *busy, QIndex *partner,
               std::uint64_t *occ)
        : _pool(pool), _l2p(l2p), _head(head), _p2l(p2l),
          _busy(busy), _partner(partner), _occ(occ), _nl(nl), _np(np)
    {}

    ~SearchNode() = default;

    /** Out-of-line slow path of mappingHash(). */
    std::uint64_t materializeHash() const;

    NodePool *_pool;
    SearchNode *_parent = nullptr;
    /** SoA region pointers (fixed at slot construction). */
    QIndex *_l2p;
    int *_head;
    QIndex *_p2l;
    int *_busy;
    QIndex *_partner;
    std::uint64_t *_occ;
    /** Cached Zobrist hash of (log2phys, initialPhase); meaningful
     *  only while _hashValid (mutable: materialized on first read). */
    mutable std::uint64_t _mapHash = 0;
    mutable bool _hashValid = false;
    /** Intrusive refcount (non-atomic: a node's pool, and thus the
     *  node, is owned by exactly one search thread). */
    std::uint32_t _refs = 0;
    int _nl;
    int _np;
};

/**
 * Owning handle on a pooled node.  Copying retains, destruction
 * releases; when the last reference dies the node (and any parent
 * chain it alone kept alive) returns to the pool.
 */
class NodeRef
{
  public:
    NodeRef() = default;

    NodeRef(const NodeRef &other) : _node(other._node)
    {
        if (_node != nullptr)
            ++_node->_refs;
    }

    NodeRef(NodeRef &&other) noexcept : _node(other._node)
    {
        other._node = nullptr;
    }

    NodeRef &
    operator=(NodeRef other) noexcept
    {
        std::swap(_node, other._node);
        return *this;
    }

    ~NodeRef() { reset(); }

    void reset();

    SearchNode *get() const { return _node; }

    SearchNode *operator->() const { return _node; }

    SearchNode &operator*() const { return *_node; }

    explicit operator bool() const { return _node != nullptr; }

    friend bool
    operator==(const NodeRef &a, const NodeRef &b)
    {
        return a._node == b._node;
    }

    friend bool
    operator!=(const NodeRef &a, const NodeRef &b)
    {
        return a._node != b._node;
    }

  private:
    friend class NodePool;

    /** Adopts one already-counted reference. */
    explicit NodeRef(SearchNode *node) : _node(node) {}

    SearchNode *_node = nullptr;
};

/**
 * Arena allocator for the search nodes of one mapping run.  All
 * nodes of a pool share one geometry (the context's qubit counts),
 * so slots are fixed-stride and recycling is a free-list push.
 * Per-qubit data is laid out structure-of-arrays within each slab
 * (see the file comment).
 */
class NodePool
{
  public:
    explicit NodePool(const SearchContext &ctx);
    ~NodePool();
    NodePool(const NodePool &) = delete;
    NodePool &operator=(const NodePool &) = delete;

    /** Build the root node with the given initial layout. */
    NodeRef root(const std::vector<int> &initial_layout,
                 bool initial_phase);

    /**
     * Build a child that starts @p actions at cycle @p start_cycle
     * (which may jump past parent->cycle + 1 for pure waits).
     */
    NodeRef expand(const NodeRef &parent, int start_cycle,
                   const std::vector<Action> &actions);

    /**
     * Build an initial-phase child applying one zero-cost swap on
     * physical qubits (@p p0, @p p1) at cycle 0.
     */
    NodeRef initialSwapChild(const NodeRef &parent, int p0, int p1);

    /** Leave the initial phase (no other state change). */
    NodeRef commitInitialMapping(const NodeRef &parent);

    /**
     * Copy of @p node sharing @p node's parent (used by the
     * heuristic mapper's on-the-fly placement patching).
     */
    NodeRef cloneSibling(const NodeRef &node);

    /**
     * Place logical qubit @p l on the EMPTY physical position @p p of
     * @p node, keeping the cached mapping hash and occupancy bits
     * coherent.  The only sanctioned way to patch a mapping outside
     * expand()/initialSwapChild().
     */
    void placeLogical(SearchNode &node, int l, int p);

    /**
     * The node's mapping hash recomputed from scratch (Zobrist XOR
     * over the log2phys array plus the initial-phase salt).  Audit /
     * test reference for the incrementally maintained cache.
     */
    std::uint64_t referenceMappingHash(const SearchNode &node) const;

    const SearchContext &context() const { return *_ctx; }

    /** Currently live (referenced) nodes. */
    std::uint64_t liveNodes() const { return _live; }

    std::uint64_t peakLiveNodes() const { return _peakLive; }

    /** Bytes held in slabs (slabs are never returned early). */
    std::uint64_t peakBytes() const
    {
        return static_cast<std::uint64_t>(_slabs.size()) * _slabBytes;
    }

    /** Cumulative node constructions, including recycled slots. */
    std::uint64_t totalAllocations() const { return _totalAllocations; }

    /** Allocations served from the free list instead of a slab. */
    std::uint64_t recycledAllocations() const { return _recycled; }

  private:
    friend class NodeRef;
    friend class SearchNode; // materializeHash reads zobrist()

    struct Slab
    {
        /** kNodesPerSlab SearchNode objects (fixed stride). */
        std::unique_ptr<std::byte[]> nodes;
        /**
         * SoA word arena: regions [l2p | head | p2l | busy |
         * partner | occ], each region kNodesPerSlab * the field's
         * per-node slice.  Slices are padded to whole 64-bit words
         * so node cloning copies aligned words, never bytes.
         */
        std::unique_ptr<std::uint64_t[]> data;
    };

    /** Drop one reference; recycles the node and any parent chain
     *  it alone kept alive (iterative, never recursive). */
    static void release(SearchNode *node);

    SearchNode *allocate();
    SearchNode *acquireCopy(const SearchNode &src);
    void setParent(SearchNode *node, SearchNode *parent);
    void recycle(SearchNode *node);
    void addSlab();

    /** Zobrist placement key for logical @p l on physical @p p. */
    std::uint64_t
    zobrist(int l, int p) const
    {
        return _zobrist[static_cast<std::size_t>(l) *
                            static_cast<std::size_t>(_np) +
                        static_cast<std::size_t>(p)];
    }

    /** Advance @p node's firstUnscheduled past scheduled gates. */
    void advanceFirstUnscheduled(SearchNode *node) const;

    const SearchContext *_ctx;
    int _nl;
    int _np;
    /** Per-node field slice widths, in 64-bit words. @{ */
    std::size_t _wL2p;
    std::size_t _wHead;
    std::size_t _wP2l;
    std::size_t _wBusy;
    std::size_t _wPartner;
    /** Occupancy words per node: ceil(np / 64). */
    std::size_t _occWords;
    /** @} */
    /** Word offsets of each field's region within a slab arena. @{ */
    std::size_t _offHead;
    std::size_t _offP2l;
    std::size_t _offBusy;
    std::size_t _offPartner;
    std::size_t _offOcc;
    /** @} */
    /** Words in one slab's data arena. */
    std::size_t _slabWords;
    /** Node-object stride (sizeof(SearchNode), alignment-rounded). */
    std::size_t _nodeStride;
    std::size_t _nodesPerSlab;
    std::size_t _slabBytes;
    /** Construction cursor into the last slab. */
    std::size_t _cursor;
    std::vector<Slab> _slabs;
    std::vector<SearchNode *> _free;
    /** Deterministic per-(l, p) Zobrist keys, row-major l * np + p. */
    std::vector<std::uint64_t> _zobrist;
    std::uint64_t _live = 0;
    std::uint64_t _peakLive = 0;
    std::uint64_t _totalAllocations = 0;
    std::uint64_t _recycled = 0;
};

inline void
NodeRef::reset()
{
    if (_node != nullptr) {
        NodePool::release(_node);
        _node = nullptr;
    }
}

} // namespace toqm::search

#endif // TOQM_SEARCH_NODE_POOL_HPP
