/**
 * @file
 * Search node (one state of the circuit at one cycle, Section 4.1)
 * and the slab-allocating `NodePool` that owns every node's lifetime.
 *
 * A node fixes every scheduling decision for start times <= cycle.
 * Gates occupy their qubits for [start, start + latency - 1]; the
 * qubit mapping stored here is the one with all STARTED swaps applied
 * (the paper's convention for hashing and for the heuristic cost),
 * which is safe because a swap's qubits stay busy until it finishes.
 *
 * The search generates millions of nodes and both node cloning and
 * the filter's dominance comparisons are memory-bound, so allocation
 * is arranged for throughput:
 *
 *  - nodes and their per-qubit arrays live in ONE slab slot (the
 *    arrays sit immediately after the node object, one memcpy to
 *    clone) carved from large pool slabs — no per-node heap round
 *    trips and no `std::shared_ptr` control blocks;
 *  - lifetime is an intrusive, non-atomic reference count — safe
 *    because a pool and all its nodes belong to exactly ONE search
 *    (parallel drivers give every worker its own NodePool; nodes
 *    never cross pools or threads): a `NodeRef` holds one reference,
 *    a child holds one reference on its parent;
 *  - releasing the last reference walks the parent chain iteratively
 *    (never recursively — chains are search-depth long) and recycles
 *    each orphaned node into a free list that keeps nodes
 *    constructed, so the `actions` vector's capacity is reused.
 *
 * Node-lifetime rules: a node stays live while any NodeRef (frontier
 * entry, filter record, driver local) refers to it or while any live
 * descendant exists; a parent chain may be released only when the
 * last NodeRef to its subtree dies.  The pool must outlive every
 * NodeRef it handed out — declare the pool before frontiers, filters
 * and node locals.
 */

#ifndef TOQM_SEARCH_NODE_POOL_HPP
#define TOQM_SEARCH_NODE_POOL_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "search_context.hpp"

namespace toqm::search {

class NodePool;
class NodeRef;

/** An action started at a node's cycle. */
struct Action
{
    /** Logical gate index, or -1 for an inserted swap. */
    int gateIndex = -1;
    /** Physical operands (p1 == -1 for 1-qubit gates). */
    int p0 = -1;
    int p1 = -1;

    bool isSwap() const { return gateIndex < 0; }
};

/**
 * One state of the search graph.  Pool-allocated only; drivers hold
 * it through `NodeRef` and create children through `NodePool`.
 */
class SearchNode
{
  public:
    SearchNode(const SearchNode &) = delete;
    SearchNode &operator=(const SearchNode &) = delete;

    /** Cycle this node's actions start at (root: 0, no actions). */
    int cycle = 0;
    /** Counted path cost (== cycle; kept separate for clarity). */
    int costG = 0;
    /** Cached admissible heuristic (set by the cost estimator). */
    int costH = 0;
    /**
     * Encoded path cost under the context's CostTable:
     * cycleWeight * costG + total placement weight of the scheduled
     * actions.  Equal to costG when no table is active, so fKey()
     * degenerates to f().
     */
    std::int64_t objG = 0;
    /** Encoded admissible heuristic (set alongside costH). */
    std::int64_t objH = 0;
    /**
     * Placement weight paid beyond the layout-independent minimum of
     * the scheduled gates (swaps count in full).  Tracked so the
     * dominance filter stays exact under weighted objectives: a node
     * with less slack can always be completed at least as cheaply.
     * Zero when no table is active.
     */
    std::int64_t objSlack = 0;
    /**
     * Secondary ranking score used by the practical mapper (sum of
     * frontier/lookahead distances); not part of the admissible cost.
     */
    int routeScore = 0;
    /** Actions started at `cycle` by this node. */
    std::vector<Action> actions;

    /** Number of logical gates scheduled so far. */
    int scheduledGates = 0;
    /** Sum of busyUntil over physical qubits (filter quick reject). */
    long busySum = 0;
    /** Latest finish cycle among started swaps / original gates. */
    int activeSwapUntil = 0;
    int activeGateUntil = 0;
    /** Zero-cost swaps consumed in the initial-mapping phase. */
    int initialSwaps = 0;
    /** True while the node is still choosing the initial mapping. */
    bool initialPhase = false;
    /** Set by the filter when a dominating node exists. */
    bool dead = false;

    /** Parent in the search tree (owned via one reference). */
    const SearchNode *parent() const { return _parent; }

    /** Per-qubit state arrays (contiguous, right after the node). @{ */
    /** log2phys()[l] = physical position of logical l (-1 unmapped). */
    int *log2phys() { return _buf; }
    const int *log2phys() const { return _buf; }
    /** head()[l] = #gates already scheduled on logical qubit l. */
    int *head() { return _buf + _nl; }
    const int *head() const { return _buf + _nl; }
    /** phys2log()[p] = logical occupant of p (-1 empty). */
    int *phys2log() { return _buf + 2 * _nl; }
    const int *phys2log() const { return _buf + 2 * _nl; }
    /** busyUntil()[p] = last busy cycle of physical p (0 = never). */
    int *busyUntil() { return _buf + 2 * _nl + _np; }
    const int *busyUntil() const { return _buf + 2 * _nl + _np; }
    /**
     * lastSwapPartner()[p] = q if the most recent action on physical
     * p was swap(p, q); -1 otherwise (cyclic-swap pruning).
     */
    int *lastSwapPartner() { return _buf + 2 * _nl + 2 * _np; }
    const int *lastSwapPartner() const
    {
        return _buf + 2 * _nl + 2 * _np;
    }
    /** @} */

    int numLogical() const { return _nl; }

    int numPhysical() const { return _np; }

    /** Priority for the A* queue. */
    int f() const { return costG + costH; }

    /**
     * Encoded priority under the active objective.  With no cost
     * table this equals f(); at an allScheduled node it is the exact
     * encoded total cost of the completed schedule (cycleWeight *
     * makespan + path placement weight).
     */
    std::int64_t fKey() const { return objG + objH; }

    /** All logical gates scheduled? */
    bool allScheduled(const SearchContext &ctx) const
    {
        return scheduledGates == ctx.numGates();
    }

    /** Finish cycle of the whole schedule (valid once allScheduled). */
    int makespan() const;

    /** Hash of the post-swap mapping (filter bucket key). */
    std::uint64_t mappingHash() const;

  private:
    friend class NodePool;
    friend class NodeRef;

    SearchNode(NodePool *pool, int nl, int np, int *buf)
        : _pool(pool), _nl(nl), _np(np), _buf(buf)
    {}

    ~SearchNode() = default;

    NodePool *_pool;
    SearchNode *_parent = nullptr;
    /** Intrusive refcount (non-atomic: a node's pool, and thus the
     *  node, is owned by exactly one search thread). */
    std::uint32_t _refs = 0;
    int _nl;
    int _np;
    /** Points into this node's slab slot, right after the object. */
    int *_buf;
};

/**
 * Owning handle on a pooled node.  Copying retains, destruction
 * releases; when the last reference dies the node (and any parent
 * chain it alone kept alive) returns to the pool.
 */
class NodeRef
{
  public:
    NodeRef() = default;

    NodeRef(const NodeRef &other) : _node(other._node)
    {
        if (_node != nullptr)
            ++_node->_refs;
    }

    NodeRef(NodeRef &&other) noexcept : _node(other._node)
    {
        other._node = nullptr;
    }

    NodeRef &
    operator=(NodeRef other) noexcept
    {
        std::swap(_node, other._node);
        return *this;
    }

    ~NodeRef() { reset(); }

    void reset();

    SearchNode *get() const { return _node; }

    SearchNode *operator->() const { return _node; }

    SearchNode &operator*() const { return *_node; }

    explicit operator bool() const { return _node != nullptr; }

    friend bool
    operator==(const NodeRef &a, const NodeRef &b)
    {
        return a._node == b._node;
    }

    friend bool
    operator!=(const NodeRef &a, const NodeRef &b)
    {
        return a._node != b._node;
    }

  private:
    friend class NodePool;

    /** Adopts one already-counted reference. */
    explicit NodeRef(SearchNode *node) : _node(node) {}

    SearchNode *_node = nullptr;
};

/**
 * Arena allocator for the search nodes of one mapping run.  All
 * nodes of a pool share one geometry (the context's qubit counts),
 * so slots are fixed-stride and recycling is a free-list push.
 */
class NodePool
{
  public:
    explicit NodePool(const SearchContext &ctx);
    ~NodePool();
    NodePool(const NodePool &) = delete;
    NodePool &operator=(const NodePool &) = delete;

    /** Build the root node with the given initial layout. */
    NodeRef root(const std::vector<int> &initial_layout,
                 bool initial_phase);

    /**
     * Build a child that starts @p actions at cycle @p start_cycle
     * (which may jump past parent->cycle + 1 for pure waits).
     */
    NodeRef expand(const NodeRef &parent, int start_cycle,
                   const std::vector<Action> &actions);

    /**
     * Build an initial-phase child applying one zero-cost swap on
     * physical qubits (@p p0, @p p1) at cycle 0.
     */
    NodeRef initialSwapChild(const NodeRef &parent, int p0, int p1);

    /** Leave the initial phase (no other state change). */
    NodeRef commitInitialMapping(const NodeRef &parent);

    /**
     * Copy of @p node sharing @p node's parent (used by the
     * heuristic mapper's on-the-fly placement patching).
     */
    NodeRef cloneSibling(const NodeRef &node);

    const SearchContext &context() const { return *_ctx; }

    /** Currently live (referenced) nodes. */
    std::uint64_t liveNodes() const { return _live; }

    std::uint64_t peakLiveNodes() const { return _peakLive; }

    /** Bytes held in slabs (slabs are never returned early). */
    std::uint64_t peakBytes() const
    {
        return static_cast<std::uint64_t>(_slabs.size()) * _slabBytes;
    }

    /** Cumulative node constructions, including recycled slots. */
    std::uint64_t totalAllocations() const { return _totalAllocations; }

    /** Allocations served from the free list instead of a slab. */
    std::uint64_t recycledAllocations() const { return _recycled; }

  private:
    friend class NodeRef;

    /** Drop one reference; recycles the node and any parent chain
     *  it alone kept alive (iterative, never recursive). */
    static void release(SearchNode *node);

    SearchNode *allocate();
    SearchNode *acquireCopy(const SearchNode &src);
    void setParent(SearchNode *node, SearchNode *parent);
    void recycle(SearchNode *node);

    const SearchContext *_ctx;
    int _nl;
    int _np;
    size_t _bufInts;
    size_t _stride;
    size_t _nodesPerSlab;
    size_t _slabBytes;
    /** Construction cursor into the last slab. */
    size_t _cursor;
    std::vector<std::unique_ptr<std::byte[]>> _slabs;
    std::vector<SearchNode *> _free;
    std::uint64_t _live = 0;
    std::uint64_t _peakLive = 0;
    std::uint64_t _totalAllocations = 0;
    std::uint64_t _recycled = 0;
};

inline void
NodeRef::reset()
{
    if (_node != nullptr) {
        NodePool::release(_node);
        _node = nullptr;
    }
}

} // namespace toqm::search

#endif // TOQM_SEARCH_NODE_POOL_HPP
