/**
 * @file
 * Lowering from a parsed qasm::Program to an ir::Circuit.
 *
 * Registers are flattened into one contiguous qubit space.  Gates with
 * a native ir::GateKind (h, x, cx, swap, ...) are imported directly;
 * other declared gates are macro-expanded recursively with parameter
 * substitution; 3+-qubit library gates (ccx, cswap) therefore arrive
 * as their standard 1/2-qubit decompositions, which is exactly what a
 * qubit mapper needs.
 */

#ifndef TOQM_QASM_IMPORTER_HPP
#define TOQM_QASM_IMPORTER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ast.hpp"
#include "ir/circuit.hpp"

namespace toqm::qasm {

/** Options controlling the lowering. */
struct ImportOptions
{
    /** Keep measure operations in the circuit (as Measure gates). */
    bool keepMeasures = true;
    /**
     * Accept `if (c==n) op;` by importing the op unconditionally
     * (the mapper must still route it); if false, conditionals throw.
     */
    bool allowConditionals = false;
    /**
     * Macro-expansion recursion limit.  Legitimate library gates nest
     * a handful of levels; a chain anywhere near this deep is a
     * recursive (or adversarial) definition.
     */
    int maxExpansionDepth = 64;
    /**
     * Cap on the total number of IR gates the lowering may emit.
     * Guards against "gate bombs": k levels of gates that each apply
     * the previous one twice expand to 2^k operations from a few
     * hundred bytes of source.  0 disables the cap.
     */
    std::uint64_t maxExpandedGates = 4'000'000;
    /**
     * Cap on the total flattened qubit count (sum over qregs).
     * 0 disables the cap.
     */
    int maxQubits = 1'048'576;
};

/** A measurement's classical destination, in circuit gate order. */
struct MeasureTarget
{
    int gateIndex;    ///< Index of the Measure gate in the circuit.
    std::string creg;
    int cbit;
};

/** The lowering result. */
struct ImportResult
{
    ir::Circuit circuit;
    std::vector<MeasureTarget> measures;
    /** Flat-qubit names, e.g.\ "q[3]", for diagnostics and output. */
    std::vector<std::string> qubitNames;

    ImportResult() : circuit(0) {}
};

/** Lower @p program into a flat circuit. */
ImportResult importProgram(const Program &program,
                           const ImportOptions &options = {});

/** Convenience: parse + lower a QASM source string. */
ImportResult importString(const std::string &source,
                          const ImportOptions &options = {});

/** Convenience: parse + lower a QASM file. */
ImportResult importFile(const std::string &path,
                        const ImportOptions &options = {});

} // namespace toqm::qasm

#endif // TOQM_QASM_IMPORTER_HPP
