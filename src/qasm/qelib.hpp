/**
 * @file
 * Built-in copy of the OpenQASM 2.0 standard library `qelib1.inc`
 * so that benchmark files parse without any files on disk.
 */

#ifndef TOQM_QASM_QELIB_HPP
#define TOQM_QASM_QELIB_HPP

#include <string>

namespace toqm::qasm {

/** @return the source text of the built-in qelib1.inc. */
const std::string &qelib1Source();

} // namespace toqm::qasm

#endif // TOQM_QASM_QELIB_HPP
