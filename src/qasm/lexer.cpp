#include "lexer.hpp"

#include <cctype>
#include <map>
#include <utility>

namespace toqm::qasm {

const char *
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::Identifier: return "identifier";
      case TokenKind::Integer: return "integer";
      case TokenKind::Real: return "real";
      case TokenKind::String: return "string";
      case TokenKind::KwOpenqasm: return "OPENQASM";
      case TokenKind::KwInclude: return "include";
      case TokenKind::KwQreg: return "qreg";
      case TokenKind::KwCreg: return "creg";
      case TokenKind::KwGate: return "gate";
      case TokenKind::KwOpaque: return "opaque";
      case TokenKind::KwBarrier: return "barrier";
      case TokenKind::KwMeasure: return "measure";
      case TokenKind::KwReset: return "reset";
      case TokenKind::KwIf: return "if";
      case TokenKind::KwPi: return "pi";
      case TokenKind::KwU: return "U";
      case TokenKind::KwCX: return "CX";
      case TokenKind::LParen: return "(";
      case TokenKind::RParen: return ")";
      case TokenKind::LBrace: return "{";
      case TokenKind::RBrace: return "}";
      case TokenKind::LBracket: return "[";
      case TokenKind::RBracket: return "]";
      case TokenKind::Semicolon: return ";";
      case TokenKind::Comma: return ",";
      case TokenKind::Arrow: return "->";
      case TokenKind::Equals: return "==";
      case TokenKind::Plus: return "+";
      case TokenKind::Minus: return "-";
      case TokenKind::Star: return "*";
      case TokenKind::Slash: return "/";
      case TokenKind::Caret: return "^";
      case TokenKind::EndOfFile: return "<eof>";
    }
    return "<bad>";
}

Lexer::Lexer(std::string source) : _source(std::move(source)) {}

char
Lexer::peek() const
{
    return eof() ? '\0' : _source[_pos];
}

char
Lexer::get()
{
    const char c = _source[_pos++];
    if (c == '\n') {
        ++_line;
        _column = 1;
    } else {
        ++_column;
    }
    return c;
}

void
Lexer::skipWhitespaceAndComments()
{
    while (!eof()) {
        const char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            get();
        } else if (c == '/' && _pos + 1 < _source.size() &&
                   _source[_pos + 1] == '/') {
            while (!eof() && peek() != '\n')
                get();
        } else {
            break;
        }
    }
}

Token
Lexer::make(TokenKind kind, std::string text, int line, int col) const
{
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = col;
    return t;
}

Token
Lexer::lexNumber()
{
    const int line = _line, col = _column;
    std::string text;
    bool is_real = false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        text += get();
    if (!eof() && peek() == '.') {
        is_real = true;
        text += get();
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
            text += get();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
        is_real = true;
        text += get();
        if (!eof() && (peek() == '+' || peek() == '-'))
            text += get();
        if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
            throw ParseError("malformed exponent", _line, _column);
        while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
            text += get();
    }
    return make(is_real ? TokenKind::Real : TokenKind::Integer,
                std::move(text), line, col);
}

Token
Lexer::lexIdentifierOrKeyword()
{
    const int line = _line, col = _column;
    std::string text;
    while (!eof() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_')) {
        text += get();
    }
    static const std::map<std::string, TokenKind> keywords = {
        {"OPENQASM", TokenKind::KwOpenqasm},
        {"include", TokenKind::KwInclude},
        {"qreg", TokenKind::KwQreg},
        {"creg", TokenKind::KwCreg},
        {"gate", TokenKind::KwGate},
        {"opaque", TokenKind::KwOpaque},
        {"barrier", TokenKind::KwBarrier},
        {"measure", TokenKind::KwMeasure},
        {"reset", TokenKind::KwReset},
        {"if", TokenKind::KwIf},
        {"pi", TokenKind::KwPi},
        {"U", TokenKind::KwU},
        {"CX", TokenKind::KwCX},
    };
    const auto it = keywords.find(text);
    const TokenKind kind =
        it == keywords.end() ? TokenKind::Identifier : it->second;
    return make(kind, std::move(text), line, col);
}

Token
Lexer::lexString()
{
    const int line = _line, col = _column;
    get(); // opening quote
    std::string text;
    while (!eof() && peek() != '"') {
        if (peek() == '\n')
            throw ParseError("unterminated string", line, col);
        text += get();
    }
    if (eof())
        throw ParseError("unterminated string", line, col);
    get(); // closing quote
    return make(TokenKind::String, std::move(text), line, col);
}

Token
Lexer::next()
{
    skipWhitespaceAndComments();
    if (eof())
        return make(TokenKind::EndOfFile, "", _line, _column);

    const char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c)))
        return lexNumber();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
        return lexIdentifierOrKeyword();
    if (c == '"')
        return lexString();

    const int line = _line, col = _column;
    get();
    switch (c) {
      case '(': return make(TokenKind::LParen, "(", line, col);
      case ')': return make(TokenKind::RParen, ")", line, col);
      case '{': return make(TokenKind::LBrace, "{", line, col);
      case '}': return make(TokenKind::RBrace, "}", line, col);
      case '[': return make(TokenKind::LBracket, "[", line, col);
      case ']': return make(TokenKind::RBracket, "]", line, col);
      case ';': return make(TokenKind::Semicolon, ";", line, col);
      case ',': return make(TokenKind::Comma, ",", line, col);
      case '+': return make(TokenKind::Plus, "+", line, col);
      case '*': return make(TokenKind::Star, "*", line, col);
      case '/': return make(TokenKind::Slash, "/", line, col);
      case '^': return make(TokenKind::Caret, "^", line, col);
      case '-':
        if (peek() == '>') {
            get();
            return make(TokenKind::Arrow, "->", line, col);
        }
        return make(TokenKind::Minus, "-", line, col);
      case '=':
        if (peek() == '=') {
            get();
            return make(TokenKind::Equals, "==", line, col);
        }
        throw ParseError("expected '==' after '='", line, col);
      default:
        throw ParseError(std::string("unexpected character '") + c + "'",
                         line, col);
    }
}

std::vector<Token>
Lexer::tokenize(std::string source)
{
    Lexer lexer(std::move(source));
    std::vector<Token> tokens;
    for (;;) {
        tokens.push_back(lexer.next());
        if (tokens.back().kind == TokenKind::EndOfFile)
            return tokens;
    }
}

} // namespace toqm::qasm
