/**
 * @file
 * Recursive-descent parser for OpenQASM 2.0.
 *
 * `include "qelib1.inc";` resolves to the built-in standard library
 * (src/qasm/qelib.cpp); other includes are loaded from disk relative
 * to the including file.
 */

#ifndef TOQM_QASM_PARSER_HPP
#define TOQM_QASM_PARSER_HPP

#include <functional>
#include <string>
#include <vector>

#include "ast.hpp"
#include "lexer.hpp"

namespace toqm::qasm {

/** Maps an include path to its source text. */
using IncludeResolver = std::function<std::string(const std::string &)>;

/** The default resolver: built-in qelib1.inc, else read from disk. */
IncludeResolver defaultIncludeResolver(const std::string &base_dir = ".");

/** Parse an OpenQASM 2.0 source string into a Program. */
Program parseString(const std::string &source,
                    IncludeResolver resolver = defaultIncludeResolver());

/** Parse an OpenQASM 2.0 file (includes resolve beside the file). */
Program parseFile(const std::string &path);

/** The recursive-descent parser (exposed for testing). */
class Parser
{
  public:
    Parser(std::string source, IncludeResolver resolver);

    /** Parse the whole program. */
    Program parse();

  private:
    std::vector<Token> _tokens;
    size_t _pos = 0;
    IncludeResolver _resolver;
    Program _program;

    const Token &peek() const { return _tokens[_pos]; }
    const Token &get();
    const Token &expect(TokenKind kind, const char *what);
    bool accept(TokenKind kind);
    [[noreturn]] void fail(const std::string &message) const;

    void parseHeader();
    void parseStatement();
    void parseInclude();
    void parseRegDecl(bool quantum);
    void parseGateDecl();
    void parseOpaqueDecl();
    GateBodyOp parseGateBodyOp(const GateDecl &decl);
    void parseQop(bool conditional, const std::string &cond_reg,
                  long cond_value);
    void parseBarrier();
    Argument parseArgument();
    std::vector<Argument> parseArgumentList();
    std::vector<ExprPtr> parseParamList();
    ExprPtr parseExpr();
    ExprPtr parseAddSub();
    ExprPtr parseMulDiv();
    ExprPtr parsePower();
    ExprPtr parseUnary();
    ExprPtr parsePrimary();

    void checkGateArity(const Statement &stmt) const;
};

} // namespace toqm::qasm

#endif // TOQM_QASM_PARSER_HPP
