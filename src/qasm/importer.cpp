#include "importer.hpp"

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "fault/fault.hpp"
#include "obs/observer.hpp"
#include "parser.hpp"

namespace toqm::qasm {

namespace {

/** Native gate names the IR represents directly. */
const std::map<std::string, ir::GateKind> &
nativeKinds()
{
    static const std::map<std::string, ir::GateKind> kinds = {
        {"h", ir::GateKind::H},     {"x", ir::GateKind::X},
        {"y", ir::GateKind::Y},     {"z", ir::GateKind::Z},
        {"s", ir::GateKind::S},     {"sdg", ir::GateKind::Sdg},
        {"t", ir::GateKind::T},     {"tdg", ir::GateKind::Tdg},
        {"sx", ir::GateKind::SX},   {"id", ir::GateKind::ID},
        {"rx", ir::GateKind::RX},   {"ry", ir::GateKind::RY},
        {"rz", ir::GateKind::RZ},   {"u1", ir::GateKind::U1},
        {"u2", ir::GateKind::U2},   {"u3", ir::GateKind::U3},
        {"cx", ir::GateKind::CX},   {"cz", ir::GateKind::CZ},
        {"cp", ir::GateKind::CP},   {"cu1", ir::GateKind::CP},
        {"swap", ir::GateKind::Swap}, {"rzz", ir::GateKind::RZZ},
    };
    return kinds;
}

/** Recursive gate-application expander. */
class Emitter
{
  public:
    Emitter(const Program &program, const ImportOptions &options,
            ImportResult &result)
        : _program(program), _options(options), _result(result)
    {}

    /**
     * Emit one gate application on concrete flat qubits.
     *
     * @param name gate name ("U", "CX" or a declared gate).
     * @param params evaluated parameter values.
     * @param qubits concrete flat qubit indices.
     * @param depth expansion recursion depth guard.
     */
    void
    apply(const std::string &name, const std::vector<double> &params,
          const std::vector<int> &qubits, int depth)
    {
        if (depth > _options.maxExpansionDepth)
            throw std::runtime_error("gate expansion too deep (recursive "
                                     "gate definition?): " + name);
        // Size check before each emission: a k-level doubling chain
        // expands to 2^k ops, so the cap must bite during expansion,
        // not after.
        if (_options.maxExpandedGates != 0 &&
            static_cast<std::uint64_t>(_result.circuit.size()) >=
                _options.maxExpandedGates) {
            throw std::runtime_error(
                "gate expansion exceeds " +
                std::to_string(_options.maxExpandedGates) +
                " operations (exponential gate definition?): " + name);
        }

        if (name == "U") {
            _result.circuit.add(
                ir::Gate(ir::GateKind::U3, qubits.at(0), params));
            return;
        }
        if (name == "CX") {
            _result.circuit.add(
                ir::Gate(ir::GateKind::CX, qubits.at(0), qubits.at(1)));
            return;
        }
        if (name == "barrier") {
            _result.circuit.add(ir::Gate("barrier", qubits));
            return;
        }

        const auto native = nativeKinds().find(name);
        if (native != nativeKinds().end()) {
            if (qubits.size() == 1) {
                _result.circuit.add(
                    ir::Gate(native->second, qubits[0], params));
            } else {
                _result.circuit.add(ir::Gate(native->second, qubits[0],
                                             qubits[1], params));
            }
            return;
        }

        const auto it = _program.gates.find(name);
        if (it == _program.gates.end())
            throw std::runtime_error("use of undeclared gate: " + name);
        const GateDecl &decl = it->second;

        if (decl.opaque) {
            if (qubits.size() > 2)
                throw std::runtime_error(
                    "opaque gate with more than 2 qubits cannot be "
                    "lowered: " + name);
            _result.circuit.add(ir::Gate(name, qubits, params));
            return;
        }

        // Macro-expand: bind params and qargs, then emit the body.
        Env env;
        for (size_t i = 0; i < decl.params.size(); ++i)
            env[decl.params[i]] = params.at(i);
        std::map<std::string, int> qbind;
        for (size_t i = 0; i < decl.qargs.size(); ++i)
            qbind[decl.qargs[i]] = qubits.at(i);

        for (const GateBodyOp &op : decl.body) {
            std::vector<double> sub_params;
            sub_params.reserve(op.params.size());
            for (const ExprPtr &e : op.params)
                sub_params.push_back(e->eval(env));
            std::vector<int> sub_qubits;
            sub_qubits.reserve(op.qargs.size());
            for (const std::string &qa : op.qargs)
                sub_qubits.push_back(qbind.at(qa));
            apply(op.name, sub_params, sub_qubits, depth + 1);
        }
    }

  private:
    const Program &_program;
    const ImportOptions &_options;
    ImportResult &_result;
};

/** Resolve a (possibly whole-register) argument to flat indices. */
std::vector<int>
resolveArg(const Program &program, const Argument &arg)
{
    for (const RegDecl &reg : program.qregs) {
        if (reg.name != arg.reg)
            continue;
        std::vector<int> out;
        if (arg.index >= 0) {
            out.push_back(program.qubitOffset(arg.reg, arg.index));
        } else {
            for (int i = 0; i < reg.size; ++i)
                out.push_back(program.qubitOffset(arg.reg, i));
        }
        return out;
    }
    throw std::runtime_error("unknown qreg: " + arg.reg);
}

} // namespace

ImportResult
importProgram(const Program &program, const ImportOptions &options)
{
    ImportResult result;
    // Overflow-safe total: per-register sizes are parser-capped, but
    // many registers could still push the int sum past INT_MAX.
    long long wide_total = 0;
    for (const RegDecl &reg : program.qregs)
        wide_total += reg.size;
    if (options.maxQubits > 0 && wide_total > options.maxQubits) {
        throw std::runtime_error(
            "program declares " + std::to_string(wide_total) +
            " qubits, above the import limit of " +
            std::to_string(options.maxQubits));
    }
    const int total = program.totalQubits();
    result.circuit = ir::Circuit(total, "qasm");
    for (const RegDecl &reg : program.qregs) {
        for (int i = 0; i < reg.size; ++i)
            result.qubitNames.push_back(reg.name + "[" +
                                        std::to_string(i) + "]");
    }

    Emitter emitter(program, options, result);

    for (const Statement &stmt : program.statements) {
        if (stmt.conditional && !options.allowConditionals)
            throw std::runtime_error(
                "line " + std::to_string(stmt.line) +
                ": classically controlled operations are not supported "
                "(set ImportOptions::allowConditionals to import the "
                "operation unconditionally)");

        switch (stmt.kind) {
          case StmtKind::Barrier: {
            std::vector<int> qubits;
            for (const Argument &arg : stmt.args) {
                for (int q : resolveArg(program, arg))
                    qubits.push_back(q);
            }
            result.circuit.add(ir::Gate("barrier", qubits));
            break;
          }
          case StmtKind::Reset: {
            for (int q : resolveArg(program, stmt.args.at(0)))
                result.circuit.add(ir::Gate("reset", {q}));
            break;
          }
          case StmtKind::Measure: {
            if (!options.keepMeasures)
                break;
            const auto qubits = resolveArg(program, stmt.args.at(0));
            for (size_t i = 0; i < qubits.size(); ++i) {
                const int cbit = stmt.measureTarget.index >= 0
                                     ? stmt.measureTarget.index
                                     : static_cast<int>(i);
                result.measures.push_back(
                    {result.circuit.size(), stmt.measureTarget.reg, cbit});
                result.circuit.add(ir::Gate("measure", {qubits[i]}));
            }
            break;
          }
          case StmtKind::Qop: {
            // Evaluate parameters (top level has no free parameters).
            std::vector<double> params;
            params.reserve(stmt.params.size());
            for (const ExprPtr &e : stmt.params)
                params.push_back(e->eval(Env{}));

            // Broadcast whole-register arguments.
            std::vector<std::vector<int>> resolved;
            size_t broadcast = 1;
            for (const Argument &arg : stmt.args) {
                resolved.push_back(resolveArg(program, arg));
                if (resolved.back().size() > 1) {
                    if (broadcast != 1 &&
                        broadcast != resolved.back().size()) {
                        throw std::runtime_error(
                            "mismatched broadcast register sizes at line " +
                            std::to_string(stmt.line));
                    }
                    broadcast = resolved.back().size();
                }
            }
            for (size_t rep = 0; rep < broadcast; ++rep) {
                std::vector<int> qubits;
                qubits.reserve(resolved.size());
                for (const auto &r : resolved)
                    qubits.push_back(r.size() == 1 ? r[0] : r[rep]);
                emitter.apply(stmt.name, params, qubits, 0);
            }
            break;
          }
        }
    }
    return result;
}

namespace {

/** Front-end counters for `--metrics-json` (cold path). */
void
recordImportMetrics(const ImportResult &result)
{
    obs::Observer &o = obs::Observer::global();
    if (!o.metricsEnabled())
        return;
    o.metrics().increment("qasm.imports");
    o.metrics().add("qasm.gates",
                    static_cast<std::uint64_t>(result.circuit.size()));
    o.metrics().add(
        "qasm.qubits",
        static_cast<std::uint64_t>(result.circuit.numQubits()));
}

} // namespace

ImportResult
importString(const std::string &source, const ImportOptions &options)
{
    const obs::PhaseScope obs_phase("parse");
    TOQM_FAULT_POINT(QasmIo);
    ImportResult result = importProgram(parseString(source), options);
    recordImportMetrics(result);
    return result;
}

ImportResult
importFile(const std::string &path, const ImportOptions &options)
{
    const obs::PhaseScope obs_phase("parse");
    // Fault site: models the input file vanishing / going unreadable
    // mid-batch; the CLI's per-job containment must keep the rest of
    // the batch alive.
    TOQM_FAULT_POINT(QasmIo);
    ImportResult result = importProgram(parseFile(path), options);
    recordImportMetrics(result);
    return result;
}

} // namespace toqm::qasm
