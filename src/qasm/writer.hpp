/**
 * @file
 * QASM output: render an ir::Circuit (or a mapped circuit) back to
 * OpenQASM 2.0 text.  GT skeleton gates (which have no concrete
 * unitary) are emitted as `cz` so the output is loadable by standard
 * tools; an annotation comment records the substitution.
 */

#ifndef TOQM_QASM_WRITER_HPP
#define TOQM_QASM_WRITER_HPP

#include <string>

#include "ir/circuit.hpp"
#include "ir/mapped_circuit.hpp"

namespace toqm::qasm {

/** Render @p circuit as an OpenQASM 2.0 program. */
std::string writeCircuit(const ir::Circuit &circuit);

/**
 * Render a mapped circuit: the physical circuit plus comments
 * recording the initial and final layouts.
 */
std::string writeMappedCircuit(const ir::MappedCircuit &mapped);

} // namespace toqm::qasm

#endif // TOQM_QASM_WRITER_HPP
