#include "writer.hpp"

#include <cstdio>
#include <sstream>

namespace toqm::qasm {

namespace {

void
writeGate(std::ostringstream &os, const ir::Gate &gate)
{
    std::string name = gate.name();
    if (gate.kind() == ir::GateKind::GT) {
        os << "// generic two-qubit (GT) gate emitted as cz:\n";
        name = "cz";
    }
    os << name;
    if (!gate.params().empty()) {
        os << "(";
        for (size_t i = 0; i < gate.params().size(); ++i) {
            if (i > 0)
                os << ",";
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.12g", gate.params()[i]);
            os << buf;
        }
        os << ")";
    }
    os << " ";
    for (size_t i = 0; i < gate.qubits().size(); ++i) {
        if (i > 0)
            os << ",";
        os << "q[" << gate.qubits()[i] << "]";
    }
    os << ";\n";
}

} // namespace

std::string
writeCircuit(const ir::Circuit &circuit)
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";
    os << "// " << circuit.name() << "\n";
    os << "qreg q[" << circuit.numQubits() << "];\n";
    bool has_measure = false;
    for (const ir::Gate &g : circuit.gates())
        has_measure |= g.isMeasure();
    if (has_measure)
        os << "creg c[" << circuit.numQubits() << "];\n";
    for (const ir::Gate &g : circuit.gates()) {
        if (g.isMeasure()) {
            os << "measure q[" << g.qubit(0) << "] -> c[" << g.qubit(0)
               << "];\n";
        } else {
            writeGate(os, g);
        }
    }
    return os.str();
}

std::string
writeMappedCircuit(const ir::MappedCircuit &mapped)
{
    std::ostringstream os;
    os << "// initial layout (logical -> physical):";
    for (size_t l = 0; l < mapped.initialLayout.size(); ++l)
        os << " q" << l << "->Q" << mapped.initialLayout[l];
    os << "\n// final layout (logical -> physical):";
    for (size_t l = 0; l < mapped.finalLayout.size(); ++l)
        os << " q" << l << "->Q" << mapped.finalLayout[l];
    os << "\n" << writeCircuit(mapped.physical);
    return os.str();
}

} // namespace toqm::qasm
