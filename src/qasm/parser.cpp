#include "parser.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "qelib.hpp"

namespace toqm::qasm {

namespace {

/**
 * Upper bound on a single register's declared size.  No real device
 * or benchmark comes close; a larger literal is almost certainly a
 * typo or hostile input, and rejecting it here keeps the importer
 * from attempting a multi-gigabyte allocation.
 */
constexpr long kMaxRegisterSize = 1'048'576;

/**
 * Convert an Integer token to a long, reporting overflow (and values
 * above @p max_value) as a ParseError at the token's position rather
 * than letting std::out_of_range escape without source coordinates.
 */
long
integerValue(const Token &t, const char *what, long max_value)
{
    long value = 0;
    try {
        value = std::stol(t.text);
    } catch (const std::out_of_range &) {
        throw ParseError(std::string(what) + " out of range: " + t.text,
                         t.line, t.column);
    }
    if (value > max_value) {
        throw ParseError(std::string(what) + " too large: " + t.text +
                             " (limit " + std::to_string(max_value) + ")",
                         t.line, t.column);
    }
    return value;
}

/** Convert a numeric token to a finite double or fail with position. */
double
realValue(const Token &t)
{
    double value = 0.0;
    try {
        value = std::stod(t.text);
    } catch (const std::out_of_range &) {
        throw ParseError("numeric literal out of range: " + t.text,
                         t.line, t.column);
    }
    if (!std::isfinite(value)) {
        throw ParseError("numeric literal is not finite: " + t.text,
                         t.line, t.column);
    }
    return value;
}

} // namespace

IncludeResolver
defaultIncludeResolver(const std::string &base_dir)
{
    return [base_dir](const std::string &path) -> std::string {
        if (path == "qelib1.inc")
            return qelib1Source();
        const std::string full = base_dir + "/" + path;
        std::ifstream in(full);
        if (!in)
            throw std::runtime_error("cannot open include file: " + full);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    };
}

Program
parseString(const std::string &source, IncludeResolver resolver)
{
    Parser parser(source, std::move(resolver));
    return parser.parse();
}

Program
parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open QASM file: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash);
    return parseString(buf.str(), defaultIncludeResolver(dir));
}

Parser::Parser(std::string source, IncludeResolver resolver)
    : _tokens(Lexer::tokenize(std::move(source))),
      _resolver(std::move(resolver))
{}

const Token &
Parser::get()
{
    const Token &t = _tokens[_pos];
    if (t.kind != TokenKind::EndOfFile)
        ++_pos;
    return t;
}

const Token &
Parser::expect(TokenKind kind, const char *what)
{
    if (peek().kind != kind) {
        fail(std::string("expected ") + what + ", got '" + peek().text +
             "' (" + tokenKindName(peek().kind) + ")");
    }
    return get();
}

bool
Parser::accept(TokenKind kind)
{
    if (peek().kind != kind)
        return false;
    get();
    return true;
}

void
Parser::fail(const std::string &message) const
{
    throw ParseError(message, peek().line, peek().column);
}

Program
Parser::parse()
{
    parseHeader();
    while (peek().kind != TokenKind::EndOfFile)
        parseStatement();
    return std::move(_program);
}

void
Parser::parseHeader()
{
    expect(TokenKind::KwOpenqasm, "OPENQASM");
    const Token &version = get();
    if (version.kind != TokenKind::Real && version.kind != TokenKind::Integer)
        fail("expected version number after OPENQASM");
    _program.version = version.text;
    expect(TokenKind::Semicolon, "';'");
}

void
Parser::parseStatement()
{
    switch (peek().kind) {
      case TokenKind::KwInclude:
        parseInclude();
        return;
      case TokenKind::KwQreg:
        parseRegDecl(true);
        return;
      case TokenKind::KwCreg:
        parseRegDecl(false);
        return;
      case TokenKind::KwGate:
        parseGateDecl();
        return;
      case TokenKind::KwOpaque:
        parseOpaqueDecl();
        return;
      case TokenKind::KwBarrier:
        parseBarrier();
        return;
      case TokenKind::KwIf: {
        get();
        expect(TokenKind::LParen, "'('");
        const Token &reg = expect(TokenKind::Identifier, "creg name");
        expect(TokenKind::Equals, "'=='");
        const Token &val = expect(TokenKind::Integer, "integer");
        expect(TokenKind::RParen, "')'");
        parseQop(true, reg.text,
                 integerValue(val, "if-condition value",
                              std::numeric_limits<long>::max()));
        return;
      }
      default:
        parseQop(false, "", 0);
        return;
    }
}

void
Parser::parseInclude()
{
    get(); // include
    const Token &path = expect(TokenKind::String, "include path string");
    expect(TokenKind::Semicolon, "';'");
    // Parse the included source into this program, sharing gate decls
    // and statements.  Included files must not re-declare OPENQASM.
    const std::string source = _resolver(path.text);
    Parser sub("OPENQASM 2.0;\n" + source, _resolver);
    Program included = sub.parse();
    for (auto &entry : included.gates)
        _program.gates.insert(std::move(entry));
    for (auto &reg : included.qregs)
        _program.qregs.push_back(std::move(reg));
    for (auto &reg : included.cregs)
        _program.cregs.push_back(std::move(reg));
    for (auto &stmt : included.statements)
        _program.statements.push_back(std::move(stmt));
}

void
Parser::parseRegDecl(bool quantum)
{
    get(); // qreg / creg
    const Token &name = expect(TokenKind::Identifier, "register name");
    expect(TokenKind::LBracket, "'['");
    const Token &size = expect(TokenKind::Integer, "register size");
    expect(TokenKind::RBracket, "']'");
    expect(TokenKind::Semicolon, "';'");
    RegDecl decl;
    decl.name = name.text;
    decl.size = static_cast<int>(
        integerValue(size, "register size", kMaxRegisterSize));
    if (decl.size <= 0)
        fail("register size must be positive");
    (quantum ? _program.qregs : _program.cregs).push_back(std::move(decl));
}

void
Parser::parseGateDecl()
{
    get(); // gate
    GateDecl decl;
    decl.name = expect(TokenKind::Identifier, "gate name").text;
    if (accept(TokenKind::LParen)) {
        if (!accept(TokenKind::RParen)) {
            for (;;) {
                decl.params.push_back(
                    expect(TokenKind::Identifier, "parameter name").text);
                if (!accept(TokenKind::Comma))
                    break;
            }
            expect(TokenKind::RParen, "')'");
        }
    }
    for (;;) {
        decl.qargs.push_back(
            expect(TokenKind::Identifier, "qubit argument").text);
        if (!accept(TokenKind::Comma))
            break;
    }
    expect(TokenKind::LBrace, "'{'");
    while (!accept(TokenKind::RBrace))
        decl.body.push_back(parseGateBodyOp(decl));
    _program.gates[decl.name] = std::move(decl);
}

void
Parser::parseOpaqueDecl()
{
    get(); // opaque
    GateDecl decl;
    decl.opaque = true;
    decl.name = expect(TokenKind::Identifier, "gate name").text;
    if (accept(TokenKind::LParen)) {
        if (!accept(TokenKind::RParen)) {
            for (;;) {
                decl.params.push_back(
                    expect(TokenKind::Identifier, "parameter name").text);
                if (!accept(TokenKind::Comma))
                    break;
            }
            expect(TokenKind::RParen, "')'");
        }
    }
    for (;;) {
        decl.qargs.push_back(
            expect(TokenKind::Identifier, "qubit argument").text);
        if (!accept(TokenKind::Comma))
            break;
    }
    expect(TokenKind::Semicolon, "';'");
    _program.gates[decl.name] = std::move(decl);
}

GateBodyOp
Parser::parseGateBodyOp(const GateDecl &decl)
{
    GateBodyOp op;
    const Token &head = get();
    switch (head.kind) {
      case TokenKind::KwU:
        op.name = "U";
        break;
      case TokenKind::KwCX:
        op.name = "CX";
        break;
      case TokenKind::KwBarrier:
        op.name = "barrier";
        break;
      case TokenKind::Identifier:
        op.name = head.text;
        break;
      default:
        fail("expected gate operation in gate body");
    }
    if (op.name != "barrier" && accept(TokenKind::LParen)) {
        if (!accept(TokenKind::RParen)) {
            for (;;) {
                op.params.push_back(parseExpr());
                if (!accept(TokenKind::Comma))
                    break;
            }
            expect(TokenKind::RParen, "')'");
        }
    }
    for (;;) {
        const std::string qarg =
            expect(TokenKind::Identifier, "qubit argument").text;
        bool known = false;
        for (const auto &name : decl.qargs)
            known |= (name == qarg);
        if (!known)
            fail("gate body references unknown qubit '" + qarg + "'");
        op.qargs.push_back(qarg);
        if (!accept(TokenKind::Comma))
            break;
    }
    expect(TokenKind::Semicolon, "';'");
    return op;
}

void
Parser::parseQop(bool conditional, const std::string &cond_reg,
                 long cond_value)
{
    Statement stmt;
    stmt.conditional = conditional;
    stmt.condReg = cond_reg;
    stmt.condValue = cond_value;
    stmt.line = peek().line;

    const Token &head = get();
    switch (head.kind) {
      case TokenKind::KwMeasure: {
        stmt.kind = StmtKind::Measure;
        stmt.name = "measure";
        stmt.args.push_back(parseArgument());
        expect(TokenKind::Arrow, "'->'");
        stmt.measureTarget = parseArgument();
        expect(TokenKind::Semicolon, "';'");
        break;
      }
      case TokenKind::KwReset: {
        stmt.kind = StmtKind::Reset;
        stmt.name = "reset";
        stmt.args.push_back(parseArgument());
        expect(TokenKind::Semicolon, "';'");
        break;
      }
      case TokenKind::KwU: {
        stmt.kind = StmtKind::Qop;
        stmt.name = "U";
        expect(TokenKind::LParen, "'('");
        for (;;) {
            stmt.params.push_back(parseExpr());
            if (!accept(TokenKind::Comma))
                break;
        }
        expect(TokenKind::RParen, "')'");
        stmt.args.push_back(parseArgument());
        expect(TokenKind::Semicolon, "';'");
        if (stmt.params.size() != 3)
            fail("U takes exactly 3 parameters");
        break;
      }
      case TokenKind::KwCX: {
        stmt.kind = StmtKind::Qop;
        stmt.name = "CX";
        stmt.args = parseArgumentList();
        expect(TokenKind::Semicolon, "';'");
        if (stmt.args.size() != 2)
            fail("CX takes exactly 2 arguments");
        break;
      }
      case TokenKind::Identifier: {
        stmt.kind = StmtKind::Qop;
        stmt.name = head.text;
        if (accept(TokenKind::LParen)) {
            if (!accept(TokenKind::RParen)) {
                for (;;) {
                    stmt.params.push_back(parseExpr());
                    if (!accept(TokenKind::Comma))
                        break;
                }
                expect(TokenKind::RParen, "')'");
            }
        }
        stmt.args = parseArgumentList();
        expect(TokenKind::Semicolon, "';'");
        checkGateArity(stmt);
        break;
      }
      default:
        fail("expected a quantum operation, got '" + head.text + "'");
    }
    _program.statements.push_back(std::move(stmt));
}

void
Parser::checkGateArity(const Statement &stmt) const
{
    const auto it = _program.gates.find(stmt.name);
    if (it == _program.gates.end())
        fail("use of undeclared gate '" + stmt.name + "'");
    const GateDecl &decl = it->second;
    if (decl.params.size() != stmt.params.size()) {
        fail("gate '" + stmt.name + "' expects " +
             std::to_string(decl.params.size()) + " parameter(s), got " +
             std::to_string(stmt.params.size()));
    }
    if (decl.qargs.size() != stmt.args.size()) {
        fail("gate '" + stmt.name + "' expects " +
             std::to_string(decl.qargs.size()) + " qubit argument(s), got " +
             std::to_string(stmt.args.size()));
    }
}

void
Parser::parseBarrier()
{
    get(); // barrier
    Statement stmt;
    stmt.kind = StmtKind::Barrier;
    stmt.name = "barrier";
    stmt.line = peek().line;
    stmt.args = parseArgumentList();
    expect(TokenKind::Semicolon, "';'");
    _program.statements.push_back(std::move(stmt));
}

Argument
Parser::parseArgument()
{
    Argument arg;
    arg.reg = expect(TokenKind::Identifier, "register name").text;
    if (accept(TokenKind::LBracket)) {
        const Token &index = expect(TokenKind::Integer, "qubit index");
        arg.index = static_cast<int>(integerValue(
            index, "qubit index",
            static_cast<long>(std::numeric_limits<int>::max())));
        expect(TokenKind::RBracket, "']'");
    }
    return arg;
}

std::vector<Argument>
Parser::parseArgumentList()
{
    std::vector<Argument> args;
    for (;;) {
        args.push_back(parseArgument());
        if (!accept(TokenKind::Comma))
            break;
    }
    return args;
}

ExprPtr
Parser::parseExpr()
{
    return parseAddSub();
}

ExprPtr
Parser::parseAddSub()
{
    ExprPtr lhs = parseMulDiv();
    for (;;) {
        if (accept(TokenKind::Plus)) {
            lhs = std::make_unique<BinaryExpr>('+', std::move(lhs),
                                               parseMulDiv());
        } else if (accept(TokenKind::Minus)) {
            lhs = std::make_unique<BinaryExpr>('-', std::move(lhs),
                                               parseMulDiv());
        } else {
            return lhs;
        }
    }
}

ExprPtr
Parser::parseMulDiv()
{
    ExprPtr lhs = parsePower();
    for (;;) {
        if (accept(TokenKind::Star)) {
            lhs = std::make_unique<BinaryExpr>('*', std::move(lhs),
                                               parsePower());
        } else if (accept(TokenKind::Slash)) {
            lhs = std::make_unique<BinaryExpr>('/', std::move(lhs),
                                               parsePower());
        } else {
            return lhs;
        }
    }
}

ExprPtr
Parser::parsePower()
{
    ExprPtr lhs = parseUnary();
    if (accept(TokenKind::Caret)) {
        // Right associative.
        return std::make_unique<BinaryExpr>('^', std::move(lhs),
                                            parsePower());
    }
    return lhs;
}

ExprPtr
Parser::parseUnary()
{
    if (accept(TokenKind::Minus))
        return std::make_unique<NegExpr>(parseUnary());
    if (accept(TokenKind::Plus))
        return parseUnary();
    return parsePrimary();
}

ExprPtr
Parser::parsePrimary()
{
    const Token &t = get();
    switch (t.kind) {
      case TokenKind::Integer:
      case TokenKind::Real:
        return std::make_unique<NumberExpr>(realValue(t));
      case TokenKind::KwPi:
        return std::make_unique<PiExpr>();
      case TokenKind::Identifier: {
        static const char *functions[] = {"sin", "cos", "tan",
                                          "exp", "ln", "sqrt"};
        for (const char *f : functions) {
            if (t.text == f) {
                expect(TokenKind::LParen, "'('");
                ExprPtr arg = parseExpr();
                expect(TokenKind::RParen, "')'");
                return std::make_unique<CallExpr>(t.text, std::move(arg));
            }
        }
        return std::make_unique<ParamExpr>(t.text);
      }
      case TokenKind::LParen: {
        ExprPtr inner = parseExpr();
        expect(TokenKind::RParen, "')'");
        return inner;
      }
      default:
        fail("expected expression, got '" + t.text + "'");
    }
}

} // namespace toqm::qasm
