/**
 * @file
 * Token model for the OpenQASM 2.0 lexer.
 */

#ifndef TOQM_QASM_TOKEN_HPP
#define TOQM_QASM_TOKEN_HPP

#include <string>

namespace toqm::qasm {

/** Token categories of the OpenQASM 2.0 grammar. */
enum class TokenKind {
    // Literals and names.
    Identifier,
    Integer,
    Real,
    String,
    // Keywords.
    KwOpenqasm,
    KwInclude,
    KwQreg,
    KwCreg,
    KwGate,
    KwOpaque,
    KwBarrier,
    KwMeasure,
    KwReset,
    KwIf,
    KwPi,
    KwU,
    KwCX,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semicolon,
    Comma,
    Arrow,   // ->
    Equals,  // ==
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    EndOfFile,
};

/** @return a printable name for @p kind (for diagnostics). */
const char *tokenKindName(TokenKind kind);

/** A lexed token with source position for error messages. */
struct Token
{
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;   ///< Raw text (identifier/number/string body).
    int line = 0;       ///< 1-based source line.
    int column = 0;     ///< 1-based source column.
};

} // namespace toqm::qasm

#endif // TOQM_QASM_TOKEN_HPP
