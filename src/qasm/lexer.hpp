/**
 * @file
 * Hand-written lexer for OpenQASM 2.0.
 *
 * Handles line comments (//), string literals for include paths, and
 * distinguishes integers from reals (reals have a '.', exponent, or
 * both).  All errors are reported as qasm::ParseError with line and
 * column information.
 */

#ifndef TOQM_QASM_LEXER_HPP
#define TOQM_QASM_LEXER_HPP

#include <stdexcept>
#include <string>
#include <vector>

#include "token.hpp"

namespace toqm::qasm {

/** Error thrown by the lexer and parser, carrying a source position. */
class ParseError : public std::runtime_error
{
  public:
    ParseError(const std::string &message, int line, int column)
        : std::runtime_error("qasm:" + std::to_string(line) + ":" +
                             std::to_string(column) + ": " + message),
          _line(line), _column(column)
    {}

    int line() const { return _line; }

    int column() const { return _column; }

  private:
    int _line;
    int _column;
};

/** Streaming lexer over an in-memory QASM source. */
class Lexer
{
  public:
    explicit Lexer(std::string source);

    /** Lex the next token (EndOfFile forever once exhausted). */
    Token next();

    /** Lex the entire source into a token vector (incl.\ EOF). */
    static std::vector<Token> tokenize(std::string source);

  private:
    std::string _source;
    size_t _pos = 0;
    int _line = 1;
    int _column = 1;

    char peek() const;
    char get();
    bool eof() const { return _pos >= _source.size(); }
    void skipWhitespaceAndComments();
    Token lexNumber();
    Token lexIdentifierOrKeyword();
    Token lexString();
    Token make(TokenKind kind, std::string text, int line, int col) const;
};

} // namespace toqm::qasm

#endif // TOQM_QASM_LEXER_HPP
