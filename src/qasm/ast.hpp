/**
 * @file
 * AST for OpenQASM 2.0 programs.
 *
 * Expressions are kept symbolic so that user `gate` definitions can be
 * expanded with parameter substitution at each call site; evaluation
 * happens against an environment mapping parameter names to values.
 */

#ifndef TOQM_QASM_AST_HPP
#define TOQM_QASM_AST_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace toqm::qasm {

/** Parameter environment used when evaluating expressions. */
using Env = std::map<std::string, double>;

/** Abstract expression node. */
class Expr
{
  public:
    virtual ~Expr() = default;

    /**
     * Evaluate against @p env.
     * @throws std::runtime_error on unbound identifiers.
     */
    virtual double eval(const Env &env) const = 0;

    /** Render the expression back to QASM text. */
    virtual std::string str() const = 0;

    virtual std::unique_ptr<Expr> clone() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

/** A numeric literal. */
class NumberExpr : public Expr
{
  public:
    explicit NumberExpr(double value) : _value(value) {}

    double eval(const Env &) const override { return _value; }

    std::string str() const override;

    ExprPtr clone() const override
    {
        return std::make_unique<NumberExpr>(_value);
    }

  private:
    double _value;
};

/** The constant pi. */
class PiExpr : public Expr
{
  public:
    double eval(const Env &) const override;

    std::string str() const override { return "pi"; }

    ExprPtr clone() const override { return std::make_unique<PiExpr>(); }
};

/** A gate-parameter reference. */
class ParamExpr : public Expr
{
  public:
    explicit ParamExpr(std::string name) : _name(std::move(name)) {}

    double eval(const Env &env) const override;

    std::string str() const override { return _name; }

    ExprPtr clone() const override
    {
        return std::make_unique<ParamExpr>(_name);
    }

    const std::string &name() const { return _name; }

  private:
    std::string _name;
};

/** Unary negation. */
class NegExpr : public Expr
{
  public:
    explicit NegExpr(ExprPtr operand) : _operand(std::move(operand)) {}

    double eval(const Env &env) const override
    {
        return -_operand->eval(env);
    }

    std::string str() const override { return "-(" + _operand->str() + ")"; }

    ExprPtr clone() const override
    {
        return std::make_unique<NegExpr>(_operand->clone());
    }

  private:
    ExprPtr _operand;
};

/** Binary arithmetic: + - * / ^. */
class BinaryExpr : public Expr
{
  public:
    BinaryExpr(char op, ExprPtr lhs, ExprPtr rhs)
        : _op(op), _lhs(std::move(lhs)), _rhs(std::move(rhs))
    {}

    double eval(const Env &env) const override;

    std::string str() const override
    {
        return "(" + _lhs->str() + " " + _op + " " + _rhs->str() + ")";
    }

    ExprPtr clone() const override
    {
        return std::make_unique<BinaryExpr>(_op, _lhs->clone(),
                                            _rhs->clone());
    }

  private:
    char _op;
    ExprPtr _lhs;
    ExprPtr _rhs;
};

/** Unary function call: sin, cos, tan, exp, ln, sqrt. */
class CallExpr : public Expr
{
  public:
    CallExpr(std::string func, ExprPtr arg)
        : _func(std::move(func)), _arg(std::move(arg))
    {}

    double eval(const Env &env) const override;

    std::string str() const override
    {
        return _func + "(" + _arg->str() + ")";
    }

    ExprPtr clone() const override
    {
        return std::make_unique<CallExpr>(_func, _arg->clone());
    }

  private:
    std::string _func;
    ExprPtr _arg;
};

/** A register reference: whole register or a single element. */
struct Argument
{
    std::string reg;
    int index = -1; ///< -1 means the whole register (broadcast).
};

/** One operation inside a `gate` body. */
struct GateBodyOp
{
    std::string name;               ///< "U", "CX", "barrier" or a gate.
    std::vector<ExprPtr> params;    ///< Symbolic in the decl's params.
    std::vector<std::string> qargs; ///< Names of the decl's qubit args.
};

/** A `gate` or `opaque` declaration. */
struct GateDecl
{
    std::string name;
    std::vector<std::string> params;
    std::vector<std::string> qargs;
    std::vector<GateBodyOp> body; ///< Empty for opaque declarations.
    bool opaque = false;
};

/** Top-level statement kinds. */
enum class StmtKind {
    Qop,     ///< U, CX or named gate application.
    Measure,
    Reset,
    Barrier,
};

/** A top-level statement (optionally guarded by `if (creg == n)`). */
struct Statement
{
    StmtKind kind = StmtKind::Qop;
    std::string name;             ///< Gate name for Qop.
    std::vector<ExprPtr> params;  ///< Evaluable (no free gate params).
    std::vector<Argument> args;   ///< Quantum arguments.
    Argument measureTarget;       ///< Classical target for Measure.
    bool conditional = false;
    std::string condReg;
    long condValue = 0;
    int line = 0;
};

/** A register declaration. */
struct RegDecl
{
    std::string name;
    int size = 0;
};

/** A parsed OpenQASM 2.0 program. */
struct Program
{
    std::string version = "2.0";
    std::vector<RegDecl> qregs;
    std::vector<RegDecl> cregs;
    std::map<std::string, GateDecl> gates;
    std::vector<Statement> statements;

    /** Total number of quantum bits across all qregs. */
    int totalQubits() const;

    /** Flat qubit index of @p reg element @p idx. */
    int qubitOffset(const std::string &reg, int idx) const;
};

} // namespace toqm::qasm

#endif // TOQM_QASM_AST_HPP
