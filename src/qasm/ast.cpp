#include "ast.hpp"

#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>

namespace toqm::qasm {

std::string
NumberExpr::str() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", _value);
    return buf;
}

double
PiExpr::eval(const Env &) const
{
    return std::numbers::pi;
}

double
ParamExpr::eval(const Env &env) const
{
    const auto it = env.find(_name);
    if (it == env.end())
        throw std::runtime_error("unbound gate parameter: " + _name);
    return it->second;
}

double
BinaryExpr::eval(const Env &env) const
{
    const double a = _lhs->eval(env);
    const double b = _rhs->eval(env);
    switch (_op) {
      case '+': return a + b;
      case '-': return a - b;
      case '*': return a * b;
      case '/':
        if (b == 0.0)
            throw std::runtime_error("division by zero in QASM expression");
        return a / b;
      case '^': return std::pow(a, b);
      default:
        throw std::runtime_error("bad binary operator");
    }
}

double
CallExpr::eval(const Env &env) const
{
    const double a = _arg->eval(env);
    if (_func == "sin")
        return std::sin(a);
    if (_func == "cos")
        return std::cos(a);
    if (_func == "tan")
        return std::tan(a);
    if (_func == "exp")
        return std::exp(a);
    if (_func == "ln")
        return std::log(a);
    if (_func == "sqrt")
        return std::sqrt(a);
    throw std::runtime_error("unknown function: " + _func);
}

int
Program::totalQubits() const
{
    int total = 0;
    for (const auto &reg : qregs)
        total += reg.size;
    return total;
}

int
Program::qubitOffset(const std::string &reg, int idx) const
{
    int offset = 0;
    for (const auto &r : qregs) {
        if (r.name == reg) {
            if (idx < 0 || idx >= r.size)
                throw std::out_of_range("qubit index out of range: " + reg +
                                        "[" + std::to_string(idx) + "]");
            return offset + idx;
        }
        offset += r.size;
    }
    throw std::out_of_range("unknown qreg: " + reg);
}

} // namespace toqm::qasm
