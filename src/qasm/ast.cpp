#include "ast.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <string>

namespace toqm::qasm {

std::string
NumberExpr::str() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", _value);
    return buf;
}

double
PiExpr::eval(const Env &) const
{
    return std::numbers::pi;
}

double
ParamExpr::eval(const Env &env) const
{
    const auto it = env.find(_name);
    if (it == env.end())
        throw std::runtime_error("unbound gate parameter: " + _name);
    return it->second;
}

namespace {

/** Reject overflow to inf / domain-error NaN in parameter math so a
 *  non-finite angle never reaches the IR. */
double
requireFinite(double value, const char *context)
{
    if (!std::isfinite(value)) {
        throw std::runtime_error(
            std::string("non-finite result in QASM expression (") +
            context + ")");
    }
    return value;
}

} // namespace

double
BinaryExpr::eval(const Env &env) const
{
    const double a = _lhs->eval(env);
    const double b = _rhs->eval(env);
    switch (_op) {
      case '+': return requireFinite(a + b, "+");
      case '-': return requireFinite(a - b, "-");
      case '*': return requireFinite(a * b, "*");
      case '/':
        if (b == 0.0)
            throw std::runtime_error("division by zero in QASM expression");
        return requireFinite(a / b, "/");
      case '^': return requireFinite(std::pow(a, b), "^");
      default:
        throw std::runtime_error("bad binary operator");
    }
}

double
CallExpr::eval(const Env &env) const
{
    const double a = _arg->eval(env);
    if (_func == "sin")
        return requireFinite(std::sin(a), "sin");
    if (_func == "cos")
        return requireFinite(std::cos(a), "cos");
    if (_func == "tan")
        return requireFinite(std::tan(a), "tan");
    if (_func == "exp")
        return requireFinite(std::exp(a), "exp");
    if (_func == "ln")
        return requireFinite(std::log(a), "ln");
    if (_func == "sqrt")
        return requireFinite(std::sqrt(a), "sqrt");
    throw std::runtime_error("unknown function: " + _func);
}

int
Program::totalQubits() const
{
    long long total = 0;
    for (const auto &reg : qregs)
        total += reg.size;
    if (total > std::numeric_limits<int>::max())
        throw std::overflow_error("total qubit count overflows int");
    return static_cast<int>(total);
}

int
Program::qubitOffset(const std::string &reg, int idx) const
{
    int offset = 0;
    for (const auto &r : qregs) {
        if (r.name == reg) {
            if (idx < 0 || idx >= r.size)
                throw std::out_of_range("qubit index out of range: " + reg +
                                        "[" + std::to_string(idx) + "]");
            return offset + idx;
        }
        offset += r.size;
    }
    throw std::out_of_range("unknown qreg: " + reg);
}

} // namespace toqm::qasm
