/**
 * @file
 * Work-stealing `ThreadPool` for the parallel mapping drivers.
 *
 * The pool runs COARSE tasks — whole searches (portfolio entries) or
 * whole circuit mappings (`toqm_map --jobs N`), each seconds of work
 * owning its own NodePool/Filter/ResourceGuard — so the scheduler
 * optimizes for locality and simplicity, not nanosecond dispatch:
 *
 *  - every worker owns a deque guarded by its own mutex.  The owner
 *    pushes and pops at the BACK (LIFO: a task's subtasks run on the
 *    worker that spawned them while their data is warm — arena
 *    affinity for the per-thread pools and the estimator's
 *    thread_local scratch), while idle workers steal from the FRONT
 *    (FIFO: thieves take the oldest, largest-grained work);
 *  - external submissions are dealt round-robin so a batch spreads
 *    over the pool without any balancing heuristics;
 *  - an idle worker scans every other deque (starting after its own
 *    index to avoid thundering on worker 0) before sleeping on the
 *    pool-wide condition variable.
 *
 * `currentWorkerIndex()` tells code it runs on worker i of SOME pool
 * (-1 off-pool); `WorkerLocal<T>` builds per-worker slots on top —
 * the idiom for merge-at-the-end accumulations that must not share
 * cache lines between workers.
 */

#ifndef TOQM_PARALLEL_THREAD_POOL_HPP
#define TOQM_PARALLEL_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace toqm::parallel {

class ThreadPool
{
  public:
    /**
     * Spin up @p workers threads (0 = one per hardware thread, at
     * least 1).  The pool is ready immediately; destruction waits for
     * every submitted task to finish, then joins.
     */
    explicit ThreadPool(unsigned workers = 0);

    /** Drains remaining tasks (equivalent to wait()) and joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p task.  From a worker thread of THIS pool the task
     * lands at the back of that worker's own deque (LIFO, stealable
     * by others); from outside it is dealt round-robin.
     */
    void submit(std::function<void()> task);

    /**
     * Block until every task submitted so far (including tasks those
     * tasks submitted) has finished.  Callable from non-pool threads
     * only; the pool stays usable afterwards.
     */
    void wait();

    unsigned workerCount() const
    {
        return static_cast<unsigned>(_workers.size());
    }

    /**
     * Index of the calling thread within the pool that owns it, or
     * -1 when the caller is not a pool worker.  Indices are dense in
     * [0, workerCount()).
     */
    static int currentWorkerIndex();

    /** Successful steals so far (diagnostic; relaxed counter). */
    std::uint64_t
    steals() const
    {
        return _steals.load(std::memory_order_relaxed);
    }

    /**
     * Tasks whose exception escaped to the worker loop.  The loop
     * catches and counts them (instead of letting them reach
     * std::terminate) so one poisoned job cannot take down the batch
     * or wedge wait(); drivers that need per-task failure detail must
     * catch inside the task — by the time an exception reaches the
     * pool, the task's identity is gone.
     */
    std::uint64_t
    taskExceptions() const
    {
        return _taskExceptions.load(std::memory_order_relaxed);
    }

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> deque;
    };

    void workerLoop(unsigned index);
    bool tryPop(unsigned index, std::function<void()> &task);

    std::vector<std::unique_ptr<Worker>> _workers;
    std::vector<std::thread> _threads;

    /** Guards sleep/wake and the inflight/queued counts.  Never held
     *  together with a Worker::mutex (deadlock-freedom by layering:
     *  deque locks are leaves). */
    std::mutex _mutex;
    std::condition_variable _wake;
    std::condition_variable _idle;
    /** Tasks submitted but not yet finished. */
    std::uint64_t _inflight = 0;
    /** Tasks sitting in some deque (sleep predicate: a worker may
     *  only block when this is 0, so no wakeup is ever lost). */
    std::uint64_t _queued = 0;
    bool _stop = false;

    std::atomic<std::uint64_t> _steals{0};
    /** Tasks whose exception was contained by the worker loop. */
    std::atomic<std::uint64_t> _taskExceptions{0};
    /** Round-robin cursor for external submissions. */
    std::atomic<std::uint64_t> _nextExternal{0};
};

/**
 * One slot of T per pool worker plus one for off-pool threads
 * (slot 0).  `local()` is the calling thread's slot; `slots()`
 * exposes all of them for a merge AFTER `pool.wait()`.  Slots are
 * only data-race-free under the pool discipline: each worker touches
 * its own slot while tasks run, the merger touches all of them only
 * once the pool is quiescent.
 */
template <typename T>
class WorkerLocal
{
  public:
    explicit WorkerLocal(const ThreadPool &pool)
        : _slots(pool.workerCount() + 1)
    {}

    T &
    local()
    {
        return _slots[static_cast<std::size_t>(
            ThreadPool::currentWorkerIndex() + 1)];
    }

    std::vector<T> &slots() { return _slots; }

    const std::vector<T> &slots() const { return _slots; }

  private:
    std::vector<T> _slots;
};

} // namespace toqm::parallel

#endif // TOQM_PARALLEL_THREAD_POOL_HPP
