#include "thread_pool.hpp"

#include "fault/fault.hpp"

namespace toqm::parallel {

namespace {

/** Which pool the calling thread works for, and its index there.
 *  Both thread_local so a worker of pool A submitting into pool B is
 *  correctly treated as external by B. */
thread_local const ThreadPool *t_owner = nullptr;
thread_local int t_worker_index = -1;

} // namespace

ThreadPool::ThreadPool(unsigned workers)
{
    unsigned n = workers;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    _workers.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        _workers.push_back(std::make_unique<Worker>());
    _threads.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        _threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _wake.notify_all();
    for (std::thread &t : _threads)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        const std::lock_guard<std::mutex> lock(_mutex);
        ++_inflight;
        ++_queued;
    }
    unsigned target;
    if (t_owner == this && t_worker_index >= 0) {
        // Task spawned by one of our own workers: its own deque, so
        // it (or a thief) runs it while the spawner's data is warm.
        target = static_cast<unsigned>(t_worker_index);
    } else {
        target = static_cast<unsigned>(
            _nextExternal.fetch_add(1, std::memory_order_relaxed) %
            _workers.size());
    }
    {
        Worker &w = *_workers[target];
        const std::lock_guard<std::mutex> lock(w.mutex);
        w.deque.push_back(std::move(task));
    }
    _wake.notify_all();
}

bool
ThreadPool::tryPop(unsigned index, std::function<void()> &task)
{
    bool stolen = false;
    bool found = false;
    {
        // Own deque first, from the BACK (LIFO).
        Worker &w = *_workers[index];
        const std::lock_guard<std::mutex> lock(w.mutex);
        if (!w.deque.empty()) {
            task = std::move(w.deque.back());
            w.deque.pop_back();
            found = true;
        }
    }
    // Then steal from the FRONT (FIFO), scanning rightward from our
    // own slot so victims spread instead of piling on worker 0.
    const unsigned n = workerCount();
    for (unsigned k = 1; !found && k < n; ++k) {
        Worker &w = *_workers[(index + k) % n];
        const std::lock_guard<std::mutex> lock(w.mutex);
        if (!w.deque.empty()) {
            task = std::move(w.deque.front());
            w.deque.pop_front();
            found = true;
            stolen = true;
        }
    }
    if (found) {
        if (stolen)
            _steals.fetch_add(1, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(_mutex);
        --_queued;
    }
    return found;
}

void
ThreadPool::workerLoop(unsigned index)
{
    t_owner = this;
    t_worker_index = static_cast<int>(index);
    for (;;) {
        std::function<void()> task;
        if (tryPop(index, task)) {
            // Containment boundary: a task that throws (or an
            // injected worker-start fault) is recorded and swallowed
            // here, so one poisoned job can neither std::terminate
            // the process nor leave _inflight stuck and deadlock
            // wait().  The worker itself survives and keeps serving
            // the deque — its arena-affinity state is all
            // thread_local and untouched by the unwind.
            try {
                TOQM_FAULT_POINT(WorkerStart);
                task();
            } catch (...) {
                _taskExceptions.fetch_add(1,
                                          std::memory_order_relaxed);
            }
            task = nullptr; // release captures before going idle
            const std::lock_guard<std::mutex> lock(_mutex);
            if (--_inflight == 0)
                _idle.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(_mutex);
        _wake.wait(lock,
                   [this] { return _stop || _queued > 0; });
        if (_stop && _queued == 0)
            return;
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _idle.wait(lock, [this] { return _inflight == 0; });
}

int
ThreadPool::currentWorkerIndex()
{
    return t_worker_index;
}

} // namespace toqm::parallel
