/**
 * @file
 * Batch runner: map many inputs concurrently, report deterministically.
 *
 * The contract `toqm_map --jobs N` builds on:
 *
 *  - jobs run in ANY order on the pool, but results come back indexed
 *    by input position, so aggregated output is always ordered by the
 *    input list — never by completion time;
 *  - each job returns an exit code; the batch's code is the WORST
 *    (numeric max) across jobs, so one failed circuit fails the batch
 *    with the most severe failure class while the others still
 *    produce their results.
 */

#ifndef TOQM_PARALLEL_BATCH_HPP
#define TOQM_PARALLEL_BATCH_HPP

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "thread_pool.hpp"

namespace toqm::parallel {

/**
 * Run every job on @p pool and wait; `codes[i]` is job i's return
 * value regardless of completion order.  Jobs must be independent
 * (they run concurrently) and must not throw.
 *
 * A worker can die at the task boundary BEFORE the job body runs (a
 * worker-start fault; the pool contains the exception and keeps the
 * thread alive).  Such a job has done no work and touched no state,
 * so it is safely resubmitted; a job that still never ran after the
 * bounded retries reports exit 1 rather than a silent success.
 */
inline std::vector<int>
runBatch(ThreadPool &pool,
         const std::vector<std::function<int()>> &jobs)
{
    // Sentinel: distinguishes "job never ran" (worker died at the
    // task boundary) from every real exit code, which is >= 0.
    constexpr int kNeverRan = -1;
    std::vector<int> codes(jobs.size(), kNeverRan);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool.submit([&jobs, &codes, i] { codes[i] = jobs[i](); });
    }
    pool.wait();
    for (int round = 0; round < 2; ++round) {
        bool resubmitted = false;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (codes[i] != kNeverRan)
                continue;
            pool.submit([&jobs, &codes, i] { codes[i] = jobs[i](); });
            resubmitted = true;
        }
        if (!resubmitted)
            break;
        pool.wait();
    }
    for (int &code : codes) {
        if (code == kNeverRan)
            code = 1;
    }
    return codes;
}

/** The batch exit code: the numeric max (worst) across jobs. */
inline int
worstExitCode(const std::vector<int> &codes)
{
    int worst = 0;
    for (const int c : codes)
        worst = std::max(worst, c);
    return worst;
}

} // namespace toqm::parallel

#endif // TOQM_PARALLEL_BATCH_HPP
