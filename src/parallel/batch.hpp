/**
 * @file
 * Batch runner: map many inputs concurrently, report deterministically.
 *
 * The contract `toqm_map --jobs N` builds on:
 *
 *  - jobs run in ANY order on the pool, but results come back indexed
 *    by input position, so aggregated output is always ordered by the
 *    input list — never by completion time;
 *  - each job returns an exit code; the batch's code is the WORST
 *    (numeric max) across jobs, so one failed circuit fails the batch
 *    with the most severe failure class while the others still
 *    produce their results.
 */

#ifndef TOQM_PARALLEL_BATCH_HPP
#define TOQM_PARALLEL_BATCH_HPP

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "thread_pool.hpp"

namespace toqm::parallel {

/**
 * Run every job on @p pool and wait; `codes[i]` is job i's return
 * value regardless of completion order.  Jobs must be independent
 * (they run concurrently) and must not throw.
 */
inline std::vector<int>
runBatch(ThreadPool &pool,
         const std::vector<std::function<int()>> &jobs)
{
    std::vector<int> codes(jobs.size(), 0);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        pool.submit([&jobs, &codes, i] { codes[i] = jobs[i](); });
    }
    pool.wait();
    return codes;
}

/** The batch exit code: the numeric max (worst) across jobs. */
inline int
worstExitCode(const std::vector<int> &codes)
{
    int worst = 0;
    for (const int c : codes)
        worst = std::max(worst, c);
    return worst;
}

} // namespace toqm::parallel

#endif // TOQM_PARALLEL_BATCH_HPP
