/**
 * @file
 * `PortfolioMapper` — race K differently-configured searches on one
 * mapping instance and return the best answer found by any of them.
 *
 * Exact mapping runtimes are wildly configuration-sensitive (filter
 * on/off, initial-layout seed, A* vs iterative deepening), and no
 * single configuration dominates.  A portfolio turns that variance
 * into speed: every entry runs on its own pool worker with its OWN
 * NodePool, Filter and ResourceGuard (nothing search-local is
 * shared), while two facts flow between them through one
 * `search::IncumbentChannel`:
 *
 *  - achieved makespans, which every exact entry prunes against (the
 *    atomic watermark read on its expansion hot path), and
 *  - a stop request, raised the moment one entry PROVES optimality —
 *    the losers' guards observe it at their next probe and unwind as
 *    `Cancelled` (promptly, without leaking: their pools die with
 *    their stack frames).
 *
 * Bounds are only sound across entries that search the SAME layout
 * space (free vs fixed-to-one-seed): a free-layout schedule can
 * undercut every fixed-layout one, so its makespan would prune a
 * fixed search's true optimum and turn its exhaustion into a bogus
 * "Infeasible".  The driver therefore resolves each entry's space up
 * front against the race's space (entry 0's): in a fixed-layout race
 * a seedless heuristic entry is pinned to the race's seed, and any
 * entry whose space still differs (e.g. IDA*'s fixed identity inside
 * a --search-initial race) runs WITHOUT the channel — no foreign
 * bounds in either direction — and can neither claim provenOptimal
 * for the race nor stop it.  Incoherent entries still honor the stop
 * token, so a settled race stands every worker down.
 *
 * The same coherence rule extends to OBJECTIVES: the channel carries
 * encoded cost keys, and a key under one objective is meaningless as
 * a bound under another, so an entry shares the channel only when its
 * `objectiveId` ALSO matches the race's (entry 0's).  A race mixing
 * objectives still runs — the off-objective entries just race
 * channel-less, like layout-incoherent ones.
 *
 * Winner selection is deterministic given the per-entry outcomes:
 * every successful circuit is re-scored under the RACE's objective
 * (entry 0's; plain cycles when it has no cost table) and the lowest
 * key wins.  Ties break by proven-optimal then lower entry index —
 * except in a mixed-objective race, where the race's OTHER axis
 * breaks the tie first, which guarantees the returned circuit is
 * never strictly dominated by a losing entry's result.  (In a
 * homogeneous coherent race the proven optimum also has the lowest
 * key, so this equals the old proven-first rule byte for byte.)
 * Same winner configuration => byte-identical circuit,
 * because each entry's search is internally deterministic; only WHO
 * wins can vary with thread timing, and only among entries whose
 * results tie on (proven, key) up to the selection rule.
 *
 * Mixed-objective races additionally report the Pareto front of the
 * returned circuits over (cycles, fidelity cost) in
 * `PortfolioResult::pareto` — the race has two axes, and the single
 * winner necessarily discards information about the other one.
 */

#ifndef TOQM_PARALLEL_PORTFOLIO_HPP
#define TOQM_PARALLEL_PORTFOLIO_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/circuit.hpp"
#include "ir/mapped_circuit.hpp"
#include "search/cost_table.hpp"
#include "search/search_stats.hpp"
#include "toqm/mapper.hpp"

namespace toqm::parallel {

/** One raced configuration. */
struct PortfolioEntry
{
    /** How this entry searches. */
    enum class Kind {
        /** Exact A* (core::OptimalMapper) with `exact` below. */
        Exact,
        /** Iterative deepening (core::idaStarMap); `exact.latency`,
         *  `exact.allowConcurrentSwapAndGate` and
         *  `exact.maxExpandedNodes` apply. */
        Ida,
        /** The scalable non-optimal mapper with `heuristic` below —
         *  the portfolio's fast fallback and first bound supplier. */
        Heuristic,
    };

    /** Reported in outcomes and the stats-line portfolio JSON. */
    std::string name;
    Kind kind = Kind::Exact;
    core::MapperConfig exact;
    heuristic::HeuristicConfig heuristic;
    /** Entry-specific seed layout (empty = the map() call's). */
    std::optional<std::vector<int>> initialLayout;
    /**
     * Encoded objective this entry minimises (null = plain cycles).
     * The driver plumbs it into the entry's mapper config; it must
     * outlive the race.
     */
    const search::CostTable *costTable = nullptr;
    /**
     * Identity of the objective behind `costTable` (0 = plain
     * cycles).  Entries share the race's incumbent channel only when
     * this matches entry 0's — an encoded key under one objective is
     * not a sound bound under another (see the header comment).
     */
    std::uint64_t objectiveId = 0;
    /** Human-readable objective name for reports ("" = cycles). */
    std::string objectiveName;
};

/** Configuration of a portfolio race. */
struct PortfolioConfig
{
    std::vector<PortfolioEntry> entries;
    /** Pool workers (0 = one per entry). */
    unsigned workers = 0;
    /** Base resource limits applied to every entry (an entry's own
     *  guard fields, where set, take precedence). */
    search::GuardConfig guard;
};

/** What one entry returned (order matches config.entries). */
struct EntryOutcome
{
    std::string name;
    search::SearchStatus status = search::SearchStatus::Cancelled;
    /** A complete circuit was produced. */
    bool success = false;
    /** The result is a proven optimum (exact entries only). */
    bool provenOptimal = false;
    /** Complete but unproven (anytime) delivery. */
    bool fromIncumbent = false;
    int cycles = -1;
    /** Encoded total cost of this entry's circuit under the ENTRY's
     *  own objective (== cycles for cycles entries; -1 when no
     *  circuit was produced). */
    std::int64_t costKey = -1;
    /** The entry's objectiveName ("" = cycles; omitted from JSON). */
    std::string objective;
    /**
     * Non-empty when the entry died to a contained fault/exception:
     * the exception's message.  A faulted entry reports
     * success=false / status=Cancelled and simply loses the race —
     * the other entries finish normally.
     */
    std::string error;
    search::SearchStats stats;
};

/**
 * One non-dominated circuit of a mixed-objective race, on the two
 * axes the race actually explored.
 */
struct ParetoPoint
{
    /** Index into `outcomes` of the entry that produced it. */
    int entry = -1;
    std::string name;
    /** ASAP makespan of the circuit (the cycles axis). */
    int cycles = -1;
    /** Encoded cost under the race's non-cycles objective (the
     *  fidelity axis). */
    std::int64_t costKey = -1;
    ir::MappedCircuit mapped;
};

/** Result of a portfolio race. */
struct PortfolioResult
{
    bool success = false;
    /** Index into `outcomes` of the entry whose circuit was taken
     *  (-1 when no entry produced one). */
    int winner = -1;
    search::SearchStatus status = search::SearchStatus::Infeasible;
    bool provenOptimal = false;
    bool fromIncumbent = false;
    int cycles = -1;
    /** Winner's encoded cost under the RACE's objective (== cycles
     *  for a plain-cycles race; -1 when no winner). */
    std::int64_t costKey = -1;
    ir::MappedCircuit mapped;
    std::vector<EntryOutcome> outcomes;
    /**
     * Mixed-objective races only (empty otherwise): the returned
     * circuits not dominated on (cycles, fidelity cost), sorted
     * ascending by cycles then entry index — deterministic for a
     * fixed set of outcomes.  Exact duplicates keep the lowest entry
     * index.
     */
    std::vector<ParetoPoint> pareto;
    /** Folded per-entry reports (seconds = CPU-seconds, peaks = max
     *  across entries; see SearchStats::merge). */
    search::SearchStats stats;

    /**
     * The `"portfolio"` object of the stats line: entries raced,
     * winner name/index, and each entry's status and cycles.
     */
    std::string portfolioJson() const;
};

/**
 * The racing driver.  Synchronous: map() owns its pool for the call.
 * Re-entrant — concurrent map() calls on one PortfolioMapper share
 * nothing but the immutable graph and config.
 */
class PortfolioMapper
{
  public:
    PortfolioMapper(const arch::CouplingGraph &graph,
                    PortfolioConfig config);

    PortfolioResult map(const ir::Circuit &logical,
                        std::optional<std::vector<int>> initial_layout =
                            std::nullopt) const;

  private:
    arch::CouplingGraph _graph;
    PortfolioConfig _config;
};

/**
 * The standard race: exact A* as configured, exact A* with the
 * dominance filter off, IDA*, and the heuristic mapper as the bound
 * supplier / fallback — capped at @p max_entries (>= 1; the order
 * above is the priority order when capping).
 *
 * @param base applied to every exact entry (latency, search modes);
 *        pass `{}` for defaults.
 */
PortfolioConfig defaultPortfolio(const core::MapperConfig &base = {},
                                 int max_entries = 4);

} // namespace toqm::parallel

#endif // TOQM_PARALLEL_PORTFOLIO_HPP
