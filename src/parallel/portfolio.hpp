/**
 * @file
 * `PortfolioMapper` — race K differently-configured searches on one
 * mapping instance and return the best answer found by any of them.
 *
 * Exact mapping runtimes are wildly configuration-sensitive (filter
 * on/off, initial-layout seed, A* vs iterative deepening), and no
 * single configuration dominates.  A portfolio turns that variance
 * into speed: every entry runs on its own pool worker with its OWN
 * NodePool, Filter and ResourceGuard (nothing search-local is
 * shared), while two facts flow between them through one
 * `search::IncumbentChannel`:
 *
 *  - achieved makespans, which every exact entry prunes against (the
 *    atomic watermark read on its expansion hot path), and
 *  - a stop request, raised the moment one entry PROVES optimality —
 *    the losers' guards observe it at their next probe and unwind as
 *    `Cancelled` (promptly, without leaking: their pools die with
 *    their stack frames).
 *
 * Bounds are only sound across entries that search the SAME layout
 * space (free vs fixed-to-one-seed): a free-layout schedule can
 * undercut every fixed-layout one, so its makespan would prune a
 * fixed search's true optimum and turn its exhaustion into a bogus
 * "Infeasible".  The driver therefore resolves each entry's space up
 * front against the race's space (entry 0's): in a fixed-layout race
 * a seedless heuristic entry is pinned to the race's seed, and any
 * entry whose space still differs (e.g. IDA*'s fixed identity inside
 * a --search-initial race) runs WITHOUT the channel — no foreign
 * bounds in either direction — and can neither claim provenOptimal
 * for the race nor stop it.  Incoherent entries still honor the stop
 * token, so a settled race stands every worker down.
 *
 * Winner selection is deterministic given the per-entry outcomes:
 * lower cycle count beats higher, then proven-optimal beats unproven,
 * then lower entry index.  (In a coherent race the proven optimum
 * also has the fewest cycles, so this equals the proven-first rule;
 * it additionally guarantees the portfolio never returns a worse
 * circuit than any single entry.)
 * Same winner configuration => byte-identical circuit,
 * because each entry's search is internally deterministic; only WHO
 * wins can vary with thread timing, and only among entries whose
 * results tie on (proven, cycles) up to the selection rule.
 */

#ifndef TOQM_PARALLEL_PORTFOLIO_HPP
#define TOQM_PARALLEL_PORTFOLIO_HPP

#include <optional>
#include <string>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/circuit.hpp"
#include "ir/mapped_circuit.hpp"
#include "search/search_stats.hpp"
#include "toqm/mapper.hpp"

namespace toqm::parallel {

/** One raced configuration. */
struct PortfolioEntry
{
    /** How this entry searches. */
    enum class Kind {
        /** Exact A* (core::OptimalMapper) with `exact` below. */
        Exact,
        /** Iterative deepening (core::idaStarMap); `exact.latency`,
         *  `exact.allowConcurrentSwapAndGate` and
         *  `exact.maxExpandedNodes` apply. */
        Ida,
        /** The scalable non-optimal mapper with `heuristic` below —
         *  the portfolio's fast fallback and first bound supplier. */
        Heuristic,
    };

    /** Reported in outcomes and the stats-line portfolio JSON. */
    std::string name;
    Kind kind = Kind::Exact;
    core::MapperConfig exact;
    heuristic::HeuristicConfig heuristic;
    /** Entry-specific seed layout (empty = the map() call's). */
    std::optional<std::vector<int>> initialLayout;
};

/** Configuration of a portfolio race. */
struct PortfolioConfig
{
    std::vector<PortfolioEntry> entries;
    /** Pool workers (0 = one per entry). */
    unsigned workers = 0;
    /** Base resource limits applied to every entry (an entry's own
     *  guard fields, where set, take precedence). */
    search::GuardConfig guard;
};

/** What one entry returned (order matches config.entries). */
struct EntryOutcome
{
    std::string name;
    search::SearchStatus status = search::SearchStatus::Cancelled;
    /** A complete circuit was produced. */
    bool success = false;
    /** The result is a proven optimum (exact entries only). */
    bool provenOptimal = false;
    /** Complete but unproven (anytime) delivery. */
    bool fromIncumbent = false;
    int cycles = -1;
    search::SearchStats stats;
};

/** Result of a portfolio race. */
struct PortfolioResult
{
    bool success = false;
    /** Index into `outcomes` of the entry whose circuit was taken
     *  (-1 when no entry produced one). */
    int winner = -1;
    search::SearchStatus status = search::SearchStatus::Infeasible;
    bool provenOptimal = false;
    bool fromIncumbent = false;
    int cycles = -1;
    ir::MappedCircuit mapped;
    std::vector<EntryOutcome> outcomes;
    /** Folded per-entry reports (seconds = CPU-seconds, peaks = max
     *  across entries; see SearchStats::merge). */
    search::SearchStats stats;

    /**
     * The `"portfolio"` object of the stats line: entries raced,
     * winner name/index, and each entry's status and cycles.
     */
    std::string portfolioJson() const;
};

/**
 * The racing driver.  Synchronous: map() owns its pool for the call.
 * Re-entrant — concurrent map() calls on one PortfolioMapper share
 * nothing but the immutable graph and config.
 */
class PortfolioMapper
{
  public:
    PortfolioMapper(const arch::CouplingGraph &graph,
                    PortfolioConfig config);

    PortfolioResult map(const ir::Circuit &logical,
                        std::optional<std::vector<int>> initial_layout =
                            std::nullopt) const;

  private:
    arch::CouplingGraph _graph;
    PortfolioConfig _config;
};

/**
 * The standard race: exact A* as configured, exact A* with the
 * dominance filter off, IDA*, and the heuristic mapper as the bound
 * supplier / fallback — capped at @p max_entries (>= 1; the order
 * above is the priority order when capping).
 *
 * @param base applied to every exact entry (latency, search modes);
 *        pass `{}` for defaults.
 */
PortfolioConfig defaultPortfolio(const core::MapperConfig &base = {},
                                 int max_entries = 4);

} // namespace toqm::parallel

#endif // TOQM_PARALLEL_PORTFOLIO_HPP
