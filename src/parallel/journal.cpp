#include "journal.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "obs/json.hpp"

namespace toqm::parallel {

namespace {

void
appendJsonEscaped(std::string &out, const std::string &s)
{
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
}

std::string
hexHash(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

/** Parse one journal line; returns false when it is not a valid
 *  record (the torn-tail case the caller may tolerate). */
bool
parseRecord(const std::string &line, JournalRecord &rec)
{
    try {
        const obs::json::ValuePtr root = obs::json::parse(line);
        if (!root || !root->isObject())
            return false;
        const obs::json::ValuePtr version = root->get("journal");
        if (!version || !version->isNumber() ||
            version->asNumber() != 1.0)
            return false;
        const obs::json::ValuePtr input = root->get("input");
        const obs::json::ValuePtr dest = root->get("dest");
        const obs::json::ValuePtr code = root->get("code");
        const obs::json::ValuePtr bytes = root->get("bytes");
        const obs::json::ValuePtr hash = root->get("hash");
        if (!input || !input->isString() || !dest ||
            !dest->isString() || !code || !code->isNumber() ||
            !bytes || !bytes->isNumber() || !hash ||
            !hash->isString())
            return false;
        rec.input = input->asString();
        rec.dest = dest->asString();
        rec.code = static_cast<int>(code->asNumber());
        rec.bytes =
            static_cast<std::uint64_t>(bytes->asNumber());
        errno = 0;
        char *end = nullptr;
        rec.hash = std::strtoull(hash->asString().c_str(), &end, 16);
        if (end == hash->asString().c_str() || *end != '\0')
            return false;
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace

std::uint64_t
fnv1aHash(const char *data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
journalLine(const JournalRecord &rec)
{
    std::string line = "{\"journal\":1,\"input\":\"";
    appendJsonEscaped(line, rec.input);
    line += "\",\"dest\":\"";
    appendJsonEscaped(line, rec.dest);
    line += "\",\"code\":";
    line += std::to_string(rec.code);
    line += ",\"bytes\":";
    line += std::to_string(rec.bytes);
    line += ",\"hash\":\"";
    line += hexHash(rec.hash);
    line += "\"}\n";
    return line;
}

Journal::~Journal()
{
    if (_file != nullptr)
        std::fclose(_file);
}

bool
Journal::open(const std::string &path, std::string &error)
{
    // Load the completed prefix first, tracking the byte offset past
    // the last VALID record so a torn tail can be truncated away.
    std::string content;
    {
        std::ifstream in(path, std::ios::binary);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            content = buf.str();
        }
    }
    std::size_t pos = 0;
    std::size_t lineno = 0;
    std::size_t valid_end = 0;
    bool torn_tail = false;
    while (pos < content.size()) {
        ++lineno;
        const std::size_t nl = content.find('\n', pos);
        const std::size_t line_end =
            nl == std::string::npos ? content.size() : nl;
        const std::size_t next =
            nl == std::string::npos ? content.size() : nl + 1;
        const std::string line =
            content.substr(pos, line_end - pos);
        if (!line.empty()) {
            JournalRecord rec;
            if (!parseRecord(line, rec)) {
                // Only the FINAL line may be torn (crash
                // mid-append); garbage earlier means this is not our
                // journal — refuse rather than resume wrong.
                if (next != content.size()) {
                    error = path + ":" + std::to_string(lineno) +
                            ": malformed journal record";
                    return false;
                }
                torn_tail = true;
                break;
            }
            _byDest[rec.dest] = _records.size();
            _records.push_back(std::move(rec));
        }
        valid_end = next;
        pos = next;
    }
    if (torn_tail) {
        // Drop the torn bytes BEFORE appending: appended records
        // must start on a fresh line, or they would concatenate into
        // the torn tail and poison the next open.
        std::error_code ec;
        std::filesystem::resize_file(path, valid_end, ec);
        if (ec) {
            error = "could not truncate torn journal tail of " +
                    path + ": " + ec.message();
            return false;
        }
    }
    // A valid final record missing its newline can only come from
    // outside editing; keep it, but start the next append on a fresh
    // line.
    _prependNewline = !torn_tail && valid_end > 0 &&
                      content[valid_end - 1] != '\n';
    _file = std::fopen(path.c_str(), "ab");
    if (_file == nullptr) {
        error = "could not open journal " + path + ": " +
                std::strerror(errno);
        return false;
    }
    return true;
}

const JournalRecord *
Journal::find(const std::string &dest) const
{
    const auto it = _byDest.find(dest);
    if (it == _byDest.end())
        return nullptr;
    return &_records[it->second];
}

void
Journal::append(const JournalRecord &rec)
{
    std::string line = journalLine(rec);
    const std::lock_guard<std::mutex> lock(_mutex);
    if (_file == nullptr)
        return;
    if (_prependNewline) {
        line.insert(line.begin(), '\n');
        _prependNewline = false;
    }
    // One contiguous write + flush + fsync: the record is durable
    // before the caller treats the job as done.  A crash inside this
    // window at worst tears THIS line, which open() tolerates.
    std::fwrite(line.data(), 1, line.size(), _file);
    std::fflush(_file);
    ::fsync(fileno(_file));
}

} // namespace toqm::parallel
