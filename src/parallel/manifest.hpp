/**
 * @file
 * Hardened `--manifest` parser for the batch driver.
 *
 * A manifest is a line-oriented list of input paths: one path per
 * line, blank lines and `#` comments skipped, surrounding whitespace
 * trimmed.  Unlike the original best-effort loop, malformed content
 * is REJECTED with a positioned error instead of silently skipped —
 * a manifest is operator input driving a batch of real work, and a
 * typo that silently drops half the batch is worse than a refusal:
 *
 *  - control characters (anything below 0x20 except tab) and NUL
 *    bytes are errors, positioned by line and column;
 *  - lines longer than `ManifestLimits::maxLineLength` are errors
 *    (no real path is 4 KiB; an unbounded line is a truncated or
 *    binary file fed by mistake);
 *  - more than `ManifestLimits::maxEntries` entries is an error (the
 *    cap bounds the batch driver's memory against a runaway
 *    generated manifest).
 *
 * `ManifestError::what()` is preformatted as
 * `path:line:col: message`, the compiler-style shape editors jump on.
 */

#ifndef TOQM_PARALLEL_MANIFEST_HPP
#define TOQM_PARALLEL_MANIFEST_HPP

#include <cstddef>
#include <istream>
#include <stdexcept>
#include <string>
#include <vector>

namespace toqm::parallel {

/** Caps applied while parsing a manifest. */
struct ManifestLimits
{
    /** Maximum entries (paths) per manifest. */
    std::size_t maxEntries = 4096;
    /** Maximum characters per line (excluding the newline). */
    std::size_t maxLineLength = 4096;
};

/** Positioned manifest rejection (1-based line and column). */
class ManifestError : public std::runtime_error
{
  public:
    ManifestError(const std::string &path, std::size_t line,
                  std::size_t column, const std::string &message)
        : std::runtime_error(path + ":" + std::to_string(line) + ":" +
                             std::to_string(column) + ": " + message),
          _line(line), _column(column)
    {}

    std::size_t line() const { return _line; }

    std::size_t column() const { return _column; }

  private:
    std::size_t _line;
    std::size_t _column;
};

/**
 * Parse manifest content from @p in.  @p displayPath labels error
 * positions (the file name, or "<manifest>" for in-memory input).
 * Returns the entries in file order; throws ManifestError on the
 * first malformed line.
 */
std::vector<std::string>
parseManifest(std::istream &in, const std::string &displayPath,
              const ManifestLimits &limits = {});

/** Open and parse @p path; throws std::runtime_error when the file
 *  cannot be opened and ManifestError on malformed content. */
std::vector<std::string>
parseManifestFile(const std::string &path,
                  const ManifestLimits &limits = {});

} // namespace toqm::parallel

#endif // TOQM_PARALLEL_MANIFEST_HPP
