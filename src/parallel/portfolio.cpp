#include "portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "fault/fault.hpp"
#include "ir/mapped_circuit.hpp"
#include "obs/observer.hpp"
#include "search/incumbent_channel.hpp"
#include "thread_pool.hpp"
#include "toqm/ida_star.hpp"

namespace toqm::parallel {

namespace {

using search::SearchStatus;

/**
 * The layout space one entry searches: FREE (the initial layout is
 * part of the search) or FIXED to a concrete seed.  A makespan is
 * only an achievable bound for another search when both search the
 * same space — a free-layout schedule can undercut every fixed-layout
 * one, so letting it flow through the channel would prune the fixed
 * searches' true optimum and turn their exhaustion into a bogus
 * "Infeasible".  Coherence with the race's space therefore decides
 * who shares the incumbent channel and whose "Solved" counts as a
 * proof that settles the whole race.
 */
struct LayoutSpace
{
    bool free = false;
    /** The seed layout; meaningful only when !free. */
    std::vector<int> seed;

    bool
    operator==(const LayoutSpace &o) const
    {
        return free == o.free && (free || seed == o.seed);
    }
};

/** The space @p entry searches given its RESOLVED seed layout. */
LayoutSpace
entrySpace(const PortfolioEntry &entry,
           const std::optional<std::vector<int>> &layout,
           int num_logical)
{
    switch (entry.kind) {
      case PortfolioEntry::Kind::Exact:
        if (entry.exact.searchInitialMapping)
            return {true, {}};
        return {false,
                layout ? *layout : ir::identityLayout(num_logical)};
      case PortfolioEntry::Kind::Ida:
        // idaStarMap pins the identity layout regardless of seeds.
        return {false, ir::identityLayout(num_logical)};
      case PortfolioEntry::Kind::Heuristic:
        if (layout)
            return {false, *layout};
        return {true, {}}; // on-the-fly placement
    }
    return {true, {}};
}

/** Per-entry limits: entry fields where set win, base fills gaps. */
search::GuardConfig
mergeGuard(const search::GuardConfig &base,
           const search::GuardConfig &entry)
{
    search::GuardConfig g = entry;
    if (g.deadlineMs == 0)
        g.deadlineMs = base.deadlineMs;
    if (g.maxPoolBytes == 0)
        g.maxPoolBytes = base.maxPoolBytes;
    if (!g.honorCancellation)
        g.honorCancellation = base.honorCancellation;
    if (g.cancelToken == nullptr)
        g.cancelToken = base.cancelToken;
    return g;
}

/** An entry's full return: outcome summary plus its circuit. */
struct EntryRun
{
    EntryOutcome outcome;
    ir::MappedCircuit mapped;
};

/**
 * Run one entry.  @p channel is the shared incumbent exchange when
 * the entry's layout space matches the race's (see LayoutSpace) and
 * nullptr otherwise — an incoherent entry must neither prune against
 * foreign bounds nor publish bounds the others cannot achieve.  Every
 * entry, coherent or not, honors @p stop_token so a settled race
 * still stands all workers down.  @p coherent additionally gates the
 * provenOptimal claim: a proof only settles the race when it is about
 * the race's own layout space.
 */
EntryRun
runEntry(const arch::CouplingGraph &graph, const ir::Circuit &logical,
         const PortfolioEntry &entry,
         const search::GuardConfig &base_guard,
         const std::optional<std::vector<int>> &layout,
         search::IncumbentChannel *channel,
         const std::atomic<bool> *stop_token, bool coherent)
{
    EntryRun run;
    run.outcome.name = entry.name;

    switch (entry.kind) {
      case PortfolioEntry::Kind::Exact: {
        core::MapperConfig cfg = entry.exact;
        cfg.guard = mergeGuard(base_guard, cfg.guard);
        cfg.channel = channel;
        cfg.costTable = entry.costTable;
        if (cfg.guard.cancelToken == nullptr)
            cfg.guard.cancelToken = stop_token;
        core::MapperResult r =
            core::OptimalMapper(graph, cfg).map(logical, layout);
        run.outcome.status = r.status;
        run.outcome.success = r.success;
        run.outcome.fromIncumbent = r.fromIncumbent;
        run.outcome.provenOptimal = coherent &&
            r.status == SearchStatus::Solved && !r.fromIncumbent;
        run.outcome.cycles = r.cycles;
        run.outcome.costKey = r.costKey;
        run.outcome.stats = r.stats;
        run.mapped = std::move(r.mapped);
        break;
      }
      case PortfolioEntry::Kind::Ida: {
        search::GuardConfig guard =
            mergeGuard(base_guard, entry.exact.guard);
        if (guard.cancelToken == nullptr)
            guard.cancelToken = stop_token;
        core::IdaResult r = core::idaStarMap(
            graph, logical, entry.exact.latency,
            entry.exact.allowConcurrentSwapAndGate,
            entry.exact.maxExpandedNodes, guard, channel,
            entry.costTable);
        run.outcome.status = r.status;
        run.outcome.success = r.success;
        run.outcome.fromIncumbent = r.fromIncumbent;
        // IDA* proves optimality over the FIXED identity layout; in
        // a race over any other space its optimum is a different
        // claim (coherent=false), so don't let it stop the race.
        run.outcome.provenOptimal = coherent &&
            r.status == SearchStatus::Solved && !r.fromIncumbent;
        run.outcome.cycles = r.cycles;
        run.outcome.costKey = r.costKey;
        run.outcome.stats = r.stats;
        run.mapped = std::move(r.mapped);
        break;
      }
      case PortfolioEntry::Kind::Heuristic: {
        heuristic::HeuristicConfig cfg = entry.heuristic;
        cfg.guard = mergeGuard(base_guard, cfg.guard);
        cfg.channel = channel;
        cfg.costTable = entry.costTable;
        if (cfg.guard.cancelToken == nullptr)
            cfg.guard.cancelToken = stop_token;
        heuristic::HeuristicResult r =
            heuristic::HeuristicMapper(graph, cfg).map(logical,
                                                       layout);
        run.outcome.status = r.status;
        run.outcome.success = r.success;
        // Complete but never proven: the heuristic search is
        // inadmissible by construction.
        run.outcome.provenOptimal = false;
        run.outcome.cycles = r.cycles;
        run.outcome.costKey = r.costKey;
        run.outcome.stats = r.stats;
        run.mapped = std::move(r.mapped);
        break;
      }
    }
    run.outcome.objective = entry.objectiveName;
    return run;
}

/** The latency model an entry schedules under. */
const ir::LatencyModel &
entryLatency(const PortfolioEntry &entry)
{
    return entry.kind == PortfolioEntry::Kind::Heuristic
               ? entry.heuristic.latency
               : entry.exact.latency;
}

void
appendJsonEscaped(std::string &out, const std::string &s)
{
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
}

} // namespace

std::string
PortfolioResult::portfolioJson() const
{
    std::string out = "{\"entries\":";
    out += std::to_string(outcomes.size());
    out += ",\"winner\":";
    if (winner >= 0 &&
        winner < static_cast<int>(outcomes.size())) {
        out += '"';
        appendJsonEscaped(
            out, outcomes[static_cast<std::size_t>(winner)].name);
        out += '"';
    } else {
        out += "null";
    }
    out += ",\"winner_index\":";
    out += std::to_string(winner);
    out += ",\"results\":[";
    // Per-entry objective annotations appear only when some entry
    // raced a non-cycles objective, keeping the all-cycles JSON (and
    // the tests pinning it) byte-identical to the legacy shape.
    bool annotated = false;
    for (const EntryOutcome &o : outcomes)
        if (!o.objective.empty())
            annotated = true;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (i > 0)
            out += ',';
        const EntryOutcome &o = outcomes[i];
        out += "{\"name\":\"";
        appendJsonEscaped(out, o.name);
        out += "\",\"status\":\"";
        out += search::toString(o.status);
        out += "\",\"cycles\":";
        out += std::to_string(o.cycles);
        out += ",\"proven_optimal\":";
        out += o.provenOptimal ? "true" : "false";
        if (!o.error.empty()) {
            // Additive: present only for entries lost to a contained
            // fault, so fault-free race JSON stays byte-identical.
            out += ",\"error\":\"";
            appendJsonEscaped(out, o.error);
            out += '"';
        }
        if (annotated) {
            out += ",\"objective\":\"";
            appendJsonEscaped(
                out, o.objective.empty() ? "cycles" : o.objective);
            out += "\",\"cost\":";
            out += std::to_string(o.costKey);
        }
        out += '}';
    }
    out += ']';
    if (!pareto.empty()) {
        out += ",\"pareto\":[";
        for (std::size_t i = 0; i < pareto.size(); ++i) {
            if (i > 0)
                out += ',';
            const ParetoPoint &p = pareto[i];
            out += "{\"name\":\"";
            appendJsonEscaped(out, p.name);
            out += "\",\"entry\":";
            out += std::to_string(p.entry);
            out += ",\"cycles\":";
            out += std::to_string(p.cycles);
            out += ",\"cost\":";
            out += std::to_string(p.costKey);
            out += '}';
        }
        out += ']';
    }
    out += '}';
    return out;
}

PortfolioMapper::PortfolioMapper(const arch::CouplingGraph &graph,
                                 PortfolioConfig config)
    : _graph(graph), _config(std::move(config))
{}

PortfolioResult
PortfolioMapper::map(
    const ir::Circuit &logical,
    std::optional<std::vector<int>> initial_layout) const
{
    const obs::PhaseScope obs_phase("portfolio");
    PortfolioResult result;
    const std::size_t k = _config.entries.size();
    if (k == 0)
        return result;

    // Resolve every entry's seed layout and its layout space BEFORE
    // racing.  The race's space is entry 0's (the configured
    // primary); when that space is FIXED, a seedless heuristic entry
    // is pinned to the same seed so every bound it publishes is
    // achievable by the exact entries — a free-layout bound below
    // the fixed-layout optimum would otherwise prune them into a
    // bogus "Infeasible" while their "proven optimal" label hid a
    // better free-layout circuit.
    const int num_logical = logical.numQubits();
    std::vector<std::optional<std::vector<int>>> layouts(k);
    std::vector<char> coherent(k, 0);
    for (std::size_t i = 0; i < k; ++i) {
        layouts[i] = _config.entries[i].initialLayout
                         ? _config.entries[i].initialLayout
                         : initial_layout;
    }
    const LayoutSpace race =
        entrySpace(_config.entries[0], layouts[0], num_logical);
    for (std::size_t i = 0; i < k; ++i) {
        if (!race.free && !layouts[i] &&
            _config.entries[i].kind == PortfolioEntry::Kind::Heuristic)
            layouts[i] = race.seed;
        // Channel coherence needs BOTH the race's layout space and
        // the race's objective: keys under a foreign objective are
        // not sound bounds (see the header comment).
        coherent[i] =
            entrySpace(_config.entries[i], layouts[i], num_logical) ==
                race &&
            _config.entries[i].objectiveId ==
                _config.entries[0].objectiveId;
    }

    search::IncumbentChannel channel;
    std::vector<EntryRun> runs(k);
    ThreadPool pool(_config.workers != 0
                        ? _config.workers
                        : static_cast<unsigned>(k));
    for (std::size_t i = 0; i < k; ++i) {
        pool.submit([&, i] {
            // Per-entry fault containment: an entry that throws (an
            // injected launch fault, allocation failure inside its
            // search, anything) loses the race as success=false /
            // Cancelled and the other entries run to completion.
            // Every search-local structure (NodePool, filter, guard)
            // lives in runEntry's frame, so the unwind leaks nothing
            // and poisons no worker state.
            try {
                TOQM_FAULT_POINT(PortfolioLaunch);
                runs[i] = runEntry(_graph, logical,
                                   _config.entries[i],
                                   _config.guard, layouts[i],
                                   coherent[i] ? &channel : nullptr,
                                   channel.stopToken(),
                                   coherent[i] != 0);
            } catch (const std::exception &e) {
                runs[i] = EntryRun{};
                runs[i].outcome.name = _config.entries[i].name;
                runs[i].outcome.error = e.what();
            }
            // A proven optimum settles the instance: tell the other
            // entries' guards to stand down.
            if (runs[i].outcome.provenOptimal)
                channel.requestStop();
        });
    }
    pool.wait();

    // The race's objective is entry 0's; a mixed race also has a
    // second axis — the first objective in entry order that differs
    // from the race's.
    const PortfolioEntry &primary = _config.entries[0];
    const ir::LatencyModel &race_latency = entryLatency(primary);
    bool mixed = false;
    for (std::size_t i = 1; i < k; ++i)
        if (_config.entries[i].objectiveId != primary.objectiveId)
            mixed = true;

    // Re-score every successful circuit under the RACE's objective so
    // heterogeneous entries compare on one axis.  An entry already
    // minimising the race's objective reports its own costKey; a
    // foreign entry's circuit is evaluated from scratch — its own key
    // encodes a different objective and is meaningless here.
    std::vector<std::int64_t> race_key(k, -1);
    for (std::size_t i = 0; i < k; ++i) {
        if (!runs[i].outcome.success)
            continue;
        if (_config.entries[i].objectiveId == primary.objectiveId &&
            runs[i].outcome.costKey >= 0)
            race_key[i] = runs[i].outcome.costKey;
        else if (primary.costTable != nullptr)
            race_key[i] = primary.costTable->evaluateCircuit(
                runs[i].mapped.physical, race_latency);
        else
            race_key[i] = runs[i].outcome.cycles;
    }

    // The secondary axis of a mixed race, for the dominance-breaking
    // tie rule and the Pareto front: the first non-cycles objective
    // among the entries supplies the fidelity axis (the cycles axis
    // is always the ASAP makespan, which every outcome reports).
    const search::CostTable *fid_table = nullptr;
    const ir::LatencyModel *fid_latency = nullptr;
    for (std::size_t i = 0; i < k; ++i) {
        if (_config.entries[i].objectiveId != 0 &&
            _config.entries[i].costTable != nullptr) {
            fid_table = _config.entries[i].costTable;
            fid_latency = &entryLatency(_config.entries[i]);
            break;
        }
    }
    std::vector<std::int64_t> alt_key(k, -1);
    if (mixed) {
        for (std::size_t i = 0; i < k; ++i) {
            if (!runs[i].outcome.success)
                continue;
            if (primary.objectiveId != 0)
                alt_key[i] = runs[i].outcome.cycles;
            else if (fid_table != nullptr)
                alt_key[i] = fid_table->evaluateCircuit(
                    runs[i].mapped.physical, *fid_latency);
            else
                alt_key[i] = runs[i].outcome.cycles;
        }
    }

    // Deterministic winner: lowest key under the race's objective
    // first (fewest cycles in a plain race); key ties break on the
    // secondary axis in a mixed race (so the winner is never strictly
    // dominated by a loser's circuit), then proven beats unproven,
    // then the lower entry index.  In a homogeneous coherent race the
    // proven optimum also has the lowest key, so this is the old
    // proven-first rule; with an incoherent entry in the mix it
    // additionally guarantees the portfolio never delivers a worse
    // circuit than any entry found.  Timing can only reorder
    // COMPLETION, which this rule ignores.
    int winner = -1;
    for (std::size_t i = 0; i < k; ++i) {
        const EntryOutcome &o = runs[i].outcome;
        if (!o.success)
            continue;
        if (winner < 0) {
            winner = static_cast<int>(i);
            continue;
        }
        const std::size_t w = static_cast<std::size_t>(winner);
        const EntryOutcome &best = runs[w].outcome;
        if (race_key[i] != race_key[w]) {
            if (race_key[i] < race_key[w])
                winner = static_cast<int>(i);
            continue;
        }
        if (mixed && alt_key[i] != alt_key[w]) {
            if (alt_key[i] < alt_key[w])
                winner = static_cast<int>(i);
            continue;
        }
        if (o.provenOptimal && !best.provenOptimal)
            winner = static_cast<int>(i);
    }

    // A mixed race explored two axes; report the non-dominated
    // circuits on (cycles, fidelity cost) alongside the single
    // winner.  Exact duplicates keep the lowest entry index; order is
    // ascending cycles then entry index — deterministic for a fixed
    // set of outcomes.
    if (mixed) {
        for (std::size_t i = 0; i < k; ++i) {
            if (!runs[i].outcome.success)
                continue;
            const std::int64_t fid =
                fid_table != nullptr
                    ? fid_table->evaluateCircuit(
                          runs[i].mapped.physical,
                          fid_latency != nullptr ? *fid_latency
                                                 : race_latency)
                    : race_key[i];
            bool dominated = false;
            for (std::size_t j = 0; j < k && !dominated; ++j) {
                if (j == i || !runs[j].outcome.success)
                    continue;
                const std::int64_t fid_j =
                    fid_table != nullptr
                        ? fid_table->evaluateCircuit(
                              runs[j].mapped.physical,
                              fid_latency != nullptr ? *fid_latency
                                                     : race_latency)
                        : race_key[j];
                const int cyc_i = runs[i].outcome.cycles;
                const int cyc_j = runs[j].outcome.cycles;
                if (cyc_j <= cyc_i && fid_j <= fid) {
                    if (cyc_j < cyc_i || fid_j < fid)
                        dominated = true;
                    else if (j < i)
                        dominated = true; // exact duplicate: keep j
                }
            }
            if (dominated)
                continue;
            ParetoPoint p;
            p.entry = static_cast<int>(i);
            p.name = runs[i].outcome.name;
            p.cycles = runs[i].outcome.cycles;
            p.costKey = fid;
            p.mapped = runs[i].mapped; // copy: winner's moves below
            result.pareto.push_back(std::move(p));
        }
        std::sort(result.pareto.begin(), result.pareto.end(),
                  [](const ParetoPoint &a, const ParetoPoint &b) {
                      if (a.cycles != b.cycles)
                          return a.cycles < b.cycles;
                      return a.entry < b.entry;
                  });
    }

    result.outcomes.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
        result.stats.merge(runs[i].outcome.stats);
        result.outcomes.push_back(std::move(runs[i].outcome));
    }
    result.winner = winner;
    if (winner >= 0) {
        const EntryOutcome &w =
            result.outcomes[static_cast<std::size_t>(winner)];
        result.success = true;
        result.status = w.status;
        result.provenOptimal = w.provenOptimal;
        result.fromIncumbent = w.fromIncumbent;
        result.cycles = w.cycles;
        result.costKey = race_key[static_cast<std::size_t>(winner)];
        result.mapped =
            std::move(runs[static_cast<std::size_t>(winner)].mapped);
    } else {
        // Nobody finished: report the first entry's stop reason (the
        // configured "primary" configuration).
        result.status = result.outcomes.front().status;
    }
    return result;
}

PortfolioConfig
defaultPortfolio(const core::MapperConfig &base, int max_entries)
{
    PortfolioConfig config;
    if (max_entries < 1)
        max_entries = 1;

    PortfolioEntry exact;
    exact.name = "astar";
    exact.kind = PortfolioEntry::Kind::Exact;
    exact.exact = base;
    config.entries.push_back(exact);

    if (static_cast<int>(config.entries.size()) < max_entries) {
        PortfolioEntry nofilter = exact;
        nofilter.name = "astar-nofilter";
        nofilter.exact.useFilter = false;
        config.entries.push_back(nofilter);
    }
    if (static_cast<int>(config.entries.size()) < max_entries) {
        PortfolioEntry ida;
        ida.name = "ida";
        ida.kind = PortfolioEntry::Kind::Ida;
        ida.exact = base;
        config.entries.push_back(ida);
    }
    if (static_cast<int>(config.entries.size()) < max_entries) {
        PortfolioEntry fallback;
        fallback.name = "heuristic";
        fallback.kind = PortfolioEntry::Kind::Heuristic;
        fallback.heuristic.latency = base.latency;
        config.entries.push_back(fallback);
    }
    return config;
}

} // namespace toqm::parallel
