#include "manifest.hpp"

#include <fstream>

#include "fault/fault.hpp"

namespace toqm::parallel {

std::vector<std::string>
parseManifest(std::istream &in, const std::string &displayPath,
              const ManifestLimits &limits)
{
    TOQM_FAULT_POINT(ManifestIo);
    std::vector<std::string> entries;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.size() > limits.maxLineLength) {
            throw ManifestError(
                displayPath, lineno, limits.maxLineLength + 1,
                "line exceeds " +
                    std::to_string(limits.maxLineLength) +
                    " characters");
        }
        for (std::size_t col = 0; col < line.size(); ++col) {
            const unsigned char c =
                static_cast<unsigned char>(line[col]);
            if (c < 0x20 && c != '\t') {
                throw ManifestError(
                    displayPath, lineno, col + 1,
                    c == '\0' ? "NUL byte in manifest"
                              : "control character in manifest");
            }
        }
        const std::size_t begin = line.find_first_not_of(" \t");
        if (begin == std::string::npos || line[begin] == '#')
            continue;
        const std::size_t end = line.find_last_not_of(" \t");
        if (entries.size() == limits.maxEntries) {
            throw ManifestError(
                displayPath, lineno, begin + 1,
                "manifest exceeds the " +
                    std::to_string(limits.maxEntries) +
                    "-entry cap");
        }
        entries.push_back(line.substr(begin, end - begin + 1));
    }
    if (in.bad()) {
        throw ManifestError(displayPath, lineno + 1, 1,
                            "read error");
    }
    return entries;
}

std::vector<std::string>
parseManifestFile(const std::string &path,
                  const ManifestLimits &limits)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("could not open manifest " + path);
    return parseManifest(in, path, limits);
}

} // namespace toqm::parallel
