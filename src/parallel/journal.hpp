/**
 * @file
 * Crash-safe append-only batch journal (`toqm_map --journal FILE`).
 *
 * A batch run over a manifest can die mid-flight — OOM-killed,
 * SIGKILLed by an operator, node failure.  The journal makes the
 * batch RESUMABLE: every completed job appends one line-oriented
 * JSON record (input path, destination file, exit code, output size
 * and FNV-1a content hash), flushed and fsynced before the job is
 * considered durable.  Re-running the same command with the same
 * journal skips every job whose record matches its on-disk output
 * (size + hash), so the resumed batch converges to output
 * byte-identical to an uninterrupted run while redoing only the work
 * actually lost.
 *
 * Crash model: a kill can land between the destination-file rename
 * and the journal append (job redone on resume — idempotent, the
 * rewrite produces identical bytes), or mid-append (the torn trailing
 * line fails to parse and is ignored; that job is redone).  Records
 * are never rewritten in place, so a valid prefix stays valid.
 *
 * Record shape (one JSON object per line):
 *   {"journal":1,"input":"...","dest":"...","code":0,
 *    "bytes":1234,"hash":"89abcdef01234567"}
 *
 * The reader is built on the tree's single JSON parser
 * (obs/json.hpp); the writer uses POSIX fd-level fsync.
 */

#ifndef TOQM_PARALLEL_JOURNAL_HPP
#define TOQM_PARALLEL_JOURNAL_HPP

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace toqm::parallel {

/** FNV-1a over @p size bytes — the journal's content fingerprint. */
std::uint64_t fnv1aHash(const char *data, std::size_t size);

/** One durable "job finished" record. */
struct JournalRecord
{
    std::string input; ///< input path as given on the command line
    std::string dest;  ///< out-dir file name the output went to
    int code = 0;      ///< the job's exit code
    std::uint64_t bytes = 0; ///< size of the output body
    std::uint64_t hash = 0;  ///< fnv1aHash of the output body
};

/** Format @p rec as its newline-terminated JSON line. */
std::string journalLine(const JournalRecord &rec);

class Journal
{
  public:
    Journal() = default;
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Open @p path for append, first loading any existing records.
     * A torn trailing line (crash mid-append) is tolerated — and
     * truncated away, so later appends start on a fresh line; any
     * OTHER malformed line is an error — a journal that lies about
     * completed work must not silently drive a resume.  Returns
     * false with @p error set on failure.
     */
    bool open(const std::string &path, std::string &error);

    bool isOpen() const { return _file != nullptr; }

    /** Records loaded at open() (the completed prefix). */
    const std::vector<JournalRecord> &records() const
    {
        return _records;
    }

    /** The record for @p dest, or nullptr.  Latest record wins when
     *  a crash-redone job appended a duplicate. */
    const JournalRecord *find(const std::string &dest) const;

    /**
     * Append @p rec durably: write the line, flush, fsync.  Safe to
     * call from concurrent jobs; each record is written as one
     * contiguous line.
     */
    void append(const JournalRecord &rec);

  private:
    std::mutex _mutex;
    std::FILE *_file = nullptr;
    /** Set when the file ends in a VALID record missing its newline
     *  (outside editing): the next append starts a fresh line. */
    bool _prependNewline = false;
    std::vector<JournalRecord> _records;
    std::map<std::string, std::size_t> _byDest;
};

} // namespace toqm::parallel

#endif // TOQM_PARALLEL_JOURNAL_HPP
