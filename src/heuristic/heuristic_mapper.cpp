#include "heuristic_mapper.hpp"

#include <algorithm>
#include <limits>

#include "ir/schedule.hpp"
#include "obs/observer.hpp"
#include "toqm/cost_estimator.hpp"
#include "toqm/filter.hpp"
#include "toqm/mapper.hpp"
#include "toqm/search_types.hpp"

namespace toqm::heuristic {

using core::Action;
using core::NodePool;
using core::NodeRef;
using core::QIndex;
using core::SearchContext;
using core::SearchNode;
using search::SearchStatus;

namespace {

/** Ranking used both for the queue and for top-k child selection:
 *  smaller weighted f first, more progress breaking ties. */
struct NodeOrder
{
    double weight = 1.0;
    double routeWeight = 1.0;
    /**
     * The active CostTable's cycleWeight (1.0 with no table).  The
     * route score is a cycles-unit gradient; scaling it keeps its
     * relative pull unchanged when objG/objH carry encoded weights.
     */
    double cycleWeight = 1.0;

    double
    weightedF(const NodeRef &n) const
    {
        return static_cast<double>(n->objG) +
               weight * static_cast<double>(n->objH) +
               routeWeight * n->routeScore * cycleWeight;
    }

    bool
    operator()(const NodeRef &a, const NodeRef &b) const
    {
        const double fa = weightedF(a);
        const double fb = weightedF(b);
        if (fa != fb)
            return fa > fb;
        return a->scheduledGates < b->scheduledGates;
    }
};

using QueueEngine = search::SearchEngine<
    search::BestFirstFrontier<NodeRef, NodeOrder>>;
using BeamEngine = search::SearchEngine<search::BeamFrontier>;

/** Workhorse carrying the per-run state. */
class Run
{
  public:
    Run(const SearchContext &ctx, const arch::CouplingGraph &graph,
        const HeuristicConfig &config)
        : _ctx(ctx), _graph(graph), _config(config), _pool(ctx),
          _estimator(ctx, config.horizonGates),
          _filter(config.filterMaxEntries),
          _cw(ctx.costTable() != nullptr
                  ? static_cast<double>(ctx.costTable()->cycleWeight)
                  : 1.0)
    {}

    HeuristicResult
    solve(const std::vector<int> &seed_layout)
    {
        HeuristicResult result;

        NodeRef root = _pool.root(seed_layout, false);
        _estimator.score(*root);

        NodeRef terminal;
        switch (_config.mode) {
          case SearchMode::GlobalQueue:
            terminal = globalSearch(root, result);
            break;
          case SearchMode::RecedingHorizon:
            terminal = recedingHorizonSearch(root, result);
            break;
          case SearchMode::Beam:
            terminal = beamSearch(root, result);
            break;
        }

        if (terminal)
            finishWith(terminal, result);
        return result;
    }

  private:
    /** The paper's global priority-queue scheme (Section 6.2). */
    NodeRef
    globalSearch(const NodeRef &root, HeuristicResult &result)
    {
        QueueEngine engine(
            _pool, search::BestFirstFrontier<NodeRef, NodeOrder>(
                       NodeOrder{_config.hWeight, _config.routeWeight, _cw}));
        engine.bindProbe("heuristic");
        engine.armGuard(_config.guard);
        const NodeOrder order{_config.hWeight, _config.routeWeight, _cw};
        NodeRef terminal;
        engine.push(root);

        while (NodeRef node = engine.popLive()) {
            if (node->allScheduled(_ctx)) {
                terminal = node;
                break;
            }
            engine.noteExpansion(order.weightedF(node));
            if (const auto stop = engine.guardStop();
                stop != search::StopReason::None) {
                result.status = search::statusFor(stop);
                break;
            }
            if (_config.maxExpandedNodes != 0 &&
                engine.stats().expanded > _config.maxExpandedNodes) {
                result.status = SearchStatus::BudgetExhausted;
                break;
            }

            expandInto(node, engine);

            if (engine.frontier().size() > _config.queueCap) {
                trim(engine.frontier());
                ++engine.stats().trims;
            }
        }

        engine.finish();
        result.stats = engine.stats();
        return terminal;
    }

    /**
     * Scalable mode: bounded best-first episodes, each committing to
     * the most-progressed node discovered, so total work is linear in
     * the circuit size.
     */
    NodeRef
    recedingHorizonSearch(const NodeRef &root, HeuristicResult &result)
    {
        QueueEngine engine(
            _pool, search::BestFirstFrontier<NodeRef, NodeOrder>(
                       NodeOrder{_config.hWeight, _config.routeWeight, _cw}));
        engine.bindProbe("heuristic");
        engine.armGuard(_config.guard);
        const NodeOrder order{_config.hWeight, _config.routeWeight, _cw};
        NodeRef committed = root;
        NodeRef terminal;
        int budget = _config.episodeBudget;

        while (!committed->allScheduled(_ctx)) {
            if (const auto stop = engine.guardStop();
                stop != search::StopReason::None) {
                result.status = search::statusFor(stop);
                break;
            }
            if (_config.maxExpandedNodes != 0 &&
                engine.stats().expanded > _config.maxExpandedNodes) {
                result.status = SearchStatus::BudgetExhausted;
                break;
            }

            _filter.clear();
            // The commit point may have been dominance-marked inside
            // the previous episode; it is the live root of this one.
            committed->dead = false;
            engine.frontier().clear();
            engine.push(committed);
            _episodeBest = committed;

            for (int spent = 0; spent < budget; ++spent) {
                NodeRef node = engine.popLive();
                if (!node)
                    break;
                if (node->allScheduled(_ctx)) {
                    terminal = node;
                    break;
                }
                engine.noteExpansion(order.weightedF(node));
                if (engine.guardStop() != search::StopReason::None)
                    break; // outer loop reports the stop reason
                expandInto(node, engine);
            }
            if (terminal)
                break;
            if (_episodeBest->scheduledGates > committed->scheduledGates) {
                committed = _episodeBest;
                budget = _config.episodeBudget;
            } else {
                // The episode was too shallow to reach the next gate
                // (long swap chains); widen and retry.
                budget *= 2;
                if (budget > (1 << 22)) {
                    // Give up: success stays false.
                    result.status = SearchStatus::BudgetExhausted;
                    break;
                }
            }
        }
        if (!terminal && committed->allScheduled(_ctx))
            terminal = committed;

        engine.finish();
        result.stats = engine.stats();
        return terminal;
    }

    void
    finishWith(const NodeRef &terminal, HeuristicResult &result)
    {
        result.success = true;
        // Preserve a budget/guard stop status: the schedule is
        // complete, but the run was cut short getting it.
        if (result.status == SearchStatus::Infeasible)
            result.status = SearchStatus::Solved;
        result.mapped = core::reconstructMapping(_ctx, terminal);
        // The emitted circuit can be faster than the search's own
        // schedule (the beam may have parked swaps behind waits that
        // an ASAP schedule compresses), so report the ASAP makespan
        // of what we actually emit.
        result.cycles =
            ir::scheduleAsap(result.mapped.physical, _ctx.latency())
                .makespan;
        // Report (and later offer) the emitted circuit's exact cost
        // under the active objective, not the search node's: the two
        // can differ for the same reason cycles can.
        const search::CostTable *table = _ctx.costTable();
        result.costKey =
            table != nullptr
                ? table->evaluateCircuit(result.mapped.physical,
                                         _ctx.latency())
                : result.cycles;
    }

    /**
     * Deterministic progress fallback: route the first unrouted
     * dependence-ready frontier gate's operands together along a
     * shortest path, waiting out busy qubits as needed.  Used when
     * the beam stagnates (it can dance swaps in circles on ring-like
     * topologies: the per-level filter has no memory of revisits).
     */
    NodeRef
    forceRouteFrontier(NodeRef node)
    {
        node = assignFrontier(node);
        // Find an unrouted frontier gate.
        int q0 = -1, q1 = -1;
        {
            const int *head = node->head();
            const QIndex *l2p = node->log2phys();
            for (int l = 0; l < _ctx.numLogical() && q0 < 0; ++l) {
                const auto &gates = _ctx.qubitGates(l);
                const int h = head[l];
                if (h >= static_cast<int>(gates.size()))
                    continue;
                const int gi = gates[static_cast<size_t>(h)];
                const ir::Gate &g = _ctx.circuit().gate(gi);
                if (g.numQubits() != 2 || g.qubit(0) != l)
                    continue;
                bool frontier = true;
                for (int q : g.qubits()) {
                    if (_ctx.posOnQubit(gi, q) != head[q] ||
                        l2p[q] < 0) {
                        frontier = false;
                    }
                }
                if (frontier &&
                    !_graph.adjacent(l2p[g.qubit(0)],
                                     l2p[g.qubit(1)])) {
                    q0 = g.qubit(0);
                    q1 = g.qubit(1);
                }
            }
        }
        if (q0 < 0)
            return node;

        const auto wait_until_idle = [&](int p) {
            while (node->busyUntil()[p] > node->cycle) {
                int next = std::numeric_limits<int>::max();
                for (int i = 0; i < node->numPhysical(); ++i) {
                    if (node->busyUntil()[i] > node->cycle)
                        next = std::min(next, node->busyUntil()[i]);
                }
                node = _pool.expand(node, next, {});
            }
        };

        while (!_graph.adjacent(node->log2phys()[q0],
                                node->log2phys()[q1])) {
            const int p0 = node->log2phys()[q0];
            const int p1 = node->log2phys()[q1];
            int step = -1;
            for (int nbr : _graph.neighbors(p0)) {
                if (_graph.distance(nbr, p1) <
                    _graph.distance(p0, p1)) {
                    step = nbr;
                    break;
                }
            }
            wait_until_idle(p0);
            wait_until_idle(step);
            node = _pool.expand(node, node->cycle + 1,
                                {Action{-1, p0, step}});
            _estimator.score(*node);
            node->routeScore = computeRouteScore(*node);
        }
        return node;
    }

    /** Rolling beam search (the default scalable mode). */
    NodeRef
    beamSearch(const NodeRef &root, HeuristicResult &result)
    {
        BeamEngine engine(_pool);
        engine.bindProbe("heuristic");
        engine.armGuard(_config.guard);
        search::BeamFrontier &beam = engine.frontier();
        beam.assign({root});
        NodeRef terminal;

        const NodeOrder order{_config.hWeight, _config.routeWeight, _cw};
        int best_progress = root->scheduledGates;
        int stagnant_levels = 0;
        const int stagnation_limit =
            4 * _graph.diameter() * _ctx.swapLatency() + 64;

        for (;;) {
            const search::StopReason stop = engine.guardStop();
            if (stop != search::StopReason::None ||
                (_config.maxExpandedNodes != 0 &&
                 engine.stats().expanded > _config.maxExpandedNodes)) {
                result.status = stop != search::StopReason::None
                                    ? search::statusFor(stop)
                                    : SearchStatus::BudgetExhausted;
                // A complete schedule already carried through the
                // level is still a valid answer: deliver it.
                for (const NodeRef &node : beam.level()) {
                    if (node->allScheduled(_ctx) &&
                        (!terminal ||
                         node->fKey() < terminal->fKey()))
                        terminal = node;
                }
                break;
            }

            bool all_terminal = true;
            for (const NodeRef &node : beam.level()) {
                if (node->allScheduled(_ctx)) {
                    engine.push(node); // carry terminals through
                    continue;
                }
                all_terminal = false;
                engine.noteExpansion(order.weightedF(node));
                for (NodeRef &child :
                     generateChildren(node, engine.stats())) {
                    engine.push(std::move(child));
                }
            }
            if (all_terminal) {
                terminal = beam.level().front();
                for (const NodeRef &node : beam.level()) {
                    if (node->fKey() < terminal->fKey())
                        terminal = node;
                }
                break;
            }
            if (beam.nextEmpty()) {
                // No legal transition: give up (success stays false).
                result.status = SearchStatus::Infeasible;
                break;
            }

            _filter.clear();
            ++engine.stats().trims; // each level advance is a trim
            beam.advance(
                _config.beamWidth,
                [&order](const NodeRef &a, const NodeRef &b) {
                    return order(b, a); // ascending weighted f
                },
                [this](const NodeRef &cand) {
                    cand->dead = false;
                    return _filter.admit(cand, cand->actions.empty());
                });

            // Stagnation watchdog: on ring-like devices the beam can
            // shuffle swaps forever; force deterministic progress.
            int progress = best_progress;
            for (const NodeRef &node : beam.level())
                progress = std::max(progress, node->scheduledGates);
            if (progress > best_progress) {
                best_progress = progress;
                stagnant_levels = 0;
            } else if (++stagnant_levels > stagnation_limit) {
                NodeRef routed = forceRouteFrontier(beam.level().front());
                beam.assign({std::move(routed)});
                stagnant_levels = 0;
            }
        }

        engine.finish();
        result.stats = engine.stats();
        return terminal;
    }

  private:
    const SearchContext &_ctx;
    const arch::CouplingGraph &_graph;
    const HeuristicConfig &_config;
    /** Declared before every NodeRef holder below (destruction runs
     *  bottom-up, so the pool dies last). */
    NodePool _pool;
    core::CostEstimator _estimator;
    core::Filter _filter;
    /** Active table's cycleWeight as a double (1.0 with no table). */
    double _cw;
    /** Most-progressed node of the current episode (RHC mode). */
    NodeRef _episodeBest;

    /**
     * Greedy on-the-fly placement: give every unmapped operand of a
     * dependence-ready head gate a physical home (Section 6.2).
     *
     * @return the node to expand from: either @p node itself or a
     *         clone with the new assignments.
     */
    NodeRef
    assignFrontier(const NodeRef &node)
    {
        // Find head gates with unmapped operands.
        std::vector<int> to_place; // logical qubits needing a home
        const int *head = node->head();
        const QIndex *l2p = node->log2phys();
        for (int l = 0; l < _ctx.numLogical(); ++l) {
            const auto &gates = _ctx.qubitGates(l);
            const int h = head[l];
            if (h >= static_cast<int>(gates.size()))
                continue;
            const int gi = gates[static_cast<size_t>(h)];
            const ir::Gate &g = _ctx.circuit().gate(gi);
            bool is_head_everywhere = true;
            for (int q : g.qubits()) {
                if (_ctx.posOnQubit(gi, q) != head[q])
                    is_head_everywhere = false;
            }
            if (!is_head_everywhere)
                continue;
            for (int q : g.qubits()) {
                if (l2p[q] < 0 &&
                    std::find(to_place.begin(), to_place.end(), q) ==
                        to_place.end()) {
                    to_place.push_back(q);
                }
            }
        }
        if (to_place.empty())
            return node;

        NodeRef patched = _pool.cloneSibling(node);
        for (int q : to_place)
            placeQubit(*patched, q);
        return patched;
    }

    /** Place logical @p l minimizing distance to its next partner. */
    void
    placeQubit(SearchNode &node, int l)
    {
        const QIndex *l2p = node.log2phys();
        const QIndex *p2l = node.phys2log();
        if (l2p[l] >= 0)
            return;

        // The guiding partner: the other operand of l's first
        // remaining two-qubit gate, if that operand is mapped.
        int anchor = -1;
        const auto &gates = _ctx.qubitGates(l);
        for (size_t k = static_cast<size_t>(node.head()[l]);
             k < gates.size(); ++k) {
            const ir::Gate &g = _ctx.circuit().gate(gates[k]);
            if (g.numQubits() != 2)
                continue;
            const int other = g.qubit(0) == l ? g.qubit(1) : g.qubit(0);
            if (l2p[other] >= 0)
                anchor = l2p[other];
            break; // only the first upcoming 2q gate guides placement
        }

        int best = -1;
        int best_score = std::numeric_limits<int>::max();
        for (int p = 0; p < _ctx.numPhysical(); ++p) {
            if (p2l[p] >= 0)
                continue;
            int score;
            if (anchor >= 0) {
                score = _graph.distance(anchor, p);
            } else {
                // No anchor: prefer well-connected positions.
                score = -static_cast<int>(_graph.neighbors(p).size());
            }
            if (score < best_score) {
                best_score = score;
                best = p;
            }
        }
        if (best < 0)
            return; // device full; cannot happen for valid inputs
        // Through the pool so the cached mapping hash and occupancy
        // bits stay coherent with the arrays.
        _pool.placeLogical(node, l, best);
    }

    /**
     * SABRE-style sum of distances of the frontier (weight 4) and a
     * short per-qubit lookahead (weight 1); supplies the routing
     * gradient the max-based admissible h lacks.
     */
    int
    computeRouteScore(const SearchNode &node) const
    {
        const int *head = node.head();
        const QIndex *l2p = node.log2phys();
        int score = 0;
        for (int l = 0; l < _ctx.numLogical(); ++l) {
            if (l2p[l] < 0)
                continue;
            const auto &gates = _ctx.qubitGates(l);
            int seen = 0;
            for (size_t k = static_cast<size_t>(head[l]);
                 k < gates.size() && seen <= _config.routeLookahead;
                 ++k) {
                const ir::Gate &g = _ctx.circuit().gate(gates[k]);
                if (g.numQubits() != 2)
                    continue;
                ++seen;
                const int other =
                    g.qubit(0) == l ? g.qubit(1) : g.qubit(0);
                if (l2p[other] < 0)
                    continue;
                const int excess =
                    _graph.distance(l2p[l], l2p[other]) - 1;
                if (excess > 0)
                    score += (seen == 1 ? 4 : 1) * excess;
            }
        }
        return score;
    }

    /** Ready gates at node.cycle + 1 (deps + coupling + idleness). */
    std::vector<Action>
    readyGates(const SearchNode &node) const
    {
        std::vector<Action> out;
        const int start = node.cycle + 1;
        const int *head = node.head();
        const QIndex *l2p = node.log2phys();
        const int *busy = node.busyUntil();
        for (int l = 0; l < _ctx.numLogical(); ++l) {
            const auto &gates = _ctx.qubitGates(l);
            const int h = head[l];
            if (h >= static_cast<int>(gates.size()))
                continue;
            const int gi = gates[static_cast<size_t>(h)];
            const ir::Gate &g = _ctx.circuit().gate(gi);
            if (g.qubit(0) != l)
                continue;
            bool ok = true;
            for (int q : g.qubits()) {
                if (_ctx.posOnQubit(gi, q) != head[q] || l2p[q] < 0 ||
                    busy[l2p[q]] >= start) {
                    ok = false;
                    break;
                }
            }
            if (!ok)
                continue;
            Action a;
            a.gateIndex = gi;
            a.p0 = l2p[g.qubit(0)];
            a.p1 = g.numQubits() == 2 ? l2p[g.qubit(1)] : -1;
            if (a.p1 >= 0 && !_graph.adjacent(a.p0, a.p1))
                continue;
            out.push_back(a);
        }
        return out;
    }

    /**
     * The physical qubits of frontier gates that are executable with
     * respect to dependence and coupling (busy or not): swaps must
     * not touch them (Section 6.2's swap restriction).
     */
    std::vector<char>
    protectedQubits(const SearchNode &node) const
    {
        std::vector<char> keep(static_cast<size_t>(_ctx.numPhysical()),
                               0);
        const int *head = node.head();
        const QIndex *l2p = node.log2phys();
        for (int l = 0; l < _ctx.numLogical(); ++l) {
            const auto &gates = _ctx.qubitGates(l);
            const int h = head[l];
            if (h >= static_cast<int>(gates.size()))
                continue;
            const int gi = gates[static_cast<size_t>(h)];
            const ir::Gate &g = _ctx.circuit().gate(gi);
            if (g.numQubits() != 2 || g.qubit(0) != l)
                continue;
            bool frontier = true;
            for (int q : g.qubits()) {
                if (_ctx.posOnQubit(gi, q) != head[q] || l2p[q] < 0)
                    frontier = false;
            }
            if (!frontier)
                continue;
            const int p0 = l2p[g.qubit(0)];
            const int p1 = l2p[g.qubit(1)];
            if (_graph.adjacent(p0, p1)) {
                keep[static_cast<size_t>(p0)] = 1;
                keep[static_cast<size_t>(p1)] = 1;
            }
        }
        return keep;
    }

    /**
     * Generate every child of @p raw allowed by the Section 6.2
     * rules, sorted by ascending weighted f.
     */
    std::vector<NodeRef>
    generateChildren(const NodeRef &raw, HeuristicStats &stats)
    {
        NodeRef node = assignFrontier(raw);
        const int start = node->cycle + 1;

        const std::vector<Action> forced = readyGates(*node);
        const std::vector<char> keep = protectedQubits(*node);

        // Swap candidates serve the unrouted frontier: only edges
        // incident to an operand position of a dependence-ready
        // two-qubit gate that is not yet coupling-compliant are
        // considered (anything else cannot help the frontier and
        // explodes the branching).  Additionally a swap must be on
        // idle qubits, must not undo itself (cyclic), must not touch
        // a qubit of a forced gate, and must not break an executable
        // frontier gate (Section 6.2's restriction).
        const int *busy = node->busyUntil();
        const QIndex *partner = node->lastSwapPartner();
        const QIndex *p2l = node->phys2log();
        const int *head = node->head();
        const QIndex *l2p = node->log2phys();
        std::vector<char> forced_used(
            static_cast<size_t>(_ctx.numPhysical()), 0);
        for (const Action &a : forced) {
            forced_used[static_cast<size_t>(a.p0)] = 1;
            if (a.p1 >= 0)
                forced_used[static_cast<size_t>(a.p1)] = 1;
        }

        // Positions of unrouted dependence-ready frontier gates.
        std::vector<char> wants_routing(
            static_cast<size_t>(_ctx.numPhysical()), 0);
        for (int l = 0; l < _ctx.numLogical(); ++l) {
            const auto &gates = _ctx.qubitGates(l);
            const int h = head[l];
            if (h >= static_cast<int>(gates.size()))
                continue;
            const int gi = gates[static_cast<size_t>(h)];
            const ir::Gate &g = _ctx.circuit().gate(gi);
            if (g.numQubits() != 2 || g.qubit(0) != l)
                continue;
            bool frontier = true;
            for (int q : g.qubits()) {
                if (_ctx.posOnQubit(gi, q) != head[q] || l2p[q] < 0)
                    frontier = false;
            }
            if (!frontier)
                continue;
            const int p0 = l2p[g.qubit(0)];
            const int p1 = l2p[g.qubit(1)];
            if (!_graph.adjacent(p0, p1)) {
                wants_routing[static_cast<size_t>(p0)] = 1;
                wants_routing[static_cast<size_t>(p1)] = 1;
            }
        }

        std::vector<Action> swaps;
        for (const auto &[p0, p1] : _graph.edges()) {
            if (!wants_routing[static_cast<size_t>(p0)] &&
                !wants_routing[static_cast<size_t>(p1)]) {
                continue;
            }
            if (busy[p0] >= start || busy[p1] >= start)
                continue;
            if (forced_used[static_cast<size_t>(p0)] ||
                forced_used[static_cast<size_t>(p1)]) {
                continue;
            }
            if (keep[static_cast<size_t>(p0)] ||
                keep[static_cast<size_t>(p1)]) {
                continue;
            }
            if (partner[p0] == p1 && partner[p1] == p0)
                continue;
            if (p2l[p0] < 0 && p2l[p1] < 0)
                continue;
            Action a;
            a.gateIndex = -1;
            a.p0 = p0;
            a.p1 = p1;
            swaps.push_back(a);
        }

        // Children: forced gates plus every swap subset of size
        // <= maxSwapsPerChild (incl. the empty subset when something
        // is being scheduled).
        std::vector<NodeRef> children;
        const auto emit = [&](const std::vector<Action> &acts) {
            if (acts.empty())
                return;
            children.push_back(_pool.expand(node, start, acts));
        };

        emit(forced);
        std::vector<Action> acts;
        for (size_t i = 0; i < swaps.size(); ++i) {
            acts = forced;
            acts.push_back(swaps[i]);
            emit(acts);
            if (_config.maxSwapsPerChild >= 2) {
                for (size_t j = i + 1; j < swaps.size(); ++j) {
                    const Action &a = swaps[i];
                    const Action &b = swaps[j];
                    if (a.p0 == b.p0 || a.p0 == b.p1 || a.p1 == b.p0 ||
                        a.p1 == b.p1) {
                        continue;
                    }
                    acts = forced;
                    acts.push_back(a);
                    acts.push_back(b);
                    emit(acts);
                }
            }
        }

        // Wait child: nothing schedulable now, let a gate finish.
        if (children.empty()) {
            int next_completion = std::numeric_limits<int>::max();
            for (int p = 0; p < node->numPhysical(); ++p) {
                if (busy[p] > node->cycle)
                    next_completion = std::min(next_completion, busy[p]);
            }
            if (next_completion != std::numeric_limits<int>::max()) {
                children.push_back(
                    _pool.expand(node, next_completion, {}));
            }
        }

        stats.generated += children.size();
        for (NodeRef &child : children) {
            _estimator.score(*child);
            child->routeScore = computeRouteScore(*child);
        }
        const NodeOrder order{_config.hWeight, _config.routeWeight, _cw};
        std::sort(children.begin(), children.end(),
                  [&order](const NodeRef &a, const NodeRef &b) {
                      return order(b, a); // ascending weighted f
                  });
        return children;
    }

    void
    expandInto(const NodeRef &raw, QueueEngine &engine)
    {
        const NodeOrder order{_config.hWeight, 1.0, _cw};
        auto children = generateChildren(raw, engine.stats());
        int pushed = 0;
        for (NodeRef &child : children) {
            if (pushed >= _config.topK)
                break;
            if (!_filter.admit(child, /*exempt=*/child->actions.empty()))
                continue;
            engine.push(child);
            ++pushed;
            if (!_episodeBest ||
                child->scheduledGates > _episodeBest->scheduledGates ||
                (child->scheduledGates == _episodeBest->scheduledGates &&
                 order.weightedF(child) <
                     order.weightedF(_episodeBest))) {
                _episodeBest = child;
            }
        }
    }

    /** Keep the most-progressed queueTrim nodes (Section 6.2). */
    void
    trim(search::BestFirstFrontier<NodeRef, NodeOrder> &frontier)
    {
        std::vector<NodeRef> nodes = frontier.drainLive();
        std::sort(nodes.begin(), nodes.end(),
                  [](const NodeRef &a, const NodeRef &b) {
                      if (a->scheduledGates != b->scheduledGates)
                          return a->scheduledGates > b->scheduledGates;
                      return a->fKey() < b->fKey();
                  });
        if (nodes.size() > _config.queueTrim)
            nodes.resize(_config.queueTrim);
        frontier.refill(std::move(nodes));
    }
};

} // namespace

HeuristicMapper::HeuristicMapper(const arch::CouplingGraph &graph,
                                 HeuristicConfig config)
    : _graph(graph), _config(config)
{}

HeuristicResult
HeuristicMapper::map(const ir::Circuit &logical,
                     std::optional<std::vector<int>> initial_layout) const
{
    const obs::PhaseScope obs_phase("search");
    const ir::Circuit clean = logical.withoutSwapsAndBarriers();
    SearchContext ctx(clean, _graph, _config.latency);
    ctx.setCostTable(_config.costTable);
    HeuristicConfig cfg = _config;
    if (cfg.channel != nullptr && cfg.guard.cancelToken == nullptr)
        cfg.guard.cancelToken = cfg.channel->stopToken();
    Run run(ctx, _graph, cfg);
    std::vector<int> seed(static_cast<size_t>(ctx.numLogical()), -1);
    if (initial_layout)
        seed = *initial_layout;
    HeuristicResult result = run.solve(seed);
    if (cfg.channel != nullptr && result.success && result.costKey >= 0)
        cfg.channel->offer(result.costKey);
    return result;
}

} // namespace toqm::heuristic
