/**
 * @file
 * The practical, scalable extension of the time-optimal model
 * (Section 6.2 of the paper).
 *
 * Approximations relative to the exact A* search:
 *  - every dependence- and coupling-ready original gate is scheduled
 *    immediately (children that fail to do so are never generated);
 *  - swaps that would make a currently executable frontier gate
 *    non-executable are not considered;
 *  - only the top-k ranked children of each node enter the priority
 *    queue (paper default k = 10);
 *  - the queue is capped at g entries and trimmed by dropping the
 *    nodes that made the least progress in the circuit (paper
 *    defaults g = 2000, trim survivor count v = 1000);
 *  - the initial mapping is chosen greedily on the fly: a qubit is
 *    placed the first time one of its gates becomes ready, minimizing
 *    the physical distance to its partner (Section 6.2); qubits never
 *    used by a two-qubit gate are placed arbitrarily at the end.
 *
 * The output is not guaranteed optimal but scales to circuits with
 * hundreds of thousands of gates (Table 3).
 */

#ifndef TOQM_HEURISTIC_HEURISTIC_MAPPER_HPP
#define TOQM_HEURISTIC_HEURISTIC_MAPPER_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "ir/circuit.hpp"
#include "ir/latency.hpp"
#include "ir/mapped_circuit.hpp"
#include "search/cost_table.hpp"
#include "search/incumbent_channel.hpp"
#include "search/resource_guard.hpp"
#include "search/search_stats.hpp"

namespace toqm::heuristic {

/** Search organization of the practical mapper. */
enum class SearchMode {
    /**
     * Rolling beam (default): synchronous level-by-level search
     * keeping the beamWidth best states.  Work is linear in circuit
     * length, which is what lets Table 3's hundreds of thousands of
     * gates finish; quality comes from the timing-aware cost
     * function and from scheduling swaps concurrently with gates.
     */
    Beam,
    /**
     * Receding horizon: bounded best-first episodes, committing to
     * the most-progressed node of each.
     */
    RecedingHorizon,
    /**
     * The paper's Section 6.2 scheme verbatim: one global priority
     * queue with top-k pushes and progress-based trimming.  More
     * thorough, superlinear in practice.
     */
    GlobalQueue,
};

/** Tunables of the approximate search (paper Section 6.2). */
struct HeuristicConfig
{
    SearchMode mode = SearchMode::Beam;
    /** States kept per level in Beam mode. */
    int beamWidth = 10;
    /** Expansions per receding-horizon episode. */
    int episodeBudget = 64;
    ir::LatencyModel latency = ir::LatencyModel::ibmPreset();
    /** Children pushed per expansion (paper: k = 10). */
    int topK = 10;
    /** Queue size threshold that triggers trimming (paper: g). */
    size_t queueCap = 2000;
    /** Queue size after a trim (paper keeps v = 1000 survivors). */
    size_t queueTrim = 1000;
    /** Cost-estimator window over the remaining circuit. */
    int horizonGates = 50;
    /**
     * Weighted-A* factor on h.  1.0 reproduces the admissible
     * ordering (thorough but slow); larger values focus the search
     * toward completion at a bounded quality cost.
     */
    double hWeight = 2.0;
    /**
     * Weight of the frontier/lookahead distance term in the ranking.
     * The admissible h is a MAX over gates and cannot tell a swap
     * toward the frontier from a sideways one when slack absorbs the
     * delay; this SABRE-style sum-of-distances term supplies that
     * gradient.
     */
    double routeWeight = 1.0;
    /** Lookahead gates per qubit beyond the frontier for the
     *  distance term. */
    int routeLookahead = 2;
    /** Max swaps added per child (bounds branching). */
    int maxSwapsPerChild = 2;
    /** Filter table bound (pruning-only; safe to evict). */
    size_t filterMaxEntries = 200'000;
    /** Hard stop on expansions (0 disables the limit). */
    std::uint64_t maxExpandedNodes = 0;
    /** Resource limits (deadline / memory ceiling / cancellation);
     *  all-defaults = disarmed. */
    search::GuardConfig guard;
    /**
     * Incumbent exchange for portfolio races (nullptr = solo run):
     * the mapper publishes its achieved makespan on success (an upper
     * bound for the exact searches racing it) and honors the
     * channel's stop token through its ResourceGuard.  It does NOT
     * prune against the watermark — its output is not admissible, so
     * a foreign bound says nothing about its own search space.
     */
    search::IncumbentChannel *channel = nullptr;
    /**
     * Encoded cost model guiding the greedy ranking instead of plain
     * cycles (null — the default — is the legacy byte-identical
     * path).  The heuristic stays non-admissible either way; the
     * table only reshapes its gradient and the reported costKey.
     * Must outlive the map() call.
     */
    const search::CostTable *costTable = nullptr;
};

/** Search statistics — the kernel's unified run report. */
using HeuristicStats = search::SearchStats;

/** Result of a heuristic mapping run. */
struct HeuristicResult
{
    bool success = false;
    /**
     * Solved when a full schedule was produced; BudgetExhausted when
     * the expansion budget (maxExpandedNodes, or the receding-horizon
     * episode cap) ran out first; Infeasible when the search hit a
     * state with no legal transition; DeadlineExceeded /
     * MemoryExhausted / Cancelled when the ResourceGuard stopped the
     * run (in Beam mode a complete schedule already in the level is
     * still delivered).
     */
    search::SearchStatus status = search::SearchStatus::Infeasible;
    /** Total cycles of the transformed circuit. */
    int cycles = -1;
    /** Encoded total cost of `mapped` under the run's objective,
     *  evaluated on the emitted circuit (== cycles with no table). */
    std::int64_t costKey = -1;
    ir::MappedCircuit mapped;
    HeuristicStats stats;
};

/** The scalable non-optimal mapper. */
class HeuristicMapper
{
  public:
    HeuristicMapper(const arch::CouplingGraph &graph,
                    HeuristicConfig config = {});

    /**
     * Map @p logical onto the device.
     *
     * @param initial_layout optional full initial layout; when absent
     *        the mapper assigns qubits on the fly (the paper's mode).
     */
    HeuristicResult map(const ir::Circuit &logical,
                        std::optional<std::vector<int>> initial_layout =
                            std::nullopt) const;

  private:
    arch::CouplingGraph _graph;
    HeuristicConfig _config;
};

} // namespace toqm::heuristic

#endif // TOQM_HEURISTIC_HEURISTIC_MAPPER_HPP
