/**
 * @file
 * The structured time-optimal QFT solutions of Section 6.1.1 /
 * Fig 13, generalized to arbitrary n:
 *
 *  (a) LNN butterfly: alternating GT and SWAP layers on logical
 *      pairs whose subscripts sum to m/2 + 1; depth 4n-7 cycles
 *      (the final swap layer is cosmetic and omitted).
 *  (b) 2xN grid, concurrent GT+swap: per iteration i three steps —
 *      [GT even-even pairs summing 2i+2 | SWAP odd-odd pairs summing
 *      2i+4], [GT all pairs summing 2i+3], [SWAP even-even 2i+2 | GT
 *      odd-odd 2i+4] — matching Fig 12's 17 steps for n=8 and depth
 *      3n + O(1).
 *  (c) 2xN grid, no GT/swap mixing (Fig 14): per iteration i —
 *      [SWAP pairs summing 2i], [GT pairs summing 2i], [GT pairs
 *      summing 2i+1] — depth 3n - 5 (19 steps for n=8).
 *
 * Every generated solution is layered (one layer == one cycle under
 * the uniform QFT latency model) and can be independently checked by
 * validateQftSolution().
 */

#ifndef TOQM_QFTOPT_QFT_PATTERNS_HPP
#define TOQM_QFTOPT_QFT_PATTERNS_HPP

#include <string>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "ir/circuit.hpp"
#include "ir/mapped_circuit.hpp"

namespace toqm::qftopt {

/** A layered, hardware-compliant QFT schedule. */
struct StructuredSolution
{
    /** Architecture the schedule targets. */
    arch::CouplingGraph graph;
    /** Initial layout, logical -> physical. */
    std::vector<int> initialLayout;
    /**
     * One entry per cycle; each gate's operands are PHYSICAL
     * positions.  Gates within a layer act on disjoint qubits.
     */
    std::vector<std::vector<ir::Gate>> layers;

    StructuredSolution(arch::CouplingGraph g, std::vector<int> layout)
        : graph(std::move(g)), initialLayout(std::move(layout))
    {}

    /** Depth in cycles (== number of layers). */
    int depth() const { return static_cast<int>(layers.size()); }

    /** Flatten into a MappedCircuit for the verifier/scheduler. */
    ir::MappedCircuit toMappedCircuit() const;

    /** Render the per-step qubit placements like Fig 11 / Fig 12. */
    std::string renderSteps() const;
};

/** Fig 13(a): n-qubit QFT on LNN, depth 4n-7. */
StructuredSolution qftLnnButterfly(int n);

/** Fig 13(b): n-qubit QFT on 2x(n/2), GT and swaps concurrent. */
StructuredSolution qftGrid2xnMixed(int n);

/** Fig 13(c): n-qubit QFT on 2x(n/2), GT and swaps never mixed. */
StructuredSolution qftGrid2xnUnmixed(int n);

/** Validation report for a structured solution. */
struct PatternCheck
{
    bool ok = false;
    std::string message;

    explicit operator bool() const { return ok; }
};

/**
 * Independently validate a structured solution:
 *  - every two-qubit op acts on coupled physical qubits;
 *  - ops within a layer are qubit-disjoint;
 *  - exactly the n(n-1)/2 logical GT pairs are executed, once each;
 *  - if @p forbid_mixing, no layer mixes GT and SWAP.
 */
PatternCheck validateQftSolution(const StructuredSolution &solution,
                                 int n, bool forbid_mixing = false);

} // namespace toqm::qftopt

#endif // TOQM_QFTOPT_QFT_PATTERNS_HPP
