#include "qft_patterns.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "arch/architectures.hpp"

namespace toqm::qftopt {

namespace {

/** Tracks logical positions while emitting layered physical ops. */
class LayoutTracker
{
  public:
    LayoutTracker(StructuredSolution &solution)
        : _solution(solution), _l2p(solution.initialLayout)
    {}

    void
    beginLayer()
    {
        _current.clear();
    }

    /** Commit the layer if it has any operation. */
    void
    endLayer()
    {
        if (!_current.empty())
            _solution.layers.push_back(std::move(_current));
        _current.clear();
    }

    /** Emit GT between logical qubits @p a and @p b. */
    void
    gt(int a, int b)
    {
        _current.emplace_back(ir::GateKind::GT, pos(a), pos(b));
    }

    /** Emit SWAP between logical qubits @p a and @p b. */
    void
    swapLogical(int a, int b)
    {
        _current.emplace_back(ir::GateKind::Swap, pos(a), pos(b));
        std::swap(_l2p[static_cast<size_t>(a)],
                  _l2p[static_cast<size_t>(b)]);
    }

    int
    pos(int l) const
    {
        return _l2p[static_cast<size_t>(l)];
    }

  private:
    StructuredSolution &_solution;
    std::vector<int> _l2p;
    std::vector<ir::Gate> _current;
};

/** Logical pairs (a, b), a < b < n, a + b == sum, filtered. */
std::vector<std::pair<int, int>>
pairsWithSum(int sum, int n, int parity_a = -1)
{
    std::vector<std::pair<int, int>> out;
    for (int a = 0; 2 * a < sum; ++a) {
        const int b = sum - a;
        if (b >= n)
            continue;
        if (parity_a >= 0 && (a % 2) != parity_a)
            continue;
        if (parity_a >= 0 && (b % 2) != parity_a)
            continue;
        out.emplace_back(a, b);
    }
    return out;
}

} // namespace

ir::MappedCircuit
StructuredSolution::toMappedCircuit() const
{
    ir::Circuit phys(graph.numQubits(), "qft_structured");
    for (const auto &layer : layers) {
        for (const ir::Gate &g : layer)
            phys.add(g);
    }
    const auto final_layout = ir::propagateLayout(phys, initialLayout);
    return ir::MappedCircuit(std::move(phys), initialLayout,
                             final_layout);
}

std::string
StructuredSolution::renderSteps() const
{
    // Recover logical occupancy per step.
    std::vector<int> p2l(static_cast<size_t>(graph.numQubits()), -1);
    for (size_t l = 0; l < initialLayout.size(); ++l)
        p2l[static_cast<size_t>(initialLayout[l])] =
            static_cast<int>(l);

    std::ostringstream os;
    const auto dump = [&os, &p2l, this](int step) {
        os << "step(" << step << "):";
        for (int p = 0; p < graph.numQubits(); ++p) {
            const int l = p2l[static_cast<size_t>(p)];
            os << " " << (l < 0 ? std::string("--")
                                : "q" + std::to_string(l));
        }
        os << "\n";
    };
    dump(0);
    for (size_t s = 0; s < layers.size(); ++s) {
        os << "  ops:";
        for (const ir::Gate &g : layers[s]) {
            os << " " << (g.isSwap() ? "SWAP" : "GT") << "(Q"
               << g.qubit(0) << ",Q" << g.qubit(1) << ")";
        }
        os << "\n";
        for (const ir::Gate &g : layers[s]) {
            if (g.isSwap())
                std::swap(p2l[static_cast<size_t>(g.qubit(0))],
                          p2l[static_cast<size_t>(g.qubit(1))]);
        }
        dump(static_cast<int>(s) + 1);
    }
    return os.str();
}

StructuredSolution
qftLnnButterfly(int n)
{
    if (n < 2)
        throw std::invalid_argument("qftLnnButterfly: n >= 2 required");
    StructuredSolution solution(arch::lnn(n), ir::identityLayout(n));
    LayoutTracker tracker(solution);

    // Fig 13(a): for every even m < 4n-6, GT then SWAP on all pairs
    // whose logical subscripts sum to m/2 + 1.
    const int last_m = 4 * n - 8;
    for (int m = 0; m <= last_m; m += 2) {
        const int k = m / 2 + 1;
        const auto pairs = pairsWithSum(k, n);
        tracker.beginLayer();
        for (const auto &[a, b] : pairs)
            tracker.gt(a, b);
        tracker.endLayer();
        if (m == last_m)
            break; // the final swap layer is cosmetic (Fig 11)
        tracker.beginLayer();
        for (const auto &[a, b] : pairs)
            tracker.swapLogical(a, b);
        tracker.endLayer();
    }
    return solution;
}

StructuredSolution
qftGrid2xnMixed(int n)
{
    if (n < 4 || n % 2 != 0)
        throw std::invalid_argument(
            "qftGrid2xnMixed: even n >= 4 required");
    const int cols = n / 2;
    // Column-major initial placement: q_{2c+r} -> row r, column c.
    std::vector<int> layout(static_cast<size_t>(n));
    for (int c = 0; c < cols; ++c) {
        for (int r = 0; r < 2; ++r)
            layout[static_cast<size_t>(2 * c + r)] = r * cols + c;
    }
    StructuredSolution solution(arch::grid(2, cols), layout);
    LayoutTracker tracker(solution);

    // Iterations i = -1 .. n-2; see the header for the three steps.
    for (int i = -1; i <= n - 2; ++i) {
        // Step A: GT on even-even pairs summing 2i+2, concurrently
        // with SWAP on odd-odd pairs summing 2i+4.
        const auto gt_a = pairsWithSum(2 * i + 2, n, /*parity=*/0);
        const auto sw_a = pairsWithSum(2 * i + 4, n, /*parity=*/1);
        tracker.beginLayer();
        for (const auto &[a, b] : gt_a)
            tracker.gt(a, b);
        for (const auto &[a, b] : sw_a)
            tracker.swapLogical(a, b);
        tracker.endLayer();

        // Step B: GT on every (necessarily even-odd) pair summing
        // 2i+3.
        tracker.beginLayer();
        for (const auto &[a, b] : pairsWithSum(2 * i + 3, n))
            tracker.gt(a, b);
        tracker.endLayer();

        // Step C: SWAP on the step-A even-even pairs, concurrently
        // with GT on the step-A odd-odd pairs.
        const auto gt_c = pairsWithSum(2 * i + 4, n, /*parity=*/1);
        tracker.beginLayer();
        for (const auto &[a, b] : gt_a)
            tracker.swapLogical(a, b);
        for (const auto &[a, b] : gt_c)
            tracker.gt(a, b);
        tracker.endLayer();
    }
    return solution;
}

StructuredSolution
qftGrid2xnUnmixed(int n)
{
    if (n < 4 || n % 2 != 0)
        throw std::invalid_argument(
            "qftGrid2xnUnmixed: even n >= 4 required");
    const int cols = n / 2;
    std::vector<int> layout(static_cast<size_t>(n));
    for (int c = 0; c < cols; ++c) {
        for (int r = 0; r < 2; ++r)
            layout[static_cast<size_t>(2 * c + r)] = r * cols + c;
    }
    StructuredSolution solution(arch::grid(2, cols), layout);
    LayoutTracker tracker(solution);

    // Fig 13(c): per iteration i — swap pairs summing 2i, GT the
    // same pairs, then GT pairs summing 2i+1.
    for (int i = 0; i <= n - 2; ++i) {
        const auto even_pairs = pairsWithSum(2 * i, n);
        tracker.beginLayer();
        for (const auto &[a, b] : even_pairs)
            tracker.swapLogical(a, b);
        tracker.endLayer();
        tracker.beginLayer();
        for (const auto &[a, b] : even_pairs)
            tracker.gt(a, b);
        tracker.endLayer();
        tracker.beginLayer();
        for (const auto &[a, b] : pairsWithSum(2 * i + 1, n))
            tracker.gt(a, b);
        tracker.endLayer();
    }
    return solution;
}

PatternCheck
validateQftSolution(const StructuredSolution &solution, int n,
                    bool forbid_mixing)
{
    PatternCheck check;
    const auto fail = [&check](std::string msg) {
        check.ok = false;
        check.message = std::move(msg);
        return check;
    };

    std::vector<int> p2l(
        static_cast<size_t>(solution.graph.numQubits()), -1);
    for (size_t l = 0; l < solution.initialLayout.size(); ++l)
        p2l[static_cast<size_t>(solution.initialLayout[l])] =
            static_cast<int>(l);

    std::set<std::pair<int, int>> done;
    for (size_t s = 0; s < solution.layers.size(); ++s) {
        std::vector<char> used(
            static_cast<size_t>(solution.graph.numQubits()), 0);
        bool has_gt = false, has_swap = false;
        for (const ir::Gate &g : solution.layers[s]) {
            const int p0 = g.qubit(0);
            const int p1 = g.qubit(1);
            if (!solution.graph.adjacent(p0, p1)) {
                return fail("layer " + std::to_string(s) + ": op on "
                            "non-adjacent physical qubits Q" +
                            std::to_string(p0) + ",Q" +
                            std::to_string(p1));
            }
            if (used[static_cast<size_t>(p0)] ||
                used[static_cast<size_t>(p1)]) {
                return fail("layer " + std::to_string(s) +
                            ": overlapping operations");
            }
            used[static_cast<size_t>(p0)] = 1;
            used[static_cast<size_t>(p1)] = 1;

            if (g.isSwap()) {
                has_swap = true;
                std::swap(p2l[static_cast<size_t>(p0)],
                          p2l[static_cast<size_t>(p1)]);
            } else if (g.kind() == ir::GateKind::GT) {
                has_gt = true;
                int a = p2l[static_cast<size_t>(p0)];
                int b = p2l[static_cast<size_t>(p1)];
                if (a < 0 || b < 0)
                    return fail("GT on unoccupied position");
                if (a > b)
                    std::swap(a, b);
                if (!done.emplace(a, b).second) {
                    return fail("duplicate GT(q" + std::to_string(a) +
                                ", q" + std::to_string(b) + ")");
                }
            } else {
                return fail("unexpected gate kind in QFT solution");
            }
        }
        if (forbid_mixing && has_gt && has_swap) {
            return fail("layer " + std::to_string(s) +
                        " mixes GT and SWAP");
        }
    }

    const size_t want =
        static_cast<size_t>(n) * static_cast<size_t>(n - 1) / 2;
    if (done.size() != want) {
        return fail("covered " + std::to_string(done.size()) +
                    " GT pairs, expected " + std::to_string(want));
    }
    check.ok = true;
    check.message = "ok";
    return check;
}

} // namespace toqm::qftopt
