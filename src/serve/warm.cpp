#include "serve/warm.hpp"

#include "arch/architectures.hpp"

namespace toqm::serve {

ArchCache &ArchCache::global()
{
    static ArchCache instance;
    return instance;
}

std::shared_ptr<const arch::CouplingGraph>
ArchCache::lookup(const std::string &name)
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _graphs.find(name);
        if (it != _graphs.end()) {
            ++_hits;
            return it->second;
        }
    }
    // Construct outside the lock: distance tables are expensive and
    // concurrent first requests for DIFFERENT names must not
    // serialize.  A duplicate racing construction of the same name
    // is benign — first insert wins below.
    auto graph =
        std::make_shared<const arch::CouplingGraph>(arch::byName(name));
    std::lock_guard<std::mutex> lock(_mutex);
    auto [it, inserted] = _graphs.emplace(name, std::move(graph));
    ++_misses;
    return it->second;
}

ArchCache::Stats ArchCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Stats s;
    s.hits = _hits;
    s.misses = _misses;
    s.entries = _graphs.size();
    return s;
}

void ArchCache::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _graphs.clear();
}

} // namespace toqm::serve
