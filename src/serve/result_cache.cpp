#include "serve/result_cache.hpp"

#include <algorithm>

namespace toqm::serve {

std::size_t cacheEntryBytes(const CacheEntry &entry)
{
    std::size_t bytes = sizeof(CacheEntry);
    bytes += entry.output.capacity();
    bytes += entry.mapper.capacity();
    bytes += entry.toCanonical.capacity() * sizeof(int);
    bytes += entry.mapped.initialLayout.capacity() * sizeof(int);
    bytes += entry.mapped.finalLayout.capacity() * sizeof(int);
    for (const ir::Gate &g : entry.mapped.physical.gates()) {
        bytes += sizeof(ir::Gate);
        bytes += g.qubits().capacity() * sizeof(int);
        bytes += g.params().capacity() * sizeof(double);
        bytes += g.name().capacity();
    }
    return bytes;
}

ResultCache::ResultCache(std::size_t max_bytes, int shards)
    : _maxBytes(max_bytes),
      _shards(static_cast<std::size_t>(std::max(1, shards)))
{
    _shardBudget = std::max<std::size_t>(1, _maxBytes / _shards.size());
}

ResultCache::Lookup ResultCache::find(const CanonicalKey &canonical,
                                      const CanonicalKey &exact)
{
    Shard &shard = shardFor(canonical);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(canonical);
    if (it == shard.index.end()) {
        ++shard.misses;
        return {};
    }
    // Promote to MRU.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    Lookup result;
    result.hit = true;
    result.entry = it->second->second;
    result.exact = result.entry->exactKey == exact;
    if (result.exact)
        ++shard.exactHits;
    else
        ++shard.canonicalHits;
    return result;
}

void ResultCache::insert(const CanonicalKey &canonical, CacheEntry entry)
{
    entry.bytes = cacheEntryBytes(entry);
    Shard &shard = shardFor(canonical);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (entry.bytes > _shardBudget) {
        ++shard.rejected;
        return;
    }
    auto it = shard.index.find(canonical);
    if (it != shard.index.end()) {
        shard.bytes -= it->second->second->bytes;
        shard.lru.erase(it->second);
        shard.index.erase(it);
    }
    const std::size_t entryBytes = entry.bytes;
    shard.lru.emplace_front(
        canonical, std::make_shared<const CacheEntry>(std::move(entry)));
    shard.index.emplace(canonical, shard.lru.begin());
    shard.bytes += entryBytes;
    ++shard.insertions;
    while (shard.bytes > _shardBudget) {
        auto victim = std::prev(shard.lru.end());
        shard.bytes -= victim->second->bytes;
        shard.index.erase(victim->first);
        shard.lru.erase(victim);
        ++shard.evictions;
    }
}

CacheStats ResultCache::stats() const
{
    CacheStats total;
    for (const Shard &shard : _shards) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total.exactHits += shard.exactHits;
        total.canonicalHits += shard.canonicalHits;
        total.misses += shard.misses;
        total.insertions += shard.insertions;
        total.evictions += shard.evictions;
        total.rejected += shard.rejected;
        total.bytes += shard.bytes;
        total.entries += shard.lru.size();
    }
    total.hits = total.exactHits + total.canonicalHits;
    return total;
}

} // namespace toqm::serve
