#include "serve/server.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/json.hpp"
#include "parallel/journal.hpp"
#include "qasm/importer.hpp"

namespace toqm::serve {

namespace {

/** Set by requestStop() — from signal handlers, so lock-free. */
std::atomic<bool> g_stop{false};

/** Read a numeric field as a non-negative integer. */
bool readUint(const obs::json::Value &object, const std::string &key,
              std::uint64_t &out, std::string &bad_field)
{
    const auto value = object.get(key);
    if (!value)
        return true;
    if (!value->isNumber() || value->asNumber() < 0) {
        bad_field = key;
        return false;
    }
    out = static_cast<std::uint64_t>(value->asNumber());
    return true;
}

bool readBool(const obs::json::Value &object, const std::string &key,
              bool &out, std::string &bad_field)
{
    const auto value = object.get(key);
    if (!value)
        return true;
    if (!value->isBool()) {
        bad_field = key;
        return false;
    }
    out = value->asBool();
    return true;
}

bool readString(const obs::json::Value &object, const std::string &key,
                std::string &out, std::string &bad_field)
{
    const auto value = object.get(key);
    if (!value)
        return true;
    if (!value->isString()) {
        bad_field = key;
        return false;
    }
    out = value->asString();
    return true;
}

std::string errorLine(const std::string &id, int code,
                      const std::string &message)
{
    std::string line = "{";
    if (!id.empty())
        line += "\"id\":" + jsonQuote(id) + ",";
    line += "\"code\":" + std::to_string(code) +
            ",\"error\":" + jsonQuote(message) + "}";
    return line;
}

/** Write all of @p data to @p fd, retrying on EINTR. */
bool writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

void requestStop()
{
    g_stop.store(true, std::memory_order_relaxed);
}

bool stopRequested()
{
    return g_stop.load(std::memory_order_relaxed);
}

void resetStopFlag()
{
    g_stop.store(false, std::memory_order_relaxed);
}

std::string jsonQuote(const std::string &text)
{
    std::string out = "\"";
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

Server::Server(ServerConfig config, MapService &service)
    : _config(std::move(config)), _service(service)
{}

Server::~Server() = default;

bool Server::parseRequest(const std::string &line, MapRequest &request,
                          std::string &error_response)
{
    obs::json::ValuePtr doc;
    try {
        doc = obs::json::parse(line);
    } catch (const std::exception &e) {
        error_response = errorLine("", 2,
                                   std::string("bad request JSON: ") +
                                       e.what());
        return false;
    }
    if (!doc->isObject()) {
        error_response = errorLine("", 2, "request is not an object");
        return false;
    }

    std::string bad_field;
    std::string qasmText;
    std::string filePath;
    std::uint64_t maxNodes = request.maxNodes;
    std::uint64_t portfolioSize =
        static_cast<std::uint64_t>(request.portfolioSize);
    bool ok = readString(*doc, "id", request.id, bad_field) &&
              readString(*doc, "qasm", qasmText, bad_field) &&
              readString(*doc, "file", filePath, bad_field) &&
              readString(*doc, "arch", request.arch, bad_field) &&
              readString(*doc, "mapper", request.mapper, bad_field) &&
              readBool(*doc, "searchInitial", request.searchInitial,
                       bad_field) &&
              readBool(*doc, "noMixing", request.noMixing, bad_field) &&
              readBool(*doc, "cacheable", request.cacheable,
                       bad_field) &&
              readUint(*doc, "maxNodes", maxNodes, bad_field) &&
              readUint(*doc, "deadlineMs", request.deadlineMs,
                       bad_field) &&
              readUint(*doc, "maxPoolMb", request.maxPoolMb,
                       bad_field) &&
              readUint(*doc, "portfolioSize", portfolioSize, bad_field);
    if (ok) {
        if (const auto lat = doc->get("latency")) {
            if (!lat->isArray() || lat->asArray().size() != 3) {
                ok = false;
                bad_field = "latency";
            } else {
                const auto &triple = lat->asArray();
                for (const auto &v : triple) {
                    if (!v->isNumber()) {
                        ok = false;
                        bad_field = "latency";
                    }
                }
                if (ok) {
                    request.lat1 = static_cast<int>(
                        triple[0]->asNumber());
                    request.lat2 = static_cast<int>(
                        triple[1]->asNumber());
                    request.lats = static_cast<int>(
                        triple[2]->asNumber());
                }
            }
        }
    }
    if (!ok) {
        error_response =
            errorLine(request.id, 2,
                      "bad request field: " + bad_field);
        return false;
    }
    request.maxNodes = maxNodes;
    request.portfolioSize = static_cast<int>(portfolioSize);

    if (qasmText.empty() == filePath.empty()) {
        error_response = errorLine(
            request.id, 2,
            "request needs exactly one of \"qasm\" or \"file\"");
        return false;
    }
    try {
        const qasm::ImportResult program =
            qasmText.empty() ? qasm::importFile(filePath)
                             : qasm::importString(qasmText);
        request.circuit = program.circuit;
    } catch (const std::exception &e) {
        error_response = errorLine(request.id, 1, e.what());
        return false;
    }
    return true;
}

std::string Server::renderResponse(const MapResponse &response)
{
    if (!response.error.empty())
        return errorLine(response.id, response.code, response.error);
    std::string line = "{";
    if (!response.id.empty())
        line += "\"id\":" + jsonQuote(response.id) + ",";
    line += "\"code\":" + std::to_string(response.code);
    line += ",\"tier\":" + jsonQuote(response.tier);
    line += ",\"mapper\":" + jsonQuote(response.mapper);
    line += ",\"cycles\":" + std::to_string(response.cycles);
    line += ",\"swaps\":" + std::to_string(response.swaps);
    line += ",\"qasm\":" + jsonQuote(response.output);
    line += "}";
    return line;
}

void Server::journalResponse(const MapRequest &request,
                             const MapResponse &response)
{
    if (!_journal || !_journal->isOpen())
        return;
    parallel::JournalRecord record;
    record.input =
        request.id.empty() ? "req-" + std::to_string(_served)
                           : request.id;
    record.dest = record.input;
    record.code = response.code;
    record.bytes = response.output.size();
    record.hash = parallel::fnv1aHash(response.output.data(),
                                      response.output.size());
    _journal->append(record);
}

std::string Server::processLine(const std::string &line, bool &shutdown)
{
    shutdown = false;
    // Blank lines keep the stream position but produce no response.
    std::string::size_type firstNonSpace =
        line.find_first_not_of(" \t\r");
    if (firstNonSpace == std::string::npos)
        return "";

    // Command lines ({"cmd":...}) are control-plane, not requests.
    try {
        const auto doc = obs::json::parse(line);
        if (doc->isObject() && doc->has("cmd")) {
            const auto cmd = doc->get("cmd");
            if (!cmd->isString())
                return errorLine("", 2, "cmd must be a string");
            if (cmd->asString() == "stats")
                return "{\"stats\":" + _service.statsJson() + "}";
            if (cmd->asString() == "shutdown") {
                shutdown = true;
                return "{\"ok\":true}";
            }
            return errorLine("", 2,
                             "unknown cmd: " + cmd->asString());
        }
    } catch (const std::exception &) {
        // Fall through: parseRequest reports the parse error with
        // the request error shape.
    }

    MapRequest request;
    std::string errorResponse;
    if (!parseRequest(line, request, errorResponse))
        return errorResponse;
    const MapResponse response = _service.handle(request);
    ++_served;
    journalResponse(request, response);
    return renderResponse(response);
}

int Server::runStdio(std::istream &in, std::ostream &out,
                     std::ostream &err)
{
    if (!_config.journalPath.empty()) {
        _journal = std::make_unique<parallel::Journal>();
        std::string error;
        if (!_journal->open(_config.journalPath, error)) {
            err << "toqm_serve: journal: " << error << "\n";
            return 1;
        }
        err << "toqm_serve: journal: resumed with "
            << _journal->records().size() << " prior record(s)\n";
    }

    if (_config.jobs > 1) {
        // Slurp mode: requests parse up front and run on the warm
        // pool; command lines act as barriers so a trailing
        // {"cmd":"stats"} sees the whole batch.  Responses are
        // emitted in input order.
        std::vector<std::string> lines;
        std::string line;
        while (!stopRequested() && std::getline(in, line))
            lines.push_back(line);
        std::vector<std::string> slots(lines.size());
        std::vector<std::size_t> pendingIdx;
        std::vector<MapRequest> pendingReq;
        const auto flush = [&] {
            if (pendingReq.empty())
                return;
            const std::vector<MapResponse> responses =
                _service.handleBatch(pendingReq);
            for (std::size_t j = 0; j < responses.size(); ++j) {
                ++_served;
                journalResponse(pendingReq[j], responses[j]);
                slots[pendingIdx[j]] = renderResponse(responses[j]);
            }
            pendingIdx.clear();
            pendingReq.clear();
        };
        bool shutdown = false;
        for (std::size_t i = 0; i < lines.size() && !shutdown; ++i) {
            bool isCommand = false;
            try {
                const auto doc = obs::json::parse(lines[i]);
                isCommand = doc->isObject() && doc->has("cmd");
            } catch (const std::exception &) {
            }
            if (isCommand) {
                flush();
                slots[i] = processLine(lines[i], shutdown);
                continue;
            }
            MapRequest request;
            std::string errorResponse;
            if (lines[i].find_first_not_of(" \t\r") ==
                std::string::npos)
                continue;
            if (!parseRequest(lines[i], request, errorResponse)) {
                slots[i] = errorResponse;
                continue;
            }
            pendingIdx.push_back(i);
            pendingReq.push_back(std::move(request));
        }
        flush();
        for (const std::string &slot : slots) {
            if (!slot.empty())
                out << slot << "\n";
        }
        out.flush();
    } else {
        std::string line;
        bool shutdown = false;
        while (!stopRequested() && std::getline(in, line)) {
            const std::string response = processLine(line, shutdown);
            if (!response.empty()) {
                out << response << "\n";
                out.flush();
            }
            if (shutdown)
                break;
        }
    }

    _service.publishMetrics();
    err << "toqm_serve: drained after " << _served
        << " request(s); stats: " << _service.statsJson() << "\n";
    return 0;
}

int Server::runSocket(std::ostream &err)
{
    if (!_config.journalPath.empty()) {
        _journal = std::make_unique<parallel::Journal>();
        std::string error;
        if (!_journal->open(_config.journalPath, error)) {
            err << "toqm_serve: journal: " << error << "\n";
            return 1;
        }
        err << "toqm_serve: journal: resumed with "
            << _journal->records().size() << " prior record(s)\n";
    }

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (_config.socketPath.size() >= sizeof(addr.sun_path)) {
        err << "toqm_serve: socket path too long: "
            << _config.socketPath << "\n";
        return 2;
    }
    std::memcpy(addr.sun_path, _config.socketPath.c_str(),
                _config.socketPath.size() + 1);

    const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0) {
        err << "toqm_serve: socket: " << std::strerror(errno) << "\n";
        return 1;
    }
    ::unlink(_config.socketPath.c_str());
    if (::bind(listenFd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, 8) != 0) {
        err << "toqm_serve: bind " << _config.socketPath << ": "
            << std::strerror(errno) << "\n";
        ::close(listenFd);
        return 1;
    }
    err << "toqm_serve: listening on " << _config.socketPath << "\n";

    bool shutdown = false;
    while (!shutdown && !stopRequested()) {
        pollfd pfd{listenFd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0)
            continue; // timeout or EINTR: re-check the stop flag
        const int client = ::accept(listenFd, nullptr, nullptr);
        if (client < 0)
            continue;
        std::string buffer;
        char chunk[4096];
        while (!shutdown) {
            const ssize_t n = ::read(client, chunk, sizeof chunk);
            if (n < 0 && errno == EINTR) {
                if (stopRequested())
                    break;
                continue;
            }
            if (n <= 0)
                break;
            buffer.append(chunk, static_cast<std::size_t>(n));
            std::string::size_type eol;
            while ((eol = buffer.find('\n')) != std::string::npos) {
                const std::string line = buffer.substr(0, eol);
                buffer.erase(0, eol + 1);
                const std::string response =
                    processLine(line, shutdown);
                if (!response.empty()) {
                    const std::string payload = response + "\n";
                    if (!writeAll(client, payload.data(),
                                  payload.size()))
                        break;
                }
                if (shutdown)
                    break;
            }
        }
        ::close(client);
    }
    ::close(listenFd);
    ::unlink(_config.socketPath.c_str());

    _service.publishMetrics();
    err << "toqm_serve: drained after " << _served
        << " request(s); stats: " << _service.statsJson() << "\n";
    return 0;
}

} // namespace toqm::serve
