/**
 * @file
 * MapService: the tiered request core of the serve layer.
 *
 * A request flows through four tiers, cheapest first:
 *
 *   1. canonicalizing front-end — the circuit is canonicalized
 *      (canonical.hpp) and hashed together with every
 *      output-affecting parameter (architecture, mapper, latency
 *      triple, budgets, tier configuration) into a 128-bit key;
 *   2. content-addressed result cache (result_cache.hpp) — an
 *      EXACT-fingerprint hit returns the stored bytes verbatim; a
 *      canonical-only hit (relabeled / commuting-reordered
 *      equivalent) translates the stored layouts through the
 *      canonical labeling and re-verifies structurally;
 *   3. structured-solution lookup (structured.hpp, opt-in) — QFT
 *      skeleton requests on matching devices are answered from the
 *      closed-form Section 6.1 schedules without any search;
 *   4. warm search — the mapper dispatch of toqm_map, run against
 *      the process-global ArchCache so per-device distance tables
 *      are built once, with Solved results inserted into the cache.
 *
 * Every response that did not come from a verbatim byte replay is
 * structurally verified before it leaves the service; a verification
 * failure degrades a cache/structured hit to the next tier and turns
 * a search result into exit code 3, mirroring toqm_map's gate.
 *
 * handleBatch() runs requests on a ThreadPool owned by the service
 * and kept alive across calls — the warm-pool tier of the daemon.
 */

#ifndef TOQM_SERVE_SERVICE_HPP
#define TOQM_SERVE_SERVICE_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "ir/circuit.hpp"
#include "ir/mapped_circuit.hpp"
#include "parallel/thread_pool.hpp"
#include "search/search_stats.hpp"
#include "serve/result_cache.hpp"

namespace toqm::serve {

/** Service-level configuration (daemon flags map onto this). */
struct ServiceConfig
{
    /** Result-cache byte budget (0 disables the cache tier). */
    std::size_t cacheBytes = 64ull << 20;
    int cacheShards = 8;
    /** Enable the structured QFT lookup tier. */
    bool structuredTier = false;
    /** Warm-pool width for handleBatch (0 = hardware threads). */
    unsigned workers = 1;
};

/**
 * One mapping request.  Field defaults mirror toqm_map's Options so
 * a daemon response is byte-identical to a cold run with the same
 * flags.
 */
struct MapRequest
{
    std::string id;          ///< echoed in the response
    ir::Circuit circuit{0};
    std::string arch = "tokyo";
    std::string mapper = "heuristic";
    int lat1 = 1, lat2 = 2, lats = 6;
    bool searchInitial = false;
    bool noMixing = false;
    std::uint64_t maxNodes = 20'000'000;
    std::uint64_t deadlineMs = 0; ///< 0 = none
    std::uint64_t maxPoolMb = 0;  ///< 0 = none
    int portfolioSize = 4;
    /** False exempts this request from cache insert AND lookup. */
    bool cacheable = true;
};

/** One mapping response. */
struct MapResponse
{
    std::string id;
    /** Exit-code taxonomy of toqm_map (0 ok, 2 usage, 3 verify, ...). */
    int code = 0;
    std::string error;  ///< message when code != 0
    /** Tier that answered: cache | cache-canonical | structured |
     *  search ("" when the request failed before any tier). */
    std::string tier;
    /** Producing mapper, or the structured pattern name. */
    std::string mapper;
    std::int64_t cycles = 0;
    int swaps = 0;
    /** Rendered mapped circuit (what cold toqm_map prints). */
    std::string output;
};

/** toqm_map's SearchStatus -> process exit code mapping. */
int exitCodeForStatus(search::SearchStatus status);

/** Monotonic per-tier counters (snapshot). */
struct TierCounters
{
    std::uint64_t requests = 0;
    std::uint64_t cacheHits = 0;          ///< exact byte replays
    std::uint64_t cacheCanonicalHits = 0; ///< translated + reverified
    std::uint64_t structuredHits = 0;
    std::uint64_t searches = 0;
    std::uint64_t errors = 0;
    /** Cache/structured candidates rejected by the verify gate and
     *  degraded to the next tier (should stay 0; a nonzero value
     *  means a translation bug was contained). */
    std::uint64_t verifyRejected = 0;
};

class MapService
{
  public:
    explicit MapService(ServiceConfig config = {});

    /** Serve one request through the tiers (thread-safe). */
    MapResponse handle(const MapRequest &request);

    /**
     * Serve a batch on the service's warm ThreadPool; responses come
     * back in request order.  The pool is created on first use and
     * kept alive for the life of the service.
     */
    std::vector<MapResponse>
    handleBatch(const std::vector<MapRequest> &requests);

    const ServiceConfig &config() const { return _config; }

    ResultCache &cache() { return _cache; }

    TierCounters tierCounters() const;

    /**
     * The serve stats block: {"requests":..,"tier":{..},"cache":
     * {"hits":..,"misses":..,"evictions":..,...},"arch":{..}}.
     * Embedded in daemon stats responses and (per request, with a
     * leading "tier" discriminator) in stats lines.
     */
    std::string statsJson() const;

    /**
     * Publish hit/miss/byte counters into the global obs
     * MetricsRegistry (serve.cache.hits, serve.cache.misses,
     * serve.cache.bytes, serve.tier.* ...) when metrics collection
     * is enabled; no-op otherwise.
     */
    void publishMetrics() const;

  private:
    /**
     * Tier 4: run the actual mapper dispatch (mirroring toqm_map's
     * branches).  On a Solved (code 0) delivery the verified mapped
     * circuit is moved into @p solved_out for cache insertion.
     */
    MapResponse execute(const MapRequest &request,
                        const arch::CouplingGraph &graph,
                        ir::MappedCircuit *solved_out);

    ServiceConfig _config;
    ResultCache _cache;

    std::mutex _poolMutex;
    std::unique_ptr<parallel::ThreadPool> _pool;

    std::atomic<std::uint64_t> _requests{0};
    std::atomic<std::uint64_t> _cacheHits{0};
    std::atomic<std::uint64_t> _cacheCanonicalHits{0};
    std::atomic<std::uint64_t> _structuredHits{0};
    std::atomic<std::uint64_t> _searches{0};
    std::atomic<std::uint64_t> _errors{0};
    std::atomic<std::uint64_t> _verifyRejected{0};
};

} // namespace toqm::serve

#endif // TOQM_SERVE_SERVICE_HPP
