/**
 * @file
 * Sharded, bounded, content-addressed result cache for the serve
 * layer.
 *
 * Entries are keyed by the 128-bit canonical request key (canonical
 * circuit form x architecture x mapper parameters x objective; see
 * canonical.hpp) and additionally carry the EXACT fingerprint of the
 * request that produced them, so a lookup can distinguish a
 * byte-exact repeat (stored output is returned verbatim) from a
 * canonical-equivalent variant (layouts must be translated through
 * the canonical labeling and the result re-verified).
 *
 * Concurrency: the key space is split across independently locked
 * shards (shard = key.hi mod shards), so concurrent requests for
 * different circuits never contend.  Within a shard, eviction is
 * strict LRU under a per-shard byte budget — deterministic given the
 * access sequence, which the lifecycle tests pin down.
 */

#ifndef TOQM_SERVE_RESULT_CACHE_HPP
#define TOQM_SERVE_RESULT_CACHE_HPP

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/mapped_circuit.hpp"
#include "serve/canonical.hpp"

namespace toqm::serve {

/** One cached mapping result. */
struct CacheEntry
{
    /** Exact-form fingerprint of the producing request. */
    CanonicalKey exactKey;
    /** Rendered output bytes (what cold toqm_map would print). */
    std::string output;
    /** The mapped circuit, kept for canonical-hit layout translation. */
    ir::MappedCircuit mapped;
    /** Producer's logical qubit -> canonical label (-1 if untouched). */
    std::vector<int> toCanonical;
    /** Mapper that produced the result (response metadata). */
    std::string mapper;
    /** Solution depth in cycles (response metadata). */
    std::int64_t cycles = 0;
    /** Accounted size in bytes (computed on insert). */
    std::size_t bytes = 0;
};

/** Point-in-time cache statistics (all monotonic except bytes/entries). */
struct CacheStats
{
    std::uint64_t hits = 0;          ///< exactHits + canonicalHits
    std::uint64_t exactHits = 0;     ///< byte-exact repeats
    std::uint64_t canonicalHits = 0; ///< relabel/reorder equivalents
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rejected = 0;      ///< entry larger than a shard budget
    std::size_t bytes = 0;           ///< currently resident bytes
    std::size_t entries = 0;         ///< currently resident entries
};

/** Sharded LRU cache; see the file comment. */
class ResultCache
{
  public:
    /**
     * @param max_bytes total byte budget, split evenly across shards
     *        (each shard gets at least one byte so a tiny budget
     *        still admits nothing rather than dividing to zero).
     * @param shards number of independently locked shards (>= 1).
     */
    explicit ResultCache(std::size_t max_bytes, int shards = 8);

    struct Lookup
    {
        bool hit = false;
        /** True when the exact fingerprint matched too. */
        bool exact = false;
        std::shared_ptr<const CacheEntry> entry;
    };

    /**
     * Look up @p canonical; on a hit the entry is promoted to
     * most-recently-used.  @p exact is the request's exact
     * fingerprint, compared against the stored one to classify the
     * hit.
     */
    Lookup find(const CanonicalKey &canonical, const CanonicalKey &exact);

    /**
     * Insert (or replace) the entry for @p canonical.  The entry's
     * byte cost is computed here; entries larger than a shard budget
     * are rejected (counted in stats().rejected).  Eviction runs
     * immediately: least-recently-used entries leave until the shard
     * is within budget.
     */
    void insert(const CanonicalKey &canonical, CacheEntry entry);

    CacheStats stats() const;

    std::size_t maxBytes() const { return _maxBytes; }
    int shardCount() const { return static_cast<int>(_shards.size()); }

  private:
    struct Shard
    {
        mutable std::mutex mutex;
        /** MRU at front; pairs of (key, entry). */
        std::list<std::pair<CanonicalKey,
                            std::shared_ptr<const CacheEntry>>> lru;
        std::unordered_map<CanonicalKey, decltype(lru)::iterator,
                           CanonicalKeyHash> index;
        std::size_t bytes = 0;
        std::uint64_t exactHits = 0;
        std::uint64_t canonicalHits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
        std::uint64_t rejected = 0;
    };

    Shard &shardFor(const CanonicalKey &key)
    {
        return _shards[key.hi % _shards.size()];
    }

    std::size_t _maxBytes;
    std::size_t _shardBudget;
    std::vector<Shard> _shards;
};

/** Approximate heap footprint of @p entry for budget accounting. */
std::size_t cacheEntryBytes(const CacheEntry &entry);

} // namespace toqm::serve

#endif // TOQM_SERVE_RESULT_CACHE_HPP
