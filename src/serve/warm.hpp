/**
 * @file
 * Warm per-architecture state: a process-global memo of constructed
 * coupling graphs.
 *
 * arch::byName() returns a CouplingGraph by value and each
 * construction recomputes the all-pairs distance table (O(V^3)
 * Floyd-Warshall for the dense paper devices) plus the
 * longest-simple-path DFS on first use.  Under repeated traffic —
 * a daemon serving thousands of Tokyo requests, or a manifest whose
 * jobs all target the same device — that is pure fixed cost.
 * ArchCache::lookup() constructs each named architecture once and
 * hands out shared_ptr aliases; the graphs are immutable after
 * construction so sharing across threads is safe.
 *
 * Keyed strictly by the architecture NAME as accepted by
 * arch::byName(); anonymous/custom graphs are not cached.
 */

#ifndef TOQM_SERVE_WARM_HPP
#define TOQM_SERVE_WARM_HPP

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "arch/coupling_graph.hpp"

namespace toqm::serve {

/** Process-global cache of named architectures; see file comment. */
class ArchCache
{
  public:
    /** The process-global instance. */
    static ArchCache &global();

    /**
     * @return the cached graph for @p name, constructing (and
     * memoizing) it on first use.
     * @throws std::invalid_argument for names arch::byName rejects
     *         (nothing is cached for a throwing name).
     */
    std::shared_ptr<const arch::CouplingGraph>
    lookup(const std::string &name);

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::size_t entries = 0;
    };

    Stats stats() const;

    /** Drop all cached graphs (tests). */
    void clear();

  private:
    mutable std::mutex _mutex;
    std::unordered_map<std::string,
                       std::shared_ptr<const arch::CouplingGraph>>
        _graphs;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace toqm::serve

#endif // TOQM_SERVE_WARM_HPP
