/**
 * @file
 * The daemon front-end of the serve layer: a JSON-lines protocol
 * over stdin/stdout or a unix domain socket, driving a MapService.
 *
 * Protocol — one JSON object per input line:
 *
 *   {"id":"r1","qasm":"OPENQASM 2.0; ...","arch":"tokyo",
 *    "mapper":"optimal","latency":[1,2,6],"searchInitial":false,
 *    "noMixing":false,"maxNodes":20000000,"deadlineMs":0,
 *    "maxPoolMb":0,"portfolioSize":4,"cacheable":true}
 *   {"id":"r2","file":"benchmarks/qasm/qft8.qasm","arch":"lnn8"}
 *   {"cmd":"stats"}
 *   {"cmd":"shutdown"}
 *
 * Every field except the circuit source ("qasm" inline text or
 * "file" path, exactly one) is optional and defaults to toqm_map's
 * defaults.  Each request line produces exactly one response line:
 *
 *   {"id":"r1","code":0,"tier":"search","mapper":"optimal",
 *    "cycles":17,"swaps":3,"qasm":"..."}        (success; code may be
 *                                                4/6/7/8 for degraded
 *                                                deliveries)
 *   {"id":"r2","code":2,"error":"unknown ..."}  (failure, no qasm)
 *   {"stats":{...}}                              (for "cmd":"stats")
 *   {"ok":true}                                  (for "cmd":"shutdown")
 *
 * Response `code` follows the toqm_map exit-code taxonomy.  The
 * response `qasm` bytes are exactly what a cold `toqm_map` run with
 * the same flags prints to stdout.
 *
 * Lifecycle: the loop drains on EOF, on {"cmd":"shutdown"} and on a
 * stop request (SIGTERM/SIGINT — the embedding main installs the
 * handlers and calls requestStop()); in every case in-flight work
 * completes, an optional journal records each response durably
 * (PR-8 format: input id, code, byte count, FNV-1a hash), a final
 * stats summary goes to stderr, and the process exits 0.
 */

#ifndef TOQM_SERVE_SERVER_HPP
#define TOQM_SERVE_SERVER_HPP

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "serve/service.hpp"

namespace toqm::parallel {
class Journal;
}

namespace toqm::serve {

/** Ask the running server loop to drain and exit (async-signal-safe). */
void requestStop();

/** True once requestStop() was called. */
bool stopRequested();

/** Reset the stop flag (tests). */
void resetStopFlag();

/** JSON-escape @p text into a double-quoted JSON string literal. */
std::string jsonQuote(const std::string &text);

struct ServerConfig
{
    /** Unix-socket path; empty = stdin/stdout mode. */
    std::string socketPath;
    /** Journal path (PR-8 format); empty = no journal. */
    std::string journalPath;
    /**
     * Stdin mode only: > 1 slurps all request lines first and serves
     * them on the service's warm ThreadPool (responses stay in input
     * order); 1 (default) answers each line as it arrives.
     */
    unsigned jobs = 1;
};

class Server
{
  public:
    Server(ServerConfig config, MapService &service);
    /** Out-of-line: _journal's deleter needs the complete Journal. */
    ~Server();

    /**
     * Serve @p in / @p out until EOF, shutdown command, or
     * requestStop().  @return the process exit code (0 = clean
     * drain, 1 = IO failure e.g. an unopenable journal).
     */
    int runStdio(std::istream &in, std::ostream &out,
                 std::ostream &err);

    /**
     * Bind config.socketPath and serve connections (one at a time,
     * JSON lines per connection) until requestStop() or a shutdown
     * command.  @return process exit code.
     */
    int runSocket(std::ostream &err);

    /**
     * Handle one protocol line.  @return the response line (without
     * trailing newline); empty for blank input lines.  Sets
     * @p shutdown when the line was a shutdown command.
     */
    std::string processLine(const std::string &line, bool &shutdown);

    /** Requests served so far (for the final stderr summary). */
    std::uint64_t served() const { return _served; }

  private:
    /** Parse a request line into a MapRequest; returns false and
     *  fills @p error_response on any malformed field. */
    bool parseRequest(const std::string &line, MapRequest &request,
                      std::string &error_response);

    std::string renderResponse(const MapResponse &response);

    void journalResponse(const MapRequest &request,
                         const MapResponse &response);

    ServerConfig _config;
    MapService &_service;
    std::unique_ptr<parallel::Journal> _journal;
    std::uint64_t _served = 0;
};

} // namespace toqm::serve

#endif // TOQM_SERVE_SERVER_HPP
