#include "serve/structured.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "arch/architectures.hpp"
#include "ir/generators.hpp"
#include "qftopt/qft_patterns.hpp"
#include "sim/verifier.hpp"

namespace toqm::serve {

namespace {

/** Canonical form of ir::qftSkeleton(n), memoized per n. */
const CanonicalForm &skeletonForm(int n)
{
    static std::mutex mutex;
    static std::unordered_map<int, CanonicalForm> cache;
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(n);
    if (it == cache.end())
        it = cache.emplace(n, canonicalizeCircuit(ir::qftSkeleton(n)))
                 .first;
    return it->second;
}

/** True if the uniform-1-cycle QFT latency convention holds. */
bool isUniformUnitLatency(const ir::LatencyModel &latency)
{
    return latency.latency(ir::Gate(ir::GateKind::H, 0)) == 1 &&
           latency.latency(ir::Gate(ir::GateKind::GT, 0, 1)) == 1 &&
           latency.latency(ir::Gate(ir::GateKind::Swap, 0, 1)) == 1;
}

/** Edge-set equality (both lists are deduplicated first < second). */
bool sameTopology(const arch::CouplingGraph &a,
                  const arch::CouplingGraph &b)
{
    if (a.numQubits() != b.numQubits()) return false;
    auto ea = a.edges();
    auto eb = b.edges();
    std::sort(ea.begin(), ea.end());
    std::sort(eb.begin(), eb.end());
    return ea == eb;
}

} // namespace

StructuredMatch structuredLookup(const ir::Circuit &circuit,
                                 const CanonicalForm &form,
                                 const arch::CouplingGraph &graph,
                                 const ir::LatencyModel &latency,
                                 bool allow_concurrent_swap_and_gate)
{
    StructuredMatch miss;
    const int n = circuit.numQubits();
    // Smallest structured instance the generators cover; anything
    // smaller is trivial for the search tier anyway.
    if (n < 4 || graph.numQubits() != n)
        return miss;
    if (!isUniformUnitLatency(latency))
        return miss;
    // Quick gate-count reject before any text comparison: the
    // skeleton has exactly n(n-1)/2 GT gates.
    if (circuit.size() != n * (n - 1) / 2)
        return miss;

    const CanonicalForm &skeleton = skeletonForm(n);
    if (form.text != skeleton.text)
        return miss;

    const qftopt::StructuredSolution *chosen = nullptr;
    qftopt::StructuredSolution solution{graph, {}};
    std::string pattern;
    if (sameTopology(graph, arch::lnn(n))) {
        solution = qftopt::qftLnnButterfly(n);
        pattern = "qft-lnn-butterfly";
        chosen = &solution;
    } else if (n % 2 == 0 && sameTopology(graph, arch::grid(2, n / 2))) {
        solution = allow_concurrent_swap_and_gate
                       ? qftopt::qftGrid2xnMixed(n)
                       : qftopt::qftGrid2xnUnmixed(n);
        pattern = allow_concurrent_swap_and_gate ? "qft-grid2xn-mixed"
                                                 : "qft-grid2xn-unmixed";
        chosen = &solution;
    }
    if (!chosen)
        return miss;

    // Translate the skeleton-labeled solution into the request's
    // labels: request qubit b plays the role of the skeleton qubit a
    // with the same canonical label.  The skeleton touches every
    // qubit, so every label is assigned on both sides.
    std::vector<int> canonicalToSkeleton(static_cast<std::size_t>(n), -1);
    for (int a = 0; a < n; ++a) {
        const int label = skeleton.toCanonical[static_cast<std::size_t>(a)];
        if (label < 0 || label >= n)
            return miss;
        canonicalToSkeleton[static_cast<std::size_t>(label)] = a;
    }
    ir::MappedCircuit mapped = chosen->toMappedCircuit();
    std::vector<int> initial(static_cast<std::size_t>(n));
    std::vector<int> final_layout(static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b) {
        const int label = form.toCanonical[static_cast<std::size_t>(b)];
        if (label < 0 || label >= n)
            return miss;
        const int a = canonicalToSkeleton[static_cast<std::size_t>(label)];
        if (a < 0)
            return miss;
        initial[static_cast<std::size_t>(b)] =
            mapped.initialLayout[static_cast<std::size_t>(a)];
        final_layout[static_cast<std::size_t>(b)] =
            mapped.finalLayout[static_cast<std::size_t>(a)];
    }
    mapped.initialLayout = std::move(initial);
    mapped.finalLayout = std::move(final_layout);

    // Mandatory independent check: a translation bug must surface as
    // a miss here, never as a wrong response.
    if (!sim::verifyMapping(circuit, mapped, graph))
        return miss;

    StructuredMatch match;
    match.matched = true;
    match.pattern = std::move(pattern);
    match.mapped = std::move(mapped);
    match.cycles = chosen->depth();
    return match;
}

} // namespace toqm::serve
