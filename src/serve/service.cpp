#include "serve/service.hpp"

#include <optional>
#include <stdexcept>
#include <utility>

#include "baselines/sabre.hpp"
#include "baselines/zulehner.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/latency.hpp"
#include "ir/schedule.hpp"
#include "obs/observer.hpp"
#include "parallel/portfolio.hpp"
#include "qasm/writer.hpp"
#include "search/resource_guard.hpp"
#include "serve/canonical.hpp"
#include "serve/structured.hpp"
#include "serve/warm.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

namespace toqm::serve {

namespace {

/**
 * Serialize every output-affecting request parameter.  Anything that
 * can change the emitted bytes MUST appear here: two requests share
 * a cache key only when a cold toqm_map run would answer both with
 * the same bytes.
 */
std::string configText(const MapRequest &request, bool structured_tier)
{
    std::string text;
    text += "arch=" + request.arch;
    text += ";mapper=" + request.mapper;
    text += ";lat=" + std::to_string(request.lat1) + "," +
            std::to_string(request.lat2) + "," +
            std::to_string(request.lats);
    text += ";si=" + std::to_string(request.searchInitial ? 1 : 0);
    text += ";nm=" + std::to_string(request.noMixing ? 1 : 0);
    text += ";mn=" + std::to_string(request.maxNodes);
    text += ";dl=" + std::to_string(request.deadlineMs);
    text += ";mp=" + std::to_string(request.maxPoolMb);
    text += ";pf=" + std::to_string(request.portfolioSize);
    text += ";st=" + std::to_string(structured_tier ? 1 : 0);
    text += ";obj=cycles;layout=auto";
    return text;
}

/**
 * Translate a cached mapping into the requesting circuit's qubit
 * labels: request qubit b plays the role of producer qubit a with
 * the same canonical label; qubits no gate touches (label -1 on both
 * sides, same count because the canonical text fixes n and the
 * number of labels) pair by increasing index.
 * @return false if the label bookkeeping does not line up (contained
 *         as a miss by the caller, never served).
 */
bool translateLayouts(const CacheEntry &entry, const CanonicalForm &form,
                      int num_qubits, ir::MappedCircuit &out)
{
    const auto n = static_cast<std::size_t>(num_qubits);
    if (entry.toCanonical.size() != n || form.toCanonical.size() != n)
        return false;
    std::vector<int> labelToProducer(n, -1);
    std::vector<int> unlabeledProducer;
    for (int a = 0; a < num_qubits; ++a) {
        const int label = entry.toCanonical[static_cast<std::size_t>(a)];
        if (label < 0)
            unlabeledProducer.push_back(a);
        else if (label < num_qubits)
            labelToProducer[static_cast<std::size_t>(label)] = a;
        else
            return false;
    }
    out.physical = entry.mapped.physical;
    out.initialLayout.assign(n, -1);
    out.finalLayout.assign(n, -1);
    std::size_t nextUnlabeled = 0;
    for (int b = 0; b < num_qubits; ++b) {
        const int label = form.toCanonical[static_cast<std::size_t>(b)];
        int a = -1;
        if (label < 0) {
            if (nextUnlabeled >= unlabeledProducer.size())
                return false;
            a = unlabeledProducer[nextUnlabeled++];
        } else if (label < num_qubits) {
            a = labelToProducer[static_cast<std::size_t>(label)];
        }
        if (a < 0)
            return false;
        out.initialLayout[static_cast<std::size_t>(b)] =
            entry.mapped.initialLayout[static_cast<std::size_t>(a)];
        out.finalLayout[static_cast<std::size_t>(b)] =
            entry.mapped.finalLayout[static_cast<std::size_t>(a)];
    }
    return true;
}

void appendCounter(std::string &json, const char *key,
                   std::uint64_t value, bool &first)
{
    if (!first)
        json += ',';
    first = false;
    json += '"';
    json += key;
    json += "\":";
    json += std::to_string(value);
}

} // namespace

int exitCodeForStatus(search::SearchStatus status)
{
    switch (status) {
      case search::SearchStatus::Solved:
        return 0;
      case search::SearchStatus::BudgetExhausted:
        return 4;
      case search::SearchStatus::Infeasible:
        return 5;
      case search::SearchStatus::DeadlineExceeded:
        return 6;
      case search::SearchStatus::MemoryExhausted:
        return 7;
      case search::SearchStatus::Cancelled:
        return 8;
    }
    return 1;
}

MapService::MapService(ServiceConfig config)
    : _config(config),
      _cache(config.cacheBytes, config.cacheShards)
{}

MapResponse MapService::handle(const MapRequest &request)
{
    _requests.fetch_add(1, std::memory_order_relaxed);
    MapResponse response;
    response.id = request.id;

    std::shared_ptr<const arch::CouplingGraph> graph;
    try {
        graph = ArchCache::global().lookup(request.arch);
    } catch (const std::invalid_argument &e) {
        _errors.fetch_add(1, std::memory_order_relaxed);
        response.code = 2;
        response.error = e.what();
        return response;
    }
    if (request.circuit.numQubits() > graph->numQubits()) {
        _errors.fetch_add(1, std::memory_order_relaxed);
        response.code = 1;
        response.error = "circuit needs " +
                         std::to_string(request.circuit.numQubits()) +
                         " qubits but " + request.arch + " has " +
                         std::to_string(graph->numQubits());
        return response;
    }

    // Tier 1: canonical front-end.  Above the gate limit the exact
    // form doubles as the canonical one (still a correct key — it
    // just stops relabel/reorder variants from colliding).
    const std::string cfg = configText(request, _config.structuredTier);
    const std::string exactText =
        exactCircuitText(request.circuit) + "\n" + cfg;
    const CanonicalKey exactKey = hashText(exactText);
    CanonicalForm form;
    CanonicalKey canonicalKey;
    const bool canonicalized =
        request.circuit.size() <= kCanonicalGateLimit;
    if (canonicalized) {
        form = canonicalizeCircuit(request.circuit);
        canonicalKey = hashText(form.text + "\n" + cfg);
    } else {
        canonicalKey = exactKey;
    }

    const bool useCache = request.cacheable && _config.cacheBytes > 0;

    // Tier 2: content-addressed result cache.
    if (useCache) {
        const ResultCache::Lookup found =
            _cache.find(canonicalKey, exactKey);
        if (found.hit && found.exact) {
            _cacheHits.fetch_add(1, std::memory_order_relaxed);
            response.tier = "cache";
            response.mapper = found.entry->mapper;
            response.cycles = found.entry->cycles;
            response.swaps = found.entry->mapped.physical.numSwaps();
            response.output = found.entry->output;
            return response;
        }
        if (found.hit && canonicalized) {
            ir::MappedCircuit translated;
            if (translateLayouts(*found.entry, form,
                                 request.circuit.numQubits(),
                                 translated) &&
                sim::verifyMapping(request.circuit, translated,
                                   *graph)) {
                _cacheCanonicalHits.fetch_add(
                    1, std::memory_order_relaxed);
                response.tier = "cache-canonical";
                response.mapper = found.entry->mapper;
                response.cycles = found.entry->cycles;
                response.swaps = translated.physical.numSwaps();
                response.output = qasm::writeMappedCircuit(translated);
                return response;
            }
            // Translation did not hold up; fall through to the next
            // tier rather than ever serving an unverified answer.
            _verifyRejected.fetch_add(1, std::memory_order_relaxed);
        }
    }

    // Tier 3: structured-solution lookup.
    if (_config.structuredTier && canonicalized) {
        const ir::LatencyModel latency(request.lat1, request.lat2,
                                       request.lats);
        StructuredMatch match = structuredLookup(
            request.circuit, form, *graph, latency, !request.noMixing);
        if (match) {
            _structuredHits.fetch_add(1, std::memory_order_relaxed);
            response.tier = "structured";
            response.mapper = match.pattern;
            response.cycles = match.cycles;
            response.swaps = match.mapped.physical.numSwaps();
            response.output = qasm::writeMappedCircuit(match.mapped);
            return response;
        }
    }

    // Tier 4: warm search.
    ir::MappedCircuit mapped;
    response = execute(request, *graph, &mapped);
    response.id = request.id;
    if (response.code == 0 && useCache && canonicalized) {
        CacheEntry entry;
        entry.exactKey = exactKey;
        entry.output = response.output;
        entry.mapper = response.mapper;
        entry.cycles = response.cycles;
        entry.toCanonical = form.toCanonical;
        entry.mapped = std::move(mapped);
        _cache.insert(canonicalKey, std::move(entry));
    }
    return response;
}

MapResponse MapService::execute(const MapRequest &request,
                                const arch::CouplingGraph &graph,
                                ir::MappedCircuit *solved_out)
{
    MapResponse response;
    response.tier = "search";
    _searches.fetch_add(1, std::memory_order_relaxed);

    const ir::LatencyModel latency(request.lat1, request.lat2,
                                   request.lats);
    search::GuardConfig guard;
    guard.deadlineMs = request.deadlineMs;
    guard.maxPoolBytes = request.maxPoolMb * 1024ull * 1024ull;
    guard.honorCancellation = true;

    ir::MappedCircuit mapped;
    search::SearchStatus status = search::SearchStatus::Solved;
    try {
        if (request.mapper == "optimal") {
            core::MapperConfig config;
            config.latency = latency;
            config.searchInitialMapping = request.searchInitial;
            config.allowConcurrentSwapAndGate = !request.noMixing;
            config.maxExpandedNodes = request.maxNodes;
            config.guard = guard;
            core::OptimalMapper mapper(graph, config);
            const auto res = mapper.map(request.circuit, std::nullopt);
            if (!res.success) {
                _errors.fetch_add(1, std::memory_order_relaxed);
                response.code = exitCodeForStatus(res.status);
                response.error = std::string("optimal search stopped (") +
                                 search::toString(res.status) + ")";
                return response;
            }
            status = res.status;
            mapped = res.mapped;
            response.mapper = "optimal";
            response.cycles = res.cycles;
        } else if (request.mapper == "heuristic") {
            heuristic::HeuristicConfig config;
            config.latency = latency;
            config.guard = guard;
            heuristic::HeuristicMapper mapper(graph, config);
            const auto res = mapper.map(request.circuit, std::nullopt);
            if (!res.success) {
                _errors.fetch_add(1, std::memory_order_relaxed);
                response.code = exitCodeForStatus(res.status);
                if (response.code == 0 || response.code == 5)
                    response.code = 1;
                response.error =
                    std::string("heuristic search failed (") +
                    search::toString(res.status) + ")";
                return response;
            }
            status = res.status;
            mapped = res.mapped;
            response.mapper = "heuristic";
            response.cycles = res.cycles;
        } else if (request.mapper == "sabre") {
            baselines::SabreMapper mapper(graph);
            const auto res = mapper.map(request.circuit);
            if (!res.success) {
                _errors.fetch_add(1, std::memory_order_relaxed);
                response.code = 1;
                response.error = "SABRE failed";
                return response;
            }
            mapped = res.mapped;
            response.mapper = "sabre";
            response.cycles =
                ir::scheduleAsap(mapped.physical, latency).makespan;
        } else if (request.mapper == "zulehner") {
            baselines::ZulehnerConfig config;
            config.guard = guard;
            baselines::ZulehnerMapper mapper(graph, config);
            const auto res = mapper.map(request.circuit);
            if (!res.success) {
                _errors.fetch_add(1, std::memory_order_relaxed);
                response.code = 1;
                response.error = "Zulehner failed";
                return response;
            }
            status = res.status;
            mapped = res.mapped;
            response.mapper = "zulehner";
            response.cycles =
                ir::scheduleAsap(mapped.physical, latency).makespan;
        } else if (request.mapper == "portfolio") {
            core::MapperConfig base;
            base.latency = latency;
            base.searchInitialMapping = request.searchInitial;
            base.allowConcurrentSwapAndGate = !request.noMixing;
            base.maxExpandedNodes = request.maxNodes;
            parallel::PortfolioConfig pcfg = parallel::defaultPortfolio(
                base, request.portfolioSize);
            pcfg.guard = guard;
            parallel::PortfolioMapper mapper(graph, pcfg);
            const auto res = mapper.map(request.circuit, std::nullopt);
            if (!res.success) {
                _errors.fetch_add(1, std::memory_order_relaxed);
                response.code = exitCodeForStatus(res.status);
                if (response.code == 0)
                    response.code = 1;
                response.error =
                    std::string("every portfolio entry stopped (") +
                    search::toString(res.status) + ")";
                return response;
            }
            status = res.status;
            mapped = res.mapped;
            response.mapper = "portfolio";
            response.cycles = res.cycles;
        } else {
            _errors.fetch_add(1, std::memory_order_relaxed);
            response.code = 2;
            response.error = "unknown mapper: " + request.mapper;
            return response;
        }
    } catch (const std::bad_alloc &) {
        _errors.fetch_add(1, std::memory_order_relaxed);
        response.code = 7;
        response.error = "out of memory";
        return response;
    } catch (const std::exception &e) {
        _errors.fetch_add(1, std::memory_order_relaxed);
        response.code = 1;
        response.error = e.what();
        return response;
    }

    // Mandatory verification gate, mirroring toqm_map: no circuit
    // leaves the service unverified, whatever path produced it.
    const auto verdict =
        sim::verifyMapping(request.circuit, mapped, graph);
    if (!verdict.ok) {
        _errors.fetch_add(1, std::memory_order_relaxed);
        response.code = 3;
        response.error = "VERIFICATION FAILED: " + verdict.message;
        return response;
    }

    response.swaps = mapped.physical.numSwaps();
    response.output = qasm::writeMappedCircuit(mapped);
    // Degraded (guard-stopped) deliveries keep the taxonomy code;
    // only Solved results are cacheable — a deadline-shaped answer
    // must never be replayed as if it were the real one.
    response.code =
        status == search::SearchStatus::Solved ? 0
                                               : exitCodeForStatus(status);
    if (response.code == 0 && solved_out != nullptr)
        *solved_out = std::move(mapped);
    return response;
}

std::vector<MapResponse>
MapService::handleBatch(const std::vector<MapRequest> &requests)
{
    parallel::ThreadPool *pool = nullptr;
    {
        std::lock_guard<std::mutex> lock(_poolMutex);
        if (!_pool)
            _pool = std::make_unique<parallel::ThreadPool>(
                _config.workers);
        pool = _pool.get();
    }
    std::vector<MapResponse> responses(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
        pool->submit([this, &requests, &responses, i] {
            responses[i] = handle(requests[i]);
        });
    }
    pool->wait();
    return responses;
}

TierCounters MapService::tierCounters() const
{
    TierCounters c;
    c.requests = _requests.load(std::memory_order_relaxed);
    c.cacheHits = _cacheHits.load(std::memory_order_relaxed);
    c.cacheCanonicalHits =
        _cacheCanonicalHits.load(std::memory_order_relaxed);
    c.structuredHits = _structuredHits.load(std::memory_order_relaxed);
    c.searches = _searches.load(std::memory_order_relaxed);
    c.errors = _errors.load(std::memory_order_relaxed);
    c.verifyRejected = _verifyRejected.load(std::memory_order_relaxed);
    return c;
}

std::string MapService::statsJson() const
{
    const TierCounters tiers = tierCounters();
    const CacheStats cache = _cache.stats();
    const ArchCache::Stats archStats = ArchCache::global().stats();
    std::string json = "{";
    bool first = true;
    appendCounter(json, "requests", tiers.requests, first);
    json += ",\"tier\":{";
    first = true;
    appendCounter(json, "cache", tiers.cacheHits, first);
    appendCounter(json, "cache_canonical", tiers.cacheCanonicalHits,
                  first);
    appendCounter(json, "structured", tiers.structuredHits, first);
    appendCounter(json, "search", tiers.searches, first);
    appendCounter(json, "errors", tiers.errors, first);
    appendCounter(json, "verify_rejected", tiers.verifyRejected, first);
    json += "},\"cache\":{";
    first = true;
    appendCounter(json, "hits", cache.hits, first);
    appendCounter(json, "exact_hits", cache.exactHits, first);
    appendCounter(json, "canonical_hits", cache.canonicalHits, first);
    appendCounter(json, "misses", cache.misses, first);
    appendCounter(json, "insertions", cache.insertions, first);
    appendCounter(json, "evictions", cache.evictions, first);
    appendCounter(json, "rejected", cache.rejected, first);
    appendCounter(json, "bytes", cache.bytes, first);
    appendCounter(json, "entries", cache.entries, first);
    appendCounter(json, "max_bytes", _cache.maxBytes(), first);
    appendCounter(json, "shards",
                  static_cast<std::uint64_t>(_cache.shardCount()),
                  first);
    json += "},\"arch\":{";
    first = true;
    appendCounter(json, "hits", archStats.hits, first);
    appendCounter(json, "misses", archStats.misses, first);
    appendCounter(json, "entries", archStats.entries, first);
    json += "}}";
    return json;
}

void MapService::publishMetrics() const
{
    obs::Observer &observer = obs::Observer::global();
    if (!observer.metricsEnabled())
        return;
    const TierCounters tiers = tierCounters();
    const CacheStats cache = _cache.stats();
    obs::MetricsRegistry &metrics = observer.metrics();
    metrics.setGauge("serve.requests",
                     static_cast<double>(tiers.requests));
    metrics.setGauge("serve.tier.cache",
                     static_cast<double>(tiers.cacheHits));
    metrics.setGauge("serve.tier.cache_canonical",
                     static_cast<double>(tiers.cacheCanonicalHits));
    metrics.setGauge("serve.tier.structured",
                     static_cast<double>(tiers.structuredHits));
    metrics.setGauge("serve.tier.search",
                     static_cast<double>(tiers.searches));
    metrics.setGauge("serve.cache.hits",
                     static_cast<double>(cache.hits));
    metrics.setGauge("serve.cache.misses",
                     static_cast<double>(cache.misses));
    metrics.setGauge("serve.cache.evictions",
                     static_cast<double>(cache.evictions));
    metrics.setGauge("serve.cache.bytes",
                     static_cast<double>(cache.bytes));
    metrics.setGauge("serve.cache.entries",
                     static_cast<double>(cache.entries));
}

} // namespace toqm::serve
