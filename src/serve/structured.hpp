/**
 * @file
 * Structured-solution lookup tier: recognize requests whose answer
 * is already known in closed form (the Section 6.1 QFT families in
 * src/qftopt/) and answer them without any search.
 *
 * A request matches when ALL of the following hold:
 *  - the circuit's canonical form equals the canonical form of
 *    ir::qftSkeleton(n) — so relabeled and commuting-reordered QFT
 *    skeletons match too;
 *  - the architecture's edge set equals arch::lnn(n), or n is even
 *    and it equals arch::grid(2, n/2);
 *  - the latency model is the uniform qftPreset (every gate,
 *    including swap, one cycle) that the closed-form depth analysis
 *    assumes.
 *
 * The structured solution is translated into the REQUEST's qubit
 * labels through the canonical labeling and then re-verified with
 * the structural verifier; any mismatch degrades to a miss, never to
 * a wrong answer.
 */

#ifndef TOQM_SERVE_STRUCTURED_HPP
#define TOQM_SERVE_STRUCTURED_HPP

#include <cstdint>
#include <string>

#include "arch/coupling_graph.hpp"
#include "ir/circuit.hpp"
#include "ir/latency.hpp"
#include "ir/mapped_circuit.hpp"
#include "serve/canonical.hpp"

namespace toqm::serve {

/** Result of a structured-tier lookup. */
struct StructuredMatch
{
    bool matched = false;
    /** Which pattern answered (e.g. "qft-lnn-butterfly"). */
    std::string pattern;
    /** The solution, in the request's qubit labels, verified. */
    ir::MappedCircuit mapped;
    /** Depth in cycles of the structured schedule. */
    std::int64_t cycles = 0;

    explicit operator bool() const { return matched; }
};

/**
 * Try to answer @p circuit on @p graph from the structured QFT
 * families.  @p form must be canonicalizeCircuit(circuit).
 * @p allow_concurrent_swap_and_gate selects between the mixed
 * (Fig 13b) and unmixed (Fig 13c) grid schedules, mirroring the
 * mapper's scheduling freedom.
 */
StructuredMatch structuredLookup(const ir::Circuit &circuit,
                                 const CanonicalForm &form,
                                 const arch::CouplingGraph &graph,
                                 const ir::LatencyModel &latency,
                                 bool allow_concurrent_swap_and_gate);

} // namespace toqm::serve

#endif // TOQM_SERVE_STRUCTURED_HPP
