#include "serve/canonical.hpp"

#include <algorithm>
#include <cstdio>

namespace toqm::serve {

namespace {

/** Append a double with round-trip precision (%.17g). */
void appendParam(std::string &out, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += buf;
}

/**
 * Append the label-free part of a gate description: kind mnemonic
 * (or the opaque name for Other) plus the parameter list.
 */
void appendGateToken(std::string &out, const ir::Gate &g)
{
    if (g.kind() == ir::GateKind::Other) {
        out += "other:";
        out += g.name();
    } else {
        out += ir::gateKindName(g.kind());
    }
    if (!g.params().empty()) {
        out += '(';
        for (std::size_t i = 0; i < g.params().size(); ++i) {
            if (i) out += ',';
            appendParam(out, g.params()[i]);
        }
        out += ')';
    }
}

/**
 * Per-qubit dependency signature: the sequence of (gate token,
 * operand position) pairs along q's gate chain.  The chain order is
 * fixed by the dependency DAG (gates sharing q never commute past
 * each other), and the content mentions no qubit labels, so the
 * signature is invariant under both relabeling and commuting
 * reorder.
 */
std::vector<std::string> qubitSignatures(const ir::Circuit &circuit)
{
    std::vector<std::string> sig(
        static_cast<std::size_t>(circuit.numQubits()));
    for (const ir::Gate &g : circuit.gates()) {
        for (int i = 0; i < g.numQubits(); ++i) {
            std::string &s = sig[static_cast<std::size_t>(g.qubit(i))];
            appendGateToken(s, g);
            s += '@';
            s += static_cast<char>('0' + i);
            s += ';';
        }
    }
    return sig;
}

/** Three-way compare of two parameter lists. */
int cmpParams(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
    }
    return 0;
}

/**
 * Label-invariant three-way compare of two ready gates.  Operands
 * with an assigned canonical label compare by label (and before any
 * unassigned operand — they are "older" in the canonical order);
 * unassigned operands compare by their qubit signatures.
 */
int cmpReady(const ir::Gate &a, const ir::Gate &b,
             const std::vector<int> &toCanonical,
             const std::vector<std::string> &sig)
{
    if (a.kind() != b.kind())
        return a.kind() < b.kind() ? -1 : 1;
    if (a.kind() == ir::GateKind::Other && a.name() != b.name())
        return a.name() < b.name() ? -1 : 1;
    if (int c = cmpParams(a.params(), b.params()); c != 0) return c;
    if (a.numQubits() != b.numQubits())
        return a.numQubits() < b.numQubits() ? -1 : 1;
    for (int i = 0; i < a.numQubits(); ++i) {
        const int qa = a.qubit(i);
        const int qb = b.qubit(i);
        const int la = toCanonical[static_cast<std::size_t>(qa)];
        const int lb = toCanonical[static_cast<std::size_t>(qb)];
        if ((la >= 0) != (lb >= 0)) return la >= 0 ? -1 : 1;
        if (la >= 0) {
            if (la != lb) return la < lb ? -1 : 1;
        } else if (int c = sig[static_cast<std::size_t>(qa)].compare(
                       sig[static_cast<std::size_t>(qb)]);
                   c != 0) {
            return c < 0 ? -1 : 1;
        }
    }
    return 0;
}

} // namespace

std::uint64_t fnv1a64(const void *data, std::size_t size,
                      std::uint64_t basis)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t hash = basis;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

CanonicalKey hashText(const std::string &text)
{
    CanonicalKey key;
    key.hi = fnv1a64(text.data(), text.size());
    // Second stream: different basis (FNV basis xor a salt) so the
    // two 64-bit halves fail independently.
    key.lo = fnv1a64(text.data(), text.size(),
                     0xcbf29ce484222325ull ^ 0x5bd1e995u);
    return key;
}

std::string CanonicalKey::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

CanonicalForm canonicalizeCircuit(const ir::Circuit &circuit)
{
    const int numGates = circuit.size();
    const int numQubits = circuit.numQubits();

    CanonicalForm form;
    form.toCanonical.assign(static_cast<std::size_t>(numQubits), -1);
    form.gateOrder.reserve(static_cast<std::size_t>(numGates));

    // Dependency DAG: for each gate the immediate predecessor on
    // each operand qubit (deduplicated), plus successor lists for
    // indegree decrement.
    std::vector<int> indegree(static_cast<std::size_t>(numGates), 0);
    std::vector<std::vector<int>> successors(
        static_cast<std::size_t>(numGates));
    {
        std::vector<int> lastOnQubit(static_cast<std::size_t>(numQubits),
                                     -1);
        for (int i = 0; i < numGates; ++i) {
            const ir::Gate &g = circuit.gate(i);
            int prev0 = -1;
            for (int k = 0; k < g.numQubits(); ++k) {
                const auto q = static_cast<std::size_t>(g.qubit(k));
                const int prev = lastOnQubit[q];
                lastOnQubit[q] = i;
                if (prev < 0 || prev == prev0)
                    continue; // dedup: both operands share the pred
                successors[static_cast<std::size_t>(prev)].push_back(i);
                ++indegree[static_cast<std::size_t>(i)];
                prev0 = prev;
            }
        }
    }

    const std::vector<std::string> sig = qubitSignatures(circuit);

    std::vector<int> ready;
    for (int i = 0; i < numGates; ++i) {
        if (indegree[static_cast<std::size_t>(i)] == 0)
            ready.push_back(i);
    }

    int nextLabel = 0;
    form.text = "n=" + std::to_string(numQubits) + ";";
    while (!ready.empty()) {
        // Pick the minimal ready gate under the label-invariant
        // order; equal keys fall back to the smallest original index
        // (reached only for genuinely symmetric circuits, where
        // either choice yields the same canonical text).
        std::size_t best = 0;
        for (std::size_t j = 1; j < ready.size(); ++j) {
            const int c = cmpReady(circuit.gate(ready[j]),
                                   circuit.gate(ready[best]),
                                   form.toCanonical, sig);
            if (c < 0 || (c == 0 && ready[j] < ready[best]))
                best = j;
        }
        const int gi = ready[best];
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(best));

        const ir::Gate &g = circuit.gate(gi);
        for (int k = 0; k < g.numQubits(); ++k) {
            int &label =
                form.toCanonical[static_cast<std::size_t>(g.qubit(k))];
            if (label < 0)
                label = nextLabel++;
        }
        appendGateToken(form.text, g);
        for (int k = 0; k < g.numQubits(); ++k) {
            form.text += k ? ',' : ' ';
            form.text += std::to_string(
                form.toCanonical[static_cast<std::size_t>(g.qubit(k))]);
        }
        form.text += ';';
        form.gateOrder.push_back(gi);

        for (int next : successors[static_cast<std::size_t>(gi)]) {
            if (--indegree[static_cast<std::size_t>(next)] == 0)
                ready.push_back(next);
        }
    }
    return form;
}

std::string exactCircuitText(const ir::Circuit &circuit)
{
    std::string text = "n=" + std::to_string(circuit.numQubits()) + ";";
    for (const ir::Gate &g : circuit.gates()) {
        appendGateToken(text, g);
        for (int k = 0; k < g.numQubits(); ++k) {
            text += k ? ',' : ' ';
            text += std::to_string(g.qubit(k));
        }
        text += ';';
    }
    return text;
}

} // namespace toqm::serve
