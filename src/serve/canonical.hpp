/**
 * @file
 * Canonical circuit forms and content-addressed request keys for the
 * serve layer.
 *
 * Two requests that describe the SAME mapping problem must land on
 * the same cache key even when their circuits differ textually:
 *
 *  - qubit relabeling: the same gate sequence with logical qubits
 *    renamed describes the same problem up to a permutation of the
 *    layouts;
 *  - commuting reorder: two topological orders of the same
 *    dependency DAG (gates on disjoint qubits listed in either
 *    order) schedule identically.
 *
 * canonicalizeCircuit() normalizes both: it emits the gates in a
 * deterministic greedy topological order whose tie-breaks use only
 * label-invariant data (gate kind, parameters, per-qubit dependency
 * signatures), assigning canonical qubit labels by first use in that
 * order.  The canonicalization is SOUND for caching in the safe
 * direction — equal canonical text implies DAG-equal circuits up to
 * relabeling, and every translated cache hit is re-verified before
 * emission — while equivalence detection is best-effort complete: a
 * pathologically symmetric circuit pair may canonicalize differently
 * (costing a cache miss, never a wrong result).
 *
 * Keys are 128 bits (two independent 64-bit FNV-1a streams) so
 * accidental collisions are out of the engineering picture; the
 * cache additionally stores the exact-form fingerprint so byte-exact
 * repeats are distinguished from canonical-equivalent variants.
 */

#ifndef TOQM_SERVE_CANONICAL_HPP
#define TOQM_SERVE_CANONICAL_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/circuit.hpp"

namespace toqm::serve {

/** A 128-bit content hash (two independent 64-bit streams). */
struct CanonicalKey
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const CanonicalKey &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool operator!=(const CanonicalKey &o) const { return !(*this == o); }

    /** 32-hex-digit rendering (for journals, logs, tests). */
    std::string hex() const;
};

/** Hash functor so CanonicalKey can key unordered containers. */
struct CanonicalKeyHash
{
    std::size_t operator()(const CanonicalKey &k) const
    {
        // hi and lo are already independent hashes; fold cheaply.
        return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ull));
    }
};

/** FNV-1a over @p size bytes starting from @p basis. */
std::uint64_t fnv1a64(const void *data, std::size_t size,
                      std::uint64_t basis = 0xcbf29ce484222325ull);

/** Two independent 64-bit hashes of @p text as one 128-bit key. */
CanonicalKey hashText(const std::string &text);

/** The canonical form of a circuit (see the file comment). */
struct CanonicalForm
{
    /**
     * Deterministic serialization of the canonical circuit:
     * `n=<qubits>;` followed by one `<kind>[(params)] <labels>;`
     * entry per gate in canonical order with canonical labels.
     */
    std::string text;
    /**
     * Original logical label -> canonical label; -1 for qubits no
     * gate touches (they receive no canonical label).
     */
    std::vector<int> toCanonical;
    /** Canonical position -> original gate index. */
    std::vector<int> gateOrder;
};

/**
 * Canonicalize @p circuit.  Cost is O(gates * max_ready_width); the
 * serve layer caps participation at kCanonicalGateLimit gates and
 * falls back to the exact form above that (see exactCircuitText).
 */
CanonicalForm canonicalizeCircuit(const ir::Circuit &circuit);

/**
 * Gate count above which the cache keys on the exact form only
 * (canonicalizing a Table-3-sized circuit would cost more than the
 * hash saves).
 */
constexpr int kCanonicalGateLimit = 50'000;

/**
 * Exact serialization: original gate order, original labels.  Two
 * byte-identical problem statements — and only those — share it.
 */
std::string exactCircuitText(const ir::Circuit &circuit);

} // namespace toqm::serve

#endif // TOQM_SERVE_CANONICAL_HPP
