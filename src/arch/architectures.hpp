/**
 * @file
 * Factory functions for the architectures used in the paper's
 * evaluation (Sections 3 and 6): linear nearest neighbor chains, 2D
 * grids, IBM QX2, IBM Q20 Tokyo, IBM Melbourne (2xN ladder), and a
 * Rigetti Aspen-4-style double octagon.
 */

#ifndef TOQM_ARCH_ARCHITECTURES_HPP
#define TOQM_ARCH_ARCHITECTURES_HPP

#include <string>
#include <vector>

#include "coupling_graph.hpp"

namespace toqm::arch {

/** Linear nearest neighbor chain of @p n qubits (Fig 2a). */
CouplingGraph lnn(int n);

/**
 * @p rows x @p cols nearest-neighbor grid, row-major indexing
 * (qubit (r, c) has index r*cols + c).  grid(2, N) is the paper's 2xN
 * architecture (Fig 3).
 */
CouplingGraph grid(int rows, int cols);

/** IBM QX2 "bowtie": 5 qubits (Table 1's architecture). */
CouplingGraph ibmQX2();

/**
 * IBM Q20 Tokyo: 20 qubits, 4x5 grid plus the crossing diagonals
 * (Table 3's architecture, as in the SABRE paper).
 */
CouplingGraph ibmQ20Tokyo();

/** IBM Melbourne modeled as the paper models it: a 2x7 ladder. */
CouplingGraph ibmMelbourne();

/**
 * Rigetti Aspen-4-style device: two octagonal rings (16 qubits)
 * joined by two bridge links (Table 2's QUEKO architecture).
 */
CouplingGraph aspen4();

/** Ring of @p n qubits (an LNN chain with the ends joined). */
CouplingGraph ring(int n);

/** Star: qubit 0 coupled to every other qubit. */
CouplingGraph star(int n);

/** Fully connected (the "ideal" architecture of the paper's
 *  ideal-cycle columns, as an explicit graph). */
CouplingGraph fullyConnected(int n);

/**
 * IBM heavy-hex-style lattice built from @p cells hexagonal cells in
 * a row (degree <= 3 everywhere, the topology of IBM's Falcon/Eagle
 * generation).  Useful for exercising the mappers on sparse modern
 * devices.
 */
CouplingGraph heavyHexRow(int cells);

/**
 * Look up an architecture by the names used in the paper's tables:
 * "lnn<N>", "grid2by3", "grid2by4", "grid<R>x<C>", "ibmqx2",
 * "tokyo", "melbourne", "aspen-4".
 *
 * @throws std::invalid_argument for unknown names.
 */
CouplingGraph byName(const std::string &name);

/** Names accepted by byName() (one representative per family). */
std::vector<std::string> knownArchitectures();

} // namespace toqm::arch

#endif // TOQM_ARCH_ARCHITECTURES_HPP
