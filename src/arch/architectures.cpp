#include "architectures.hpp"

#include <cctype>
#include <stdexcept>

namespace toqm::arch {

CouplingGraph
lnn(int n)
{
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i + 1 < n; ++i)
        edges.emplace_back(i, i + 1);
    return {n, std::move(edges), "lnn" + std::to_string(n)};
}

CouplingGraph
grid(int rows, int cols)
{
    if (rows < 1 || cols < 1)
        throw std::invalid_argument("grid: bad shape");
    std::vector<std::pair<int, int>> edges;
    const auto idx = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                edges.emplace_back(idx(r, c), idx(r, c + 1));
            if (r + 1 < rows)
                edges.emplace_back(idx(r, c), idx(r + 1, c));
        }
    }
    return {rows * cols, std::move(edges),
            "grid" + std::to_string(rows) + "by" + std::to_string(cols)};
}

CouplingGraph
ibmQX2()
{
    return {5,
            {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {3, 4}},
            "ibmqx2"};
}

CouplingGraph
ibmQ20Tokyo()
{
    std::vector<std::pair<int, int>> edges;
    // 4x5 grid part.
    const auto idx = [](int r, int c) { return r * 5 + c; };
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 5; ++c) {
            if (c + 1 < 5)
                edges.emplace_back(idx(r, c), idx(r, c + 1));
            if (r + 1 < 4)
                edges.emplace_back(idx(r, c), idx(r + 1, c));
        }
    }
    // Crossing diagonals, alternating square pairs per row pair.
    const std::pair<int, int> diagonals[] = {
        {1, 7}, {2, 6}, {3, 9}, {4, 8},     // rows 0-1
        {5, 11}, {6, 10}, {7, 13}, {8, 12}, // rows 1-2
        {11, 17}, {12, 16}, {13, 19}, {14, 18}, // rows 2-3
    };
    for (auto e : diagonals)
        edges.push_back(e);
    return {20, std::move(edges), "tokyo"};
}

CouplingGraph
ibmMelbourne()
{
    // The paper (Fig 3) models Melbourne as a 2xN grid-like ladder.
    CouplingGraph g = grid(2, 7);
    return {14, g.edges(), "melbourne"};
}

CouplingGraph
aspen4()
{
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < 8; ++i)
        edges.emplace_back(i, (i + 1) % 8);
    for (int i = 0; i < 8; ++i)
        edges.emplace_back(8 + i, 8 + (i + 1) % 8);
    // Bridges between the facing sides of the two octagons.
    edges.emplace_back(1, 14);
    edges.emplace_back(2, 13);
    return {16, std::move(edges), "aspen-4"};
}

CouplingGraph
ring(int n)
{
    if (n < 3)
        throw std::invalid_argument("ring: need at least 3 qubits");
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < n; ++i)
        edges.emplace_back(i, (i + 1) % n);
    return {n, std::move(edges), "ring" + std::to_string(n)};
}

CouplingGraph
star(int n)
{
    if (n < 2)
        throw std::invalid_argument("star: need at least 2 qubits");
    std::vector<std::pair<int, int>> edges;
    for (int i = 1; i < n; ++i)
        edges.emplace_back(0, i);
    return {n, std::move(edges), "star" + std::to_string(n)};
}

CouplingGraph
fullyConnected(int n)
{
    if (n < 2)
        throw std::invalid_argument("fullyConnected: need >= 2");
    std::vector<std::pair<int, int>> edges;
    for (int a = 0; a < n; ++a) {
        for (int b = a + 1; b < n; ++b)
            edges.emplace_back(a, b);
    }
    return {n, std::move(edges), "full" + std::to_string(n)};
}

CouplingGraph
heavyHexRow(int cells)
{
    if (cells < 1)
        throw std::invalid_argument("heavyHexRow: need >= 1 cell");
    // Each hexagonal cell contributes a 6-cycle; adjacent cells
    // share one vertical edge.  Build on a 3-row strip:
    //   top row:    t0 t1 ... (2*cells)      indices 0..
    //   middle:     one bridge qubit per cell boundary
    //   bottom row: mirrors the top.
    // Concretely: hexagon c uses top nodes 2c, 2c+1, 2c+2, bottom
    // nodes mirrored, and two bridge qubits on its left/right edges.
    const int top = 2 * cells + 1;
    const int bridges = cells + 1;
    const int n = 2 * top + bridges;
    const auto t = [](int i) { return i; };
    const auto b = [top](int i) { return top + i; };
    const auto m = [top](int c) { return 2 * top + c; };
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i + 1 < top; ++i) {
        edges.emplace_back(t(i), t(i + 1));
        edges.emplace_back(b(i), b(i + 1));
    }
    for (int c = 0; c <= cells; ++c) {
        edges.emplace_back(t(2 * c), m(c));
        edges.emplace_back(m(c), b(2 * c));
    }
    return {n, std::move(edges),
            "heavyhex" + std::to_string(cells)};
}

CouplingGraph
byName(const std::string &name)
{
    if (name == "ibmqx2" || name == "qx2")
        return ibmQX2();
    if (name == "tokyo" || name == "q20" || name == "ibmq20")
        return ibmQ20Tokyo();
    if (name == "melbourne")
        return ibmMelbourne();
    if (name == "aspen-4" || name == "aspen4")
        return aspen4();
    if (name.rfind("ring", 0) == 0 && name.size() > 4 &&
        std::isdigit(static_cast<unsigned char>(name[4]))) {
        return ring(std::stoi(name.substr(4)));
    }
    if (name.rfind("star", 0) == 0 && name.size() > 4 &&
        std::isdigit(static_cast<unsigned char>(name[4]))) {
        return star(std::stoi(name.substr(4)));
    }
    if (name.rfind("full", 0) == 0 && name.size() > 4 &&
        std::isdigit(static_cast<unsigned char>(name[4]))) {
        return fullyConnected(std::stoi(name.substr(4)));
    }
    if (name.rfind("heavyhex", 0) == 0 && name.size() > 8) {
        return heavyHexRow(std::stoi(name.substr(8)));
    }
    if (name.rfind("lnn", 0) == 0) {
        const int n = std::stoi(name.substr(3));
        return lnn(n);
    }
    if (name.rfind("grid", 0) == 0) {
        // Accept "grid2by3" and "grid2x3".
        const std::string rest = name.substr(4);
        const size_t sep = rest.find_first_of("bx");
        if (sep != std::string::npos) {
            const int rows = std::stoi(rest.substr(0, sep));
            size_t cpos = sep + 1;
            if (rest[sep] == 'b' && rest.compare(sep, 2, "by") == 0)
                cpos = sep + 2;
            const int cols = std::stoi(rest.substr(cpos));
            return grid(rows, cols);
        }
    }
    throw std::invalid_argument("unknown architecture: " + name);
}

std::vector<std::string>
knownArchitectures()
{
    return {"lnn6",  "grid2by3",  "grid2by4", "ibmqx2",
            "tokyo", "melbourne", "aspen-4",  "ring8",
            "star5", "full5",     "heavyhex2"};
}

} // namespace toqm::arch
