#include "token_swapping.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace toqm::arch {

namespace {

/** BFS path from @p from to @p to using alive vertices of @p adj. */
std::vector<int>
treePath(const std::vector<std::vector<int>> &adj,
         const std::vector<char> &alive, int from, int to)
{
    std::vector<int> parent(adj.size(), -2);
    std::deque<int> queue{from};
    parent[static_cast<size_t>(from)] = -1;
    while (!queue.empty()) {
        const int u = queue.front();
        queue.pop_front();
        if (u == to)
            break;
        for (int v : adj[static_cast<size_t>(u)]) {
            if (alive[static_cast<size_t>(v)] &&
                parent[static_cast<size_t>(v)] == -2) {
                parent[static_cast<size_t>(v)] = u;
                queue.push_back(v);
            }
        }
    }
    if (parent[static_cast<size_t>(to)] == -2)
        throw std::logic_error("token swapping: target unreachable");
    std::vector<int> path;
    for (int v = to; v != -1; v = parent[static_cast<size_t>(v)])
        path.push_back(v);
    std::reverse(path.begin(), path.end());
    return path;
}

} // namespace

std::vector<std::pair<int, int>>
routePermutation(const CouplingGraph &graph,
                 const std::vector<int> &target)
{
    const int n = graph.numQubits();
    if (static_cast<int>(target.size()) != n)
        throw std::invalid_argument(
            "routePermutation: target size mismatch");
    if (!graph.connected())
        throw std::invalid_argument(
            "routePermutation: graph must be connected");

    // Which origins are constrained, and where they must go.
    std::vector<int> dest_of(static_cast<size_t>(n), -1);
    std::vector<char> referenced(static_cast<size_t>(n), 0);
    for (int p = 0; p < n; ++p) {
        const int o = target[static_cast<size_t>(p)];
        if (o < 0)
            continue;
        if (o >= n || referenced[static_cast<size_t>(o)])
            throw std::invalid_argument(
                "routePermutation: target is not injective");
        referenced[static_cast<size_t>(o)] = 1;
        dest_of[static_cast<size_t>(o)] = p;
    }

    // Spanning tree by BFS from 0.
    std::vector<std::vector<int>> tree(static_cast<size_t>(n));
    {
        std::vector<char> seen(static_cast<size_t>(n), 0);
        std::deque<int> queue{0};
        seen[0] = 1;
        while (!queue.empty()) {
            const int u = queue.front();
            queue.pop_front();
            for (int v : graph.neighbors(u)) {
                if (!seen[static_cast<size_t>(v)]) {
                    seen[static_cast<size_t>(v)] = 1;
                    tree[static_cast<size_t>(u)].push_back(v);
                    tree[static_cast<size_t>(v)].push_back(u);
                    queue.push_back(v);
                }
            }
        }
    }

    // Leaves-first elimination order of the spanning tree.
    std::vector<int> order;
    {
        std::vector<int> degree(static_cast<size_t>(n));
        std::vector<char> removed(static_cast<size_t>(n), 0);
        for (int v = 0; v < n; ++v)
            degree[static_cast<size_t>(v)] =
                static_cast<int>(tree[static_cast<size_t>(v)].size());
        std::deque<int> leaves;
        for (int v = 0; v < n; ++v) {
            if (degree[static_cast<size_t>(v)] <= 1)
                leaves.push_back(v);
        }
        while (!leaves.empty()) {
            const int v = leaves.front();
            leaves.pop_front();
            if (removed[static_cast<size_t>(v)])
                continue;
            removed[static_cast<size_t>(v)] = 1;
            order.push_back(v);
            for (int u : tree[static_cast<size_t>(v)]) {
                if (!removed[static_cast<size_t>(u)] &&
                    --degree[static_cast<size_t>(u)] <= 1) {
                    leaves.push_back(u);
                }
            }
        }
    }

    // token_at[p]: the origin label currently at position p.
    std::vector<int> token_at(static_cast<size_t>(n));
    std::vector<int> pos_of(static_cast<size_t>(n));
    for (int p = 0; p < n; ++p) {
        token_at[static_cast<size_t>(p)] = p;
        pos_of[static_cast<size_t>(p)] = p;
    }
    std::vector<char> alive(static_cast<size_t>(n), 1);
    std::vector<std::pair<int, int>> swaps;

    for (int p : order) {
        // Which token must end at p?
        int want = target[static_cast<size_t>(p)];
        if (want < 0) {
            // Any unreferenced (don't-care) token, nearest first:
            // prefer the one already here.
            if (!referenced[static_cast<size_t>(
                    token_at[static_cast<size_t>(p)])]) {
                alive[static_cast<size_t>(p)] = 0;
                continue;
            }
            int best = -1, best_d = 1 << 30;
            for (int o = 0; o < n; ++o) {
                if (referenced[static_cast<size_t>(o)] ||
                    !alive[static_cast<size_t>(
                        pos_of[static_cast<size_t>(o)])]) {
                    continue;
                }
                const int d = graph.distance(
                    pos_of[static_cast<size_t>(o)], p);
                if (d < best_d) {
                    best_d = d;
                    best = o;
                }
            }
            if (best < 0)
                throw std::logic_error(
                    "token swapping: no free token for don't-care "
                    "position");
            want = best;
        }

        const int cur = pos_of[static_cast<size_t>(want)];
        const auto path = treePath(tree, alive, cur, p);
        for (size_t k = 0; k + 1 < path.size(); ++k) {
            const int a = path[k];
            const int b = path[k + 1];
            swaps.emplace_back(a, b);
            std::swap(token_at[static_cast<size_t>(a)],
                      token_at[static_cast<size_t>(b)]);
            pos_of[static_cast<size_t>(
                token_at[static_cast<size_t>(a)])] = a;
            pos_of[static_cast<size_t>(
                token_at[static_cast<size_t>(b)])] = b;
        }
        alive[static_cast<size_t>(p)] = 0;
    }
    return swaps;
}

std::vector<std::pair<int, int>>
routeBackToInitial(const CouplingGraph &graph,
                   const std::vector<int> &initial_layout,
                   const std::vector<int> &final_layout)
{
    if (initial_layout.size() != final_layout.size())
        throw std::invalid_argument(
            "routeBackToInitial: layout size mismatch");
    std::vector<int> target(
        static_cast<size_t>(graph.numQubits()), -1);
    for (size_t l = 0; l < initial_layout.size(); ++l) {
        // The content now at final_layout[l] must end up at
        // initial_layout[l].
        target[static_cast<size_t>(initial_layout[l])] =
            final_layout[l];
    }
    return routePermutation(graph, target);
}

} // namespace toqm::arch
