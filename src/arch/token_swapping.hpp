/**
 * @file
 * Permutation routing by token swapping: realize an arbitrary
 * relabeling of qubit positions as a sequence of swaps along coupling
 * edges.
 *
 * This is the primitive underlying Childs, Schoute and Unsal's
 * "Circuit Transformations for Quantum Architectures" (the
 * depth-of-swaps approach the paper contrasts itself with in
 * Section 7), and is independently useful: returning qubits to their
 * home positions after a mapped circuit, or realizing the layout
 * changes between circuit phases.
 *
 * The implementation is the classic greedy token-swapping heuristic:
 * always perform a swap that moves at least one token strictly closer
 * to its destination, preferring swaps that help both tokens; it
 * terminates on connected graphs and is a constant-factor
 * approximation on trees.
 */

#ifndef TOQM_ARCH_TOKEN_SWAPPING_HPP
#define TOQM_ARCH_TOKEN_SWAPPING_HPP

#include <utility>
#include <vector>

#include "coupling_graph.hpp"

namespace toqm::arch {

/**
 * Compute swaps realizing a permutation of positions.
 *
 * @param graph the coupling graph.
 * @param target target[p] = the position whose current content must
 *        end up at p (a permutation of [0, n); use -1 entries for
 *        "don't care" positions).
 * @return swap edges to apply IN ORDER; applying them moves the
 *         content of target[p] to p for every constrained p.
 */
std::vector<std::pair<int, int>>
routePermutation(const CouplingGraph &graph,
                 const std::vector<int> &target);

/**
 * Convenience: the swaps that return a mapped circuit's qubits from
 * @p final_layout back to @p initial_layout (both logical->physical).
 */
std::vector<std::pair<int, int>>
routeBackToInitial(const CouplingGraph &graph,
                   const std::vector<int> &initial_layout,
                   const std::vector<int> &final_layout);

} // namespace toqm::arch

#endif // TOQM_ARCH_TOKEN_SWAPPING_HPP
