#include "coupling_graph.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>
#include <utility>

namespace toqm::arch {

namespace {

constexpr int unreachable = std::numeric_limits<int>::max() / 4;

} // namespace

CouplingGraph::CouplingGraph(int num_qubits,
                             std::vector<std::pair<int, int>> edges,
                             std::string name)
    : _numQubits(num_qubits), _name(std::move(name))
{
    if (num_qubits < 1)
        throw std::invalid_argument("coupling graph needs >= 1 qubit");
    _adj.resize(static_cast<size_t>(num_qubits));
    _adjMatrix.assign(
        static_cast<size_t>(num_qubits) * static_cast<size_t>(num_qubits),
        0);
    for (auto [a, b] : edges) {
        if (a < 0 || b < 0 || a >= num_qubits || b >= num_qubits)
            throw std::out_of_range("coupling edge outside qubit range");
        if (a == b)
            throw std::invalid_argument("self-loop coupling edge");
        if (a > b)
            std::swap(a, b);
        const size_t idx = static_cast<size_t>(a) *
                           static_cast<size_t>(num_qubits) +
                           static_cast<size_t>(b);
        if (_adjMatrix[idx])
            continue; // duplicate
        _adjMatrix[idx] = 1;
        _adjMatrix[static_cast<size_t>(b) *
                   static_cast<size_t>(num_qubits) +
                   static_cast<size_t>(a)] = 1;
        _edges.emplace_back(a, b);
        _adj[static_cast<size_t>(a)].push_back(b);
        _adj[static_cast<size_t>(b)].push_back(a);
    }
    std::sort(_edges.begin(), _edges.end());
    for (auto &nbrs : _adj)
        std::sort(nbrs.begin(), nbrs.end());
    computeDistances();
}

void
CouplingGraph::computeDistances()
{
    const size_t n = static_cast<size_t>(_numQubits);
    _dist.assign(n * n, unreachable);
    for (int src = 0; src < _numQubits; ++src) {
        auto *row = &_dist[static_cast<size_t>(src) * n];
        row[src] = 0;
        std::deque<int> queue{src};
        while (!queue.empty()) {
            const int u = queue.front();
            queue.pop_front();
            for (int v : _adj[static_cast<size_t>(u)]) {
                if (row[v] > row[u] + 1) {
                    row[v] = row[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
}

bool
CouplingGraph::connected() const
{
    const auto *row = _dist.data();
    for (int q = 0; q < _numQubits; ++q) {
        if (row[q] >= unreachable)
            return false;
    }
    return true;
}

int
CouplingGraph::diameter() const
{
    int best = 0;
    for (int d : _dist) {
        if (d < unreachable)
            best = std::max(best, d);
    }
    return best;
}

int
CouplingGraph::longestSimplePath() const
{
    // Exact DFS over simple paths with a global step budget.
    constexpr long budget_limit = 4'000'000;
    long steps = 0;
    int best = 0;
    std::vector<char> visited(static_cast<size_t>(_numQubits), 0);

    // Iterative DFS to avoid deep recursion on path graphs.
    struct Frame
    {
        int node;
        size_t next_nbr;
    };
    std::vector<Frame> stack;

    for (int src = 0; src < _numQubits; ++src) {
        stack.clear();
        std::fill(visited.begin(), visited.end(), 0);
        visited[static_cast<size_t>(src)] = 1;
        stack.push_back({src, 0});
        while (!stack.empty()) {
            if (++steps > budget_limit)
                return _numQubits - 1; // safe upper bound
            Frame &top = stack.back();
            const auto &nbrs = _adj[static_cast<size_t>(top.node)];
            if (top.next_nbr >= nbrs.size()) {
                visited[static_cast<size_t>(top.node)] = 0;
                stack.pop_back();
                continue;
            }
            const int v = nbrs[top.next_nbr++];
            if (visited[static_cast<size_t>(v)])
                continue;
            visited[static_cast<size_t>(v)] = 1;
            stack.push_back({v, 0});
            best = std::max(best, static_cast<int>(stack.size()) - 1);
        }
    }
    return best;
}

} // namespace toqm::arch
