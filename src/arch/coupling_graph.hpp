/**
 * @file
 * Hardware coupling graph: which physical qubits share a link.
 *
 * Links are modeled as undirected (Section 2.2: the model does not
 * constrain how a SWAP is implemented; direction is folded into the
 * latency model).  Precomputes all-pairs shortest distances (needed by
 * the heuristic cost function's d(a,b)) and exposes the longest
 * simple path length (the initial-mapping budget d of Section 5.3).
 */

#ifndef TOQM_ARCH_COUPLING_GRAPH_HPP
#define TOQM_ARCH_COUPLING_GRAPH_HPP

#include <string>
#include <utility>
#include <vector>

namespace toqm::arch {

/** An undirected bounded-degree qubit connectivity graph. */
class CouplingGraph
{
  public:
    /**
     * @param num_qubits number of physical qubits.
     * @param edges undirected links (duplicates and reversed
     *        duplicates are ignored).
     * @param name a human-readable architecture name.
     */
    CouplingGraph(int num_qubits,
                  std::vector<std::pair<int, int>> edges,
                  std::string name = "custom");

    int numQubits() const { return _numQubits; }

    const std::string &name() const { return _name; }

    /** Deduplicated edge list with first < second. */
    const std::vector<std::pair<int, int>> &edges() const { return _edges; }

    int numEdges() const { return static_cast<int>(_edges.size()); }

    const std::vector<int> &neighbors(int q) const
    {
        return _adj[static_cast<size_t>(q)];
    }

    /** @return true if physical qubits @p a and @p b share a link. */
    bool adjacent(int a, int b) const
    {
        return _adjMatrix[static_cast<size_t>(a) *
                          static_cast<size_t>(_numQubits) +
                          static_cast<size_t>(b)];
    }

    /**
     * Hop distance between @p a and @p b (0 if equal, 1 if adjacent).
     * A gate on qubits at distance d needs at least d-1 swaps.
     */
    int distance(int a, int b) const
    {
        return _dist[static_cast<size_t>(a) *
                     static_cast<size_t>(_numQubits) +
                     static_cast<size_t>(b)];
    }

    /** @return true if every qubit can reach every other qubit. */
    bool connected() const;

    /** Graph diameter (max shortest-path distance). */
    int diameter() const;

    /**
     * Length (in edges) of the longest simple path in the graph: the
     * paper's initial-mapping swap budget d (Section 5.3).  Exact DFS
     * with a step budget; on pathological dense graphs where the
     * budget is exceeded we return the safe upper bound
     * numQubits()-1 (a larger d only enlarges the search space, never
     * loses solutions).
     */
    int longestSimplePath() const;

  private:
    int _numQubits;
    std::string _name;
    std::vector<std::pair<int, int>> _edges;
    std::vector<std::vector<int>> _adj;
    std::vector<char> _adjMatrix;
    std::vector<int> _dist;

    void computeDistances();
};

} // namespace toqm::arch

#endif // TOQM_ARCH_COUPLING_GRAPH_HPP
