#include "mapped_circuit.hpp"

#include <stdexcept>
#include <utility>

namespace toqm::ir {

std::vector<int>
invertLayout(const std::vector<int> &layout, int num_physical)
{
    std::vector<int> inv(static_cast<size_t>(num_physical), -1);
    for (size_t l = 0; l < layout.size(); ++l) {
        const int p = layout[l];
        if (p < 0 || p >= num_physical || inv[static_cast<size_t>(p)] != -1)
            throw std::invalid_argument("invertLayout: not injective");
        inv[static_cast<size_t>(p)] = static_cast<int>(l);
    }
    return inv;
}

bool
isInjectiveLayout(const std::vector<int> &layout, int num_physical)
{
    std::vector<bool> seen(static_cast<size_t>(num_physical), false);
    for (int p : layout) {
        if (p < 0 || p >= num_physical || seen[static_cast<size_t>(p)])
            return false;
        seen[static_cast<size_t>(p)] = true;
    }
    return true;
}

std::vector<int>
identityLayout(int n)
{
    std::vector<int> layout(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        layout[static_cast<size_t>(i)] = i;
    return layout;
}

std::vector<int>
propagateLayout(const Circuit &physical, const std::vector<int> &initial)
{
    std::vector<int> phys2log = invertLayout(initial, physical.numQubits());
    for (const Gate &g : physical.gates()) {
        if (!g.isSwap())
            continue;
        std::swap(phys2log[static_cast<size_t>(g.qubit(0))],
                  phys2log[static_cast<size_t>(g.qubit(1))]);
    }
    // Re-invert: layout[logical] = physical.
    std::vector<int> layout(initial.size(), -1);
    for (size_t p = 0; p < phys2log.size(); ++p) {
        const int l = phys2log[p];
        if (l >= 0)
            layout[static_cast<size_t>(l)] = static_cast<int>(p);
    }
    return layout;
}

} // namespace toqm::ir
