/**
 * @file
 * Circuit container: an ordered list of gates over n qubits.
 *
 * The order of the gate list is a valid topological order of the
 * circuit's dependency DAG (gates touching a common qubit appear in
 * program order).  All passes in this repository preserve that
 * invariant.
 */

#ifndef TOQM_IR_CIRCUIT_HPP
#define TOQM_IR_CIRCUIT_HPP

#include <string>
#include <vector>

#include "gate.hpp"

namespace toqm::ir {

/** An ordered quantum circuit over a fixed set of qubits. */
class Circuit
{
  public:
    /** Construct an empty circuit over @p num_qubits qubits. */
    explicit Circuit(int num_qubits, std::string name = "circuit");

    int numQubits() const { return _numQubits; }

    const std::string &name() const { return _name; }

    void setName(std::string name) { _name = std::move(name); }

    /** Number of gates, including pseudo ops (barriers, measures). */
    int size() const { return static_cast<int>(_gates.size()); }

    bool empty() const { return _gates.empty(); }

    const Gate &gate(int i) const { return _gates[static_cast<size_t>(i)]; }

    const std::vector<Gate> &gates() const { return _gates; }

    /** Append a gate, validating its operands against numQubits(). */
    void add(Gate gate);

    /** Convenience builders. @{ */
    void addH(int q) { add(Gate(GateKind::H, q)); }
    void addX(int q) { add(Gate(GateKind::X, q)); }
    void addCX(int control, int target);
    void addCZ(int q0, int q1) { add(Gate(GateKind::CZ, q0, q1)); }
    void addCP(int q0, int q1, double angle);
    void addSwap(int q0, int q1) { add(Gate(GateKind::Swap, q0, q1)); }
    void addGT(int q0, int q1) { add(Gate(GateKind::GT, q0, q1)); }
    /** @} */

    /** Number of gates acting on exactly two qubits (incl.\ swaps). */
    int numTwoQubitGates() const;

    /** Number of swap gates. */
    int numSwaps() const;

    /** Number of gates excluding barriers and measures. */
    int numComputeGates() const;

    /**
     * Remap every gate's operands through @p qubit_map
     * (new_q = qubit_map[old_q]).
     *
     * @param qubit_map a permutation of [0, numQubits).
     * @return the remapped circuit.
     */
    Circuit remapped(const std::vector<int> &qubit_map) const;

    /** A copy with swaps and barriers removed (computation only). */
    Circuit withoutSwapsAndBarriers() const;

    /** Multi-line textual dump (one gate per line). */
    std::string str() const;

    bool operator==(const Circuit &other) const;

  private:
    int _numQubits;
    std::string _name;
    std::vector<Gate> _gates;
};

} // namespace toqm::ir

#endif // TOQM_IR_CIRCUIT_HPP
