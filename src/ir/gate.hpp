/**
 * @file
 * Gate model: the unit of work in a quantum circuit.
 *
 * The mapper (src/toqm) treats gates abstractly: it only needs to know
 * which qubits a gate touches and how many cycles it takes (via
 * ir::LatencyModel).  The simulator (src/sim) additionally interprets
 * the gate kind and parameters as a unitary.
 */

#ifndef TOQM_IR_GATE_HPP
#define TOQM_IR_GATE_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace toqm::ir {

/** Enumeration of the gate kinds this stack understands. */
enum class GateKind : std::uint8_t {
    // One-qubit gates.
    H,
    X,
    Y,
    Z,
    S,
    Sdg,
    T,
    Tdg,
    SX,
    RX,
    RY,
    RZ,
    U1,
    U2,
    U3,
    ID,
    // Two-qubit gates.
    CX,
    CZ,
    CP,      ///< Controlled phase, one angle parameter.
    Swap,    ///< The routing gate inserted by mappers.
    GT,      ///< Generic two-qubit gate (Maslov's QFT skeleton convention).
    RZZ,
    // Pseudo operations.
    Barrier, ///< Scheduling barrier across its qubits.
    Measure, ///< Measurement (kept for round-tripping QASM).
    Other,   ///< An opaque gate; simulatable only if expanded.
};

/** @return a stable lower-case mnemonic for @p kind (e.g.\ "cx"). */
const char *gateKindName(GateKind kind);

/**
 * @return the GateKind whose mnemonic is @p name, or GateKind::Other if
 * the name is not a built-in.
 */
GateKind gateKindFromName(const std::string &name);

/** @return true if @p kind acts on exactly two qubits. */
bool isTwoQubitKind(GateKind kind);

/**
 * A single gate instance in a circuit.
 *
 * Qubit operands are indices into the owning circuit's qubit space.
 * For two-qubit kinds, qubit(0) is the control (where that matters,
 * e.g.\ CX) and qubit(1) the target.
 */
class Gate
{
  public:
    /** Construct a one-qubit gate. */
    Gate(GateKind kind, int q0, std::vector<double> params = {});

    /** Construct a two-qubit gate. */
    Gate(GateKind kind, int q0, int q1, std::vector<double> params = {});

    /**
     * Construct an opaque gate by name.
     *
     * @param name QASM-level name, preserved for output.
     * @param qubits 1 or 2 operand qubits.
     */
    Gate(std::string name, std::vector<int> qubits,
         std::vector<double> params = {});

    GateKind kind() const { return _kind; }

    /** Number of qubit operands (1 or 2; barriers may span more). */
    int numQubits() const { return static_cast<int>(_qubits.size()); }

    /** @return the @p i-th qubit operand. */
    int qubit(int i) const { return _qubits[static_cast<size_t>(i)]; }

    const std::vector<int> &qubits() const { return _qubits; }

    const std::vector<double> &params() const { return _params; }

    /** The QASM-level name ("cx", "u3", or an opaque user name). */
    const std::string &name() const { return _name; }

    bool isTwoQubit() const { return numQubits() == 2; }

    bool isSwap() const { return _kind == GateKind::Swap; }

    bool isBarrier() const { return _kind == GateKind::Barrier; }

    bool isMeasure() const { return _kind == GateKind::Measure; }

    /** @return true if both gates touch at least one common qubit. */
    bool sharesQubitWith(const Gate &other) const;

    /** @return true if @p q is one of this gate's operands. */
    bool actsOn(int q) const;

    /** Replace the operand qubits (used when remapping circuits). */
    void setQubits(std::vector<int> qubits);

    /** Render as pseudo-QASM, e.g.\ "cx q[0], q[3]". */
    std::string str() const;

    bool operator==(const Gate &other) const;

  private:
    GateKind _kind;
    std::string _name;
    std::vector<int> _qubits;
    std::vector<double> _params;
};

} // namespace toqm::ir

#endif // TOQM_IR_GATE_HPP
