/**
 * @file
 * Export utilities for tooling around the mapper: Graphviz DOT
 * rendering of coupling graphs (optionally annotated with a layout),
 * and a JSON dump of a scheduled circuit for timeline viewers.
 */

#ifndef TOQM_IR_EXPORT_HPP
#define TOQM_IR_EXPORT_HPP

#include <string>

#include "arch/coupling_graph.hpp"
#include "circuit.hpp"
#include "latency.hpp"
#include "mapped_circuit.hpp"

namespace toqm::ir {

/**
 * Render @p graph as Graphviz DOT.  When @p layout is non-empty,
 * each occupied physical node is labeled with its logical occupant
 * ("Q3\nq1").
 */
std::string toDot(const arch::CouplingGraph &graph,
                  const std::vector<int> &layout = {});

/**
 * JSON schedule dump: one record per gate with name, operands,
 * start cycle and duration, plus the makespan — enough to feed any
 * Gantt-style timeline viewer.
 */
std::string scheduleToJson(const Circuit &circuit,
                           const LatencyModel &latency);

/**
 * Full mapping record: initial/final layouts plus the schedule of
 * the physical circuit.
 */
std::string mappingToJson(const MappedCircuit &mapped,
                          const LatencyModel &latency);

} // namespace toqm::ir

#endif // TOQM_IR_EXPORT_HPP
