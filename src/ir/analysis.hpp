/**
 * @file
 * Routing-quality analysis of a mapped circuit: the derived metrics
 * the paper's evaluation reasons about (time overhead over the ideal
 * all-to-all execution, swap overhead, and how much of the added
 * swap work the schedule managed to hide under computation).
 */

#ifndef TOQM_IR_ANALYSIS_HPP
#define TOQM_IR_ANALYSIS_HPP

#include <string>

#include "circuit.hpp"
#include "latency.hpp"
#include "mapped_circuit.hpp"

namespace toqm::ir {

/** Derived quality metrics of one mapping. */
struct RoutingReport
{
    int idealCycles = 0;     ///< logical circuit, all-to-all device
    int mappedCycles = 0;    ///< transformed circuit
    int swapCount = 0;
    int twoQubitGates = 0;   ///< original 2q gates (excl. swaps)

    /** mappedCycles / idealCycles (1.0 == no time overhead). */
    double depthOverhead = 1.0;
    /** swaps per original two-qubit gate. */
    double swapOverhead = 0.0;
    /**
     * Fraction of inserted swap work hidden under other computation:
     * 1 - (mapped - ideal) / total_swap_cycles.  1.0 means every
     * swap overlapped something; 0.0 means every swap cycle extended
     * the critical path (clamped to [0, 1]).
     */
    double swapHiding = 0.0;
    /**
     * Busy-cycle utilization of the mapped schedule:
     * sum(gate cycles x operands) / (mappedCycles x active qubits).
     */
    double utilization = 0.0;

    /** One-line human-readable summary. */
    std::string str() const;
};

/** Analyze @p mapped against its logical original under @p lat. */
RoutingReport analyzeRouting(const Circuit &logical,
                             const MappedCircuit &mapped,
                             const LatencyModel &lat);

} // namespace toqm::ir

#endif // TOQM_IR_ANALYSIS_HPP
