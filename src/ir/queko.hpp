/**
 * @file
 * QUEKO-style benchmark generator (Tan & Cong, the benchmark family
 * used in the paper's Table 2).
 *
 * A QUEKO circuit is constructed directly onto a device coupling
 * graph, layer by layer, with a dependency backbone threading all
 * layers; the physical qubit labels are then scrambled by a hidden
 * random permutation.  By construction the circuit
 *  (a) has a dependency critical path of exactly @c depth layers, and
 *  (b) can be executed in @c depth cycles with ZERO inserted swaps by
 *      undoing the hidden permutation.
 * Hence its optimal depth under a unit latency model is known exactly
 * — giving Table 2 a ground-truth optimum without an external SMT
 * solver (see DESIGN.md, substitutions).
 */

#ifndef TOQM_IR_QUEKO_HPP
#define TOQM_IR_QUEKO_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "circuit.hpp"

namespace toqm::ir {

/** The output of the QUEKO generator. */
struct QuekoBenchmark
{
    /** The scrambled logical circuit handed to mappers. */
    Circuit circuit;
    /** Ground-truth optimal depth (cycles, all gates 1 cycle). */
    int optimalDepth;
    /** The hidden layout (logical -> physical) that achieves it. */
    std::vector<int> hiddenLayout;

    QuekoBenchmark() : circuit(0), optimalDepth(0) {}
};

/**
 * Generate a QUEKO-style benchmark.
 *
 * @param num_physical number of device qubits.
 * @param edges device coupling edges (undirected).
 * @param depth target (and guaranteed-optimal) depth in layers.
 * @param density2q average fraction of qubits busy with 2-qubit
 *        gates per layer (QUEKO's two-qubit gate density).
 * @param density1q average fraction of qubits busy with 1-qubit
 *        gates per layer.
 * @param seed deterministic seed.
 */
QuekoBenchmark quekoCircuit(int num_physical,
                            const std::vector<std::pair<int, int>> &edges,
                            int depth, double density2q, double density1q,
                            std::uint64_t seed);

} // namespace toqm::ir

#endif // TOQM_IR_QUEKO_HPP
