#include "latency.hpp"

#include <stdexcept>

namespace toqm::ir {

LatencyModel::LatencyModel(int one_qubit, int two_qubit, int swap)
    : _oneQubit(one_qubit), _twoQubit(two_qubit), _swap(swap)
{
    if (one_qubit < 1 || two_qubit < 1 || swap < 1)
        throw std::invalid_argument("gate latencies must be >= 1 cycle");
}

void
LatencyModel::setKindLatency(GateKind kind, int cycles)
{
    if (cycles < 1)
        throw std::invalid_argument("gate latencies must be >= 1 cycle");
    _overrides[kind] = cycles;
}

int
LatencyModel::latency(const Gate &gate) const
{
    auto it = _overrides.find(gate.kind());
    if (it != _overrides.end())
        return it->second;
    if (gate.isBarrier())
        return 0;
    if (gate.isSwap())
        return _swap;
    if (gate.numQubits() == 2)
        return _twoQubit;
    return _oneQubit;
}

} // namespace toqm::ir
