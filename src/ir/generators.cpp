#include "generators.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace toqm::ir {

namespace {

/**
 * Minimal xorshift-style PRNG.  We avoid std::uniform_int_distribution
 * because its output is implementation-defined; benchmark stand-ins
 * must be bit-identical across toolchains.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : _state(seed) {}

    std::uint64_t
    next()
    {
        _state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = _state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). */
    int
    below(int bound)
    {
        return static_cast<int>(next() % static_cast<std::uint64_t>(bound));
    }

    /** Uniform double in [0, 1). */
    double
    unit()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t _state;
};

/** FNV-1a hash for deterministic name -> seed derivation. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Append a CCX decomposed into 1- and 2-qubit gates. */
void
addToffoli(Circuit &c, int a, int b, int t)
{
    c.add(Gate(GateKind::H, t));
    c.addCX(b, t);
    c.add(Gate(GateKind::Tdg, t));
    c.addCX(a, t);
    c.add(Gate(GateKind::T, t));
    c.addCX(b, t);
    c.add(Gate(GateKind::Tdg, t));
    c.addCX(a, t);
    c.add(Gate(GateKind::T, b));
    c.add(Gate(GateKind::T, t));
    c.add(Gate(GateKind::H, t));
    c.addCX(a, b);
    c.add(Gate(GateKind::T, a));
    c.add(Gate(GateKind::Tdg, b));
    c.addCX(a, b);
}

} // namespace

Circuit
qftSkeleton(int n)
{
    if (n < 2)
        throw std::invalid_argument("qftSkeleton: need at least 2 qubits");
    Circuit c(n, "qft_skeleton_" + std::to_string(n));
    for (int k = 1; k <= 2 * n - 3; ++k) {
        for (int i = 0; i < (k + 1) / 2; ++i) {
            const int j = k - i;
            if (i < j && j < n)
                c.addGT(i, j);
        }
    }
    return c;
}

Circuit
qftConcrete(int n)
{
    if (n < 1)
        throw std::invalid_argument("qftConcrete: need at least 1 qubit");
    Circuit c(n, "qft_" + std::to_string(n));
    for (int i = 0; i < n; ++i) {
        c.addH(i);
        for (int j = i + 1; j < n; ++j) {
            const double angle =
                std::numbers::pi / std::pow(2.0, j - i);
            c.addCP(j, i, angle);
        }
    }
    return c;
}

Circuit
randomCircuit(int n, int num_gates, double two_qubit_fraction,
              std::uint64_t seed, double locality)
{
    if (n < 2)
        throw std::invalid_argument("randomCircuit: need at least 2 qubits");
    if (two_qubit_fraction < 0.0 || two_qubit_fraction > 1.0)
        throw std::invalid_argument("randomCircuit: bad CX fraction");
    SplitMix64 rng(seed);
    Circuit c(n, "random_" + std::to_string(n) + "q_" +
                     std::to_string(num_gates) + "g");
    constexpr GateKind one_q_kinds[] = {
        GateKind::H, GateKind::X, GateKind::T, GateKind::Tdg,
        GateKind::S, GateKind::RZ,
    };
    for (int i = 0; i < num_gates; ++i) {
        if (rng.unit() < two_qubit_fraction) {
            const int a = rng.below(n);
            int b;
            if (rng.unit() < locality) {
                // Neighbor on the virtual line.
                b = (a == 0) ? 1
                    : (a == n - 1) ? n - 2
                    : (rng.below(2) == 0 ? a - 1 : a + 1);
            } else {
                b = rng.below(n - 1);
                if (b >= a)
                    ++b;
            }
            c.addCX(a, b);
        } else {
            const GateKind kind = one_q_kinds[rng.below(6)];
            const int q = rng.below(n);
            if (kind == GateKind::RZ) {
                c.add(Gate(kind, q,
                           std::vector<double>{rng.unit() * 2.0 *
                                               std::numbers::pi}));
            } else {
                c.add(Gate(kind, q));
            }
        }
    }
    return c;
}

Circuit
benchmarkStandIn(const std::string &name, int n, int num_gates)
{
    Circuit c = randomCircuit(n, num_gates, 0.45, fnv1a(name), 0.75);
    c.setName(name);
    return c;
}

Circuit
ghz(int n)
{
    if (n < 2)
        throw std::invalid_argument("ghz: need at least 2 qubits");
    Circuit c(n, "ghz_" + std::to_string(n));
    c.addH(0);
    for (int i = 1; i < n; ++i)
        c.addCX(i - 1, i);
    return c;
}

Circuit
bernsteinVazirani(int n, std::uint64_t secret)
{
    if (n < 1 || n > 63)
        throw std::invalid_argument("bernsteinVazirani: bad width");
    Circuit c(n + 1, "bv_" + std::to_string(n));
    const int anc = n;
    c.addX(anc);
    c.addH(anc);
    for (int i = 0; i < n; ++i)
        c.addH(i);
    for (int i = 0; i < n; ++i) {
        if ((secret >> i) & 1ull)
            c.addCX(i, anc);
    }
    for (int i = 0; i < n; ++i)
        c.addH(i);
    return c;
}

Circuit
rippleCarryAdder(int bits)
{
    if (bits < 1)
        throw std::invalid_argument("rippleCarryAdder: need >= 1 bit");
    // Register layout: a[0..bits), b[0..bits), carry-in, carry-out.
    const int n = 2 * bits + 2;
    Circuit c(n, "adder_" + std::to_string(bits));
    const auto a = [bits](int i) { return i; };
    const auto b = [bits](int i) { return bits + i; };
    const int cin = 2 * bits;
    const int cout = 2 * bits + 1;

    // MAJ cascade.
    const auto maj = [&c](int x, int y, int z) {
        c.addCX(z, y);
        c.addCX(z, x);
        addToffoli(c, x, y, z);
    };
    const auto uma = [&c](int x, int y, int z) {
        addToffoli(c, x, y, z);
        c.addCX(z, x);
        c.addCX(x, y);
    };

    maj(cin, b(0), a(0));
    for (int i = 1; i < bits; ++i)
        maj(a(i - 1), b(i), a(i));
    c.addCX(a(bits - 1), cout);
    for (int i = bits - 1; i >= 1; --i)
        uma(a(i - 1), b(i), a(i));
    uma(cin, b(0), a(0));
    return c;
}

} // namespace toqm::ir
