/**
 * @file
 * Latency model: how many cycles each gate occupies its qubits.
 *
 * The TOQM paper (Section 2.2) deliberately leaves gate latencies as
 * model parameters.  This class captures the three presets used in the
 * paper's evaluation plus arbitrary per-kind overrides:
 *
 *  - Tables 1 and 3:  1-qubit = 1 cycle, CX = 2 cycles, SWAP = 6 cycles
 *    (a SWAP is three CXs on IBM's bidirectional links).
 *  - Table 2 (OLSQ setup):  every gate = 1 cycle, SWAP = 3 cycles.
 *  - QFT exact analysis (Section 6.1):  GT = 1 cycle, SWAP = 1 cycle,
 *    following Maslov's uniform-latency convention.
 */

#ifndef TOQM_IR_LATENCY_HPP
#define TOQM_IR_LATENCY_HPP

#include <map>

#include "gate.hpp"

namespace toqm::ir {

/** Cycle cost of gates, parameterized per the paper's evaluation. */
class LatencyModel
{
  public:
    /**
     * @param one_qubit cycles for any 1-qubit gate.
     * @param two_qubit cycles for any non-swap 2-qubit gate.
     * @param swap cycles for an inserted SWAP.
     */
    LatencyModel(int one_qubit, int two_qubit, int swap);

    /** Preset for Tables 1 and 3: (1, 2, 6). */
    static LatencyModel ibmPreset() { return {1, 2, 6}; }

    /** Preset for Table 2 / OLSQ comparison: (1, 1, 3). */
    static LatencyModel olsqPreset() { return {1, 1, 3}; }

    /** Preset for QFT exact analysis: every gate (incl.\ swap) 1 cycle. */
    static LatencyModel qftPreset() { return {1, 1, 1}; }

    /** Override the latency of a specific gate kind. */
    void setKindLatency(GateKind kind, int cycles);

    /** @return the number of cycles @p gate occupies its qubits. */
    int latency(const Gate &gate) const;

    int swapLatency() const { return _swap; }

    int oneQubitLatency() const { return _oneQubit; }

    int twoQubitLatency() const { return _twoQubit; }

  private:
    int _oneQubit;
    int _twoQubit;
    int _swap;
    std::map<GateKind, int> _overrides;
};

} // namespace toqm::ir

#endif // TOQM_IR_LATENCY_HPP
