/**
 * @file
 * Dependency DAG over a circuit's gates.
 *
 * Two gates depend on each other iff they share a qubit; the edge runs
 * from the earlier gate (program order) to the later one.  Barriers
 * create dependencies across all of their operands.  Because qubit
 * exclusivity is fully encoded in the edges, the ASAP schedule length
 * of the DAG equals its latency-weighted critical path — that value is
 * the paper's "ideal cycle" count (execution on an all-to-all
 * architecture).
 */

#ifndef TOQM_IR_DAG_HPP
#define TOQM_IR_DAG_HPP

#include <vector>

#include "circuit.hpp"
#include "latency.hpp"

namespace toqm::ir {

/** Immediate-dependency graph of a circuit. */
class DependencyDag
{
  public:
    /** Build the DAG for @p circuit. */
    explicit DependencyDag(const Circuit &circuit);

    int numGates() const { return static_cast<int>(_preds.size()); }

    /** Immediate predecessors of gate @p i (deduplicated). */
    const std::vector<int> &preds(int i) const
    {
        return _preds[static_cast<size_t>(i)];
    }

    /** Immediate successors of gate @p i (deduplicated). */
    const std::vector<int> &succs(int i) const
    {
        return _succs[static_cast<size_t>(i)];
    }

    /** Gates with no predecessors (the initial frontier). */
    const std::vector<int> &roots() const { return _roots; }

    /**
     * The previous gate on qubit @p q before gate @p i, or -1.
     * Only valid if gate @p i acts on @p q.
     */
    int prevOnQubit(int i, int q) const;

    /** The first gate on qubit @p q, or -1 if the qubit is unused. */
    int firstOnQubit(int q) const
    {
        return _firstOnQubit[static_cast<size_t>(q)];
    }

    /**
     * Latency-weighted critical path length == ASAP makespan == the
     * paper's "ideal cycle" count.
     */
    int criticalPath(const LatencyModel &lat) const;

    /**
     * ASAP start cycle of every gate under @p lat with unlimited
     * connectivity (start cycles are 1-based to match the paper's
     * cycle numbering; a gate starting at cycle 1 finishes at cycle
     * len).
     */
    std::vector<int> asapStart(const LatencyModel &lat) const;

  private:
    const Circuit *_circuit;
    std::vector<std::vector<int>> _preds;
    std::vector<std::vector<int>> _succs;
    std::vector<int> _roots;
    std::vector<int> _firstOnQubit;
    /** _prevOnQubit[i] is indexed parallel to gate i's operand list. */
    std::vector<std::vector<int>> _prevOnQubit;
};

} // namespace toqm::ir

#endif // TOQM_IR_DAG_HPP
