/**
 * @file
 * Circuit transformations from the paper's Appendix B — the manual
 * steps the authors apply when generalizing optimal solutions, here
 * automated (their stated future work):
 *
 *  - **swap/gate commutation**: if a SWAP is immediately followed by
 *    a two-qubit gate on the same pair, the gate can be moved in
 *    front of the swap with its operands reversed (and vice versa);
 *  - **cancelable swaps**: two identical SWAPs with nothing on
 *    either qubit in between cancel;
 *  - **self-inverse gate cancellation**: adjacent identical
 *    self-inverse gates (H, X, Y, Z, CX, CZ, SWAP) annihilate;
 *  - **layer signature / recurrence detection**: the helper the
 *    pattern-discovery workflow needs to spot a periodic optimal
 *    solution among many.
 *
 * All rewrites preserve circuit semantics exactly (asserted against
 * the statevector simulator in the tests).
 */

#ifndef TOQM_IR_TRANSFORMS_HPP
#define TOQM_IR_TRANSFORMS_HPP

#include <string>
#include <vector>

#include "circuit.hpp"
#include "latency.hpp"

namespace toqm::ir {

/**
 * Cancel adjacent redundant gates: identical self-inverse gates (or
 * identical SWAPs) acting on the same operands with no interposed
 * gate on any of those operands.  Applied to a fixed point.
 *
 * @return the rewritten circuit.
 */
Circuit cancelRedundantGates(const Circuit &circuit);

/**
 * Normalize the order of adjacent SWAP / two-qubit-gate pairs on the
 * same qubit pair (Appendix B / Fig 16: "if a swap is followed by a
 * two-qubit gate, the two-qubit gate can be moved in front of the
 * swap by reversing [its operands], and the transformed circuit is
 * equivalent").  Fixing one convention across the circuit makes a
 * recurring pattern visible where raw solver output hides it.
 *
 * Gates with asymmetric operands (CX) keep correctness because the
 * operand reversal is applied; symmetric kinds (CZ, CP, GT, RZZ) are
 * unchanged up to operand order.
 *
 * @param gate_first if true, prefer "gate before swap" order (the
 *        Fig 2 convention); if false, prefer "swap before gate".
 */
Circuit normalizeSwapGateOrder(const Circuit &circuit, bool gate_first);

/**
 * Depth under @p lat after the cheap normalizations above — used to
 * compare candidate optimal solutions on equal footing.
 */
int normalizedDepth(const Circuit &circuit, const LatencyModel &lat);

/**
 * Per-cycle signature of a circuit's schedule: each cycle is encoded
 * as a sorted list of "kind@qubits" strings.  Two circuits with the
 * same signature sequence execute identically cycle by cycle.
 */
std::vector<std::string> layerSignature(const Circuit &circuit,
                                        const LatencyModel &lat);

/**
 * Detect a recurring period in a layer-signature *shape* sequence:
 * the smallest p such that cycles [offset, n) repeat with period p
 * when each layer is reduced to its op-kind shape (the Fig 11 /
 * Fig 12 sense of "recurring pattern": GT layer, swap layer, GT
 * layer, ... repeating).
 *
 * @param ignore_counts reduce each layer to the SET of op kinds
 *        rather than the multiset — the butterfly's layers grow and
 *        shrink in width while alternating GT/SWAP, so the paper's
 *        "recurring pattern" is a kinds-only notion.
 * @return the period, or 0 if none with p <= max_period.
 */
int detectRecurrence(const std::vector<std::string> &signature,
                     int offset = 0, int max_period = 8,
                     bool ignore_counts = false);

} // namespace toqm::ir

#endif // TOQM_IR_TRANSFORMS_HPP
