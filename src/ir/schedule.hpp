/**
 * @file
 * ASAP scheduling of a concrete circuit under a latency model.
 *
 * Used to score the circuits produced by every mapper in this
 * repository (TOQM optimal, TOQM heuristic, SABRE, Zulehner) with a
 * single consistent clock, and to compute the paper's "ideal cycle"
 * column (schedule of the logical circuit, ignoring connectivity).
 */

#ifndef TOQM_IR_SCHEDULE_HPP
#define TOQM_IR_SCHEDULE_HPP

#include <string>
#include <vector>

#include "circuit.hpp"
#include "latency.hpp"

namespace toqm::ir {

/** The result of scheduling a circuit. */
struct Schedule
{
    /** 1-based start cycle of each gate. */
    std::vector<int> startCycle;
    /** Total cycles (the finish cycle of the last gate). */
    int makespan = 0;

    /** Finish cycle of gate @p i given @p lat (inclusive). */
    int finishCycle(int i, const Circuit &circuit,
                    const LatencyModel &lat) const;
};

/**
 * Compute the ASAP schedule of @p circuit under @p lat.
 *
 * Each qubit executes one gate at a time; a gate starts as soon as all
 * gates earlier in program order that share one of its qubits have
 * finished.  Barriers take zero cycles but synchronize their operands.
 */
Schedule scheduleAsap(const Circuit &circuit, const LatencyModel &lat);

/**
 * The paper's "ideal cycle" count: the makespan of @p circuit on an
 * all-to-all architecture (connectivity never constrains anything, so
 * this is just the ASAP makespan of the logical circuit).
 */
int idealCycles(const Circuit &circuit, const LatencyModel &lat);

/**
 * Render a cycle-by-cycle occupancy table (rows = qubits, columns =
 * cycles) like the paper's Fig 4(a).  Intended for small circuits.
 */
std::string renderTimeline(const Circuit &circuit, const LatencyModel &lat,
                           int max_cycles = 120);

} // namespace toqm::ir

#endif // TOQM_IR_SCHEDULE_HPP
