/**
 * @file
 * Circuit generators: the workloads of the paper's evaluation.
 *
 *  - QFT skeleton circuits in Maslov's GT convention (Section 3): n
 *    qubits, n(n-1)/2 generic two-qubit gates, organized in parallel
 *    layers per Fig 10.
 *  - Concrete QFT (H + controlled-phase), used by the simulator-based
 *    equivalence tests.
 *  - Seeded random circuits: stand-ins for the RevLib/Qiskit/ScaffCC
 *    benchmark files of Tables 1 and 3 (see DESIGN.md, substitutions).
 *  - Small algorithm circuits (GHZ, Bernstein-Vazirani, ripple-carry
 *    adder) for the examples.
 */

#ifndef TOQM_IR_GENERATORS_HPP
#define TOQM_IR_GENERATORS_HPP

#include <cstdint>
#include <string>

#include "circuit.hpp"

namespace toqm::ir {

/**
 * The QFT skeleton over @p n qubits (Fig 10): GT(q_i, q_{k-i}) for
 * k = 1 .. 2n-3, organized in parallel layers so the logical circuit
 * has linear depth on an all-to-all architecture.
 */
Circuit qftSkeleton(int n);

/** Concrete QFT over @p n qubits: H and controlled-phase gates. */
Circuit qftConcrete(int n);

/**
 * A seeded pseudo-random circuit.
 *
 * @param n number of qubits.
 * @param num_gates total gate count.
 * @param two_qubit_fraction fraction of gates that are CX (in
 *        [0, 1]); the rest are a mix of 1-qubit gates.
 * @param seed deterministic generator seed.
 * @param locality probability that a CX partner is a neighbor on a
 *        virtual line (RevLib-style reversible circuits are highly
 *        local; 0 gives uniform pairs).
 */
Circuit randomCircuit(int n, int num_gates, double two_qubit_fraction,
                      std::uint64_t seed, double locality = 0.0);

/**
 * A stand-in for a named benchmark with published qubit and gate
 * counts (Tables 1 and 3).  Deterministic: the name is hashed into
 * the seed.  Uses a CX fraction of 0.45 and a 0.75 locality bias,
 * typical of the RevLib reversible-logic suites (see DESIGN.md,
 * substitutions).
 */
Circuit benchmarkStandIn(const std::string &name, int n, int num_gates);

/** GHZ state preparation: H then a CX chain. */
Circuit ghz(int n);

/** Bernstein-Vazirani with hidden string @p secret (LSB = qubit 0). */
Circuit bernsteinVazirani(int n, std::uint64_t secret);

/**
 * Cuccaro-style ripple-carry adder skeleton over 2*@p bits + 2
 * qubits (a classic RevLib-style workload shape).
 */
Circuit rippleCarryAdder(int bits);

} // namespace toqm::ir

#endif // TOQM_IR_GENERATORS_HPP
