#include "dag.hpp"

#include <algorithm>
#include <stdexcept>

namespace toqm::ir {

DependencyDag::DependencyDag(const Circuit &circuit) : _circuit(&circuit)
{
    const int n = circuit.size();
    _preds.resize(static_cast<size_t>(n));
    _succs.resize(static_cast<size_t>(n));
    _prevOnQubit.resize(static_cast<size_t>(n));
    _firstOnQubit.assign(static_cast<size_t>(circuit.numQubits()), -1);

    std::vector<int> last_on_qubit(
        static_cast<size_t>(circuit.numQubits()), -1);

    for (int i = 0; i < n; ++i) {
        const Gate &g = circuit.gate(i);
        auto &preds = _preds[static_cast<size_t>(i)];
        auto &prevs = _prevOnQubit[static_cast<size_t>(i)];
        for (int q : g.qubits()) {
            const int prev = last_on_qubit[static_cast<size_t>(q)];
            prevs.push_back(prev);
            if (prev >= 0 &&
                std::find(preds.begin(), preds.end(), prev) == preds.end()) {
                preds.push_back(prev);
                _succs[static_cast<size_t>(prev)].push_back(i);
            }
            if (_firstOnQubit[static_cast<size_t>(q)] < 0)
                _firstOnQubit[static_cast<size_t>(q)] = i;
            last_on_qubit[static_cast<size_t>(q)] = i;
        }
        if (preds.empty())
            _roots.push_back(i);
    }
}

int
DependencyDag::prevOnQubit(int i, int q) const
{
    const Gate &g = _circuit->gate(i);
    for (size_t k = 0; k < g.qubits().size(); ++k) {
        if (g.qubits()[k] == q)
            return _prevOnQubit[static_cast<size_t>(i)][k];
    }
    throw std::invalid_argument("prevOnQubit: gate does not act on qubit");
}

std::vector<int>
DependencyDag::asapStart(const LatencyModel &lat) const
{
    const int n = numGates();
    std::vector<int> start(static_cast<size_t>(n), 1);
    // Gate list order is a topological order by construction.
    for (int i = 0; i < n; ++i) {
        int ready = 1;
        for (int p : _preds[static_cast<size_t>(i)]) {
            const int fin = start[static_cast<size_t>(p)] +
                            lat.latency(_circuit->gate(p));
            ready = std::max(ready, fin);
        }
        start[static_cast<size_t>(i)] = ready;
    }
    return start;
}

int
DependencyDag::criticalPath(const LatencyModel &lat) const
{
    const auto start = asapStart(lat);
    int makespan = 0;
    for (int i = 0; i < numGates(); ++i) {
        const int fin = start[static_cast<size_t>(i)] - 1 +
                        lat.latency(_circuit->gate(i));
        makespan = std::max(makespan, fin);
    }
    return makespan;
}

} // namespace toqm::ir
