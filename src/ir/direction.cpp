#include "direction.hpp"

#include <stdexcept>

namespace toqm::ir {

DirectionSet::DirectionSet(std::vector<std::pair<int, int>> directed)
    : _allowed(directed.begin(), directed.end())
{}

DirectionSet
DirectionSet::bidirectional(
    const std::vector<std::pair<int, int>> &edges)
{
    std::vector<std::pair<int, int>> both;
    both.reserve(edges.size() * 2);
    for (const auto &[a, b] : edges) {
        both.emplace_back(a, b);
        both.emplace_back(b, a);
    }
    return DirectionSet(std::move(both));
}

DirectionSet
ibmQX2Directions()
{
    // Historical ibmqx2 calibration sheet: arrows point
    // control -> target.
    return DirectionSet({{1, 0},
                         {2, 0},
                         {2, 1},
                         {3, 2},
                         {3, 4},
                         {4, 2}});
}

DirectionResult
enforceCxDirections(const Circuit &physical,
                    const DirectionSet &directions)
{
    DirectionResult result;
    result.circuit = Circuit(physical.numQubits(),
                             physical.name() + "_directed");
    for (const Gate &g : physical.gates()) {
        if (g.kind() != GateKind::CX) {
            result.circuit.add(g);
            continue;
        }
        const int c = g.qubit(0);
        const int t = g.qubit(1);
        if (directions.allowed(c, t)) {
            result.circuit.add(g);
            continue;
        }
        if (!directions.allowed(t, c)) {
            throw std::invalid_argument(
                "CX between q" + std::to_string(c) + " and q" +
                std::to_string(t) +
                " is allowed in neither direction; the circuit is "
                "not mapped to this device");
        }
        // H-conjugated reversal.
        result.circuit.addH(c);
        result.circuit.addH(t);
        result.circuit.addCX(t, c);
        result.circuit.addH(c);
        result.circuit.addH(t);
        ++result.reversedCx;
    }
    return result;
}

} // namespace toqm::ir
