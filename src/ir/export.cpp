#include "export.hpp"

#include <sstream>

#include "schedule.hpp"

namespace toqm::ir {

std::string
toDot(const arch::CouplingGraph &graph, const std::vector<int> &layout)
{
    std::vector<int> phys2log(
        static_cast<size_t>(graph.numQubits()), -1);
    for (size_t l = 0; l < layout.size(); ++l) {
        if (layout[l] >= 0)
            phys2log[static_cast<size_t>(layout[l])] =
                static_cast<int>(l);
    }

    std::ostringstream os;
    os << "graph \"" << graph.name() << "\" {\n";
    os << "  node [shape=circle];\n";
    for (int p = 0; p < graph.numQubits(); ++p) {
        os << "  Q" << p << " [label=\"Q" << p;
        if (phys2log[static_cast<size_t>(p)] >= 0)
            os << "\\nq" << phys2log[static_cast<size_t>(p)];
        os << "\"];\n";
    }
    for (const auto &[a, b] : graph.edges())
        os << "  Q" << a << " -- Q" << b << ";\n";
    os << "}\n";
    return os.str();
}

std::string
scheduleToJson(const Circuit &circuit, const LatencyModel &latency)
{
    const Schedule sched = scheduleAsap(circuit, latency);
    std::ostringstream os;
    os << "{\n  \"name\": \"" << circuit.name() << "\",\n";
    os << "  \"qubits\": " << circuit.numQubits() << ",\n";
    os << "  \"makespan\": " << sched.makespan << ",\n";
    os << "  \"gates\": [\n";
    for (int i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit.gate(i);
        os << "    {\"name\": \"" << g.name() << "\", \"qubits\": [";
        for (size_t k = 0; k < g.qubits().size(); ++k) {
            if (k > 0)
                os << ", ";
            os << g.qubits()[k];
        }
        os << "], \"start\": "
           << sched.startCycle[static_cast<size_t>(i)]
           << ", \"duration\": " << latency.latency(g) << "}";
        os << (i + 1 < circuit.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
    return os.str();
}

std::string
mappingToJson(const MappedCircuit &mapped, const LatencyModel &latency)
{
    std::ostringstream os;
    os << "{\n  \"initialLayout\": [";
    for (size_t l = 0; l < mapped.initialLayout.size(); ++l) {
        if (l > 0)
            os << ", ";
        os << mapped.initialLayout[l];
    }
    os << "],\n  \"finalLayout\": [";
    for (size_t l = 0; l < mapped.finalLayout.size(); ++l) {
        if (l > 0)
            os << ", ";
        os << mapped.finalLayout[l];
    }
    os << "],\n  \"swaps\": " << mapped.physical.numSwaps() << ",\n";
    os << "  \"schedule\": "
       << scheduleToJson(mapped.physical, latency);
    os << "}\n";
    return os.str();
}

} // namespace toqm::ir
