#include "analysis.hpp"

#include <algorithm>
#include <sstream>

#include "schedule.hpp"

namespace toqm::ir {

std::string
RoutingReport::str() const
{
    std::ostringstream os;
    os.precision(3);
    os << "cycles " << mappedCycles << " (ideal " << idealCycles
       << ", x" << depthOverhead << "), swaps " << swapCount << " ("
       << swapOverhead << " per 2q gate), swap hiding " << swapHiding
       << ", utilization " << utilization;
    return os.str();
}

RoutingReport
analyzeRouting(const Circuit &logical, const MappedCircuit &mapped,
               const LatencyModel &lat)
{
    RoutingReport report;
    report.idealCycles = idealCycles(logical, lat);
    const Schedule sched = scheduleAsap(mapped.physical, lat);
    report.mappedCycles = sched.makespan;
    report.swapCount = mapped.physical.numSwaps();
    report.twoQubitGates = logical.numTwoQubitGates();

    report.depthOverhead =
        report.idealCycles > 0
            ? static_cast<double>(report.mappedCycles) /
                  report.idealCycles
            : 1.0;
    report.swapOverhead =
        report.twoQubitGates > 0
            ? static_cast<double>(report.swapCount) /
                  report.twoQubitGates
            : 0.0;

    const int swap_cycles =
        report.swapCount * lat.swapLatency();
    if (swap_cycles > 0) {
        const double exposed =
            report.mappedCycles - report.idealCycles;
        report.swapHiding = std::clamp(
            1.0 - exposed / swap_cycles, 0.0, 1.0);
    } else {
        report.swapHiding = 1.0;
    }

    // Busy cycles: each gate occupies (latency x #operands) cell
    // cycles; divide by the area of the active schedule.
    long busy = 0;
    std::vector<char> active(
        static_cast<size_t>(mapped.physical.numQubits()), 0);
    for (const Gate &g : mapped.physical.gates()) {
        if (g.isBarrier())
            continue;
        busy += static_cast<long>(lat.latency(g)) * g.numQubits();
        for (int q : g.qubits())
            active[static_cast<size_t>(q)] = 1;
    }
    const long active_qubits =
        std::count(active.begin(), active.end(), 1);
    if (report.mappedCycles > 0 && active_qubits > 0) {
        report.utilization =
            static_cast<double>(busy) /
            (static_cast<double>(report.mappedCycles) * active_qubits);
    }
    return report;
}

} // namespace toqm::ir
