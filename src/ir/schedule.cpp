#include "schedule.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "dag.hpp"
#include "obs/observer.hpp"

namespace toqm::ir {

int
Schedule::finishCycle(int i, const Circuit &circuit,
                      const LatencyModel &lat) const
{
    return startCycle[static_cast<size_t>(i)] - 1 +
           lat.latency(circuit.gate(i));
}

Schedule
scheduleAsap(const Circuit &circuit, const LatencyModel &lat)
{
    const obs::PhaseScope obs_phase("schedule");
    const DependencyDag dag(circuit);
    Schedule sched;
    sched.startCycle = dag.asapStart(lat);
    sched.makespan = dag.criticalPath(lat);
    return sched;
}

int
idealCycles(const Circuit &circuit, const LatencyModel &lat)
{
    return scheduleAsap(circuit.withoutSwapsAndBarriers(), lat).makespan;
}

std::string
renderTimeline(const Circuit &circuit, const LatencyModel &lat,
               int max_cycles)
{
    const Schedule sched = scheduleAsap(circuit, lat);
    const int cycles = std::min(sched.makespan, max_cycles);
    const int nq = circuit.numQubits();

    // cell[q][c]: short label of the gate busy on qubit q at cycle c.
    std::vector<std::vector<std::string>> cell(
        static_cast<size_t>(nq),
        std::vector<std::string>(static_cast<size_t>(cycles), "."));
    for (int i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit.gate(i);
        if (g.isBarrier())
            continue;
        const int s = sched.startCycle[static_cast<size_t>(i)];
        const int f = sched.finishCycle(i, circuit, lat);
        std::string label = g.isSwap() ? "sw" : g.name().substr(0, 2);
        label += std::to_string(i);
        for (int c = s; c <= std::min(f, cycles); ++c) {
            for (int q : g.qubits())
                cell[static_cast<size_t>(q)][static_cast<size_t>(c - 1)] =
                    label;
        }
    }

    std::ostringstream os;
    os << "cycles: " << sched.makespan << "\n";
    for (int q = 0; q < nq; ++q) {
        os << "q" << std::left << std::setw(3) << q << "|";
        for (int c = 0; c < cycles; ++c)
            os << std::setw(6) << cell[static_cast<size_t>(q)]
                                      [static_cast<size_t>(c)];
        os << "\n";
    }
    return os.str();
}

} // namespace toqm::ir
