#include "transforms.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "schedule.hpp"

namespace toqm::ir {

namespace {

bool
isSelfInverse(const Gate &g)
{
    switch (g.kind()) {
      case GateKind::H:
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::Swap:
        return true;
      default:
        return false;
    }
}

/** Operand order matters for CX; not for the symmetric kinds. */
bool
sameOperation(const Gate &a, const Gate &b)
{
    if (a.kind() != b.kind() || a.params() != b.params())
        return false;
    if (a.qubits() == b.qubits())
        return true;
    const bool symmetric = a.kind() == GateKind::Swap ||
                           a.kind() == GateKind::CZ ||
                           a.kind() == GateKind::CP ||
                           a.kind() == GateKind::GT ||
                           a.kind() == GateKind::RZZ;
    if (!symmetric || a.numQubits() != 2)
        return false;
    return a.qubit(0) == b.qubit(1) && a.qubit(1) == b.qubit(0);
}

/** True if gates i and j act on the same qubit set. */
bool
sameQubitSet(const Gate &a, const Gate &b)
{
    if (a.numQubits() != b.numQubits())
        return false;
    for (int q : a.qubits()) {
        if (!b.actsOn(q))
            return false;
    }
    return true;
}

} // namespace

Circuit
cancelRedundantGates(const Circuit &circuit)
{
    std::vector<Gate> gates(circuit.gates().begin(),
                            circuit.gates().end());
    std::vector<char> alive(gates.size(), 1);

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < gates.size(); ++i) {
            if (!alive[i] || !isSelfInverse(gates[i]) ||
                gates[i].isBarrier()) {
                continue;
            }
            // Find the next alive gate sharing a qubit with i.
            for (size_t j = i + 1; j < gates.size(); ++j) {
                if (!alive[j])
                    continue;
                if (!gates[j].sharesQubitWith(gates[i]))
                    continue;
                if (sameOperation(gates[i], gates[j]) &&
                    sameQubitSet(gates[i], gates[j])) {
                    alive[i] = alive[j] = 0;
                    changed = true;
                }
                break; // any interposed sharing gate blocks i
            }
        }
    }

    Circuit out(circuit.numQubits(), circuit.name());
    for (size_t i = 0; i < gates.size(); ++i) {
        if (alive[i])
            out.add(std::move(gates[i]));
    }
    return out;
}

Circuit
normalizeSwapGateOrder(const Circuit &circuit, bool gate_first)
{
    std::vector<Gate> gates(circuit.gates().begin(),
                            circuit.gates().end());

    bool changed = true;
    int guard = 4 * circuit.size() + 8;
    while (changed && guard-- > 0) {
        changed = false;
        for (size_t i = 0; i + 1 < gates.size(); ++i) {
            Gate &a = gates[i];
            // Find the next gate sharing a qubit with a.
            size_t j = i + 1;
            while (j < gates.size() && !gates[j].sharesQubitWith(a))
                ++j;
            if (j >= gates.size())
                continue;
            Gate &b = gates[j];
            if (a.numQubits() != 2 || b.numQubits() != 2 ||
                !sameQubitSet(a, b)) {
                continue;
            }
            // Exactly one of the two must be a swap.
            if (a.isSwap() == b.isSwap())
                continue;
            // Nothing else may touch the pair in between (guaranteed
            // by the "next sharing gate" scan only if the interposed
            // gates avoid BOTH qubits; the scan above stops at the
            // first sharing gate, so it is).
            const bool swap_first = a.isSwap();
            if (swap_first == !gate_first)
                continue; // already in the preferred order

            // SWAP;G  ==  G~;SWAP   (and symmetrically), where G~
            // has its operands exchanged.
            Gate gate = swap_first ? b : a;
            Gate swap = swap_first ? a : b;
            gate.setQubits({gate.qubit(1), gate.qubit(0)});
            if (gate_first) {
                gates[i] = gate;
                gates[j] = swap;
            } else {
                gates[i] = swap;
                gates[j] = gate;
            }
            changed = true;
        }
    }

    Circuit out(circuit.numQubits(), circuit.name());
    for (auto &g : gates)
        out.add(std::move(g));
    return out;
}

int
normalizedDepth(const Circuit &circuit, const LatencyModel &lat)
{
    return scheduleAsap(cancelRedundantGates(circuit), lat).makespan;
}

std::vector<std::string>
layerSignature(const Circuit &circuit, const LatencyModel &lat)
{
    const Schedule sched = scheduleAsap(circuit, lat);
    std::vector<std::vector<std::string>> per_cycle(
        static_cast<size_t>(sched.makespan));
    for (int i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit.gate(i);
        if (g.isBarrier())
            continue;
        std::ostringstream os;
        os << g.name() << "@";
        for (size_t k = 0; k < g.qubits().size(); ++k) {
            if (k > 0)
                os << ",";
            os << g.qubits()[k];
        }
        per_cycle[static_cast<size_t>(
                      sched.startCycle[static_cast<size_t>(i)] - 1)]
            .push_back(os.str());
    }
    std::vector<std::string> out;
    out.reserve(per_cycle.size());
    for (auto &ops : per_cycle) {
        std::sort(ops.begin(), ops.end());
        std::string joined;
        for (size_t k = 0; k < ops.size(); ++k) {
            if (k > 0)
                joined += ";";
            joined += ops[k];
        }
        out.push_back(std::move(joined));
    }
    return out;
}

int
detectRecurrence(const std::vector<std::string> &signature, int offset,
                 int max_period, bool ignore_counts)
{
    // Reduce each layer to its op-kind shape (multiset or set).
    const auto shape = [ignore_counts](const std::string &layer) {
        std::map<std::string, int> kinds;
        std::string token;
        std::istringstream in(layer);
        while (std::getline(in, token, ';')) {
            const size_t at = token.find('@');
            ++kinds[token.substr(0, at)];
        }
        std::ostringstream os;
        for (const auto &[kind, count] : kinds) {
            os << kind;
            if (!ignore_counts)
                os << "*" << count;
            os << "|";
        }
        return os.str();
    };

    std::vector<std::string> shapes;
    shapes.reserve(signature.size());
    for (const auto &layer : signature)
        shapes.push_back(shape(layer));

    const int n = static_cast<int>(shapes.size());
    for (int p = 1; p <= max_period; ++p) {
        if (offset + 2 * p > n)
            break; // need at least two full periods to claim one
        bool ok = true;
        for (int i = offset; i + p < n && ok; ++i)
            ok = shapes[static_cast<size_t>(i)] ==
                 shapes[static_cast<size_t>(i + p)];
        if (ok)
            return p;
    }
    return 0;
}

} // namespace toqm::ir
