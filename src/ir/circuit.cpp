#include "circuit.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace toqm::ir {

Circuit::Circuit(int num_qubits, std::string name)
    : _numQubits(num_qubits), _name(std::move(name))
{
    if (num_qubits < 0)
        throw std::invalid_argument("negative qubit count");
}

void
Circuit::add(Gate gate)
{
    for (int q : gate.qubits()) {
        if (q < 0 || q >= _numQubits)
            throw std::out_of_range("gate operand " + std::to_string(q) +
                                    " outside circuit of " +
                                    std::to_string(_numQubits) + " qubits");
    }
    _gates.push_back(std::move(gate));
}

void
Circuit::addCX(int control, int target)
{
    add(Gate(GateKind::CX, control, target));
}

void
Circuit::addCP(int q0, int q1, double angle)
{
    add(Gate(GateKind::CP, q0, q1, {angle}));
}

int
Circuit::numTwoQubitGates() const
{
    return static_cast<int>(std::count_if(
        _gates.begin(), _gates.end(), [](const Gate &g) {
            return g.numQubits() == 2 && !g.isBarrier();
        }));
}

int
Circuit::numSwaps() const
{
    return static_cast<int>(std::count_if(
        _gates.begin(), _gates.end(),
        [](const Gate &g) { return g.isSwap(); }));
}

int
Circuit::numComputeGates() const
{
    return static_cast<int>(std::count_if(
        _gates.begin(), _gates.end(), [](const Gate &g) {
            return !g.isBarrier() && !g.isMeasure();
        }));
}

Circuit
Circuit::remapped(const std::vector<int> &qubit_map) const
{
    if (static_cast<int>(qubit_map.size()) != _numQubits)
        throw std::invalid_argument("remapped: map size mismatch");
    Circuit out(_numQubits, _name);
    for (const Gate &g : _gates) {
        std::vector<int> qs;
        qs.reserve(g.qubits().size());
        for (int q : g.qubits())
            qs.push_back(qubit_map[static_cast<size_t>(q)]);
        Gate copy = g;
        copy.setQubits(std::move(qs));
        out.add(std::move(copy));
    }
    return out;
}

Circuit
Circuit::withoutSwapsAndBarriers() const
{
    Circuit out(_numQubits, _name);
    for (const Gate &g : _gates) {
        if (!g.isSwap() && !g.isBarrier())
            out.add(g);
    }
    return out;
}

std::string
Circuit::str() const
{
    std::ostringstream os;
    os << "// " << _name << ": " << _numQubits << " qubits, " << size()
       << " gates\n";
    for (const Gate &g : _gates)
        os << g.str() << ";\n";
    return os.str();
}

bool
Circuit::operator==(const Circuit &other) const
{
    return _numQubits == other._numQubits && _gates == other._gates;
}

} // namespace toqm::ir
