#include "queko.hpp"

#include <algorithm>
#include <stdexcept>

namespace toqm::ir {

namespace {

class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : _state(seed) {}

    std::uint64_t
    next()
    {
        _state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = _state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    int
    below(int bound)
    {
        return static_cast<int>(next() % static_cast<std::uint64_t>(bound));
    }

  private:
    std::uint64_t _state;
};

} // namespace

QuekoBenchmark
quekoCircuit(int num_physical, const std::vector<std::pair<int, int>> &edges,
             int depth, double density2q, double density1q,
             std::uint64_t seed)
{
    if (num_physical < 2 || edges.empty())
        throw std::invalid_argument("quekoCircuit: need a coupled device");
    if (depth < 1)
        throw std::invalid_argument("quekoCircuit: depth must be >= 1");

    SplitMix64 rng(seed);

    // Edges incident to each physical qubit, for backbone chaining.
    std::vector<std::vector<int>> incident(
        static_cast<size_t>(num_physical));
    for (size_t e = 0; e < edges.size(); ++e) {
        incident[static_cast<size_t>(edges[e].first)].push_back(
            static_cast<int>(e));
        incident[static_cast<size_t>(edges[e].second)].push_back(
            static_cast<int>(e));
    }

    Circuit phys(num_physical,
                 "queko_d" + std::to_string(depth));
    const int want2q = std::max(
        0, static_cast<int>(density2q * num_physical / 2.0));
    const int want1q =
        std::max(0, static_cast<int>(density1q * num_physical));
    constexpr GateKind one_q_kinds[] = {GateKind::X, GateKind::H,
                                        GateKind::T};

    int backbone = -1;
    for (int layer = 0; layer < depth; ++layer) {
        std::vector<bool> busy(static_cast<size_t>(num_physical), false);

        // 1. Backbone gate: must touch last layer's backbone qubit so
        //    the dependency chain spans all layers.
        if (layer == 0 || incident[static_cast<size_t>(backbone)].empty()) {
            const auto &[a, b] =
                edges[static_cast<size_t>(rng.below(
                    static_cast<int>(edges.size())))];
            phys.addCX(a, b);
            busy[static_cast<size_t>(a)] = busy[static_cast<size_t>(b)] =
                true;
            backbone = (rng.below(2) == 0) ? a : b;
        } else {
            const auto &inc = incident[static_cast<size_t>(backbone)];
            const auto &[a, b] = edges[static_cast<size_t>(
                inc[static_cast<size_t>(rng.below(
                    static_cast<int>(inc.size())))])];
            phys.addCX(a, b);
            busy[static_cast<size_t>(a)] = busy[static_cast<size_t>(b)] =
                true;
            backbone = (a == backbone) ? b : a;
        }

        // 2. Fill with additional disjoint 2-qubit gates.
        int placed2q = 1;
        for (int attempt = 0;
             placed2q < want2q && attempt < 4 * want2q; ++attempt) {
            const auto &[a, b] = edges[static_cast<size_t>(
                rng.below(static_cast<int>(edges.size())))];
            if (busy[static_cast<size_t>(a)] ||
                busy[static_cast<size_t>(b)]) {
                continue;
            }
            phys.addCX(a, b);
            busy[static_cast<size_t>(a)] = busy[static_cast<size_t>(b)] =
                true;
            ++placed2q;
        }

        // 3. Fill with 1-qubit gates on idle qubits.
        int placed1q = 0;
        for (int attempt = 0;
             placed1q < want1q && attempt < 4 * want1q + 4; ++attempt) {
            const int q = rng.below(num_physical);
            if (busy[static_cast<size_t>(q)])
                continue;
            phys.add(Gate(one_q_kinds[rng.below(3)], q));
            busy[static_cast<size_t>(q)] = true;
            ++placed1q;
        }
    }

    // Scramble physical labels with a hidden permutation
    // (Fisher-Yates): logical l sits on physical hiddenLayout[l].
    std::vector<int> phys2log(static_cast<size_t>(num_physical));
    for (int i = 0; i < num_physical; ++i)
        phys2log[static_cast<size_t>(i)] = i;
    for (int i = num_physical - 1; i > 0; --i)
        std::swap(phys2log[static_cast<size_t>(i)],
                  phys2log[static_cast<size_t>(rng.below(i + 1))]);

    QuekoBenchmark bench;
    bench.circuit = phys.remapped(phys2log);
    bench.circuit.setName(phys.name());
    bench.optimalDepth = depth;
    bench.hiddenLayout.assign(static_cast<size_t>(num_physical), -1);
    for (int p = 0; p < num_physical; ++p)
        bench.hiddenLayout[static_cast<size_t>(
            phys2log[static_cast<size_t>(p)])] = p;
    return bench;
}

} // namespace toqm::ir
