/**
 * @file
 * CX direction enforcement for devices with DIRECTED couplings.
 *
 * The paper (Section 2.2) folds link direction into the latency
 * model and treats couplings as undirected, which is what the mapper
 * does.  Real IBM QX devices, however, natively implement CX in only
 * one direction per link; the standard fix is a post-pass that
 * conjugates a wrong-way CX with Hadamards:
 *
 *     CX(a, b)  ==  H(a) H(b) CX(b, a) H(a) H(b)
 *
 * Running this pass after mapping yields a circuit that is compliant
 * with a directed device at a known extra cost, without touching the
 * mapper itself.
 */

#ifndef TOQM_IR_DIRECTION_HPP
#define TOQM_IR_DIRECTION_HPP

#include <set>
#include <utility>
#include <vector>

#include "circuit.hpp"

namespace toqm::ir {

/** The set of natively supported (control, target) CX directions. */
class DirectionSet
{
  public:
    /** @param directed allowed (control, target) pairs. */
    explicit DirectionSet(
        std::vector<std::pair<int, int>> directed);

    /** Every undirected edge allowed both ways (no-op pass). */
    static DirectionSet
    bidirectional(const std::vector<std::pair<int, int>> &edges);

    bool allowed(int control, int target) const
    {
        return _allowed.count({control, target}) != 0;
    }

  private:
    std::set<std::pair<int, int>> _allowed;
};

/** The historical IBM QX2 calibration's native CX directions. */
DirectionSet ibmQX2Directions();

/**
 * Rewrite every CX whose direction is not native into its
 * H-conjugated reversal.  Other gates pass through (swaps are
 * direction-free: 3 CXs of which any may be reversed the same way
 * downstream).
 *
 * @throws std::invalid_argument if some CX is allowed in NEITHER
 *         direction (the circuit is not mapped to this device).
 * @return the rewritten circuit and the number of reversed CXs.
 */
struct DirectionResult
{
    Circuit circuit;
    int reversedCx = 0;

    DirectionResult() : circuit(0) {}
};

DirectionResult enforceCxDirections(const Circuit &physical,
                                    const DirectionSet &directions);

} // namespace toqm::ir

#endif // TOQM_IR_DIRECTION_HPP
