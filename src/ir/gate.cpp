#include "gate.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace toqm::ir {

namespace {

struct KindName
{
    GateKind kind;
    const char *name;
};

constexpr std::array kindNames = {
    KindName{GateKind::H, "h"},
    KindName{GateKind::X, "x"},
    KindName{GateKind::Y, "y"},
    KindName{GateKind::Z, "z"},
    KindName{GateKind::S, "s"},
    KindName{GateKind::Sdg, "sdg"},
    KindName{GateKind::T, "t"},
    KindName{GateKind::Tdg, "tdg"},
    KindName{GateKind::SX, "sx"},
    KindName{GateKind::RX, "rx"},
    KindName{GateKind::RY, "ry"},
    KindName{GateKind::RZ, "rz"},
    KindName{GateKind::U1, "u1"},
    KindName{GateKind::U2, "u2"},
    KindName{GateKind::U3, "u3"},
    KindName{GateKind::ID, "id"},
    KindName{GateKind::CX, "cx"},
    KindName{GateKind::CZ, "cz"},
    KindName{GateKind::CP, "cp"},
    KindName{GateKind::Swap, "swap"},
    KindName{GateKind::GT, "gt"},
    KindName{GateKind::RZZ, "rzz"},
    KindName{GateKind::Barrier, "barrier"},
    KindName{GateKind::Measure, "measure"},
    KindName{GateKind::Other, "opaque"},
};

} // namespace

const char *
gateKindName(GateKind kind)
{
    for (const auto &entry : kindNames) {
        if (entry.kind == kind)
            return entry.name;
    }
    return "opaque";
}

GateKind
gateKindFromName(const std::string &name)
{
    for (const auto &entry : kindNames) {
        if (name == entry.name)
            return entry.kind;
    }
    return GateKind::Other;
}

bool
isTwoQubitKind(GateKind kind)
{
    switch (kind) {
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::CP:
      case GateKind::Swap:
      case GateKind::GT:
      case GateKind::RZZ:
        return true;
      default:
        return false;
    }
}

Gate::Gate(GateKind kind, int q0, std::vector<double> params)
    : _kind(kind), _name(gateKindName(kind)), _qubits{q0},
      _params(std::move(params))
{
    if (isTwoQubitKind(kind))
        throw std::invalid_argument(
            "two-qubit gate kind constructed with one operand");
}

Gate::Gate(GateKind kind, int q0, int q1, std::vector<double> params)
    : _kind(kind), _name(gateKindName(kind)), _qubits{q0, q1},
      _params(std::move(params))
{
    if (!isTwoQubitKind(kind) && kind != GateKind::Barrier &&
        kind != GateKind::Other) {
        throw std::invalid_argument(
            "one-qubit gate kind constructed with two operands");
    }
    if (q0 == q1)
        throw std::invalid_argument("two-qubit gate with identical operands");
}

Gate::Gate(std::string name, std::vector<int> qubits,
           std::vector<double> params)
    : _kind(gateKindFromName(name)), _name(std::move(name)),
      _qubits(std::move(qubits)), _params(std::move(params))
{
    if (_qubits.empty())
        throw std::invalid_argument("gate with no operands");
    if (_qubits.size() == 2 && _qubits[0] == _qubits[1])
        throw std::invalid_argument("two-qubit gate with identical operands");
}

bool
Gate::sharesQubitWith(const Gate &other) const
{
    return std::any_of(_qubits.begin(), _qubits.end(),
                       [&other](int q) { return other.actsOn(q); });
}

bool
Gate::actsOn(int q) const
{
    return std::find(_qubits.begin(), _qubits.end(), q) != _qubits.end();
}

void
Gate::setQubits(std::vector<int> qubits)
{
    if (qubits.size() != _qubits.size())
        throw std::invalid_argument("setQubits: operand count mismatch");
    _qubits = std::move(qubits);
}

std::string
Gate::str() const
{
    std::ostringstream os;
    os << _name;
    if (!_params.empty()) {
        os << "(";
        for (size_t i = 0; i < _params.size(); ++i) {
            if (i > 0)
                os << ", ";
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.6g", _params[i]);
            os << buf;
        }
        os << ")";
    }
    os << " ";
    for (size_t i = 0; i < _qubits.size(); ++i) {
        if (i > 0)
            os << ", ";
        os << "q[" << _qubits[i] << "]";
    }
    return os.str();
}

bool
Gate::operator==(const Gate &other) const
{
    return _kind == other._kind && _name == other._name &&
           _qubits == other._qubits && _params == other._params;
}

} // namespace toqm::ir
