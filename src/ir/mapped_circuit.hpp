/**
 * @file
 * The common result type of every qubit mapper in this repository.
 *
 * Layout convention: a layout vector maps logical qubit -> physical
 * qubit (layout[l] == p).  The physical register may be larger than
 * the logical one (architectures usually have spare qubits), so a
 * layout is an injection from [0, num_logical) into
 * [0, num_physical).  An inserted SWAP in the physical circuit
 * exchanges the logical qubits resident on its two physical operands.
 */

#ifndef TOQM_IR_MAPPED_CIRCUIT_HPP
#define TOQM_IR_MAPPED_CIRCUIT_HPP

#include <vector>

#include "circuit.hpp"

namespace toqm::ir {

/** A hardware-compliant transformed circuit plus its layouts. */
struct MappedCircuit
{
    /** The transformed circuit; operands are PHYSICAL qubit indices. */
    Circuit physical;
    /** Initial layout: initialLayout[logical] = physical. */
    std::vector<int> initialLayout;
    /** Final layout after all swaps: finalLayout[logical] = physical. */
    std::vector<int> finalLayout;

    MappedCircuit() : physical(0) {}

    explicit MappedCircuit(Circuit phys, std::vector<int> initial,
                           std::vector<int> final_layout)
        : physical(std::move(phys)), initialLayout(std::move(initial)),
          finalLayout(std::move(final_layout))
    {}
};

/**
 * Invert an injective layout.
 *
 * @param layout logical -> physical, injective.
 * @param num_physical size of the physical register.
 * @return physical -> logical, with -1 for unoccupied physical qubits.
 */
std::vector<int> invertLayout(const std::vector<int> &layout,
                              int num_physical);

/**
 * @return true if @p layout is an injection from [0, layout.size())
 * into [0, num_physical).
 */
bool isInjectiveLayout(const std::vector<int> &layout, int num_physical);

/** The identity layout over @p n qubits. */
std::vector<int> identityLayout(int n);

/**
 * Recompute the final layout implied by @p initial and the swaps in
 * @p physical (used both by mappers and by the verifier as a cross
 * check).
 */
std::vector<int> propagateLayout(const Circuit &physical,
                                 const std::vector<int> &initial);

} // namespace toqm::ir

#endif // TOQM_IR_MAPPED_CIRCUIT_HPP
