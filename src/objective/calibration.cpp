#include "calibration.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "fault/fault.hpp"
#include "obs/json.hpp"

namespace toqm::objective {

namespace {

[[noreturn]] void
fail(const std::string &what)
{
    throw CalibrationError("calibration: " + what);
}

double
requireNumber(const obs::json::ValuePtr &v, const std::string &path)
{
    if (v == nullptr || !v->isNumber())
        fail(path + ": expected a number");
    return v->asNumber();
}

/** A probability that may multiply a fidelity: [0, 1). */
double
requireRate(const obs::json::ValuePtr &v, const std::string &path)
{
    const double rate = requireNumber(v, path);
    if (!(rate >= 0.0) || rate >= 1.0)
        fail(path + ": error rate must be in [0, 1)");
    return rate;
}

int
requireQubit(const obs::json::ValuePtr &v, int num_qubits,
             const std::string &path)
{
    const double n = requireNumber(v, path);
    const int q = static_cast<int>(n);
    if (static_cast<double>(q) != n || q < 0 || q >= num_qubits)
        fail(path + ": qubit index must be an integer in [0, " +
             std::to_string(num_qubits) + ")");
    return q;
}

std::vector<CalibrationData::EdgeError>
parseEdgeErrors(const obs::json::ValuePtr &v, int num_qubits,
                const std::string &path)
{
    std::vector<CalibrationData::EdgeError> out;
    if (v == nullptr)
        return out;
    if (!v->isArray())
        fail(path + ": expected an array");
    const auto &arr = v->asArray();
    out.reserve(arr.size());
    for (std::size_t i = 0; i < arr.size(); ++i) {
        const std::string at = path + "[" + std::to_string(i) + "]";
        const obs::json::ValuePtr &rec = arr[i];
        if (rec == nullptr || !rec->isObject())
            fail(at + ": expected an object");
        const obs::json::ValuePtr edge = rec->get("edge");
        if (edge == nullptr || !edge->isArray() ||
            edge->asArray().size() != 2)
            fail(at + ".edge: expected a two-element array");
        CalibrationData::EdgeError e;
        e.q0 = requireQubit(edge->asArray()[0], num_qubits,
                            at + ".edge[0]");
        e.q1 = requireQubit(edge->asArray()[1], num_qubits,
                            at + ".edge[1]");
        if (e.q0 == e.q1)
            fail(at + ".edge: self-loop (both endpoints are " +
                 std::to_string(e.q0) + ")");
        e.error = requireRate(rec->get("error"), at + ".error");
        out.push_back(e);
    }
    return out;
}

const CalibrationData::EdgeError *
findEdge(const std::vector<CalibrationData::EdgeError> &edges, int q0,
         int q1)
{
    for (const CalibrationData::EdgeError &e : edges) {
        if ((e.q0 == q0 && e.q1 == q1) || (e.q0 == q1 && e.q1 == q0))
            return &e;
    }
    return nullptr;
}

void
appendDouble(std::string &out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

/** splitmix64: tiny, seedable, identical on every platform. */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Uniform double in [lo, hi) from the top 53 bits. */
double
uniform(std::uint64_t &state, double lo, double hi)
{
    const double u =
        static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
    return lo + u * (hi - lo);
}

} // namespace

double
CalibrationData::oneQubit(int q) const
{
    if (q >= 0 && static_cast<std::size_t>(q) < oneQubitError.size())
        return oneQubitError[static_cast<std::size_t>(q)];
    return defaultOneQubitError;
}

double
CalibrationData::twoQubit(int q0, int q1) const
{
    if (const EdgeError *e = findEdge(twoQubitError, q0, q1))
        return e->error;
    return defaultTwoQubitError;
}

double
CalibrationData::swap(int q0, int q1) const
{
    if (const EdgeError *e = findEdge(swapError, q0, q1))
        return e->error;
    const double e2 = twoQubit(q0, q1);
    return 1.0 - (1.0 - e2) * (1.0 - e2) * (1.0 - e2);
}

CalibrationData
CalibrationData::parse(const std::string &text)
{
    obs::json::ValuePtr root;
    try {
        root = obs::json::parse(text);
    } catch (const std::exception &e) {
        // obs::json reports the byte offset; keep it verbatim.
        fail(e.what());
    }
    if (root == nullptr || !root->isObject())
        fail("top level: expected an object");

    const obs::json::ValuePtr version = root->get("schemaVersion");
    if (version == nullptr || !version->isNumber())
        fail("schemaVersion: required number missing");
    if (version->asNumber() != 1.0)
        fail("schemaVersion: unsupported version (this reader "
             "understands 1)");

    CalibrationData cal;
    if (const obs::json::ValuePtr device = root->get("device")) {
        if (!device->isString())
            fail("device: expected a string");
        cal.device = device->asString();
    }

    const double qubits =
        requireNumber(root->get("qubits"), "qubits");
    cal.numQubits = static_cast<int>(qubits);
    if (static_cast<double>(cal.numQubits) != qubits ||
        cal.numQubits <= 0)
        fail("qubits: must be a positive integer");

    if (root->has("t2Cycles")) {
        cal.t2Cycles =
            requireNumber(root->get("t2Cycles"), "t2Cycles");
        if (!(cal.t2Cycles > 0.0))
            fail("t2Cycles: must be positive");
    }
    if (root->has("defaultOneQubitError"))
        cal.defaultOneQubitError = requireRate(
            root->get("defaultOneQubitError"), "defaultOneQubitError");
    if (root->has("defaultTwoQubitError"))
        cal.defaultTwoQubitError = requireRate(
            root->get("defaultTwoQubitError"), "defaultTwoQubitError");

    if (const obs::json::ValuePtr arr = root->get("oneQubitError")) {
        if (!arr->isArray())
            fail("oneQubitError: expected an array");
        const auto &vals = arr->asArray();
        if (static_cast<int>(vals.size()) != cal.numQubits)
            fail("oneQubitError: expected exactly " +
                 std::to_string(cal.numQubits) + " entries, got " +
                 std::to_string(vals.size()));
        cal.oneQubitError.reserve(vals.size());
        for (std::size_t i = 0; i < vals.size(); ++i)
            cal.oneQubitError.push_back(requireRate(
                vals[i],
                "oneQubitError[" + std::to_string(i) + "]"));
    }

    cal.twoQubitError = parseEdgeErrors(root->get("twoQubitError"),
                                        cal.numQubits,
                                        "twoQubitError");
    cal.swapError = parseEdgeErrors(root->get("swapError"),
                                    cal.numQubits, "swapError");
    return cal;
}

CalibrationData
CalibrationData::load(const std::string &path)
{
    // Fault site: calibration files come from external telemetry and
    // are the most likely IO to go stale or unreadable in service.
    TOQM_FAULT_POINT(CalibrationIo);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fail("cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad())
        fail("read error on '" + path + "'");
    try {
        return parse(text.str());
    } catch (const CalibrationError &e) {
        throw CalibrationError(std::string(e.what()) + " (in '" +
                               path + "')");
    }
}

std::string
CalibrationData::toJson() const
{
    std::string out = "{\n  \"schemaVersion\": 1,\n  \"device\": \"";
    for (const char c : device) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += "\",\n  \"qubits\": ";
    out += std::to_string(numQubits);
    out += ",\n  \"t2Cycles\": ";
    appendDouble(out, t2Cycles);
    out += ",\n  \"defaultOneQubitError\": ";
    appendDouble(out, defaultOneQubitError);
    out += ",\n  \"defaultTwoQubitError\": ";
    appendDouble(out, defaultTwoQubitError);
    if (!oneQubitError.empty()) {
        out += ",\n  \"oneQubitError\": [";
        for (std::size_t i = 0; i < oneQubitError.size(); ++i) {
            if (i > 0)
                out += ", ";
            appendDouble(out, oneQubitError[i]);
        }
        out += ']';
    }
    const auto emitEdges = [&out](const char *key,
                                  const std::vector<EdgeError> &edges) {
        if (edges.empty())
            return;
        out += ",\n  \"";
        out += key;
        out += "\": [\n";
        for (std::size_t i = 0; i < edges.size(); ++i) {
            if (i > 0)
                out += ",\n";
            out += "    {\"edge\": [";
            out += std::to_string(edges[i].q0);
            out += ", ";
            out += std::to_string(edges[i].q1);
            out += "], \"error\": ";
            appendDouble(out, edges[i].error);
            out += '}';
        }
        out += "\n  ]";
    };
    emitEdges("twoQubitError", twoQubitError);
    emitEdges("swapError", swapError);
    out += "\n}\n";
    return out;
}

CalibrationData
CalibrationData::synthesize(const arch::CouplingGraph &graph,
                            std::uint64_t seed)
{
    CalibrationData cal;
    cal.device = graph.name();
    cal.numQubits = graph.numQubits();

    // Offset the stream so seed 0 does not start at splitmix's fixed
    // point; every (graph, seed) still maps to one fixed stream.
    std::uint64_t state = seed * 0x2545f4914f6cdd1dULL +
                          0x9e3779b97f4a7c15ULL;
    cal.oneQubitError.reserve(static_cast<std::size_t>(cal.numQubits));
    for (int q = 0; q < cal.numQubits; ++q)
        cal.oneQubitError.push_back(uniform(state, 5e-5, 2e-4));
    cal.twoQubitError.reserve(graph.edges().size());
    for (const std::pair<int, int> &edge : graph.edges()) {
        EdgeError e;
        e.q0 = edge.first;
        e.q1 = edge.second;
        e.error = uniform(state, 5e-4, 2e-3);
        cal.twoQubitError.push_back(e);
    }
    return cal;
}

} // namespace toqm::objective
