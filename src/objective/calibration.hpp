/**
 * @file
 * Device calibration data: the per-qubit / per-edge error rates a
 * noise-aware objective is built from.
 *
 * The on-disk format is one JSON object (see examples/calibration/):
 *
 *     {
 *       "schemaVersion": 1,
 *       "device": "tokyo",
 *       "qubits": 20,
 *       "t2Cycles": 5000,
 *       "defaultOneQubitError": 1e-4,
 *       "defaultTwoQubitError": 1e-3,
 *       "oneQubitError": [1.2e-4, ...],              // optional, per qubit
 *       "twoQubitError": [{"edge": [0, 1], "error": 8.1e-4}, ...],
 *       "swapError":     [{"edge": [0, 1], "error": 2.4e-3}, ...]
 *     }
 *
 * Unlisted qubits/edges fall back to the defaults; an unlisted swap
 * error derives from the edge's two-qubit error as 1 - (1 - e2)^3 —
 * a SWAP is three CXs on IBM hardware.  Parsing follows the repo's
 * hardened-input conventions: syntax errors surface the byte offset
 * (from obs::json), semantic errors name the offending key path, and
 * both arrive as CalibrationError so callers can map them to one exit
 * code.
 */

#ifndef TOQM_OBJECTIVE_CALIBRATION_HPP
#define TOQM_OBJECTIVE_CALIBRATION_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/coupling_graph.hpp"

namespace toqm::objective {

/** Any calibration-data failure: syntax, semantics, or I/O. */
class CalibrationError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Error rates of one device, resolved against defaults on lookup. */
struct CalibrationData
{
    /** One per-edge error record (undirected; q0/q1 order free). */
    struct EdgeError
    {
        int q0 = 0;
        int q1 = 0;
        double error = 0.0;
    };

    std::string device;
    int numQubits = 0;
    /** Decoherence horizon in cycles of the latency model. */
    double t2Cycles = 5000.0;
    double defaultOneQubitError = 1e-4;
    double defaultTwoQubitError = 1e-3;
    /** Per-qubit overrides; empty = all defaults. */
    std::vector<double> oneQubitError;
    /** Per-edge two-qubit overrides (unlisted edges = default). */
    std::vector<EdgeError> twoQubitError;
    /** Per-edge swap overrides (unlisted = 1 - (1 - e2)^3). */
    std::vector<EdgeError> swapError;

    /** Resolved one-qubit error of physical qubit @p q. */
    double oneQubit(int q) const;

    /** Resolved two-qubit error on the (undirected) pair @p q0/@p q1. */
    double twoQubit(int q0, int q1) const;

    /** Resolved swap error on the pair (override, else derived). */
    double swap(int q0, int q1) const;

    /**
     * Parse one calibration document.
     *
     * @throws CalibrationError on malformed JSON (with byte offset)
     *         or on semantic violations (with the key path): missing
     *         or wrong-typed required keys, unsupported schemaVersion,
     *         qubit indices out of [0, qubits), self-loop edges, or
     *         error rates outside [0, 1).
     */
    static CalibrationData parse(const std::string &text);

    /** Read @p path and parse() it; file errors name the path. */
    static CalibrationData load(const std::string &path);

    /**
     * Serialize back to the on-disk format.  parse(toJson()) resolves
     * every rate identically to the original (round-trip property;
     * covered by tests/objective).
     */
    std::string toJson() const;

    /**
     * Deterministic synthetic calibration for a device without a real
     * calibration file: per-qubit rates in [5e-5, 2e-4], per-edge
     * two-qubit rates in [5e-4, 2e-3] (realistic IBM-era spreads),
     * swap errors derived, t2Cycles = 5000.  Same (graph, seed) =>
     * identical data on every platform.
     */
    static CalibrationData synthesize(const arch::CouplingGraph &graph,
                                      std::uint64_t seed = 0);
};

} // namespace toqm::objective

#endif // TOQM_OBJECTIVE_CALIBRATION_HPP
