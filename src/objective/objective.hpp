/**
 * @file
 * The pluggable Objective layer: what a mapping search minimises.
 *
 * Every objective lowers to one `search::CostTable` — a totally
 * ordered, additive int64 cost key the exact searches minimise
 * without losing their optimality proofs (see cost_table.hpp for the
 * encoding invariants).  Three objectives ship:
 *
 *  - cycles: the paper's time-optimal objective.  No table at all —
 *    every mapper runs its legacy scalar-cycle arithmetic, bit for
 *    bit.
 *  - fidelity: minimise an encoded -ln(success probability) under
 *    CalibrationData.  key = round(1e7 * (payload * cycles / T2 +
 *    sum over placed gates/swaps of -ln(1 - e))); minimising it
 *    maximises the product of gate fidelities times the decoherence
 *    factor exp(-payload * makespan / T2) that sim::estimateFidelity
 *    reports (the ground truth this encoding approximates to 1e-7
 *    per action).
 *  - pareto: lexicographic (cycles, gate-error weight).  cycleWeight
 *    is 2^32, so a full cycle always outranks any realistic sum of
 *    per-gate weights; among schedules of equal depth the search
 *    prefers the lower-error placements.  If a pathological circuit
 *    ever accumulated more than 2^32 of action weight (hundreds of
 *    thousands of worst-case gates), the overflow would bleed into
 *    the cycles digit and the order would degrade gracefully toward
 *    fidelity-dominates — documented, not defended, because the
 *    exact searches stop far below that size.
 *
 * The table is instance-specific (its gateMin vector indexes the
 * searched circuit), so callers build one per (circuit, device) via
 * makeTable() and keep it alive for the duration of the run.
 */

#ifndef TOQM_OBJECTIVE_OBJECTIVE_HPP
#define TOQM_OBJECTIVE_OBJECTIVE_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "arch/coupling_graph.hpp"
#include "calibration.hpp"
#include "ir/circuit.hpp"
#include "ir/latency.hpp"
#include "search/cost_table.hpp"

namespace toqm::objective {

/** Which cost a search minimises. */
enum class ObjectiveKind {
    /** Makespan in cycles (the paper's objective; the default). */
    Cycles,
    /** Encoded -ln(success probability) from calibration data. */
    Fidelity,
    /** Lexicographic (cycles, then gate-error weight). */
    Pareto,
};

/** @return "cycles" / "fidelity" / "pareto". */
const char *toString(ObjectiveKind kind);

/**
 * @return the ObjectiveKind named @p name, or no value when the name
 * is unknown (the CLI turns that into a usage error).
 */
bool objectiveKindFromString(const std::string &name,
                             ObjectiveKind &kind);

/** One objective: a kind plus the calibration behind it. */
class Objective
{
  public:
    /** The cycles objective (no calibration, no table). */
    static Objective cycles();

    /** Noise-aware objective over @p cal. */
    static Objective fidelity(CalibrationData cal);

    /** Lexicographic cycles-then-error objective over @p cal. */
    static Objective pareto(CalibrationData cal);

    ObjectiveKind kind() const { return _kind; }

    /** Stable lower-case name for reports and the stats line. */
    const char *name() const { return toString(_kind); }

    /**
     * Identity for portfolio coherence: 0 for cycles; otherwise a
     * fingerprint of (kind, calibration contents).  Two entries may
     * share an incumbent channel iff their ids match — equal id
     * means equal encoded keys for equal circuits.
     */
    std::uint64_t objectiveId() const;

    /** The calibration behind a non-cycles objective. */
    const CalibrationData &calibration() const { return _cal; }

    /**
     * Build the encoded cost table for mapping @p logical onto
     * @p graph, or nullptr for the cycles objective (null table ==
     * the byte-identical legacy path everywhere).  The table's
     * gateMin indexes logical.withoutSwapsAndBarriers() — the
     * circuit every mapper actually searches.  The caller keeps the
     * table alive for the run.
     *
     * @throws CalibrationError when the calibration's qubit count
     *         does not cover the device.
     */
    std::unique_ptr<search::CostTable>
    makeTable(const ir::Circuit &logical,
              const arch::CouplingGraph &graph) const;

    /**
     * Decode an encoded cost key into objective units: cycles
     * verbatim for Cycles; -ln(success probability) for Fidelity;
     * the gate-error weight axis (-ln of the gate-fidelity product)
     * for Pareto, i.e. the key with its cycles digit stripped.
     */
    double decodeCost(std::int64_t key) const;

    /**
     * Ground-truth success probability of @p physical under the
     * calibration's rates and T2, via the sim-layer noise functor —
     * the quantity the fidelity encoding approximates.  Uses the
     * default sim::NoiseModel when the objective is Cycles (no
     * calibration of its own).
     *
     * @param payload_qubits logical width of the mapped circuit.
     */
    double successProbability(const ir::Circuit &physical,
                              const ir::LatencyModel &latency,
                              int payload_qubits) const;

  private:
    Objective(ObjectiveKind kind, CalibrationData cal)
        : _kind(kind), _cal(std::move(cal))
    {}

    ObjectiveKind _kind = ObjectiveKind::Cycles;
    CalibrationData _cal;
};

} // namespace toqm::objective

#endif // TOQM_OBJECTIVE_OBJECTIVE_HPP
