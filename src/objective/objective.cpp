#include "objective.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/noise.hpp"

namespace toqm::objective {

namespace {

/** Fixed-point scale of the encoded -ln terms: 1e-7 per action. */
constexpr double kScale = 1e7;

/** The cycles digit of the Pareto encoding. */
constexpr std::int64_t kParetoCycleWeight = std::int64_t{1} << 32;

/** Encode one error probability as a -ln weight. */
std::int64_t
errorWeight(double error)
{
    // error < 1 is enforced at parse time; clamp defensively so a
    // hand-built CalibrationData cannot produce a negative weight.
    const double e = std::min(std::max(error, 0.0),
                              1.0 - 1e-12);
    return std::llround(-std::log1p(-e) * kScale);
}

/** FNV-1a over @p text folded onto @p hash. */
std::uint64_t
fnv1a(std::uint64_t hash, const std::string &text)
{
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace

const char *
toString(ObjectiveKind kind)
{
    switch (kind) {
      case ObjectiveKind::Cycles:
        return "cycles";
      case ObjectiveKind::Fidelity:
        return "fidelity";
      case ObjectiveKind::Pareto:
        return "pareto";
    }
    return "cycles";
}

bool
objectiveKindFromString(const std::string &name, ObjectiveKind &kind)
{
    if (name == "cycles") {
        kind = ObjectiveKind::Cycles;
        return true;
    }
    if (name == "fidelity") {
        kind = ObjectiveKind::Fidelity;
        return true;
    }
    if (name == "pareto") {
        kind = ObjectiveKind::Pareto;
        return true;
    }
    return false;
}

Objective
Objective::cycles()
{
    return Objective(ObjectiveKind::Cycles, CalibrationData{});
}

Objective
Objective::fidelity(CalibrationData cal)
{
    return Objective(ObjectiveKind::Fidelity, std::move(cal));
}

Objective
Objective::pareto(CalibrationData cal)
{
    return Objective(ObjectiveKind::Pareto, std::move(cal));
}

std::uint64_t
Objective::objectiveId() const
{
    if (_kind == ObjectiveKind::Cycles)
        return 0;
    std::uint64_t hash = 0xcbf29ce484222325ULL; // FNV offset basis
    hash = fnv1a(hash, name());
    hash = fnv1a(hash, _cal.toJson());
    // Reserve 0 for cycles even against a (vanishing) hash collision.
    return hash == 0 ? 1 : hash;
}

std::unique_ptr<search::CostTable>
Objective::makeTable(const ir::Circuit &logical,
                     const arch::CouplingGraph &graph) const
{
    if (_kind == ObjectiveKind::Cycles)
        return nullptr;
    const int np = graph.numQubits();
    if (_cal.numQubits < np)
        throw CalibrationError(
            "calibration: covers " + std::to_string(_cal.numQubits) +
            " qubits but the device has " + std::to_string(np));

    auto table = std::make_unique<search::CostTable>();
    table->numPhysical = np;

    if (_kind == ObjectiveKind::Fidelity) {
        // One cycle exposes every payload qubit to decoherence:
        // d(-ln F)/d(makespan) = payload / T2.
        const std::int64_t cw = std::llround(
            static_cast<double>(logical.numQubits()) /
            _cal.t2Cycles * kScale);
        table->cycleWeight = std::max<std::int64_t>(1, cw);
    } else {
        table->cycleWeight = kParetoCycleWeight;
    }

    const std::size_t n = static_cast<std::size_t>(np);
    table->oneQubit.resize(n);
    table->twoQubit.resize(n * n);
    table->swap.resize(n * n);
    for (int p = 0; p < np; ++p)
        table->oneQubit[static_cast<std::size_t>(p)] =
            errorWeight(_cal.oneQubit(p));
    for (int p0 = 0; p0 < np; ++p0) {
        for (int p1 = 0; p1 < np; ++p1) {
            const std::size_t at = static_cast<std::size_t>(p0) * n +
                                   static_cast<std::size_t>(p1);
            table->twoQubit[at] = errorWeight(_cal.twoQubit(p0, p1));
            table->swap[at] = errorWeight(_cal.swap(p0, p1));
        }
    }

    // Layout-independent placement minima: a one-qubit gate can land
    // on any physical qubit, a two-qubit gate only on a coupled pair.
    std::int64_t min_one =
        std::numeric_limits<std::int64_t>::max();
    for (int p = 0; p < np; ++p)
        min_one = std::min(min_one,
                           table->oneQubit[static_cast<std::size_t>(p)]);
    if (np == 0)
        min_one = 0;
    std::int64_t min_two =
        std::numeric_limits<std::int64_t>::max();
    for (const std::pair<int, int> &edge : graph.edges())
        min_two =
            std::min(min_two,
                     table->twoQubitWeight(edge.first, edge.second));
    if (graph.edges().empty())
        min_two = errorWeight(_cal.defaultTwoQubitError);

    const ir::Circuit searched = logical.withoutSwapsAndBarriers();
    table->gateMin.resize(static_cast<std::size_t>(searched.size()));
    table->totalMin = 0;
    for (int i = 0; i < searched.size(); ++i) {
        const ir::Gate &g = searched.gate(i);
        std::int64_t w = 0;
        if (!g.isBarrier() && !g.isMeasure())
            w = g.numQubits() == 2 ? min_two : min_one;
        table->gateMin[static_cast<std::size_t>(i)] = w;
        table->totalMin += w;
    }
    return table;
}

double
Objective::decodeCost(std::int64_t key) const
{
    switch (_kind) {
      case ObjectiveKind::Cycles:
        return static_cast<double>(key);
      case ObjectiveKind::Fidelity:
        return static_cast<double>(key) / kScale;
      case ObjectiveKind::Pareto:
        return static_cast<double>(key % kParetoCycleWeight) / kScale;
    }
    return static_cast<double>(key);
}

double
Objective::successProbability(const ir::Circuit &physical,
                              const ir::LatencyModel &latency,
                              int payload_qubits) const
{
    if (_kind == ObjectiveKind::Cycles) {
        return sim::estimateFidelity(physical, latency,
                                     sim::NoiseModel{},
                                     payload_qubits)
            .total();
    }
    const CalibrationData &cal = _cal;
    const sim::GateErrorFn gate_error = [&cal](const ir::Gate &g) {
        if (g.isSwap())
            return cal.swap(g.qubit(0), g.qubit(1));
        if (g.numQubits() == 2)
            return cal.twoQubit(g.qubit(0), g.qubit(1));
        return cal.oneQubit(g.qubit(0));
    };
    return sim::estimateFidelity(physical, latency, gate_error,
                                 cal.t2Cycles, payload_qubits)
        .total();
}

} // namespace toqm::objective
