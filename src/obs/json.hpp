/**
 * @file
 * A minimal recursive-descent JSON parser.
 *
 * Exists so the observability artifacts (`--trace`, `--metrics-json`,
 * `--stats-json`) can be validated by the test suite and the
 * `toqm_obs_check` CI tool without any external dependency.  It
 * parses the full JSON grammar into a tree of `Value`s; it does NOT
 * aim to be fast or to preserve number fidelity beyond double.
 *
 * Errors throw `std::runtime_error` with a byte offset.
 */

#ifndef TOQM_OBS_JSON_HPP
#define TOQM_OBS_JSON_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace toqm::obs::json {

class Value;
using ValuePtr = std::shared_ptr<Value>;

class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type() const { return _type; }

    bool isNull() const { return _type == Type::Null; }

    bool isBool() const { return _type == Type::Bool; }

    bool isNumber() const { return _type == Type::Number; }

    bool isString() const { return _type == Type::String; }

    bool isArray() const { return _type == Type::Array; }

    bool isObject() const { return _type == Type::Object; }

    /** Typed accessors; throw std::runtime_error on mismatch. @{ */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<ValuePtr> &asArray() const;
    const std::map<std::string, ValuePtr> &asObject() const;
    /** @} */

    /** Object member or nullptr (also nullptr for non-objects). */
    ValuePtr get(const std::string &key) const;

    /** True when the object has member @p key. */
    bool has(const std::string &key) const;

  private:
    friend ValuePtr parse(const std::string &);
    friend class Parser;

    Type _type = Type::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<ValuePtr> _array;
    std::map<std::string, ValuePtr> _object;
};

/** Parse one JSON document (trailing garbage is an error). */
ValuePtr parse(const std::string &text);

} // namespace toqm::obs::json

#endif // TOQM_OBS_JSON_HPP
