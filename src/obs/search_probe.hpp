/**
 * @file
 * `SearchProbe` — the per-run hook the search kernel drives.
 *
 * A probe is bound once per mapping run (mapper name decides the
 * heartbeat label and metric prefix) and then poked on EVERY node
 * expansion.  The hot call is two branches when sampling is armed
 * and ONE when the observer is disabled; every `sampleInterval`-th
 * expansion it takes the slow path: records the gauge series the
 * Chrome trace shows as counter tracks (frontier size, live nodes,
 * pool bytes, expansion rate, best f) and lets the heartbeat decide
 * whether a progress line is owed.
 *
 * The first expansion always samples, so even tiny runs contribute
 * one point per gauge series to the trace.
 */

#ifndef TOQM_OBS_SEARCH_PROBE_HPP
#define TOQM_OBS_SEARCH_PROBE_HPP

#include <cstddef>
#include <cstdint>

namespace toqm::obs {

class SearchProbe
{
  public:
    /** Inert probe: every call is a single-branch no-op. */
    SearchProbe() = default;

    /**
     * Bind to the global observer.  The probe stays inert unless
     * some observability facility is enabled at bind time.
     * @p mapper must be a string literal.
     */
    explicit SearchProbe(const char *mapper);

    bool active() const { return _interval != 0; }

    /** Hot path: one expansion happened; gauge args are current. */
    void
    onExpansion(std::uint64_t expanded, double best_f,
                std::size_t frontier_size, std::uint64_t live_nodes,
                std::uint64_t pool_bytes)
    {
#ifndef TOQM_OBS_DISABLED
        if (_interval == 0)
            return;
        if (--_countdown != 0)
            return;
        _countdown = _interval;
        sample(expanded, best_f, frontier_size, live_nodes,
               pool_bytes);
#else
        (void)expanded;
        (void)best_f;
        (void)frontier_size;
        (void)live_nodes;
        (void)pool_bytes;
#endif
    }

    /**
     * End of run: flush aggregate counters into the metrics
     * registry and print a closing heartbeat line.
     */
    void finishRun(std::uint64_t expanded, std::uint64_t generated,
                   std::uint64_t filtered, std::uint64_t max_queue,
                   std::uint64_t peak_pool_bytes, double seconds);

  private:
    void sample(std::uint64_t expanded, double best_f,
                std::size_t frontier_size, std::uint64_t live_nodes,
                std::uint64_t pool_bytes);

    /** 0 = inert; otherwise the sampling cadence in expansions. */
    std::uint64_t _interval = 0;
    std::uint64_t _countdown = 0;
    const char *_mapper = "";
    /** Previous sample's clock/expansion count (rate estimation). */
    std::uint64_t _lastTs = 0;
    std::uint64_t _lastExpanded = 0;
};

} // namespace toqm::obs

#endif // TOQM_OBS_SEARCH_PROBE_HPP
