/**
 * @file
 * `MetricsRegistry` — named monotonic counters and last-value gauges
 * with a versioned JSON snapshot.
 *
 * The registry is the cold half of `toqm_obs`: hot paths batch their
 * observations (the search probe samples every N expansions, phase
 * scopes record once per phase) and flush aggregate numbers here, so
 * map lookups never sit on a per-node path.  The snapshot shape is a
 * stable contract consumed by `toqm_map --metrics-json`, the bench
 * harness footers and CI artifact checkers:
 *
 *   {"schemaVersion":1,"generator":"toqm_obs",
 *    "counters":{"search.expanded":123,...},
 *    "gauges":{"search.seconds":0.42,...}}
 *
 * Keys are emitted in sorted order, so snapshots of identical runs
 * are byte-identical and machine-diffable.
 *
 * Thread-safe: every operation takes the registry mutex.  That is
 * acceptable precisely BECAUSE this is the cold half — portfolio and
 * batch workers flush per-phase/per-run aggregates here, never
 * per-node observations.
 */

#ifndef TOQM_OBS_METRICS_HPP
#define TOQM_OBS_METRICS_HPP

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace toqm::obs {

class MetricsRegistry
{
  public:
    /** Version of the snapshot JSON shape. Bump on key changes. */
    static constexpr int kSchemaVersion = 1;

    /** Add @p delta to counter @p name (creating it at zero). */
    void add(const std::string &name, std::uint64_t delta);

    /** Increment counter @p name by one. */
    void increment(const std::string &name) { add(name, 1); }

    /** Current counter value (0 when never touched). */
    std::uint64_t counter(const std::string &name) const;

    /** Set gauge @p name to its latest observation. */
    void setGauge(const std::string &name, double value);

    /** Latest gauge value (0.0 when never set). */
    double gauge(const std::string &name) const;

    bool empty() const;

    void clear();

    /** The versioned snapshot described in the file comment. */
    std::string snapshotJson() const;

  private:
    mutable std::mutex _mutex;
    std::map<std::string, std::uint64_t> _counters;
    std::map<std::string, double> _gauges;
};

} // namespace toqm::obs

#endif // TOQM_OBS_METRICS_HPP
