#include "metrics.hpp"

#include <cstdio>

namespace toqm::obs {

namespace {

/** Append @p s as a JSON string literal (with escaping). */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

void
MetricsRegistry::add(const std::string &name, std::uint64_t delta)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _counters[name] += delta;
}

std::uint64_t
MetricsRegistry::counter(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    const auto it = _counters.find(name);
    return it == _counters.end() ? 0 : it->second;
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _gauges[name] = value;
}

double
MetricsRegistry::gauge(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    const auto it = _gauges.find(name);
    return it == _gauges.end() ? 0.0 : it->second;
}

bool
MetricsRegistry::empty() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    return _counters.empty() && _gauges.empty();
}

void
MetricsRegistry::clear()
{
    const std::lock_guard<std::mutex> lock(_mutex);
    _counters.clear();
    _gauges.clear();
}

std::string
MetricsRegistry::snapshotJson() const
{
    const std::lock_guard<std::mutex> lock(_mutex);
    std::string out;
    out.reserve(128 + 48 * (_counters.size() + _gauges.size()));
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "{\"schemaVersion\":%d,\"generator\":\"toqm_obs\"",
                  kSchemaVersion);
    out += buf;

    out += ",\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : _counters) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        std::snprintf(buf, sizeof(buf), ":%llu",
                      static_cast<unsigned long long>(value));
        out += buf;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : _gauges) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, name);
        std::snprintf(buf, sizeof(buf), ":%.6g", value);
        out += buf;
    }
    out += "}}";
    return out;
}

} // namespace toqm::obs
