/**
 * @file
 * `Observer` — the process-wide switchboard of `toqm_obs`.
 *
 * One global observer ties together the three observability
 * facilities and their master switches:
 *
 *  - a ring-buffered trace-event sink exported as Chrome trace JSON
 *    (`--trace FILE`, loadable in Perfetto / chrome://tracing),
 *  - a `MetricsRegistry` snapshot (`--metrics-json`),
 *  - a throttled stderr heartbeat for long runs (`--progress`).
 *
 * Overhead contract: with everything disabled (the default) the
 * instrumented code paths cost ONE relaxed atomic load and a
 * predictable branch per probe site — no clock reads, no allocation,
 * no stores (`BM_ObsProbeDisabled` in bench/micro_benchmarks.cpp
 * holds this under 2%).  Observation never influences search
 * decisions: mapper results are bit-identical with observability on
 * or off.
 *
 * Threading: configuration (`enableTrace` / `enableMetrics` /
 * `enableProgress` / `reset`) is single-threaded — do it before
 * spawning workers.  RECORDING is thread-safe: every thread records
 * trace events into its own lazily-registered `EventSink` (no locks
 * on the record path), the metrics registry takes a mutex on its
 * cold paths, and the heartbeat throttles with an atomic timestamp
 * race that at most one thread wins per interval.  `traceJson()`
 * merges the per-thread rings into one Chrome trace with one `tid`
 * lane per recording thread, so a portfolio race or a `--jobs N`
 * batch shows its workers side by side in Perfetto.
 *
 * Compiling with -DTOQM_OBS_DISABLED removes even the branch: every
 * probe site collapses to nothing.
 */

#ifndef TOQM_OBS_OBSERVER_HPP
#define TOQM_OBS_OBSERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "event_sink.hpp"
#include "metrics.hpp"
#include "progress.hpp"

namespace toqm::obs {

class Observer
{
  public:
    /** Default trace ring capacity (events). */
    static constexpr std::size_t kDefaultRingCapacity = 1 << 16;
    /** Default search-gauge sampling cadence (expansions). */
    static constexpr std::uint64_t kDefaultSampleInterval = 64;
    /** Default heartbeat interval (seconds). */
    static constexpr double kDefaultProgressInterval = 2.0;

    /** The process-wide observer (disabled until configured). */
    static Observer &global();

    /** @name Master switches (cheap to query)
     * @{ */
    bool active() const
    {
        return _active.load(std::memory_order_relaxed);
    }

    bool traceEnabled() const { return _traceEnabled; }

    bool metricsEnabled() const { return _metricsEnabled; }

    bool progressEnabled() const { return _heartbeat.enabled(); }
    /** @} */

    /** @name Configuration (before a run; not thread-safe)
     * @{ */
    void enableTrace(std::size_t ring_capacity = kDefaultRingCapacity);
    void enableMetrics();
    void enableProgress(double interval_seconds = kDefaultProgressInterval,
                        std::FILE *stream = stderr);
    void setSampleInterval(std::uint64_t every_n_expansions);
    /** Back to the fully-disabled state (drops all recorded data). */
    void reset();
    /** @} */

    /** Microseconds since this observer was (re)initialised. */
    std::uint64_t
    now() const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - _epoch)
                .count());
    }

    std::uint64_t sampleInterval() const { return _sampleInterval; }

    /**
     * The CALLING thread's event sink, registered (one `tid` lane in
     * the exported trace) on first use.  Worker threads each get
     * their own ring, so recording never takes a lock.
     */
    EventSink &sink();

    /** Number of per-thread sinks registered since the last
     *  enableTrace()/reset(). */
    std::size_t sinkCount() const;

    MetricsRegistry &metrics() { return _metrics; }

    const MetricsRegistry &metrics() const { return _metrics; }

    Heartbeat &heartbeat() { return _heartbeat; }

    /** @name Recording (no-ops for disabled facilities)
     * @{ */
    void beginSpan(const char *name, std::uint64_t ts);
    /** Closes a span opened at @p begin_ts; feeds phase metrics. */
    void endSpan(const char *name, std::uint64_t begin_ts);
    void instant(const char *name);
    void gauge(const char *name, double value, std::uint64_t ts);
    /** @} */

    /** Render the sink as Chrome trace JSON (Perfetto-loadable). */
    std::string traceJson() const;

    /** Write traceJson() to @p path; false (with errno set) on I/O
     *  failure. */
    bool writeTraceFile(const std::string &path) const;

  private:
    Observer() = default;

    void refreshActive();

    std::atomic<bool> _active{false};
    bool _traceEnabled = false;
    bool _metricsEnabled = false;
    std::uint64_t _sampleInterval = kDefaultSampleInterval;
    std::chrono::steady_clock::time_point _epoch =
        std::chrono::steady_clock::now();
    /**
     * Per-thread sinks.  `unique_ptr` keeps each sink's address
     * stable while the vector grows, so the thread-local fast-path
     * pointer held by `sink()` stays valid for the generation's
     * lifetime; `_sinkGeneration` bumps on enableTrace()/reset() to
     * invalidate those cached pointers.
     */
    mutable std::mutex _sinkMutex;
    std::vector<std::unique_ptr<EventSink>> _sinks;
    std::size_t _ringCapacity = 1;
    std::atomic<std::uint64_t> _sinkGeneration{1};
    MetricsRegistry _metrics;
    Heartbeat _heartbeat;
};

/**
 * RAII phase timer: records a Begin/End span pair in the trace and
 * accumulates `phase.<name>.micros` in the metrics registry.  With
 * observability off, construction is one flag test.
 *
 * @p name must be a string literal (the sink keeps the pointer).
 */
class PhaseScope
{
  public:
    explicit PhaseScope(const char *name)
    {
#ifndef TOQM_OBS_DISABLED
        Observer &o = Observer::global();
        if (o.active()) {
            _name = name;
            _begin = o.now();
            o.beginSpan(name, _begin);
        }
#else
        (void)name;
#endif
    }

    ~PhaseScope()
    {
#ifndef TOQM_OBS_DISABLED
        if (_name != nullptr)
            Observer::global().endSpan(_name, _begin);
#endif
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    const char *_name = nullptr;
    std::uint64_t _begin = 0;
};

} // namespace toqm::obs

#endif // TOQM_OBS_OBSERVER_HPP
