#include "search_probe.hpp"

#include <string>

#include "observer.hpp"

namespace toqm::obs {

SearchProbe::SearchProbe(const char *mapper)
{
    const Observer &o = Observer::global();
    if (!o.active())
        return;
    _interval = o.sampleInterval();
    _countdown = 1; // the first expansion always samples
    _mapper = mapper;
    Observer::global().instant("search.start");
}

void
SearchProbe::sample(std::uint64_t expanded, double best_f,
                    std::size_t frontier_size,
                    std::uint64_t live_nodes, std::uint64_t pool_bytes)
{
    Observer &o = Observer::global();
    const std::uint64_t ts = o.now();

    double rate = 0.0;
    if (ts > _lastTs) {
        rate = static_cast<double>(expanded - _lastExpanded) * 1e6 /
               static_cast<double>(ts - _lastTs);
    }
    _lastTs = ts;
    _lastExpanded = expanded;

    if (o.traceEnabled()) {
        o.gauge("search.expanded", static_cast<double>(expanded), ts);
        o.gauge("search.frontier",
                static_cast<double>(frontier_size), ts);
        o.gauge("search.live_nodes", static_cast<double>(live_nodes),
                ts);
        o.gauge("search.pool_bytes", static_cast<double>(pool_bytes),
                ts);
        o.gauge("search.best_f", best_f, ts);
        if (rate > 0.0)
            o.gauge("search.expansions_per_s", rate, ts);
    }

    if (o.heartbeat().due(ts)) {
        o.heartbeat().emit(
            "search(%s): expanded=%llu (%.3g/s) frontier=%zu "
            "live=%llu pool=%.1fMiB best-f=%.6g t=%.1fs",
            _mapper, static_cast<unsigned long long>(expanded), rate,
            frontier_size, static_cast<unsigned long long>(live_nodes),
            static_cast<double>(pool_bytes) / (1024.0 * 1024.0),
            best_f, static_cast<double>(ts) / 1e6);
    }
}

void
SearchProbe::finishRun(std::uint64_t expanded, std::uint64_t generated,
                       std::uint64_t filtered,
                       std::uint64_t max_queue,
                       std::uint64_t peak_pool_bytes, double seconds)
{
    if (_interval == 0)
        return;
    Observer &o = Observer::global();
    o.instant("search.done");
    if (o.metricsEnabled()) {
        MetricsRegistry &m = o.metrics();
        const std::string prefix = std::string("search.") + _mapper;
        m.add(prefix + ".runs", 1);
        m.add(prefix + ".expanded", expanded);
        m.add(prefix + ".generated", generated);
        m.add(prefix + ".filtered", filtered);
        m.setGauge(prefix + ".max_queue",
                   static_cast<double>(max_queue));
        m.setGauge(prefix + ".peak_pool_bytes",
                   static_cast<double>(peak_pool_bytes));
        m.setGauge(prefix + ".seconds", seconds);
    }
    if (o.progressEnabled() && o.heartbeat().beats() > 0) {
        o.heartbeat().emit(
            "search(%s): done — expanded=%llu generated=%llu "
            "peak-queue=%llu pool=%.1fMiB t=%.3fs",
            _mapper, static_cast<unsigned long long>(expanded),
            static_cast<unsigned long long>(generated),
            static_cast<unsigned long long>(max_queue),
            static_cast<double>(peak_pool_bytes) / (1024.0 * 1024.0),
            seconds);
    }
}

} // namespace toqm::obs
