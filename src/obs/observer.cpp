#include "observer.hpp"

#include <cerrno>
#include <cstring>

namespace toqm::obs {

Observer &
Observer::global()
{
    static Observer instance;
    return instance;
}

void
Observer::refreshActive()
{
    _active.store(_traceEnabled || _metricsEnabled ||
                      _heartbeat.enabled(),
                  std::memory_order_relaxed);
}

void
Observer::enableTrace(std::size_t ring_capacity)
{
    {
        const std::lock_guard<std::mutex> lock(_sinkMutex);
        _sinks.clear();
        _ringCapacity = ring_capacity > 0 ? ring_capacity : 1;
    }
    _sinkGeneration.fetch_add(1, std::memory_order_release);
    _traceEnabled = true;
    refreshActive();
}

void
Observer::enableMetrics()
{
    _metricsEnabled = true;
    refreshActive();
}

void
Observer::enableProgress(double interval_seconds, std::FILE *stream)
{
    _heartbeat = Heartbeat(interval_seconds, stream);
    refreshActive();
}

void
Observer::setSampleInterval(std::uint64_t every_n_expansions)
{
    _sampleInterval =
        every_n_expansions > 0 ? every_n_expansions : 1;
}

void
Observer::reset()
{
    _traceEnabled = false;
    _metricsEnabled = false;
    _sampleInterval = kDefaultSampleInterval;
    {
        const std::lock_guard<std::mutex> lock(_sinkMutex);
        _sinks.clear();
        _ringCapacity = 1;
    }
    _sinkGeneration.fetch_add(1, std::memory_order_release);
    _metrics.clear();
    _heartbeat = Heartbeat();
    _epoch = std::chrono::steady_clock::now();
    refreshActive();
}

EventSink &
Observer::sink()
{
    // Fast path: a thread-local pointer into the registry, valid for
    // one sink generation (bumped by enableTrace()/reset()).  The
    // unique_ptr indirection keeps the pointee stable while _sinks
    // grows under other threads' registrations.
    struct Cached
    {
        std::uint64_t generation = 0;
        EventSink *sink = nullptr;
    };
    thread_local Cached cached;
    const std::uint64_t generation =
        _sinkGeneration.load(std::memory_order_acquire);
    if (cached.sink != nullptr && cached.generation == generation)
        return *cached.sink;

    const std::lock_guard<std::mutex> lock(_sinkMutex);
    _sinks.push_back(std::make_unique<EventSink>(_ringCapacity));
    cached.generation = generation;
    cached.sink = _sinks.back().get();
    return *cached.sink;
}

std::size_t
Observer::sinkCount() const
{
    const std::lock_guard<std::mutex> lock(_sinkMutex);
    return _sinks.size();
}

void
Observer::beginSpan(const char *name, std::uint64_t ts)
{
    if (_traceEnabled)
        sink().record({TraceEvent::Kind::Begin, name, ts, 0.0});
}

void
Observer::endSpan(const char *name, std::uint64_t begin_ts)
{
    const std::uint64_t end_ts = now();
    if (_traceEnabled)
        sink().record({TraceEvent::Kind::End, name, end_ts, 0.0});
    if (_metricsEnabled) {
        _metrics.add(std::string("phase.") + name + ".micros",
                     end_ts - begin_ts);
        _metrics.increment(std::string("phase.") + name + ".count");
    }
}

void
Observer::instant(const char *name)
{
    if (_traceEnabled)
        sink().record({TraceEvent::Kind::Instant, name, now(), 0.0});
}

void
Observer::gauge(const char *name, double value, std::uint64_t ts)
{
    if (_traceEnabled)
        sink().record({TraceEvent::Kind::Gauge, name, ts, value});
}

namespace {

void
appendEscaped(std::string &out, const char *s)
{
    for (; *s != '\0'; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) >= 0x20) {
            out += c;
        }
    }
}

} // namespace

std::string
Observer::traceJson() const
{
    // Chrome trace-event "JSON object format": one traceEvents array
    // plus metadata.  Each recording thread's sink becomes its own
    // tid lane (numbered by registration order, main thread usually
    // 1), so Perfetto shows portfolio/batch workers side by side;
    // gauges become counter ("C") tracks.
    const std::lock_guard<std::mutex> lock(_sinkMutex);

    std::size_t held = 0;
    std::uint64_t dropped = 0;
    for (const auto &sink : _sinks) {
        held += sink->size();
        dropped += sink->dropped();
    }

    std::string out;
    out.reserve(128 + 96 * held);
    out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
           "\"generator\":\"toqm_obs\",\"schemaVersion\":1,"
           "\"droppedEvents\":";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(dropped));
    out += buf;
    out += "},\"traceEvents\":[";

    bool first = true;
    for (std::size_t lane = 0; lane < _sinks.size(); ++lane) {
        const unsigned long long tid =
            static_cast<unsigned long long>(lane + 1);
        _sinks[lane]->forEach([&](const TraceEvent &e) {
            if (!first)
                out += ',';
            first = false;
            const char *ph = "i";
            switch (e.kind) {
              case TraceEvent::Kind::Begin:
                ph = "B";
                break;
              case TraceEvent::Kind::End:
                ph = "E";
                break;
              case TraceEvent::Kind::Instant:
                ph = "i";
                break;
              case TraceEvent::Kind::Gauge:
                ph = "C";
                break;
            }
            out += "{\"name\":\"";
            appendEscaped(out, e.name);
            std::snprintf(buf, sizeof(buf),
                          "\",\"ph\":\"%s\",\"ts\":%llu,\"pid\":1,"
                          "\"tid\":%llu",
                          ph, static_cast<unsigned long long>(e.ts),
                          tid);
            out += buf;
            if (e.kind == TraceEvent::Kind::Gauge) {
                std::snprintf(buf, sizeof(buf),
                              ",\"args\":{\"value\":%.6g}", e.value);
                out += buf;
            } else if (e.kind == TraceEvent::Kind::Instant) {
                out += ",\"s\":\"t\"";
            } else {
                out += ",\"cat\":\"phase\"";
            }
            out += '}';
        });
    }
    out += "]}";
    return out;
}

bool
Observer::writeTraceFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return false;
    const std::string json = traceJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return (std::fclose(f) == 0) && ok;
}

} // namespace toqm::obs
