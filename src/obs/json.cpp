#include "json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace toqm::obs::json {

bool
Value::asBool() const
{
    if (_type != Type::Bool)
        throw std::runtime_error("json: not a bool");
    return _bool;
}

double
Value::asNumber() const
{
    if (_type != Type::Number)
        throw std::runtime_error("json: not a number");
    return _number;
}

const std::string &
Value::asString() const
{
    if (_type != Type::String)
        throw std::runtime_error("json: not a string");
    return _string;
}

const std::vector<ValuePtr> &
Value::asArray() const
{
    if (_type != Type::Array)
        throw std::runtime_error("json: not an array");
    return _array;
}

const std::map<std::string, ValuePtr> &
Value::asObject() const
{
    if (_type != Type::Object)
        throw std::runtime_error("json: not an object");
    return _object;
}

ValuePtr
Value::get(const std::string &key) const
{
    if (_type != Type::Object)
        return nullptr;
    const auto it = _object.find(key);
    return it == _object.end() ? nullptr : it->second;
}

bool
Value::has(const std::string &key) const
{
    return get(key) != nullptr;
}

class Parser
{
  public:
    explicit Parser(const std::string &text) : _text(text) {}

    ValuePtr
    document()
    {
        ValuePtr v = value();
        skipWs();
        if (_pos != _text.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("json: " + what + " at offset " +
                                 std::to_string(_pos));
    }

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r')) {
            ++_pos;
        }
    }

    char
    peek()
    {
        if (_pos >= _text.size())
            fail("unexpected end of input");
        return _text[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++_pos;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (_text.compare(_pos, n, lit) != 0)
            return false;
        _pos += n;
        return true;
    }

    ValuePtr
    value()
    {
        skipWs();
        const char c = peek();
        switch (c) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return stringValue();
          case 't': {
            if (!consumeLiteral("true"))
                fail("bad literal");
            auto v = std::make_shared<Value>();
            v->_type = Value::Type::Bool;
            v->_bool = true;
            return v;
          }
          case 'f': {
            if (!consumeLiteral("false"))
                fail("bad literal");
            auto v = std::make_shared<Value>();
            v->_type = Value::Type::Bool;
            v->_bool = false;
            return v;
          }
          case 'n': {
            if (!consumeLiteral("null"))
                fail("bad literal");
            return std::make_shared<Value>();
          }
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return number();
            fail("unexpected character");
        }
    }

    ValuePtr
    object()
    {
        expect('{');
        auto v = std::make_shared<Value>();
        v->_type = Value::Type::Object;
        skipWs();
        if (peek() == '}') {
            ++_pos;
            return v;
        }
        for (;;) {
            skipWs();
            const std::string key = parseString();
            skipWs();
            expect(':');
            v->_object[key] = value();
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    ValuePtr
    array()
    {
        expect('[');
        auto v = std::make_shared<Value>();
        v->_type = Value::Type::Array;
        skipWs();
        if (peek() == ']') {
            ++_pos;
            return v;
        }
        for (;;) {
            v->_array.push_back(value());
            skipWs();
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    ValuePtr
    stringValue()
    {
        auto v = std::make_shared<Value>();
        v->_type = Value::Type::String;
        v->_string = parseString();
        return v;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (_pos >= _text.size())
                fail("unterminated string");
            const char c = _text[_pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _text.size())
                fail("unterminated escape");
            const char e = _text[_pos++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (_pos + 4 > _text.size())
                    fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = _text[_pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // UTF-8 encode the BMP code point (no surrogate
                // pairing: the artifacts only contain ASCII).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    ValuePtr
    number()
    {
        const std::size_t start = _pos;
        if (peek() == '-')
            ++_pos;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '+' ||
                _text[_pos] == '-')) {
            ++_pos;
        }
        const std::string token = _text.substr(start, _pos - start);
        char *end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0')
            fail("bad number");
        auto v = std::make_shared<Value>();
        v->_type = Value::Type::Number;
        v->_number = d;
        return v;
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

ValuePtr
parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace toqm::obs::json
