/**
 * @file
 * Ring-buffered trace-event sink — the hot half of `toqm_obs`.
 *
 * Recording an event is an index increment plus a 24-byte store into
 * a pre-allocated ring: no locks, no allocation, no I/O.  When the
 * ring wraps, the OLDEST events are overwritten (and counted as
 * dropped) so a bounded buffer always holds the most recent window
 * of a run — the right bias for debugging where a long search spent
 * its time.
 *
 * Event names must be string literals (or otherwise outlive the
 * sink): the ring stores the pointer, never a copy.
 */

#ifndef TOQM_OBS_EVENT_SINK_HPP
#define TOQM_OBS_EVENT_SINK_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace toqm::obs {

/** One recorded observation, timestamped in microseconds. */
struct TraceEvent
{
    enum class Kind : std::uint8_t {
        /** Phase span opens ("B" in Chrome trace terms). */
        Begin,
        /** Phase span closes ("E"). */
        End,
        /** Point-in-time marker ("i"). */
        Instant,
        /** Sampled counter track value ("C"), e.g. frontier size. */
        Gauge,
    };

    Kind kind = Kind::Instant;
    /** Static string; the sink stores the pointer only. */
    const char *name = "";
    /** Microseconds since the observer's epoch (monotonic). */
    std::uint64_t ts = 0;
    /** Gauge value; unused for spans and instants. */
    double value = 0.0;
};

class EventSink
{
  public:
    explicit EventSink(std::size_t capacity)
        : _ring(capacity > 0 ? capacity : 1)
    {}

    std::size_t capacity() const { return _ring.size(); }

    /** Events currently held (<= capacity). */
    std::size_t size() const
    {
        return _total < _ring.size()
                   ? static_cast<std::size_t>(_total)
                   : _ring.size();
    }

    /** Events overwritten because the ring wrapped. */
    std::uint64_t dropped() const
    {
        return _total < _ring.size() ? 0 : _total - _ring.size();
    }

    std::uint64_t totalRecorded() const { return _total; }

    void
    record(const TraceEvent &event)
    {
        _ring[static_cast<std::size_t>(_total % _ring.size())] = event;
        ++_total;
    }

    /** Visit held events oldest -> newest. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::size_t n = size();
        const std::uint64_t start = _total - n;
        for (std::size_t i = 0; i < n; ++i) {
            fn(_ring[static_cast<std::size_t>((start + i) %
                                              _ring.size())]);
        }
    }

    void
    clear()
    {
        _total = 0;
    }

  private:
    std::vector<TraceEvent> _ring;
    /** Events ever recorded; ring position is _total % capacity. */
    std::uint64_t _total = 0;
};

} // namespace toqm::obs

#endif // TOQM_OBS_EVENT_SINK_HPP
