/**
 * @file
 * Throttled progress heartbeat for long mapping runs.
 *
 * The search probe asks `due(now)` at its sampling cadence; the
 * heartbeat answers true at most once per interval, so a
 * multi-minute exact-A* run prints a steady trickle of status lines
 * instead of either silence or a firehose.  The throttle logic is a
 * pure function of the timestamps passed in, which keeps it
 * deterministic and directly unit-testable.
 *
 * Thread-safe: the next-beat timestamp is an atomic that competing
 * threads race with compare-exchange, so at most ONE portfolio/batch
 * worker wins each interval and the others pay a single relaxed
 * load.
 */

#ifndef TOQM_OBS_PROGRESS_HPP
#define TOQM_OBS_PROGRESS_HPP

#include <atomic>
#include <cstdint>
#include <cstdio>

namespace toqm::obs {

class Heartbeat
{
  public:
    Heartbeat() = default;

    /** A heartbeat printing to @p stream every @p interval seconds. */
    Heartbeat(double interval_seconds, std::FILE *stream)
        : _interval_us(interval_seconds > 0.0
                           ? static_cast<std::uint64_t>(
                                 interval_seconds * 1e6)
                           : 1),
          _stream(stream), _enabled(true)
    {
        _next_us.store(_interval_us, std::memory_order_relaxed);
    }

    // The atomics make Heartbeat non-copyable by default, but the
    // Observer replaces its heartbeat wholesale on configuration
    // (`_heartbeat = Heartbeat(...)`), so copying transfers the
    // observable state.  Configuration is single-threaded (observer
    // contract); only due()/emit() race.
    Heartbeat(const Heartbeat &other) { *this = other; }

    Heartbeat &
    operator=(const Heartbeat &other)
    {
        _interval_us = other._interval_us;
        _next_us.store(
            other._next_us.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        _stream = other._stream;
        _beats.store(other._beats.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        _enabled = other._enabled;
        return *this;
    }

    bool enabled() const { return _enabled; }

    std::uint64_t intervalMicros() const { return _interval_us; }

    /**
     * True when a beat is owed at time @p now_us (microseconds on
     * the observer clock); arms the next beat one full interval
     * later.  The first beat comes one interval after start — a run
     * shorter than the interval stays silent.  Concurrent callers
     * race one compare-exchange; exactly one wins per interval.
     */
    bool
    due(std::uint64_t now_us)
    {
        if (!_enabled)
            return false;
        std::uint64_t next = _next_us.load(std::memory_order_relaxed);
        while (now_us >= next) {
            if (_next_us.compare_exchange_weak(
                    next, now_us + _interval_us,
                    std::memory_order_relaxed,
                    std::memory_order_relaxed))
                return true;
            // `next` was reloaded by the failed CAS; if another
            // thread already armed the next interval, we lost.
        }
        return false;
    }

    /** Printf-style status line, prefixed and newline-terminated. */
    template <typename... Args>
    void
    emit(const char *format, Args... args)
    {
        if (_stream == nullptr)
            return;
        std::fputs("[toqm] ", _stream);
        std::fprintf(_stream, format, args...);
        std::fputc('\n', _stream);
        std::fflush(_stream);
        _beats.fetch_add(1, std::memory_order_relaxed);
    }

    std::uint64_t
    beats() const
    {
        return _beats.load(std::memory_order_relaxed);
    }

  private:
    std::uint64_t _interval_us = 0;
    std::atomic<std::uint64_t> _next_us{0};
    std::FILE *_stream = nullptr;
    std::atomic<std::uint64_t> _beats{0};
    bool _enabled = false;
};

} // namespace toqm::obs

#endif // TOQM_OBS_PROGRESS_HPP
