/**
 * @file
 * Throttled progress heartbeat for long mapping runs.
 *
 * The search probe asks `due(now)` at its sampling cadence; the
 * heartbeat answers true at most once per interval, so a
 * multi-minute exact-A* run prints a steady trickle of status lines
 * instead of either silence or a firehose.  The throttle logic is a
 * pure function of the timestamps passed in, which keeps it
 * deterministic and directly unit-testable.
 */

#ifndef TOQM_OBS_PROGRESS_HPP
#define TOQM_OBS_PROGRESS_HPP

#include <cstdint>
#include <cstdio>

namespace toqm::obs {

class Heartbeat
{
  public:
    Heartbeat() = default;

    /** A heartbeat printing to @p stream every @p interval seconds. */
    Heartbeat(double interval_seconds, std::FILE *stream)
        : _interval_us(interval_seconds > 0.0
                           ? static_cast<std::uint64_t>(
                                 interval_seconds * 1e6)
                           : 1),
          _stream(stream), _enabled(true)
    {
        _next_us = _interval_us;
    }

    bool enabled() const { return _enabled; }

    std::uint64_t intervalMicros() const { return _interval_us; }

    /**
     * True when a beat is owed at time @p now_us (microseconds on
     * the observer clock); arms the next beat one full interval
     * later.  The first beat comes one interval after start — a run
     * shorter than the interval stays silent.
     */
    bool
    due(std::uint64_t now_us)
    {
        if (!_enabled || now_us < _next_us)
            return false;
        _next_us = now_us + _interval_us;
        return true;
    }

    /** Printf-style status line, prefixed and newline-terminated. */
    template <typename... Args>
    void
    emit(const char *format, Args... args)
    {
        if (_stream == nullptr)
            return;
        std::fputs("[toqm] ", _stream);
        std::fprintf(_stream, format, args...);
        std::fputc('\n', _stream);
        std::fflush(_stream);
        ++_beats;
    }

    std::uint64_t beats() const { return _beats; }

  private:
    std::uint64_t _interval_us = 0;
    std::uint64_t _next_us = 0;
    std::FILE *_stream = nullptr;
    std::uint64_t _beats = 0;
    bool _enabled = false;
};

} // namespace toqm::obs

#endif // TOQM_OBS_PROGRESS_HPP
