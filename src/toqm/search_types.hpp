/**
 * @file
 * Re-exports the search kernel's types into `toqm::core`.
 *
 * The node model, pool allocator, frontier policies and run report
 * live in `src/search/` (namespace `toqm::search`); the exact-mapper
 * layer here consumes them heavily enough that spelling the
 * namespace everywhere would only add noise, and existing code
 * (tests, tools, baselines) already names them via `core::`.
 */

#ifndef TOQM_CORE_SEARCH_TYPES_HPP
#define TOQM_CORE_SEARCH_TYPES_HPP

#include "search/cost_table.hpp"
#include "search/engine.hpp"
#include "search/frontier.hpp"
#include "search/node_pool.hpp"
#include "search/search_context.hpp"
#include "search/search_stats.hpp"

namespace toqm::core {

using search::Action;
using search::CostTable;
using search::NodePool;
using search::NodeRef;
using search::QIndex;
using search::SearchContext;
using search::SearchNode;
using search::SearchStats;
using search::SearchStatus;

} // namespace toqm::core

#endif // TOQM_CORE_SEARCH_TYPES_HPP
