#include "cost_estimator.hpp"

#include <algorithm>
#include <limits>

namespace toqm::core {

CostEstimator::CostEstimator(const SearchContext &ctx, int horizon_gates)
    : _ctx(ctx), _horizonGates(horizon_gates)
{
    // Reverse critical-path lengths.  A gate's successors are the
    // next gates on each of its operand qubits.
    const int n = ctx.numGates();
    _tail.assign(static_cast<size_t>(n), 0);
    for (int i = n - 1; i >= 0; --i) {
        const ir::Gate &g = _ctx.circuit().gate(i);
        int best_succ = 0;
        for (int q : g.qubits()) {
            const auto &gates = _ctx.qubitGates(q);
            const int pos = _ctx.posOnQubit(i, q);
            if (pos + 1 < static_cast<int>(gates.size())) {
                best_succ = std::max(
                    best_succ,
                    _tail[static_cast<size_t>(
                        gates[static_cast<size_t>(pos + 1)])]);
            }
        }
        _tail[static_cast<size_t>(i)] =
            _ctx.gateLatency(i) + best_succ;
    }
}

int
CostEstimator::twoQubitDelay(int d, int u, int t_a, int t_b) const
{
    // Enumerate all splits r + s = d - 1 of the required swaps
    // between the two operand qubits; each qubit only pays for delay
    // beyond its slack (u - T).  Take the split minimizing the larger
    // delay (Section 5.1).
    const int swap_len = _ctx.swapLatency();
    const int k = d - 1;
    const int slack_a = u - t_a;
    const int slack_b = u - t_b;
    int best = std::numeric_limits<int>::max();
    for (int r = 0; r <= k; ++r) {
        const int s = k - r;
        const int delay_a = std::max(r * swap_len - slack_a, 0);
        const int delay_b = std::max(s * swap_len - slack_b, 0);
        best = std::min(best, std::max(delay_a, delay_b));
    }
    return best;
}

int
CostEstimator::estimate(const SearchNode &node) const
{
    const int nl = _ctx.numLogical();
    int h = 0;

    // Scratch buffers: thread_local (not members) so estimate() is
    // re-entrant across concurrent searches — a portfolio race calls
    // it from many threads, sometimes on the SAME estimator.  After
    // first use on a thread the resize is a no-op (sizes only grow),
    // so the per-call cost matches the old mutable-member scheme.
    thread_local std::vector<int> ready;   // per logical qubit
    thread_local std::vector<int> busySum; // per logical qubit (T_q)
    if (static_cast<int>(ready.size()) < nl) {
        ready.resize(static_cast<size_t>(nl));
        busySum.resize(static_cast<size_t>(nl));
    }
    const int *l2p = node.log2phys();
    const int *busy = node.busyUntil();
    const int *head = node.head();

    // Relative availability of each logical qubit (0 == can start at
    // node.cycle + 1).  Partially executed gates and active swaps
    // enter the bound through this term (they are the "executed in
    // part" members of V_rem).
    for (int l = 0; l < nl; ++l) {
        const int p = l2p[l];
        const int avail =
            p >= 0 ? std::max(0, busy[p] - node.cycle) : 0;
        ready[static_cast<size_t>(l)] = avail;
        busySum[static_cast<size_t>(l)] = avail;
        h = std::max(h, avail);
        // Global critical-path bound through this qubit's next gate.
        const auto &gates = _ctx.qubitGates(l);
        if (head[l] < static_cast<int>(gates.size())) {
            h = std::max(
                h, avail + _tail[static_cast<size_t>(
                               gates[static_cast<size_t>(head[l])])]);
        }
    }

    int processed = 0;
    const int total = _ctx.numGates();
    for (int i = 0; i < total; ++i) {
        const ir::Gate &g = _ctx.circuit().gate(i);
        const int q0 = g.qubit(0);
        // Scheduled gates are not part of the remaining circuit.
        if (_ctx.posOnQubit(i, q0) < head[q0])
            continue;
        if (_horizonGates >= 0 && processed >= _horizonGates)
            break;
        ++processed;

        const int len = _ctx.gateLatency(i);
        if (g.numQubits() == 1) {
            const int u = ready[static_cast<size_t>(q0)];
            ready[static_cast<size_t>(q0)] = u + len;
            busySum[static_cast<size_t>(q0)] += len;
            h = std::max(h, u + len);
            continue;
        }

        const int q1 = g.qubit(1);
        const int u = std::max(ready[static_cast<size_t>(q0)],
                               ready[static_cast<size_t>(q1)]);
        const int p0 = l2p[q0];
        const int p1 = l2p[q1];
        int t_min = u;
        if (p0 >= 0 && p1 >= 0) {
            const int d = _ctx.graph().distance(p0, p1);
            if (d > 1) {
                t_min = u + twoQubitDelay(
                                d, u, busySum[static_cast<size_t>(q0)],
                                busySum[static_cast<size_t>(q1)]);
            }
        }
        // Unmapped operands (on-the-fly initial mapping) could still
        // be placed adjacent, so d == 1 is the admissible choice.
        ready[static_cast<size_t>(q0)] = t_min + len;
        ready[static_cast<size_t>(q1)] = t_min + len;
        busySum[static_cast<size_t>(q0)] += len;
        busySum[static_cast<size_t>(q1)] += len;
        h = std::max(h, t_min + len);
    }
    return h;
}

void
CostEstimator::score(SearchNode &node) const
{
    node.costH = estimate(node);
    const search::CostTable *table = _ctx.costTable();
    if (table == nullptr) {
        node.objH = node.costH;
        return;
    }
    const std::int64_t scheduled_min =
        (node.objG - table->cycleWeight *
                         static_cast<std::int64_t>(node.costG)) -
        node.objSlack;
    node.objH = table->cycleWeight *
                    static_cast<std::int64_t>(node.costH) +
                (table->totalMin - scheduled_min);
}

} // namespace toqm::core
