#include "cost_estimator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace toqm::core {

namespace {

/** floor(a / b) for b > 0 and any a (C++ division truncates). */
int
floorDiv(int a, int b)
{
    const int q = a / b;
    return (a % b != 0 && (a < 0) != (b < 0)) ? q - 1 : q;
}

} // namespace

CostEstimator::CostEstimator(const SearchContext &ctx, int horizon_gates)
    : _ctx(ctx), _horizonGates(horizon_gates),
#ifdef NDEBUG
      _auditInterval(0)
#else
      _auditInterval(kDebugAuditInterval)
#endif
{
    // Reverse critical-path lengths.  A gate's successors are the
    // next gates on each of its operand qubits.
    const int n = ctx.numGates();
    _tail.assign(static_cast<size_t>(n), 0);
    for (int i = n - 1; i >= 0; --i) {
        const ir::Gate &g = _ctx.circuit().gate(i);
        int best_succ = 0;
        for (int q : g.qubits()) {
            const auto &gates = _ctx.qubitGates(q);
            const int pos = _ctx.posOnQubit(i, q);
            if (pos + 1 < static_cast<int>(gates.size())) {
                best_succ = std::max(
                    best_succ,
                    _tail[static_cast<size_t>(
                        gates[static_cast<size_t>(pos + 1)])]);
            }
        }
        _tail[static_cast<size_t>(i)] =
            _ctx.gateLatency(i) + best_succ;
    }
}

int
CostEstimator::twoQubitDelayReference(int d, int u, int t_a,
                                      int t_b) const
{
    // Enumerate all splits r + s = d - 1 of the required swaps
    // between the two operand qubits; each qubit only pays for delay
    // beyond its slack (u - T).  Take the split minimizing the larger
    // delay (Section 5.1).
    const int swap_len = _ctx.swapLatency();
    const int k = d - 1;
    const int slack_a = u - t_a;
    const int slack_b = u - t_b;
    int best = std::numeric_limits<int>::max();
    for (int r = 0; r <= k; ++r) {
        const int s = k - r;
        const int delay_a = std::max(r * swap_len - slack_a, 0);
        const int delay_b = std::max(s * swap_len - slack_b, 0);
        best = std::min(best, std::max(delay_a, delay_b));
    }
    return best;
}

int
CostEstimator::twoQubitDelay(int d, int u, int t_a, int t_b) const
{
    // Closed form of the reference enumeration.  As a function of
    // the split r,
    //
    //   delay(r) = max(max(r*L - sa, 0), max((k-r)*L - sb, 0))
    //
    // is the max of a nondecreasing and a nonincreasing piecewise
    // linear function, hence quasiconvex with kinks only at
    //   r = sa/L          (first side starts paying),
    //   r = k - sb/L      (second side stops paying),
    //   r = (k*L + sa - sb) / (2L)   (the two lines cross).
    // The integer minimum therefore lies at a boundary {0, k} or at
    // the floor/ceil of a kink: a constant-size candidate set
    // replaces the O(k) sweep.
    const int L = _ctx.swapLatency();
    const int k = d - 1;
    const int sa = u - t_a;
    const int sb = u - t_b;
    // On near-neighbour devices k is small (tokyo: <= 4) and the
    // plain sweep is fewer evaluations than the candidate set; the
    // closed form wins on sparse devices where k grows with the
    // diameter.
    if (k < 8)
        return twoQubitDelayReference(d, u, t_a, t_b);
    const int r_pay = floorDiv(sa, L);          // last r with side a free
    const int r_free = k - floorDiv(sb, L);     // first r with side b free
    const int r_cross = floorDiv(k * L + sa - sb, 2 * L);
    const int candidates[8] = {0,          k,          r_pay,
                               r_pay + 1,  r_free - 1, r_free,
                               r_cross,    r_cross + 1};
    int best = std::numeric_limits<int>::max();
    for (int r : candidates) {
        if (r < 0)
            r = 0;
        else if (r > k)
            r = k;
        const int delay_a = std::max(r * L - sa, 0);
        const int delay_b = std::max((k - r) * L - sb, 0);
        best = std::min(best, std::max(delay_a, delay_b));
    }
    return best;
}

int
CostEstimator::scan(const SearchNode &node, bool reference) const
{
    const int nl = _ctx.numLogical();
    int h = 0;

    // Scratch buffers: thread_local (not members) so the scan is
    // re-entrant across concurrent searches — a portfolio race calls
    // it from many threads, sometimes on the SAME estimator.  After
    // first use on a thread the resize is a no-op (sizes only grow),
    // so the per-call cost matches the old mutable-member scheme.
    thread_local std::vector<int> ready;   // per logical qubit
    thread_local std::vector<int> busySum; // per logical qubit (T_q)
    if (static_cast<int>(ready.size()) < nl) {
        ready.resize(static_cast<size_t>(nl));
        busySum.resize(static_cast<size_t>(nl));
    }
    const QIndex *l2p = node.log2phys();
    const int *busy = node.busyUntil();
    const int *head = node.head();

    // Relative availability of each logical qubit (0 == can start at
    // node.cycle + 1).  Partially executed gates and active swaps
    // enter the bound through this term (they are the "executed in
    // part" members of V_rem).
    for (int l = 0; l < nl; ++l) {
        const int p = l2p[l];
        const int avail =
            p >= 0 ? std::max(0, busy[p] - node.cycle) : 0;
        ready[static_cast<size_t>(l)] = avail;
        busySum[static_cast<size_t>(l)] = avail;
        h = std::max(h, avail);
        // Global critical-path bound through this qubit's next gate.
        const auto &gates = _ctx.qubitGates(l);
        if (head[l] < static_cast<int>(gates.size())) {
            h = std::max(
                h, avail + _tail[static_cast<size_t>(
                               gates[static_cast<size_t>(head[l])])]);
        }
    }

    int processed = 0;
    const int total = _ctx.numGates();
    // Every gate below firstUnscheduled is scheduled (the pool
    // advances the index as heads move), so the production scan
    // skips the whole prefix; the reference rescans from 0 and
    // re-derives the same skips from the heads.
    const int first = reference ? 0 : node.firstUnscheduled;
    for (int i = first; i < total; ++i) {
        const ir::Gate &g = _ctx.circuit().gate(i);
        const int q0 = g.qubit(0);
        // Scheduled gates are not part of the remaining circuit.
        if (_ctx.posOnQubit(i, q0) < head[q0])
            continue;
        if (_horizonGates >= 0 && processed >= _horizonGates)
            break;
        ++processed;

        const int len = _ctx.gateLatency(i);
        if (g.numQubits() == 1) {
            const int u = ready[static_cast<size_t>(q0)];
            ready[static_cast<size_t>(q0)] = u + len;
            busySum[static_cast<size_t>(q0)] += len;
            h = std::max(h, u + len);
            continue;
        }

        const int q1 = g.qubit(1);
        const int u = std::max(ready[static_cast<size_t>(q0)],
                               ready[static_cast<size_t>(q1)]);
        const int p0 = l2p[q0];
        const int p1 = l2p[q1];
        int t_min = u;
        if (p0 >= 0 && p1 >= 0) {
            const int d = _ctx.graph().distance(p0, p1);
            if (d > 1) {
                const int ta = busySum[static_cast<size_t>(q0)];
                const int tb = busySum[static_cast<size_t>(q1)];
                t_min = u + (reference
                                 ? twoQubitDelayReference(d, u, ta, tb)
                                 : twoQubitDelay(d, u, ta, tb));
            }
        }
        // Unmapped operands (on-the-fly initial mapping) could still
        // be placed adjacent, so d == 1 is the admissible choice.
        ready[static_cast<size_t>(q0)] = t_min + len;
        ready[static_cast<size_t>(q1)] = t_min + len;
        busySum[static_cast<size_t>(q0)] += len;
        busySum[static_cast<size_t>(q1)] += len;
        h = std::max(h, t_min + len);
    }
    return h;
}

int
CostEstimator::estimate(const SearchNode &node) const
{
    const int h = scan(node, /*reference=*/false) + _testSkew;
    if (_auditInterval != 0) {
        // Per-thread cadence: the estimator is shared across
        // portfolio threads, so a member counter would race.
        thread_local std::uint64_t calls = 0;
        if (++calls % _auditInterval == 0) {
            const int ref = estimateReference(node);
            if (h != ref) {
                throw std::logic_error(
                    "incremental h(v) diverged from reference "
                    "recompute: fast=" +
                    std::to_string(h) +
                    " reference=" + std::to_string(ref));
            }
        }
    }
    return h;
}

int
CostEstimator::estimateReference(const SearchNode &node) const
{
    return scan(node, /*reference=*/true);
}

void
CostEstimator::score(SearchNode &node) const
{
    node.costH = estimate(node);
    const search::CostTable *table = _ctx.costTable();
    if (table == nullptr) {
        node.objH = node.costH;
        return;
    }
    const std::int64_t scheduled_min =
        (node.objG - table->cycleWeight *
                         static_cast<std::int64_t>(node.costG)) -
        node.objSlack;
    node.objH = table->cycleWeight *
                    static_cast<std::int64_t>(node.costH) +
                (table->totalMin - scheduled_min);
}

} // namespace toqm::core
