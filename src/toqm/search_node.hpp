/**
 * @file
 * Search node: one state of the circuit at one cycle (Section 4.1).
 *
 * A node fixes every scheduling decision for start times <= cycle.
 * Gates occupy their qubits for [start, start + latency - 1]; the
 * qubit mapping stored here is the one with all STARTED swaps applied
 * (the paper's convention for hashing and for the heuristic cost),
 * which is safe because a swap's qubits stay busy until it finishes.
 *
 * The per-qubit arrays live in ONE contiguous allocation: the search
 * generates millions of nodes, and both node cloning and the filter's
 * dominance comparisons are memory-bound.  Aggregates (scheduledGates,
 * busySum) give the filter O(1) quick rejects.
 */

#ifndef TOQM_CORE_SEARCH_NODE_HPP
#define TOQM_CORE_SEARCH_NODE_HPP

#include <memory>
#include <vector>

#include "search_context.hpp"

namespace toqm::core {

/** An action started at a node's cycle. */
struct Action
{
    /** Logical gate index, or -1 for an inserted swap. */
    int gateIndex = -1;
    /** Physical operands (p1 == -1 for 1-qubit gates). */
    int p0 = -1;
    int p1 = -1;

    bool isSwap() const { return gateIndex < 0; }
};

/** One state of the search graph (immutable once constructed). */
class SearchNode
{
  public:
    using Ptr = std::shared_ptr<SearchNode>;
    using ConstPtr = std::shared_ptr<const SearchNode>;

    /** Deep copy (buffer cloned). */
    SearchNode(const SearchNode &other);
    SearchNode &operator=(const SearchNode &) = delete;

    ConstPtr parent;
    /** Cycle this node's actions start at (root: 0, no actions). */
    int cycle = 0;
    /** Counted path cost (== cycle; kept separate for clarity). */
    int costG = 0;
    /** Cached admissible heuristic (set by the cost estimator). */
    int costH = 0;
    /**
     * Secondary ranking score used by the practical mapper (sum of
     * frontier/lookahead distances); not part of the admissible cost.
     */
    int routeScore = 0;
    /** Actions started at `cycle` by this node. */
    std::vector<Action> actions;

    /** Number of logical gates scheduled so far. */
    int scheduledGates = 0;
    /** Sum of busyUntil over physical qubits (filter quick reject). */
    long busySum = 0;
    /** Latest finish cycle among started swaps / original gates. */
    int activeSwapUntil = 0;
    int activeGateUntil = 0;
    /** Zero-cost swaps consumed in the initial-mapping phase. */
    int initialSwaps = 0;
    /** True while the node is still choosing the initial mapping. */
    bool initialPhase = false;
    /** Set by the filter when a dominating node exists. */
    mutable bool dead = false;

    /** Per-qubit state arrays (contiguous). @{ */
    /** log2phys()[l] = physical position of logical l (-1 unmapped). */
    int *log2phys() { return _buf.get(); }
    const int *log2phys() const { return _buf.get(); }
    /** head()[l] = #gates already scheduled on logical qubit l. */
    int *head() { return _buf.get() + _nl; }
    const int *head() const { return _buf.get() + _nl; }
    /** phys2log()[p] = logical occupant of p (-1 empty). */
    int *phys2log() { return _buf.get() + 2 * _nl; }
    const int *phys2log() const { return _buf.get() + 2 * _nl; }
    /** busyUntil()[p] = last busy cycle of physical p (0 = never). */
    int *busyUntil() { return _buf.get() + 2 * _nl + _np; }
    const int *busyUntil() const { return _buf.get() + 2 * _nl + _np; }
    /**
     * lastSwapPartner()[p] = q if the most recent action on physical
     * p was swap(p, q); -1 otherwise (cyclic-swap pruning).
     */
    int *lastSwapPartner() { return _buf.get() + 2 * _nl + 2 * _np; }
    const int *lastSwapPartner() const
    {
        return _buf.get() + 2 * _nl + 2 * _np;
    }
    /** @} */

    int numLogical() const { return _nl; }

    int numPhysical() const { return _np; }

    /** Priority for the A* queue. */
    int f() const { return costG + costH; }

    /** All logical gates scheduled? */
    bool allScheduled(const SearchContext &ctx) const
    {
        return scheduledGates == ctx.numGates();
    }

    /** Finish cycle of the whole schedule (valid once allScheduled). */
    int makespan() const;

    /** Hash of the post-swap mapping (filter bucket key). */
    std::uint64_t mappingHash() const;

    /** Build the root node with the given initial layout. */
    static Ptr root(const SearchContext &ctx,
                    const std::vector<int> &initial_layout,
                    bool initial_phase);

    /**
     * Build a child that starts @p actions at cycle @p start_cycle
     * (which may jump past parent->cycle + 1 for pure waits).
     */
    static Ptr expand(const SearchContext &ctx, const ConstPtr &parent,
                      int start_cycle, const std::vector<Action> &actions);

    /**
     * Build an initial-phase child applying one zero-cost swap on
     * physical qubits (@p p0, @p p1) at cycle 0.
     */
    static Ptr initialSwapChild(const ConstPtr &parent, int p0, int p1);

    /** Leave the initial phase (no other state change). */
    static Ptr commitInitialMapping(const ConstPtr &parent);

  private:
    SearchNode(int nl, int np);

    int _nl = 0;
    int _np = 0;
    std::unique_ptr<int[]> _buf;

    size_t bufSize() const
    {
        return static_cast<size_t>(2 * _nl + 3 * _np);
    }
};

} // namespace toqm::core

#endif // TOQM_CORE_SEARCH_NODE_HPP
