#include "expander.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace toqm::core {

Expander::Expander(const SearchContext &ctx, NodePool &pool,
                   ExpanderConfig config)
    : _ctx(ctx), _pool(&pool), _config(config)
{}

std::vector<Action>
Expander::readyGates(const SearchNode &node) const
{
    std::vector<Action> out;
    const int start = node.cycle + 1;
    if (!_config.allowConcurrentSwapAndGate &&
        start <= node.activeSwapUntil) {
        return out; // a swap is still running; gates must wait
    }

    const int *head = node.head();
    const int *l2p = node.log2phys();
    const int *busy = node.busyUntil();

    for (int l = 0; l < _ctx.numLogical(); ++l) {
        const auto &gates = _ctx.qubitGates(l);
        const int h = head[l];
        if (h >= static_cast<int>(gates.size()))
            continue;
        const int gi = gates[static_cast<size_t>(h)];
        const ir::Gate &g = _ctx.circuit().gate(gi);
        // Dedup: only consider the gate from its first operand.
        if (g.qubit(0) != l)
            continue;

        bool ok = true;
        for (int q : g.qubits()) {
            // Must be the head on every operand...
            if (_ctx.posOnQubit(gi, q) != head[q]) {
                ok = false;
                break;
            }
            // ...with the operand mapped and idle next cycle.
            const int p = l2p[q];
            if (p < 0 || busy[p] >= start) {
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;

        Action a;
        a.gateIndex = gi;
        a.p0 = l2p[g.qubit(0)];
        a.p1 = g.numQubits() == 2 ? l2p[g.qubit(1)] : -1;
        if (a.p1 >= 0 && !_ctx.graph().adjacent(a.p0, a.p1))
            continue; // coupling constraint
        out.push_back(a);
    }
    return out;
}

std::vector<Action>
Expander::candidateSwaps(const SearchNode &node) const
{
    std::vector<Action> out;
    const int start = node.cycle + 1;
    if (!_config.allowConcurrentSwapAndGate &&
        start <= node.activeGateUntil) {
        return out; // an original gate is still running
    }
    const int *busy = node.busyUntil();
    const int *partner = node.lastSwapPartner();
    const int *p2l = node.phys2log();
    for (const auto &[p0, p1] : _ctx.graph().edges()) {
        if (busy[p0] >= start || busy[p1] >= start)
            continue;
        // Cyclic-swap elimination: undoing the identical swap.
        if (_config.useCyclicSwapElimination && partner[p0] == p1 &&
            partner[p1] == p0) {
            continue;
        }
        // A swap moving two empty positions accomplishes nothing.
        if (p2l[p0] < 0 && p2l[p1] < 0)
            continue;
        Action a;
        a.gateIndex = -1;
        a.p0 = p0;
        a.p1 = p1;
        out.push_back(a);
    }
    return out;
}

void
Expander::enumerateSubsets(const NodeRef &node, int start_cycle,
                           const std::vector<Action> &candidates,
                           Expansion &out) const
{
    std::vector<char> used(static_cast<size_t>(_ctx.numPhysical()), 0);
    std::vector<Action> current;
    const bool mixing_allowed = _config.allowConcurrentSwapAndGate;
    const int *busy = node->busyUntil();

    const auto recurse = [&](auto &&self, size_t idx) -> void {
        if (idx == candidates.size()) {
            if (current.empty())
                return;
            // Redundancy elimination: if every chosen action was
            // already startable at the previous decision point, an
            // earlier-starting sibling exists.
            bool all_startable_earlier = true;
            for (const Action &a : current) {
                if (busy[a.p0] >= node->cycle ||
                    (a.p1 >= 0 && busy[a.p1] >= node->cycle)) {
                    all_startable_earlier = false;
                    break;
                }
            }
            if (all_startable_earlier && node->cycle > 0 &&
                _config.useRedundancyElimination) {
                return;
            }
            if (out.children.size() >= _config.maxChildrenPerNode) {
                throw std::runtime_error(
                    "expander exceeded maxChildrenPerNode; this input "
                    "is too large for exhaustive optimal search (use "
                    "the heuristic mapper)");
            }
            out.children.push_back(
                _pool->expand(node, start_cycle, current));
            return;
        }
        // Branch 1: skip candidate idx.
        self(self, idx + 1);
        // Branch 2: take it if qubit-disjoint (and mode-compatible).
        const Action &a = candidates[idx];
        if (used[static_cast<size_t>(a.p0)] ||
            (a.p1 >= 0 && used[static_cast<size_t>(a.p1)])) {
            return;
        }
        if (!mixing_allowed && !current.empty() &&
            current.front().isSwap() != a.isSwap()) {
            return;
        }
        used[static_cast<size_t>(a.p0)] = 1;
        if (a.p1 >= 0)
            used[static_cast<size_t>(a.p1)] = 1;
        current.push_back(a);
        self(self, idx + 1);
        current.pop_back();
        used[static_cast<size_t>(a.p0)] = 0;
        if (a.p1 >= 0)
            used[static_cast<size_t>(a.p1)] = 0;
    };
    recurse(recurse, 0);
}

Expansion
Expander::expand(const NodeRef &node) const
{
    Expansion out;
    const int start = node->cycle + 1;

    std::vector<Action> candidates = readyGates(*node);
    {
        std::vector<Action> swaps = candidateSwaps(*node);
        candidates.insert(candidates.end(), swaps.begin(), swaps.end());
    }
    enumerateSubsets(node, start, candidates, out);

    // Wait child: jump to the next completion time.
    int next_completion = std::numeric_limits<int>::max();
    const int *busy = node->busyUntil();
    for (int p = 0; p < node->numPhysical(); ++p) {
        if (busy[p] > node->cycle)
            next_completion = std::min(next_completion, busy[p]);
    }
    if (next_completion != std::numeric_limits<int>::max()) {
        out.waitChild = _pool->expand(node, next_completion, {});
        out.children.push_back(out.waitChild);
    }
    return out;
}

} // namespace toqm::core
