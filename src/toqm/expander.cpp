#include "expander.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace toqm::core {

Expander::Expander(const SearchContext &ctx, NodePool &pool,
                   ExpanderConfig config)
    : _ctx(ctx), _pool(&pool), _config(config)
{}

std::vector<Action>
Expander::readyGates(const SearchNode &node) const
{
    std::vector<Action> out;
    appendReadyGates(node, out);
    return out;
}

std::vector<Action>
Expander::candidateSwaps(const SearchNode &node) const
{
    std::vector<Action> out;
    appendCandidateSwaps(node, out);
    return out;
}

void
Expander::appendReadyGates(const SearchNode &node,
                           std::vector<Action> &out) const
{
    const int start = node.cycle + 1;
    if (!_config.allowConcurrentSwapAndGate &&
        start <= node.activeSwapUntil) {
        return; // a swap is still running; gates must wait
    }

    const int *head = node.head();
    const QIndex *l2p = node.log2phys();
    const int *busy = node.busyUntil();

    for (int l = 0; l < _ctx.numLogical(); ++l) {
        const auto &gates = _ctx.qubitGates(l);
        const int h = head[l];
        if (h >= static_cast<int>(gates.size()))
            continue;
        const int gi = gates[static_cast<size_t>(h)];
        const ir::Gate &g = _ctx.circuit().gate(gi);
        // Dedup: only consider the gate from its first operand.
        if (g.qubit(0) != l)
            continue;

        bool ok = true;
        for (int q : g.qubits()) {
            // Must be the head on every operand...
            if (_ctx.posOnQubit(gi, q) != head[q]) {
                ok = false;
                break;
            }
            // ...with the operand mapped and idle next cycle.
            const int p = l2p[q];
            if (p < 0 || busy[p] >= start) {
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;

        Action a;
        a.gateIndex = gi;
        a.p0 = l2p[g.qubit(0)];
        a.p1 = g.numQubits() == 2 ? l2p[g.qubit(1)] : -1;
        if (a.p1 >= 0 && !_ctx.graph().adjacent(a.p0, a.p1))
            continue; // coupling constraint
        out.push_back(a);
    }
}

void
Expander::appendCandidateSwaps(const SearchNode &node,
                               std::vector<Action> &out) const
{
    const int start = node.cycle + 1;
    if (!_config.allowConcurrentSwapAndGate &&
        start <= node.activeGateUntil) {
        return; // an original gate is still running
    }
    const int *busy = node.busyUntil();
    const QIndex *partner = node.lastSwapPartner();
    for (const auto &[p0, p1] : _ctx.graph().edges()) {
        if (busy[p0] >= start || busy[p1] >= start)
            continue;
        // Cyclic-swap elimination: undoing the identical swap.
        if (_config.useCyclicSwapElimination && partner[p0] == p1 &&
            partner[p1] == p0) {
            continue;
        }
        // A swap moving two empty positions accomplishes nothing
        // (occupancy bitset probe; equivalent to two phys2log reads).
        if (!node.occupied(p0) && !node.occupied(p1))
            continue;
        Action a;
        a.gateIndex = -1;
        a.p0 = p0;
        a.p1 = p1;
        out.push_back(a);
    }
}

void
Expander::enumerateSubsets(const NodeRef &node, int start_cycle,
                           const std::vector<Action> &candidates,
                           Expansion &out) const
{
    // The recursion visits up to 2^|candidates| skip/take branches
    // per expansion, so its inner work is precomputed per CANDIDATE,
    // not per subset:
    //  - each candidate's operand set becomes one qubit bitmask, so
    //    the disjointness test is a single AND against the running
    //    used-mask (devices beyond 64 qubits take a second word);
    //  - the redundancy elimination ("every chosen action was
    //    already startable at the previous decision point") becomes
    //    a per-candidate flag, folded incrementally into a counter
    //    on take/untake — the leaf test is one compare instead of a
    //    loop over the chosen actions.
    // Scratch is thread_local so the hot path does no heap work; a
    // thrown maxChildrenPerNode error can leave state behind, hence
    // the re-initialization on entry.
    const size_t n = candidates.size();
    if (n == 0)
        return;
    // One mask word covers any device up to 64 qubits; larger
    // devices take more words and the word loops below simply run
    // longer (W is 1 for every architecture in the corpus).
    const size_t W =
        (static_cast<size_t>(_ctx.numPhysical()) + 63) / 64;
    thread_local std::vector<std::uint64_t> masks; // W words each
    thread_local std::vector<std::uint64_t> usedMask; // W words
    thread_local std::vector<char> notEarlier;     // per candidate
    thread_local std::vector<Action> current;
    masks.assign(n * W, 0);
    usedMask.assign(W, 0);
    notEarlier.resize(n);
    current.clear();
    const int *busy = node->busyUntil();
    for (size_t i = 0; i < n; ++i) {
        const Action &a = candidates[i];
        masks[i * W + (static_cast<size_t>(a.p0) >> 6)] |=
            std::uint64_t{1} << (static_cast<size_t>(a.p0) & 63);
        bool earlier = busy[a.p0] < node->cycle;
        if (a.p1 >= 0) {
            masks[i * W + (static_cast<size_t>(a.p1) >> 6)] |=
                std::uint64_t{1} << (static_cast<size_t>(a.p1) & 63);
            earlier = earlier && busy[a.p1] < node->cycle;
        }
        notEarlier[i] = !earlier;
    }
    const bool mixing_allowed = _config.allowConcurrentSwapAndGate;
    const bool redundancy_prune =
        _config.useRedundancyElimination && node->cycle > 0;
    // Non-trivial expansions emit tens of children; reserving up
    // front (2^n capped at 128 slots / 2 KiB) turns the vector's
    // repeated growth reallocations into at most one.
    out.children.reserve(std::min<std::size_t>(
        _config.maxChildrenPerNode,
        std::size_t{1} << std::min<std::size_t>(n, 7)));
    std::uint64_t *used = usedMask.data();
    int not_earlier_taken = 0;

    const auto recurse = [&](auto &&self, size_t idx) -> void {
        if (idx == n) {
            if (current.empty())
                return;
            // Redundancy elimination: an earlier-starting sibling
            // exists iff no chosen action is forced to start now.
            if (redundancy_prune && not_earlier_taken == 0)
                return;
            if (out.children.size() >= _config.maxChildrenPerNode) {
                throw std::runtime_error(
                    "expander exceeded maxChildrenPerNode; this input "
                    "is too large for exhaustive optimal search (use "
                    "the heuristic mapper)");
            }
            out.children.push_back(
                _pool->expand(node, start_cycle, current));
            return;
        }
        // Branch 1: skip candidate idx.
        self(self, idx + 1);
        // Branch 2: take it if qubit-disjoint (and mode-compatible).
        const std::uint64_t *m = &masks[idx * W];
        for (size_t w = 0; w < W; ++w) {
            if ((used[w] & m[w]) != 0)
                return;
        }
        const Action &a = candidates[idx];
        if (!mixing_allowed && !current.empty() &&
            current.front().isSwap() != a.isSwap()) {
            return;
        }
        for (size_t w = 0; w < W; ++w)
            used[w] |= m[w];
        not_earlier_taken += notEarlier[idx];
        current.push_back(a);
        self(self, idx + 1);
        current.pop_back();
        not_earlier_taken -= notEarlier[idx];
        for (size_t w = 0; w < W; ++w)
            used[w] &= ~m[w];
    };
    recurse(recurse, 0);
}

Expansion
Expander::expand(const NodeRef &node) const
{
    Expansion out;
    const int start = node->cycle + 1;

    // Candidate list is reused across expansions (gates first, then
    // swaps — the enumeration order children are generated in).
    thread_local std::vector<Action> candidates;
    candidates.clear();
    appendReadyGates(*node, candidates);
    appendCandidateSwaps(*node, candidates);
    enumerateSubsets(node, start, candidates, out);

    // Wait child: jump to the next completion time.
    int next_completion = std::numeric_limits<int>::max();
    const int *busy = node->busyUntil();
    for (int p = 0; p < node->numPhysical(); ++p) {
        if (busy[p] > node->cycle)
            next_completion = std::min(next_completion, busy[p]);
    }
    if (next_completion != std::numeric_limits<int>::max()) {
        out.waitChild = _pool->expand(node, next_completion, {});
        out.children.push_back(out.waitChild);
    }
    return out;
}

} // namespace toqm::core
