/**
 * @file
 * Initial-layout strategies beyond Section 5.3's exact search.
 *
 * The exact free-swap search scales only to small devices; the
 * on-the-fly greedy placement (Section 6.2) is myopic.  This module
 * adds two classic seeds usable with any mapper in the repository:
 *
 *  - degree-matching greedy: place logical qubits in decreasing
 *    interaction-degree order onto physical qubits chosen to
 *    minimize the distance to already-placed partners;
 *  - simulated annealing: minimize the interaction-weighted sum of
 *    physical distances sum_{(a,b)} w(a,b) * d(pi(a), pi(b)) by
 *    random pairwise relocations with geometric cooling.
 *
 * Both are deterministic given the seed.
 */

#ifndef TOQM_CORE_INITIAL_LAYOUT_HPP
#define TOQM_CORE_INITIAL_LAYOUT_HPP

#include <cstdint>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "ir/circuit.hpp"

namespace toqm::core {

/**
 * Interaction weight matrix of a circuit: w[a][b] = number of
 * two-qubit gates between logical a and b, with earlier gates
 * weighted more when @p decay < 1 (the front of the circuit
 * determines how good a layout FEELS to a router).
 */
std::vector<std::vector<double>>
interactionWeights(const ir::Circuit &circuit, double decay = 0.999);

/** The annealing objective: sum w(a,b) * d(layout[a], layout[b]). */
double layoutCost(const std::vector<std::vector<double>> &weights,
                  const arch::CouplingGraph &graph,
                  const std::vector<int> &layout);

/** Greedy degree-matching placement. */
std::vector<int> greedyLayout(const ir::Circuit &circuit,
                              const arch::CouplingGraph &graph);

/** Annealing parameters. */
struct AnnealConfig
{
    int iterations = 20'000;
    double initialTemperature = 2.0;
    double cooling = 0.9995;
    std::uint64_t seed = 1;
    /** Weight decay toward later gates (see interactionWeights). */
    double gateDecay = 0.999;
};

/**
 * Simulated-annealing initial layout (seeded with greedyLayout).
 */
std::vector<int> annealedLayout(const ir::Circuit &circuit,
                                const arch::CouplingGraph &graph,
                                const AnnealConfig &config = {});

} // namespace toqm::core

#endif // TOQM_CORE_INITIAL_LAYOUT_HPP
