/**
 * @file
 * Node expander (Section 4.2): enumerates every child state a node
 * can transition to at the next decision point.
 *
 * Children are all non-empty, qubit-disjoint subsets of the ready
 * actions (dependence-resolved, coupling-compliant original gates
 * plus swaps on idle coupled pairs), started one cycle after the
 * node, plus a single "wait" child that jumps to the next completion
 * time.  Two redundancy eliminations are applied (both proven safe in
 * DESIGN.md / the paper):
 *
 *  - subsets whose every action was already startable one decision
 *    point earlier are dropped (an earlier-starting sibling exists);
 *  - cyclic swaps (a swap immediately undoing the identical swap on
 *    the same pair) are dropped.
 *
 * The optional constrained mode (used for Fig 14) forbids swaps and
 * original gates from overlapping in time at all.
 */

#ifndef TOQM_CORE_EXPANDER_HPP
#define TOQM_CORE_EXPANDER_HPP

#include <cstdint>
#include <vector>

#include "search_types.hpp"

namespace toqm::core {

/** Expansion policy knobs. */
struct ExpanderConfig
{
    /** Fig 14 mode: if false, swaps and gates never overlap. */
    bool allowConcurrentSwapAndGate = true;
    /** Hard cap on children per node (guards combinatorial blowup). */
    std::uint64_t maxChildrenPerNode = 1u << 20;
    /** Ablation toggle for the could-have-started-earlier prune. */
    bool useRedundancyElimination = true;
    /** Ablation toggle for cyclic-swap elimination. */
    bool useCyclicSwapElimination = true;
};

/** The result of expanding one node. */
struct Expansion
{
    std::vector<NodeRef> children;
    /** The wait child, if any (also present in children). */
    NodeRef waitChild;
};

/** Enumerates children per the paper's search-space definition. */
class Expander
{
  public:
    /** Children are allocated from @p pool (which must outlive the
     *  expander and every Expansion it returns). */
    Expander(const SearchContext &ctx, NodePool &pool,
             ExpanderConfig config = {});

    /**
     * Ready original gates: at the head of each operand's program
     * order, operand qubits idle after @p node 's cycle, coupling
     * satisfied (1-qubit gates need only idleness).
     */
    std::vector<Action> readyGates(const SearchNode &node) const;

    /** Swaps startable next cycle (idle coupled pairs, non-cyclic). */
    std::vector<Action> candidateSwaps(const SearchNode &node) const;

    /** Full expansion of @p node. */
    Expansion expand(const NodeRef &node) const;

    const SearchContext &context() const { return _ctx; }

  private:
    const SearchContext &_ctx;
    NodePool *_pool;
    ExpanderConfig _config;

    /** Appending workhorses behind the public enumerators; expand()
     *  calls these on reused scratch buffers so the hot path is
     *  allocation-free. @{ */
    void appendReadyGates(const SearchNode &node,
                          std::vector<Action> &out) const;
    void appendCandidateSwaps(const SearchNode &node,
                              std::vector<Action> &out) const;
    /** @} */

    void enumerateSubsets(const NodeRef &node, int start_cycle,
                          const std::vector<Action> &candidates,
                          Expansion &out) const;
};

} // namespace toqm::core

#endif // TOQM_CORE_EXPANDER_HPP
