/**
 * @file
 * Iterative-deepening A* over the same search space as the A* mapper.
 *
 * This is the OLSQ-shaped control flow the paper describes in
 * Section 7 — "it tests different upper bounds of the circuit depth
 * until it finds a solution... T, T+1, T+2, ..." — realized inside
 * our node model: depth-first search bounded by f <= T, with T
 * starting at the admissible h(root) and growing to the smallest
 * value that admits a solution.  The first solution found is optimal
 * for the same reason OLSQ's is.
 *
 * Memory is O(depth) instead of A*'s O(frontier), at the price of
 * re-expansion; without the hash filter it is practical only for
 * small instances — which is exactly the comparison the paper draws.
 */

#ifndef TOQM_CORE_IDA_STAR_HPP
#define TOQM_CORE_IDA_STAR_HPP

#include <cstdint>

#include "mapper.hpp"

namespace toqm::core {

/** Result of an IDA* run (same report shape as the A* mapper's). */
struct IdaResult
{
    /** True iff a complete mapping was returned (the proven optimum
     *  or, on a budget/guard stop, the best incumbent). */
    bool success = false;
    /** Solved / BudgetExhausted / Infeasible or a ResourceGuard stop
     *  status (see MapperResult). */
    SearchStatus status = SearchStatus::Infeasible;
    /** True when `mapped` is a complete but not proven-optimal
     *  schedule delivered on a budget/guard stop. */
    bool fromIncumbent = false;
    int cycles = -1;
    /** Encoded total cost of `mapped` under the run's objective
     *  (== cycles with no cost table; -1 when nothing delivered). */
    std::int64_t costKey = -1;
    ir::MappedCircuit mapped;
    /**
     * Unified run report; `stats.rounds` counts the f-bound rounds
     * (T values tried) and `stats.expanded` the nodes visited across
     * ALL deepening rounds.
     */
    SearchStats stats;
};

/**
 * Map @p logical time-optimally by iterative deepening.
 *
 * @param latency gate latency model.
 * @param allow_mixing Fig 14 constrained mode when false.
 * @param max_expanded total node budget across rounds.
 * @param guard resource limits (all-defaults = disarmed).
 * @param channel portfolio incumbent exchange (nullptr = solo run):
 *        achieved makespans are published, the channel's stop token
 *        is honored through the guard, and deepening ends once the
 *        bound passes the watermark (a foreign schedule at cost b
 *        proves no round with T >= b can improve on it).
 * @param cost_table encoded objective to minimise instead of plain
 *        cycles (null = legacy scalar cycles, byte-identical).  All
 *        searches sharing @p channel must share one objective.
 */
IdaResult idaStarMap(const arch::CouplingGraph &graph,
                     const ir::Circuit &logical,
                     const ir::LatencyModel &latency,
                     bool allow_mixing = true,
                     std::uint64_t max_expanded = 50'000'000,
                     const search::GuardConfig &guard = {},
                     search::IncumbentChannel *channel = nullptr,
                     const search::CostTable *cost_table = nullptr);

} // namespace toqm::core

#endif // TOQM_CORE_IDA_STAR_HPP
