#include "ida_star.hpp"

#include <algorithm>
#include <limits>

#include "cost_estimator.hpp"
#include "expander.hpp"
#include "obs/observer.hpp"

namespace toqm::core {

namespace {

using Engine = search::SearchEngine<search::DepthFirstFrontier>;

/**
 * One bounded DFS round over an explicit stack.  Children of each
 * expanded node are sorted ascending (f, then progress) and pushed in
 * REVERSE, so pops reproduce the recursive visit order exactly; the
 * pooled stack replaces O(depth) call frames with O(depth) NodeRefs.
 *
 * @return the terminal node, or empty if none within @p bound;
 *         @p next_bound collects the smallest encoded f key that
 *         exceeded the bound (INT64_MAX if none did: the space is
 *         exhausted).  Complete schedules whose key exceeds the
 *         bound are offered to @p incumbent / @p incumbent_key —
 *         they are valid (just not yet proven optimal) and back the
 *         anytime return.
 */
NodeRef
boundedDfs(const SearchContext &ctx, const Expander &expander,
           const CostEstimator &estimator, Engine &engine,
           const NodeRef &root, std::int64_t bound,
           std::uint64_t max_expanded, std::int64_t &next_bound,
           NodeRef &incumbent, std::int64_t &incumbent_key)
{
    next_bound = std::numeric_limits<std::int64_t>::max();
    engine.frontier().clear();
    engine.push(root);
    while (!engine.frontier().empty()) {
        NodeRef node = engine.frontier().pop();
        if (node->fKey() > bound) {
            if (node->allScheduled(ctx) &&
                node->fKey() < incumbent_key) {
                incumbent_key = node->fKey();
                incumbent = node;
            }
            next_bound = std::min(next_bound, node->fKey());
            continue;
        }
        if (node->allScheduled(ctx)) {
            // With all gates scheduled, the f key is the exact total
            // cost (the makespan under plain cycles).
            return node;
        }
        engine.noteExpansion(static_cast<double>(node->fKey()));
        if (engine.guardStop() != search::StopReason::None ||
            engine.stats().expanded >= max_expanded)
            return NodeRef();

        Expansion expansion = expander.expand(node);
        engine.stats().generated += expansion.children.size();
        for (NodeRef &child : expansion.children)
            estimator.score(*child);
        std::sort(expansion.children.begin(), expansion.children.end(),
                  [](const NodeRef &a, const NodeRef &b) {
                      if (a->fKey() != b->fKey())
                          return a->fKey() < b->fKey();
                      return a->scheduledGates > b->scheduledGates;
                  });
        for (auto it = expansion.children.rbegin();
             it != expansion.children.rend(); ++it) {
            engine.push(std::move(*it));
        }
    }
    return NodeRef();
}

} // namespace

IdaResult
idaStarMap(const arch::CouplingGraph &graph,
           const ir::Circuit &logical,
           const ir::LatencyModel &latency, bool allow_mixing,
           std::uint64_t max_expanded,
           const search::GuardConfig &guard,
           search::IncumbentChannel *channel,
           const search::CostTable *cost_table)
{
    IdaResult result;

    const obs::PhaseScope obs_phase("search");
    const ir::Circuit clean = logical.withoutSwapsAndBarriers();
    SearchContext ctx(clean, graph, latency);
    ctx.setCostTable(cost_table);
    CostEstimator estimator(ctx);
    NodePool pool(ctx);
    ExpanderConfig cfg;
    cfg.allowConcurrentSwapAndGate = allow_mixing;
    Expander expander(ctx, pool, cfg);
    Engine engine(pool);
    engine.bindProbe("ida");
    search::GuardConfig guard_cfg = guard;
    if (channel != nullptr && guard_cfg.cancelToken == nullptr)
        guard_cfg.cancelToken = channel->stopToken();
    engine.armGuard(guard_cfg);

    NodeRef root = pool.root(ir::identityLayout(ctx.numLogical()),
                             false);
    estimator.score(*root);

    NodeRef incumbent;
    std::int64_t incumbent_key = std::numeric_limits<std::int64_t>::max();

    std::int64_t bound = root->fKey();
    while (engine.stats().expanded < max_expanded &&
           engine.guardStop() == search::StopReason::None) {
        ++engine.stats().rounds;
        std::int64_t next_bound = std::numeric_limits<std::int64_t>::max();
        NodeRef terminal =
            boundedDfs(ctx, expander, estimator, engine, root, bound,
                       max_expanded, next_bound, incumbent,
                       incumbent_key);
        if (terminal) {
            result.success = true;
            result.status = SearchStatus::Solved;
            result.cycles = terminal->makespan();
            result.costKey = terminal->fKey();
            result.mapped = reconstructMapping(ctx, terminal);
            if (channel != nullptr)
                channel->offer(result.costKey);
            break;
        }
        if (channel != nullptr && incumbent)
            channel->offer(incumbent_key);
        if (engine.guardStop() != search::StopReason::None ||
            engine.stats().expanded >= max_expanded)
            break;
        if (next_bound == std::numeric_limits<std::int64_t>::max())
            break; // space exhausted below every bound: unsolvable
        if (channel != nullptr && next_bound > channel->bound()) {
            // A foreign schedule already achieves a cost below every
            // remaining round's bound: no deeper round can win the
            // race, so stop here (an incumbent, if any, is delivered
            // with Cancelled status below).
            result.status = SearchStatus::Cancelled;
            break;
        }
        bound = next_bound;
    }
    if (!result.success) {
        const search::StopReason stop = engine.guardStop();
        if (stop != search::StopReason::None)
            result.status = search::statusFor(stop);
        else if (engine.stats().expanded >= max_expanded)
            result.status = SearchStatus::BudgetExhausted;
        if (result.status != SearchStatus::Infeasible && incumbent) {
            // Anytime delivery: best complete schedule found across
            // the rounds, explicitly flagged non-optimal.
            result.success = true;
            result.fromIncumbent = true;
            result.cycles = incumbent->makespan();
            result.costKey = incumbent_key;
            result.mapped = reconstructMapping(ctx, incumbent);
        }
    }

    engine.finish();
    result.stats = engine.stats();
    return result;
}

} // namespace toqm::core
