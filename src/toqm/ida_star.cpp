#include "ida_star.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "cost_estimator.hpp"
#include "expander.hpp"
#include "search_context.hpp"

namespace toqm::core {

namespace {

/** Recursive bounded DFS; returns the terminal node or nullptr and
 *  tracks the smallest f that exceeded the bound. */
class IdaSearch
{
  public:
    IdaSearch(const SearchContext &ctx, const Expander &expander,
              const CostEstimator &estimator, std::uint64_t budget)
        : _ctx(ctx), _expander(expander), _estimator(estimator),
          _budget(budget)
    {}

    SearchNode::Ptr
    search(const SearchNode::Ptr &node, int bound)
    {
        _nextBound = std::numeric_limits<int>::max();
        return dfs(node, bound);
    }

    int nextBound() const { return _nextBound; }

    std::uint64_t expanded() const { return _expanded; }

    bool exhausted() const { return _expanded >= _budget; }

  private:
    const SearchContext &_ctx;
    const Expander &_expander;
    const CostEstimator &_estimator;
    std::uint64_t _budget;
    std::uint64_t _expanded = 0;
    int _nextBound = std::numeric_limits<int>::max();

    SearchNode::Ptr
    dfs(const SearchNode::Ptr &node, int bound)
    {
        if (node->f() > bound) {
            _nextBound = std::min(_nextBound, node->f());
            return nullptr;
        }
        if (node->allScheduled(_ctx)) {
            // With all gates scheduled, f == the exact makespan.
            return node;
        }
        if (++_expanded >= _budget)
            return nullptr;

        auto expansion = _expander.expand(node);
        for (auto &child : expansion.children)
            child->costH = _estimator.estimate(*child);
        std::sort(expansion.children.begin(),
                  expansion.children.end(),
                  [](const SearchNode::Ptr &a,
                     const SearchNode::Ptr &b) {
                      if (a->f() != b->f())
                          return a->f() < b->f();
                      return a->scheduledGates > b->scheduledGates;
                  });
        for (auto &child : expansion.children) {
            if (auto found = dfs(child, bound))
                return found;
            if (exhausted())
                return nullptr;
        }
        return nullptr;
    }
};

} // namespace

IdaResult
idaStarMap(const arch::CouplingGraph &graph,
           const ir::Circuit &logical,
           const ir::LatencyModel &latency, bool allow_mixing,
           std::uint64_t max_expanded)
{
    const auto t0 = std::chrono::steady_clock::now();
    IdaResult result;

    const ir::Circuit clean = logical.withoutSwapsAndBarriers();
    SearchContext ctx(clean, graph, latency);
    CostEstimator estimator(ctx);
    ExpanderConfig cfg;
    cfg.allowConcurrentSwapAndGate = allow_mixing;
    Expander expander(ctx, cfg);

    auto root = SearchNode::root(
        ctx, ir::identityLayout(ctx.numLogical()), false);
    root->costH = estimator.estimate(*root);

    int bound = root->f();
    std::uint64_t spent = 0;
    while (spent < max_expanded) {
        ++result.rounds;
        IdaSearch search(ctx, expander, estimator,
                         max_expanded - spent);
        const auto terminal = search.search(root, bound);
        spent += search.expanded();
        result.expanded = spent;
        if (terminal) {
            result.success = true;
            result.cycles = terminal->makespan();
            result.mapped = reconstructMapping(ctx, terminal);
            break;
        }
        if (search.exhausted() ||
            search.nextBound() == std::numeric_limits<int>::max()) {
            break;
        }
        bound = search.nextBound();
    }

    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    return result;
}

} // namespace toqm::core
