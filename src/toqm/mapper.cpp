#include "mapper.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "cost_estimator.hpp"
#include "expander.hpp"
#include "filter.hpp"
#include "obs/observer.hpp"

namespace toqm::core {

namespace {

/** Min-heap order on the encoded f key (== f under plain cycles),
 *  preferring more progress on ties. */
struct NodeOrder
{
    bool
    operator()(const NodeRef &a, const NodeRef &b) const
    {
        if (a->fKey() != b->fKey())
            return a->fKey() > b->fKey();
        if (a->scheduledGates != b->scheduledGates)
            return a->scheduledGates < b->scheduledGates;
        return a->costG < b->costG;
    }
};

using Frontier = search::BestFirstFrontier<NodeRef, NodeOrder>;

/** Outcome of the upper-bound beam probe: an achievable bound (an
 *  encoded cost key) plus the terminal node it came from (the run's
 *  first incumbent). */
struct BeamProbeResult
{
    std::int64_t bound = std::numeric_limits<std::int64_t>::max();
    NodeRef terminal;
};

/**
 * Cheap achievable upper bound on the optimal cost: a beam search
 * over the same node space.  Returns bound=INT64_MAX if the beam
 * dies (then no pruning happens).  Polls @p guard so a tight
 * deadline also bounds the probe itself.
 */
BeamProbeResult
beamUpperBound(const SearchContext &ctx, const Expander &expander,
               const CostEstimator &estimator, const NodeRef &start,
               int width, search::ResourceGuard &guard)
{
    search::BeamFrontier beam;
    beam.assign({start});
    // Generous step bound: every step advances the clock or schedules
    // a gate, so any valid schedule fits well within this.
    const long max_steps =
        16l * ctx.numGates() * (ctx.swapLatency() + 1) +
        64l * ctx.numPhysical() + 256;
    for (long step = 0; step < max_steps; ++step) {
        for (const NodeRef &node : beam.level()) {
            if (node->allScheduled(ctx))
                return {node->fKey(), node};
            if (guard.poll() != search::StopReason::None)
                return {};
            for (NodeRef &child : expander.expand(node).children) {
                estimator.score(*child);
                beam.push(std::move(child));
            }
        }
        if (beam.nextEmpty())
            return {};
        beam.advance(
            width,
            [](const NodeRef &a, const NodeRef &b) {
                if (a->fKey() != b->fKey())
                    return a->fKey() < b->fKey();
                return a->scheduledGates > b->scheduledGates;
            },
            [](const NodeRef &) { return true; });
    }
    return {};
}

} // namespace

ir::MappedCircuit
reconstructMapping(const SearchContext &ctx, const NodeRef &terminal)
{
    // Collect the chain root -> terminal.
    std::vector<const SearchNode *> chain;
    for (const SearchNode *n = terminal.get(); n != nullptr;
         n = n->parent()) {
        chain.push_back(n);
    }
    std::reverse(chain.begin(), chain.end());

    const int nl = ctx.numLogical();
    const int np = ctx.numPhysical();

    // Derive the effective initial occupancy by un-applying every
    // swap action backwards from the terminal state.  (Zero-cost
    // initial-phase swaps carry no action and therefore stay folded
    // into the initial layout, as intended.)
    std::vector<int> phys2log(terminal->phys2log(),
                              terminal->phys2log() + np);
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        for (const Action &a : (*it)->actions) {
            if (a.isSwap())
                std::swap(phys2log[static_cast<size_t>(a.p0)],
                          phys2log[static_cast<size_t>(a.p1)]);
        }
    }

    std::vector<int> initial(static_cast<size_t>(nl), -1);
    std::vector<char> taken(static_cast<size_t>(np), 0);
    for (int p = 0; p < np; ++p) {
        const int l = phys2log[static_cast<size_t>(p)];
        if (l >= 0) {
            initial[static_cast<size_t>(l)] = p;
            taken[static_cast<size_t>(p)] = 1;
        }
    }
    // Qubits never touched by any gate get arbitrary free positions.
    for (int l = 0; l < nl; ++l) {
        if (initial[static_cast<size_t>(l)] >= 0)
            continue;
        for (int p = 0; p < np; ++p) {
            if (!taken[static_cast<size_t>(p)]) {
                initial[static_cast<size_t>(l)] = p;
                taken[static_cast<size_t>(p)] = 1;
                break;
            }
        }
    }

    // Emit actions in start-cycle order (chain order is already
    // non-decreasing in cycle; actions within a node are disjoint).
    ir::Circuit phys(np, ctx.circuit().name() + "_mapped");
    for (const SearchNode *n : chain) {
        for (const Action &a : n->actions) {
            if (a.isSwap()) {
                phys.addSwap(a.p0, a.p1);
            } else {
                ir::Gate copy = ctx.circuit().gate(a.gateIndex);
                if (copy.numQubits() == 2)
                    copy.setQubits({a.p0, a.p1});
                else
                    copy.setQubits({a.p0});
                phys.add(std::move(copy));
            }
        }
    }

    const auto final_layout = ir::propagateLayout(phys, initial);
    return ir::MappedCircuit(std::move(phys), std::move(initial),
                             final_layout);
}

OptimalMapper::OptimalMapper(const arch::CouplingGraph &graph,
                             MapperConfig config)
    : _graph(graph), _config(config)
{}

MapperResult
OptimalMapper::map(const ir::Circuit &logical,
                   std::optional<std::vector<int>> initial_layout) const
{
    const obs::PhaseScope obs_phase("search");
    const ir::Circuit clean = logical.withoutSwapsAndBarriers();
    SearchContext ctx(clean, _graph, _config.latency);
    ctx.setCostTable(_config.costTable);
    CostEstimator estimator(ctx, _config.horizonGates);
    // The pool outlives every NodeRef holder below (expander
    // expansions, filter records, engine frontier, driver locals).
    NodePool pool(ctx);
    ExpanderConfig exp_cfg;
    exp_cfg.allowConcurrentSwapAndGate =
        _config.allowConcurrentSwapAndGate;
    exp_cfg.useRedundancyElimination = _config.useRedundancyElimination;
    exp_cfg.useCyclicSwapElimination = _config.useCyclicSwapElimination;
    Expander expander(ctx, pool, exp_cfg);
    Filter filter(_config.filterMaxEntries);
    search::SearchEngine<Frontier> engine(pool);
    engine.bindProbe("optimal");
    search::GuardConfig guard_cfg = _config.guard;
    if (_config.channel != nullptr && guard_cfg.cancelToken == nullptr)
        guard_cfg.cancelToken = _config.channel->stopToken();
    engine.armGuard(guard_cfg);

    std::vector<int> seed = initial_layout
                                ? *initial_layout
                                : ir::identityLayout(ctx.numLogical());

    int swap_budget = _config.initialSwapBudget;
    if (_config.searchInitialMapping && swap_budget < 0) {
        swap_budget = _graph.longestSimplePath() *
                      std::max(1, ctx.numPhysical() / 2);
    }

    NodeRef root = pool.root(seed, _config.searchInitialMapping);
    estimator.score(*root);

    // Anytime incumbent: the best complete (all-scheduled) node seen
    // anywhere in the run, kept by encoded cost key (the makespan
    // under plain cycles).  Returned — flagged non-optimal — when a
    // budget or guard stop preempts the proof of optimality.
    NodeRef incumbent;
    std::int64_t incumbent_key = std::numeric_limits<std::int64_t>::max();
    const auto offer_incumbent = [&](const NodeRef &node) {
        if (node && node->fKey() < incumbent_key) {
            incumbent_key = node->fKey();
            incumbent = node;
            if (_config.channel != nullptr)
                _config.channel->offer(incumbent_key);
        }
    };

    std::int64_t upper_bound = std::numeric_limits<std::int64_t>::max();
    if (_config.useUpperBoundPruning) {
        NodeRef probe_start = root;
        if (root->initialPhase) {
            probe_start = pool.commitInitialMapping(root);
            probe_start->costH = root->costH;
        }
        BeamProbeResult probe = beamUpperBound(
            ctx, expander, estimator, probe_start,
            _config.upperBoundBeamWidth, engine.guard());
        upper_bound = probe.bound;
        offer_incumbent(probe.terminal);
    }

    engine.push(root);
    if (_config.useFilter)
        filter.admit(root);

    MapperResult result;
    std::int64_t optimal = -1;

    const auto finish_stats = [&](MapperResult &r) {
        engine.stats().filtered = filter.dropped();
        engine.finish();
        r.stats = engine.stats();
    };

    // Set when a child was pruned ONLY because the channel watermark
    // undercut the local bound.  A foreign bound can come from a
    // different layout space (or simply sit below anything reachable
    // here), so once it has cut the frontier, exhaustion is a race
    // artifact — not an infeasibility proof.
    bool foreign_prune = false;

    const auto admit_and_push = [&](NodeRef child, bool exempt) {
        ++engine.stats().generated;
        estimator.score(*child);
        if (child->allScheduled(ctx))
            offer_incumbent(child); // complete schedule: keep the best
        // Prune against the best achievable schedule known anywhere:
        // the local beam-probe bound, tightened — in a portfolio race
        // — by the channel watermark (one relaxed load).  Nodes AT
        // the bound survive, so optimality at that cost stays
        // provable locally.
        std::int64_t bound = upper_bound;
        if (_config.channel != nullptr)
            bound = std::min(bound, _config.channel->bound());
        if (child->fKey() > bound) {
            if (child->fKey() <= upper_bound)
                foreign_prune = true; // the local bound kept this one
            return; // can never beat the known achievable schedule
        }
        if (_config.useFilter && !filter.admit(child, exempt))
            return;
        engine.push(std::move(child));
    };

    while (NodeRef node = engine.popLive()) {
        if (optimal >= 0 && node->fKey() > optimal)
            break; // all optimal solutions exhausted (Appendix B)

        if (node->allScheduled(ctx)) {
            // At a terminal the encoded f key is the exact total cost
            // (the makespan itself under plain cycles).
            const std::int64_t cost = node->fKey();
            if (optimal < 0) {
                optimal = cost;
                if (_config.channel != nullptr)
                    _config.channel->offer(cost);
                result.success = true;
                result.status = SearchStatus::Solved;
                result.cycles = node->makespan();
                result.costKey = cost;
                result.mapped = reconstructMapping(ctx, node);
                if (!_config.findAllOptimal)
                    break;
                result.allOptimal.push_back(result.mapped);
            } else if (cost == optimal &&
                       result.allOptimal.size() < _config.maxSolutions) {
                auto candidate = reconstructMapping(ctx, node);
                const bool duplicate = std::any_of(
                    result.allOptimal.begin(), result.allOptimal.end(),
                    [&candidate](const ir::MappedCircuit &m) {
                        return m.physical == candidate.physical &&
                               m.initialLayout == candidate.initialLayout;
                    });
                if (!duplicate)
                    result.allOptimal.push_back(std::move(candidate));
            }
            continue;
        }

        engine.noteExpansion(static_cast<double>(node->fKey()));
        const search::StopReason stop = engine.guardStop();
        if (stop != search::StopReason::None ||
            engine.stats().expanded > _config.maxExpandedNodes) {
            result.success = optimal >= 0;
            if (!result.success) {
                result.status = stop != search::StopReason::None
                                    ? search::statusFor(stop)
                                    : SearchStatus::BudgetExhausted;
                if (incumbent) {
                    // Anytime delivery: the best complete schedule
                    // seen so far, explicitly flagged non-optimal.
                    result.success = true;
                    result.fromIncumbent = true;
                    result.cycles = incumbent->makespan();
                    result.costKey = incumbent_key;
                    result.mapped = reconstructMapping(ctx, incumbent);
                }
            }
            finish_stats(result);
            return result;
        }

        if (node->initialPhase) {
            // Zero-cost initial-mapping exploration (Section 5.3).
            admit_and_push(pool.commitInitialMapping(node), false);
            if (node->initialSwaps < swap_budget) {
                for (const auto &[p0, p1] : _graph.edges()) {
                    admit_and_push(pool.initialSwapChild(node, p0, p1),
                                   false);
                }
            }
        } else {
            Expansion expansion = expander.expand(node);
            for (NodeRef &child : expansion.children) {
                const bool is_wait = child == expansion.waitChild;
                admit_and_push(std::move(child), is_wait);
            }
        }
    }

    if (optimal < 0 && foreign_prune) {
        // The frontier died only after foreign-bound prunes, so the
        // default Infeasible ("genuinely unsolvable") would be wrong:
        // report the run as cancelled by the race and deliver the
        // best local incumbent, if any, as an anytime result.
        result.status = SearchStatus::Cancelled;
        if (incumbent) {
            result.success = true;
            result.fromIncumbent = true;
            result.cycles = incumbent->makespan();
            result.costKey = incumbent_key;
            result.mapped = reconstructMapping(ctx, incumbent);
        }
    }
    finish_stats(result);
    return result;
}

} // namespace toqm::core
