#include "initial_layout.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/observer.hpp"

namespace toqm::core {

namespace {

class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : _state(seed) {}

    std::uint64_t
    next()
    {
        _state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = _state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    int
    below(int bound)
    {
        return static_cast<int>(next() % static_cast<std::uint64_t>(bound));
    }

    double
    unit()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t _state;
};

} // namespace

std::vector<std::vector<double>>
interactionWeights(const ir::Circuit &circuit, double decay)
{
    const size_t n = static_cast<size_t>(circuit.numQubits());
    std::vector<std::vector<double>> weights(
        n, std::vector<double>(n, 0.0));
    double w = 1.0;
    for (const ir::Gate &g : circuit.gates()) {
        if (g.numQubits() == 2 && !g.isBarrier()) {
            const size_t a = static_cast<size_t>(g.qubit(0));
            const size_t b = static_cast<size_t>(g.qubit(1));
            weights[a][b] += w;
            weights[b][a] += w;
        }
        w *= decay;
    }
    return weights;
}

double
layoutCost(const std::vector<std::vector<double>> &weights,
           const arch::CouplingGraph &graph,
           const std::vector<int> &layout)
{
    double cost = 0.0;
    const size_t n = weights.size();
    for (size_t a = 0; a < n; ++a) {
        for (size_t b = a + 1; b < n; ++b) {
            if (weights[a][b] > 0.0) {
                cost += weights[a][b] *
                        graph.distance(layout[a], layout[b]);
            }
        }
    }
    return cost;
}

std::vector<int>
greedyLayout(const ir::Circuit &circuit,
             const arch::CouplingGraph &graph)
{
    const obs::PhaseScope obs_phase("layout");
    const int nl = circuit.numQubits();
    const int np = graph.numQubits();
    if (nl > np)
        throw std::invalid_argument("greedyLayout: circuit too wide");

    const auto weights = interactionWeights(circuit);
    std::vector<double> degree(static_cast<size_t>(nl), 0.0);
    for (int a = 0; a < nl; ++a) {
        for (int b = 0; b < nl; ++b)
            degree[static_cast<size_t>(a)] +=
                weights[static_cast<size_t>(a)][static_cast<size_t>(b)];
    }
    std::vector<int> order(static_cast<size_t>(nl));
    for (int i = 0; i < nl; ++i)
        order[static_cast<size_t>(i)] = i;
    std::sort(order.begin(), order.end(), [&degree](int a, int b) {
        return degree[static_cast<size_t>(a)] >
               degree[static_cast<size_t>(b)];
    });

    std::vector<int> layout(static_cast<size_t>(nl), -1);
    std::vector<char> taken(static_cast<size_t>(np), 0);
    for (int l : order) {
        int best = -1;
        double best_score = std::numeric_limits<double>::max();
        for (int p = 0; p < np; ++p) {
            if (taken[static_cast<size_t>(p)])
                continue;
            // Weighted distance to already-placed partners; break
            // ties toward well-connected positions.
            double score = 0.0;
            for (int m = 0; m < nl; ++m) {
                const double w = weights[static_cast<size_t>(l)]
                                        [static_cast<size_t>(m)];
                if (w > 0.0 && layout[static_cast<size_t>(m)] >= 0) {
                    score += w * graph.distance(
                                     p, layout[static_cast<size_t>(m)]);
                }
            }
            score -= 0.01 * static_cast<double>(
                                graph.neighbors(p).size());
            if (score < best_score) {
                best_score = score;
                best = p;
            }
        }
        layout[static_cast<size_t>(l)] = best;
        taken[static_cast<size_t>(best)] = 1;
    }
    return layout;
}

std::vector<int>
annealedLayout(const ir::Circuit &circuit,
               const arch::CouplingGraph &graph,
               const AnnealConfig &config)
{
    const obs::PhaseScope obs_phase("layout");
    const int nl = circuit.numQubits();
    const int np = graph.numQubits();
    const auto weights = interactionWeights(circuit, config.gateDecay);

    std::vector<int> layout = greedyLayout(circuit, graph);
    // Extend with the free physical qubits so relocations can use
    // unoccupied positions too.
    std::vector<int> pos2log(static_cast<size_t>(np), -1);
    for (int l = 0; l < nl; ++l)
        pos2log[static_cast<size_t>(layout[static_cast<size_t>(l)])] =
            l;

    double cost = layoutCost(weights, graph, layout);
    double best_cost = cost;
    std::vector<int> best = layout;

    SplitMix64 rng(config.seed);
    double temperature = config.initialTemperature;
    for (int it = 0; it < config.iterations; ++it) {
        // Propose: swap the occupants of two physical positions (one
        // may be empty).
        const int p0 = rng.below(np);
        int p1 = rng.below(np - 1);
        if (p1 >= p0)
            ++p1;
        const int l0 = pos2log[static_cast<size_t>(p0)];
        const int l1 = pos2log[static_cast<size_t>(p1)];
        if (l0 < 0 && l1 < 0)
            continue;

        // Delta cost: only terms involving l0/l1 change.
        const auto delta_for = [&](int l, int from, int to) {
            if (l < 0)
                return 0.0;
            double d = 0.0;
            for (int m = 0; m < nl; ++m) {
                if (m == l0 || m == l1)
                    continue;
                const double w = weights[static_cast<size_t>(l)]
                                        [static_cast<size_t>(m)];
                if (w > 0.0) {
                    const int pm = layout[static_cast<size_t>(m)];
                    d += w * (graph.distance(to, pm) -
                              graph.distance(from, pm));
                }
            }
            return d;
        };
        double delta = delta_for(l0, p0, p1) + delta_for(l1, p1, p0);
        // The l0-l1 interaction itself keeps its distance (both move).

        if (delta <= 0.0 ||
            rng.unit() < std::exp(-delta / temperature)) {
            pos2log[static_cast<size_t>(p0)] = l1;
            pos2log[static_cast<size_t>(p1)] = l0;
            if (l0 >= 0)
                layout[static_cast<size_t>(l0)] = p1;
            if (l1 >= 0)
                layout[static_cast<size_t>(l1)] = p0;
            cost += delta;
            if (cost < best_cost) {
                best_cost = cost;
                best = layout;
            }
        }
        temperature *= config.cooling;
    }
    return best;
}

} // namespace toqm::core
