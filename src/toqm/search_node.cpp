#include "search_node.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace toqm::core {

SearchNode::SearchNode(int nl, int np)
    : _nl(nl), _np(np), _buf(std::make_unique<int[]>(
                            static_cast<size_t>(2 * nl + 3 * np)))
{}

SearchNode::SearchNode(const SearchNode &other)
    : parent(other.parent), cycle(other.cycle), costG(other.costG),
      costH(other.costH), routeScore(other.routeScore),
      actions(other.actions),
      scheduledGates(other.scheduledGates), busySum(other.busySum),
      activeSwapUntil(other.activeSwapUntil),
      activeGateUntil(other.activeGateUntil),
      initialSwaps(other.initialSwaps), initialPhase(other.initialPhase),
      dead(false), _nl(other._nl), _np(other._np),
      _buf(std::make_unique<int[]>(other.bufSize()))
{
    std::memcpy(_buf.get(), other._buf.get(),
                other.bufSize() * sizeof(int));
}

int
SearchNode::makespan() const
{
    int last = cycle;
    const int *busy = busyUntil();
    for (int p = 0; p < _np; ++p)
        last = std::max(last, busy[p]);
    return last;
}

std::uint64_t
SearchNode::mappingHash() const
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    const int *l2p = log2phys();
    for (int l = 0; l < _nl; ++l) {
        h ^= static_cast<std::uint64_t>(l2p[l] + 2);
        h *= 0x100000001b3ull;
    }
    // Initial-phase nodes must not collide with in-flight ones.
    h ^= initialPhase ? 0x9e3779b97f4a7c15ull : 0;
    return h;
}

SearchNode::Ptr
SearchNode::root(const SearchContext &ctx,
                 const std::vector<int> &initial_layout,
                 bool initial_phase)
{
    const int nl = ctx.numLogical();
    const int np = ctx.numPhysical();
    Ptr node(new SearchNode(nl, np));
    node->initialPhase = initial_phase;

    int *l2p = node->log2phys();
    int *p2l = node->phys2log();
    std::fill(p2l, p2l + np, -1);
    for (int l = 0; l < nl; ++l) {
        const int p = l < static_cast<int>(initial_layout.size())
                          ? initial_layout[static_cast<size_t>(l)]
                          : -1;
        l2p[l] = p;
        if (p < 0)
            continue;
        if (p >= np || p2l[p] != -1) {
            throw std::invalid_argument(
                "initial layout is not injective into the device");
        }
        p2l[p] = l;
    }
    std::fill(node->head(), node->head() + nl, 0);
    std::fill(node->busyUntil(), node->busyUntil() + np, 0);
    std::fill(node->lastSwapPartner(),
              node->lastSwapPartner() + np, -1);
    return node;
}

SearchNode::Ptr
SearchNode::expand(const SearchContext &ctx, const ConstPtr &parent,
                   int start_cycle, const std::vector<Action> &actions)
{
    Ptr node = std::make_shared<SearchNode>(*parent);
    node->parent = parent;
    node->initialPhase = false;
    node->cycle = start_cycle;
    node->costG = parent->costG + (start_cycle - parent->cycle);
    node->actions = actions;

    int *busy = node->busyUntil();
    int *l2p = node->log2phys();
    int *p2l = node->phys2log();
    int *partner = node->lastSwapPartner();

    for (const Action &a : actions) {
        if (a.isSwap()) {
            const int finish = start_cycle + ctx.swapLatency() - 1;
            node->busySum += (finish - busy[a.p0]) + (finish - busy[a.p1]);
            busy[a.p0] = finish;
            busy[a.p1] = finish;
            node->activeSwapUntil =
                std::max(node->activeSwapUntil, finish);
            // Post-swap mapping convention: apply immediately.
            const int l0 = p2l[a.p0];
            const int l1 = p2l[a.p1];
            p2l[a.p0] = l1;
            p2l[a.p1] = l0;
            if (l0 >= 0)
                l2p[l0] = a.p1;
            if (l1 >= 0)
                l2p[l1] = a.p0;
            partner[a.p0] = a.p1;
            partner[a.p1] = a.p0;
        } else {
            const int finish =
                start_cycle + ctx.gateLatency(a.gateIndex) - 1;
            const ir::Gate &g = ctx.circuit().gate(a.gateIndex);
            node->busySum += finish - busy[a.p0];
            busy[a.p0] = finish;
            partner[a.p0] = -1;
            if (a.p1 >= 0) {
                node->busySum += finish - busy[a.p1];
                busy[a.p1] = finish;
                partner[a.p1] = -1;
            }
            node->activeGateUntil =
                std::max(node->activeGateUntil, finish);
            int *head = node->head();
            for (int q : g.qubits())
                ++head[q];
            ++node->scheduledGates;
        }
    }
    return node;
}

SearchNode::Ptr
SearchNode::initialSwapChild(const ConstPtr &parent, int p0, int p1)
{
    Ptr node = std::make_shared<SearchNode>(*parent);
    node->parent = parent;
    node->actions.clear();
    ++node->initialSwaps;
    int *l2p = node->log2phys();
    int *p2l = node->phys2log();
    const int l0 = p2l[p0];
    const int l1 = p2l[p1];
    p2l[p0] = l1;
    p2l[p1] = l0;
    if (l0 >= 0)
        l2p[l0] = p1;
    if (l1 >= 0)
        l2p[l1] = p0;
    return node;
}

SearchNode::Ptr
SearchNode::commitInitialMapping(const ConstPtr &parent)
{
    Ptr node = std::make_shared<SearchNode>(*parent);
    node->parent = parent;
    node->actions.clear();
    node->initialPhase = false;
    return node;
}

} // namespace toqm::core
