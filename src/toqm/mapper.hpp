/**
 * @file
 * The time-optimal qubit mapper: A* over the cycle-state search graph
 * with the admissible cost f = g + h (Sections 4 and 5).
 *
 * Modes (Section 5.3):
 *  - given an initial layout, find the time-optimal swap insertion;
 *  - search the initial mapping too, via uncounted zero-cost swap
 *    steps before the first scheduled gate (budgeted by the longest
 *    simple path of the coupling graph);
 *  - enumerate ALL optimal solutions (Appendix B): keep popping until
 *    the queue yields a cost above the first optimum.
 */

#ifndef TOQM_CORE_MAPPER_HPP
#define TOQM_CORE_MAPPER_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "ir/circuit.hpp"
#include "ir/latency.hpp"
#include "ir/mapped_circuit.hpp"
#include "search/incumbent_channel.hpp"
#include "search/resource_guard.hpp"
#include "search_types.hpp"

namespace toqm::core {

/** Configuration of an optimal mapping run. */
struct MapperConfig
{
    ir::LatencyModel latency = ir::LatencyModel::ibmPreset();
    /** Mode (2): search the initial mapping with free leading swaps. */
    bool searchInitialMapping = false;
    /**
     * Budget of free initial swaps; -1 derives it from the coupling
     * graph's longest simple path d as d * floor(n/2) (d parallel
     * layers of at most floor(n/2) disjoint swaps each, Section 5.3).
     */
    int initialSwapBudget = -1;
    /** Fig 14 constrained mode when false. */
    bool allowConcurrentSwapAndGate = true;
    /** Appendix B: collect every depth-optimal solution. */
    bool findAllOptimal = false;
    /** Safety valve: give up (success=false) past this many pops. */
    std::uint64_t maxExpandedNodes = 20'000'000;
    /** Filter table bound (0 = unbounded). */
    size_t filterMaxEntries = 0;
    /** Ablation toggles. @{ */
    bool useFilter = true;
    bool useRedundancyElimination = true;
    bool useCyclicSwapElimination = true;
    /** @} */
    /** Cost-estimator gate horizon (-1 = whole remaining circuit). */
    int horizonGates = -1;
    /** Cap on solutions collected in findAllOptimal mode. */
    size_t maxSolutions = 64;
    /**
     * Run a cheap beam search first and discard every generated node
     * whose admissible f exceeds that achievable upper bound.  Pure
     * optimization: optimality is unaffected (such nodes can never
     * lie on a better-than-known path).
     */
    bool useUpperBoundPruning = true;
    /** Beam width for the upper-bound probe. */
    int upperBoundBeamWidth = 64;
    /**
     * Resource limits (wall-clock deadline, pool-byte ceiling,
     * cooperative cancellation).  All-defaults = disarmed, which
     * keeps the run byte-identical to pre-guard behavior.
     */
    search::GuardConfig guard;
    /**
     * Incumbent exchange for portfolio races (nullptr = solo run).
     * When set, the search (a) publishes every complete schedule's
     * makespan, (b) prunes generated children against the best bound
     * achieved by ANY search on the channel (reading the atomic
     * watermark on the expansion hot path), and (c) honors the
     * channel's stop token through its ResourceGuard.  Pruning keeps
     * f == bound nodes, so optimality proofs are unaffected.
     * The channel must outlive the map() call.
     */
    search::IncumbentChannel *channel = nullptr;
    /**
     * Encoded cost model to minimise instead of plain cycles
     * (src/objective builds these from calibration data).  Null —
     * the default — selects the legacy scalar-cycle path, which is
     * byte-identical to pre-objective behavior.  When set, every
     * node is ranked by its encoded fKey and `channel` offers/bounds
     * are encoded keys, so all entries sharing a channel MUST share
     * one objective.  The table must outlive the map() call.
     */
    const search::CostTable *costTable = nullptr;
};

/**
 * Search statistics for the overhead columns of Tables 1 and 2 —
 * the kernel's unified run report.
 */
using MapperStats = search::SearchStats;

/** Result of an optimal mapping run. */
struct MapperResult
{
    /**
     * True iff a complete mapping was returned: the proven optimum,
     * or — on a budget/deadline/memory/cancel stop — the best
     * incumbent found so far (see `fromIncumbent`).
     */
    bool success = false;
    /**
     * Why the search ended: Solved, BudgetExhausted (node budget ran
     * out with no solution proven — the instance may be solvable),
     * Infeasible (search space exhausted: genuinely unsolvable), or
     * a ResourceGuard stop (DeadlineExceeded / MemoryExhausted /
     * Cancelled).  When findAllOptimal enumeration hits a stop AFTER
     * an optimum was found, the status stays Solved.  Exhaustion is
     * only reported Infeasible when no prune depended on a foreign
     * `channel` bound; a frontier cut down by another racer's
     * watermark ends as Cancelled (with the incumbent, if any),
     * since a foreign bound proves nothing about this search's own
     * layout space.
     */
    SearchStatus status = SearchStatus::Infeasible;
    /**
     * Anytime delivery: true when `mapped` is the best complete (but
     * not proven optimal) schedule seen before a budget/guard stop.
     * Always false for Solved results.
     */
    bool fromIncumbent = false;
    /** Total cycles of the transformed circuit (the optimum, or the
     *  incumbent's makespan when fromIncumbent is set). */
    int cycles = -1;
    /**
     * Encoded total cost of `mapped` under the run's objective;
     * equals `cycles` when no cost table was configured, -1 when no
     * circuit was delivered.
     */
    std::int64_t costKey = -1;
    ir::MappedCircuit mapped;
    /** Every optimal solution, if findAllOptimal was set. */
    std::vector<ir::MappedCircuit> allOptimal;
    MapperStats stats;
};

/** The time-optimal A* mapper. */
class OptimalMapper
{
  public:
    OptimalMapper(const arch::CouplingGraph &graph,
                  MapperConfig config = {});

    /**
     * Map @p logical onto the device.
     *
     * @param initial_layout start layout (logical -> physical); if
     *        absent, the identity layout is used as the seed (and, in
     *        searchInitialMapping mode, only as the seed).
     */
    MapperResult map(const ir::Circuit &logical,
                     std::optional<std::vector<int>> initial_layout =
                         std::nullopt) const;

  private:
    arch::CouplingGraph _graph;
    MapperConfig _config;
};

/**
 * Reconstruct the transformed circuit from a terminal search node
 * (exposed for the heuristic mapper, which shares node semantics).
 */
ir::MappedCircuit reconstructMapping(const SearchContext &ctx,
                                     const NodeRef &terminal);

} // namespace toqm::core

#endif // TOQM_CORE_MAPPER_HPP
