/**
 * @file
 * The admissible heuristic h(v) of Section 5.1.
 *
 * Processes the remaining dependency graph in topological order
 * (program order restricted to unscheduled gates), computing for each
 * gate a lower bound t_min on its start time.  For a two-qubit gate
 * whose operands sit d apart, the required d-1 swaps are split
 * between the two operand qubits; each side is charged only for
 * delay exceeding its slack u - T (Fig 8), which is what makes the
 * bound tight where the "meet in the middle" fallacy of Fig 9 is
 * loose.
 *
 * Lemma A.1 proves h never overestimates, so A* with f = g + h is
 * optimal (Theorem 5.2).
 *
 * Two implementations compute the same value:
 *
 *  - estimate(): the production path.  The gate scan starts at the
 *    node's firstUnscheduled index (maintained by the NodePool as
 *    gates are scheduled) instead of rescanning the whole scheduled
 *    prefix, and the swap-split minimization is evaluated in closed
 *    form (the delay is a piecewise-linear quasiconvex function of
 *    the split, so its integer minimum lies at the floor/ceil of a
 *    kink or at a boundary — a constant-size candidate set replaces
 *    the O(d) enumeration).
 *  - estimateReference(): the original full rescan with the explicit
 *    enumeration loop.  Retained as the audit oracle and for tests.
 *
 * Debug builds periodically cross-check the two (every
 * kDebugAuditInterval calls per thread) and throw std::logic_error
 * on divergence; setAuditInterval() overrides the cadence (0
 * disables, 1 audits every call).
 */

#ifndef TOQM_CORE_COST_ESTIMATOR_HPP
#define TOQM_CORE_COST_ESTIMATOR_HPP

#include <cstdint>

#include "search_types.hpp"

namespace toqm::core {

/** Computes h(v) for search nodes of one context. */
class CostEstimator
{
  public:
    /**
     * @param ctx the shared search context.
     * @param horizon_gates if >= 0, only the first N remaining gates
     *        enter the bound (the Section 6.2 scalable approximation;
     *        the bound stays admissible because dropping gates can
     *        only lower a maximum).  -1 means no limit.
     */
    explicit CostEstimator(const SearchContext &ctx,
                           int horizon_gates = -1);

    /**
     * Lower bound (in cycles) on the time from @p node to any
     * terminal node.
     *
     * Re-entrant: scratch state lives in thread_local buffers, so
     * concurrent searches (portfolio races, `--jobs N` batches) may
     * call estimate() on the same or different estimator instances
     * from any thread without synchronisation.
     */
    int estimate(const SearchNode &node) const;

    /**
     * Audit oracle: recomputes h(v) from scratch — full gate scan
     * from index 0, explicit O(d) swap-split enumeration.  Identical
     * value to estimate() by construction; kept as an independent
     * implementation so the periodic audit is meaningful.
     */
    int estimateReference(const SearchNode &node) const;

    /**
     * Cross-check estimate() against estimateReference() every
     * @p interval calls (per thread).  0 disables.  Debug builds
     * default to kDebugAuditInterval; release builds to 0.
     * Configure before any concurrent use.
     */
    void setAuditInterval(std::uint64_t interval)
    {
        _auditInterval = interval;
    }

    /**
     * TEST-ONLY: add @p skew to every estimate() result, simulating
     * an incremental-path defect so tests can prove the audit fires
     * (it throws std::logic_error on the next audited call).
     */
    void setTestSkew(int skew) { _testSkew = skew; }

    /** Debug-build default audit cadence (calls per thread). */
    static constexpr std::uint64_t kDebugAuditInterval = 256;

    /**
     * Score @p node in place: sets costH = estimate(node) and the
     * encoded heuristic objH.  With no active CostTable, objH ==
     * costH so fKey() stays equal to f().  With a table,
     *
     *     objH = cycleWeight * costH + remainingMinWeight
     *
     * where remainingMinWeight is the sum of gateMin over gates not
     * yet scheduled — recovered in O(1) from the node's running
     * sums: the placement weight paid so far is objG - cycleWeight *
     * costG, of which objSlack is overhead, so the scheduled gates'
     * minimum weight is (objG - cycleWeight * costG) - objSlack.
     * Both terms lower-bound any completion independently (every
     * remaining cycle costs at least cycleWeight; every unscheduled
     * gate at least its gateMin), so objH stays admissible and at an
     * allScheduled node it is exactly cycleWeight * (makespan -
     * cycle), making fKey() the exact encoded total.
     */
    void score(SearchNode &node) const;

  private:
    const SearchContext &_ctx;
    int _horizonGates;
    std::uint64_t _auditInterval;
    int _testSkew = 0;

    /**
     * tail[i]: latency-weighted critical path from gate i (inclusive)
     * to the end of the circuit, ignoring routing.  Gives an O(1)
     * global lower bound per frontier gate, so a windowed detailed
     * bound (horizon_gates) cannot make far-from-done nodes look
     * artificially cheap.
     */
    std::vector<int> _tail;

    /** Shared scan body; @p reference selects the oracle variants. */
    int scan(const SearchNode &node, bool reference) const;

    /** Closed-form swap-split minimization (production path). */
    int twoQubitDelay(int d, int u, int t_a, int t_b) const;

    /** Explicit O(d) enumeration (audit oracle). */
    int twoQubitDelayReference(int d, int u, int t_a, int t_b) const;
};

} // namespace toqm::core

#endif // TOQM_CORE_COST_ESTIMATOR_HPP
