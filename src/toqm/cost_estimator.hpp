/**
 * @file
 * The admissible heuristic h(v) of Section 5.1.
 *
 * Processes the remaining dependency graph in topological order
 * (program order restricted to unscheduled gates), computing for each
 * gate a lower bound t_min on its start time.  For a two-qubit gate
 * whose operands sit d apart, all (r, s) splits of the required d-1
 * swaps between the two operand qubits are enumerated; each side is
 * charged only for delay exceeding its slack u - T (Fig 8), which is
 * what makes the bound tight where the "meet in the middle" fallacy
 * of Fig 9 is loose.
 *
 * Lemma A.1 proves h never overestimates, so A* with f = g + h is
 * optimal (Theorem 5.2).
 */

#ifndef TOQM_CORE_COST_ESTIMATOR_HPP
#define TOQM_CORE_COST_ESTIMATOR_HPP

#include "search_types.hpp"

namespace toqm::core {

/** Computes h(v) for search nodes of one context. */
class CostEstimator
{
  public:
    /**
     * @param ctx the shared search context.
     * @param horizon_gates if >= 0, only the first N remaining gates
     *        enter the bound (the Section 6.2 scalable approximation;
     *        the bound stays admissible because dropping gates can
     *        only lower a maximum).  -1 means no limit.
     */
    explicit CostEstimator(const SearchContext &ctx,
                           int horizon_gates = -1);

    /**
     * Lower bound (in cycles) on the time from @p node to any
     * terminal node.
     *
     * Re-entrant: scratch state lives in thread_local buffers, so
     * concurrent searches (portfolio races, `--jobs N` batches) may
     * call estimate() on the same or different estimator instances
     * from any thread without synchronisation.
     */
    int estimate(const SearchNode &node) const;

    /**
     * Score @p node in place: sets costH = estimate(node) and the
     * encoded heuristic objH.  With no active CostTable, objH ==
     * costH so fKey() stays equal to f().  With a table,
     *
     *     objH = cycleWeight * costH + remainingMinWeight
     *
     * where remainingMinWeight is the sum of gateMin over gates not
     * yet scheduled — recovered in O(1) from the node's running
     * sums: the placement weight paid so far is objG - cycleWeight *
     * costG, of which objSlack is overhead, so the scheduled gates'
     * minimum weight is (objG - cycleWeight * costG) - objSlack.
     * Both terms lower-bound any completion independently (every
     * remaining cycle costs at least cycleWeight; every unscheduled
     * gate at least its gateMin), so objH stays admissible and at an
     * allScheduled node it is exactly cycleWeight * (makespan -
     * cycle), making fKey() the exact encoded total.
     */
    void score(SearchNode &node) const;

  private:
    const SearchContext &_ctx;
    int _horizonGates;

    /**
     * tail[i]: latency-weighted critical path from gate i (inclusive)
     * to the end of the circuit, ignoring routing.  Gives an O(1)
     * global lower bound per frontier gate, so a windowed detailed
     * bound (horizon_gates) cannot make far-from-done nodes look
     * artificially cheap.
     */
    std::vector<int> _tail;

    int twoQubitDelay(int d, int u, int t_a, int t_b) const;
};

} // namespace toqm::core

#endif // TOQM_CORE_COST_ESTIMATOR_HPP
