/**
 * @file
 * Hash filter with equivalence checking and comparative analysis
 * (Section 4.2, Fig 5).
 *
 * Nodes are keyed by a hash of their post-swap qubit mapping.  A
 * new node N is dropped when some recorded node E with the same
 * mapping *dominates* it:
 *
 *   E.costG <= N.costG,  E.head[l] >= N.head[l]  for all logical l,
 *   E.busyUntil[p] <= N.busyUntil[p]  for all physical p.
 *
 * Equality on every component is the paper's equivalence check;
 * strict improvement anywhere is its comparative analysis.  The
 * reverse direction marks recorded nodes dead when the newcomer
 * dominates them.
 *
 * Pure-wait children are exempt from being dropped: a wait child's
 * state equals its parent's except for the clock, so its parent
 * would always "dominate" it — pruning it would sever the only path
 * that lets time advance (the parent can only wait *through* that
 * child).  They are still recorded so they can prune others.
 *
 * Storage is a single flat open-addressing table (linear probing,
 * power-of-two capacity) instead of an unordered_map of per-hash
 * vectors: one contiguous allocation, no per-bucket vectors, and a
 * lookup touches one cache line per probe step.  Dominated or
 * externally-killed entries are erased EAGERLY with backward-shift
 * deletion (no tombstones), which both keeps probe chains short and
 * releases the entry's NodeRef immediately — dropping the dominated
 * node (and any parent chain it alone kept alive) back to the pool
 * instead of pinning it until a bucket compaction.
 *
 * Threading: a Filter mutates its table on every admit(), so each
 * concurrent search owns a private instance (parallel drivers create
 * one per worker, next to its NodePool).  Instances share nothing,
 * so concurrent searches never contend.
 */

#ifndef TOQM_CORE_FILTER_HPP
#define TOQM_CORE_FILTER_HPP

#include <cstdint>
#include <vector>

#include "search_types.hpp"

namespace toqm::core {

/** Duplicate/dominance filter over search nodes. */
class Filter
{
  public:
    /**
     * @param max_entries bound on recorded nodes; when exceeded the
     *        table is cleared (loses pruning power, never
     *        correctness).  0 means unbounded.
     */
    explicit Filter(size_t max_entries = 0);

    /**
     * Test @p node against the table and record it.
     *
     * @param exempt if true (wait children), the node is recorded
     *        but never dropped.
     * @return true if the node survives (should be pushed), false if
     *         a recorded node dominates it.
     */
    bool admit(const NodeRef &node, bool exempt = false);

    /** Number of nodes dropped so far. */
    std::uint64_t dropped() const { return _dropped; }

    /** Number of recorded nodes marked dead by newcomers. */
    std::uint64_t killed() const { return _killed; }

    /** Live recorded entries (dead ones are erased eagerly). */
    size_t size() const { return _entries; }

    /** Table capacity (power of two; 0 before the first admit). */
    size_t capacity() const { return _slots.size(); }

    void clear();

  private:
    /** One table slot; empty iff !node. */
    struct Slot
    {
        std::uint64_t hash = 0;
        NodeRef node;
    };

    /** Double (or create) the table, reinserting live entries in an
     *  order that preserves per-hash insertion order. */
    void grow();

    /** Append-insert @p node at the end of hash @p h's probe chain
     *  (no dominance checks; rehash/placement helper). */
    void insertSlot(std::uint64_t h, NodeRef node);

    /** Backward-shift erase of slot @p i; returns with slot @p i
     *  holding the next unexamined entry (or empty). */
    void eraseSlot(size_t i);

    std::vector<Slot> _slots;
    size_t _mask = 0; // capacity - 1 when non-empty
    size_t _maxEntries;
    size_t _entries = 0;
    std::uint64_t _dropped = 0;
    std::uint64_t _killed = 0;

    /** -1: a dominates b strictly or equally; +1: b dominates a;
     *  0: incomparable. */
    static int compare(const SearchNode &a, const SearchNode &b);
};

} // namespace toqm::core

#endif // TOQM_CORE_FILTER_HPP
