#include "static_mapping.hpp"

#include <algorithm>

namespace toqm::core {

namespace {

/** Backtracking embedder with most-constrained-first ordering. */
class Embedder
{
  public:
    Embedder(const std::vector<std::vector<char>> &want,
             const arch::CouplingGraph &graph, long max_steps)
        : _want(want), _graph(graph), _budget(max_steps),
          _nl(static_cast<int>(want.size())),
          _assign(want.size(), -1),
          _taken(static_cast<size_t>(graph.numQubits()), 0)
    {
        // Order logical qubits by descending interaction degree: the
        // most constrained choices first.
        _order.resize(static_cast<size_t>(_nl));
        for (int i = 0; i < _nl; ++i)
            _order[static_cast<size_t>(i)] = i;
        std::sort(_order.begin(), _order.end(), [this](int a, int b) {
            return degree(a) > degree(b);
        });
    }

    std::optional<std::vector<int>>
    solve()
    {
        if (search(0))
            return _assign;
        return std::nullopt;
    }

  private:
    const std::vector<std::vector<char>> &_want;
    const arch::CouplingGraph &_graph;
    long _budget;
    int _nl;
    std::vector<int> _assign;
    std::vector<char> _taken;
    std::vector<int> _order;

    int
    degree(int l) const
    {
        int d = 0;
        for (char c : _want[static_cast<size_t>(l)])
            d += c;
        return d;
    }

    bool
    feasible(int l, int p) const
    {
        // Device degree must cover remaining interaction degree.
        if (static_cast<int>(_graph.neighbors(p).size()) < degree(l))
            return false;
        // All already-assigned interaction partners must be adjacent.
        for (int m = 0; m < _nl; ++m) {
            if (!_want[static_cast<size_t>(l)][static_cast<size_t>(m)])
                continue;
            const int q = _assign[static_cast<size_t>(m)];
            if (q >= 0 && !_graph.adjacent(p, q))
                return false;
        }
        return true;
    }

    bool
    search(size_t depth)
    {
        if (--_budget < 0)
            return false;
        if (depth == _order.size())
            return true;
        const int l = _order[depth];
        for (int p = 0; p < _graph.numQubits(); ++p) {
            if (_taken[static_cast<size_t>(p)] || !feasible(l, p))
                continue;
            _taken[static_cast<size_t>(p)] = 1;
            _assign[static_cast<size_t>(l)] = p;
            if (search(depth + 1))
                return true;
            _assign[static_cast<size_t>(l)] = -1;
            _taken[static_cast<size_t>(p)] = 0;
        }
        return false;
    }
};

} // namespace

std::optional<std::vector<int>>
findStaticMapping(const ir::Circuit &circuit,
                  const arch::CouplingGraph &graph, long max_steps)
{
    const int nl = circuit.numQubits();
    if (nl > graph.numQubits())
        return std::nullopt;

    // Interaction matrix of the circuit.
    std::vector<std::vector<char>> want(
        static_cast<size_t>(nl),
        std::vector<char>(static_cast<size_t>(nl), 0));
    for (const ir::Gate &g : circuit.gates()) {
        if (g.numQubits() == 2 && !g.isBarrier()) {
            want[static_cast<size_t>(g.qubit(0))]
                [static_cast<size_t>(g.qubit(1))] = 1;
            want[static_cast<size_t>(g.qubit(1))]
                [static_cast<size_t>(g.qubit(0))] = 1;
        }
    }

    Embedder embedder(want, graph, max_steps);
    return embedder.solve();
}

} // namespace toqm::core
