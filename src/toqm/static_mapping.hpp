/**
 * @file
 * Static initial mapping: find an initial layout under which EVERY
 * two-qubit gate in the circuit is already coupling-compliant, so no
 * swaps are needed at all.  This is a subgraph-isomorphism search of
 * the circuit's qubit interaction graph into the device coupling
 * graph (the Table 2 methodology: "we first tried to find an initial
 * mapping that could satisfy all CNOTs in the circuit without
 * swaps").
 */

#ifndef TOQM_CORE_STATIC_MAPPING_HPP
#define TOQM_CORE_STATIC_MAPPING_HPP

#include <optional>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "ir/circuit.hpp"

namespace toqm::core {

/**
 * Try to embed the interaction graph of @p circuit into @p graph.
 *
 * @param max_steps backtracking budget; the search is exact up to the
 *        budget and gives up (nullopt) beyond it.
 * @return a layout (logical -> physical) making every two-qubit gate
 *         adjacent, or nullopt if none was found.
 */
std::optional<std::vector<int>>
findStaticMapping(const ir::Circuit &circuit,
                  const arch::CouplingGraph &graph,
                  long max_steps = 2'000'000);

} // namespace toqm::core

#endif // TOQM_CORE_STATIC_MAPPING_HPP
