#include "filter.hpp"

#include <cassert>
#include <cstring>
#include <utility>

namespace toqm::core {

namespace {

/** First table allocation (slots; power of two). */
constexpr size_t kInitialCapacity = 64;

} // namespace

Filter::Filter(size_t max_entries) : _maxEntries(max_entries) {}

int
Filter::compare(const SearchNode &a, const SearchNode &b)
{
    // O(1) aggregate quick rejects: domination implies the sums obey
    // the same inequalities.
    // objSlack: under a weighted objective a node may be ahead on
    // every scheduling axis yet have overpaid in placement weight;
    // requiring no-more-slack keeps dominance exact.  Always zero
    // (hence vacuous) when no cost table is active.
    bool a_wins = a.costG <= b.costG &&
                  a.scheduledGates >= b.scheduledGates &&
                  a.busySum <= b.busySum && a.objSlack <= b.objSlack;
    bool b_wins = b.costG <= a.costG &&
                  b.scheduledGates >= a.scheduledGates &&
                  b.busySum <= a.busySum && b.objSlack <= a.objSlack;
    if (!a_wins && !b_wins)
        return 0;

    if (std::memcmp(a.log2phys(), b.log2phys(),
                    static_cast<size_t>(a.numLogical()) *
                        sizeof(*a.log2phys())) != 0) {
        return 0;
    }

    const int nl = a.numLogical();
    const int *ah = a.head();
    const int *bh = b.head();
    for (int l = 0; l < nl; ++l) {
        if (ah[l] < bh[l])
            a_wins = false;
        if (bh[l] < ah[l])
            b_wins = false;
        if (!a_wins && !b_wins)
            return 0;
    }
    const int np = a.numPhysical();
    const int *ab = a.busyUntil();
    const int *bb = b.busyUntil();
    for (int p = 0; p < np; ++p) {
        if (ab[p] > bb[p])
            a_wins = false;
        if (bb[p] > ab[p])
            b_wins = false;
        if (!a_wins && !b_wins)
            return 0;
    }
    if (a_wins)
        return -1; // a dominates (or equals) b
    return b_wins ? 1 : 0;
}

void
Filter::eraseSlot(size_t i)
{
    // Backward-shift deletion: walk the cluster after i and pull
    // back every entry whose home position permits it, so probe
    // chains stay contiguous without tombstones.  Relative order of
    // same-hash entries is preserved (entries only move backward,
    // never past each other), which keeps dominance scans visiting
    // entries in insertion order.
    _slots[i].node.reset(); // release the NodeRef eagerly
    size_t j = i;
    for (;;) {
        j = (j + 1) & _mask;
        if (!_slots[j].node)
            break;
        const size_t home = _slots[j].hash & _mask;
        // Entry at j may move to i iff i lies within [home, j)
        // cyclically; otherwise it would land before its home.
        if (((j - home) & _mask) >= ((j - i) & _mask)) {
            _slots[i].hash = _slots[j].hash;
            _slots[i].node = std::move(_slots[j].node);
            i = j;
        }
    }
    --_entries;
}

void
Filter::insertSlot(std::uint64_t h, NodeRef node)
{
    size_t i = h & _mask;
    while (_slots[i].node)
        i = (i + 1) & _mask;
    _slots[i].hash = h;
    _slots[i].node = std::move(node);
    ++_entries;
}

void
Filter::grow()
{
    std::vector<Slot> old = std::move(_slots);
    const size_t new_cap =
        old.empty() ? kInitialCapacity : old.size() * 2;
    _slots.clear();
    _slots.resize(new_cap);
    _mask = new_cap - 1;
    _entries = 0;
    if (old.empty())
        return;
    // Reinsert starting just past an empty slot so no probe cluster
    // is split by the scan's wrap-around: every cluster is then
    // visited front-to-back, preserving per-hash insertion order in
    // the new table (dominance scans rely on that order).
    const size_t n = old.size();
    size_t start = 0;
    while (old[start].node)
        ++start; // an empty slot exists: load factor < 1
    for (size_t k = 1; k <= n; ++k) {
        Slot &s = old[(start + k) & (n - 1)];
        if (s.node)
            insertSlot(s.hash, std::move(s.node));
    }
}

bool
Filter::admit(const NodeRef &node, bool exempt)
{
    if (_maxEntries != 0 && _entries > _maxEntries)
        clear();
    // Grow before probing so the insertion point found below stays
    // valid; 3/4 load keeps probe chains short.
    if (_slots.empty() || (_entries + 1) * 4 > _slots.size() * 3)
        grow();

    const std::uint64_t h = node->mappingHash();
    size_t i = h & _mask;
    while (_slots[i].node) {
        if (_slots[i].hash == h) {
            SearchNode &entry = *_slots[i].node;
            if (entry.dead) {
                // Killed by a frontier trim (or an earlier admit):
                // erase in place.  The shift may pull a not-yet-seen
                // entry into slot i, so re-examine it.
                eraseSlot(i);
                continue;
            }
            const int cmp = compare(entry, *node);
            if (cmp < 0 && !exempt) {
                ++_dropped;
                return false;
            }
            if (cmp > 0) {
                // The newcomer dominates: mark dead for any frontier
                // copies, then release our reference immediately so
                // the pool can recycle the node (and its parents).
                entry.dead = true;
                ++_killed;
                eraseSlot(i);
                continue;
            }
        }
        i = (i + 1) & _mask;
    }
    // i is the first empty slot past hash h's chain: append there so
    // same-hash entries keep insertion order.
    _slots[i].hash = h;
    _slots[i].node = node;
    ++_entries;
    return true;
}

void
Filter::clear()
{
    // Keep the allocation (the table is about to refill); just drop
    // every reference.
    for (Slot &s : _slots) {
        s.hash = 0;
        s.node.reset();
    }
    _entries = 0;
}

} // namespace toqm::core
