#include "filter.hpp"

#include <cstring>

namespace toqm::core {

Filter::Filter(size_t max_entries) : _maxEntries(max_entries) {}

int
Filter::compare(const SearchNode &a, const SearchNode &b)
{
    // O(1) aggregate quick rejects: domination implies the sums obey
    // the same inequalities.
    // objSlack: under a weighted objective a node may be ahead on
    // every scheduling axis yet have overpaid in placement weight;
    // requiring no-more-slack keeps dominance exact.  Always zero
    // (hence vacuous) when no cost table is active.
    bool a_wins = a.costG <= b.costG &&
                  a.scheduledGates >= b.scheduledGates &&
                  a.busySum <= b.busySum && a.objSlack <= b.objSlack;
    bool b_wins = b.costG <= a.costG &&
                  b.scheduledGates >= a.scheduledGates &&
                  b.busySum <= a.busySum && b.objSlack <= a.objSlack;
    if (!a_wins && !b_wins)
        return 0;

    if (std::memcmp(a.log2phys(), b.log2phys(),
                    static_cast<size_t>(a.numLogical()) * sizeof(int)) !=
        0) {
        return 0;
    }

    const int nl = a.numLogical();
    const int *ah = a.head();
    const int *bh = b.head();
    for (int l = 0; l < nl; ++l) {
        if (ah[l] < bh[l])
            a_wins = false;
        if (bh[l] < ah[l])
            b_wins = false;
        if (!a_wins && !b_wins)
            return 0;
    }
    const int np = a.numPhysical();
    const int *ab = a.busyUntil();
    const int *bb = b.busyUntil();
    for (int p = 0; p < np; ++p) {
        if (ab[p] > bb[p])
            a_wins = false;
        if (bb[p] > ab[p])
            b_wins = false;
        if (!a_wins && !b_wins)
            return 0;
    }
    if (a_wins)
        return -1; // a dominates (or equals) b
    return b_wins ? 1 : 0;
}

bool
Filter::admit(const NodeRef &node, bool exempt)
{
    if (_maxEntries != 0 && _entries > _maxEntries)
        clear();

    auto &bucket = _table[node->mappingHash()];
    for (auto &entry : bucket) {
        if (entry->dead)
            continue;
        const int cmp = compare(*entry, *node);
        if (cmp < 0 && !exempt) {
            ++_dropped;
            return false;
        }
        if (cmp > 0) {
            entry->dead = true;
            ++_killed;
        }
    }
    // Compact dead entries occasionally to bound bucket scans.
    if (bucket.size() > 16) {
        size_t w = 0;
        for (size_t r = 0; r < bucket.size(); ++r) {
            if (!bucket[r]->dead)
                bucket[w++] = bucket[r];
        }
        _entries -= bucket.size() - w;
        bucket.resize(w);
    }
    bucket.push_back(node);
    ++_entries;
    return true;
}

void
Filter::clear()
{
    _table.clear();
    _entries = 0;
}

} // namespace toqm::core
