/**
 * @file
 * Exhaustive optimal reference: the A* framework with every
 * acceleration disabled (no hash filter, no redundancy elimination,
 * no upper-bound pruning).  Still complete and optimal — just slow.
 *
 * This is the stand-in for OLSQ in the Table 2 comparison (see
 * DESIGN.md): a much slower tool that certifies the same optimal
 * depth, letting the benchmark reproduce the paper's 9x-1500x
 * overhead gap in shape.
 */

#ifndef TOQM_BASELINES_EXHAUSTIVE_HPP
#define TOQM_BASELINES_EXHAUSTIVE_HPP

#include "toqm/mapper.hpp"

namespace toqm::baselines {

/**
 * Run the de-optimized optimal search.
 *
 * @param latency gate latency model.
 * @param search_initial_mapping also search the initial layout.
 * @param max_nodes safety budget (returns success=false beyond it).
 */
core::MapperResult
exhaustiveReference(const arch::CouplingGraph &graph,
                    const ir::Circuit &logical,
                    const ir::LatencyModel &latency,
                    bool search_initial_mapping = false,
                    std::uint64_t max_nodes = 20'000'000);

} // namespace toqm::baselines

#endif // TOQM_BASELINES_EXHAUSTIVE_HPP
