#include "exhaustive.hpp"

namespace toqm::baselines {

core::MapperResult
exhaustiveReference(const arch::CouplingGraph &graph,
                    const ir::Circuit &logical,
                    const ir::LatencyModel &latency,
                    bool search_initial_mapping, std::uint64_t max_nodes)
{
    core::MapperConfig config;
    config.latency = latency;
    config.searchInitialMapping = search_initial_mapping;
    // The duplicate filter stays on: without it even 20-gate inputs
    // do not terminate (and OLSQ, too, dedups assignments inside the
    // SMT solver).  The disabled prunings below already cost one to
    // three orders of magnitude.
    config.useRedundancyElimination = false;
    config.useCyclicSwapElimination = false;
    config.useUpperBoundPruning = false;
    config.maxExpandedNodes = max_nodes;
    core::OptimalMapper mapper(graph, config);
    return mapper.map(logical);
}

} // namespace toqm::baselines
